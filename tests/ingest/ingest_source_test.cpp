// Unit tests for the IngestSource adapters — the single API every sample
// stream now enters the engine through. The properties pinned here are
// the ones the analyzer's determinism rests on:
//   * keys: every adapter hands out the exact stream keys the equivalent
//     single-stream walk would (running indices in memory, offset-derived
//     stream_seq_key for traces);
//   * split(): the sub-sources partition the remaining stream — same
//     batches, same keys, nothing duplicated, nothing lost;
//   * accounting: trace-backed sources surface the reader's exact byte
//     taxonomy, and a MappedSource's per-segment stats sum to it.
#include "ingest/ingest_source.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "sflow/fault_injector.hpp"
#include "sflow/frame.hpp"
#include "sflow/trace.hpp"

namespace ixp::ingest {
namespace {

using net::Ipv4Addr;

sflow::FlowSample make_sample(std::uint32_t seq) {
  sflow::FrameSpec spec;
  spec.src_mac = sflow::MacAddr::from_id(1);
  spec.dst_mac = sflow::MacAddr::from_id(2);
  spec.src_ip = Ipv4Addr{10, 0, 0, 1};
  spec.dst_ip = Ipv4Addr{10, 0, 0, 2};
  spec.src_port = 80;
  spec.dst_port = 40000;
  sflow::FlowSample sample;
  sample.sequence = seq;
  sample.sampling_rate = 16384;
  const char payload[] = "HTTP/1.1 200 OK\r\n";
  std::vector<std::byte> data(sizeof payload - 1);
  std::memcpy(data.data(), payload, data.size());
  sample.frame = sflow::build_tcp_frame(spec, data, 1000 + seq % 400);
  return sample;
}

std::vector<sflow::FlowSample> make_samples(std::size_t n) {
  std::vector<sflow::FlowSample> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    samples.push_back(make_sample(static_cast<std::uint32_t>(i)));
  return samples;
}

/// Writes samples through TraceWriter and returns the full trace image.
std::vector<std::byte> record_trace(const std::vector<sflow::FlowSample>& samples,
                                    std::size_t batch = 7) {
  std::stringstream buffer;
  {
    sflow::TraceWriter writer{buffer, Ipv4Addr{172, 16, 0, 1}, batch};
    for (const auto& s : samples) writer.write(s);
  }
  const std::string raw = buffer.str();
  std::vector<std::byte> bytes(raw.size());
  std::memcpy(bytes.data(), raw.data(), raw.size());
  return bytes;
}

/// Drains a source completely; every batch appended as (first_seq, count).
std::vector<std::pair<std::uint64_t, std::size_t>> drain(IngestSource& source) {
  std::vector<std::pair<std::uint64_t, std::size_t>> batches;
  SampleBatch batch;
  while (source.next_batch(batch) == SourceStatus::kBatch)
    batches.emplace_back(batch.first_seq, batch.samples.size());
  return batches;
}

TEST(FunctionSource, RunningKeysAndEnd) {
  std::size_t calls = 0;
  FunctionSource source{[&calls](std::vector<sflow::FlowSample>& out) {
    out.clear();
    if (calls == 3) return std::size_t{0};
    const std::size_t n = 5 + calls;  // 5, 6, 7
    for (std::size_t i = 0; i < n; ++i) out.push_back(make_sample(0));
    ++calls;
    return n;
  }};
  const auto batches = drain(source);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0], (std::pair<std::uint64_t, std::size_t>{0, 5}));
  EXPECT_EQ(batches[1], (std::pair<std::uint64_t, std::size_t>{5, 6}));
  EXPECT_EQ(batches[2], (std::pair<std::uint64_t, std::size_t>{11, 7}));
  EXPECT_TRUE(source.ok());
  EXPECT_EQ(source.stats().samples, 0u);  // in-memory: taxonomy is zeros
}

TEST(SpanSource, BatchBoundariesAndKeys) {
  const auto samples = make_samples(10);
  SpanSource source{samples, /*batch_size=*/4};
  const auto batches = drain(source);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0], (std::pair<std::uint64_t, std::size_t>{0, 4}));
  EXPECT_EQ(batches[1], (std::pair<std::uint64_t, std::size_t>{4, 4}));
  EXPECT_EQ(batches[2], (std::pair<std::uint64_t, std::size_t>{8, 2}));
}

TEST(SpanSource, SplitPartitionsExactlyTheSerialBatches) {
  const auto samples = make_samples(103);
  for (const std::size_t want : {1u, 2u, 3u, 7u, 64u}) {
    SCOPED_TRACE("want=" + std::to_string(want));
    SpanSource serial{samples, 8};
    const auto expected = drain(serial);

    SpanSource parent{samples, 8};
    auto parts = parent.split(want);
    ASSERT_FALSE(parts.empty());
    EXPECT_LE(parts.size(), want);
    std::vector<std::pair<std::uint64_t, std::size_t>> combined;
    for (const auto& part : parts) {
      const auto batches = drain(*part);
      combined.insert(combined.end(), batches.begin(), batches.end());
    }
    // Sub-sources cut on batch boundaries: the union of their batches is
    // the serial batch list (order across parts is by construction).
    std::sort(combined.begin(), combined.end());
    EXPECT_EQ(combined, expected);
  }
}

TEST(SpanSource, SplitAfterPartialConsumptionCoversOnlyTheRemainder) {
  const auto samples = make_samples(40);
  SpanSource source{samples, 8};
  SampleBatch batch;
  ASSERT_EQ(source.next_batch(batch), SourceStatus::kBatch);  // consume [0,8)
  auto parts = source.split(4);
  ASSERT_FALSE(parts.empty());
  std::vector<std::pair<std::uint64_t, std::size_t>> combined;
  for (const auto& part : parts) {
    const auto batches = drain(*part);
    combined.insert(combined.end(), batches.begin(), batches.end());
  }
  std::sort(combined.begin(), combined.end());
  const std::vector<std::pair<std::uint64_t, std::size_t>> expected{
      {8, 8}, {16, 8}, {24, 8}, {32, 8}};
  EXPECT_EQ(combined, expected);
}

TEST(ReaderSource, OffsetDerivedKeysAndStatsPassthrough) {
  const auto samples = make_samples(50);
  const auto bytes = record_trace(samples, /*batch=*/7);
  std::stringstream in{std::string{
      reinterpret_cast<const char*>(bytes.data()), bytes.size()}};
  sflow::TraceReader reader{in, sflow::ReadPolicy::lenient()};
  ASSERT_TRUE(reader.ok());

  ReaderSource source{reader};
  SampleBatch batch;
  std::uint64_t delivered = 0;
  std::uint64_t previous_key = 0;
  while (source.next_batch(batch) == SourceStatus::kBatch) {
    // Keys are stream_seq_key(offset, 0): strictly increasing, low 16
    // bits clear, and the first record starts right after the header.
    EXPECT_EQ(batch.first_seq & 0xFFFF, 0u);
    if (delivered == 0) {
      EXPECT_EQ(batch.first_seq,
                sflow::stream_seq_key(sflow::kTraceHeaderBytes, 0));
    } else {
      EXPECT_GT(batch.first_seq, previous_key);
    }
    previous_key = batch.first_seq;
    delivered += batch.samples.size();
  }
  EXPECT_EQ(delivered, samples.size());
  EXPECT_TRUE(source.ok());
  EXPECT_EQ(source.stats().samples, reader.stats().samples);
  EXPECT_EQ(source.stats().bytes_delivered, reader.stats().bytes_delivered);
  EXPECT_EQ(sflow::kTraceHeaderBytes + source.stats().bytes_delivered +
                source.stats().bytes_skipped,
            bytes.size());
}

/// Mapped and streamed walks over the same bytes must deliver the same
/// (key, count) batch list and the same exact taxonomy — clean or damaged.
TEST(MappedSource, SerialWalkMatchesStreamedReader) {
  const auto clean = record_trace(make_samples(80));
  std::vector<std::byte> corrupted;
  {
    const sflow::FaultInjector injector{7};
    const auto report = injector.corrupt(clean, corrupted);
    ASSERT_TRUE(report);
    ASSERT_GT(report->faults(), 0u);
  }

  const std::vector<std::byte>* variants[] = {&clean, &corrupted};
  for (const auto* bytes : variants) {
    SCOPED_TRACE(bytes == &clean ? "clean" : "corrupted");
    std::stringstream in{std::string{
        reinterpret_cast<const char*>(bytes->data()), bytes->size()}};
    sflow::TraceReader reader{in, sflow::ReadPolicy::lenient()};
    ASSERT_TRUE(reader.ok());
    ReaderSource streamed{reader};
    const auto expected = drain(streamed);

    MappedSource mapped{std::span<const std::byte>{*bytes},
                        sflow::ReadPolicy::lenient()};
    const auto actual = drain(mapped);
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(mapped.stats(), reader.stats());
    EXPECT_TRUE(mapped.within_budget());
  }
}

TEST(MappedSource, SplitPartitionsStreamAndAccounting) {
  const auto clean = record_trace(make_samples(120));
  std::vector<std::byte> corrupted;
  {
    const sflow::FaultInjector injector{7};
    ASSERT_TRUE(injector.corrupt(clean, corrupted));
  }

  const std::vector<std::byte>* variants[] = {&clean, &corrupted};
  for (const auto* bytes : variants) {
    SCOPED_TRACE(bytes == &clean ? "clean" : "corrupted");
    MappedSource serial{std::span<const std::byte>{*bytes},
                        sflow::ReadPolicy::lenient()};
    auto expected = drain(serial);
    std::sort(expected.begin(), expected.end());

    MappedSource parent{std::span<const std::byte>{*bytes},
                        sflow::ReadPolicy::lenient()};
    auto parts = parent.split(4);
    ASSERT_FALSE(parts.empty());
    std::vector<std::pair<std::uint64_t, std::size_t>> combined;
    for (const auto& part : parts) {
      const auto batches = drain(*part);
      combined.insert(combined.end(), batches.begin(), batches.end());
    }
    std::sort(combined.begin(), combined.end());
    EXPECT_EQ(combined, expected);

    // Per-segment stats partition the whole-file taxonomy byte for byte.
    EXPECT_EQ(parent.stats(), serial.stats());
    ASSERT_EQ(parent.per_segment().size(), parent.segments().size());
    sflow::ReaderStats resummed;
    for (const auto& s : parent.per_segment()) resummed += s;
    EXPECT_EQ(resummed, parent.stats());
    EXPECT_EQ(sflow::kTraceHeaderBytes + resummed.bytes_delivered +
                  resummed.bytes_skipped,
              bytes->size());
  }
}

TEST(MappedSource, StrictPolicyClearsOkOnDamage) {
  // Deterministic damage (a seeded fault mix can come out all benign on a
  // small trace): stomp a byte range mid-file so at least one record is
  // undecodable no matter how the record boundaries fall.
  auto corrupted = record_trace(make_samples(60));
  ASSERT_GT(corrupted.size(), sflow::kTraceHeaderBytes + 300u);
  for (std::size_t i = 0; i < 200; ++i)
    corrupted[sflow::kTraceHeaderBytes + 64 + i] = std::byte{0xFF};

  MappedSource source{std::span<const std::byte>{corrupted},
                      sflow::ReadPolicy::strict()};
  (void)drain(source);
  EXPECT_GT(source.stats().errors(), 0u);
  EXPECT_FALSE(source.within_budget());
  EXPECT_FALSE(source.ok());

  MappedSource lenient{std::span<const std::byte>{corrupted},
                       sflow::ReadPolicy::lenient()};
  (void)drain(lenient);
  EXPECT_TRUE(lenient.ok());
}

}  // namespace
}  // namespace ixp::ingest
