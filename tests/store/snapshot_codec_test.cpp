// The codec contract (DESIGN.md §13): canonical, byte-stable encoding of
// WeekShard and WeeklyReport, lossless round trips, and — the property
// resume rests on — a decoded shard that merges with live shards exactly
// as the original would have. Decoders are strict: truncated or padded
// bytes never decode.
#include "store/snapshot_codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/vantage_point.hpp"
#include "core/week_shard.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "store/snapshot_store.hpp"

namespace ixp::store {
namespace {

constexpr int kWeek = 45;

class SnapshotCodecTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    model_ = new gen::InternetModel{gen::ScaleConfig::test()};
    std::vector<net::Asn> members;
    for (const auto* m : model_->ixp().members_at(kWeek))
      members.push_back(m->asn);
    locality_ = new std::unordered_map<net::Asn, net::Locality>(
        model_->as_graph().classify(members));
    samples_ = new std::vector<sflow::FlowSample>;
    const gen::Workload workload{*model_};
    workload.generate_week(
        kWeek, [](const sflow::FlowSample& s) { samples_->push_back(s); });
  }

  static void TearDownTestSuite() {
    delete samples_;
    delete locality_;
    delete model_;
  }

  static core::VantagePoint make_vantage() {
    return core::VantagePoint{model_->ixp(),   model_->routing(),
                              model_->geo_db(), *locality_,
                              model_->dns_db(),
                              dns::PublicSuffixList::builtin(),
                              model_->root_store()};
  }

  static classify::ChainFetcher fetcher() {
    return [](net::Ipv4Addr addr, int times) {
      return model_->fetch_chains(addr, times, kWeek);
    };
  }

  /// A shard that observed samples [begin, end) at their true stream
  /// positions — the per-worker artifact the engine produces.
  static core::WeekShard observe_range(const core::WeekSession& session,
                                       std::size_t begin, std::size_t end) {
    core::WeekShard shard = session.make_shard();
    for (std::size_t i = begin; i < end; ++i)
      shard.observe((*samples_)[i], static_cast<std::uint64_t>(i));
    return shard;
  }

  static gen::InternetModel* model_;
  static std::unordered_map<net::Asn, net::Locality>* locality_;
  static std::vector<sflow::FlowSample>* samples_;
};

gen::InternetModel* SnapshotCodecTest::model_ = nullptr;
std::unordered_map<net::Asn, net::Locality>* SnapshotCodecTest::locality_ =
    nullptr;
std::vector<sflow::FlowSample>* SnapshotCodecTest::samples_ = nullptr;

TEST_F(SnapshotCodecTest, ShardRoundTripIsLosslessAndByteStable) {
  auto vp = make_vantage();
  const core::WeekSession session = vp.open_week(kWeek);
  const core::WeekShard shard = observe_range(session, 0, samples_->size());
  ASSERT_GT(shard.samples_observed(), 0u);

  const auto bytes = SnapshotCodec::encode_shard(shard);
  ASSERT_FALSE(bytes.empty());
  // Canonical form: encoding the same state twice is byte-identical.
  EXPECT_EQ(SnapshotCodec::encode_shard(shard), bytes);

  const auto decoded = SnapshotCodec::decode_shard(bytes, model_->ixp());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->week(), kWeek);
  EXPECT_EQ(decoded->samples_observed(), shard.samples_observed());
  EXPECT_EQ(decoded->counters(), shard.counters());
  // The round trip re-encodes to the exact same bytes.
  EXPECT_EQ(SnapshotCodec::encode_shard(*decoded), bytes);
}

TEST_F(SnapshotCodecTest, DecodedShardMergesExactlyLikeTheLiveOne) {
  auto vp = make_vantage();
  const core::WeekSession session = vp.open_week(kWeek);
  const std::size_t half = samples_->size() / 2;

  const core::WeekShard a = observe_range(session, 0, half);
  const core::WeekShard b = observe_range(session, half, samples_->size());

  // Live path: merge the second worker shard directly.
  core::WeekShard live = a;
  {
    core::WeekShard b_live = b;
    live.merge(std::move(b_live));
  }

  // Persisted path: the second shard goes to bytes and back first.
  core::WeekShard resumed = a;
  {
    const auto bytes = SnapshotCodec::encode_shard(b);
    auto b_decoded = SnapshotCodec::decode_shard(bytes, model_->ixp());
    ASSERT_TRUE(b_decoded.has_value());
    resumed.merge(std::move(*b_decoded));
  }

  // The monoid survives persistence: merged states are byte-identical,
  // and so are the reports they finish into.
  EXPECT_EQ(SnapshotCodec::encode_shard(resumed),
            SnapshotCodec::encode_shard(live));
  const auto live_report = vp.finish_week(std::move(live), fetcher());
  const auto resumed_report = vp.finish_week(std::move(resumed), fetcher());
  EXPECT_EQ(SnapshotCodec::encode_report(resumed_report),
            SnapshotCodec::encode_report(live_report));
}

TEST_F(SnapshotCodecTest, ReportRoundTripIsLosslessAndByteStable) {
  auto vp = make_vantage();
  core::WeekSession session = vp.open_week(kWeek);
  session.observe_batch(*samples_);
  const core::WeeklyReport report = session.finish(fetcher());
  ASSERT_GT(report.server_ips, 0u);
  ASSERT_FALSE(report.servers.empty());

  const auto bytes = SnapshotCodec::encode_report(report);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(SnapshotCodec::encode_report(report), bytes);

  const auto decoded = SnapshotCodec::decode_report(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->week, report.week);
  EXPECT_EQ(decoded->filters, report.filters);
  EXPECT_EQ(decoded->dissection, report.dissection);
  EXPECT_EQ(decoded->peering_ips, report.peering_ips);
  EXPECT_EQ(decoded->server_ips, report.server_ips);
  EXPECT_EQ(decoded->by_country, report.by_country);
  EXPECT_EQ(decoded->by_as, report.by_as);
  ASSERT_EQ(decoded->servers.size(), report.servers.size());
  for (std::size_t i = 0; i < report.servers.size(); ++i) {
    EXPECT_EQ(decoded->servers[i].addr, report.servers[i].addr);
    EXPECT_EQ(decoded->servers[i].bytes, report.servers[i].bytes);
    EXPECT_EQ(decoded->servers[i].country, report.servers[i].country);
  }
  // Full-fidelity check in one stroke: the decoded report re-encodes to
  // the same bytes, so every encoded field survived.
  EXPECT_EQ(SnapshotCodec::encode_report(*decoded), bytes);
}

TEST_F(SnapshotCodecTest, DegradedFlagAndWorkerErrorsSurviveTheRoundTrip) {
  auto vp = make_vantage();
  core::WeekSession session = vp.open_week(kWeek);
  session.observe_batch(*samples_);
  core::WeeklyReport report = session.finish(fetcher());
  report.degraded = true;
  report.worker_errors = {0, 3, 1};

  const auto bytes = SnapshotCodec::encode_report(report);
  const auto decoded = SnapshotCodec::decode_report(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->degraded);
  EXPECT_EQ(decoded->worker_errors, report.worker_errors);
}

TEST_F(SnapshotCodecTest, StrictDecodersRejectTruncationAndPadding) {
  auto vp = make_vantage();
  const core::WeekSession session = vp.open_week(kWeek);
  const core::WeekShard shard = observe_range(session, 0, 256);
  const auto shard_bytes = SnapshotCodec::encode_shard(shard);

  core::WeekSession full = vp.open_week(kWeek);
  full.observe_batch(*samples_);
  const auto report_bytes =
      SnapshotCodec::encode_report(full.finish(fetcher()));

  for (const auto* bytes : {&shard_bytes, &report_bytes}) {
    auto truncated = *bytes;
    truncated.resize(truncated.size() - 1);
    auto padded = *bytes;
    padded.push_back(std::byte{0});
    if (bytes == &shard_bytes) {
      EXPECT_FALSE(
          SnapshotCodec::decode_shard(truncated, model_->ixp()).has_value());
      EXPECT_FALSE(
          SnapshotCodec::decode_shard(padded, model_->ixp()).has_value());
      EXPECT_FALSE(SnapshotCodec::decode_shard({}, model_->ixp()).has_value());
    } else {
      EXPECT_FALSE(SnapshotCodec::decode_report(truncated).has_value());
      EXPECT_FALSE(SnapshotCodec::decode_report(padded).has_value());
      EXPECT_FALSE(SnapshotCodec::decode_report({}).has_value());
    }
  }
}

TEST(ProvenanceCodec, RoundTripPreservesEveryField) {
  Provenance provenance;
  provenance.format_version = kFormatVersion;
  provenance.week = 45;
  provenance.partial = true;
  provenance.model_fingerprint = 0xdead'beef'cafe'f00dull;
  provenance.ingest_fingerprint = 0x0123'4567'89ab'cdefull;

  const auto bytes = SnapshotCodec::encode_provenance(provenance);
  const auto decoded = SnapshotCodec::decode_provenance(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, provenance);

  // Byte-stable: re-encoding the decoded record reproduces the bytes.
  EXPECT_EQ(SnapshotCodec::encode_provenance(*decoded), bytes);
}

TEST(ProvenanceCodec, StrictDecodeRejectsDamage) {
  Provenance provenance;
  provenance.format_version = kFormatVersion;
  provenance.week = 45;
  const auto bytes = SnapshotCodec::encode_provenance(provenance);

  auto truncated = bytes;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(SnapshotCodec::decode_provenance(truncated).has_value());

  auto padded = bytes;
  padded.push_back(std::byte{0});
  EXPECT_FALSE(SnapshotCodec::decode_provenance(padded).has_value());

  EXPECT_FALSE(SnapshotCodec::decode_provenance({}).has_value());

  // The partial flag is a strict bool on the wire: any byte past 1 is a
  // format violation, not a truthy value.
  auto bad_flag = bytes;
  bad_flag[8] = std::byte{2};  // u32 version + u32 week precede the flag
  EXPECT_FALSE(SnapshotCodec::decode_provenance(bad_flag).has_value());
}

TEST(ProvenanceCodec, CombinedFingerprintSeparatesEveryField) {
  // combined() must react to each field independently — a fingerprint
  // that aliases (week=1,partial=0) with (week=0,partial=1) would let a
  // stale snapshot masquerade as fresh.
  const Provenance base{kFormatVersion, 45, false, 7, 9};
  std::vector<Provenance> variants{base};
  for (int field = 0; field < 5; ++field) {
    Provenance p = base;
    if (field == 0) p.format_version += 1;
    if (field == 1) p.week += 1;
    if (field == 2) p.partial = !p.partial;
    if (field == 3) p.model_fingerprint += 1;
    if (field == 4) p.ingest_fingerprint += 1;
    variants.push_back(p);
  }
  std::vector<std::uint64_t> hashes;
  for (const auto& p : variants) hashes.push_back(p.combined());
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end());
}

}  // namespace
}  // namespace ixp::store
