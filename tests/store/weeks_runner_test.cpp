// The resumable longitudinal driver's acceptance contract: for every
// injected crash point and every storage fault class, a re-run of
// `weeks` resumes from the durable snapshots and produces a final
// longitudinal report byte-identical to an uninterrupted run. Runs under
// both sanitizer presets (faults + tsan labels) — the driver sits on top
// of the parallel engine.
#include "store/weeks_runner.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/parallel_analyzer.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "ingest/ingest_source.hpp"
#include "store/snapshot_codec.hpp"
#include "store/store_fault.hpp"

namespace ixp::store {
namespace {

namespace fs = std::filesystem;

constexpr int kFromWeek = 44;
constexpr int kToWeek = 46;

/// Owns one generated week's samples and batches them through a
/// SpanSource — the same adapter shape `ixpscope weeks` uses.
class OwnedWeekSource final : public ingest::IngestSource {
 public:
  explicit OwnedWeekSource(std::vector<sflow::FlowSample> samples)
      : samples_(std::move(samples)), span_(samples_, 512) {}

  ingest::SourceStatus next_batch(ingest::SampleBatch& out) override {
    return span_.next_batch(out);
  }
  std::vector<std::unique_ptr<ingest::IngestSource>> split(
      std::size_t want) override {
    return span_.split(want);
  }

 private:
  std::vector<sflow::FlowSample> samples_;
  ingest::SpanSource span_;
};

class WeeksRunnerTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    model_ = new gen::InternetModel{gen::ScaleConfig::test()};
    std::vector<net::Asn> members;
    for (const auto* m : model_->ixp().members_at(kToWeek))
      members.push_back(m->asn);
    locality_ = new std::unordered_map<net::Asn, net::Locality>(
        model_->as_graph().classify(members));
    week_samples_ = new std::map<int, std::vector<sflow::FlowSample>>;
    const gen::Workload workload{*model_};
    for (int week = kFromWeek; week <= kToWeek; ++week) {
      auto& samples = (*week_samples_)[week];
      workload.generate_week(
          week, [&](const sflow::FlowSample& s) { samples.push_back(s); });
    }
  }

  static void TearDownTestSuite() {
    delete week_samples_;
    delete locality_;
    delete model_;
  }

  static core::VantagePoint make_vantage() {
    return core::VantagePoint{model_->ixp(),   model_->routing(),
                              model_->geo_db(), *locality_,
                              model_->dns_db(),
                              dns::PublicSuffixList::builtin(),
                              model_->root_store()};
  }

  static WeeksRunner::SourceFactory source_factory() {
    return [](int week) -> std::unique_ptr<ingest::IngestSource> {
      return std::make_unique<OwnedWeekSource>(week_samples_->at(week));
    };
  }

  static WeeksRunner::FetcherFactory fetcher_factory() {
    return [](int week) -> classify::ChainFetcher {
      return [week](net::Ipv4Addr addr, int times) {
        return model_->fetch_chains(addr, times, week);
      };
    };
  }

  /// One full driver invocation against `dir`. The fingerprints default
  /// to 0 = "unchanged inputs" — tests that exercise the provenance check
  /// pass distinct values across runs.
  static WeeksResult run_weeks(const std::string& dir,
                               const CommitHooks* hooks = nullptr,
                               unsigned threads = 2,
                               std::uint64_t model_fingerprint = 0,
                               std::uint64_t ingest_fingerprint = 0) {
    auto vp = make_vantage();
    core::ParallelOptions popt;
    popt.threads = threads;
    core::ParallelAnalyzer analyzer{vp, popt};
    WeeksRunner runner{vp, analyzer, SnapshotStore{dir}};
    WeeksOptions options;
    options.from_week = kFromWeek;
    options.to_week = kToWeek;
    options.model_fingerprint = model_fingerprint;
    options.ingest_fingerprint = ingest_fingerprint;
    return runner.run(options, source_factory(), fetcher_factory(), hooks);
  }

  static gen::InternetModel* model_;
  static std::unordered_map<net::Asn, net::Locality>* locality_;
  static std::map<int, std::vector<sflow::FlowSample>>* week_samples_;
};

gen::InternetModel* WeeksRunnerTest::model_ = nullptr;
std::unordered_map<net::Asn, net::Locality>* WeeksRunnerTest::locality_ =
    nullptr;
std::map<int, std::vector<sflow::FlowSample>>* WeeksRunnerTest::week_samples_ =
    nullptr;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(testing::TempDir() + "ixpscope_weeks_" + tag + "_" +
              std::to_string(::getpid())) {
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Byte-level equality of two runs: every per-week report encodes to the
/// same bytes and the longitudinal summaries are equal.
void expect_runs_identical(const WeeksResult& a, const WeeksResult& b) {
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_EQ(a.weeks.size(), b.weeks.size());
  for (std::size_t i = 0; i < a.weeks.size(); ++i) {
    SCOPED_TRACE("week " + std::to_string(a.weeks[i].week));
    EXPECT_EQ(a.weeks[i].week, b.weeks[i].week);
    EXPECT_EQ(SnapshotCodec::encode_report(a.weeks[i].report),
              SnapshotCodec::encode_report(b.weeks[i].report));
  }
  EXPECT_EQ(a.longitudinal, b.longitudinal);
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in) << path;
  std::vector<char> raw{std::istreambuf_iterator<char>{in},
                        std::istreambuf_iterator<char>{}};
  std::vector<std::byte> out(raw.size());
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

void write_file(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream out{path, std::ios::binary};
  ASSERT_TRUE(out) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST_F(WeeksRunnerTest, FirstRunComputesSecondRunResumesByteIdentical) {
  const TempDir dir{"resume"};
  const auto first = run_weeks(dir.path());
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.weeks_computed, 3u);
  EXPECT_EQ(first.weeks_resumed, 0u);
  for (int week = kFromWeek; week <= kToWeek; ++week)
    EXPECT_TRUE(fs::exists(SnapshotStore{dir.path()}.path_for(week)));

  const auto second = run_weeks(dir.path(), nullptr, /*threads=*/4);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.weeks_computed, 0u);
  EXPECT_EQ(second.weeks_resumed, 3u);
  for (const auto& outcome : second.weeks) EXPECT_TRUE(outcome.resumed);
  expect_runs_identical(first, second);

  // The §4 summary is non-trivial at this scale, not a vacuous equality.
  EXPECT_GT(second.longitudinal.server_universe, 0u);
  EXPECT_GT(second.longitudinal.always_on_servers, 0u);
  EXPECT_GT(second.longitudinal.mean_weekly_churn, 0.0);
}

TEST_F(WeeksRunnerTest, EveryCrashPointRecoversToByteIdenticalRun) {
  const TempDir baseline_dir{"crash_baseline"};
  const auto baseline = run_weeks(baseline_dir.path());
  ASSERT_TRUE(baseline.ok) << baseline.error;

  for (const CrashPoint point : kAllCrashPoints) {
    SCOPED_TRACE(crash_point_name(point));
    const TempDir dir{std::string{"crash_"} + crash_point_name(point)};

    // First attempt dies at the injected point of week 44's commit.
    const CommitHooks hooks = StoreFaultInjector::crash_at(point);
    EXPECT_THROW((void)run_weeks(dir.path(), &hooks), InjectedCrash);

    // The restart: sweeps any crash residue, resumes whatever is durable,
    // recomputes the rest — and matches the uninterrupted run exactly.
    const auto recovered = run_weeks(dir.path());
    ASSERT_TRUE(recovered.ok) << recovered.error;
    expect_runs_identical(baseline, recovered);
    if (point == CrashPoint::kAfterRename) {
      // The rename beat the crash: week 44 was durable, so the restart
      // must not have recomputed it.
      EXPECT_EQ(recovered.weeks_resumed, 1u);
      EXPECT_EQ(recovered.weeks_computed, 2u);
    } else {
      EXPECT_EQ(recovered.weeks_resumed, 0u);
      EXPECT_EQ(recovered.weeks_computed, 3u);
      EXPECT_GE(recovered.stale_temps_removed,
                point == CrashPoint::kMidTempWrite ? 1u : 0u);
    }
    EXPECT_TRUE(recovered.quarantined.empty());
  }
}

TEST_F(WeeksRunnerTest, EveryStorageFaultIsQuarantinedAndRecomputed) {
  const TempDir baseline_dir{"rot_baseline"};
  const auto baseline = run_weeks(baseline_dir.path());
  ASSERT_TRUE(baseline.ok) << baseline.error;

  for (const StorageFault fault : kAllStorageFaults) {
    SCOPED_TRACE(storage_fault_name(fault));
    const TempDir dir{std::string{"rot_"} + storage_fault_name(fault)};
    ASSERT_TRUE(run_weeks(dir.path()).ok);

    // Rot the middle week's committed snapshot.
    const SnapshotStore store{dir.path()};
    const std::string victim = store.path_for(45);
    auto image = read_file(victim);
    StoreFaultInjector injector{11};
    injector.apply(fault, image);
    write_file(victim, image);

    const auto recovered = run_weeks(dir.path());
    ASSERT_TRUE(recovered.ok) << recovered.error;
    // The rot was caught, moved aside, and only that week recomputed.
    ASSERT_EQ(recovered.quarantined.size(), 1u);
    EXPECT_EQ(recovered.quarantined[0].file, victim);
    EXPECT_NE(recovered.quarantined[0].error, SnapshotError::kNone);
    EXPECT_TRUE(fs::exists(recovered.quarantined[0].quarantined_as));
    EXPECT_EQ(recovered.weeks_resumed, 2u);
    EXPECT_EQ(recovered.weeks_computed, 1u);
    expect_runs_identical(baseline, recovered);

    // The recompute re-committed the week: a third run resumes everything.
    const auto third = run_weeks(dir.path());
    ASSERT_TRUE(third.ok) << third.error;
    EXPECT_EQ(third.weeks_resumed, 3u);
    expect_runs_identical(baseline, third);
  }
}

TEST_F(WeeksRunnerTest, MatchingProvenanceSkipsStaleProvenanceRecomputes) {
  const TempDir dir{"provenance"};

  // Cold run stamps fingerprint A into every snapshot.
  const auto cold =
      run_weeks(dir.path(), nullptr, 2, /*model=*/0xAAAA, /*ingest=*/0x1111);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.weeks_computed, 3u);
  EXPECT_EQ(cold.weeks_stale, 0u);

  // Same fingerprints: a pure resume — the incremental no-op re-run.
  const auto resumed =
      run_weeks(dir.path(), nullptr, 2, 0xAAAA, 0x1111);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.weeks_resumed, 3u);
  EXPECT_EQ(resumed.weeks_computed, 0u);
  EXPECT_EQ(resumed.weeks_stale, 0u);
  expect_runs_identical(cold, resumed);

  // Model fingerprint changed: every durable week is stale — quarantined
  // with the provenance error class (not deleted) and recomputed.
  const auto stale =
      run_weeks(dir.path(), nullptr, 2, /*model=*/0xBBBB, 0x1111);
  ASSERT_TRUE(stale.ok) << stale.error;
  EXPECT_EQ(stale.weeks_stale, 3u);
  EXPECT_EQ(stale.weeks_computed, 3u);
  EXPECT_EQ(stale.weeks_resumed, 0u);
  ASSERT_EQ(stale.quarantined.size(), 3u);
  for (const auto& event : stale.quarantined) {
    EXPECT_EQ(event.error, SnapshotError::kStaleProvenance);
    EXPECT_TRUE(fs::exists(event.quarantined_as)) << event.quarantined_as;
    EXPECT_NE(event.quarantined_as.find("stale-provenance"),
              std::string::npos);
  }
  // The fingerprint gates reuse, not the computation itself: the recomputed
  // reports are byte-identical to the original run's.
  expect_runs_identical(cold, stale);

  // And the recompute re-stamped the new fingerprint: next run resumes.
  const auto warm = run_weeks(dir.path(), nullptr, 2, 0xBBBB, 0x1111);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.weeks_resumed, 3u);
  EXPECT_EQ(warm.weeks_stale, 0u);
}

TEST_F(WeeksRunnerTest, IngestFingerprintChangeAlsoInvalidates) {
  const TempDir dir{"ingest_provenance"};
  ASSERT_TRUE(run_weeks(dir.path(), nullptr, 2, 0xAAAA, 0x1111).ok);
  const auto stale =
      run_weeks(dir.path(), nullptr, 2, 0xAAAA, /*ingest=*/0x2222);
  ASSERT_TRUE(stale.ok) << stale.error;
  EXPECT_EQ(stale.weeks_stale, 3u);
  EXPECT_EQ(stale.weeks_resumed, 0u);
}

TEST_F(WeeksRunnerTest, ThreadCountDoesNotChangeTheBytes) {
  const TempDir dir1{"threads1"};
  const TempDir dir4{"threads4"};
  const auto serial = run_weeks(dir1.path(), nullptr, /*threads=*/1);
  const auto parallel = run_weeks(dir4.path(), nullptr, /*threads=*/4);
  expect_runs_identical(serial, parallel);
  // The durable artifacts themselves are byte-identical too.
  for (int week = kFromWeek; week <= kToWeek; ++week) {
    SCOPED_TRACE("week " + std::to_string(week));
    EXPECT_EQ(read_file(SnapshotStore{dir1.path()}.path_for(week)),
              read_file(SnapshotStore{dir4.path()}.path_for(week)));
  }
}

TEST_F(WeeksRunnerTest, EmptyRangeIsAPlainError) {
  const TempDir dir{"empty"};
  auto vp = make_vantage();
  core::ParallelOptions popt;
  core::ParallelAnalyzer analyzer{vp, popt};
  WeeksRunner runner{vp, analyzer, SnapshotStore{dir.path()}};
  WeeksOptions options;
  options.from_week = 46;
  options.to_week = 44;
  const auto result =
      runner.run(options, source_factory(), fetcher_factory());
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.store_unreadable);
  EXPECT_FALSE(result.error.empty());
}

TEST_F(WeeksRunnerTest, UnusableStoreDirectorySetsTheDistinctFlag) {
  const TempDir dir{"blocked"};
  fs::create_directories(dir.path());
  const std::string occupied = dir.path() + "/occupied";
  write_file(occupied, std::vector<std::byte>(1));
  const auto result = run_weeks(occupied);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.store_unreadable);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace ixp::store
