// The snapshot container contract (DESIGN.md §13): a sealed image
// round-trips through validation; every storage-rot fault class is
// caught at open with the right SnapshotError (never a crash, never a
// silently wrong payload); commit is crash-consistent at every injected
// crash point; and the store's load/scan path quarantines corruption
// instead of deleting or trusting it.
#include "store/snapshot_store.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/crc32c.hpp"
#include "store/store_fault.hpp"

namespace ixp::store {
namespace {

namespace fs = std::filesystem;

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

/// A small two-section image with asymmetric payloads — enough structure
/// for every fault class to have somewhere interesting to land.
std::vector<std::byte> test_image() {
  const auto shard = bytes_of("shard-payload: the mergeable half");
  const auto report = bytes_of("report-payload");
  const Section sections[] = {
      {kShardSection, shard},
      {kReportSection, report},
  };
  return encode_snapshot(sections);
}

/// A scratch directory per test, cleaned on both ends.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(testing::TempDir() + "ixpscope_store_" + tag + "_" +
              std::to_string(::getpid())) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in) << path;
  std::vector<char> raw{std::istreambuf_iterator<char>{in},
                        std::istreambuf_iterator<char>{}};
  std::vector<std::byte> out(raw.size());
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

void write_file(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream out{path, std::ios::binary};
  ASSERT_TRUE(out) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(SnapshotImage, SealedImageValidatesAndExposesSections) {
  const auto image = test_image();
  ASSERT_GE(image.size(), kSnapshotHeaderBytes + kSnapshotFooterBytes);

  std::vector<SectionView> sections;
  EXPECT_EQ(validate_image(image, &sections), SnapshotError::kNone);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].id, kShardSection);
  EXPECT_EQ(sections[1].id, kReportSection);

  const SnapshotFile file = SnapshotFile::adopt(std::vector<std::byte>{image});
  ASSERT_TRUE(file.ok());
  const auto shard = file.section(kShardSection);
  const auto expected = bytes_of("shard-payload: the mergeable half");
  ASSERT_EQ(shard.size(), expected.size());
  EXPECT_TRUE(std::equal(shard.begin(), shard.end(), expected.begin()));
  EXPECT_TRUE(file.section(999).empty());
}

TEST(SnapshotImage, EmptySectionListAndEmptyPayloadsAreValid) {
  const auto empty = encode_snapshot({});
  EXPECT_EQ(empty.size(), kSnapshotHeaderBytes + kSnapshotFooterBytes);
  EXPECT_EQ(validate_image(empty), SnapshotError::kNone);

  const Section sections[] = {{kShardSection, {}}};
  const auto image = encode_snapshot(sections);
  std::vector<SectionView> views;
  EXPECT_EQ(validate_image(image, &views), SnapshotError::kNone);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].length, 0u);
}

TEST(SnapshotImage, EncodingIsDeterministic) {
  EXPECT_EQ(test_image(), test_image());
}

TEST(SnapshotImage, HandRolledDamageMapsToDistinctErrors) {
  const auto image = test_image();

  {  // Too short: any prefix smaller than header + footer.
    std::vector<std::byte> cut(image.begin(), image.begin() + 10);
    EXPECT_EQ(validate_image(cut), SnapshotError::kTooShort);
  }
  {  // Header magic.
    auto bad = image;
    bad[0] = std::byte{'X'};
    EXPECT_EQ(validate_image(bad), SnapshotError::kBadMagic);
  }
  {  // Header version.
    auto bad = image;
    bad[8] = std::byte{0xEE};
    EXPECT_EQ(validate_image(bad), SnapshotError::kBadVersion);
  }
  {  // Payload bit flip under a section CRC.
    auto bad = image;
    bad[kSnapshotHeaderBytes + kSectionHeaderBytes] ^= std::byte{0x01};
    EXPECT_EQ(validate_image(bad), SnapshotError::kBadCrc);
  }
  {  // Lost tail: the file no longer ends in a seal naming its own size.
    auto bad = image;
    bad.resize(bad.size() - 1);
    EXPECT_EQ(validate_image(bad), SnapshotError::kTruncatedSection);
  }
  {  // Appended garbage is just as torn as a lost tail.
    auto bad = image;
    bad.push_back(std::byte{0});
    EXPECT_EQ(validate_image(bad), SnapshotError::kTruncatedSection);
  }
}

TEST(SnapshotImage, ErrorNamesAndTagsAreDistinct) {
  const SnapshotError all[] = {
      SnapshotError::kNone,       SnapshotError::kOpenFailed,
      SnapshotError::kTooShort,   SnapshotError::kBadMagic,
      SnapshotError::kBadVersion, SnapshotError::kBadCrc,
      SnapshotError::kTruncatedSection,
      SnapshotError::kStaleProvenance,
  };
  std::vector<std::string> names;
  std::vector<std::string> tags;
  for (const auto error : all) {
    names.emplace_back(error_name(error));
    tags.emplace_back(error_tag(error));
  }
  std::sort(names.begin(), names.end());
  std::sort(tags.begin(), tags.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  EXPECT_EQ(std::adjacent_find(tags.begin(), tags.end()), tags.end());
}

/// Every storage-rot fault class, several seeds each: validation must
/// reject the damaged image with an error from the class's expected set —
/// and never kNone, never a crash.
TEST(StorageFaultMatrix, EveryFaultClassIsCaughtWithTheRightError) {
  const auto pristine = test_image();
  for (const StorageFault fault : kAllStorageFaults) {
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      SCOPED_TRACE(std::string{storage_fault_name(fault)} + " seed " +
                   std::to_string(seed));
      StoreFaultInjector injector{seed};
      auto image = pristine;
      injector.apply(fault, image);
      ASSERT_NE(image, pristine) << "fault was a no-op";

      const SnapshotError error = validate_image(image);
      EXPECT_NE(error, SnapshotError::kNone);
      switch (fault) {
        case StorageFault::kTornTail:
        case StorageFault::kDuplicatedFooter:
          EXPECT_EQ(error, SnapshotError::kTruncatedSection);
          break;
        case StorageFault::kMidTruncation:
          EXPECT_TRUE(error == SnapshotError::kTooShort ||
                      error == SnapshotError::kTruncatedSection)
              << error_name(error);
          break;
        case StorageFault::kHeaderBitFlip:
          EXPECT_TRUE(error == SnapshotError::kBadMagic ||
                      error == SnapshotError::kBadVersion ||
                      error == SnapshotError::kBadCrc ||
                      error == SnapshotError::kTruncatedSection)
              << error_name(error);
          break;
        case StorageFault::kSectionBitFlip:
          EXPECT_TRUE(error == SnapshotError::kBadCrc ||
                      error == SnapshotError::kTruncatedSection)
              << error_name(error);
          break;
        case StorageFault::kCrcFieldBitFlip:
          EXPECT_EQ(error, SnapshotError::kBadCrc);
          break;
      }
    }
  }
}

TEST(Crc32c, MatchesKnownVectorAndIsIncremental) {
  // RFC 3720 test vector: crc32c of 32 zero bytes.
  const std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  // Incremental == one-shot.
  const auto data = bytes_of("incremental checksum check");
  const auto whole = crc32c(data);
  const auto split = crc32c(std::span{data}.subspan(7),
                            crc32c(std::span{data}.first(7)));
  EXPECT_EQ(whole, split);
}

TEST(CommitSnapshot, RoundTripsThroughOpen) {
  const TempDir dir{"commit"};
  const std::string path = dir.path() + "/week_0001.snap";
  const auto image = test_image();
  std::string error;
  ASSERT_TRUE(commit_snapshot(path, image, &error)) << error;
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  const SnapshotFile file = SnapshotFile::open(path);
  ASSERT_TRUE(file.ok()) << error_name(file.error());
  ASSERT_EQ(file.bytes().size(), image.size());
  EXPECT_TRUE(std::equal(file.bytes().begin(), file.bytes().end(),
                         image.begin()));
}

TEST(CommitSnapshot, MissingFileIsOpenFailedNotACrash) {
  const TempDir dir{"missing"};
  const SnapshotFile file = SnapshotFile::open(dir.path() + "/absent.snap");
  EXPECT_FALSE(file.ok());
  EXPECT_EQ(file.error(), SnapshotError::kOpenFailed);
}

/// The crash matrix: at every injected crash point the destination is
/// either absent, the old committed image, or the complete new one —
/// never a torn file under the committed name.
TEST(CommitSnapshot, EveryCrashPointLeavesDestinationCleanOrCommitted) {
  const auto image = test_image();
  for (const CrashPoint point : kAllCrashPoints) {
    SCOPED_TRACE(crash_point_name(point));
    const TempDir dir{std::string{"crash_"} + crash_point_name(point)};
    const std::string path = dir.path() + "/week_0001.snap";
    const CommitHooks hooks = StoreFaultInjector::crash_at(point);

    std::string error;
    EXPECT_THROW((void)commit_snapshot(path, image, &error, &hooks),
                 InjectedCrash);

    if (point == CrashPoint::kAfterRename) {
      // The rename happened before the "kill": the snapshot is durable.
      const SnapshotFile file = SnapshotFile::open(path);
      EXPECT_TRUE(file.ok()) << error_name(file.error());
    } else {
      // Died before rename: the committed name must not exist; at most a
      // temp file (possibly torn) is left for scan() to sweep.
      EXPECT_FALSE(fs::exists(path));
    }

    // Recovery: a scan sweeps any leftover temp, and a clean re-commit
    // lands the snapshot regardless of what the crash left behind.
    const SnapshotStore store{dir.path()};
    const auto scan = store.scan();
    ASSERT_TRUE(scan.readable) << scan.error;
    EXPECT_TRUE(scan.quarantined.empty());
    ASSERT_TRUE(commit_snapshot(path, image, &error)) << error;
    EXPECT_TRUE(SnapshotFile::open(path).ok());
    EXPECT_FALSE(fs::exists(path + ".tmp"));
  }
}

TEST(CommitSnapshot, OverwritingAnExistingSnapshotIsAtomic) {
  const TempDir dir{"overwrite"};
  const std::string path = dir.path() + "/week_0002.snap";
  const auto old_image = test_image();
  std::string error;
  ASSERT_TRUE(commit_snapshot(path, old_image, &error)) << error;

  // Die mid-temp-write while replacing: the old snapshot must survive.
  const auto new_payload = bytes_of("a different, longer shard payload .....");
  const Section sections[] = {{kShardSection, new_payload}};
  const auto new_image = encode_snapshot(sections);
  const CommitHooks hooks =
      StoreFaultInjector::crash_at(CrashPoint::kMidTempWrite);
  EXPECT_THROW((void)commit_snapshot(path, new_image, &error, &hooks),
               InjectedCrash);
  const auto on_disk = read_file(path);
  EXPECT_EQ(on_disk, old_image);
}

TEST(SnapshotStore, SaveLoadScanAndQuarantine) {
  const TempDir dir{"store"};
  const SnapshotStore store{dir.path()};
  std::string error;
  ASSERT_TRUE(store.ensure_dir(&error)) << error;

  const auto shard = bytes_of("shard");
  const auto report = bytes_of("report");
  const Section sections[] = {
      {kShardSection, shard},
      {kReportSection, report},
  };
  ASSERT_TRUE(store.save(3, sections, &error)) << error;
  ASSERT_TRUE(store.save(5, sections, &error)) << error;

  // Plant a stale temp — the residue of a crash between write and rename.
  write_file(store.path_for(9) + ".tmp", bytes_of("torn"));

  auto scan = store.scan();
  ASSERT_TRUE(scan.readable) << scan.error;
  EXPECT_EQ(scan.weeks, (std::vector<int>{3, 5}));
  EXPECT_EQ(scan.stale_temps_removed, 1u);
  EXPECT_FALSE(fs::exists(store.path_for(9) + ".tmp"));

  // Rot week 3 on disk: load() must quarantine, not trust or delete.
  auto rotten = read_file(store.path_for(3));
  rotten[kSnapshotHeaderBytes + kSectionHeaderBytes] ^= std::byte{0x10};
  write_file(store.path_for(3), rotten);

  std::optional<QuarantineEvent> event;
  const SnapshotFile file = store.load(3, &event);
  EXPECT_FALSE(file.ok());
  EXPECT_EQ(file.error(), SnapshotError::kBadCrc);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->error, SnapshotError::kBadCrc);
  EXPECT_EQ(event->file, store.path_for(3));
  ASSERT_FALSE(event->quarantined_as.empty());
  EXPECT_TRUE(fs::exists(event->quarantined_as));
  EXPECT_NE(event->quarantined_as.find("bad-crc"), std::string::npos);
  EXPECT_FALSE(fs::exists(store.path_for(3)));  // moved aside, not in place

  // The quarantined file holds the rotten bytes, intact for forensics.
  EXPECT_EQ(read_file(event->quarantined_as), rotten);

  scan = store.scan();
  ASSERT_TRUE(scan.readable);
  EXPECT_EQ(scan.weeks, (std::vector<int>{5}));  // week 3 is gone from scan
  const SnapshotFile five = store.load(5);
  EXPECT_TRUE(five.ok());
}

TEST(SnapshotStore, ScanQuarantinesEveryFaultClassCleanly) {
  const auto pristine = test_image();
  for (const StorageFault fault : kAllStorageFaults) {
    SCOPED_TRACE(storage_fault_name(fault));
    const TempDir dir{std::string{"scanrot_"} + storage_fault_name(fault)};
    const SnapshotStore store{dir.path()};

    StoreFaultInjector injector{7};
    auto image = pristine;
    injector.apply(fault, image);
    write_file(store.path_for(4), image);

    const auto scan = store.scan();
    ASSERT_TRUE(scan.readable) << scan.error;
    EXPECT_TRUE(scan.weeks.empty());
    ASSERT_EQ(scan.quarantined.size(), 1u);
    EXPECT_NE(scan.quarantined[0].error, SnapshotError::kNone);
    EXPECT_TRUE(fs::exists(scan.quarantined[0].quarantined_as));
  }
}

TEST(SnapshotStore, EnsureDirRefusesARegularFile) {
  const TempDir dir{"notadir"};
  const std::string file_path = dir.path() + "/occupied";
  write_file(file_path, bytes_of("x"));
  const SnapshotStore store{file_path};
  std::string error;
  EXPECT_FALSE(store.ensure_dir(&error));
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotStore, PathForZeroPadsWeeks) {
  const SnapshotStore store{"/tmp/s"};
  EXPECT_EQ(store.path_for(3), "/tmp/s/week_0003.snap");
  EXPECT_EQ(store.path_for(1234), "/tmp/s/week_1234.snap");
}

}  // namespace
}  // namespace ixp::store
