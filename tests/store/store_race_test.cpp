// Concurrent-store coverage (DESIGN.md §16): the snapshot store is shared
// by racing `weeks` processes, and its safety story is the flock-owned
// pid-suffixed temp plus the atomic rename. These tests drive the
// primitives directly: a live commit's temp must survive a concurrent
// scan, an orphaned temp (owner died) must be swept, and double-commits
// of the same week — the legal outcome of two processes computing the
// same deterministic pipeline — must converge to one valid snapshot.
#include "store/snapshot_store.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/process_pool.hpp"

namespace ixp::store {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(testing::TempDir() + "ixpscope_race_" + tag + "_" +
              std::to_string(::getpid())) {
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A small but real two-section image.
std::vector<std::byte> test_image() {
  std::vector<std::byte> shard(4096);
  std::vector<std::byte> report(512);
  for (std::size_t i = 0; i < shard.size(); ++i)
    shard[i] = static_cast<std::byte>(i * 31 + 7);
  for (std::size_t i = 0; i < report.size(); ++i)
    report[i] = static_cast<std::byte>(i * 17 + 3);
  const Section sections[] = {
      {kShardSection, shard},
      {kReportSection, report},
  };
  return encode_snapshot(sections);
}

TEST(StoreRace, LiveCommitTempSurvivesAConcurrentScan) {
  const TempDir dir{"live_temp"};
  const SnapshotStore store{dir.path()};
  std::string error;
  ASSERT_TRUE(store.ensure_dir(&error)) << error;

  // Simulate another process mid-commit: its temp exists and its flock is
  // held. (Same-process flock semantics: the lock lives on the open file
  // description, so a second open() in this process contends exactly like
  // another process would.)
  const std::string temp = store.path_for(9) + ".tmp.4242";
  { std::ofstream out{temp, std::ios::binary}; out << "in flight"; }
  const int owner = ::open(temp.c_str(), O_RDWR);
  ASSERT_GE(owner, 0);
  ASSERT_EQ(::flock(owner, LOCK_EX | LOCK_NB), 0);

  const auto scan = store.scan();
  ASSERT_TRUE(scan.readable) << scan.error;
  EXPECT_EQ(scan.stale_temps_removed, 0u);
  EXPECT_TRUE(fs::exists(temp)) << "scan swept a live commit's temp";

  // The owner dies (lock released): now it is crash residue and the next
  // scan sweeps it.
  ASSERT_EQ(::close(owner), 0);
  const auto second = store.scan();
  ASSERT_TRUE(second.readable) << second.error;
  EXPECT_EQ(second.stale_temps_removed, 1u);
  EXPECT_FALSE(fs::exists(temp));
}

TEST(StoreRace, OrphanedPidSuffixedTempIsSwept) {
  const TempDir dir{"orphan"};
  const SnapshotStore store{dir.path()};
  std::string error;
  ASSERT_TRUE(store.ensure_dir(&error)) << error;

  // Crash residue from two different dead writers, plus the legacy
  // suffix-less spelling — all unlocked, all swept.
  const std::string temps[] = {
      store.path_for(7) + ".tmp.11111",
      store.path_for(7) + ".tmp.22222",
      store.path_for(8) + ".tmp",
  };
  for (const auto& temp : temps) {
    std::ofstream out{temp, std::ios::binary};
    out << "dead";
  }

  const auto scan = store.scan();
  ASSERT_TRUE(scan.readable) << scan.error;
  EXPECT_EQ(scan.stale_temps_removed, 3u);
  for (const auto& temp : temps) EXPECT_FALSE(fs::exists(temp)) << temp;
}

TEST(StoreRace, ConcurrentDoubleCommitsConvergeToOneValidSnapshot) {
  const TempDir dir{"double_commit"};
  const SnapshotStore store{dir.path()};
  std::string error;
  ASSERT_TRUE(store.ensure_dir(&error)) << error;
  const auto image = test_image();

  // Two processes repeatedly commit byte-identical images of the same
  // weeks — the deterministic pipeline's double-compute case. Whatever
  // the interleaving, every rename installs a complete image.
  const auto statuses = core::ProcessPool::run(2, [&](int) -> int {
    std::string commit_error;
    for (int round = 0; round < 25; ++round) {
      for (int week = 1; week <= 4; ++week) {
        if (!commit_snapshot(store.path_for(week), image, &commit_error))
          return 1;
      }
    }
    return 0;
  });
  for (const auto& status : statuses)
    EXPECT_TRUE(status.ok()) << "worker " << status.worker;

  const auto scan = store.scan();
  ASSERT_TRUE(scan.readable) << scan.error;
  EXPECT_TRUE(scan.quarantined.empty());
  ASSERT_EQ(scan.weeks.size(), 4u);
  for (int week = 1; week <= 4; ++week) {
    SCOPED_TRACE("week " + std::to_string(week));
    const auto file = SnapshotFile::open(store.path_for(week));
    ASSERT_TRUE(file.ok()) << error_name(file.error());
    EXPECT_TRUE(std::equal(image.begin(), image.end(), file.bytes().begin(),
                           file.bytes().end()));
  }
}

TEST(StoreRace, CommitsRacingScansLeaveOnlyValidSnapshots) {
  const TempDir dir{"commit_vs_scan"};
  const SnapshotStore store{dir.path()};
  std::string error;
  ASSERT_TRUE(store.ensure_dir(&error)) << error;
  const auto image = test_image();

  // Worker 0 commits; worker 1 scans as fast as it can. The scanner must
  // never observe a torn committed file (atomic rename) and must never
  // sweep the live temp out from under the writer (flock ownership) — a
  // swept temp would surface as a failed commit.
  const auto statuses = core::ProcessPool::run(2, [&](int worker) -> int {
    if (worker == 0) {
      std::string commit_error;
      for (int round = 0; round < 40; ++round) {
        for (int week = 1; week <= 3; ++week) {
          if (!commit_snapshot(store.path_for(week), image, &commit_error))
            return 1;
        }
      }
      return 0;
    }
    for (int round = 0; round < 200; ++round) {
      const auto scan = store.scan();
      if (!scan.readable) return 1;
      if (!scan.quarantined.empty()) return 2;  // saw a torn snapshot
    }
    return 0;
  });
  for (const auto& status : statuses)
    EXPECT_TRUE(status.ok()) << "worker " << status.worker << " exit "
                             << status.exit_code;

  const auto scan = store.scan();
  ASSERT_TRUE(scan.readable) << scan.error;
  EXPECT_TRUE(scan.quarantined.empty());
  EXPECT_EQ(scan.weeks.size(), 3u);
}

TEST(StoreRace, ScannersRacingScannersSweepEachOrphanExactlyOnce) {
  const TempDir dir{"scan_vs_scan"};
  const SnapshotStore store{dir.path()};
  std::string error;
  ASSERT_TRUE(store.ensure_dir(&error)) << error;

  // A field of orphaned temps; two scanners race to sweep them. The
  // unlink-while-holding-the-lock protocol means no scanner ever fails on
  // the other's half-done work.
  for (int i = 0; i < 16; ++i) {
    std::ofstream out{store.path_for(i) + ".tmp." + std::to_string(10000 + i),
                      std::ios::binary};
    out << "dead";
  }
  const auto statuses = core::ProcessPool::run(2, [&](int) -> int {
    const auto scan = store.scan();
    return scan.readable ? 0 : 1;
  });
  for (const auto& status : statuses)
    EXPECT_TRUE(status.ok()) << "worker " << status.worker;

  // All residue gone, nothing quarantined, nothing invented.
  const auto final_scan = store.scan();
  ASSERT_TRUE(final_scan.readable) << final_scan.error;
  EXPECT_EQ(final_scan.stale_temps_removed, 0u);
  EXPECT_TRUE(final_scan.weeks.empty());
  EXPECT_TRUE(final_scan.quarantined.empty());
  for (const auto& entry : fs::directory_iterator(dir.path()))
    ADD_FAILURE() << "unexpected residue: " << entry.path();
}

}  // namespace
}  // namespace ixp::store
