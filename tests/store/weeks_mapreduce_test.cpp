// The distributed driver's acceptance contract (DESIGN.md §16): `weeks
// --jobs N` — forked workers sharing one snapshot store — produces
// per-week reports, durable snapshot bytes, and a §4 summary that are
// byte-identical to a single-process run, for any job count and any
// worker crash pattern. Worker deaths are contained: the parent's fold
// recomputes whatever the dead worker failed to commit and reports the
// failure per worker instead of dying with it.
#include "store/weeks_mapreduce.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/parallel_analyzer.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "ingest/ingest_source.hpp"
#include "store/snapshot_codec.hpp"

namespace ixp::store {
namespace {

namespace fs = std::filesystem;

constexpr int kFromWeek = 44;
constexpr int kToWeek = 47;
constexpr int kWeekCount = kToWeek - kFromWeek + 1;

class OwnedWeekSource final : public ingest::IngestSource {
 public:
  explicit OwnedWeekSource(std::vector<sflow::FlowSample> samples)
      : samples_(std::move(samples)), span_(samples_, 512) {}

  ingest::SourceStatus next_batch(ingest::SampleBatch& out) override {
    return span_.next_batch(out);
  }
  std::vector<std::unique_ptr<ingest::IngestSource>> split(
      std::size_t want) override {
    return span_.split(want);
  }

 private:
  std::vector<sflow::FlowSample> samples_;
  ingest::SpanSource span_;
};

class WeeksMapReduceTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    model_ = new gen::InternetModel{gen::ScaleConfig::test()};
    std::vector<net::Asn> members;
    for (const auto* m : model_->ixp().members_at(kToWeek))
      members.push_back(m->asn);
    locality_ = new std::unordered_map<net::Asn, net::Locality>(
        model_->as_graph().classify(members));
    week_samples_ = new std::map<int, std::vector<sflow::FlowSample>>;
    const gen::Workload workload{*model_};
    for (int week = kFromWeek; week <= kToWeek; ++week) {
      auto& samples = (*week_samples_)[week];
      workload.generate_week(
          week, [&](const sflow::FlowSample& s) { samples.push_back(s); });
    }
  }

  static void TearDownTestSuite() {
    delete week_samples_;
    delete locality_;
    delete model_;
  }

  static core::VantagePoint make_vantage() {
    return core::VantagePoint{model_->ixp(),   model_->routing(),
                              model_->geo_db(), *locality_,
                              model_->dns_db(),
                              dns::PublicSuffixList::builtin(),
                              model_->root_store()};
  }

  static WeeksRunner::SourceFactory source_factory() {
    return [](int week) -> std::unique_ptr<ingest::IngestSource> {
      return std::make_unique<OwnedWeekSource>(week_samples_->at(week));
    };
  }

  static WeeksRunner::FetcherFactory fetcher_factory() {
    return [](int week) -> classify::ChainFetcher {
      return [week](net::Ipv4Addr addr, int times) {
        return model_->fetch_chains(addr, times, week);
      };
    };
  }

  /// One map-reduce invocation against `dir` with `jobs` workers.
  static MapReduceResult run_jobs(
      const std::string& dir, int jobs,
      const std::function<void(int, int)>& before_week = {}) {
    auto vp = make_vantage();
    core::ParallelOptions popt;
    popt.threads = 2;
    core::ParallelAnalyzer analyzer{vp, popt};
    WeeksRunner runner{vp, analyzer, SnapshotStore{dir}};
    MapReduceOptions options;
    options.weeks.from_week = kFromWeek;
    options.weeks.to_week = kToWeek;
    options.jobs = jobs;
    options.before_week = before_week;
    return run_weeks_mapreduce(runner, options, source_factory(),
                               fetcher_factory());
  }

  static gen::InternetModel* model_;
  static std::unordered_map<net::Asn, net::Locality>* locality_;
  static std::map<int, std::vector<sflow::FlowSample>>* week_samples_;
};

gen::InternetModel* WeeksMapReduceTest::model_ = nullptr;
std::unordered_map<net::Asn, net::Locality>* WeeksMapReduceTest::locality_ =
    nullptr;
std::map<int, std::vector<sflow::FlowSample>>*
    WeeksMapReduceTest::week_samples_ = nullptr;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(testing::TempDir() + "ixpscope_mapreduce_" + tag + "_" +
              std::to_string(::getpid())) {
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void expect_folds_identical(const WeeksResult& a, const WeeksResult& b) {
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_EQ(a.weeks.size(), b.weeks.size());
  for (std::size_t i = 0; i < a.weeks.size(); ++i) {
    SCOPED_TRACE("week " + std::to_string(a.weeks[i].week));
    EXPECT_EQ(a.weeks[i].week, b.weeks[i].week);
    EXPECT_EQ(SnapshotCodec::encode_report(a.weeks[i].report),
              SnapshotCodec::encode_report(b.weeks[i].report));
  }
  EXPECT_EQ(a.longitudinal, b.longitudinal);
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in) << path;
  std::vector<char> raw{std::istreambuf_iterator<char>{in},
                        std::istreambuf_iterator<char>{}};
  std::vector<std::byte> out(raw.size());
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

TEST_F(WeeksMapReduceTest, JobCountDoesNotChangeTheBytes) {
  const TempDir serial_dir{"serial"};
  const auto serial = run_jobs(serial_dir.path(), 1);
  ASSERT_TRUE(serial.ok) << serial.error;
  EXPECT_TRUE(serial.workers.empty());  // jobs=1 never forks
  EXPECT_FALSE(serial.worker_failed);

  for (const int jobs : {2, 3, kWeekCount}) {
    SCOPED_TRACE("jobs " + std::to_string(jobs));
    const TempDir dir{"jobs" + std::to_string(jobs)};
    const auto forked = run_jobs(dir.path(), jobs);
    ASSERT_TRUE(forked.ok) << forked.error;
    ASSERT_EQ(forked.workers.size(), static_cast<std::size_t>(jobs));
    for (const auto& worker : forked.workers) {
      EXPECT_TRUE(worker.ok()) << "worker " << worker.status.worker;
    }
    EXPECT_FALSE(forked.worker_failed);
    // Every week was committed by a worker, so the fold resumed them all.
    EXPECT_EQ(forked.fold.weeks_resumed, static_cast<std::size_t>(kWeekCount));
    EXPECT_EQ(forked.fold.weeks_computed, 0u);
    expect_folds_identical(serial.fold, forked.fold);

    // The durable artifacts match byte for byte too.
    for (int week = kFromWeek; week <= kToWeek; ++week) {
      SCOPED_TRACE("week " + std::to_string(week));
      EXPECT_EQ(read_file(SnapshotStore{serial_dir.path()}.path_for(week)),
                read_file(SnapshotStore{dir.path()}.path_for(week)));
    }
  }
}

TEST_F(WeeksMapReduceTest, WorkersAreDealtTheFullRangeRoundRobin) {
  const TempDir dir{"deal"};
  const auto result = run_jobs(dir.path(), 3);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.workers.size(), 3u);
  std::vector<int> dealt;
  for (const auto& worker : result.workers)
    dealt.insert(dealt.end(), worker.weeks.begin(), worker.weeks.end());
  std::sort(dealt.begin(), dealt.end());
  std::vector<int> expected;
  for (int week = kFromWeek; week <= kToWeek; ++week)
    expected.push_back(week);
  EXPECT_EQ(dealt, expected);
}

TEST_F(WeeksMapReduceTest, JobsAreClampedToTheWeekCount) {
  const TempDir dir{"clamp"};
  const auto result = run_jobs(dir.path(), kWeekCount + 16);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.workers.size(), static_cast<std::size_t>(kWeekCount));
  for (const auto& worker : result.workers)
    EXPECT_EQ(worker.weeks.size(), 1u);
}

TEST_F(WeeksMapReduceTest, KilledWorkerIsContainedAndItsWeeksRecomputed) {
  const TempDir baseline_dir{"kill_baseline"};
  const auto baseline = run_jobs(baseline_dir.path(), 1);
  ASSERT_TRUE(baseline.ok) << baseline.error;

  // Worker 1 dies by SIGKILL before touching its second week — after one
  // durable commit, mid-assignment. The hook runs in the forked child, so
  // the kill takes out exactly that worker process.
  const TempDir dir{"kill"};
  int seen = 0;
  const auto result = run_jobs(dir.path(), 2, [&seen](int worker, int) {
    if (worker == 1 && ++seen == 2) ::raise(SIGKILL);
  });

  // Contained: the run as a whole succeeded, the failure is attributed.
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.worker_failed);
  ASSERT_EQ(result.workers.size(), 2u);
  EXPECT_TRUE(result.workers[0].ok());
  EXPECT_FALSE(result.workers[1].ok());
  EXPECT_TRUE(result.workers[1].status.signaled);
  EXPECT_EQ(result.workers[1].status.term_signal, SIGKILL);

  // The fold recomputed the dead worker's missing week(s); the result is
  // still byte-identical to the uninterrupted single-process run.
  EXPECT_GT(result.fold.weeks_computed, 0u);
  EXPECT_EQ(result.fold.weeks_computed + result.fold.weeks_resumed,
            static_cast<std::size_t>(kWeekCount));
  expect_folds_identical(baseline.fold, result.fold);
  for (int week = kFromWeek; week <= kToWeek; ++week) {
    SCOPED_TRACE("week " + std::to_string(week));
    EXPECT_EQ(read_file(SnapshotStore{baseline_dir.path()}.path_for(week)),
              read_file(SnapshotStore{dir.path()}.path_for(week)));
  }
}

TEST_F(WeeksMapReduceTest, EveryWorkerKilledStillConverges) {
  const TempDir baseline_dir{"massacre_baseline"};
  const auto baseline = run_jobs(baseline_dir.path(), 1);
  ASSERT_TRUE(baseline.ok) << baseline.error;

  // All workers die immediately: the map phase contributes nothing and
  // the fold computes the entire range itself.
  const TempDir dir{"massacre"};
  const auto result =
      run_jobs(dir.path(), 2, [](int, int) { ::raise(SIGKILL); });
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.worker_failed);
  for (const auto& worker : result.workers) EXPECT_FALSE(worker.ok());
  EXPECT_EQ(result.fold.weeks_computed, static_cast<std::size_t>(kWeekCount));
  expect_folds_identical(baseline.fold, result.fold);
}

TEST_F(WeeksMapReduceTest, TwoRacingFullRunnersConvergeOnOneStore) {
  const TempDir baseline_dir{"race_baseline"};
  const auto baseline = run_jobs(baseline_dir.path(), 1);
  ASSERT_TRUE(baseline.ok) << baseline.error;

  // Not a partition: two uncoordinated processes each run the FULL range
  // against the same --dir (the operator double-launch scenario). Both
  // may compute and double-commit any week; the commit protocol must make
  // them converge to one valid snapshot per week.
  const TempDir dir{"race"};
  const auto statuses = core::ProcessPool::run(2, [&](int) -> int {
    auto vp = make_vantage();
    core::ParallelOptions popt;
    popt.threads = 2;
    core::ParallelAnalyzer analyzer{vp, popt};
    WeeksRunner runner{vp, analyzer, SnapshotStore{dir.path()}};
    WeeksOptions options;
    options.from_week = kFromWeek;
    options.to_week = kToWeek;
    const auto r = runner.run(options, source_factory(), fetcher_factory());
    return r.ok ? 0 : 1;
  });
  for (const auto& status : statuses)
    EXPECT_TRUE(status.ok()) << "runner " << status.worker;

  // One valid snapshot per week, byte-identical to the single-run store.
  const auto scan = SnapshotStore{dir.path()}.scan();
  ASSERT_TRUE(scan.readable) << scan.error;
  EXPECT_TRUE(scan.quarantined.empty());
  ASSERT_EQ(scan.weeks.size(), static_cast<std::size_t>(kWeekCount));
  for (int week = kFromWeek; week <= kToWeek; ++week) {
    SCOPED_TRACE("week " + std::to_string(week));
    EXPECT_EQ(read_file(SnapshotStore{dir.path()}.path_for(week)),
              read_file(SnapshotStore{baseline_dir.path()}.path_for(week)));
  }
}

TEST_F(WeeksMapReduceTest, EmptyRangeIsAPlainError) {
  const TempDir dir{"empty"};
  auto vp = make_vantage();
  core::ParallelOptions popt;
  core::ParallelAnalyzer analyzer{vp, popt};
  WeeksRunner runner{vp, analyzer, SnapshotStore{dir.path()}};
  MapReduceOptions options;
  options.weeks.from_week = kToWeek;
  options.weeks.to_week = kFromWeek;
  options.jobs = 2;
  const auto result = run_weeks_mapreduce(runner, options, source_factory(),
                                          fetcher_factory());
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.store_unreadable);
  EXPECT_FALSE(result.error.empty());
  EXPECT_TRUE(result.workers.empty());
}

TEST_F(WeeksMapReduceTest, UnusableStoreFailsBeforeForking) {
  const TempDir dir{"blocked"};
  fs::create_directories(dir.path());
  const std::string occupied = dir.path() + "/occupied";
  { std::ofstream out{occupied}; out << "x"; }
  auto vp = make_vantage();
  core::ParallelOptions popt;
  core::ParallelAnalyzer analyzer{vp, popt};
  WeeksRunner runner{vp, analyzer, SnapshotStore{occupied}};
  MapReduceOptions options;
  options.weeks.from_week = kFromWeek;
  options.weeks.to_week = kToWeek;
  options.jobs = 2;
  const auto result = run_weeks_mapreduce(runner, options, source_factory(),
                                          fetcher_factory());
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.store_unreadable);
  EXPECT_TRUE(result.workers.empty());  // nothing was forked
}

}  // namespace
}  // namespace ixp::store
