// The store-merge contract (DESIGN.md §16): folding snapshot stores from
// separate machines into one is byte-identical to a single-process run
// over the union of weeks — for disjoint partitions, overlapping
// (redundant) ranges, and weeks persisted as partial shards that must be
// folded through the WeekShard monoid and re-derived. Corrupt inputs are
// quarantined in place across the whole storage-fault matrix; stale
// provenance is skipped, never merged.
#include "store/store_merge.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/parallel_analyzer.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "ingest/ingest_source.hpp"
#include "store/snapshot_codec.hpp"
#include "store/store_fault.hpp"

namespace ixp::store {
namespace {

namespace fs = std::filesystem;

constexpr int kFromWeek = 44;
constexpr int kToWeek = 46;

class OwnedWeekSource final : public ingest::IngestSource {
 public:
  explicit OwnedWeekSource(std::vector<sflow::FlowSample> samples)
      : samples_(std::move(samples)), span_(samples_, 512) {}

  ingest::SourceStatus next_batch(ingest::SampleBatch& out) override {
    return span_.next_batch(out);
  }
  std::vector<std::unique_ptr<ingest::IngestSource>> split(
      std::size_t want) override {
    return span_.split(want);
  }

 private:
  std::vector<sflow::FlowSample> samples_;
  ingest::SpanSource span_;
};

class StoreMergeTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    model_ = new gen::InternetModel{gen::ScaleConfig::test()};
    std::vector<net::Asn> members;
    for (const auto* m : model_->ixp().members_at(kToWeek))
      members.push_back(m->asn);
    locality_ = new std::unordered_map<net::Asn, net::Locality>(
        model_->as_graph().classify(members));
    week_samples_ = new std::map<int, std::vector<sflow::FlowSample>>;
    const gen::Workload workload{*model_};
    for (int week = kFromWeek; week <= kToWeek; ++week) {
      auto& samples = (*week_samples_)[week];
      workload.generate_week(
          week, [&](const sflow::FlowSample& s) { samples.push_back(s); });
    }
  }

  static void TearDownTestSuite() {
    delete week_samples_;
    delete locality_;
    delete model_;
  }

  static core::VantagePoint make_vantage() {
    return core::VantagePoint{model_->ixp(),   model_->routing(),
                              model_->geo_db(), *locality_,
                              model_->dns_db(),
                              dns::PublicSuffixList::builtin(),
                              model_->root_store()};
  }

  static WeeksRunner::SourceFactory source_factory() {
    return [](int week) -> std::unique_ptr<ingest::IngestSource> {
      return std::make_unique<OwnedWeekSource>(week_samples_->at(week));
    };
  }

  static WeeksRunner::FetcherFactory fetcher_factory() {
    return [](int week) -> classify::ChainFetcher {
      return [week](net::Ipv4Addr addr, int times) {
        return model_->fetch_chains(addr, times, week);
      };
    };
  }

  /// Runs weeks [from, to] into `dir` (one machine's share of the range).
  static WeeksResult run_range(const std::string& dir, int from, int to) {
    auto vp = make_vantage();
    core::ParallelOptions popt;
    popt.threads = 2;
    core::ParallelAnalyzer analyzer{vp, popt};
    WeeksRunner runner{vp, analyzer, SnapshotStore{dir}};
    WeeksOptions options;
    options.from_week = from;
    options.to_week = to;
    return runner.run(options, source_factory(), fetcher_factory());
  }

  static MergeResult merge(const std::vector<std::string>& inputs,
                           const std::string& out,
                           std::uint64_t model_fingerprint = 0,
                           std::uint64_t ingest_fingerprint = 0) {
    auto vp = make_vantage();
    MergeOptions options;
    options.inputs = inputs;
    options.out = out;
    options.model_fingerprint = model_fingerprint;
    options.ingest_fingerprint = ingest_fingerprint;
    return merge_stores(vp, options, fetcher_factory());
  }

  /// Persists one partial shard of `week` — samples [begin, end) at their
  /// original stream positions — into `dir`, exactly as a distributed
  /// mapper owning that slice of the week would.
  static void save_partial_shard(const std::string& dir, int week,
                                 std::size_t begin, std::size_t end) {
    auto vp = make_vantage();
    core::WeekSession session = vp.open_week(week);
    core::WeekShard shard = session.make_shard();
    const auto& samples = week_samples_->at(week);
    shard.observe_batch(
        std::span<const sflow::FlowSample>{samples}.subspan(begin,
                                                            end - begin),
        begin);
    const auto shard_bytes = SnapshotCodec::encode_shard(shard);

    Provenance provenance;
    provenance.format_version = kFormatVersion;
    provenance.week = week;
    provenance.partial = true;
    const auto provenance_bytes =
        SnapshotCodec::encode_provenance(provenance);

    const SnapshotStore store{dir};
    std::string error;
    ASSERT_TRUE(store.ensure_dir(&error)) << error;
    const Section sections[] = {
        {kShardSection, shard_bytes},
        {kProvenanceSection, provenance_bytes},
    };
    ASSERT_TRUE(store.save(week, sections, &error)) << error;
  }

  static gen::InternetModel* model_;
  static std::unordered_map<net::Asn, net::Locality>* locality_;
  static std::map<int, std::vector<sflow::FlowSample>>* week_samples_;
};

gen::InternetModel* StoreMergeTest::model_ = nullptr;
std::unordered_map<net::Asn, net::Locality>* StoreMergeTest::locality_ =
    nullptr;
std::map<int, std::vector<sflow::FlowSample>>* StoreMergeTest::week_samples_ =
    nullptr;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(testing::TempDir() + "ixpscope_merge_" + tag + "_" +
              std::to_string(::getpid())) {
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in) << path;
  std::vector<char> raw{std::istreambuf_iterator<char>{in},
                        std::istreambuf_iterator<char>{}};
  std::vector<std::byte> out(raw.size());
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

void write_file(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream out{path, std::ios::binary};
  ASSERT_TRUE(out) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// The merged output must equal the single-process union run, byte for
/// byte: per-week reports, durable files, and the §4 summary.
void expect_matches_union(const MergeResult& merged, const WeeksResult& whole,
                          const std::string& merged_dir,
                          const std::string& whole_dir) {
  ASSERT_TRUE(merged.ok) << merged.error;
  ASSERT_TRUE(whole.ok) << whole.error;
  ASSERT_EQ(merged.weeks.size(), whole.weeks.size());
  for (std::size_t i = 0; i < merged.weeks.size(); ++i) {
    SCOPED_TRACE("week " + std::to_string(merged.weeks[i].week));
    EXPECT_EQ(merged.weeks[i].week, whole.weeks[i].week);
    EXPECT_EQ(SnapshotCodec::encode_report(merged.weeks[i].report),
              SnapshotCodec::encode_report(whole.weeks[i].report));
    EXPECT_EQ(
        read_file(SnapshotStore{merged_dir}.path_for(merged.weeks[i].week)),
        read_file(SnapshotStore{whole_dir}.path_for(whole.weeks[i].week)));
  }
  EXPECT_EQ(merged.longitudinal, whole.longitudinal);
}

TEST_F(StoreMergeTest, DisjointPartitionMergesByteIdenticalToUnionRun) {
  const TempDir whole_dir{"whole"};
  const auto whole = run_range(whole_dir.path(), kFromWeek, kToWeek);
  ASSERT_TRUE(whole.ok) << whole.error;

  // Machine A computed 44..45, machine B computed 46.
  const TempDir a{"part_a"};
  const TempDir b{"part_b"};
  ASSERT_TRUE(run_range(a.path(), kFromWeek, kFromWeek + 1).ok);
  ASSERT_TRUE(run_range(b.path(), kToWeek, kToWeek).ok);

  const TempDir out{"part_out"};
  const auto merged = merge({a.path(), b.path()}, out.path());
  EXPECT_EQ(merged.weeks_copied, 3u);
  EXPECT_EQ(merged.weeks_rederived, 0u);
  EXPECT_EQ(merged.snapshots_skipped_stale, 0u);
  for (const auto& week : merged.weeks) {
    EXPECT_EQ(week.copies, 1u);
    EXPECT_FALSE(week.rederived);
  }
  expect_matches_union(merged, whole, out.path(), whole_dir.path());
}

TEST_F(StoreMergeTest, OverlappingStoresDedupeByDeterminism) {
  const TempDir whole_dir{"dedup_whole"};
  const auto whole = run_range(whole_dir.path(), kFromWeek, kToWeek);
  ASSERT_TRUE(whole.ok) << whole.error;

  // Redundant machines: both computed the middle week.
  const TempDir a{"dedup_a"};
  const TempDir b{"dedup_b"};
  ASSERT_TRUE(run_range(a.path(), kFromWeek, kFromWeek + 1).ok);
  ASSERT_TRUE(run_range(b.path(), kFromWeek + 1, kToWeek).ok);

  const TempDir out{"dedup_out"};
  const auto merged = merge({a.path(), b.path()}, out.path());
  ASSERT_TRUE(merged.ok) << merged.error;
  EXPECT_EQ(merged.weeks_copied, 3u);
  ASSERT_EQ(merged.weeks.size(), 3u);
  EXPECT_EQ(merged.weeks[0].copies, 1u);
  EXPECT_EQ(merged.weeks[1].copies, 2u);  // the duplicated middle week
  EXPECT_EQ(merged.weeks[2].copies, 1u);
  expect_matches_union(merged, whole, out.path(), whole_dir.path());
}

TEST_F(StoreMergeTest, PartialShardsFoldThroughTheMonoidAndRederive) {
  const TempDir whole_dir{"shard_whole"};
  const auto whole = run_range(whole_dir.path(), kFromWeek, kToWeek);
  ASSERT_TRUE(whole.ok) << whole.error;

  // Weeks 44 and 46 are complete snapshots on machine A; week 45 exists
  // only as two partial shards — machine A observed the front half of the
  // sample stream, machine B the back half.
  const TempDir a{"shard_a"};
  const TempDir b{"shard_b"};
  ASSERT_TRUE(run_range(a.path(), kFromWeek, kFromWeek).ok);
  ASSERT_TRUE(run_range(a.path(), kToWeek, kToWeek).ok);
  const std::size_t total = week_samples_->at(kFromWeek + 1).size();
  save_partial_shard(a.path(), kFromWeek + 1, 0, total / 2);
  save_partial_shard(b.path(), kFromWeek + 1, total / 2, total);

  const TempDir out{"shard_out"};
  const auto merged = merge({a.path(), b.path()}, out.path());
  ASSERT_TRUE(merged.ok) << merged.error;
  EXPECT_EQ(merged.weeks_copied, 2u);
  EXPECT_EQ(merged.weeks_rederived, 1u);
  ASSERT_EQ(merged.weeks.size(), 3u);
  EXPECT_TRUE(merged.weeks[1].rederived);
  EXPECT_EQ(merged.weeks[1].copies, 2u);
  expect_matches_union(merged, whole, out.path(), whole_dir.path());
}

TEST_F(StoreMergeTest, CompleteSnapshotSupersedesPartialShards) {
  const TempDir whole_dir{"supersede_whole"};
  const auto whole = run_range(whole_dir.path(), kFromWeek, kToWeek);
  ASSERT_TRUE(whole.ok) << whole.error;

  // Machine A has the complete week; machine B contributes a partial
  // shard of the same week. Folding the partial in would double-count —
  // the complete copy must win.
  const TempDir a{"supersede_a"};
  const TempDir b{"supersede_b"};
  ASSERT_TRUE(run_range(a.path(), kFromWeek, kToWeek).ok);
  const std::size_t total = week_samples_->at(kFromWeek).size();
  save_partial_shard(b.path(), kFromWeek, 0, total / 2);

  const TempDir out{"supersede_out"};
  const auto merged = merge({a.path(), b.path()}, out.path());
  ASSERT_TRUE(merged.ok) << merged.error;
  EXPECT_EQ(merged.weeks_copied, 3u);
  EXPECT_EQ(merged.weeks_rederived, 0u);
  expect_matches_union(merged, whole, out.path(), whole_dir.path());
}

TEST_F(StoreMergeTest, StaleProvenanceIsSkippedNotMerged) {
  const TempDir a{"stale_a"};
  ASSERT_TRUE(run_range(a.path(), kFromWeek, kToWeek).ok);  // fingerprint 0

  // The merge expects a different model fingerprint: nothing in A is an
  // observation of that model, so nothing may reach the output.
  const TempDir out{"stale_out"};
  const auto merged =
      merge({a.path()}, out.path(), /*model_fingerprint=*/0xBBBB);
  ASSERT_TRUE(merged.ok) << merged.error;
  EXPECT_EQ(merged.snapshots_skipped_stale, 3u);
  EXPECT_TRUE(merged.weeks.empty());
  EXPECT_EQ(merged.weeks_copied, 0u);
  for (int week = kFromWeek; week <= kToWeek; ++week) {
    EXPECT_FALSE(fs::exists(SnapshotStore{out.path()}.path_for(week)));
    // Skipped, not quarantined: the input store is untouched.
    EXPECT_TRUE(fs::exists(SnapshotStore{a.path()}.path_for(week)));
  }
}

TEST_F(StoreMergeTest, EveryStorageFaultClassIsQuarantinedDuringMerge) {
  const TempDir whole_dir{"rot_whole"};
  const auto whole = run_range(whole_dir.path(), kFromWeek, kToWeek);
  ASSERT_TRUE(whole.ok) << whole.error;

  for (const StorageFault fault : kAllStorageFaults) {
    SCOPED_TRACE(storage_fault_name(fault));
    // A holds the full range with a rotted middle week; B holds a healthy
    // copy of that week — redundancy is exactly what merge is for.
    const TempDir a{std::string{"rot_a_"} + storage_fault_name(fault)};
    const TempDir b{std::string{"rot_b_"} + storage_fault_name(fault)};
    ASSERT_TRUE(run_range(a.path(), kFromWeek, kToWeek).ok);
    ASSERT_TRUE(run_range(b.path(), kFromWeek + 1, kFromWeek + 1).ok);

    const std::string victim = SnapshotStore{a.path()}.path_for(kFromWeek + 1);
    auto image = read_file(victim);
    StoreFaultInjector injector{7};
    injector.apply(fault, image);
    write_file(victim, image);

    const TempDir out{std::string{"rot_out_"} + storage_fault_name(fault)};
    const auto merged = merge({a.path(), b.path()}, out.path());
    ASSERT_TRUE(merged.ok) << merged.error;
    // The rot was quarantined in place; B's healthy copy carried the week.
    ASSERT_EQ(merged.quarantined.size(), 1u);
    EXPECT_EQ(merged.quarantined[0].file, victim);
    EXPECT_NE(merged.quarantined[0].error, SnapshotError::kNone);
    EXPECT_TRUE(fs::exists(merged.quarantined[0].quarantined_as));
    EXPECT_EQ(merged.weeks_copied, 3u);
    expect_matches_union(merged, whole, out.path(), whole_dir.path());
  }
}

TEST_F(StoreMergeTest, RepeatedMergeIsIdempotent) {
  const TempDir a{"idem_a"};
  ASSERT_TRUE(run_range(a.path(), kFromWeek, kToWeek).ok);

  const TempDir out{"idem_out"};
  const auto first = merge({a.path()}, out.path());
  ASSERT_TRUE(first.ok) << first.error;
  std::map<int, std::vector<std::byte>> bytes;
  for (int week = kFromWeek; week <= kToWeek; ++week)
    bytes[week] = read_file(SnapshotStore{out.path()}.path_for(week));

  // Re-running the merge (an interrupted merge's recovery story) simply
  // re-commits identical images.
  const auto second = merge({a.path()}, out.path());
  ASSERT_TRUE(second.ok) << second.error;
  for (int week = kFromWeek; week <= kToWeek; ++week)
    EXPECT_EQ(read_file(SnapshotStore{out.path()}.path_for(week)),
              bytes[week]);
}

TEST_F(StoreMergeTest, NoInputsIsAPlainError) {
  const TempDir out{"noinput_out"};
  const auto merged = merge({}, out.path());
  EXPECT_FALSE(merged.ok);
  EXPECT_FALSE(merged.error.empty());
}

TEST_F(StoreMergeTest, UnreadableInputIsFatalNotSilent) {
  const TempDir a{"unreadable_a"};
  ASSERT_TRUE(run_range(a.path(), kFromWeek, kToWeek).ok);
  const TempDir blocked{"unreadable_blocked"};
  fs::create_directories(blocked.path());
  const std::string occupied = blocked.path() + "/occupied";
  write_file(occupied, std::vector<std::byte>(1));

  const TempDir out{"unreadable_out"};
  const auto merged = merge({a.path(), occupied}, out.path());
  EXPECT_FALSE(merged.ok);
  EXPECT_TRUE(merged.store_unreadable);
}

}  // namespace
}  // namespace ixp::store
