// Differential tests: FlatLpm held to the answers of the two oracle
// structures (PrefixTrie and LengthIndexedLpm) over randomized corpora
// — overlapping prefixes, the full /0–/32 length range, default routes,
// overwriting inserts, and address sweeps across prefix boundaries.
#include "net/flat_lpm.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/prefix_trie.hpp"
#include "util/rng.hpp"

namespace ixp::net {
namespace {

TEST(FlatLpm, EmptyLookupMisses) {
  FlatLpm<int> lpm;
  EXPECT_FALSE(lpm.lookup(Ipv4Addr{1, 2, 3, 4}).has_value());
  EXPECT_EQ(lpm.lookup_ptr(Ipv4Addr{1, 2, 3, 4}), nullptr);
  EXPECT_EQ(lpm.size(), 0u);
  EXPECT_EQ(lpm.footprint_bytes(), 0u);  // top array is lazy
}

TEST(FlatLpm, ExactAndCoveringLookups) {
  FlatLpm<int> lpm;
  lpm.insert(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, 1);
  lpm.insert(Ipv4Prefix{Ipv4Addr{10, 1, 0, 0}, 16}, 2);

  EXPECT_EQ(lpm.lookup(Ipv4Addr(10, 1, 2, 3)), 2);  // most specific wins
  EXPECT_EQ(lpm.lookup(Ipv4Addr(10, 2, 0, 1)), 1);  // falls back to /8
  EXPECT_FALSE(lpm.lookup(Ipv4Addr(11, 0, 0, 1)).has_value());
  EXPECT_EQ(lpm.size(), 2u);
  EXPECT_EQ(lpm.spill_blocks(), 0u);  // nothing longer than /24
}

TEST(FlatLpm, DefaultRouteMatchesEverything) {
  FlatLpm<int> lpm;
  lpm.insert(Ipv4Prefix{Ipv4Addr{0u}, 0}, 99);
  EXPECT_EQ(lpm.lookup(Ipv4Addr(8, 8, 8, 8)), 99);
  EXPECT_EQ(lpm.lookup(Ipv4Addr{0u}), 99);
  EXPECT_EQ(lpm.lookup(Ipv4Addr{0xFFFFFFFFu}), 99);
}

TEST(FlatLpm, OverwriteKeepsSizeAndRetargetsEveryEntry) {
  FlatLpm<int> lpm;
  const Ipv4Prefix p{Ipv4Addr{10, 0, 0, 0}, 8};
  lpm.insert(p, 1);
  lpm.insert(p, 2);
  EXPECT_EQ(lpm.size(), 1u);
  EXPECT_EQ(lpm.lookup(Ipv4Addr(10, 0, 0, 1)), 2);
  EXPECT_EQ(lpm.lookup(Ipv4Addr(10, 255, 255, 255)), 2);

  // Overwriting a spilled prefix updates the spill entries too.
  const Ipv4Prefix host{Ipv4Addr{10, 0, 0, 7}, 32};
  lpm.insert(host, 3);
  lpm.insert(host, 4);
  EXPECT_EQ(lpm.lookup(Ipv4Addr(10, 0, 0, 7)), 4);
  EXPECT_EQ(lpm.lookup(Ipv4Addr(10, 0, 0, 8)), 2);
  EXPECT_EQ(lpm.spill_blocks(), 1u);
}

TEST(FlatLpm, FindExact) {
  FlatLpm<int> lpm;
  lpm.insert(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, 1);
  const int* hit = lpm.find_exact(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  EXPECT_EQ(lpm.find_exact(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 16}), nullptr);
  EXPECT_EQ(lpm.find_exact(Ipv4Prefix{Ipv4Addr{11, 0, 0, 0}, 8}), nullptr);
}

TEST(FlatLpm, SpillBlockInheritsShorterCover) {
  FlatLpm<int> lpm;
  // Insert order exercises both directions: a long prefix forcing a
  // spill of a slot already covered by /16, then a /24 that must descend
  // into the existing spill block without clobbering the /26.
  lpm.insert(Ipv4Prefix{Ipv4Addr{172, 16, 0, 0}, 16}, 1);
  lpm.insert(Ipv4Prefix{Ipv4Addr{172, 16, 5, 64}, 26}, 2);
  lpm.insert(Ipv4Prefix{Ipv4Addr{172, 16, 5, 0}, 24}, 3);

  EXPECT_EQ(lpm.lookup(Ipv4Addr(172, 16, 5, 70)), 2);   // in the /26
  EXPECT_EQ(lpm.lookup(Ipv4Addr(172, 16, 5, 1)), 3);    // /24, outside /26
  EXPECT_EQ(lpm.lookup(Ipv4Addr(172, 16, 6, 1)), 1);    // /16 elsewhere
  EXPECT_EQ(lpm.spill_blocks(), 1u);
}

TEST(FlatLpm, ForEachMatchesTrieOrder) {
  FlatLpm<int> lpm;
  PrefixTrie<int> trie;
  util::Rng rng{11};
  for (int i = 0; i < 200; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.next_in(0, 32));
    const Ipv4Prefix p{Ipv4Addr{static_cast<std::uint32_t>(rng())}, len};
    lpm.insert(p, i);
    trie.insert(p, i);
  }
  std::vector<std::pair<Ipv4Prefix, int>> from_lpm;
  std::vector<std::pair<Ipv4Prefix, int>> from_trie;
  lpm.for_each([&](Ipv4Prefix p, int v) { from_lpm.emplace_back(p, v); });
  trie.for_each([&](Ipv4Prefix p, int v) { from_trie.emplace_back(p, v); });
  EXPECT_EQ(from_lpm, from_trie);
}

// ---- randomized differential harness ------------------------------------

struct Corpus {
  std::vector<Ipv4Prefix> prefixes;
  std::vector<Ipv4Addr> probes;
};

/// Builds a corpus with deliberate overlap (several prefixes share
/// networks at different lengths) and probes biased to land near the
/// inserted networks, where boundaries live.
Corpus make_corpus(std::uint64_t seed, std::size_t n_prefixes,
                   std::size_t n_probes, std::uint64_t min_len,
                   std::uint64_t max_len) {
  util::Rng rng{seed};
  Corpus c;
  c.prefixes.reserve(n_prefixes);
  for (std::size_t i = 0; i < n_prefixes; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.next_in(min_len, max_len));
    auto addr = static_cast<std::uint32_t>(rng());
    // Every fourth prefix reuses an earlier network to force overlap.
    if (i % 4 == 3 && !c.prefixes.empty())
      addr = c.prefixes[rng() % c.prefixes.size()].network().value();
    c.prefixes.emplace_back(Ipv4Addr{addr}, len);
  }
  c.probes.reserve(n_probes);
  for (std::size_t i = 0; i < n_probes; ++i) {
    if (i % 2 == 0) {
      c.probes.emplace_back(static_cast<std::uint32_t>(rng()));
    } else {
      // Jitter around a known network: hits the edges of covered ranges.
      const std::uint32_t base =
          c.prefixes[rng() % c.prefixes.size()].network().value();
      const auto jitter = static_cast<std::int32_t>(rng.next_in(0, 512)) - 256;
      c.probes.emplace_back(base + static_cast<std::uint32_t>(jitter));
    }
  }
  return c;
}

void run_differential(const Corpus& corpus) {
  FlatLpm<std::uint32_t> flat;
  PrefixTrie<std::uint32_t> trie;
  LengthIndexedLpm<std::uint32_t> indexed;
  for (std::size_t i = 0; i < corpus.prefixes.size(); ++i) {
    const auto v = static_cast<std::uint32_t>(i);
    flat.insert(corpus.prefixes[i], v);
    trie.insert(corpus.prefixes[i], v);
    indexed.insert(corpus.prefixes[i], v);
  }
  ASSERT_EQ(flat.size(), trie.size());
  ASSERT_EQ(flat.size(), indexed.size());

  for (const Ipv4Addr addr : corpus.probes) {
    const auto expect = trie.lookup(addr);
    ASSERT_EQ(flat.lookup(addr), expect) << "addr " << addr.value();
    ASSERT_EQ(indexed.lookup(addr), expect) << "addr " << addr.value();

    const auto flat_prefix = flat.lookup_prefix(addr);
    const auto trie_prefix = trie.lookup_prefix(addr);
    ASSERT_EQ(flat_prefix, trie_prefix) << "addr " << addr.value();
  }

  // Batched answers must equal the scalar ones, element for element.
  std::vector<const std::uint32_t*> out(corpus.probes.size());
  flat.lookup_batch(corpus.probes, out);
  for (std::size_t i = 0; i < corpus.probes.size(); ++i) {
    const std::uint32_t* scalar = flat.lookup_ptr(corpus.probes[i]);
    ASSERT_EQ(out[i], scalar) << "probe " << i;
  }
}

TEST(FlatLpmDifferential, FullLengthRange) {
  for (const std::uint64_t seed : {1u, 2u, 3u})
    run_differential(make_corpus(seed, 1500, 4000, 0, 32));
}

TEST(FlatLpmDifferential, RoutingShapedTable) {
  // /8–/24 only: no spill blocks, pure top-array coverage.
  for (const std::uint64_t seed : {4u, 5u})
    run_differential(make_corpus(seed, 2000, 4000, 8, 24));
}

TEST(FlatLpmDifferential, SpillHeavyTable) {
  // /25–/32 only: every prefix lands in a spill block.
  for (const std::uint64_t seed : {6u, 7u})
    run_differential(make_corpus(seed, 1000, 4000, 25, 32));
}

TEST(FlatLpmDifferential, OverwritingInserts) {
  util::Rng rng{8};
  FlatLpm<std::uint32_t> flat;
  PrefixTrie<std::uint32_t> trie;
  std::vector<Ipv4Prefix> pool;
  for (int i = 0; i < 600; ++i) {
    Ipv4Prefix p{Ipv4Addr{static_cast<std::uint32_t>(rng())},
                 static_cast<std::uint8_t>(rng.next_in(0, 32))};
    // Half the inserts re-announce an existing prefix with a new payload.
    if (i % 2 == 1 && !pool.empty()) p = pool[rng() % pool.size()];
    pool.push_back(p);
    const auto v = static_cast<std::uint32_t>(i);
    flat.insert(p, v);
    trie.insert(p, v);
  }
  EXPECT_EQ(flat.size(), trie.size());
  for (int i = 0; i < 4000; ++i) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    ASSERT_EQ(flat.lookup(addr), trie.lookup(addr)) << "addr " << addr.value();
  }
}

TEST(FlatLpmDifferential, AddressSweepAcrossBoundaries) {
  // A dense sweep across a region packed with nested prefixes: every
  // address in the range is probed, so every boundary is crossed.
  FlatLpm<std::uint32_t> flat;
  PrefixTrie<std::uint32_t> trie;
  util::Rng rng{9};
  const std::uint32_t base = Ipv4Addr{192, 168, 0, 0}.value();
  for (int i = 0; i < 300; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.next_in(16, 32));
    const std::uint32_t addr = base + static_cast<std::uint32_t>(
                                          rng.next_in(0, (1u << 16) - 1));
    const Ipv4Prefix p{Ipv4Addr{addr}, len};
    const auto v = static_cast<std::uint32_t>(i);
    flat.insert(p, v);
    trie.insert(p, v);
  }
  for (std::uint32_t offset = 0; offset < (1u << 16); ++offset) {
    const Ipv4Addr addr{base + offset};
    ASSERT_EQ(flat.lookup(addr), trie.lookup(addr)) << "addr " << addr.value();
  }
}

}  // namespace
}  // namespace ixp::net
