// The FlatLpm result cache and its invalidation contract (DESIGN.md §14):
// interleaved inserts and batch lookups must never serve a stale cached
// answer — across a single epoch bump, across the full 8-bit epoch wrap
// (256 invalidations between probes of the same address), and with the
// top array forced onto 4 KiB pages.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/flat_lpm.hpp"
#include "net/prefix_trie.hpp"
#include "util/huge_array.hpp"
#include "util/rng.hpp"

namespace ixp::net {
namespace {

void check_against_trie(const FlatLpm<std::uint32_t>& flat,
                        const PrefixTrie<std::uint32_t>& trie,
                        std::span<const Ipv4Addr> probes) {
  std::vector<const std::uint32_t*> out(probes.size());
  flat.lookup_batch(probes, out);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto expect = trie.lookup(probes[i]);
    // Batch, pointer-scalar, and value-scalar forms all agree with the
    // oracle — a batch answer is the same payload slot the scalar path
    // resolves.
    ASSERT_EQ(out[i] != nullptr, expect.has_value()) << probes[i].value();
    if (expect) {
      ASSERT_EQ(*out[i], *expect) << probes[i].value();
      ASSERT_EQ(out[i], flat.lookup_ptr(probes[i])) << probes[i].value();
    }
    ASSERT_EQ(flat.lookup(probes[i]), expect) << probes[i].value();
  }
}

TEST(FlatLpmCache, InterleavedInsertsNeverServeStaleHits) {
  util::Rng rng{31};
  FlatLpm<std::uint32_t> flat;
  PrefixTrie<std::uint32_t> trie;

  // A fixed probe set queried after every insert round: each round's
  // lookups populate the cache, the next round's insert invalidates it,
  // and any stale hit diverges from the trie immediately.
  std::vector<Ipv4Addr> probes;
  for (int i = 0; i < 2048; ++i)
    probes.emplace_back(static_cast<std::uint32_t>(rng()));

  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 25; ++i) {
      // Half the inserts nest under an already-probed address so the
      // newly covered range was cached with the OLD answer.
      std::uint32_t addr = probes[rng() % probes.size()].value();
      if (rng.next_below(2)) addr = static_cast<std::uint32_t>(rng());
      const auto len = static_cast<std::uint8_t>(rng.next_in(8, 32));
      const Ipv4Prefix p{Ipv4Addr{addr}, len};
      const auto v = static_cast<std::uint32_t>(round * 1000 + i);
      flat.insert(p, v);
      trie.insert(p, v);
    }
    check_against_trie(flat, trie, probes);
  }
}

TEST(FlatLpmCache, EpochWrapStillInvalidates) {
  // 300 single-insert rounds push the 8-bit epoch through its wrap (the
  // wrap path does a full cache clear); the same addresses are probed
  // every round, so a missed invalidation anywhere in 0..255 surfaces.
  util::Rng rng{32};
  FlatLpm<std::uint32_t> flat;
  PrefixTrie<std::uint32_t> trie;
  std::vector<Ipv4Addr> probes;
  for (int i = 0; i < 256; ++i)
    probes.emplace_back(static_cast<std::uint32_t>(rng()));

  for (int round = 0; round < 300; ++round) {
    // Nest ever-longer prefixes over a probed address: each insert
    // changes that address's correct answer.
    const std::uint32_t target = probes[round % probes.size()].value();
    const auto len = static_cast<std::uint8_t>(8 + round % 25);
    flat.insert(Ipv4Prefix{Ipv4Addr{target}, len},
                static_cast<std::uint32_t>(round));
    trie.insert(Ipv4Prefix{Ipv4Addr{target}, len},
                static_cast<std::uint32_t>(round));
    check_against_trie(flat, trie, probes);
  }
}

TEST(FlatLpmCache, SmallPageFallbackAnswersIdentically) {
  // force_small_pages pins the HugeArray 4 KiB path; the table must
  // report that backing and answer exactly as the huge-page build.
  util::force_small_pages(true);
  FlatLpm<std::uint32_t> flat;
  PrefixTrie<std::uint32_t> trie;
  util::Rng rng{33};
  for (int i = 0; i < 800; ++i) {
    const Ipv4Prefix p{Ipv4Addr{static_cast<std::uint32_t>(rng())},
                       static_cast<std::uint8_t>(rng.next_in(4, 32))};
    flat.insert(p, static_cast<std::uint32_t>(i));
    trie.insert(p, static_cast<std::uint32_t>(i));
  }
  EXPECT_TRUE(flat.top_backing() == util::PageBacking::kSmall ||
              flat.top_backing() == util::PageBacking::kHeap)
      << to_string(flat.top_backing());
  std::vector<Ipv4Addr> probes;
  for (int i = 0; i < 6000; ++i)
    probes.emplace_back(static_cast<std::uint32_t>(rng()));
  check_against_trie(flat, trie, probes);
  util::force_small_pages(false);
}

}  // namespace
}  // namespace ixp::net
