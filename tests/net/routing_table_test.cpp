#include "net/routing_table.hpp"

#include <gtest/gtest.h>

namespace ixp::net {
namespace {

TEST(RoutingTable, EmptyHasNoRoutes) {
  RoutingTable table;
  EXPECT_EQ(table.prefix_count(), 0u);
  EXPECT_FALSE(table.origin_of(Ipv4Addr{8, 8, 8, 8}).has_value());
  EXPECT_FALSE(table.prefix_of(Ipv4Addr{8, 8, 8, 8}).has_value());
  EXPECT_FALSE(table.route_of(Ipv4Addr{8, 8, 8, 8}).has_value());
}

TEST(RoutingTable, LongestPrefixWins) {
  RoutingTable table;
  table.announce(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, Asn{100});
  table.announce(Ipv4Prefix{Ipv4Addr{10, 20, 0, 0}, 16}, Asn{200});

  EXPECT_EQ(table.origin_of(Ipv4Addr(10, 20, 1, 1)), Asn{200});
  EXPECT_EQ(table.origin_of(Ipv4Addr(10, 21, 1, 1)), Asn{100});
  EXPECT_EQ(table.prefix_of(Ipv4Addr(10, 20, 1, 1)),
            (Ipv4Prefix{Ipv4Addr{10, 20, 0, 0}, 16}));
}

TEST(RoutingTable, RouteOfBundlesPrefixAndOrigin) {
  RoutingTable table;
  table.announce(Ipv4Prefix{Ipv4Addr{192, 0, 2, 0}, 24}, Asn{64500});
  const auto route = table.route_of(Ipv4Addr{192, 0, 2, 55});
  ASSERT_TRUE(route);
  EXPECT_EQ(route->prefix, (Ipv4Prefix{Ipv4Addr{192, 0, 2, 0}, 24}));
  EXPECT_EQ(route->origin, Asn{64500});
}

TEST(RoutingTable, ReannouncementOverwritesOrigin) {
  RoutingTable table;
  const Ipv4Prefix p{Ipv4Addr{10, 0, 0, 0}, 8};
  table.announce(p, Asn{1});
  table.announce(p, Asn{2});
  EXPECT_EQ(table.prefix_count(), 1u);
  EXPECT_EQ(table.origin_of(Ipv4Addr(10, 0, 0, 1)), Asn{2});
}

TEST(RoutingTable, RoutesEnumeratesEverything) {
  RoutingTable table;
  table.announce(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, Asn{1});
  table.announce(Ipv4Prefix{Ipv4Addr{172, 16, 0, 0}, 12}, Asn{2});
  table.announce(Ipv4Prefix{Ipv4Addr{192, 168, 0, 0}, 16}, Asn{3});
  const auto routes = table.routes();
  ASSERT_EQ(routes.size(), 3u);
  // Lexicographic order by prefix network address.
  EXPECT_EQ(routes[0].origin, Asn{1});
  EXPECT_EQ(routes[1].origin, Asn{2});
  EXPECT_EQ(routes[2].origin, Asn{3});
}

}  // namespace
}  // namespace ixp::net
