#include "net/as_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ixp::net {
namespace {

TEST(AsGraph, StartsEmpty) {
  AsGraph graph;
  EXPECT_EQ(graph.as_count(), 0u);
  EXPECT_EQ(graph.link_count(), 0u);
  EXPECT_FALSE(graph.contains(Asn{1}));
  EXPECT_TRUE(graph.neighbors(Asn{1}).empty());
}

TEST(AsGraph, AddLinkCreatesBothEndpoints) {
  AsGraph graph;
  graph.add_link(Asn{1}, Asn{2});
  EXPECT_TRUE(graph.contains(Asn{1}));
  EXPECT_TRUE(graph.contains(Asn{2}));
  EXPECT_EQ(graph.link_count(), 1u);
  EXPECT_EQ(graph.neighbors(Asn{1}).size(), 1u);
  EXPECT_EQ(graph.neighbors(Asn{2}).front(), Asn{1});
}

TEST(AsGraph, DuplicateAndSelfLinksIgnored) {
  AsGraph graph;
  graph.add_link(Asn{1}, Asn{2});
  graph.add_link(Asn{2}, Asn{1});
  graph.add_link(Asn{1}, Asn{1});
  EXPECT_EQ(graph.link_count(), 1u);
  EXPECT_EQ(graph.neighbors(Asn{1}).size(), 1u);
}

TEST(AsGraph, DistancesFromSeeds) {
  // Chain: 1 - 2 - 3 - 4, plus isolated 5.
  AsGraph graph;
  graph.add_link(Asn{1}, Asn{2});
  graph.add_link(Asn{2}, Asn{3});
  graph.add_link(Asn{3}, Asn{4});
  graph.add_as(Asn{5});

  const auto dist = graph.distances_from({Asn{1}});
  EXPECT_EQ(dist.at(Asn{1}), 0u);
  EXPECT_EQ(dist.at(Asn{2}), 1u);
  EXPECT_EQ(dist.at(Asn{3}), 2u);
  EXPECT_EQ(dist.at(Asn{4}), 3u);
  EXPECT_EQ(dist.count(Asn{5}), 0u);  // unreachable
}

TEST(AsGraph, DistancesFromMultipleSeeds) {
  AsGraph graph;
  graph.add_link(Asn{1}, Asn{2});
  graph.add_link(Asn{3}, Asn{4});
  const auto dist = graph.distances_from({Asn{1}, Asn{3}});
  EXPECT_EQ(dist.at(Asn{2}), 1u);
  EXPECT_EQ(dist.at(Asn{4}), 1u);
}

TEST(AsGraph, MissingSeedsAreSkipped) {
  AsGraph graph;
  graph.add_link(Asn{1}, Asn{2});
  const auto dist = graph.distances_from({Asn{42}});
  EXPECT_TRUE(dist.empty());
}

TEST(AsGraph, ClassifyPartitionsByDistance) {
  // members = {1}; 2 is distance 1; 3 distance 2; 9 disconnected.
  AsGraph graph;
  graph.add_link(Asn{1}, Asn{2});
  graph.add_link(Asn{2}, Asn{3});
  graph.add_as(Asn{9});

  const auto locality = graph.classify({Asn{1}});
  EXPECT_EQ(locality.at(Asn{1}), Locality::kMember);
  EXPECT_EQ(locality.at(Asn{2}), Locality::kNear);
  EXPECT_EQ(locality.at(Asn{3}), Locality::kGlobal);
  EXPECT_EQ(locality.at(Asn{9}), Locality::kGlobal);
}

TEST(AsGraph, ClassifyCoversEveryAs) {
  AsGraph graph;
  for (std::uint32_t i = 0; i < 100; ++i) graph.add_link(Asn{i}, Asn{i + 1});
  const auto locality = graph.classify({Asn{0}});
  EXPECT_EQ(locality.size(), graph.as_count());
}

TEST(AsGraph, AllAsesListsEverything) {
  AsGraph graph;
  graph.add_link(Asn{5}, Asn{6});
  graph.add_as(Asn{7});
  auto all = graph.all_ases();
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<Asn>{Asn{5}, Asn{6}, Asn{7}}));
}

TEST(LocalityToString, Names) {
  EXPECT_STREQ(to_string(Locality::kMember), "A(L)");
  EXPECT_STREQ(to_string(Locality::kNear), "A(M)");
  EXPECT_STREQ(to_string(Locality::kGlobal), "A(G)");
}

}  // namespace
}  // namespace ixp::net
