#include "net/bgp_dump.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ixp::net {
namespace {

TEST(BgpDump, RoundTripsTable) {
  RoutingTable table;
  table.announce(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, Asn{64500});
  table.announce(Ipv4Prefix{Ipv4Addr{172, 16, 0, 0}, 12}, Asn{64501});
  table.announce(Ipv4Prefix{Ipv4Addr{192, 0, 2, 0}, 24}, Asn{20940});

  std::stringstream buffer;
  EXPECT_EQ(write_bgp_dump(buffer, table), 3u);

  RoutingTable loaded;
  const auto stats = read_bgp_dump(buffer, loaded);
  EXPECT_EQ(stats.routes, 3u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(loaded.prefix_count(), 3u);
  EXPECT_EQ(loaded.origin_of(Ipv4Addr{192, 0, 2, 9}), Asn{20940});
  EXPECT_EQ(loaded.origin_of(Ipv4Addr{10, 9, 9, 9}), Asn{64500});
}

TEST(BgpDump, ParsesSingleLines) {
  const auto route = parse_bgp_line("10.4.0.0/16 64500");
  ASSERT_TRUE(route);
  EXPECT_EQ(route->prefix.to_string(), "10.4.0.0/16");
  EXPECT_EQ(route->origin, Asn{64500});
}

TEST(BgpDump, AcceptsAsPrefixSpelling) {
  const auto route = parse_bgp_line("10.4.0.0/16 AS64500");
  ASSERT_TRUE(route);
  EXPECT_EQ(route->origin, Asn{64500});
  EXPECT_TRUE(parse_bgp_line("10.4.0.0/16 as64500"));
}

TEST(BgpDump, ToleratesCarriageReturns) {
  const auto route = parse_bgp_line("10.4.0.0/16 64500\r");
  ASSERT_TRUE(route);
  EXPECT_EQ(route->origin, Asn{64500});
}

TEST(BgpDump, RejectsMalformedLines) {
  EXPECT_FALSE(parse_bgp_line(""));
  EXPECT_FALSE(parse_bgp_line("10.4.0.0/16"));         // no ASN
  EXPECT_FALSE(parse_bgp_line("10.4.0.1/16 64500"));   // host bits set
  EXPECT_FALSE(parse_bgp_line("banana 64500"));
  EXPECT_FALSE(parse_bgp_line("10.4.0.0/16 banana"));
  EXPECT_FALSE(parse_bgp_line("10.4.0.0/16 64500 extra"));
}

TEST(BgpDump, SkipsJunkAndCountsIt) {
  std::stringstream dump;
  dump << "# ixpscope-bgp v1\n"
       << "10.0.0.0/8 1\n"
       << "\n"
       << "this line is garbage\n"
       << "# another comment\n"
       << "192.0.2.0/24 AS2\n";
  RoutingTable table;
  const auto stats = read_bgp_dump(dump, table);
  EXPECT_EQ(stats.routes, 2u);
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_EQ(stats.comments, 3u);  // header, blank, comment
  EXPECT_EQ(table.prefix_count(), 2u);
}

TEST(BgpDump, EmptyInput) {
  std::stringstream dump;
  RoutingTable table;
  const auto stats = read_bgp_dump(dump, table);
  EXPECT_EQ(stats.routes, 0u);
  EXPECT_EQ(table.prefix_count(), 0u);
}

}  // namespace
}  // namespace ixp::net
