#include "net/ipv4.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ixp::net {
namespace {

TEST(Ipv4Addr, OctetConstruction) {
  constexpr Ipv4Addr addr{10, 1, 2, 3};
  EXPECT_EQ(addr.value(), 0x0a010203u);
  EXPECT_EQ(addr.octet(0), 10);
  EXPECT_EQ(addr.octet(1), 1);
  EXPECT_EQ(addr.octet(2), 2);
  EXPECT_EQ(addr.octet(3), 3);
}

TEST(Ipv4Addr, RoundTripsThroughString) {
  const Ipv4Addr addr{192, 168, 0, 255};
  EXPECT_EQ(addr.to_string(), "192.168.0.255");
  EXPECT_EQ(Ipv4Addr::parse("192.168.0.255"), addr);
}

TEST(Ipv4Addr, ParseAcceptsBoundaries) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0"), Ipv4Addr{0u});
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255"), Ipv4Addr{0xffffffffu});
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Addr::parse("01.2.3.4"));  // ambiguous leading zero
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Addr::parse(" 1.2.3.4"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Addr::parse("-1.2.3.4"));
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(1, 0, 0, 0), Ipv4Addr(2, 0, 0, 0));
  EXPECT_EQ(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(1, 2, 3, 4));
}

TEST(Ipv4Addr, HashSpreads) {
  std::unordered_set<Ipv4Addr> set;
  for (std::uint32_t i = 0; i < 10000; ++i) set.insert(Ipv4Addr{i});
  EXPECT_EQ(set.size(), 10000u);
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  const Ipv4Prefix prefix{Ipv4Addr{10, 1, 2, 3}, 8};
  EXPECT_EQ(prefix.network(), Ipv4Addr(10, 0, 0, 0));
  EXPECT_EQ(prefix.length(), 8);
  EXPECT_EQ(prefix.size(), 1ULL << 24);
}

TEST(Ipv4Prefix, ContainsAddresses) {
  const Ipv4Prefix prefix{Ipv4Addr{192, 168, 4, 0}, 22};
  EXPECT_TRUE(prefix.contains(Ipv4Addr(192, 168, 4, 0)));
  EXPECT_TRUE(prefix.contains(Ipv4Addr(192, 168, 7, 255)));
  EXPECT_FALSE(prefix.contains(Ipv4Addr(192, 168, 8, 0)));
  EXPECT_FALSE(prefix.contains(Ipv4Addr(192, 168, 3, 255)));
}

TEST(Ipv4Prefix, ContainsPrefixes) {
  const Ipv4Prefix outer{Ipv4Addr{10, 0, 0, 0}, 8};
  const Ipv4Prefix inner{Ipv4Addr{10, 5, 0, 0}, 16};
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
}

TEST(Ipv4Prefix, ZeroLengthCoversEverything) {
  const Ipv4Prefix all{Ipv4Addr{0u}, 0};
  EXPECT_TRUE(all.contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_TRUE(all.contains(Ipv4Addr{0u}));
  EXPECT_EQ(all.size(), 1ULL << 32);
}

TEST(Ipv4Prefix, SlashThirtyTwoIsSingleAddress) {
  const Ipv4Prefix host{Ipv4Addr{1, 2, 3, 4}, 32};
  EXPECT_EQ(host.size(), 1u);
  EXPECT_TRUE(host.contains(Ipv4Addr(1, 2, 3, 4)));
  EXPECT_FALSE(host.contains(Ipv4Addr(1, 2, 3, 5)));
}

TEST(Ipv4Prefix, AddressAtIterates) {
  const Ipv4Prefix prefix{Ipv4Addr{10, 0, 0, 0}, 30};
  EXPECT_EQ(prefix.address_at(0), Ipv4Addr(10, 0, 0, 0));
  EXPECT_EQ(prefix.address_at(3), Ipv4Addr(10, 0, 0, 3));
}

TEST(Ipv4Prefix, ParseRoundTrips) {
  const auto prefix = Ipv4Prefix::parse("172.16.0.0/12");
  ASSERT_TRUE(prefix);
  EXPECT_EQ(prefix->to_string(), "172.16.0.0/12");
}

TEST(Ipv4Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0"));       // missing length
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33"));    // length too large
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.1/8"));     // host bits set
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/"));      // empty length
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/8x"));    // trailing junk
  EXPECT_FALSE(Ipv4Prefix::parse("banana/8"));
}

TEST(Asn, FormatsAndCompares) {
  const Asn asn{20940};
  EXPECT_EQ(asn.to_string(), "AS20940");
  EXPECT_EQ(asn.value(), 20940u);
  EXPECT_LT(Asn{1}, Asn{2});
}

}  // namespace
}  // namespace ixp::net
