#include "net/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/rng.hpp"

namespace ixp::net {
namespace {

TEST(PrefixTrie, EmptyLookupMisses) {
  PrefixTrie<int> trie;
  EXPECT_FALSE(trie.lookup(Ipv4Addr{1, 2, 3, 4}).has_value());
  EXPECT_EQ(trie.size(), 0u);
}

TEST(PrefixTrie, ExactAndCoveringLookups) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, 1);
  trie.insert(Ipv4Prefix{Ipv4Addr{10, 1, 0, 0}, 16}, 2);

  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 2, 3)), 2);   // most specific wins
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 2, 0, 1)), 1);   // falls back to /8
  EXPECT_FALSE(trie.lookup(Ipv4Addr(11, 0, 0, 1)).has_value());
  EXPECT_EQ(trie.size(), 2u);
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix{Ipv4Addr{0u}, 0}, 99);
  EXPECT_EQ(trie.lookup(Ipv4Addr(8, 8, 8, 8)), 99);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0u}), 99);
}

TEST(PrefixTrie, OverwriteKeepsSize) {
  PrefixTrie<int> trie;
  const Ipv4Prefix p{Ipv4Addr{10, 0, 0, 0}, 8};
  trie.insert(p, 1);
  trie.insert(p, 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 0, 0, 1)), 2);
}

TEST(PrefixTrie, FindExact) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, 1);
  const int* hit = trie.find_exact(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  // A longer prefix along the same path is not stored.
  EXPECT_EQ(trie.find_exact(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 16}), nullptr);
  EXPECT_EQ(trie.find_exact(Ipv4Prefix{Ipv4Addr{11, 0, 0, 0}, 8}), nullptr);
}

TEST(PrefixTrie, LookupPrefixReturnsMostSpecific) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, 1);
  trie.insert(Ipv4Prefix{Ipv4Addr{10, 1, 0, 0}, 16}, 2);
  const auto hit = trie.lookup_prefix(Ipv4Addr{10, 1, 200, 3});
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first, (Ipv4Prefix{Ipv4Addr{10, 1, 0, 0}, 16}));
  EXPECT_EQ(hit->second, 2);
}

TEST(PrefixTrie, SlashThirtyTwoEntries) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix{Ipv4Addr{1, 2, 3, 4}, 32}, 7);
  EXPECT_EQ(trie.lookup(Ipv4Addr(1, 2, 3, 4)), 7);
  EXPECT_FALSE(trie.lookup(Ipv4Addr(1, 2, 3, 5)).has_value());
}

TEST(PrefixTrie, ForEachVisitsAllStoredPrefixes) {
  PrefixTrie<int> trie;
  const std::vector<Ipv4Prefix> prefixes{
      Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8},
      Ipv4Prefix{Ipv4Addr{10, 128, 0, 0}, 9},
      Ipv4Prefix{Ipv4Addr{192, 168, 0, 0}, 16},
      Ipv4Prefix{Ipv4Addr{1, 2, 3, 4}, 32},
      Ipv4Prefix{Ipv4Addr{0u}, 0},
  };
  for (std::size_t i = 0; i < prefixes.size(); ++i)
    trie.insert(prefixes[i], static_cast<int>(i));

  std::map<std::string, int> seen;
  trie.for_each([&seen](Ipv4Prefix p, int v) { seen[p.to_string()] = v; });
  EXPECT_EQ(seen.size(), prefixes.size());
  for (std::size_t i = 0; i < prefixes.size(); ++i)
    EXPECT_EQ(seen.at(prefixes[i].to_string()), static_cast<int>(i));
}

// Property test: the trie agrees with the length-indexed reference on
// random prefix tables and random probes.
class TrieVsReferenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieVsReferenceTest, AgreesWithLengthIndexedOracle) {
  util::Rng rng{GetParam()};
  PrefixTrie<std::uint32_t> trie;
  LengthIndexedLpm<std::uint32_t> oracle;

  for (int i = 0; i < 3000; ++i) {
    const auto length = static_cast<std::uint8_t>(rng.next_in(4, 30));
    const Ipv4Addr base{static_cast<std::uint32_t>(rng())};
    const Ipv4Prefix prefix{base, length};
    const auto value = static_cast<std::uint32_t>(i);
    trie.insert(prefix, value);
    oracle.insert(prefix, value);
  }
  EXPECT_EQ(trie.size(), oracle.size());

  for (int i = 0; i < 20000; ++i) {
    const Ipv4Addr probe{static_cast<std::uint32_t>(rng())};
    EXPECT_EQ(trie.lookup(probe), oracle.lookup(probe))
        << "probe " << probe.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieVsReferenceTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(LengthIndexedLpm, BasicBehaviour) {
  LengthIndexedLpm<int> lpm;
  lpm.insert(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, 1);
  lpm.insert(Ipv4Prefix{Ipv4Addr{10, 1, 0, 0}, 16}, 2);
  EXPECT_EQ(lpm.lookup(Ipv4Addr(10, 1, 0, 5)), 2);
  EXPECT_EQ(lpm.lookup(Ipv4Addr(10, 9, 0, 5)), 1);
  EXPECT_FALSE(lpm.lookup(Ipv4Addr(9, 9, 0, 5)).has_value());
}

}  // namespace
}  // namespace ixp::net
