#include "gen/workload.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "gen/isp_observer.hpp"

namespace ixp::gen {
namespace {

const InternetModel& model() {
  static const InternetModel instance{ScaleConfig::test()};
  return instance;
}

const Workload& workload() {
  static const Workload instance{model()};
  return instance;
}

TEST(Workload, GenerationIsDeterministic) {
  std::vector<std::uint16_t> lengths_a;
  std::vector<std::uint16_t> lengths_b;
  (void)workload().generate_week(40, [&](const sflow::FlowSample& s) {
    if (lengths_a.size() < 5000) lengths_a.push_back(s.frame.frame_length);
  });
  (void)workload().generate_week(40, [&](const sflow::FlowSample& s) {
    if (lengths_b.size() < 5000) lengths_b.push_back(s.frame.frame_length);
  });
  EXPECT_EQ(lengths_a, lengths_b);
}

TEST(Workload, DifferentWeeksDiffer) {
  std::uint64_t sig_a = 0;
  std::uint64_t sig_b = 0;
  (void)workload().generate_week(40, [&](const sflow::FlowSample& s) {
    sig_a = sig_a * 31 + s.frame.frame_length;
  });
  (void)workload().generate_week(41, [&](const sflow::FlowSample& s) {
    sig_b = sig_b * 31 + s.frame.frame_length;
  });
  EXPECT_NE(sig_a, sig_b);
}

TEST(Workload, TruthAccountingConsistent) {
  std::uint64_t count = 0;
  const auto truth =
      workload().generate_week(45, [&](const sflow::FlowSample&) { ++count; });
  EXPECT_EQ(truth.total_samples, count);
  EXPECT_EQ(truth.total_samples,
            truth.peering_samples + truth.non_ipv4_samples +
                truth.non_member_or_local_samples + truth.non_tcp_udp_samples);
  EXPECT_NEAR(truth.tcp_bytes + truth.udp_bytes, truth.peering_bytes, 1.0);
  EXPECT_GT(truth.server_bytes, 0.5 * truth.peering_bytes);
  EXPECT_GT(truth.active_visible_servers, 0u);
}

TEST(Workload, CategorySharesMatchFigure1) {
  const auto truth = workload().generate_week(45, [](const sflow::FlowSample&) {});
  const double total = static_cast<double>(truth.total_samples);
  EXPECT_NEAR(static_cast<double>(truth.non_ipv4_samples) / total, 0.004, 0.002);
  EXPECT_NEAR(static_cast<double>(truth.non_member_or_local_samples) / total,
              0.006, 0.003);
  EXPECT_NEAR(static_cast<double>(truth.non_tcp_udp_samples) / total, 0.0045,
              0.002);
  EXPECT_GT(static_cast<double>(truth.peering_samples) / total, 0.98);
}

TEST(Workload, TrafficGrowsAcrossPeriod) {
  const auto w35 = workload().generate_week(35, [](const sflow::FlowSample&) {});
  const auto w51 = workload().generate_week(51, [](const sflow::FlowSample&) {});
  EXPECT_GT(w51.total_samples, w35.total_samples);
  // Paper: 11.9 -> 14.5 PB/day, about +22%.
  const double growth = static_cast<double>(w51.total_samples) /
                        static_cast<double>(w35.total_samples);
  EXPECT_NEAR(growth, 1.22, 0.06);
}

TEST(Workload, ActiveServersAllVisible) {
  const auto active = workload().active_visible_servers(45);
  for (const std::uint32_t s : active) {
    EXPECT_TRUE(model().servers()[s].visible());
    EXPECT_TRUE(model().server_active(s, 45));
  }
}

TEST(Workload, BackgroundAddrDeterministic) {
  EXPECT_EQ(workload().background_addr(123), workload().background_addr(123));
  EXPECT_TRUE(
      model().routing().origin_of(workload().background_addr(99)).has_value());
}

TEST(Workload, SamplesAreParseable) {
  std::uint64_t parsed_count = 0;
  std::uint64_t total = 0;
  (void)workload().generate_week(45, [&](const sflow::FlowSample& s) {
    ++total;
    if (sflow::parse_frame(s.frame)) ++parsed_count;
  });
  EXPECT_EQ(parsed_count, total);  // every capture parses at least Ethernet
}

TEST(Workload, SamplingRateIsPaperRate) {
  bool checked = false;
  (void)workload().generate_week(45, [&](const sflow::FlowSample& s) {
    if (!checked) {
      EXPECT_EQ(s.sampling_rate, sflow::kPaperSamplingRate);
      checked = true;
    }
  });
  EXPECT_TRUE(checked);
}

TEST(IspObserver, SeesServersIncludingIxpBlindOnes) {
  const IspObserver isp{model()};
  const auto observed = isp.observed_servers(45);
  EXPECT_GT(observed.size(), 0u);
  std::size_t blind_seen = 0;
  for (const net::Ipv4Addr addr : observed) {
    const auto index = model().server_by_addr(addr);
    ASSERT_TRUE(index);  // the ISP only reports real servers
    if (!model().servers()[*index].visible()) ++blind_seen;
  }
  EXPECT_GT(blind_seen, 0u);  // §3.1: ~45K server IPs not seen at the IXP
}

TEST(IspObserver, Deterministic) {
  const IspObserver isp{model()};
  EXPECT_EQ(isp.observed_servers(45), isp.observed_servers(45));
}

}  // namespace
}  // namespace ixp::gen
