// Parameterized invariants over every week of the measurement period:
// whatever week is generated, the stream must satisfy the same structural
// properties (Figure-1 shares, parseability, determinism, server-byte
// dominance).
#include <gtest/gtest.h>

#include "gen/internet.hpp"
#include "gen/workload.hpp"

namespace ixp::gen {
namespace {

const InternetModel& model() {
  static const InternetModel instance{ScaleConfig::test()};
  return instance;
}

const Workload& workload() {
  static const Workload instance{model()};
  return instance;
}

class WeekSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(WeekSweepTest, StreamInvariantsHold) {
  const int week = GetParam();
  std::uint64_t samples = 0;
  std::uint64_t member_macs_everywhere = 0;
  const auto truth = workload().generate_week(week, [&](const sflow::FlowSample& s) {
    ++samples;
    EXPECT_EQ(s.sampling_rate, sflow::kPaperSamplingRate);
    EXPECT_GT(s.frame.frame_length, 0);
    EXPECT_LE(s.frame.captured, sflow::kCaptureBytes);
    const auto parsed = sflow::parse_frame(s.frame);
    if (parsed && model().ixp().is_member_port(parsed->eth.src, week) &&
        model().ixp().is_member_port(parsed->eth.dst, week))
      ++member_macs_everywhere;
  });
  EXPECT_EQ(truth.total_samples, samples);

  // Figure-1 composition per week.
  const double total = static_cast<double>(truth.total_samples);
  EXPECT_GT(truth.peering_samples / total, 0.975);
  EXPECT_LT(truth.non_ipv4_samples / total, 0.01);
  EXPECT_LT(truth.non_member_or_local_samples / total, 0.015);
  EXPECT_LT(truth.non_tcp_udp_samples / total, 0.01);

  // Almost all samples run member-to-member.
  EXPECT_GT(static_cast<double>(member_macs_everywhere) / total, 0.97);

  // Server bytes dominate peering bytes in every week (>70% target, with
  // slack for weekly noise at test scale).
  EXPECT_GT(truth.server_bytes / truth.peering_bytes, 0.55);

  // Active server pool stays within sane bounds of the weekly target.
  EXPECT_GT(truth.active_visible_servers,
            model().config().weekly_server_ips / 3);
  EXPECT_LT(truth.active_visible_servers,
            model().config().weekly_server_ips * 2);
}

TEST_P(WeekSweepTest, RegenerationIsIdentical) {
  const int week = GetParam();
  std::uint64_t sig_a = 0;
  std::uint64_t sig_b = 0;
  std::uint64_t count_a = 0;
  (void)workload().generate_week(week, [&](const sflow::FlowSample& s) {
    if (++count_a % 17 != 0) return;  // hash a deterministic subsample
    sig_a = sig_a * 1099511628211ULL + s.frame.frame_length;
    const auto parsed = sflow::parse_frame(s.frame);
    if (parsed && parsed->ip) sig_a ^= parsed->ip->src.value();
  });
  std::uint64_t count_b = 0;
  (void)workload().generate_week(week, [&](const sflow::FlowSample& s) {
    if (++count_b % 17 != 0) return;
    sig_b = sig_b * 1099511628211ULL + s.frame.frame_length;
    const auto parsed = sflow::parse_frame(s.frame);
    if (parsed && parsed->ip) sig_b ^= parsed->ip->src.value();
  });
  EXPECT_EQ(sig_a, sig_b);
  EXPECT_EQ(count_a, count_b);
}

INSTANTIATE_TEST_SUITE_P(AllWeeks, WeekSweepTest,
                         ::testing::Range(35, 52));  // weeks 35..51

}  // namespace
}  // namespace ixp::gen
