#include "gen/scale.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/org_catalog.hpp"

namespace ixp::gen {
namespace {

TEST(ScaleConfig, BenchKeepsStructureAtPaperScale) {
  const auto cfg = ScaleConfig::bench(1.0 / 256.0);
  EXPECT_EQ(cfg.as_count, 42'825u);
  EXPECT_EQ(cfg.prefix_count, 460'000u);
  EXPECT_EQ(cfg.member_count, 443u);
  EXPECT_EQ(cfg.member_joins, 14u);
  // Resolvers are measurement infrastructure: never scaled down.
  EXPECT_EQ(cfg.resolver_candidates, 280'000u);
  EXPECT_EQ(cfg.week_count(), 17);
}

TEST(ScaleConfig, VolumeScalesPopulationsMonotonically) {
  const auto small = ScaleConfig::bench(1.0 / 1024.0);
  const auto medium = ScaleConfig::bench(1.0 / 256.0);
  const auto large = ScaleConfig::bench(1.0 / 64.0);
  EXPECT_LT(small.weekly_server_ips, medium.weekly_server_ips);
  EXPECT_LT(medium.weekly_server_ips, large.weekly_server_ips);
  EXPECT_LT(small.client_pool, medium.client_pool);
  EXPECT_LT(medium.weekly_background_samples, large.weekly_background_samples);
  EXPECT_LT(small.org_count, large.org_count);
  EXPECT_LE(small.org_count, small.weekly_server_ips);  // orgs < servers
}

TEST(ScaleConfig, FullVolumeReproducesPaperPopulations) {
  const auto cfg = ScaleConfig::bench(1.0);
  EXPECT_EQ(cfg.weekly_server_ips, 1'500'000u);
  EXPECT_EQ(cfg.client_pool, 40'000'000u);
  EXPECT_EQ(cfg.org_count, 21'000u);
  EXPECT_EQ(cfg.site_count, 1'000'000u);
}

TEST(ScaleConfig, MinimumFloorsHold) {
  const auto cfg = ScaleConfig::bench(1e-9);
  EXPECT_GE(cfg.weekly_server_ips, 2'000u);
  EXPECT_GE(cfg.org_count, 300u);
  EXPECT_GE(cfg.client_pool, 10'000u);
  EXPECT_GE(cfg.weekly_background_samples, 50'000u);
}

TEST(ScaleConfig, TestPresetIsSmall) {
  const auto cfg = ScaleConfig::test();
  EXPECT_LT(cfg.as_count, 2'000u);
  EXPECT_LT(cfg.prefix_count, 10'000u);
  EXPECT_LT(cfg.weekly_server_ips, 10'000u);
  EXPECT_GT(cfg.prefix_count, cfg.as_count);  // model invariant
}

TEST(OrgCatalog, NamedHeadsAreConsistent) {
  const auto specs = named_org_specs();
  EXPECT_GE(specs.size(), 25u);

  double traffic_total = 0.0;
  double visible_total = 0.0;
  std::set<std::string> names;
  for (const OrgSpec& spec : specs) {
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
    EXPECT_GE(spec.traffic_share, 0.0);
    EXPECT_LE(spec.traffic_share, 0.2);
    EXPECT_GE(spec.visible_server_share, 0.0);
    EXPECT_GE(spec.indirect_link_fraction, 0.0);
    EXPECT_LT(spec.indirect_link_fraction, 1.0);
    EXPECT_TRUE(spec.home_country.valid());
    traffic_total += spec.traffic_share;
    visible_total += spec.visible_server_share;
    for (const auto& dc : spec.data_centers) {
      EXPECT_FALSE(dc.name.empty());
      EXPECT_TRUE(dc.country.valid());
      EXPECT_GT(dc.weight, 0.0);
    }
  }
  // The named head carries a majority of the server traffic but far from
  // all of it (the tail matters), and a modest share of the servers.
  EXPECT_GT(traffic_total, 0.4);
  EXPECT_LT(traffic_total, 0.8);
  EXPECT_GT(visible_total, 0.08);
  EXPECT_LT(visible_total, 0.30);
}

TEST(OrgCatalog, PaperAnchorsPresent) {
  const auto specs = named_org_specs();
  const auto find = [&](const char* name) -> const OrgSpec* {
    for (const auto& spec : specs)
      if (spec.name == name) return &spec;
    return nullptr;
  };
  const OrgSpec* akamai = find("akamai");
  ASSERT_NE(akamai, nullptr);
  EXPECT_EQ(akamai->home_as, net::Asn{20940});
  EXPECT_NEAR(akamai->indirect_link_fraction, 0.111, 1e-9);  // Fig. 7b
  EXPECT_EQ(akamai->visible_as_spread, 278u);                // §3.3

  const OrgSpec* google = find("google");
  ASSERT_NE(google, nullptr);
  EXPECT_EQ(google->home_as, net::Asn{15169});

  const OrgSpec* cdn77 = find("cdn77");
  ASSERT_NE(cdn77, nullptr);
  EXPECT_FALSE(cdn77->home_as.has_value());  // the no-ASN player (§5.1)

  const OrgSpec* softlayer = find("softlayer");
  ASSERT_NE(softlayer, nullptr);
  EXPECT_EQ(softlayer->home_as, net::Asn{36351});  // §5.2's hoster
}

TEST(OrgCatalog, EyeballSpecsAnchorTable2) {
  const auto specs = named_eyeball_specs();
  ASSERT_GE(specs.size(), 10u);
  // Chinanet leads the "all IPs by network" column and is NOT a member.
  EXPECT_EQ(specs.front().name, "chinanet");
  EXPECT_EQ(specs.front().asn, net::Asn{4134});
  EXPECT_FALSE(specs.front().member);
  double share = 0.0;
  for (const auto& spec : specs) {
    EXPECT_GT(spec.ip_share, 0.0);
    share += spec.ip_share;
  }
  EXPECT_LT(share, 0.5);  // the head anchors, the tail fills the rest
}

}  // namespace
}  // namespace ixp::gen
