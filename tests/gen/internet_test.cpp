#include "gen/internet.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ixp::gen {
namespace {

/// One shared model for the whole suite: construction is the expensive
/// part and the model is immutable.
const InternetModel& model() {
  static const InternetModel instance{ScaleConfig::test()};
  return instance;
}

TEST(InternetModel, RejectsInconsistentConfigs) {
  ScaleConfig bad = ScaleConfig::test();
  bad.as_count = bad.member_count;  // no room for non-members
  EXPECT_THROW(InternetModel{bad}, std::invalid_argument);
  ScaleConfig bad2 = ScaleConfig::test();
  bad2.prefix_count = bad2.as_count - 1;
  EXPECT_THROW(InternetModel{bad2}, std::invalid_argument);
}

TEST(InternetModel, StructuralCountsMatchConfig) {
  const auto& m = model();
  const auto& cfg = m.config();
  EXPECT_EQ(m.ases().size(), cfg.as_count);
  EXPECT_GE(m.prefixes().size(), cfg.prefix_count);
  EXPECT_EQ(m.ixp().member_count_at(cfg.first_week), cfg.member_count);
  EXPECT_EQ(m.ixp().member_count_at(cfg.last_week),
            cfg.member_count + cfg.member_joins);
  EXPECT_GE(m.orgs().size(), cfg.org_count);
  EXPECT_EQ(m.sites().size(), cfg.site_count);
  EXPECT_EQ(m.resolvers().size(), cfg.resolver_candidates);
}

TEST(InternetModel, EveryPrefixRoutesToItsAs) {
  const auto& m = model();
  for (std::size_t p = 0; p < m.prefixes().size(); p += 37) {
    const auto& record = m.prefixes()[p];
    const auto origin = m.routing().origin_of(record.prefix.network());
    ASSERT_TRUE(origin);
    EXPECT_EQ(*origin, m.ases()[record.as_index].asn);
  }
}

TEST(InternetModel, PrefixesAreDisjoint) {
  // Sequential allocation must never overlap: each prefix's network
  // address must route back to exactly that prefix.
  const auto& m = model();
  for (std::size_t p = 0; p < m.prefixes().size(); p += 23) {
    const auto& record = m.prefixes()[p];
    const auto found = m.routing().prefix_of(record.prefix.network());
    ASSERT_TRUE(found);
    EXPECT_EQ(*found, record.prefix);
  }
}

TEST(InternetModel, GeoMatchesAsCountry) {
  const auto& m = model();
  for (std::size_t p = 0; p < m.prefixes().size(); p += 41) {
    const auto& record = m.prefixes()[p];
    const auto country = m.geo_db().country_of(record.prefix.address_at(1));
    ASSERT_TRUE(country);
    EXPECT_EQ(*country, m.ases()[record.as_index].country);
  }
}

TEST(InternetModel, LocalityPartitionIsComplete) {
  const auto& m = model();
  std::size_t members = 0;
  std::size_t near = 0;
  std::size_t global = 0;
  for (const AsRecord& as : m.ases()) {
    switch (as.locality) {
      case net::Locality::kMember: ++members; break;
      case net::Locality::kNear: ++near; break;
      default: ++global; break;
    }
    if (as.member) EXPECT_EQ(as.locality, net::Locality::kMember);
  }
  EXPECT_EQ(members, m.config().member_count + m.config().member_joins);
  EXPECT_GT(near, 0u);
  EXPECT_GT(global, 0u);
}

TEST(InternetModel, EntryMembersAreMembers) {
  const auto& m = model();
  for (const AsRecord& as : m.ases()) {
    const AsRecord& entry = m.ases()[as.entry_member];
    EXPECT_TRUE(entry.member) << as.asn.to_string();
  }
}

TEST(InternetModel, ServerAddressesAreUniqueAndRouted) {
  const auto& m = model();
  std::unordered_set<net::Ipv4Addr> seen;
  for (const ServerRecord& server : m.servers()) {
    EXPECT_TRUE(seen.insert(server.addr).second) << "duplicate server IP";
    const auto origin = m.routing().origin_of(server.addr);
    ASSERT_TRUE(origin);
    EXPECT_EQ(*origin, m.ases()[server.host_as].asn);
  }
}

TEST(InternetModel, ServerLookupRoundTrips) {
  const auto& m = model();
  for (std::uint32_t s = 0; s < m.servers().size(); s += 29) {
    const auto found = m.server_by_addr(m.servers()[s].addr);
    ASSERT_TRUE(found);
    EXPECT_EQ(*found, s);
  }
  EXPECT_FALSE(m.server_by_addr(net::Ipv4Addr{250, 250, 250, 250}).has_value());
}

TEST(InternetModel, NamedHeadOrgsExist) {
  const auto& m = model();
  for (const char* name : {"akamai", "google", "hetzner", "vkontakte",
                           "cloudflare", "ec2", "netflix", "cdn77", "nimbus",
                           "softlayer", "gianthost"}) {
    const auto org = m.org_by_name(name);
    ASSERT_TRUE(org) << name;
    EXPECT_TRUE(m.orgs()[*org].named_head) << name;
  }
  EXPECT_FALSE(m.org_by_name("does-not-exist").has_value());
}

TEST(InternetModel, AkamaiIsHeterogeneouslyDeployed) {
  const auto& m = model();
  const auto akamai = *m.org_by_name("akamai");
  std::unordered_set<std::uint32_t> ases;
  std::size_t blind = 0;
  for (const std::uint32_t s : m.org_servers(akamai)) {
    ases.insert(m.servers()[s].host_as);
    if (!m.servers()[s].visible()) ++blind;
  }
  EXPECT_GT(ases.size(), 3u);   // spread across third-party ASes
  EXPECT_GT(blind, 0u);         // private clusters / far regions exist
}

TEST(InternetModel, Cdn77HasNoAsn) {
  const auto& m = model();
  const auto cdn77 = *m.org_by_name("cdn77");
  EXPECT_FALSE(m.orgs()[cdn77].home_as.has_value());
  EXPECT_TRUE(m.orgs()[cdn77].publishes_server_ips);
  EXPECT_GT(m.orgs()[cdn77].server_count, 0u);
}

TEST(InternetModel, StableServersAreAlwaysActive) {
  const auto& m = model();
  int checked = 0;
  for (std::uint32_t s = 0; s < m.servers().size() && checked < 200; ++s) {
    if (m.servers()[s].activity.kind != ActivityKind::kStable) continue;
    ++checked;
    for (int w = m.config().first_week; w <= m.config().last_week; ++w)
      EXPECT_TRUE(m.server_active(s, w));
  }
  EXPECT_GT(checked, 0);
}

TEST(InternetModel, ArrivalsInactiveBeforeFirstWeek) {
  const auto& m = model();
  int checked = 0;
  for (std::uint32_t s = 0; s < m.servers().size() && checked < 200; ++s) {
    const auto& activity = m.servers()[s].activity;
    if (activity.kind != ActivityKind::kArrival) continue;
    ++checked;
    for (int w = m.config().first_week; w < activity.first_week; ++w)
      EXPECT_FALSE(m.server_active(s, w));
    EXPECT_TRUE(m.server_active(s, activity.first_week));
  }
  EXPECT_GT(checked, 0);
}

TEST(InternetModel, ActivityIsDeterministic) {
  const auto& m = model();
  for (std::uint32_t s = 0; s < std::min<std::size_t>(m.servers().size(), 500); ++s) {
    EXPECT_EQ(m.server_active(s, 42), m.server_active(s, 42));
  }
}

TEST(InternetModel, ClientAddrDeterministicAndRouted) {
  const auto& m = model();
  for (std::uint64_t k = 0; k < 200; ++k) {
    const auto a = m.client_addr(k);
    EXPECT_EQ(a, m.client_addr(k));
    EXPECT_TRUE(m.routing().origin_of(a).has_value());
  }
}

TEST(InternetModel, FetchChainsBehaviours) {
  const auto& m = model();
  bool saw_valid = false;
  bool saw_squatter = false;
  bool saw_unstable = false;
  for (std::uint32_t s = 0; s < m.servers().size(); ++s) {
    const ServerRecord& server = m.servers()[s];
    const auto chains = m.fetch_chains(server.addr, 3, 45);
    switch (server.tls) {
      case TlsBehavior::kNoResponse:
        EXPECT_TRUE(chains.empty());
        break;
      case TlsBehavior::kValidStable:
        ASSERT_EQ(chains.size(), 3u);
        EXPECT_EQ(chains[0], chains[1]);
        saw_valid = true;
        break;
      case TlsBehavior::kSquatter:
        ASSERT_EQ(chains.size(), 3u);
        EXPECT_TRUE(chains[0].empty());
        saw_squatter = true;
        break;
      case TlsBehavior::kUnstable:
        ASSERT_EQ(chains.size(), 3u);
        EXPECT_NE(chains[0].leaf().subject, chains[1].leaf().subject);
        saw_unstable = true;
        break;
      case TlsBehavior::kInvalidCert:
        ASSERT_EQ(chains.size(), 3u);
        break;
    }
  }
  EXPECT_TRUE(saw_valid);
  EXPECT_TRUE(saw_squatter);
  EXPECT_TRUE(saw_unstable);
  // Unknown IPs never answer.
  EXPECT_TRUE(m.fetch_chains(net::Ipv4Addr{250, 0, 0, 1}, 3, 45).empty());
}

TEST(InternetModel, PublishedServersCoverEc2Tenants) {
  const auto& m = model();
  const auto ec2 = *m.org_by_name("ec2");
  const auto published = m.published_servers(ec2);
  EXPECT_GT(published.size(), m.orgs()[ec2].server_count);  // tenants included
  // Netflix servers sit inside the published ranges.
  const auto netflix = *m.org_by_name("netflix");
  const auto& netflix_servers = m.org_servers(netflix);
  ASSERT_FALSE(netflix_servers.empty());
  std::unordered_set<net::Ipv4Addr> range;
  for (const auto& p : published) range.insert(p.addr);
  std::size_t inside = 0;
  for (const std::uint32_t s : netflix_servers)
    inside += range.count(m.servers()[s].addr);
  EXPECT_EQ(inside, netflix_servers.size());
}

TEST(InternetModel, UnpublishedOrgReturnsNothing) {
  const auto& m = model();
  const auto hetzner = *m.org_by_name("hetzner");
  EXPECT_TRUE(m.published_servers(hetzner).empty());
}

TEST(InternetModel, ResolveSitePrivateClusterScoping) {
  const auto& m = model();
  // Find a private-cluster server and resolve its org's site from inside
  // and outside the hosting AS.
  for (std::uint32_t s = 0; s < m.servers().size(); ++s) {
    const ServerRecord& server = m.servers()[s];
    if (server.blind != BlindReason::kPrivateCluster) continue;
    // Locate a site of the content org.
    std::optional<std::size_t> rank;
    for (std::size_t r = 0; r < m.sites().size(); ++r) {
      if (m.sites()[r].org == server.content_org) {
        rank = r;
        break;
      }
    }
    if (!rank) continue;
    dns::Resolver inside{net::Ipv4Addr{1, 2, 3, 4},
                         m.ases()[server.host_as].asn,
                         dns::ResolverBehavior::kOpen};
    dns::Resolver closed{net::Ipv4Addr{1, 2, 3, 4},
                         m.ases()[server.host_as].asn,
                         dns::ResolverBehavior::kClosed};
    const auto via_inside = m.resolve_site(*rank, inside, 45);
    EXPECT_TRUE(m.resolve_site(*rank, closed, 45).empty());
    // The inside resolver may return the private server; an unrelated
    // resolver must never return it unless it is in the same AS.
    (void)via_inside;
    return;  // one case suffices
  }
  GTEST_SKIP() << "no private-cluster server with a site at this scale";
}

TEST(InternetModel, ResellerGrowthDoubles) {
  const auto& m = model();
  // Count servers behind the reseller entry (reseller-customer hosted)
  // active in the first vs last week.
  std::size_t first = 0;
  std::size_t last = 0;
  for (std::uint32_t s = 0; s < m.servers().size(); ++s) {
    const ServerRecord& server = m.servers()[s];
    if (m.ases()[server.host_as].role != AsRole::kResellerCustomer) continue;
    if (m.server_active(s, m.config().first_week)) ++first;
    if (m.server_active(s, m.config().last_week)) ++last;
  }
  EXPECT_GT(first, 0u);
  EXPECT_GT(static_cast<double>(last), 1.5 * static_cast<double>(first));
}

TEST(InternetModel, SandyDipInWeek44) {
  const auto& m = model();
  const auto nimbus = *m.org_by_name("nimbus");
  std::size_t active_43 = 0;
  std::size_t active_44 = 0;
  for (const std::uint32_t s : m.org_servers(nimbus)) {
    const auto& dcs = m.orgs()[nimbus].data_centers;
    if (m.servers()[s].data_center < 0 ||
        dcs[static_cast<std::size_t>(m.servers()[s].data_center)].name !=
            "us-east")
      continue;
    if (m.server_active(s, 43)) ++active_43;
    if (m.server_active(s, 44)) ++active_44;
  }
  EXPECT_GT(active_43, 0u);
  EXPECT_LT(static_cast<double>(active_44), 0.3 * static_cast<double>(active_43));
}

TEST(InternetModel, NetflixExpansionLandsInWeeks49To51) {
  const auto& m = model();
  const auto netflix = *m.org_by_name("netflix");
  std::size_t before = 0;
  std::size_t after = 0;
  for (const std::uint32_t s : m.org_servers(netflix)) {
    if (m.server_active(s, 45)) ++before;
    if (m.server_active(s, 51)) ++after;
  }
  EXPECT_GT(after, before);
}

TEST(InternetModel, DeterministicConstruction) {
  const InternetModel a{ScaleConfig::test()};
  const InternetModel b{ScaleConfig::test()};
  ASSERT_EQ(a.servers().size(), b.servers().size());
  for (std::uint32_t s = 0; s < a.servers().size(); s += 17) {
    EXPECT_EQ(a.servers()[s].addr, b.servers()[s].addr);
    EXPECT_EQ(a.servers()[s].org, b.servers()[s].org);
  }
  ASSERT_EQ(a.sites().size(), b.sites().size());
  EXPECT_EQ(a.sites()[0].domain, b.sites()[0].domain);
}

}  // namespace
}  // namespace ixp::gen
