// ProbeEngine accounting (DESIGN.md §15): the exact counter identities on
// both execution paths — the lossless linear pass and the timer-wheel
// simulation — plus deadline cancellation and retry/backoff bookkeeping.
#include "probe/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace ixp::probe {
namespace {

/// Scripted protocol: every `dead_modulus`-th item never answers; the
/// rest run `exchanges` exchanges and complete. Outcomes are recorded so
/// two runs can be compared item by item.
class ScriptHandler final : public ProbeHandler {
 public:
  ScriptHandler(std::uint32_t exchanges, std::uint32_t dead_modulus)
      : exchanges_(exchanges), dead_modulus_(dead_modulus) {}

  [[nodiscard]] std::uint64_t item_key(std::uint32_t item) const override {
    return std::uint64_t{item} * 7919 + 17;
  }

  [[nodiscard]] bool dead(std::uint32_t item) const {
    return dead_modulus_ != 0 && item % dead_modulus_ == 0;
  }

  bool exchange_answers(std::uint32_t item, std::uint32_t) override {
    return !dead(item);
  }

  Step on_response(std::uint32_t, std::uint32_t exchange,
                   std::uint64_t) override {
    return exchange + 1 < exchanges_ ? Step::kNextExchange : Step::kDone;
  }

  Step on_timeout(std::uint32_t, std::uint32_t, std::uint64_t) override {
    return Step::kAbort;
  }

  void on_outcome(std::uint32_t item, Outcome outcome,
                  std::uint64_t) override {
    outcomes.push_back({item, outcome});
  }

  std::vector<std::pair<std::uint32_t, Outcome>> outcomes;

 private:
  std::uint32_t exchanges_;
  std::uint32_t dead_modulus_;
};

std::vector<std::pair<std::uint32_t, Outcome>> sorted(
    std::vector<std::pair<std::uint32_t, Outcome>> outcomes) {
  std::sort(outcomes.begin(), outcomes.end());
  return outcomes;
}

TEST(ProbeEngineTest, LosslessLinearPathExactCounters) {
  // 100 items, every 4th dead: 25 dead, 75 completing two exchanges.
  // Default RTT draws (max ~20ms) always beat the 250ms first-attempt
  // timeout, so live items respond on attempt 0 of every exchange.
  ScriptHandler handler{/*exchanges=*/2, /*dead_modulus=*/4};
  ProbeEngine engine{EngineConfig{}, NetModel{.seed = 42}};
  const EngineStats stats = engine.run(100, handler);

  EXPECT_EQ(stats.issued, 100u);
  EXPECT_EQ(stats.completed, 75u);
  EXPECT_EQ(stats.timed_out, 25u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.unissued, 0u);
  EXPECT_TRUE(stats.balanced());
  // Live: one answered attempt per exchange. Dead: the full attempt
  // budget on exchange 0.
  EXPECT_EQ(stats.attempts, 75u * 2 + 25u * 3);
  EXPECT_EQ(stats.retries, 25u * 2);
  EXPECT_EQ(stats.responses, 75u * 2);
  EXPECT_EQ(stats.losses, 0u);
  // The horizon is the dead items' exhausted backoff ladder:
  // 250ms + 500ms + 1000ms.
  EXPECT_EQ(stats.virtual_us, 1'750'000u);
  EXPECT_EQ(handler.outcomes.size(), 100u);
}

TEST(ProbeEngineTest, WheelPathMatchesLinearPath) {
  // A far-future deadline forces the wheel even though the model is
  // lossless; every counter except the tick-quantized clock must agree
  // with the linear pass, as must each item's outcome.
  ScriptHandler linear_handler{2, 4};
  ProbeEngine linear{EngineConfig{}, NetModel{.seed = 42}};
  const EngineStats linear_stats = linear.run(100, linear_handler);

  EngineConfig wheel_config;
  wheel_config.run_deadline_us = std::uint64_t{1} << 60;
  ScriptHandler wheel_handler{2, 4};
  ProbeEngine wheel{wheel_config, NetModel{.seed = 42}};
  const EngineStats wheel_stats = wheel.run(100, wheel_handler);

  EXPECT_EQ(wheel_stats.issued, linear_stats.issued);
  EXPECT_EQ(wheel_stats.completed, linear_stats.completed);
  EXPECT_EQ(wheel_stats.timed_out, linear_stats.timed_out);
  EXPECT_EQ(wheel_stats.cancelled, linear_stats.cancelled);
  EXPECT_EQ(wheel_stats.attempts, linear_stats.attempts);
  EXPECT_EQ(wheel_stats.retries, linear_stats.retries);
  EXPECT_EQ(wheel_stats.responses, linear_stats.responses);
  EXPECT_EQ(wheel_stats.losses, linear_stats.losses);
  EXPECT_EQ(sorted(wheel_handler.outcomes), sorted(linear_handler.outcomes));
}

TEST(ProbeEngineTest, TotalLossExhaustsEveryAttempt) {
  // loss_permille = 1000: every attempt is lost, so every item burns the
  // whole backoff ladder and times out through the wheel.
  NetModel model;
  model.seed = 7;
  model.loss_permille = 1000;
  ScriptHandler handler{1, 0};
  ProbeEngine engine{EngineConfig{}, model};
  const EngineStats stats = engine.run(50, handler);

  EXPECT_EQ(stats.issued, 50u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.timed_out, 50u);
  EXPECT_TRUE(stats.balanced());
  EXPECT_EQ(stats.attempts, 150u);
  EXPECT_EQ(stats.retries, 100u);
  EXPECT_EQ(stats.losses, 150u);
  EXPECT_EQ(stats.responses, 0u);
}

TEST(ProbeEngineTest, DeadlineCancelsInFlightAndCountsUnissued) {
  // With everything lost and a deadline inside the first retry window,
  // the 8 items the concurrency cap admitted are cancelled and the other
  // 92 are never issued; the balance identity holds over the issued set.
  NetModel model;
  model.seed = 11;
  model.loss_permille = 1000;
  EngineConfig config;
  config.max_in_flight = 8;
  config.run_deadline_us = 300'000;
  ScriptHandler handler{1, 0};
  ProbeEngine engine{config, model};
  const EngineStats stats = engine.run(100, handler);

  EXPECT_EQ(stats.issued, 8u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.timed_out, 0u);
  EXPECT_EQ(stats.cancelled, 8u);
  EXPECT_EQ(stats.unissued, 92u);
  EXPECT_TRUE(stats.balanced());
  EXPECT_EQ(stats.issued + stats.unissued, 100u);
  EXPECT_EQ(stats.responses, 0u);
  EXPECT_EQ(stats.losses, stats.attempts);
  EXPECT_GE(stats.virtual_us, config.run_deadline_us);
  EXPECT_EQ(handler.outcomes.size(), 8u);
  for (const auto& [item, outcome] : handler.outcomes)
    EXPECT_EQ(outcome, Outcome::kCancelled) << "item " << item;
}

TEST(ProbeEngineTest, ConcurrencyCapNeverChangesOutcomesOrCounters) {
  // Under partial loss the wheel interleaves items differently for every
  // cap, but each attempt's fate is a pure per-item draw: outcomes and
  // all counters except the (cap-dependent) virtual clock must agree.
  NetModel model;
  model.seed = 1234;
  model.loss_permille = 137;
  std::vector<EngineStats> stats;
  std::vector<std::vector<std::pair<std::uint32_t, Outcome>>> outcomes;
  for (const std::uint32_t cap : {1u, 3u, 4096u}) {
    EngineConfig config;
    config.max_in_flight = cap;
    ScriptHandler handler{2, 5};
    ProbeEngine engine{config, model};
    stats.push_back(engine.run(300, handler));
    outcomes.push_back(sorted(std::move(handler.outcomes)));
    EXPECT_TRUE(stats.back().balanced());
  }
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].issued, stats[0].issued);
    EXPECT_EQ(stats[i].completed, stats[0].completed);
    EXPECT_EQ(stats[i].timed_out, stats[0].timed_out);
    EXPECT_EQ(stats[i].attempts, stats[0].attempts);
    EXPECT_EQ(stats[i].retries, stats[0].retries);
    EXPECT_EQ(stats[i].responses, stats[0].responses);
    EXPECT_EQ(stats[i].losses, stats[0].losses);
    EXPECT_EQ(outcomes[i], outcomes[0]);
  }
}

TEST(ProbeEngineTest, StatsMergeSumsCountersAndMaxesClock) {
  EngineStats a;
  a.issued = 3;
  a.completed = 2;
  a.timed_out = 1;
  a.attempts = 9;
  a.virtual_us = 500;
  EngineStats b;
  b.issued = 4;
  b.completed = 4;
  b.attempts = 5;
  b.virtual_us = 200;
  a.merge(b);
  EXPECT_EQ(a.issued, 7u);
  EXPECT_EQ(a.completed, 6u);
  EXPECT_EQ(a.timed_out, 1u);
  EXPECT_EQ(a.attempts, 14u);
  EXPECT_EQ(a.virtual_us, 500u);
  EXPECT_TRUE(a.balanced());
}

}  // namespace
}  // namespace ixp::probe
