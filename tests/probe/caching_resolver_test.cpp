// CachingResolver (DESIGN.md §15): TTL expiry on the positive and
// negative paths, LRU eviction at capacity, zone-level SOA caching, and
// the transparency invariant — cached answers are exactly what the
// ZoneDatabase returns, with every hit/miss/eviction counted exactly.
#include "probe/caching_resolver.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "dns/name.hpp"
#include "dns/zone_db.hpp"
#include "net/ipv4.hpp"

namespace ixp::probe {
namespace {

dns::DnsName name(const char* text) { return *dns::DnsName::parse(text); }

class CachingResolverTest : public ::testing::Test {
 protected:
  CachingResolverTest() {
    db_.add_a(name("www.example.com"), net::Ipv4Addr{192, 0, 2, 10});
    db_.add_soa(name("org5.probe-bench.com"), name("ns.org5.probe-bench.com"));
    db_.add_ptr(net::Ipv4Addr{10, 0, 0, 1},
                name("h1.dc0.org5.probe-bench.com"));
    db_.add_reverse_soa(net::Ipv4Addr{10, 0, 0, 2},
                        name("rir-free.example.net"));
  }

  dns::ZoneDatabase db_;
};

TEST_F(CachingResolverTest, PositiveTtlServesThenExpires) {
  CachingResolver::Options options;
  options.positive_ttl_us = 1'000;
  CachingResolver resolver{db_, options};
  const dns::DnsName query = name("www.example.com");

  EXPECT_EQ(resolver.resolve(query, 0), db_.resolve(query));
  EXPECT_EQ(resolver.stats().misses, 1u);
  EXPECT_EQ(resolver.stats().insertions, 1u);

  EXPECT_EQ(resolver.resolve(query, 999), db_.resolve(query));
  EXPECT_EQ(resolver.stats().hits, 1u);
  EXPECT_EQ(resolver.stats().expired, 0u);

  // The entry expires at exactly insert-time + TTL; the re-query is an
  // authoritative miss that reinstalls it.
  EXPECT_EQ(resolver.resolve(query, 1'000), db_.resolve(query));
  EXPECT_EQ(resolver.stats().expired, 1u);
  EXPECT_EQ(resolver.stats().misses, 2u);
  EXPECT_EQ(resolver.stats().insertions, 2u);
  EXPECT_EQ(resolver.stats().hits, 1u);
}

TEST_F(CachingResolverTest, NegativeAnswersAreCachedWithTheirOwnTtl) {
  CachingResolver::Options options;
  options.negative_ttl_us = 500;
  CachingResolver resolver{db_, options};
  const dns::DnsName query = name("nx.example.com");

  EXPECT_TRUE(resolver.resolve(query, 0).empty());
  EXPECT_EQ(resolver.stats().misses, 1u);

  EXPECT_TRUE(resolver.resolve(query, 499).empty());
  EXPECT_EQ(resolver.stats().negative_hits, 1u);
  EXPECT_EQ(resolver.stats().misses, 1u);

  EXPECT_TRUE(resolver.resolve(query, 500).empty());
  EXPECT_EQ(resolver.stats().expired, 1u);
  EXPECT_EQ(resolver.stats().negative_hits, 1u);
  EXPECT_EQ(resolver.stats().misses, 2u);
}

TEST_F(CachingResolverTest, LruEvictsColdestEntryAtCapacity) {
  db_.add_a(name("a.example.com"), net::Ipv4Addr{192, 0, 2, 1});
  db_.add_a(name("b.example.com"), net::Ipv4Addr{192, 0, 2, 2});
  db_.add_a(name("c.example.com"), net::Ipv4Addr{192, 0, 2, 3});
  CachingResolver::Options options;
  options.capacity = 2;
  CachingResolver resolver{db_, options};

  (void)resolver.resolve(name("a.example.com"), 0);  // miss, install a
  (void)resolver.resolve(name("b.example.com"), 0);  // miss, install b
  (void)resolver.resolve(name("a.example.com"), 0);  // hit, touch a to MRU
  (void)resolver.resolve(name("c.example.com"), 0);  // miss, evicts b
  EXPECT_EQ(resolver.stats().evictions, 1u);

  (void)resolver.resolve(name("b.example.com"), 0);  // evicted: miss again
  EXPECT_EQ(resolver.stats().misses, 4u);
  (void)resolver.resolve(name("a.example.com"), 0);  // survived the sweep?
  // a was evicted by b's reinstall (c was MRU): the LRU order is what
  // decides, not insertion order.
  EXPECT_EQ(resolver.stats().hits, 1u);
  EXPECT_EQ(resolver.stats().misses, 5u);
  EXPECT_EQ(resolver.stats().evictions, 3u);
}

TEST_F(CachingResolverTest, SoaWalkCachesZonesNotLeafNames) {
  CachingResolver resolver{db_};
  const auto first = resolver.soa_of(name("h1.dc0.org5.probe-bench.com"), 0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->zone, name("org5.probe-bench.com"));
  EXPECT_EQ(first->authority, name("ns.org5.probe-bench.com"));
  EXPECT_EQ(resolver.stats().misses, 1u);
  // The walk probed host, dc and org levels; only the two proper
  // suffixes are backfilled — the per-host leaf name would never be read
  // again in a sweep over distinct hostnames.
  EXPECT_EQ(resolver.stats().insertions, 2u);

  // A sibling under the same data center shares the cached suffix.
  const auto sibling = resolver.soa_of(name("h2.dc0.org5.probe-bench.com"), 0);
  ASSERT_TRUE(sibling.has_value());
  EXPECT_EQ(*sibling, *first);
  EXPECT_EQ(resolver.stats().hits, 1u);
  EXPECT_EQ(resolver.stats().insertions, 2u);

  // An exact repeat answers from the zone level too: no leaf entry was
  // ever written, yet the query still counts as a hit.
  const auto repeat = resolver.soa_of(name("h1.dc0.org5.probe-bench.com"), 0);
  ASSERT_TRUE(repeat.has_value());
  EXPECT_EQ(*repeat, *first);
  EXPECT_EQ(resolver.stats().hits, 2u);
  EXPECT_EQ(resolver.stats().insertions, 2u);

  // Names under no zone cache a negative answer at the parent levels.
  EXPECT_FALSE(resolver.soa_of(name("h.nowhere.test"), 0).has_value());
  EXPECT_EQ(resolver.stats().misses, 2u);
  EXPECT_FALSE(resolver.soa_of(name("g.nowhere.test"), 0).has_value());
  EXPECT_EQ(resolver.stats().negative_hits, 1u);
}

TEST_F(CachingResolverTest, ReverseAndReverseSoaMatchZoneDatabase) {
  CachingResolver resolver{db_};
  const net::Ipv4Addr with_ptr{10, 0, 0, 1};
  const net::Ipv4Addr with_rsoa{10, 0, 0, 2};
  const net::Ipv4Addr absent{10, 0, 0, 3};

  EXPECT_EQ(resolver.reverse(with_ptr, 0), db_.reverse(with_ptr));
  EXPECT_EQ(resolver.reverse(absent, 0), std::nullopt);
  EXPECT_EQ(resolver.reverse_soa(with_ptr, 0), db_.reverse_soa(with_ptr));
  EXPECT_EQ(resolver.reverse_soa(with_rsoa, 0), db_.reverse_soa(with_rsoa));
  EXPECT_EQ(resolver.reverse_soa(absent, 0), db_.reverse_soa(absent));

  // Second round: every answer now comes from cache, and is still
  // exactly the authoritative one.
  const CacheStats before = resolver.stats();
  EXPECT_EQ(resolver.reverse(with_ptr, 0), db_.reverse(with_ptr));
  EXPECT_EQ(resolver.reverse_soa(with_rsoa, 0), db_.reverse_soa(with_rsoa));
  EXPECT_EQ(resolver.stats().misses, before.misses);
  EXPECT_EQ(resolver.stats().hits, before.hits + 2);
}

TEST_F(CachingResolverTest, HitRateIsExact) {
  CachingResolver resolver{db_};
  const dns::DnsName query = name("www.example.com");
  (void)resolver.resolve(query, 0);  // miss
  (void)resolver.resolve(query, 1);  // hit
  (void)resolver.resolve(query, 2);  // hit
  (void)resolver.resolve(query, 3);  // hit
  EXPECT_DOUBLE_EQ(resolver.stats().hit_rate(), 0.75);
}

}  // namespace
}  // namespace ixp::probe
