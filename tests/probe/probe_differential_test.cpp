// Randomized differential suite (DESIGN.md §15): the engine-backed
// sweeps against the synchronous oracles they replaced, over randomized
// populations of dead/valid/invalid/squatting/unstable/vanishing targets
// and open/closed/delegating/lying resolvers.
//
// Lossless configurations must be byte-identical to the real synchronous
// code (usable_resolvers, HttpsProber::probe, a MetadataHarvester loop).
// Lossy configurations are compared against an oracle that replays the
// same pure NetModel draws — and must additionally be identical for every
// concurrency cap, chunk size, and thread count, which is the engine's
// determinism contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "classify/https_prober.hpp"
#include "classify/metadata.hpp"
#include "dns/name.hpp"
#include "dns/public_suffix.hpp"
#include "dns/resolver.hpp"
#include "dns/zone_db.hpp"
#include "net/ipv4.hpp"
#include "probe/metadata_pass.hpp"
#include "probe/sweeps.hpp"
#include "util/rng.hpp"
#include "x509/certificate.hpp"
#include "x509/validator.hpp"

namespace ixp::probe {
namespace {

constexpr std::uint32_t kCandidates = 3'000;
constexpr std::uint32_t kResolvers = 600;
constexpr std::uint32_t kOrgs = 16;
constexpr std::uint32_t kBase = 0x0a000000u;
constexpr int kFetches = 3;

enum class Role : std::uint8_t {
  kDead,      // nothing listens
  kValid,     // stable, trusted chain
  kInvalid,   // stable, untrusted chain
  kSquatter,  // listens but serves no certificate
  kUnstable,  // flips its chain mid-sweep
  kVanisher,  // answers the liveness probe, then disappears
};

dns::DnsName name(const std::string& text) {
  return *dns::DnsName::parse(text);
}

x509::Certificate make_leaf(std::uint32_t org, bool trusted) {
  x509::Certificate leaf;
  const std::string domain = "org" + std::to_string(org) + ".diff-test.com";
  leaf.subject = name("www." + domain);
  leaf.alt_names.push_back(name(domain));
  leaf.key_usages = {x509::KeyUsage::kServerAuth};
  leaf.subject_key = (trusted ? "leaf-" : "rogue-") + std::to_string(org);
  leaf.issuer_key = trusted ? "root" : "nobody";
  leaf.not_before = 0;
  leaf.not_after = 1'000'000;
  return leaf;
}

/// One randomized population. Everything both sides consult — chains,
/// zones, Host headers, resolver behaviours — is a pure function of the
/// seed, so the sync oracle and the engine see the same world.
struct Fixture {
  x509::RootStore roots;
  dns::PublicSuffixList psl = dns::PublicSuffixList::builtin();
  dns::ZoneDatabase db;
  dns::DnsName probe_name = name("probe.diff-test.com");
  dns::ResolverPopulation pop;

  std::vector<net::Ipv4Addr> candidates;
  std::vector<Role> roles;
  std::vector<x509::CertificateChain> valid_chains;
  std::vector<x509::CertificateChain> rogue_chains;
  x509::CertificateChain squat_chain;
  std::vector<std::vector<std::string>> hosts;  // per candidate

  explicit Fixture(std::uint64_t seed) {
    util::Rng rng{seed};
    roots.trust("root");
    db.add_a(probe_name, net::Ipv4Addr{192, 0, 2, 1});

    for (std::uint32_t k = 0; k < kOrgs; ++k) {
      valid_chains.push_back(x509::CertificateChain{{make_leaf(k, true)}});
      rogue_chains.push_back(x509::CertificateChain{{make_leaf(k, false)}});
      const dns::DnsName zone =
          name("org" + std::to_string(k) + ".diff-test.com");
      db.add_soa(zone, name("ns." + zone.text()));
    }

    // Host-header pool with deliberately dirty entries: IP literals and
    // single labels must be cleaned out, duplicates deduplicated.
    std::vector<std::string> pool;
    for (int h = 0; h < 20; ++h)
      pool.push_back("site" + std::to_string(h) + ".diff-test.com");
    pool.push_back("192.168.0.1");
    pool.push_back("localhost");
    pool.push_back("internal.invalid-tld-zzz");

    candidates.reserve(kCandidates);
    roles.reserve(kCandidates);
    hosts.resize(kCandidates);
    for (std::uint32_t i = 0; i < kCandidates; ++i) {
      const net::Ipv4Addr addr{kBase + i};
      candidates.push_back(addr);
      const std::uint64_t r = rng.next_below(100);
      const Role role = r < 45   ? Role::kDead
                        : r < 65 ? Role::kValid
                        : r < 75 ? Role::kInvalid
                        : r < 85 ? Role::kSquatter
                        : r < 93 ? Role::kUnstable
                                 : Role::kVanisher;
      roles.push_back(role);

      // §2.4 DNS records, with awkward corners on purpose: PTR names
      // whose SOA walk finds nothing, reverse-SOA-only addresses, and
      // RIR authorities that the cleaning pass must drop.
      const std::uint32_t org = i % kOrgs;
      const std::uint64_t d = rng.next_below(10);
      if (d < 4) {
        db.add_ptr(addr, name("v" + std::to_string(i) + ".org" +
                              std::to_string(org) + ".diff-test.com"));
      } else if (d < 5) {
        db.add_ptr(addr, name("x" + std::to_string(i) + ".unzoned.test"));
      } else if (d < 7) {
        db.add_reverse_soa(
            addr, name("org" + std::to_string(org) + ".diff-test.com"));
      } else if (d == 7) {
        db.add_reverse_soa(addr, name("ripe.net"));
      }

      const std::uint64_t samples = rng.next_below(5);
      for (std::uint64_t s = 0; s < samples; ++s)
        hosts[i].push_back(pool[rng.next_below(pool.size())]);
    }

    for (std::uint32_t i = 0; i < kResolvers; ++i) {
      dns::Resolver r;
      r.address = net::Ipv4Addr{0x0b000000u + i};
      r.asn = net::Asn{1 + static_cast<std::uint32_t>(rng.next_below(40))};
      const std::uint64_t b = rng.next_below(100);
      r.behavior = b < 25   ? dns::ResolverBehavior::kOpen
                   : b < 70 ? dns::ResolverBehavior::kClosed
                   : b < 88 ? dns::ResolverBehavior::kDelegating
                            : dns::ResolverBehavior::kLying;
      pop.add(r);
    }
  }

  [[nodiscard]] const x509::CertificateChain* chain_for(net::Ipv4Addr addr,
                                                        int f) const {
    const std::uint32_t i = addr.value() - kBase;
    const std::uint32_t org = i % kOrgs;
    switch (roles[i]) {
      case Role::kDead: return nullptr;
      case Role::kValid: return &valid_chains[org];
      case Role::kInvalid: return &rogue_chains[org];
      case Role::kSquatter: return &squat_chain;
      case Role::kUnstable:
        return f == 0 ? &valid_chains[org] : &rogue_chains[org];
      case Role::kVanisher: return f == 0 ? &valid_chains[org] : nullptr;
    }
    return nullptr;
  }

  /// The legacy copying fetcher, shared by the sync prober and the
  /// engine's fetcher mode.
  [[nodiscard]] classify::ChainFetcher fetcher() const {
    return [this](net::Ipv4Addr addr,
                  int times) -> std::vector<x509::CertificateChain> {
      std::vector<x509::CertificateChain> fetched;
      for (int f = 0; f < times; ++f) {
        const x509::CertificateChain* chain = chain_for(addr, f);
        if (chain == nullptr) return {};
        fetched.push_back(*chain);
      }
      return fetched;
    };
  }

  /// The zero-copy source for HttpsSweep::run. All pointers alias
  /// fixture-owned, run-stable storage, as the ChainSource contract asks.
  [[nodiscard]] HttpsSweep::ChainSource source() const {
    return [this](net::Ipv4Addr addr, int f,
                  x509::CertificateChain&) -> const x509::CertificateChain* {
      return chain_for(addr, f);
    };
  }
};

/// Replays the wheel's per-attempt fate: an exchange gets a response iff
/// some attempt's draw is neither lost nor slower than its backoff slot.
bool responds(const NetModel& model, const EngineConfig& config,
              std::uint64_t key, std::uint32_t exchange) {
  for (std::uint32_t a = 0; a < config.max_attempts; ++a) {
    const NetModel::Draw draw = model.draw(key, exchange, a);
    if (!draw.lost &&
        draw.rtt_us < (std::uint64_t{config.timeout_us} << a))
      return true;
  }
  return false;
}

/// Draw-replaying oracle for the §2.3 filter.
std::vector<dns::Resolver> resolver_oracle(const Fixture& fx,
                                           const NetModel& model,
                                           const EngineConfig& config) {
  std::vector<dns::Resolver> usable;
  for (const dns::Resolver& r : fx.pop.all()) {
    if (r.behavior == dns::ResolverBehavior::kClosed) continue;
    if (!responds(model, config, r.address.value(), 0)) continue;
    const dns::ProbeResult probe =
        dns::ResolverPopulation::probe(r, fx.db, fx.probe_name);
    if (probe.answered && probe.answer_correct && !probe.delegated)
      usable.push_back(r);
  }
  return usable;
}

struct HttpsOracleResult {
  std::vector<net::Ipv4Addr> confirmed;
  classify::ProbeFunnel funnel;
};

/// Draw-replaying oracle for the source-mode sweep: one exchange per
/// fetch, aborting on the first dead or all-lost exchange.
HttpsOracleResult https_source_oracle(const Fixture& fx,
                                      const NetModel& model,
                                      const EngineConfig& config) {
  HttpsOracleResult result;
  result.funnel.candidates = fx.candidates.size();
  const x509::ChainValidator validator{fx.roots, fx.psl};
  std::vector<x509::Timestamp> times;
  for (int f = 0; f < kFetches; ++f)
    times.push_back(static_cast<x509::Timestamp>(100 + 50 * f));
  for (const net::Ipv4Addr addr : fx.candidates) {
    std::vector<const x509::CertificateChain*> got;
    bool aborted = false;
    for (int f = 0; f < kFetches; ++f) {
      const x509::CertificateChain* chain = fx.chain_for(addr, f);
      const bool answered =
          chain != nullptr &&
          responds(model, config, addr.value(), static_cast<std::uint32_t>(f));
      if (!answered) {
        if (f == 0) ++result.funnel.early_exits;
        aborted = true;
        break;
      }
      got.push_back(chain);
    }
    if (aborted) continue;
    ++result.funnel.responded;
    if (validator.validate_stable(got, times).ok) {
      ++result.funnel.confirmed;
      result.confirmed.push_back(addr);
    }
  }
  return result;
}

/// Draw-replaying oracle for the fetcher-mode sweep (liveness exchange,
/// then the full refetched sweep), mirroring HttpsProber::probe.
HttpsOracleResult https_fetcher_oracle(const Fixture& fx,
                                       const NetModel& model,
                                       const EngineConfig& config) {
  HttpsOracleResult result;
  result.funnel.candidates = fx.candidates.size();
  const x509::ChainValidator validator{fx.roots, fx.psl};
  const classify::ChainFetcher fetch = fx.fetcher();
  std::vector<x509::Timestamp> times;
  for (int f = 0; f < kFetches; ++f)
    times.push_back(static_cast<x509::Timestamp>(100 + 50 * f));
  for (const net::Ipv4Addr addr : fx.candidates) {
    if (fetch(addr, 1).empty() ||
        !responds(model, config, addr.value(), 0)) {
      ++result.funnel.early_exits;
      continue;
    }
    const std::vector<x509::CertificateChain> full = fetch(addr, kFetches);
    if (full.empty()) continue;  // vanished mid-probe: silently dropped
    if (!responds(model, config, addr.value(), 1)) continue;
    ++result.funnel.responded;
    if (validator.validate_stable(full, times).ok) {
      ++result.funnel.confirmed;
      result.confirmed.push_back(addr);
    }
  }
  return result;
}

void expect_funnels_equal(const classify::ProbeFunnel& got,
                          const classify::ProbeFunnel& want) {
  EXPECT_EQ(got.candidates, want.candidates);
  EXPECT_EQ(got.responded, want.responded);
  EXPECT_EQ(got.confirmed, want.confirmed);
  EXPECT_EQ(got.early_exits, want.early_exits);
}

void expect_resolvers_equal(const std::vector<dns::Resolver>& got,
                            const std::vector<dns::Resolver>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].address, want[i].address) << "resolver " << i;
    EXPECT_EQ(got[i].asn, want[i].asn) << "resolver " << i;
    EXPECT_EQ(got[i].behavior, want[i].behavior) << "resolver " << i;
  }
}

void expect_metadata_equal(const classify::ServerMetadata& got,
                           const classify::ServerMetadata& want,
                           std::size_t item) {
  EXPECT_EQ(got.addr, want.addr) << "item " << item;
  EXPECT_EQ(got.hostname, want.hostname) << "item " << item;
  EXPECT_EQ(got.soa_authority, want.soa_authority) << "item " << item;
  EXPECT_EQ(got.uris, want.uris) << "item " << item;
  EXPECT_EQ(got.cert_names, want.cert_names) << "item " << item;
}

/// Items for the §2.4 pass: every live candidate, with the chain pointer
/// only for servers the crawl confirmed — like production, where the
/// pass runs over all server observations.
std::vector<MetadataItem> metadata_items(
    const Fixture& fx, const std::vector<net::Ipv4Addr>& confirmed) {
  std::vector<MetadataItem> items;
  std::size_t next_confirmed = 0;
  for (std::uint32_t i = 0; i < kCandidates; ++i) {
    if (fx.roles[i] == Role::kDead) continue;
    MetadataItem item;
    item.addr = fx.candidates[i];
    item.hosts = fx.hosts[i];
    if (next_confirmed < confirmed.size() &&
        confirmed[next_confirmed] == fx.candidates[i]) {
      item.chain = fx.chain_for(fx.candidates[i], 0);
      ++next_confirmed;
    }
    items.push_back(item);
  }
  return items;
}

/// Draw-replaying oracle for one metadata item: the local half always
/// happens (on_outcome), the PTR needs exchange 0, the authority needs
/// exchange 1 — and degrades to the exact-record fallback when the PTR
/// was lost.
classify::ServerMetadata metadata_oracle(const Fixture& fx,
                                         const NetModel& model,
                                         const EngineConfig& config,
                                         const MetadataItem& item) {
  const classify::MetadataHarvester harvester{fx.db, fx.psl};
  const classify::ServerMetadata full =
      harvester.harvest(item.addr, item.hosts, item.chain);
  classify::ServerMetadata expect;
  expect.addr = item.addr;
  expect.uris = full.uris;
  expect.cert_names = full.cert_names;
  if (responds(model, config, item.addr.value(), 0))
    expect.hostname = fx.db.reverse(item.addr);
  if (responds(model, config, item.addr.value(), 1)) {
    if (expect.hostname) {
      if (const auto soa = fx.db.soa_of(*expect.hostname))
        expect.soa_authority = soa->authority;
    }
    if (!expect.soa_authority) {
      if (const dns::DnsName* authority = fx.db.reverse_soa_at(item.addr))
        expect.soa_authority = *authority;
    }
    if (expect.soa_authority &&
        classify::MetadataHarvester::is_rir_authority(*expect.soa_authority))
      expect.soa_authority.reset();
  }
  return expect;
}

TEST(ProbeDifferentialTest, LosslessMatchesSynchronousCodeByteForByte) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Fixture fx{seed};
    NetModel model;
    model.seed = seed * 977;

    // §2.3: the real synchronous filter is the oracle.
    const std::vector<dns::Resolver> sync_usable =
        fx.pop.usable_resolvers(fx.db, fx.probe_name);
    const ResolverSweepResult swept =
        ResolverSweep{EngineConfig{}, model}.run(fx.pop.all(), fx.db,
                                                 fx.probe_name);
    expect_resolvers_equal(swept.usable, sync_usable);
    EXPECT_TRUE(swept.engine.balanced());
    EXPECT_EQ(swept.engine.issued, kResolvers);

    // Exact cache accounting: one authoritative resolution of the probe
    // name; every other responding resolver hits.
    std::uint64_t queries = 0;
    for (const dns::Resolver& r : fx.pop.all()) {
      if (r.behavior == dns::ResolverBehavior::kOpen ||
          r.behavior == dns::ResolverBehavior::kDelegating)
        ++queries;
    }
    EXPECT_EQ(swept.cache.misses, 1u);
    EXPECT_EQ(swept.cache.hits, queries - 1);
    EXPECT_DOUBLE_EQ(swept.cache.hit_rate(),
                     static_cast<double>(queries - 1) /
                         static_cast<double>(queries));

    // §2.2.2: the real synchronous prober is the oracle for both modes.
    const classify::HttpsProber prober{fx.roots, fx.psl, kFetches};
    classify::ProbeFunnel sync_funnel;
    const std::vector<net::Ipv4Addr> sync_confirmed =
        prober.probe(fx.candidates, fx.fetcher(), sync_funnel);

    HttpsSweep source_sweep{fx.roots, fx.psl, kFetches, EngineConfig{},
                            model};
    const HttpsSweepResult via_source =
        source_sweep.run(fx.candidates, fx.source());
    EXPECT_EQ(via_source.confirmed, sync_confirmed);
    expect_funnels_equal(via_source.funnel, sync_funnel);
    EXPECT_TRUE(via_source.engine.balanced());

    HttpsSweep fetcher_sweep{fx.roots, fx.psl, kFetches, EngineConfig{},
                             model};
    const HttpsSweepResult via_fetcher =
        fetcher_sweep.run_with_fetcher(fx.candidates, fx.fetcher());
    EXPECT_EQ(via_fetcher.confirmed, sync_confirmed);
    expect_funnels_equal(via_fetcher.funnel, sync_funnel);

    // §2.4: a synchronous MetadataHarvester loop is the oracle; chunk
    // size and thread count must not leak into the output.
    const std::vector<MetadataItem> items = metadata_items(fx, sync_confirmed);
    const classify::MetadataHarvester harvester{fx.db, fx.psl};
    const std::pair<std::size_t, unsigned> layouts[] = {
        {64, 1}, {97, 3}, {100'000, 1}};
    for (const auto& [chunk, threads] : layouts) {
      SCOPED_TRACE("chunk " + std::to_string(chunk) + " threads " +
                   std::to_string(threads));
      MetadataPass::Options options;
      options.chunk = chunk;
      options.threads = threads;
      options.net = model;
      const MetadataPassResult result =
          MetadataPass{fx.db, fx.psl, options}.run(items);
      ASSERT_EQ(result.metadata.size(), items.size());
      EXPECT_TRUE(result.shard.engine.balanced());
      EXPECT_EQ(result.shard.engine.issued, items.size());
      EXPECT_EQ(result.shard.coverage.servers, items.size());
      for (std::size_t i = 0; i < items.size(); ++i) {
        const classify::ServerMetadata want =
            harvester.harvest(items[i].addr, items[i].hosts, items[i].chain);
        expect_metadata_equal(result.metadata[i], want, i);
      }
    }
  }
}

TEST(ProbeDifferentialTest, LossyMatchesDrawOracleForAnyConcurrency) {
  for (const std::uint64_t seed : {4ull, 5ull}) {
    for (const std::uint32_t loss : {50u, 200u}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " loss " +
                   std::to_string(loss));
      const Fixture fx{seed};
      NetModel model;
      model.seed = seed * 1299709;
      model.loss_permille = loss;
      const EngineConfig defaults;

      const std::vector<dns::Resolver> resolver_want =
          resolver_oracle(fx, model, defaults);
      const HttpsOracleResult source_want =
          https_source_oracle(fx, model, defaults);
      const HttpsOracleResult fetcher_want =
          https_fetcher_oracle(fx, model, defaults);

      for (const std::uint32_t cap : {1u, 64u, 4096u}) {
        SCOPED_TRACE("cap " + std::to_string(cap));
        EngineConfig config;
        config.max_in_flight = cap;

        const ResolverSweepResult swept =
            ResolverSweep{config, model}.run(fx.pop.all(), fx.db,
                                             fx.probe_name);
        expect_resolvers_equal(swept.usable, resolver_want);
        EXPECT_TRUE(swept.engine.balanced());

        HttpsSweep source_sweep{fx.roots, fx.psl, kFetches, config, model};
        const HttpsSweepResult via_source =
            source_sweep.run(fx.candidates, fx.source());
        EXPECT_EQ(via_source.confirmed, source_want.confirmed);
        expect_funnels_equal(via_source.funnel, source_want.funnel);
        EXPECT_TRUE(via_source.engine.balanced());

        HttpsSweep fetcher_sweep{fx.roots, fx.psl, kFetches, config, model};
        const HttpsSweepResult via_fetcher =
            fetcher_sweep.run_with_fetcher(fx.candidates, fx.fetcher());
        EXPECT_EQ(via_fetcher.confirmed, fetcher_want.confirmed);
        expect_funnels_equal(via_fetcher.funnel, fetcher_want.funnel);
      }

      // §2.4 under loss: same oracle for every chunk/thread layout.
      const std::vector<MetadataItem> items =
          metadata_items(fx, source_want.confirmed);
      const std::pair<std::size_t, unsigned> layouts[] = {
          {64, 1}, {97, 3}, {100'000, 1}};
      for (const auto& [chunk, threads] : layouts) {
        SCOPED_TRACE("chunk " + std::to_string(chunk) + " threads " +
                     std::to_string(threads));
        MetadataPass::Options options;
        options.chunk = chunk;
        options.threads = threads;
        options.net = model;
        const MetadataPassResult result =
            MetadataPass{fx.db, fx.psl, options}.run(items);
        ASSERT_EQ(result.metadata.size(), items.size());
        EXPECT_TRUE(result.shard.engine.balanced());
        for (std::size_t i = 0; i < items.size(); ++i) {
          expect_metadata_equal(
              result.metadata[i],
              metadata_oracle(fx, model, options.engine, items[i]), i);
        }
      }
    }
  }
}

}  // namespace
}  // namespace ixp::probe
