#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ixp::util {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table table{"Demo"};
  table.header({"name", "count"});
  table.row({"alpha", "1"});
  table.row({"beta", "22"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  Table table;
  table.header({"a", "b"});
  table.row({"xxxx", "y"});
  std::ostringstream os;
  table.print(os);
  // Both rows have the same length since columns are padded.
  std::istringstream lines{os.str()};
  std::string header_line;
  std::string rule;
  std::string row_line;
  std::getline(lines, header_line);
  std::getline(lines, rule);
  std::getline(lines, row_line);
  EXPECT_EQ(header_line.size(), row_line.size());
}

TEST(Table, ToleratesRaggedRows) {
  Table table;
  table.header({"a", "b", "c"});
  table.row({"only-one"});
  std::ostringstream os;
  table.print(os);  // must not throw or crash
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(Table, NoHeaderMeansNoRule) {
  Table table;
  table.row({"x"});
  std::ostringstream os;
  table.print(os);
  EXPECT_EQ(os.str().find("---"), std::string::npos);
}

TEST(PrintBanner, ContainsText) {
  std::ostringstream os;
  print_banner(os, "Section 5");
  EXPECT_NE(os.str().find("Section 5"), std::string::npos);
}

}  // namespace
}  // namespace ixp::util
