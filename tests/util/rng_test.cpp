#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace ixp::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowZeroBoundIsZero) {
  Rng rng{7};
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng{7};
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng{123};
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBound> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBound)];
  // Each bucket expects kDraws/kBound = 10000; allow 5% deviation.
  for (const int c : counts) {
    EXPECT_GT(c, 9500);
    EXPECT_LT(c, 10500);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng{5};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next_in(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{9};
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng{11};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
    EXPECT_FALSE(rng.next_bool(-0.5));
    EXPECT_TRUE(rng.next_bool(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng{13};
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

class BinomialParamTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, double>> {};

TEST_P(BinomialParamTest, MeanAndBoundsHold) {
  const auto [n, p] = GetParam();
  Rng rng{17};
  double sum = 0.0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t v = rng.next_binomial(n, p);
    EXPECT_LE(v, n);
    sum += static_cast<double>(v);
  }
  const double mean = sum / kDraws;
  const double expected = static_cast<double>(n) * p;
  const double sigma = std::sqrt(expected * (1.0 - p));
  // Sample mean should be within ~5 standard errors.
  EXPECT_NEAR(mean, expected, 5.0 * sigma / std::sqrt(double(kDraws)) + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialParamTest,
    ::testing::Values(std::pair<std::uint64_t, double>{10, 0.5},
                      std::pair<std::uint64_t, double>{50, 0.1},
                      std::pair<std::uint64_t, double>{1000, 0.01},
                      std::pair<std::uint64_t, double>{100000, 0.25},
                      // sFlow regime: large n, tiny p (1/16384).
                      std::pair<std::uint64_t, double>{2000000, 1.0 / 16384.0}));

TEST(Rng, BinomialDegenerateCases) {
  Rng rng{19};
  EXPECT_EQ(rng.next_binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.next_binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.next_binomial(100, 1.0), 100u);
}

TEST(Rng, PoissonMean) {
  Rng rng{23};
  for (const double lambda : {0.5, 4.0, 20.0, 100.0}) {
    double sum = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i)
      sum += static_cast<double>(rng.next_poisson(lambda));
    EXPECT_NEAR(sum / kDraws, lambda, 0.05 * lambda + 0.05);
  }
}

TEST(Rng, NormalMeanAndVariance) {
  Rng rng{29};
  double sum = 0.0;
  double sumsq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sumsq / kDraws, 1.0, 0.05);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng{31};
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.next_pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{37};
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(std::span<int>{shuffled});
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  const Rng parent{99};
  Rng child1 = parent.fork(1);
  Rng child1_again = parent.fork(1);
  Rng child2 = parent.fork(2);
  EXPECT_EQ(child1(), child1_again());
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child1() == child2()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(SampleWithoutReplacement, ProducesDistinctValuesInRange) {
  Rng rng{41};
  const auto picks = sample_without_replacement(rng, 1000, 100);
  ASSERT_EQ(picks.size(), 100u);
  std::set<std::uint64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 100u);
  for (const auto v : picks) EXPECT_LT(v, 1000u);
}

TEST(SampleWithoutReplacement, FullPopulation) {
  Rng rng{43};
  const auto picks = sample_without_replacement(rng, 50, 50);
  std::set<std::uint64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(SampleWithoutReplacement, KLargerThanNClamps) {
  Rng rng{47};
  const auto picks = sample_without_replacement(rng, 10, 100);
  std::set<std::uint64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(SampleWithoutReplacement, EmptyCases) {
  Rng rng{53};
  EXPECT_TRUE(sample_without_replacement(rng, 0, 5).empty());
  EXPECT_TRUE(sample_without_replacement(rng, 5, 0).empty());
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

}  // namespace
}  // namespace ixp::util
