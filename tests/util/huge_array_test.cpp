// HugeArray backing policy and the forced 4 KiB fallback (DESIGN.md §14):
// every downgrade step must come back usable and report what it got.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "util/cpu_features.hpp"
#include "util/huge_array.hpp"

namespace ixp::util {
namespace {

TEST(HugeArray, EmptyArrayIsUnmapped) {
  HugeArray<std::uint32_t> arr;
  EXPECT_TRUE(arr.empty());
  EXPECT_EQ(arr.size(), 0u);
  EXPECT_EQ(arr.backing(), PageBacking::kUnmapped);
}

TEST(HugeArray, FillsAndIndexes) {
  HugeArray<std::uint32_t> arr(4096, 0xdeadbeefu);
  ASSERT_EQ(arr.size(), 4096u);
  EXPECT_NE(arr.backing(), PageBacking::kUnmapped);
  for (std::size_t i = 0; i < arr.size(); i += 257)
    EXPECT_EQ(arr[i], 0xdeadbeefu) << i;
  arr[17] = 42;
  EXPECT_EQ(arr[17], 42u);
}

TEST(HugeArray, ForcedSmallPagesTakesThePlainMapping) {
  // The differential hook: machines where huge pages succeed must still
  // exercise the exact code path a huge-page-less host runs.
  force_small_pages(true);
  EXPECT_TRUE(small_pages_forced());
  {
    HugeArray<std::uint64_t> arr(1 << 16, 7u);
    // POSIX builds land on the plain anonymous mapping; the operator-new
    // tier only exists where mmap does not.
    EXPECT_TRUE(arr.backing() == PageBacking::kSmall ||
                arr.backing() == PageBacking::kHeap)
        << to_string(arr.backing());
    for (std::size_t i = 0; i < arr.size(); i += 1021)
      EXPECT_EQ(arr[i], 7u) << i;
    arr[arr.size() - 1] = 99;
    EXPECT_EQ(arr[arr.size() - 1], 99u);
  }
  force_small_pages(false);
  EXPECT_FALSE(small_pages_forced());
}

TEST(HugeArray, MoveTransfersBackingAndContents) {
  HugeArray<std::uint32_t> a(1024, 5u);
  const PageBacking backing = a.backing();
  HugeArray<std::uint32_t> b = std::move(a);
  EXPECT_EQ(b.backing(), backing);
  EXPECT_EQ(b.size(), 1024u);
  EXPECT_EQ(b[512], 5u);
  EXPECT_EQ(a.backing(), PageBacking::kUnmapped);  // NOLINT: post-move probe
  EXPECT_TRUE(a.empty());
}

TEST(HugeArray, BackingNamesAreStable) {
  // bench JSON and logs print these; keep them spelled as documented.
  EXPECT_EQ(to_string(PageBacking::kUnmapped), "unmapped");
  EXPECT_EQ(to_string(PageBacking::kHugeExplicit), "huge-explicit");
  EXPECT_EQ(to_string(PageBacking::kHugeTransparent), "huge-transparent");
  EXPECT_EQ(to_string(PageBacking::kSmall), "small-pages");
  EXPECT_EQ(to_string(PageBacking::kHeap), "heap");
}

TEST(CpuFeatures, ActiveNeverExceedsHardware) {
  const CpuFeatures& hw = CpuFeatures::detect();
  const SimdLevel level = CpuFeatures::active();
  if (level >= SimdLevel::kAvx2) EXPECT_TRUE(hw.avx2);
  if (level >= SimdLevel::kSse2) EXPECT_TRUE(hw.sse2);
}

TEST(CpuFeatures, NamesAndFlagsAreNonEmpty) {
  EXPECT_EQ(CpuFeatures::name(SimdLevel::kScalar), "scalar");
  EXPECT_EQ(CpuFeatures::name(SimdLevel::kSse2), "sse2");
  EXPECT_EQ(CpuFeatures::name(SimdLevel::kAvx2), "avx2");
  EXPECT_FALSE(CpuFeatures::flags_string().empty());
}

}  // namespace
}  // namespace ixp::util
