#include "util/inline_string.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <type_traits>

namespace ixp::util {
namespace {

TEST(InlineString, DefaultIsEmpty) {
  InlineString<16> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.view(), "");
  EXPECT_EQ(InlineString<16>::capacity(), 16u);
}

TEST(InlineString, CopiesAndRoundTrips) {
  InlineString<32> s{"www.example.com"};
  EXPECT_EQ(s.size(), 15u);
  EXPECT_EQ(s.view(), "www.example.com");
  EXPECT_EQ(s.str(), std::string{"www.example.com"});
  const std::string_view as_view = s;  // implicit conversion
  EXPECT_EQ(as_view, "www.example.com");
}

TEST(InlineString, TruncatesAtCapacity) {
  InlineString<4> s{"abcdef"};
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.view(), "abcd");
  s.assign("xy");
  EXPECT_EQ(s.view(), "xy");
}

TEST(InlineString, IsTriviallyCopyable) {
  EXPECT_TRUE(std::is_trivially_copyable_v<InlineString<64>>);
}

TEST(InlineString, ComparisonMatchesStdStringOrdering) {
  const InlineString<16> a{"alpha"};
  const InlineString<16> b{"beta"};
  const InlineString<16> a2{"alpha"};
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(std::string{"alpha"} < std::string{"beta"}, a < b);
  // Prefix ordering: "alp" < "alpha", like std::string.
  EXPECT_LT(InlineString<16>{"alp"}, a);
  // Embedded NUL bytes compare byte-wise, not C-string-wise.
  const InlineString<16> nul1{std::string_view{"a\0b", 3}};
  const InlineString<16> nul2{std::string_view{"a\0c", 3}};
  EXPECT_LT(nul1, nul2);
  EXPECT_EQ(nul1.size(), 3u);
}

TEST(InlineString, ComparesAgainstStringView) {
  const InlineString<16> s{"host"};
  EXPECT_EQ(s, std::string_view{"host"});
  EXPECT_NE(s, std::string_view{"hosts"});
  EXPECT_LT(s, std::string_view{"hosts"});
  EXPECT_GT(s, std::string_view{"ho"});
}

TEST(StringHash, AgreesAcrossKeyTypes) {
  const StringHash hash;
  const std::string_view view = "cdn.example.net";
  EXPECT_EQ(hash(view), hash(InlineString<32>{view}));
  EXPECT_EQ(hash(view), hash(std::string{view}));
  EXPECT_NE(hash(view), hash(std::string_view{"cdn.example.org"}));
}

}  // namespace
}  // namespace ixp::util
