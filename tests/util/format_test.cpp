#include "util/format.hpp"

#include <gtest/gtest.h>

namespace ixp::util {
namespace {

TEST(WithThousands, SeparatesGroups) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(232460635), "232,460,635");
}

TEST(Percent, FormatsFractions) {
  EXPECT_EQ(percent(0.5), "50.00%");
  EXPECT_EQ(percent(0.111, 1), "11.1%");
  EXPECT_EQ(percent(0.0), "0.00%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Bytes, ScalesUnits) {
  EXPECT_EQ(bytes(512.0), "512 B");
  EXPECT_EQ(bytes(14.5e15), "14.5 PB");
  EXPECT_EQ(bytes(2.0e6), "2.00 MB");
}

TEST(Compact, ScalesMagnitudes) {
  EXPECT_EQ(compact(950), "950");
  EXPECT_EQ(compact(42825), "42.8K");
  EXPECT_EQ(compact(1488286), "1.49M");
  EXPECT_EQ(compact(2.5e9), "2.50B");
}

TEST(Fixed, RespectsDecimals) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(3.14159, 0), "3");
  EXPECT_EQ(fixed(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace ixp::util
