#include "util/flat_hash_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/inline_string.hpp"
#include "util/rng.hpp"

namespace ixp::util {
namespace {

TEST(FlatHashMap, StartsEmpty) {
  FlatHashMap<int, int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), 0u);
  EXPECT_EQ(map.begin(), map.end());
  EXPECT_EQ(map.find(7), map.end());
  EXPECT_FALSE(map.contains(7));
  EXPECT_EQ(map.erase(7), 0u);
}

TEST(FlatHashMap, InsertFindErase) {
  FlatHashMap<int, std::string> map;
  auto [it, inserted] = map.try_emplace(1, "one");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, "one");
  auto [again, inserted2] = map.try_emplace(1, "uno");
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(again->second, "one");  // try_emplace never overwrites

  map[2] = "two";
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at(2), "two");
  EXPECT_EQ(map.count(1), 1u);
  EXPECT_EQ(map.erase(1), 1u);
  EXPECT_EQ(map.erase(1), 0u);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_THROW((void)map.at(1), std::out_of_range);
}

TEST(FlatHashMap, OperatorBracketDefaultConstructs) {
  FlatHashMap<int, std::uint64_t> map;
  EXPECT_EQ(map[42], 0u);
  map[42] += 7;
  EXPECT_EQ(map.at(42), 7u);
}

TEST(FlatHashMap, ReserveAvoidsRehash) {
  FlatHashMap<int, int> map;
  map.reserve(1000);
  const std::size_t cap = map.capacity();
  EXPECT_GE(cap * 7 / 8, 1000u);
  for (int i = 0; i < 1000; ++i) map[i] = i;
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.size(), 1000u);
}

TEST(FlatHashMap, ClearKeepsCapacity) {
  FlatHashMap<int, int> map;
  for (int i = 0; i < 100; ++i) map[i] = i;
  const std::size_t cap = map.capacity();
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.begin(), map.end());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(map.contains(i));
}

TEST(FlatHashMap, IterationVisitsEveryEntryOnce) {
  FlatHashMap<int, int> map;
  for (int i = 0; i < 257; ++i) map[i] = i * 3;
  std::vector<int> keys;
  for (const auto& [k, v] : map) {
    EXPECT_EQ(v, k * 3);
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  ASSERT_EQ(keys.size(), 257u);
  for (int i = 0; i < 257; ++i) EXPECT_EQ(keys[i], i);
}

TEST(FlatHashMap, EqualityIsOrderIndependent) {
  FlatHashMap<int, int> a;
  FlatHashMap<int, int> b;
  for (int i = 0; i < 64; ++i) a[i] = i;
  for (int i = 63; i >= 0; --i) b[i] = i;
  EXPECT_EQ(a, b);
  b[0] = 99;
  EXPECT_NE(a, b);
  b[0] = 0;
  b[64] = 64;
  EXPECT_NE(a, b);
}

TEST(FlatHashMap, HeterogeneousLookupWithStringView) {
  FlatHashMap<InlineString<32>, int, StringHash, std::equal_to<>> map;
  map.try_emplace(InlineString<32>{"www.example.com"}, 1);
  map.try_emplace(InlineString<32>{"cdn.example.net"}, 2);
  const std::string_view needle = "cdn.example.net";
  const auto it = map.find(needle);  // no InlineString constructed
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->second, 2);
  EXPECT_TRUE(map.contains(std::string_view{"www.example.com"}));
  EXPECT_FALSE(map.contains(std::string_view{"gone.example.org"}));
  EXPECT_EQ(map.erase(needle), 1u);
  EXPECT_EQ(map.size(), 1u);
}

// Backward-shift erase must never break another key's probe chain. Force
// maximal collisions with a constant hash, then erase from the middle.
struct CollidingHash {
  std::size_t operator()(int) const noexcept { return 0; }
};

TEST(FlatHashMap, EraseUnderFullCollisionKeepsChainsIntact) {
  FlatHashMap<int, int, CollidingHash> map;
  for (int i = 0; i < 12; ++i) map[i] = i;
  EXPECT_EQ(map.erase(5), 1u);
  EXPECT_EQ(map.erase(0), 1u);
  EXPECT_EQ(map.erase(11), 1u);
  for (int i = 0; i < 12; ++i) {
    const bool erased = i == 5 || i == 0 || i == 11;
    EXPECT_EQ(map.contains(i), !erased) << i;
    if (!erased) {
      EXPECT_EQ(map.at(i), i);
    }
  }
}

// The load-bearing property: any interleaving of insert / erase / lookup
// agrees with std::unordered_map exactly.
TEST(FlatHashMap, RandomizedMirrorAgainstStdUnorderedMap) {
  Rng rng{0x1234abcd};
  FlatHashMap<std::uint32_t, std::uint64_t> flat;
  std::unordered_map<std::uint32_t, std::uint64_t> ref;

  for (int op = 0; op < 200000; ++op) {
    const std::uint32_t key = static_cast<std::uint32_t>(rng() % 512);
    switch (rng() % 4) {
      case 0:
      case 1: {  // upsert
        const std::uint64_t value = rng();
        flat[key] += value;
        ref[key] += value;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(flat.erase(key), ref.erase(key));
        break;
      }
      case 3: {  // lookup
        const auto fit = flat.find(key);
        const auto rit = ref.find(key);
        ASSERT_EQ(fit != flat.end(), rit != ref.end());
        if (rit != ref.end()) {
          ASSERT_EQ(fit->second, rit->second);
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }

  // Full-content comparison both ways.
  for (const auto& [k, v] : ref) {
    ASSERT_TRUE(flat.contains(k));
    ASSERT_EQ(flat.at(k), v);
  }
  std::size_t visited = 0;
  for (const auto& [k, v] : flat) {
    const auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    ASSERT_EQ(it->second, v);
    ++visited;
  }
  EXPECT_EQ(visited, ref.size());
}

// Erase-heavy churn at a constant population: backward-shift deletion
// must not degrade lookups (no tombstones piling up) and stays correct.
TEST(FlatHashMap, SteadyStateChurnStaysConsistent) {
  Rng rng{0xfeed5eed};
  FlatHashMap<std::uint32_t, std::uint32_t> flat;
  std::unordered_map<std::uint32_t, std::uint32_t> ref;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    flat[i] = i;
    ref[i] = i;
  }
  std::vector<std::uint32_t> live(1000);
  for (std::uint32_t i = 0; i < 1000; ++i) live[i] = i;

  const std::size_t cap_after_fill = flat.capacity();
  for (int round = 0; round < 50000; ++round) {
    // Replace one live key with a fresh one: the population is constant,
    // so churn alone must never force growth.
    const std::size_t idx = static_cast<std::size_t>(rng() % live.size());
    flat.erase(live[idx]);
    ref.erase(live[idx]);
    auto born = static_cast<std::uint32_t>(rng());
    while (ref.contains(born)) born = static_cast<std::uint32_t>(rng());
    flat[born] = born;
    ref[born] = born;
    live[idx] = born;
  }
  EXPECT_EQ(flat.capacity(), cap_after_fill);
  ASSERT_EQ(flat.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_TRUE(flat.contains(k)) << k;
    ASSERT_EQ(flat.at(k), v);
  }
}

}  // namespace
}  // namespace ixp::util
