#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ixp::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(Quantile, EmptyIsZero) {
  EXPECT_EQ(quantile(std::vector<double>{}, 0.5), 0.0);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 2.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.75), 7.5);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> values{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(values, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 2.0), 2.0);
}

TEST(Gini, UniformIsZero) {
  const std::vector<double> values{3.0, 3.0, 3.0, 3.0};
  EXPECT_NEAR(gini(values), 0.0, 1e-12);
}

TEST(Gini, ExtremeConcentration) {
  std::vector<double> values(100, 0.0);
  values[0] = 100.0;
  EXPECT_GT(gini(values), 0.95);
}

TEST(Gini, DegenerateInputs) {
  EXPECT_EQ(gini(std::vector<double>{}), 0.0);
  EXPECT_EQ(gini(std::vector<double>{0.0, 0.0}), 0.0);
}

TEST(TopKShare, BasicShares) {
  const std::vector<double> values{50.0, 30.0, 15.0, 5.0};
  EXPECT_DOUBLE_EQ(top_k_share(values, 1), 0.5);
  EXPECT_DOUBLE_EQ(top_k_share(values, 2), 0.8);
  EXPECT_DOUBLE_EQ(top_k_share(values, 4), 1.0);
  EXPECT_DOUBLE_EQ(top_k_share(values, 100), 1.0);
}

TEST(TopKShare, DegenerateInputs) {
  EXPECT_EQ(top_k_share(std::vector<double>{}, 3), 0.0);
  EXPECT_EQ(top_k_share(std::vector<double>{1.0}, 0), 0.0);
  EXPECT_EQ(top_k_share(std::vector<double>{0.0, 0.0}, 1), 0.0);
}

TEST(CumulativeShareByRank, MonotoneAndEndsAtOne) {
  const std::vector<double> values{5.0, 1.0, 3.0, 1.0};
  const auto shares = cumulative_share_by_rank(values);
  ASSERT_EQ(shares.size(), 4u);
  EXPECT_DOUBLE_EQ(shares[0], 0.5);
  EXPECT_DOUBLE_EQ(shares[1], 0.8);
  for (std::size_t i = 1; i < shares.size(); ++i)
    EXPECT_GE(shares[i], shares[i - 1]);
  EXPECT_DOUBLE_EQ(shares.back(), 1.0);
}

TEST(CumulativeShareByRank, ZeroTotal) {
  const auto shares = cumulative_share_by_rank(std::vector<double>{0.0, 0.0});
  EXPECT_EQ(shares, (std::vector<double>{0.0, 0.0}));
}

}  // namespace
}  // namespace ixp::util
