#include "util/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ixp::util {
namespace {

TEST(ZipfSampler, RejectsInvalidArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

TEST(ZipfSampler, SingleElementAlwaysRankZero) {
  ZipfSampler zipf{1, 1.2};
  Rng rng{1};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf{1000, 0.9};
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(zipf.pmf(zipf.size()), 0.0);
}

TEST(ZipfSampler, HeadDominatesForLargeExponent) {
  ZipfSampler zipf{10000, 1.2};
  Rng rng{2};
  int head = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) head += (zipf.sample(rng) < 10) ? 1 : 0;
  // With s = 1.2 the top-10 ranks carry a large share of the mass.
  EXPECT_GT(static_cast<double>(head) / kDraws, 0.45);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  ZipfSampler zipf{100, 0.0};
  for (std::size_t k = 0; k < 100; ++k) EXPECT_NEAR(zipf.pmf(k), 0.01, 1e-9);
}

class ZipfFrequencyTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfFrequencyTest, EmpiricalMatchesPmf) {
  const double s = GetParam();
  ZipfSampler zipf{500, s};
  Rng rng{3};
  std::vector<int> counts(zipf.size(), 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  // Check the head ranks where counts are large enough for tight bounds.
  for (std::size_t k = 0; k < 5; ++k) {
    const double expected = zipf.pmf(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, 6.0 * std::sqrt(expected) + 1.0)
        << "rank " << k << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfFrequencyTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.3, 2.0));

TEST(WeightedSampler, RejectsEmptyAndNegative) {
  EXPECT_THROW(WeightedSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(WeightedSampler(std::vector<double>{1.0, -2.0}),
               std::invalid_argument);
}

TEST(WeightedSampler, NeverDrawsZeroWeight) {
  const std::vector<double> weights{0.0, 5.0, 0.0, 5.0};
  WeightedSampler sampler{weights};
  Rng rng{4};
  for (int i = 0; i < 20000; ++i) {
    const std::size_t k = sampler.sample(rng);
    EXPECT_TRUE(k == 1 || k == 3);
  }
}

TEST(WeightedSampler, AllZeroWeightsFallsBackToUniform) {
  const std::vector<double> weights{0.0, 0.0, 0.0};
  WeightedSampler sampler{weights};
  Rng rng{5};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[sampler.sample(rng)];
  for (const int c : counts) EXPECT_GT(c, 8000);
}

TEST(WeightedSampler, FrequenciesMatchWeights) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  WeightedSampler sampler{weights};
  Rng rng{6};
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.sample(rng)];
  for (std::size_t k = 0; k < 4; ++k) {
    const double expected = weights[k] / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[k]) / kDraws, expected, 0.01);
  }
}

TEST(WeightedSampler, SingleEntry) {
  WeightedSampler sampler{std::vector<double>{3.5}};
  Rng rng{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(ZipfWeights, ShapeAndNormalization) {
  const auto raw = zipf_weights(10, 1.0);
  EXPECT_DOUBLE_EQ(raw[0], 1.0);
  EXPECT_NEAR(raw[1], 0.5, 1e-12);
  EXPECT_NEAR(raw[9], 0.1, 1e-12);

  const auto norm = zipf_weights(10, 1.0, /*normalize=*/true);
  double total = 0.0;
  for (const double w : norm) total += w;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace ixp::util
