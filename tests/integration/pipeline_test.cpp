// End-to-end pipeline integration: synthetic Internet -> weekly sample
// stream -> filter cascade -> dissection -> HTTPS probing -> metadata ->
// clustering -> attribution. Asserts the paper's *shape* invariants at
// test scale (loose bounds; exact reproduction runs at bench scale).
#include <gtest/gtest.h>

#include "analysis/attribution.hpp"
#include "analysis/heterogeneity.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"

namespace ixp {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new gen::InternetModel{gen::ScaleConfig::test()};
    workload_ = new gen::Workload{*model_};

    std::vector<net::Asn> members;
    for (const auto* m : model_->ixp().members_at(45)) members.push_back(m->asn);
    locality_ = new std::unordered_map<net::Asn, net::Locality>(
        model_->as_graph().classify(members));

    core::VantagePoint vp{model_->ixp(),   model_->routing(),
                          model_->geo_db(), *locality_,
                          model_->dns_db(), dns::PublicSuffixList::builtin(),
                          model_->root_store()};
    core::WeekSession session = vp.open_week(45);
    truth_ = new gen::WeeklyTruth{workload_->generate_week(
        45, [&](const sflow::FlowSample& s) { session.observe(s); })};
    report_ = new core::WeeklyReport{session.finish(
        [&](net::Ipv4Addr addr, int times) {
          return model_->fetch_chains(addr, times, 45);
        })};
  }

  static void TearDownTestSuite() {
    delete report_;
    delete truth_;
    delete locality_;
    delete workload_;
    delete model_;
  }

  static gen::InternetModel* model_;
  static gen::Workload* workload_;
  static std::unordered_map<net::Asn, net::Locality>* locality_;
  static gen::WeeklyTruth* truth_;
  static core::WeeklyReport* report_;
};

gen::InternetModel* PipelineTest::model_ = nullptr;
gen::Workload* PipelineTest::workload_ = nullptr;
std::unordered_map<net::Asn, net::Locality>* PipelineTest::locality_ = nullptr;
gen::WeeklyTruth* PipelineTest::truth_ = nullptr;
core::WeeklyReport* PipelineTest::report_ = nullptr;

TEST_F(PipelineTest, FilterSharesMatchFigure1) {
  const auto& f = report_->filters;
  const double total = static_cast<double>(f.total_samples());
  EXPECT_NEAR(f.of(classify::TrafficClass::kNonIpv4) / total, 0.004, 0.002);
  EXPECT_NEAR(f.of(classify::TrafficClass::kNonMemberOrLocal) / total, 0.006,
              0.004);
  EXPECT_NEAR(f.of(classify::TrafficClass::kNonTcpUdp) / total, 0.0045, 0.002);
  EXPECT_GT(f.of(classify::TrafficClass::kPeering) / total, 0.985);
}

TEST_F(PipelineTest, TcpUdpSplitNearPaper) {
  const auto& f = report_->filters;
  const double tcp_share = static_cast<double>(f.tcp_bytes) /
                           static_cast<double>(f.tcp_bytes + f.udp_bytes);
  EXPECT_NEAR(tcp_share, 0.82, 0.04);
}

TEST_F(PipelineTest, FilterCountsMatchGeneratorTruth) {
  const auto& f = report_->filters;
  EXPECT_EQ(f.of(classify::TrafficClass::kNonIpv4), truth_->non_ipv4_samples);
  EXPECT_EQ(f.of(classify::TrafficClass::kNonMemberOrLocal),
            truth_->non_member_or_local_samples);
  EXPECT_EQ(f.of(classify::TrafficClass::kNonTcpUdp),
            truth_->non_tcp_udp_samples);
  EXPECT_EQ(f.of(classify::TrafficClass::kPeering), truth_->peering_samples);
}

TEST_F(PipelineTest, VisibilityRowsArePlausible) {
  EXPECT_GT(report_->peering_ips, 10'000u);
  EXPECT_GT(report_->peering_ases, model_->config().as_count * 9 / 10);
  EXPECT_GT(report_->peering_prefixes, model_->config().prefix_count / 2);
  EXPECT_GT(report_->peering_countries, 80u);
  EXPECT_LT(report_->server_ips, report_->peering_ips);
  EXPECT_GT(report_->server_ips, 500u);
  EXPECT_LT(report_->server_countries, report_->peering_countries);
}

TEST_F(PipelineTest, IdentifiedServersAreRealServers) {
  // No false positives: every identified server IP is a model server.
  std::size_t checked = 0;
  for (const auto& obs : report_->servers) {
    const auto index = model_->server_by_addr(obs.addr);
    ASSERT_TRUE(index) << obs.addr.to_string();
    EXPECT_TRUE(model_->servers()[*index].visible());
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(PipelineTest, MostActiveServersAreIdentified) {
  const auto active = workload_->active_visible_servers(45);
  EXPECT_GT(static_cast<double>(report_->server_ips),
            0.35 * static_cast<double>(active.size()));
}

TEST_F(PipelineTest, HttpsFunnelShapeHolds) {
  const auto& funnel = report_->https_funnel;
  EXPECT_GT(funnel.candidates, funnel.responded);
  EXPECT_GT(funnel.responded, funnel.confirmed);
  EXPECT_GT(funnel.confirmed, 0u);
  // Roughly half of responders pass all checks (paper: 500K -> 250K).
  const double pass_rate = static_cast<double>(funnel.confirmed) /
                           static_cast<double>(funnel.responded);
  EXPECT_NEAR(pass_rate, 0.5, 0.15);
}

TEST_F(PipelineTest, ConfirmedHttpsAreTrueHttpsServers) {
  for (const auto& obs : report_->servers) {
    if (!obs.https) continue;
    const auto index = model_->server_by_addr(obs.addr);
    ASSERT_TRUE(index);
    EXPECT_EQ(model_->servers()[*index].tls, gen::TlsBehavior::kValidStable);
  }
}

TEST_F(PipelineTest, MetadataCoverageNearPaper) {
  const auto& mc = report_->metadata_coverage;
  const double n = static_cast<double>(mc.servers);
  EXPECT_NEAR(mc.with_dns / n, 0.717, 0.08);
  EXPECT_NEAR(mc.with_uri / n, 0.238, 0.09);
  EXPECT_NEAR(mc.with_cert / n, 0.177, 0.08);
  EXPECT_NEAR(mc.with_any / n, 0.819, 0.08);
}

TEST_F(PipelineTest, LocalityIpSharesNearPaper) {
  double total_ips = 0;
  for (const auto& tally : report_->peering_locality) total_ips += tally.ips;
  EXPECT_NEAR(report_->peering_locality[0].ips / total_ips, 0.423, 0.10);
  EXPECT_NEAR(report_->peering_locality[1].ips / total_ips, 0.450, 0.10);
  EXPECT_NEAR(report_->peering_locality[2].ips / total_ips, 0.127, 0.08);
}

TEST_F(PipelineTest, ClusteringStepsAndAccuracy) {
  // Harvested metadata -> clustering -> validate against ground truth.
  std::vector<classify::ServerMetadata> metadata;
  metadata.reserve(report_->servers.size());
  for (const auto& obs : report_->servers) metadata.push_back(obs.metadata);

  const core::OrgClusterer clusterer{model_->dns_db(),
                                     dns::PublicSuffixList::builtin()};
  const auto clustering = clusterer.cluster(metadata);
  EXPECT_GT(clustering.clustered(), metadata.size() * 6 / 10);
  EXPECT_GT(clustering.step_share(1), 0.5);   // paper: 78.7%
  EXPECT_GT(clustering.step_counts[2], 0u);   // paper: 17.4%

  // Validation: assigned authority equals the admin org's domain.
  std::size_t correct = 0;
  std::size_t wrong = 0;
  for (const auto& [addr, assignment] : clustering.by_server) {
    if (assignment.step == 0) continue;
    const auto index = model_->server_by_addr(addr);
    ASSERT_TRUE(index);
    const auto& truth_org = model_->orgs()[model_->servers()[*index].org];
    (assignment.authority == truth_org.domain ? correct : wrong) += 1;
  }
  ASSERT_GT(correct + wrong, 0u);
  const double fp_rate =
      static_cast<double>(wrong) / static_cast<double>(correct + wrong);
  EXPECT_LT(fp_rate, 0.08);  // paper: < 3% at full scale
}

TEST_F(PipelineTest, AttributionServerShareAboveSeventyPercent) {
  std::unordered_map<net::Ipv4Addr, std::uint32_t> server_org;
  for (const auto& obs : report_->servers) server_org.emplace(obs.addr, 0u);
  analysis::AttributionPass pass{model_->ixp(), 45, std::move(server_org), {}};
  (void)workload_->generate_week(
      45, [&](const sflow::FlowSample& s) { pass.observe(s); });
  EXPECT_GT(pass.server_share(), 0.55);
  EXPECT_LT(pass.server_share(), 0.95);
}

TEST_F(PipelineTest, AkamaiIndirectShareNearPaper) {
  const auto akamai = *model_->org_by_name("akamai");
  std::unordered_map<net::Ipv4Addr, std::uint32_t> server_org;
  for (const std::uint32_t s : model_->org_servers(akamai))
    server_org.emplace(model_->servers()[s].addr, akamai);
  std::unordered_map<std::uint32_t, net::Asn> org_home{
      {akamai, model_->ases()[*model_->orgs()[akamai].home_as].asn}};
  analysis::AttributionPass pass{model_->ixp(), 45, std::move(server_org),
                                 std::move(org_home)};
  (void)workload_->generate_week(
      45, [&](const sflow::FlowSample& s) { pass.observe(s); });
  // Paper: 11.1% of Akamai traffic does not use the direct links.
  EXPECT_NEAR(pass.indirect_share(akamai), 0.111, 0.08);
}

}  // namespace
}  // namespace ixp
