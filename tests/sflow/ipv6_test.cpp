#include "sflow/ipv6.hpp"

#include <gtest/gtest.h>

namespace ixp::sflow {
namespace {

Ipv6Addr make_addr(std::uint8_t seed) {
  std::array<std::uint8_t, 16> octets{};
  for (std::size_t i = 0; i < 16; ++i)
    octets[i] = static_cast<std::uint8_t>(seed + i);
  return Ipv6Addr{octets};
}

TEST(Ipv6Header, RoundTrips) {
  Ipv6Header h;
  h.traffic_class = 0xa5;
  h.flow_label = 0xbcdef;
  h.payload_length = 1440;
  h.next_header = 6;  // TCP
  h.hop_limit = 57;
  h.src = make_addr(0x20);
  h.dst = make_addr(0x40);

  std::array<std::byte, Ipv6Header::kSize> buf{};
  h.serialize(buf);
  const auto parsed = Ipv6Header::parse(buf);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->traffic_class, 0xa5);
  EXPECT_EQ(parsed->flow_label, 0xbcdefu);
  EXPECT_EQ(parsed->payload_length, 1440);
  EXPECT_EQ(parsed->next_header, 6);
  EXPECT_EQ(parsed->hop_limit, 57);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
}

TEST(Ipv6Header, FlowLabelIsTwentyBits) {
  Ipv6Header h;
  h.flow_label = 0xfffffff;  // over-wide; only 20 bits serialize
  std::array<std::byte, Ipv6Header::kSize> buf{};
  h.serialize(buf);
  const auto parsed = Ipv6Header::parse(buf);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->flow_label, 0xfffffu);
  // The version nibble must still read 6 despite the overflow attempt.
  EXPECT_EQ(std::to_integer<std::uint8_t>(buf[0]) >> 4, 6);
}

TEST(Ipv6Header, ParseRejectsWrongVersion) {
  std::array<std::byte, Ipv6Header::kSize> buf{};
  buf[0] = std::byte{0x45};  // IPv4
  EXPECT_FALSE(Ipv6Header::parse(buf));
}

TEST(Ipv6Header, ParseRejectsShortBuffer) {
  std::array<std::byte, Ipv6Header::kSize - 1> buf{};
  buf[0] = std::byte{0x60};
  EXPECT_FALSE(Ipv6Header::parse(buf));
}

TEST(Ipv6Addr, FormatsFullForm) {
  std::array<std::uint8_t, 16> octets{};
  octets[0] = 0x20;
  octets[1] = 0x01;
  octets[2] = 0x0d;
  octets[3] = 0xb8;
  octets[15] = 0x01;
  const Ipv6Addr addr{octets};
  EXPECT_EQ(addr.to_string(), "2001:0db8:0000:0000:0000:0000:0000:0001");
}

TEST(Ipv6Addr, ComparesByValue) {
  EXPECT_EQ(make_addr(1), make_addr(1));
  EXPECT_NE(make_addr(1), make_addr(2));
  EXPECT_LT(make_addr(1), make_addr(2));
}

}  // namespace
}  // namespace ixp::sflow
