#include "sflow/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string_view>

namespace ixp::sflow {
namespace {

using net::Ipv4Addr;

std::vector<std::byte> to_bytes(std::string_view text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

FrameSpec basic_spec() {
  FrameSpec spec;
  spec.src_mac = MacAddr::from_id(1);
  spec.dst_mac = MacAddr::from_id(2);
  spec.src_ip = Ipv4Addr{10, 0, 0, 1};
  spec.dst_ip = Ipv4Addr{198, 51, 100, 7};
  spec.src_port = 49152;
  spec.dst_port = 80;
  return spec;
}

TEST(BuildTcpFrame, CapturesPaperPayloadBudget) {
  // §2.1: 128-byte capture leaves exactly 74 bytes of TCP payload.
  const std::string long_payload(500, 'x');
  const auto frame =
      build_tcp_frame(basic_spec(), to_bytes(long_payload), long_payload.size());
  EXPECT_EQ(frame.captured, kCaptureBytes);
  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->is_tcp());
  EXPECT_EQ(parsed->payload.size(), kTcpPayloadCapture);
  EXPECT_EQ(frame.frame_length, 14 + 20 + 20 + 500);
}

TEST(BuildUdpFrame, CapturesPaperPayloadBudget) {
  const std::string long_payload(500, 'y');
  const auto frame =
      build_udp_frame(basic_spec(), to_bytes(long_payload), long_payload.size());
  EXPECT_EQ(frame.captured, kCaptureBytes);
  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->is_udp());
  EXPECT_EQ(parsed->payload.size(), kUdpPayloadCapture);
}

TEST(BuildTcpFrame, RoundTripsAddressesPortsAndPayload) {
  const std::string request = "GET /index.html HTTP/1.1\r\nHost: example.com\r\n";
  const auto frame =
      build_tcp_frame(basic_spec(), to_bytes(request), request.size());
  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->is_ipv4());
  ASSERT_TRUE(parsed->is_tcp());
  EXPECT_EQ(parsed->ip->src, Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(parsed->ip->dst, Ipv4Addr(198, 51, 100, 7));
  EXPECT_EQ(parsed->tcp->src_port, 49152);
  EXPECT_EQ(parsed->tcp->dst_port, 80);
  ASSERT_EQ(parsed->payload.size(), request.size());
  EXPECT_EQ(std::memcmp(parsed->payload.data(), request.data(), request.size()),
            0);
}

TEST(BuildTcpFrame, ShortPayloadCapturedFully) {
  const std::string tiny = "OK";
  const auto frame = build_tcp_frame(basic_spec(), to_bytes(tiny), tiny.size());
  EXPECT_EQ(frame.captured, 14 + 20 + 20 + 2);
  EXPECT_EQ(frame.frame_length, 14 + 20 + 20 + 2);
  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->payload.size(), tiny.size());
}

TEST(BuildTcpFrame, ExplicitWireLengthOverrides) {
  auto spec = basic_spec();
  spec.frame_length = 1514;
  const auto frame = build_tcp_frame(spec, {}, 0);
  EXPECT_EQ(frame.frame_length, 1514);
}

TEST(BuildIpv4Frame, IcmpHasHeadersOnly) {
  const auto frame = build_ipv4_frame(basic_spec(), IpProto::kIcmp, 64);
  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->is_ipv4());
  EXPECT_FALSE(parsed->is_tcp());
  EXPECT_FALSE(parsed->is_udp());
  EXPECT_EQ(parsed->ip->protocol, static_cast<std::uint8_t>(IpProto::kIcmp));
  EXPECT_EQ(frame.frame_length, 14 + 20 + 64);
}

TEST(BuildOtherFrame, NonIpv4StopsAtEthernet) {
  const auto frame = build_other_frame(MacAddr::from_id(1), MacAddr::from_id(2),
                                       EtherType::kIpv6, 100);
  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->eth.ether_type, static_cast<std::uint16_t>(EtherType::kIpv6));
  EXPECT_FALSE(parsed->is_ipv4());
  EXPECT_EQ(frame.frame_length, 14 + 100);
}

TEST(ParseFrame, EmptyCaptureRejected) {
  SampledFrame frame;
  frame.captured = 0;
  EXPECT_FALSE(parse_frame(frame));
}

TEST(ParseFrame, TruncatedIpLeavesOptionalEmpty) {
  // Ethernet claims IPv4 but only 10 bytes of IP header were captured.
  auto frame = build_other_frame(MacAddr::from_id(3), MacAddr::from_id(4),
                                 EtherType::kIpv4, 10);
  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed);
  EXPECT_FALSE(parsed->is_ipv4());
}

TEST(SampledFrame, BytesViewMatchesCaptured) {
  const auto frame = build_tcp_frame(basic_spec(), {}, 0);
  EXPECT_EQ(frame.bytes().size(), frame.captured);
}

}  // namespace
}  // namespace ixp::sflow
