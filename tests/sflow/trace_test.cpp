#include "sflow/trace.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

namespace ixp::sflow {
namespace {

using net::Ipv4Addr;

FlowSample make_sample(std::uint32_t seq) {
  FrameSpec spec;
  spec.src_mac = MacAddr::from_id(1);
  spec.dst_mac = MacAddr::from_id(2);
  spec.src_ip = Ipv4Addr{10, 0, 0, 1};
  spec.dst_ip = Ipv4Addr{10, 0, 0, 2};
  spec.src_port = 80;
  spec.dst_port = 40000;
  FlowSample sample;
  sample.sequence = seq;
  sample.sampling_rate = 16384;
  const char payload[] = "HTTP/1.1 200 OK\r\n";
  std::vector<std::byte> data(sizeof payload - 1);
  std::memcpy(data.data(), payload, data.size());
  sample.frame = build_tcp_frame(spec, data, 1000 + seq % 400);
  return sample;
}

TEST(Trace, RoundTripsSamplesInOrder) {
  std::stringstream buffer;
  {
    TraceWriter writer{buffer, Ipv4Addr{172, 16, 0, 1}, /*batch=*/7};
    for (std::uint32_t i = 0; i < 100; ++i) writer.write(make_sample(i));
    EXPECT_EQ(writer.samples_written(), 100u);
  }  // destructor flushes the partial batch

  TraceReader reader{buffer};
  ASSERT_TRUE(reader.ok());
  std::uint32_t expected = 0;
  const std::uint64_t delivered =
      reader.for_each([&](const FlowSample& sample) {
        EXPECT_EQ(sample.sequence, expected);
        EXPECT_EQ(sample.sampling_rate, 16384u);
        EXPECT_EQ(sample.frame.frame_length, make_sample(expected).frame.frame_length);
        ++expected;
      });
  EXPECT_EQ(delivered, 100u);
  EXPECT_TRUE(reader.ok());
}

TEST(Trace, FramesSurviveByteForByte) {
  std::stringstream buffer;
  const FlowSample original = make_sample(5);
  {
    TraceWriter writer{buffer, Ipv4Addr{1, 1, 1, 1}};
    writer.write(original);
  }
  TraceReader reader{buffer};
  const auto sample = reader.next();
  ASSERT_TRUE(sample);
  EXPECT_EQ(sample->frame.captured, original.frame.captured);
  EXPECT_EQ(std::memcmp(sample->frame.data.data(), original.frame.data.data(),
                        original.frame.captured),
            0);
  const auto parsed = parse_frame(sample->frame);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->is_tcp());
}

TEST(Trace, EmptyTraceDeliversNothing) {
  std::stringstream buffer;
  { TraceWriter writer{buffer, Ipv4Addr{1, 1, 1, 1}}; }
  TraceReader reader{buffer};
  EXPECT_TRUE(reader.ok());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Trace, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOTATRACEFILE.....";
  TraceReader reader{buffer};
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Trace, RejectsWrongVersion) {
  std::stringstream buffer;
  buffer.write(kTraceMagic, sizeof kTraceMagic);
  const char version[4] = {0, 0, 0, 99};
  buffer.write(version, 4);
  TraceReader reader{buffer};
  EXPECT_FALSE(reader.ok());
}

TEST(Trace, TruncationDetected) {
  std::stringstream buffer;
  {
    TraceWriter writer{buffer, Ipv4Addr{1, 1, 1, 1}, 4};
    for (std::uint32_t i = 0; i < 8; ++i) writer.write(make_sample(i));
  }
  const std::string full = buffer.str();
  // Cut into the middle of the second datagram.
  std::stringstream cut{full.substr(0, full.size() - 30)};
  TraceReader reader{cut};
  ASSERT_TRUE(reader.ok());
  std::uint64_t delivered = reader.for_each([](const FlowSample&) {});
  EXPECT_EQ(delivered, 4u);   // first datagram intact
  EXPECT_FALSE(reader.ok());  // truncation reported
}

TEST(Trace, ReadBatchCrossesDatagramBoundaries) {
  std::stringstream buffer;
  {
    // 100 samples in datagrams of 7: batches of 9 never line up with them.
    TraceWriter writer{buffer, Ipv4Addr{172, 16, 0, 1}, /*batch=*/7};
    for (std::uint32_t i = 0; i < 100; ++i) writer.write(make_sample(i));
  }
  TraceReader reader{buffer};
  ASSERT_TRUE(reader.ok());

  std::vector<FlowSample> batch;
  std::uint32_t expected = 0;
  std::size_t delivered;
  while ((delivered = reader.read_batch(batch, 9)) > 0) {
    EXPECT_EQ(delivered, batch.size());
    EXPECT_LE(delivered, 9u);
    for (const FlowSample& sample : batch) {
      EXPECT_EQ(sample.sequence, expected);
      ++expected;
    }
  }
  EXPECT_EQ(expected, 100u);
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(batch.empty());  // the final call cleared the vector
}

TEST(Trace, ReadBatchLargerThanTraceDeliversEverything) {
  std::stringstream buffer;
  {
    TraceWriter writer{buffer, Ipv4Addr{1, 1, 1, 1}, 4};
    for (std::uint32_t i = 0; i < 10; ++i) writer.write(make_sample(i));
  }
  TraceReader reader{buffer};
  std::vector<FlowSample> batch;
  EXPECT_EQ(reader.read_batch(batch, 1000), 10u);
  for (std::uint32_t i = 0; i < 10; ++i)
    EXPECT_EQ(batch[i].sequence, i);
  EXPECT_EQ(reader.read_batch(batch, 1000), 0u);
  EXPECT_TRUE(reader.ok());
}

TEST(Trace, ReadBatchInterleavesWithNext) {
  std::stringstream buffer;
  {
    TraceWriter writer{buffer, Ipv4Addr{1, 1, 1, 1}, 3};
    for (std::uint32_t i = 0; i < 10; ++i) writer.write(make_sample(i));
  }
  TraceReader reader{buffer};
  std::vector<FlowSample> batch;
  ASSERT_EQ(reader.read_batch(batch, 4), 4u);  // samples 0..3
  const auto single = reader.next();           // sample 4
  ASSERT_TRUE(single);
  EXPECT_EQ(single->sequence, 4u);
  ASSERT_EQ(reader.read_batch(batch, 100), 5u);  // samples 5..9
  EXPECT_EQ(batch.front().sequence, 5u);
  EXPECT_EQ(batch.back().sequence, 9u);
}

TEST(Trace, ReadRecordDeliversDatagramsWithMonotoneKeys) {
  std::stringstream buffer;
  {
    TraceWriter writer{buffer, Ipv4Addr{1, 1, 1, 1}, 4};
    for (std::uint32_t i = 0; i < 10; ++i) writer.write(make_sample(i));
  }
  TraceReader reader{buffer};
  std::vector<FlowSample> record;
  std::uint64_t key = 0;
  std::uint64_t last_key = 0;
  std::uint32_t delivered = 0;
  while (reader.read_record(record, key) > 0) {
    EXPECT_EQ(record.size(), delivered < 8 ? 4u : 2u);  // batches of 4
    if (delivered > 0) EXPECT_GT(key, last_key);
    last_key = key;
    for (const auto& sample : record) EXPECT_EQ(sample.sequence, delivered++);
  }
  EXPECT_EQ(delivered, 10u);
  EXPECT_TRUE(reader.ok());
}

TEST(Trace, ResetReplaysTheSameStream) {
  std::stringstream buffer;
  {
    TraceWriter writer{buffer, Ipv4Addr{1, 1, 1, 1}, 4};
    for (std::uint32_t i = 0; i < 10; ++i) writer.write(make_sample(i));
  }
  TraceReader reader{buffer};
  std::vector<FlowSample> batch;
  ASSERT_EQ(reader.read_batch(batch, 1000), 10u);
  const auto first_stats = reader.stats();

  buffer.clear();
  buffer.seekg(0);
  reader.reset(buffer);
  EXPECT_TRUE(reader.ok());
  ASSERT_EQ(reader.read_batch(batch, 1000), 10u);
  EXPECT_EQ(batch.front().sequence, 0u);
  EXPECT_EQ(batch.back().sequence, 9u);
  // A fresh walk of the same bytes reproduces the same taxonomy.
  EXPECT_EQ(reader.stats(), first_stats);
}

TEST(Trace, FlushWritesPartialBatch) {
  std::stringstream buffer;
  TraceWriter writer{buffer, Ipv4Addr{1, 1, 1, 1}, 100};
  writer.write(make_sample(0));
  writer.flush();
  EXPECT_EQ(writer.datagrams_written(), 1u);
  writer.flush();  // idempotent when nothing is pending
  EXPECT_EQ(writer.datagrams_written(), 1u);
}

TEST(Datagram, CounterSamplesRoundTrip) {
  Datagram d;
  d.agent = Ipv4Addr{172, 16, 0, 1};
  d.counters.push_back(CounterSample{7, 1'000'000'000'000ULL, 2ULL << 40,
                                     999, 12345});
  d.counters.push_back(CounterSample{8, 0, 0, 0, 0});
  const auto decoded = decode(encode(d));
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->counters.size(), 2u);
  EXPECT_EQ(decoded->counters[0], d.counters[0]);
  EXPECT_EQ(decoded->counters[1], d.counters[1]);
}

TEST(Datagram, MixedFlowAndCounterSamples) {
  Datagram d;
  d.agent = Ipv4Addr{1, 2, 3, 4};
  FlowSample sample = make_sample(1);
  d.samples.push_back(sample);
  d.counters.push_back(CounterSample{1, 10, 20, 30, 40});
  const auto decoded = decode(encode(d));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->samples.size(), 1u);
  EXPECT_EQ(decoded->counters.size(), 1u);
}

}  // namespace
}  // namespace ixp::sflow
