#include "sflow/datagram.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace ixp::sflow {
namespace {

using net::Ipv4Addr;

Datagram sample_datagram() {
  Datagram d;
  d.agent = Ipv4Addr{172, 16, 0, 1};
  d.sequence = 77;
  d.uptime_ms = 123456;

  FrameSpec spec;
  spec.src_mac = MacAddr::from_id(10);
  spec.dst_mac = MacAddr::from_id(20);
  spec.src_ip = Ipv4Addr{10, 0, 0, 1};
  spec.dst_ip = Ipv4Addr{10, 0, 0, 2};
  spec.src_port = 1234;
  spec.dst_port = 80;

  const char payload[] = "GET / HTTP/1.1\r\n";
  std::vector<std::byte> bytes(sizeof payload - 1);
  std::memcpy(bytes.data(), payload, bytes.size());

  for (std::uint32_t i = 0; i < 3; ++i) {
    FlowSample sample;
    sample.sequence = 100 + i;
    sample.source_port = 7;
    sample.sampling_rate = 16384;
    sample.frame = build_tcp_frame(spec, bytes, bytes.size());
    d.samples.push_back(sample);
  }
  return d;
}

TEST(Datagram, EncodeDecodeRoundTrips) {
  const Datagram original = sample_datagram();
  const auto bytes = encode(original);
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->agent, original.agent);
  EXPECT_EQ(decoded->sequence, original.sequence);
  EXPECT_EQ(decoded->uptime_ms, original.uptime_ms);
  ASSERT_EQ(decoded->samples.size(), original.samples.size());
  for (std::size_t i = 0; i < original.samples.size(); ++i) {
    const auto& a = original.samples[i];
    const auto& b = decoded->samples[i];
    EXPECT_EQ(b.sequence, a.sequence);
    EXPECT_EQ(b.source_port, a.source_port);
    EXPECT_EQ(b.sampling_rate, a.sampling_rate);
    EXPECT_EQ(b.frame.frame_length, a.frame.frame_length);
    EXPECT_EQ(b.frame.captured, a.frame.captured);
    EXPECT_EQ(std::memcmp(b.frame.data.data(), a.frame.data.data(),
                          a.frame.captured),
              0);
  }
}

TEST(Datagram, EmptyDatagramRoundTrips) {
  Datagram d;
  d.agent = Ipv4Addr{1, 1, 1, 1};
  const auto decoded = decode(encode(d));
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->samples.empty());
}

TEST(Datagram, DecodedFramesParseBackToPackets) {
  const auto bytes = encode(sample_datagram());
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded);
  const auto parsed = parse_frame(decoded->samples[0].frame);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->is_tcp());
  EXPECT_EQ(parsed->tcp->dst_port, 80);
}

TEST(Datagram, DecodeRejectsBadVersion) {
  auto bytes = encode(sample_datagram());
  bytes[3] = std::byte{4};  // version 4
  EXPECT_FALSE(decode(bytes));
}

TEST(Datagram, DecodeRejectsTruncation) {
  const auto bytes = encode(sample_datagram());
  for (const std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                                std::size_t{19}, std::size_t{3}}) {
    EXPECT_FALSE(decode(std::span<const std::byte>{bytes}.first(cut)))
        << "cut at " << cut;
  }
}

TEST(Datagram, DecodeRejectsTrailingGarbage) {
  auto bytes = encode(sample_datagram());
  bytes.push_back(std::byte{0});
  EXPECT_FALSE(decode(bytes));
}

TEST(Datagram, DecodeRejectsOversizedCapture) {
  Datagram d;
  FlowSample sample;
  sample.frame.captured = 64;
  sample.frame.frame_length = 64;
  d.samples.push_back(sample);
  auto bytes = encode(d);
  // The `captured` field sits after 5*4 header bytes + 4+4+4+2 sample
  // bytes. Patch it to 200 (> 128).
  const std::size_t at = 20 + 14;
  bytes[at] = std::byte{0};
  bytes[at + 1] = std::byte{200};
  EXPECT_FALSE(decode(bytes));
}

TEST(Datagram, DecodeRejectsEmptyInput) {
  EXPECT_FALSE(decode({}));
}

}  // namespace
}  // namespace ixp::sflow
