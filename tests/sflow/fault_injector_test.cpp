// The corruption matrix: every fault kind, several seeds, and the exact
// byte-accounting contract of the hardened TraceReader (DESIGN.md §8).
// Whatever the FaultInjector does to a trace, a lenient reader must
// (a) never crash, (b) reach end-of-input with every byte accounted for
// (header + delivered + skipped == input), and (c) honor the strict
// policy's error budget.
#include "sflow/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "sflow/trace.hpp"

namespace ixp::sflow {
namespace {

using net::Ipv4Addr;

constexpr std::size_t kHeaderBytes = sizeof kTraceMagic + 4;

FlowSample make_sample(std::uint32_t seq) {
  FrameSpec spec;
  spec.src_mac = MacAddr::from_id(1);
  spec.dst_mac = MacAddr::from_id(2);
  spec.src_ip = Ipv4Addr{10, 0, 0, 1};
  spec.dst_ip = Ipv4Addr{10, 0, 0, 2};
  spec.src_port = 80;
  spec.dst_port = 40000;
  FlowSample sample;
  sample.sequence = seq;
  sample.sampling_rate = 16384;
  const char payload[] = "HTTP/1.1 200 OK\r\n";
  std::vector<std::byte> data(sizeof payload - 1);
  std::memcpy(data.data(), payload, data.size());
  sample.frame = build_tcp_frame(spec, data, 1000 + seq % 400);
  return sample;
}

std::vector<std::byte> build_trace(std::uint32_t samples, std::size_t batch) {
  std::stringstream buffer;
  {
    TraceWriter writer{buffer, Ipv4Addr{172, 16, 0, 1}, batch};
    for (std::uint32_t i = 0; i < samples; ++i) writer.write(make_sample(i));
  }
  const std::string raw = buffer.str();
  std::vector<std::byte> bytes(raw.size());
  std::memcpy(bytes.data(), raw.data(), raw.size());
  return bytes;
}

std::stringstream to_stream(const std::vector<std::byte>& bytes) {
  return std::stringstream{
      std::string{reinterpret_cast<const char*>(bytes.data()), bytes.size()}};
}

struct ReadOutcome {
  std::uint64_t delivered = 0;
  bool ok = false;
  ReaderStats stats;
};

ReadOutcome read_all(const std::vector<std::byte>& bytes, ReadPolicy policy) {
  auto stream = to_stream(bytes);
  TraceReader reader{stream, policy};
  ReadOutcome outcome;
  outcome.delivered = reader.for_each([](const FlowSample&) {});
  outcome.ok = reader.ok();
  outcome.stats = reader.stats();
  return outcome;
}

/// Every byte of the input is either the header, part of a delivered
/// record, or counted as skipped — the invariant that makes the
/// ingest-health table trustworthy.
void expect_exact_accounting(const ReadOutcome& outcome, std::size_t input) {
  EXPECT_EQ(kHeaderBytes + outcome.stats.bytes_delivered +
                outcome.stats.bytes_skipped,
            input);
}

TEST(FaultInjector, CorruptionMatrixAccountsForEveryByte) {
  const std::vector<std::byte> intact = build_trace(/*samples=*/140,
                                                    /*batch=*/7);
  struct Named {
    const char* name;
    FaultMix mix;
  };
  FaultMix bit_flip, truncate, bogus, duplicate, reorder, eof, everything;
  bit_flip.bit_flip = 0.3;
  truncate.truncate = 0.3;
  bogus.bogus_length = 0.3;
  duplicate.duplicate = 0.3;
  reorder.reorder = 0.3;
  eof.mid_file_eof = 0.1;
  everything = FaultMix{0.2, 0.2, 0.2, 0.2, 0.2, 0.05};
  const Named matrix[] = {
      {"bit_flip", bit_flip},   {"truncate", truncate},
      {"bogus_length", bogus},  {"duplicate", duplicate},
      {"reorder", reorder},     {"mid_file_eof", eof},
      {"default_mix", FaultMix::default_mix()},
      {"everything", everything},
  };

  for (const auto& [name, mix] : matrix) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1337ULL}) {
      SCOPED_TRACE(std::string{name} + " seed " + std::to_string(seed));
      const FaultInjector injector{seed, mix};
      std::vector<std::byte> corrupted;
      const auto report = injector.corrupt(intact, corrupted);
      ASSERT_TRUE(report);
      EXPECT_EQ(report->records_in, 20u);
      EXPECT_EQ(report->bytes_in, intact.size());
      EXPECT_EQ(report->bytes_out, corrupted.size());

      // A lenient reader must reach end-of-input without failing and
      // account for every byte, no matter the damage.
      const auto outcome = read_all(corrupted, ReadPolicy::lenient());
      EXPECT_TRUE(outcome.ok);
      expect_exact_accounting(outcome, corrupted.size());
      EXPECT_EQ(outcome.delivered, outcome.stats.samples);
    }
  }
}

TEST(FaultInjector, SameSeedSameBytesDifferentSeedDifferentBytes) {
  const std::vector<std::byte> intact = build_trace(140, 7);
  // Flip bits in every record so different seeds must diverge (the
  // default mix is sparse enough that two seeds can both draw zero
  // faults on a 20-record trace).
  FaultMix mix;
  mix.bit_flip = 1.0;
  const FaultInjector a{99, mix}, b{99, mix}, c{100, mix};
  std::vector<std::byte> out_a, out_b, out_c;
  ASSERT_TRUE(a.corrupt(intact, out_a));
  ASSERT_TRUE(b.corrupt(intact, out_b));
  ASSERT_TRUE(c.corrupt(intact, out_c));
  EXPECT_EQ(out_a, out_b);
  EXPECT_NE(out_a, out_c);
}

TEST(FaultInjector, RejectsNonTraceInput) {
  std::vector<std::byte> junk(64, std::byte{0x5a});
  std::vector<std::byte> out;
  EXPECT_FALSE(FaultInjector{1}.corrupt(junk, out));
}

TEST(FaultInjector, ZeroMixIsTheIdentity) {
  const std::vector<std::byte> intact = build_trace(40, 8);
  std::vector<std::byte> out;
  const auto report = FaultInjector{5, FaultMix::none()}.corrupt(intact, out);
  ASSERT_TRUE(report);
  EXPECT_EQ(report->faults(), 0u);
  EXPECT_EQ(out, intact);
}

// ---- targeted single-record damage: exact taxonomy and resync math ----

/// Offsets of each [length][payload] record in an intact trace.
std::vector<std::pair<std::size_t, std::uint32_t>> record_index(
    const std::vector<std::byte>& bytes) {
  std::vector<std::pair<std::size_t, std::uint32_t>> records;
  std::size_t at = kHeaderBytes;
  while (at < bytes.size()) {
    const std::uint32_t length =
        (std::to_integer<std::uint32_t>(bytes[at]) << 24) |
        (std::to_integer<std::uint32_t>(bytes[at + 1]) << 16) |
        (std::to_integer<std::uint32_t>(bytes[at + 2]) << 8) |
        std::to_integer<std::uint32_t>(bytes[at + 3]);
    records.emplace_back(at, length);
    at += 4 + length;
  }
  return records;
}

TEST(TraceResync, SkipsExactlyTheCorruptRecord) {
  // 10 records of 5 samples; break record 2's payload (version word).
  std::vector<std::byte> bytes = build_trace(50, 5);
  const auto records = record_index(bytes);
  ASSERT_EQ(records.size(), 10u);
  const auto [offset, length] = records[2];
  bytes[offset + 4] ^= std::byte{0xff};  // first payload byte: the version

  const auto outcome = read_all(bytes, ReadPolicy::lenient());
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.delivered, 45u);  // all but record 2's five samples
  EXPECT_EQ(outcome.stats.decode_errors, 1u);
  EXPECT_EQ(outcome.stats.resyncs, 1u);
  EXPECT_EQ(outcome.stats.bytes_skipped, 4u + length);
  expect_exact_accounting(outcome, bytes.size());
}

TEST(TraceResync, StrictPolicyStopsAtFirstError) {
  std::vector<std::byte> bytes = build_trace(50, 5);
  const auto records = record_index(bytes);
  bytes[records[2].first + 4] ^= std::byte{0xff};

  const auto outcome = read_all(bytes, ReadPolicy::strict());
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.delivered, 10u);  // records 0 and 1 only
  EXPECT_EQ(outcome.stats.errors(), 1u);
  EXPECT_EQ(outcome.stats.resyncs, 0u);
}

TEST(TraceResync, ErrorBudgetIsExact) {
  // Break records 2 and 5: budget 1 dies on the second error, budget 2
  // rides out both.
  std::vector<std::byte> bytes = build_trace(50, 5);
  const auto records = record_index(bytes);
  bytes[records[2].first + 4] ^= std::byte{0xff};
  bytes[records[5].first + 4] ^= std::byte{0xff};

  const auto short_budget = read_all(bytes, ReadPolicy{1});
  EXPECT_FALSE(short_budget.ok);
  EXPECT_EQ(short_budget.delivered, 20u);  // records 0,1,3,4
  EXPECT_EQ(short_budget.stats.errors(), 2u);
  EXPECT_EQ(short_budget.stats.resyncs, 1u);

  const auto enough = read_all(bytes, ReadPolicy{2});
  EXPECT_TRUE(enough.ok);
  EXPECT_EQ(enough.delivered, 40u);
  EXPECT_EQ(enough.stats.resyncs, 2u);
  expect_exact_accounting(enough, bytes.size());
}

TEST(TraceResync, LenientTailTruncationAccountsRemainder) {
  std::vector<std::byte> bytes = build_trace(40, 4);
  const std::size_t cut = bytes.size() - 30;  // inside the last record
  bytes.resize(cut);

  const auto outcome = read_all(bytes, ReadPolicy::lenient());
  EXPECT_TRUE(outcome.ok);  // lenient: damage noted, not fatal
  EXPECT_EQ(outcome.stats.truncated, 1u);
  EXPECT_GT(outcome.stats.bytes_skipped, 0u);
  expect_exact_accounting(outcome, bytes.size());
}

TEST(TraceResync, DuplicatedRecordsDeliverTwice) {
  const std::vector<std::byte> intact = build_trace(30, 5);
  FaultMix mix;
  mix.duplicate = 1.0;
  std::vector<std::byte> corrupted;
  const auto report = FaultInjector{3, mix}.corrupt(intact, corrupted);
  ASSERT_TRUE(report);
  EXPECT_EQ(report->duplicates, 6u);

  const auto outcome = read_all(corrupted, ReadPolicy::lenient());
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.delivered, 60u);
  EXPECT_EQ(outcome.stats.errors(), 0u);
  expect_exact_accounting(outcome, corrupted.size());
}

}  // namespace
}  // namespace ixp::sflow
