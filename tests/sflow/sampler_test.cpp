#include "sflow/sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ixp::sflow {
namespace {

TEST(Sampler, DefaultsToPaperRate) {
  const Sampler sampler;
  EXPECT_EQ(sampler.rate(), 16384u);
  EXPECT_DOUBLE_EQ(sampler.probability(), 1.0 / 16384.0);
  EXPECT_DOUBLE_EQ(sampler.expansion(), 16384.0);
}

TEST(Sampler, ZeroRateClampsToOne) {
  const Sampler sampler{0};
  EXPECT_EQ(sampler.rate(), 1u);
}

TEST(Sampler, RateOneSamplesEverything) {
  const Sampler sampler{1};
  util::Rng rng{1};
  EXPECT_EQ(sampler.sample_flow(rng, 1000), 1000u);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(sampler.sample_packet(rng));
}

TEST(Sampler, FlowSamplingMatchesExpectation) {
  const Sampler sampler{16384};
  util::Rng rng{2};
  // A flow of 16.384M packets should yield ~1000 samples.
  double total = 0.0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i)
    total += static_cast<double>(sampler.sample_flow(rng, 16384000));
  const double mean = total / kTrials;
  EXPECT_NEAR(mean, 1000.0, 5.0 * std::sqrt(1000.0 / kTrials));
}

TEST(Sampler, EmptyFlowYieldsNothing) {
  const Sampler sampler{100};
  util::Rng rng{3};
  EXPECT_EQ(sampler.sample_flow(rng, 0), 0u);
}

// DESIGN.md ablation #1: binomial thinning vs. per-packet Bernoulli are
// statistically indistinguishable. Compare the two estimators' means on
// identical workloads.
TEST(Sampler, BinomialThinningAgreesWithPerPacketSampling) {
  const Sampler sampler{128};
  util::Rng rng_flow{4};
  util::Rng rng_packet{5};
  constexpr std::uint64_t kPackets = 100000;
  constexpr int kTrials = 30;

  double flow_total = 0.0;
  double packet_total = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    flow_total += static_cast<double>(sampler.sample_flow(rng_flow, kPackets));
    std::uint64_t count = 0;
    for (std::uint64_t p = 0; p < kPackets; ++p)
      count += sampler.sample_packet(rng_packet) ? 1 : 0;
    packet_total += static_cast<double>(count);
  }
  const double expected = kTrials * kPackets / 128.0;
  // Both estimators within 5 sigma of the true mean.
  const double sigma = std::sqrt(expected);
  EXPECT_NEAR(flow_total, expected, 5.0 * sigma);
  EXPECT_NEAR(packet_total, expected, 5.0 * sigma);
}

}  // namespace
}  // namespace ixp::sflow
