// Fuzz-style robustness: the datagram and trace decoders must survive
// arbitrary mutations of valid inputs — rejecting cleanly (nullopt /
// ok()==false), never crashing, never over-reading.
#include <gtest/gtest.h>

#include <sstream>

#include "sflow/datagram.hpp"
#include "sflow/trace.hpp"
#include "util/rng.hpp"

namespace ixp::sflow {
namespace {

Datagram valid_datagram() {
  Datagram d;
  d.agent = net::Ipv4Addr{10, 0, 0, 1};
  d.sequence = 3;
  for (std::uint32_t i = 0; i < 4; ++i) {
    FlowSample sample;
    sample.sequence = i;
    sample.sampling_rate = 16384;
    sample.frame.frame_length = 900;
    sample.frame.captured = 64;
    for (std::size_t b = 0; b < 64; ++b)
      sample.frame.data[b] = static_cast<std::byte>(b + i);
    d.samples.push_back(sample);
  }
  d.counters.push_back(CounterSample{1, 10, 20, 30, 40});
  return d;
}

class DatagramFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DatagramFuzzTest, SingleByteMutationsNeverCrash) {
  util::Rng rng{GetParam()};
  const auto baseline = encode(valid_datagram());
  for (int trial = 0; trial < 500; ++trial) {
    auto bytes = baseline;
    const std::size_t at = rng.next_below(bytes.size());
    bytes[at] ^= static_cast<std::byte>(1 + rng.next_below(255));
    const auto decoded = decode(bytes);
    if (!decoded) continue;  // rejected: fine
    // Accepted mutations must still be internally consistent.
    for (const auto& sample : decoded->samples)
      EXPECT_LE(sample.frame.captured, kCaptureBytes);
  }
}

TEST_P(DatagramFuzzTest, RandomBytesAreRejectedOrSane) {
  util::Rng rng{GetParam() ^ 0x9999};
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::byte> junk(rng.next_below(300));
    for (auto& b : junk) b = static_cast<std::byte>(rng.next_below(256));
    const auto decoded = decode(junk);
    if (decoded) {
      for (const auto& sample : decoded->samples)
        EXPECT_LE(sample.frame.captured, kCaptureBytes);
    }
  }
}

TEST_P(DatagramFuzzTest, EveryTruncationRejected) {
  (void)GetParam();
  const auto bytes = encode(valid_datagram());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode(std::span<const std::byte>{bytes}.first(cut)))
        << "cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatagramFuzzTest,
                         ::testing::Values(11u, 22u, 33u));

TEST(TraceFuzz, MutatedTracesNeverDeliverOversizedFrames) {
  std::stringstream buffer;
  {
    TraceWriter writer{buffer, net::Ipv4Addr{1, 1, 1, 1}, 4};
    Datagram d = valid_datagram();
    for (const auto& sample : d.samples)
      for (int k = 0; k < 3; ++k) writer.write(sample);
  }
  const std::string baseline = buffer.str();
  util::Rng rng{77};
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = baseline;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    std::stringstream in{mutated};
    TraceReader reader{in};
    std::uint64_t delivered = 0;
    if (reader.ok()) {
      delivered = reader.for_each([&](const FlowSample& sample) {
        EXPECT_LE(sample.frame.captured, kCaptureBytes);
      });
    }
    EXPECT_LE(delivered, 12u);  // never more samples than were written
  }
}

}  // namespace
}  // namespace ixp::sflow
