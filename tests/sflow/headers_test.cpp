#include "sflow/headers.hpp"

#include <gtest/gtest.h>

#include <array>

namespace ixp::sflow {
namespace {

using net::Ipv4Addr;

TEST(MacAddr, FromIdIsDeterministicLocalUnicast) {
  const MacAddr a = MacAddr::from_id(42);
  const MacAddr b = MacAddr::from_id(42);
  const MacAddr c = MacAddr::from_id(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.octets()[0] & 0x02, 0x02);  // locally administered
  EXPECT_EQ(a.octets()[0] & 0x01, 0x00);  // unicast
}

TEST(MacAddr, ToStringFormat) {
  const MacAddr mac{std::array<std::uint8_t, 6>{0x02, 0xab, 0x00, 0x01, 0x02, 0xff}};
  EXPECT_EQ(mac.to_string(), "02:ab:00:01:02:ff");
}

TEST(EthernetHeader, RoundTrips) {
  EthernetHeader h;
  h.dst = MacAddr::from_id(1);
  h.src = MacAddr::from_id(2);
  h.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  std::array<std::byte, EthernetHeader::kSize> buf{};
  h.serialize(buf);
  const auto parsed = EthernetHeader::parse(buf);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->ether_type, h.ether_type);
}

TEST(EthernetHeader, ParseRejectsShortBuffer) {
  std::array<std::byte, EthernetHeader::kSize - 1> buf{};
  EXPECT_FALSE(EthernetHeader::parse(buf));
}

TEST(Ipv4Header, RoundTripsWithValidChecksum) {
  Ipv4Header h;
  h.total_length = 1500;
  h.identification = 0x1234;
  h.ttl = 57;
  h.protocol = static_cast<std::uint8_t>(IpProto::kTcp);
  h.src = Ipv4Addr{10, 0, 0, 1};
  h.dst = Ipv4Addr{192, 168, 1, 1};

  std::array<std::byte, Ipv4Header::kSize> buf{};
  h.serialize(buf);
  const auto parsed = Ipv4Header::parse(buf);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->total_length, 1500);
  EXPECT_EQ(parsed->identification, 0x1234);
  EXPECT_EQ(parsed->ttl, 57);
  EXPECT_EQ(parsed->protocol, static_cast<std::uint8_t>(IpProto::kTcp));
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
}

TEST(Ipv4Header, ParseRejectsCorruptedChecksum) {
  Ipv4Header h;
  h.total_length = 100;
  h.src = Ipv4Addr{1, 2, 3, 4};
  h.dst = Ipv4Addr{5, 6, 7, 8};
  std::array<std::byte, Ipv4Header::kSize> buf{};
  h.serialize(buf);
  buf[16] ^= std::byte{0x01};  // flip a destination-address bit
  EXPECT_FALSE(Ipv4Header::parse(buf));
}

TEST(Ipv4Header, ParseRejectsWrongVersion) {
  std::array<std::byte, Ipv4Header::kSize> buf{};
  buf[0] = std::byte{0x65};  // version 6
  EXPECT_FALSE(Ipv4Header::parse(buf));
}

TEST(Ipv4Header, ParseRejectsShortBuffer) {
  std::array<std::byte, Ipv4Header::kSize - 1> buf{};
  EXPECT_FALSE(Ipv4Header::parse(buf));
}

TEST(Ipv4Header, ChecksumOfZeroHeaderIsAllOnes) {
  std::array<std::byte, Ipv4Header::kSize> zero{};
  EXPECT_EQ(Ipv4Header::checksum(zero), 0xffff);
}

TEST(TcpHeader, RoundTrips) {
  TcpHeader h;
  h.src_port = 49152;
  h.dst_port = 80;
  h.seq = 0xdeadbeef;
  h.ack = 0xfeedface;
  h.flags = TcpHeader::kSyn | TcpHeader::kAck;
  h.window = 29200;

  std::array<std::byte, TcpHeader::kSize> buf{};
  h.serialize(buf);
  const auto parsed = TcpHeader::parse(buf);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src_port, 49152);
  EXPECT_EQ(parsed->dst_port, 80);
  EXPECT_EQ(parsed->seq, 0xdeadbeefu);
  EXPECT_EQ(parsed->ack, 0xfeedfaceu);
  EXPECT_EQ(parsed->flags, TcpHeader::kSyn | TcpHeader::kAck);
  EXPECT_EQ(parsed->window, 29200);
}

TEST(TcpHeader, ParseRejectsBadOffset) {
  std::array<std::byte, TcpHeader::kSize> buf{};
  buf[12] = std::byte{0x40};  // data offset 4 < 5
  EXPECT_FALSE(TcpHeader::parse(buf));
}

TEST(UdpHeader, RoundTrips) {
  UdpHeader h;
  h.src_port = 53;
  h.dst_port = 33000;
  h.length = 512;
  std::array<std::byte, UdpHeader::kSize> buf{};
  h.serialize(buf);
  const auto parsed = UdpHeader::parse(buf);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src_port, 53);
  EXPECT_EQ(parsed->dst_port, 33000);
  EXPECT_EQ(parsed->length, 512);
}

TEST(UdpHeader, ParseRejectsLengthBelowHeader) {
  UdpHeader h;
  h.length = 4;  // impossible: below the 8-byte header
  std::array<std::byte, UdpHeader::kSize> buf{};
  h.serialize(buf);
  EXPECT_FALSE(UdpHeader::parse(buf));
}

}  // namespace
}  // namespace ixp::sflow
