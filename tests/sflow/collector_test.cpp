#include "sflow/collector.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace ixp::sflow {
namespace {

using net::Ipv4Addr;

Datagram make_datagram(Ipv4Addr agent, std::uint32_t sequence,
                       std::size_t flows = 2, std::size_t counters = 1) {
  Datagram d;
  d.agent = agent;
  d.sequence = sequence;
  for (std::size_t i = 0; i < flows; ++i) {
    FlowSample sample;
    sample.sequence = sequence * 100 + static_cast<std::uint32_t>(i);
    sample.sampling_rate = 16384;
    sample.frame.frame_length = 100;
    sample.frame.captured = 0;
    d.samples.push_back(sample);
  }
  for (std::size_t i = 0; i < counters; ++i)
    d.counters.push_back(CounterSample{static_cast<std::uint32_t>(i), 1, 2, 3, 4});
  return d;
}

TEST(Collector, DispatchesFlowAndCounterSamples) {
  std::size_t flows = 0;
  std::size_t counters = 0;
  Collector collector{[&](const FlowSample&) { ++flows; },
                      [&](Ipv4Addr, const CounterSample&) { ++counters; }};
  collector.ingest(make_datagram(Ipv4Addr{1, 1, 1, 1}, 0, 3, 2));
  EXPECT_EQ(flows, 3u);
  EXPECT_EQ(counters, 2u);
  const auto stats = collector.stats();
  EXPECT_EQ(stats.datagrams, 1u);
  EXPECT_EQ(stats.flow_samples, 3u);
  EXPECT_EQ(stats.counter_samples, 2u);
  EXPECT_EQ(stats.agents, 1u);
  EXPECT_EQ(stats.lost_datagrams, 0u);
}

TEST(Collector, CountsSequenceGapsPerAgent) {
  Collector collector{[](const FlowSample&) {}};
  const Ipv4Addr a{1, 1, 1, 1};
  const Ipv4Addr b{2, 2, 2, 2};
  collector.ingest(make_datagram(a, 0));
  collector.ingest(make_datagram(a, 1));
  collector.ingest(make_datagram(a, 5));  // 3 lost (2, 3, 4)
  collector.ingest(make_datagram(b, 10)); // first from b: no gap
  collector.ingest(make_datagram(b, 11));
  const auto stats = collector.stats();
  EXPECT_EQ(stats.lost_datagrams, 3u);
  EXPECT_EQ(stats.agents, 2u);
}

TEST(Collector, ReorderedDatagramIsNotAGap) {
  Collector collector{[](const FlowSample&) {}};
  const Ipv4Addr a{1, 1, 1, 1};
  collector.ingest(make_datagram(a, 0));
  collector.ingest(make_datagram(a, 2));  // gap of 1
  collector.ingest(make_datagram(a, 1));  // late arrival: no extra gap
  collector.ingest(make_datagram(a, 3));  // continues from 2: no gap
  EXPECT_EQ(collector.stats().lost_datagrams, 1u);
}

TEST(Collector, RawBytesRoundTrip) {
  std::size_t flows = 0;
  Collector collector{[&](const FlowSample&) { ++flows; }};
  const auto bytes = encode(make_datagram(Ipv4Addr{9, 9, 9, 9}, 7, 4, 0));
  EXPECT_TRUE(collector.ingest(std::span<const std::byte>{bytes}));
  EXPECT_EQ(flows, 4u);
}

TEST(Collector, CorruptPayloadCounted) {
  Collector collector{[](const FlowSample&) {}};
  const std::array<std::byte, 7> junk{};
  EXPECT_FALSE(collector.ingest(std::span<const std::byte>{junk}));
  EXPECT_EQ(collector.stats().decode_errors, 1u);
  EXPECT_EQ(collector.stats().datagrams, 0u);
}

TEST(Collector, EvictsOldestAgentAtTheCap) {
  // Cap of 2 tracked agents: a forged-agent flood must not grow the
  // sequence map without bound, and evictions are visible in the stats.
  Collector collector{[](const FlowSample&) {}, {}, /*max_agents=*/2};
  const Ipv4Addr a{1, 1, 1, 1};
  const Ipv4Addr b{2, 2, 2, 2};
  const Ipv4Addr c{3, 3, 3, 3};
  collector.ingest(make_datagram(a, 0));
  collector.ingest(make_datagram(b, 0));
  collector.ingest(make_datagram(c, 0));  // evicts a (oldest)
  auto stats = collector.stats();
  EXPECT_EQ(stats.agents, 2u);
  EXPECT_EQ(stats.evicted_agents, 1u);

  // A re-appearing evicted agent restarts from scratch: no phantom gap
  // from its pre-eviction sequence number.
  collector.ingest(make_datagram(a, 1000));  // evicts b
  stats = collector.stats();
  EXPECT_EQ(stats.agents, 2u);
  EXPECT_EQ(stats.evicted_agents, 2u);
  EXPECT_EQ(stats.lost_datagrams, 0u);
}

TEST(Collector, FloodOfForgedAgentsStaysBounded) {
  Collector collector{[](const FlowSample&) {}, {}, /*max_agents=*/16};
  for (std::uint32_t i = 0; i < 1000; ++i)
    collector.ingest(make_datagram(Ipv4Addr{10, 0,
                                            static_cast<std::uint8_t>(i >> 8),
                                            static_cast<std::uint8_t>(i)},
                                   0));
  const auto stats = collector.stats();
  EXPECT_EQ(stats.agents, 16u);
  EXPECT_EQ(stats.evicted_agents, 1000u - 16u);
  EXPECT_EQ(stats.datagrams, 1000u);
}

TEST(Collector, NoCounterSinkIsFine) {
  Collector collector{[](const FlowSample&) {}};
  collector.ingest(make_datagram(Ipv4Addr{1, 1, 1, 1}, 0, 1, 3));
  EXPECT_EQ(collector.stats().counter_samples, 3u);  // counted, not dispatched
}

TEST(Collector, EvictionHookObservesVictimAndLastSequence) {
  // The serve service logs and counts sequence-tracking evictions through
  // this hook; it must fire once per eviction with the FIFO victim and
  // the sequence number tracking had reached for it.
  Collector collector{[](const FlowSample&) {}, {}, /*max_agents=*/2};
  std::vector<std::pair<Ipv4Addr, std::uint32_t>> evictions;
  collector.set_eviction_hook([&](Ipv4Addr agent, std::uint32_t last_seq) {
    evictions.emplace_back(agent, last_seq);
  });

  const Ipv4Addr a{1, 1, 1, 1};
  const Ipv4Addr b{2, 2, 2, 2};
  const Ipv4Addr c{3, 3, 3, 3};
  collector.ingest(make_datagram(a, 5));
  collector.ingest(make_datagram(a, 6));  // advances a's tracked sequence
  collector.ingest(make_datagram(b, 0));
  EXPECT_TRUE(evictions.empty());  // at the cap, nothing over it yet

  collector.ingest(make_datagram(c, 0));  // evicts a (oldest)
  ASSERT_EQ(evictions.size(), 1u);
  EXPECT_EQ(evictions[0].first, a);
  EXPECT_EQ(evictions[0].second, 6u);

  collector.ingest(make_datagram(a, 100));  // evicts b
  ASSERT_EQ(evictions.size(), 2u);
  EXPECT_EQ(evictions[1].first, b);
  EXPECT_EQ(evictions[1].second, 0u);
  EXPECT_EQ(collector.stats().evicted_agents, 2u);
}

}  // namespace
}  // namespace ixp::sflow
