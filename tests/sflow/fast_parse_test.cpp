// Differential suite: parse_frame_fast vs parse_frame (DESIGN.md §14).
// The fast decoder must be byte-identical to the layer-by-layer parser
// on every capture — clean builder output, random binary junk, and
// deliberate single-field corruptions that straddle the fast-shape
// boundary (checksum, IHL, EtherType, truncation).
#include <gtest/gtest.h>

#include <cstring>
#include <optional>

#include "sflow/fast_parse.hpp"
#include "sflow/frame.hpp"
#include "util/rng.hpp"

namespace ixp::sflow {
namespace {

void expect_same(const SampledFrame& frame, const char* what) {
  const auto slow = parse_frame(frame);
  const auto fast = parse_frame_fast(frame);
  ASSERT_EQ(slow.has_value(), fast.has_value()) << what;
  if (!slow) return;
  EXPECT_EQ(slow->eth.src, fast->eth.src) << what;
  EXPECT_EQ(slow->eth.dst, fast->eth.dst) << what;
  EXPECT_EQ(slow->eth.ether_type, fast->eth.ether_type) << what;
  ASSERT_EQ(slow->is_ipv4(), fast->is_ipv4()) << what;
  if (slow->is_ipv4()) {
    EXPECT_EQ(slow->ip->dscp, fast->ip->dscp) << what;
    EXPECT_EQ(slow->ip->total_length, fast->ip->total_length) << what;
    EXPECT_EQ(slow->ip->identification, fast->ip->identification) << what;
    EXPECT_EQ(slow->ip->ttl, fast->ip->ttl) << what;
    EXPECT_EQ(slow->ip->protocol, fast->ip->protocol) << what;
    EXPECT_EQ(slow->ip->src, fast->ip->src) << what;
    EXPECT_EQ(slow->ip->dst, fast->ip->dst) << what;
  }
  ASSERT_EQ(slow->is_tcp(), fast->is_tcp()) << what;
  if (slow->is_tcp()) {
    EXPECT_EQ(slow->tcp->src_port, fast->tcp->src_port) << what;
    EXPECT_EQ(slow->tcp->dst_port, fast->tcp->dst_port) << what;
    EXPECT_EQ(slow->tcp->seq, fast->tcp->seq) << what;
    EXPECT_EQ(slow->tcp->ack, fast->tcp->ack) << what;
    EXPECT_EQ(slow->tcp->flags, fast->tcp->flags) << what;
    EXPECT_EQ(slow->tcp->window, fast->tcp->window) << what;
  }
  ASSERT_EQ(slow->is_udp(), fast->is_udp()) << what;
  if (slow->is_udp()) {
    EXPECT_EQ(slow->udp->src_port, fast->udp->src_port) << what;
    EXPECT_EQ(slow->udp->dst_port, fast->udp->dst_port) << what;
    EXPECT_EQ(slow->udp->length, fast->udp->length) << what;
  }
  // Payload views must alias the same bytes of the same capture.
  EXPECT_EQ(slow->payload.data(), fast->payload.data()) << what;
  EXPECT_EQ(slow->payload.size(), fast->payload.size()) << what;
}

FrameSpec spec_of(util::Rng& rng) {
  FrameSpec spec;
  spec.src_mac = MacAddr::from_id(rng());
  spec.dst_mac = MacAddr::from_id(rng());
  spec.src_ip = net::Ipv4Addr{static_cast<std::uint32_t>(rng())};
  spec.dst_ip = net::Ipv4Addr{static_cast<std::uint32_t>(rng())};
  spec.src_port = static_cast<std::uint16_t>(rng());
  spec.dst_port = static_cast<std::uint16_t>(rng());
  return spec;
}

TEST(FastParseDifferential, CleanBuilderFrames) {
  util::Rng rng{11};
  std::byte payload[100];
  for (int i = 0; i < 500; ++i) {
    for (auto& b : payload) b = static_cast<std::byte>(rng());
    const std::size_t len = rng.next_below(sizeof payload + 1);
    const std::size_t total = len + rng.next_below(1200);
    const FrameSpec spec = spec_of(rng);
    expect_same(build_tcp_frame(spec, {payload, len}, total,
                                static_cast<std::uint8_t>(rng())),
                "tcp");
    expect_same(build_udp_frame(spec, {payload, len}, total), "udp");
    expect_same(build_ipv4_frame(spec, IpProto::kIcmp, rng.next_below(500)),
                "icmp");
    expect_same(build_ipv4_frame(spec, IpProto::kGre, rng.next_below(500)),
                "gre");
    expect_same(build_other_frame(spec.src_mac, spec.dst_mac, EtherType::kIpv6,
                                  rng.next_below(200)),
                "ipv6");
    expect_same(build_other_frame(spec.src_mac, spec.dst_mac, EtherType::kArp,
                                  28),
                "arp");
  }
}

TEST(FastParseDifferential, SingleByteCorruptions) {
  // Every header byte of a valid TCP frame, flipped one at a time: the
  // fast-shape gates (EtherType, version/IHL, checksum, data offset)
  // must shunt each mutant to the same verdict the scalar parser gives.
  util::Rng rng{12};
  std::byte payload[64];
  for (auto& b : payload) b = static_cast<std::byte>(rng());
  const SampledFrame clean =
      build_tcp_frame(spec_of(rng), {payload, sizeof payload}, 700);
  for (std::size_t at = 0; at < 54; ++at) {
    for (const std::uint8_t bit : {0x01u, 0x10u, 0x80u}) {
      SampledFrame mutant = clean;
      mutant.data[at] ^= static_cast<std::byte>(bit);
      expect_same(mutant, "bitflip");
    }
  }
}

TEST(FastParseDifferential, TruncatedCaptures) {
  util::Rng rng{13};
  std::byte payload[74];
  for (auto& b : payload) b = static_cast<std::byte>(rng());
  const FrameSpec spec = spec_of(rng);
  for (const SampledFrame& clean :
       {build_tcp_frame(spec, {payload, sizeof payload}, 900),
        build_udp_frame(spec, {payload, sizeof payload}, 900)}) {
    for (std::uint16_t cut = 0; cut <= clean.captured; ++cut) {
      SampledFrame mutant = clean;
      mutant.captured = cut;
      expect_same(mutant, "truncated");
    }
  }
}

TEST(FastParseDifferential, RandomJunkCaptures) {
  util::Rng rng{14};
  for (int i = 0; i < 20000; ++i) {
    SampledFrame frame;
    frame.captured = static_cast<std::uint16_t>(rng.next_below(kCaptureBytes + 1));
    frame.frame_length = static_cast<std::uint16_t>(rng());
    for (std::uint16_t b = 0; b < frame.captured; ++b)
      frame.data[b] = static_cast<std::byte>(rng());
    // Half the trials steer the shape-selection bytes toward the fast
    // lane so the checksum gate sees near-valid headers, not just junk.
    if (i % 2 == 0 && frame.captured >= 15) {
      frame.data[12] = std::byte{0x08};
      frame.data[13] = std::byte{0x00};
      frame.data[14] = std::byte{0x45};
      if (frame.captured >= 24 && i % 4 == 0)
        frame.data[23] = std::byte{i % 8 == 0 ? 6 : 17};  // TCP / UDP
    }
    expect_same(frame, "junk");
  }
}

TEST(FastParseDifferential, IhlWithOptionsTakesSlowLane) {
  // IHL > 5 is outside the fast shape; the fallback must still parse it
  // exactly as parse_frame does (checksum over the longer header).
  util::Rng rng{15};
  std::byte payload[32];
  for (auto& b : payload) b = static_cast<std::byte>(rng());
  SampledFrame frame = build_tcp_frame(spec_of(rng), {payload, sizeof payload}, 400);
  frame.data[14] = std::byte{0x46};  // IHL 6: 24-byte header
  expect_same(frame, "ihl6-bad-checksum");
  // Re-checksum over 24 bytes so the slow lane accepts it.
  frame.data[24] = std::byte{0};
  frame.data[25] = std::byte{0};
  const std::uint16_t sum =
      Ipv4Header::checksum(std::span<const std::byte>{frame.data}.subspan(14, 24));
  frame.data[24] = static_cast<std::byte>(sum >> 8);
  frame.data[25] = static_cast<std::byte>(sum & 0xff);
  expect_same(frame, "ihl6-good-checksum");
}

}  // namespace
}  // namespace ixp::sflow
