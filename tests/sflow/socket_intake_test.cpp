// The intake layer under the collector service: replay framing, the
// bounded per-agent queues with their exact-accounting invariant
// (received == taken + dropped, per agent and in total), and the POSIX
// socket round trip. Socket tests skip cleanly where the environment
// forbids binding; everything else exercises the same code paths through
// parse_frame() and AgentQueues directly.
#include "sflow/socket_intake.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "sflow/collector.hpp"
#include "sflow/datagram.hpp"

namespace ixp::sflow {
namespace {

using net::Ipv4Addr;

Datagram make_datagram(Ipv4Addr agent, std::uint32_t sequence) {
  Datagram d;
  d.agent = agent;
  d.sequence = sequence;
  FlowSample sample;
  sample.sequence = sequence;
  sample.sampling_rate = 16384;
  sample.frame.frame_length = 100;
  sample.frame.captured = 0;
  d.samples.push_back(sample);
  return d;
}

std::vector<std::byte> payload_for(Ipv4Addr agent, std::uint32_t sequence) {
  return encode(make_datagram(agent, sequence));
}

DatagramEnvelope envelope_for(Ipv4Addr agent, std::uint32_t sequence) {
  return parse_frame(payload_for(agent, sequence));
}

TEST(ReplayFrame, RoundTripsOffsetAndPayload) {
  const Ipv4Addr agent{192, 0, 2, 1};
  const auto payload = payload_for(agent, 42);
  const std::uint64_t offset = 0x0000'1234'5678'9ABCull;

  const auto frame = encode_replay_frame(offset, payload);
  ASSERT_EQ(frame.size(), kReplayFrameHeaderBytes + payload.size());

  const auto envelope = parse_frame(frame);
  EXPECT_TRUE(envelope.framed());
  EXPECT_EQ(envelope.offset, offset);
  EXPECT_EQ(envelope.agent, agent);
  ASSERT_EQ(envelope.payload.size(), payload.size());
  EXPECT_EQ(envelope.payload, payload);
}

TEST(ReplayFrame, RawDatagramIsSelfDiscriminating) {
  // A raw sFlow payload starts with the version word (5), never with
  // kReplayMagic — parse_frame must pass it through unframed.
  const Ipv4Addr agent{192, 0, 2, 9};
  const auto payload = payload_for(agent, 7);
  const auto envelope = parse_frame(payload);
  EXPECT_FALSE(envelope.framed());
  EXPECT_EQ(envelope.offset, kNoReplayOffset);
  EXPECT_EQ(envelope.agent, agent);
  EXPECT_EQ(envelope.payload, payload);
}

TEST(ReplayFrame, TooShortForAgentPeekYieldsZeroAgent) {
  const std::vector<std::byte> stub(6);  // shorter than the agent field
  const auto envelope = parse_frame(stub);
  EXPECT_EQ(envelope.agent, Ipv4Addr{});
  EXPECT_EQ(envelope.payload.size(), stub.size());
}

TEST(AgentQueues, FifoAcrossAgents) {
  AgentQueues queues;
  queues.offer(envelope_for(Ipv4Addr{1, 1, 1, 1}, 0));
  queues.offer(envelope_for(Ipv4Addr{2, 2, 2, 2}, 0));
  queues.offer(envelope_for(Ipv4Addr{1, 1, 1, 1}, 1));

  DatagramEnvelope out;
  ASSERT_TRUE(queues.take(out));
  EXPECT_EQ(out.agent, (Ipv4Addr{1, 1, 1, 1}));
  ASSERT_TRUE(queues.take(out));
  EXPECT_EQ(out.agent, (Ipv4Addr{2, 2, 2, 2}));
  ASSERT_TRUE(queues.take(out));
  EXPECT_EQ(out.agent, (Ipv4Addr{1, 1, 1, 1}));
  EXPECT_FALSE(queues.try_take(out));
}

TEST(AgentQueues, FloodingAgentShedsOnlyItsOwnDatagrams) {
  // Capacity 2 per agent: agent A floods 5, agent B sends 2. A loses
  // exactly 3, B loses nothing, and the books balance exactly.
  AgentQueues queues{/*per_agent_capacity=*/2};
  const Ipv4Addr a{1, 1, 1, 1};
  const Ipv4Addr b{2, 2, 2, 2};
  int accepted = 0;
  for (std::uint32_t i = 0; i < 5; ++i)
    accepted += queues.offer(envelope_for(a, i)) ? 1 : 0;
  EXPECT_EQ(accepted, 2);
  EXPECT_TRUE(queues.offer(envelope_for(b, 0)));
  EXPECT_TRUE(queues.offer(envelope_for(b, 1)));

  DatagramEnvelope out;
  std::uint64_t taken = 0;
  while (queues.try_take(out)) ++taken;
  EXPECT_EQ(taken, 4u);

  const auto stats = queues.stats();
  ASSERT_EQ(stats.rows.size(), 2u);
  EXPECT_EQ(stats.rows[0].agent, a);
  EXPECT_EQ(stats.rows[0].counters.received, 5u);
  EXPECT_EQ(stats.rows[0].counters.dropped, 3u);
  EXPECT_EQ(stats.rows[0].counters.taken, 2u);
  EXPECT_EQ(stats.rows[1].agent, b);
  EXPECT_EQ(stats.rows[1].counters.dropped, 0u);
  for (const auto& row : stats.rows) {
    EXPECT_EQ(row.counters.received,
              row.counters.taken + row.counters.dropped);
  }
  const auto totals = stats.totals();
  EXPECT_EQ(totals.received, 7u);
  EXPECT_EQ(totals.received, totals.taken + totals.dropped);
}

TEST(AgentQueues, DrainingAConsumedSliceReopensIt) {
  AgentQueues queues{/*per_agent_capacity=*/1};
  const Ipv4Addr a{1, 1, 1, 1};
  EXPECT_TRUE(queues.offer(envelope_for(a, 0)));
  EXPECT_FALSE(queues.offer(envelope_for(a, 1)));  // full: dropped
  DatagramEnvelope out;
  ASSERT_TRUE(queues.take(out));
  EXPECT_TRUE(queues.offer(envelope_for(a, 2)));  // room again
  const auto totals = queues.stats().totals();
  EXPECT_EQ(totals.received, 3u);
  EXPECT_EQ(totals.dropped, 1u);
}

TEST(AgentQueues, CloseDrainsThenEndsAndCountsLateOffersAsDrops) {
  AgentQueues queues;
  queues.offer(envelope_for(Ipv4Addr{1, 1, 1, 1}, 0));
  queues.offer(envelope_for(Ipv4Addr{1, 1, 1, 1}, 1));
  queues.close();
  EXPECT_TRUE(queues.closed());
  EXPECT_FALSE(queues.offer(envelope_for(Ipv4Addr{1, 1, 1, 1}, 2)));

  DatagramEnvelope out;
  EXPECT_TRUE(queues.take(out));  // queued work still drains
  EXPECT_TRUE(queues.take(out));
  EXPECT_FALSE(queues.take(out));  // end of stream

  const auto totals = queues.stats().totals();
  EXPECT_EQ(totals.received, 3u);
  EXPECT_EQ(totals.taken, 2u);
  EXPECT_EQ(totals.dropped, 1u);
}

TEST(AgentQueues, CloseWakesABlockedTaker) {
  AgentQueues queues;
  std::thread taker{[&] {
    DatagramEnvelope out;
    EXPECT_FALSE(queues.take(out));
  }};
  queues.close();
  taker.join();
}

TEST(AgentQueues, AgentRowEvictionFoldsCountersIntoTotals) {
  // Row cap of 2: a third agent evicts the first row, but its counters
  // fold into the evicted bucket — the totals never lose a datagram,
  // even for envelopes taken after their agent's row is gone.
  AgentQueues queues{/*per_agent_capacity=*/8, /*max_agents=*/2};
  const Ipv4Addr a{1, 1, 1, 1};
  const Ipv4Addr b{2, 2, 2, 2};
  const Ipv4Addr c{3, 3, 3, 3};
  queues.offer(envelope_for(a, 0));
  queues.offer(envelope_for(b, 0));
  queues.offer(envelope_for(c, 0));  // evicts a's row; a's envelope queued

  DatagramEnvelope out;
  std::uint64_t taken = 0;
  while (queues.try_take(out)) ++taken;
  EXPECT_EQ(taken, 3u);

  const auto stats = queues.stats();
  EXPECT_EQ(stats.evicted_agents, 1u);
  ASSERT_EQ(stats.rows.size(), 2u);
  const auto totals = stats.totals();
  EXPECT_EQ(totals.received, 3u);
  EXPECT_EQ(totals.taken, 3u);
  EXPECT_EQ(totals.dropped, 0u);
}

TEST(AgentQueues, FloodAcrossManyEvictionsKeepsExactAccounting) {
  // Worst case for the accounting invariant: 12 agents hammering a table
  // capped at 3 rows, every one flooding past its per-agent capacity, with
  // a consumer interleaved so envelopes from long-evicted rows are still
  // being taken. received == taken + dropped must hold to the datagram,
  // and nothing may vanish into an evicted row.
  constexpr std::uint32_t kCapacity = 4;
  constexpr std::uint32_t kAgents = 12;
  constexpr std::uint32_t kPerAgent = 10;  // > kCapacity: forced drops
  AgentQueues queues{/*per_agent_capacity=*/kCapacity, /*max_agents=*/3};

  DatagramEnvelope out;
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t taken = 0;
  for (std::uint32_t a = 0; a < kAgents; ++a) {
    const Ipv4Addr agent{10, 0, 0, static_cast<std::uint8_t>(a + 1)};
    for (std::uint32_t i = 0; i < kPerAgent; ++i) {
      ++offered;
      accepted += queues.offer(envelope_for(agent, i)) ? 1 : 0;
    }
    // Drain one envelope per flooded agent: by the time later agents
    // arrive, these came from rows the table has already evicted.
    if (queues.try_take(out)) ++taken;
  }
  while (queues.try_take(out)) ++taken;

  const auto stats = queues.stats();
  EXPECT_GT(stats.evicted_agents, 0u);
  EXPECT_LE(stats.rows.size(), 3u);
  for (const auto& row : stats.rows) {
    EXPECT_EQ(row.counters.received,
              row.counters.taken + row.counters.dropped);
  }
  const auto totals = stats.totals();
  EXPECT_EQ(totals.received, offered);
  EXPECT_EQ(totals.taken, accepted);
  EXPECT_EQ(totals.taken, taken);
  EXPECT_EQ(totals.dropped, offered - accepted);
  EXPECT_EQ(totals.received, totals.taken + totals.dropped);
}

std::string temp_socket_path(const char* tag) {
  return testing::TempDir() + "ixpscope_intake_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(SocketIntake, UnixRoundTripCarriesFramedAndRawDatagrams) {
  SocketIntake intake;
  std::string error;
  const std::string path = temp_socket_path("unix");
  if (!intake.listen_unix(path, &error))
    GTEST_SKIP() << "cannot bind unix socket: " << error;

  auto sender = DatagramSender::connect_unix(path, &error);
  ASSERT_TRUE(sender.ok()) << error;

  const Ipv4Addr agent{192, 0, 2, 3};
  const auto payload = payload_for(agent, 11);
  ASSERT_TRUE(sender.send(payload));
  ASSERT_TRUE(sender.send_framed(0x1000, payload));

  std::vector<DatagramEnvelope> received;
  while (received.size() < 2) {
    const std::size_t n = intake.poll_once(
        2000, [&](DatagramEnvelope&& e) { received.push_back(std::move(e)); });
    ASSERT_GT(n, 0u) << "timed out waiting for datagrams";
  }
  ASSERT_EQ(received.size(), 2u);
  EXPECT_FALSE(received[0].framed());
  EXPECT_EQ(received[0].agent, agent);
  EXPECT_EQ(received[0].payload, payload);
  EXPECT_TRUE(received[1].framed());
  EXPECT_EQ(received[1].offset, 0x1000u);
  EXPECT_EQ(received[1].payload, payload);

  intake.shutdown();
  EXPECT_FALSE(intake.listening());
}

TEST(SocketIntake, UdpRoundTripOnEphemeralPort) {
  SocketIntake intake;
  std::string error;
  if (!intake.listen_udp(0, &error))
    GTEST_SKIP() << "cannot bind udp socket: " << error;
  ASSERT_NE(intake.udp_port(), 0u);

  auto sender = DatagramSender::connect_udp(intake.udp_port(), &error);
  ASSERT_TRUE(sender.ok()) << error;

  const Ipv4Addr agent{192, 0, 2, 4};
  const auto payload = payload_for(agent, 3);
  ASSERT_TRUE(sender.send(payload));

  std::vector<DatagramEnvelope> received;
  // UDP on loopback is reliable in practice but give it a few polls.
  for (int attempt = 0; attempt < 10 && received.empty(); ++attempt) {
    intake.poll_once(500, [&](DatagramEnvelope&& e) {
      received.push_back(std::move(e));
    });
  }
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].agent, agent);
  EXPECT_EQ(received[0].payload, payload);
}

/// The full intake -> queues -> collector chain without the analysis
/// engine: everything taken decodes and lands in collector accounting.
TEST(SocketIntake, QueuesFeedCollectorExactly) {
  AgentQueues queues;
  for (std::uint32_t i = 0; i < 10; ++i)
    queues.offer(envelope_for(Ipv4Addr{10, 0, 0, 1}, i));
  queues.offer(parse_frame(std::vector<std::byte>(9)));  // undecodable junk
  queues.close();

  Collector collector{[](const FlowSample&) {}};
  std::uint64_t decode_errors = 0;
  DatagramEnvelope envelope;
  while (queues.take(envelope)) {
    if (!collector.ingest(std::span<const std::byte>{envelope.payload}))
      ++decode_errors;
  }
  const auto totals = queues.stats().totals();
  EXPECT_EQ(totals.taken, 11u);
  EXPECT_EQ(collector.stats().datagrams + decode_errors, totals.taken);
  EXPECT_EQ(collector.stats().datagrams, 10u);
  EXPECT_EQ(decode_errors, 1u);
}

}  // namespace
}  // namespace ixp::sflow
