// The mapped-ingest parity contract (ISSUE 4):
//   - MappedTrace opens real files (mmap or fallback) and classifies
//     open failures distinctly (missing / too short / bad header);
//   - TraceSegmenter's segments tile the trace body exactly, every
//     later segment starting on a plausible record boundary;
//   - a set of TraceCursors walking the segments delivers exactly the
//     samples a streamed lenient TraceReader delivers — same bytes, same
//     order, same offset-derived stream keys — and their per-segment
//     ReaderStats sum field-for-field to the streamed whole-file
//     taxonomy, on clean traces AND on every FaultInjector scenario.
// Runs under both the asan (`faults`) and tsan labels.
#include "sflow/mapped_trace.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sflow/fault_injector.hpp"
#include "sflow/trace.hpp"
#include "sflow/trace_segment.hpp"

namespace ixp::sflow {
namespace {

using net::Ipv4Addr;

FlowSample make_sample(std::uint32_t seq) {
  FrameSpec spec;
  spec.src_mac = MacAddr::from_id(1);
  spec.dst_mac = MacAddr::from_id(2);
  spec.src_ip = Ipv4Addr{10, 0, 0, 1};
  spec.dst_ip = Ipv4Addr{10, 0, 0, 2};
  spec.src_port = 80;
  spec.dst_port = 40000;
  FlowSample sample;
  sample.sequence = seq;
  sample.sampling_rate = 16384;
  const char payload[] = "HTTP/1.1 200 OK\r\n";
  std::vector<std::byte> data(sizeof payload - 1);
  std::memcpy(data.data(), payload, data.size());
  sample.frame = build_tcp_frame(spec, data, 1000 + seq % 400);
  return sample;
}

std::vector<std::byte> build_trace(std::uint32_t samples, std::size_t batch) {
  std::stringstream buffer;
  {
    TraceWriter writer{buffer, Ipv4Addr{172, 16, 0, 1}, batch};
    for (std::uint32_t i = 0; i < samples; ++i) writer.write(make_sample(i));
  }
  const std::string raw = buffer.str();
  std::vector<std::byte> bytes(raw.size());
  std::memcpy(bytes.data(), raw.data(), raw.size());
  return bytes;
}

/// Everything one ingest path produced, in delivery order.
struct Walk {
  std::vector<FlowSample> samples;
  std::vector<std::uint64_t> keys;  ///< stream_seq_key per delivered record
  ReaderStats stats;
};

Walk streamed_walk(const std::vector<std::byte>& bytes) {
  std::stringstream stream{
      std::string{reinterpret_cast<const char*>(bytes.data()), bytes.size()}};
  TraceReader reader{stream, ReadPolicy::lenient()};
  Walk walk;
  std::vector<FlowSample> record;
  std::uint64_t key = 0;
  while (reader.read_record(record, key) > 0) {
    walk.keys.push_back(key);
    for (const auto& sample : record) walk.samples.push_back(sample);
  }
  EXPECT_TRUE(reader.ok());
  walk.stats = reader.stats();
  return walk;
}

/// Walks every segment of a `want`-way split in segment order with a
/// fresh-reset cursor, concatenating deliveries and summing stats.
Walk mapped_walk(const MappedTrace& trace, std::size_t want) {
  Walk walk;
  const auto segments = TraceSegmenter::split(trace.bytes(), want);
  TraceCursor cursor{trace.bytes(), {}};
  for (const auto& segment : segments) {
    cursor.reset(trace.bytes(), segment);
    std::uint64_t key = 0;
    for (auto batch = cursor.read_record(key); !batch.empty();
         batch = cursor.read_record(key)) {
      walk.keys.push_back(key);
      for (const auto& sample : batch) walk.samples.push_back(sample);
    }
    EXPECT_TRUE(cursor.ok());
    walk.stats += cursor.stats();
  }
  return walk;
}

void expect_sample_equal(const FlowSample& a, const FlowSample& b,
                         std::size_t at) {
  SCOPED_TRACE("sample " + std::to_string(at));
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.source_port, b.source_port);
  EXPECT_EQ(a.sampling_rate, b.sampling_rate);
  EXPECT_EQ(a.frame.frame_length, b.frame.frame_length);
  ASSERT_EQ(a.frame.captured, b.frame.captured);
  EXPECT_EQ(std::memcmp(a.frame.data.data(), b.frame.data.data(),
                        a.frame.captured),
            0);
}

void expect_walks_equal(const Walk& streamed, const Walk& mapped) {
  EXPECT_EQ(streamed.keys, mapped.keys);
  ASSERT_EQ(streamed.samples.size(), mapped.samples.size());
  for (std::size_t i = 0; i < streamed.samples.size(); ++i)
    expect_sample_equal(streamed.samples[i], mapped.samples[i], i);
  EXPECT_EQ(streamed.stats, mapped.stats);
}

/// RAII temp file under the system temp dir.
struct TempFile {
  std::filesystem::path path;
  explicit TempFile(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  void write(std::span<const std::byte> bytes) const {
    std::ofstream out{path, std::ios::binary};
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
};

TEST(MappedTrace, MissingFileIsOpenFailed) {
  const auto trace =
      MappedTrace::open("/nonexistent/ixpscope-no-such-trace.bin");
  EXPECT_FALSE(trace.ok());
  EXPECT_EQ(trace.error(), MappedTrace::Error::kOpenFailed);
  EXPECT_TRUE(trace.bytes().empty());
}

TEST(MappedTrace, ShortFileIsTooShort) {
  const TempFile file{"ixpscope_mapped_short.trace"};
  const std::array<std::byte, 5> stub{};
  file.write(stub);
  const auto trace = MappedTrace::open(file.path.string());
  EXPECT_FALSE(trace.ok());
  EXPECT_EQ(trace.error(), MappedTrace::Error::kTooShort);
}

TEST(MappedTrace, WrongMagicIsBadHeader) {
  const TempFile file{"ixpscope_mapped_badmagic.trace"};
  std::vector<std::byte> bytes(32, std::byte{0x41});
  file.write(bytes);
  const auto trace = MappedTrace::open(file.path.string());
  EXPECT_FALSE(trace.ok());
  EXPECT_EQ(trace.error(), MappedTrace::Error::kBadHeader);
}

TEST(MappedTrace, OpensRealFileAndMatchesAdoptedImage) {
  const auto bytes = build_trace(64, 8);
  const TempFile file{"ixpscope_mapped_roundtrip.trace"};
  file.write(bytes);

  const auto from_file = MappedTrace::open(file.path.string());
  ASSERT_TRUE(from_file.ok());
  EXPECT_EQ(from_file.size(), bytes.size());
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(from_file.is_mapped());
#endif

  auto copy = bytes;
  const auto adopted = MappedTrace::adopt(std::move(copy));
  ASSERT_TRUE(adopted.ok());
  EXPECT_FALSE(adopted.is_mapped());
  ASSERT_EQ(adopted.size(), from_file.size());
  EXPECT_EQ(std::memcmp(from_file.bytes().data(), adopted.bytes().data(),
                        bytes.size()),
            0);
}

TEST(MappedTrace, AdoptValidatesHeader) {
  EXPECT_EQ(MappedTrace::adopt({}).error(), MappedTrace::Error::kTooShort);
  EXPECT_EQ(MappedTrace::adopt(std::vector<std::byte>(8, std::byte{1})).error(),
            MappedTrace::Error::kTooShort);
  EXPECT_EQ(
      MappedTrace::adopt(std::vector<std::byte>(64, std::byte{0x7f})).error(),
      MappedTrace::Error::kBadHeader);
  EXPECT_TRUE(MappedTrace::adopt(build_trace(4, 2)).ok());
}

TEST(MappedTrace, MoveTransfersTheImage) {
  auto trace = MappedTrace::adopt(build_trace(16, 4));
  ASSERT_TRUE(trace.ok());
  const std::size_t size = trace.size();
  MappedTrace moved = std::move(trace);
  EXPECT_TRUE(moved.ok());
  EXPECT_EQ(moved.size(), size);
  EXPECT_FALSE(trace.ok());  // NOLINT(bugprone-use-after-move): post-move probe
}

TEST(TraceSegmenter, SegmentsTileTheBodyOnPlausibleBoundaries) {
  const auto bytes = build_trace(200, 5);  // 40 records to cut between
  const auto trace = MappedTrace::adopt(bytes);
  ASSERT_TRUE(trace.ok());
  Datagram probe;
  for (const std::size_t want : {1u, 2u, 3u, 4u, 8u, 16u}) {
    SCOPED_TRACE("want " + std::to_string(want));
    const auto segments = TraceSegmenter::split(trace.bytes(), want);
    ASSERT_FALSE(segments.empty());
    EXPECT_LE(segments.size(), want);
    EXPECT_EQ(segments.front().begin, kTraceHeaderBytes);
    EXPECT_EQ(segments.back().end, bytes.size());
    for (std::size_t i = 0; i + 1 < segments.size(); ++i)
      EXPECT_EQ(segments[i].end, segments[i + 1].begin);
    for (std::size_t i = 1; i < segments.size(); ++i)
      EXPECT_TRUE(plausible_record_at(trace.bytes(), segments[i].begin, probe));
  }
}

TEST(TraceSegmenter, TinyTraceCollapsesToOneSegment) {
  const auto bytes = build_trace(3, 8);  // a single record
  const auto trace = MappedTrace::adopt(bytes);
  ASSERT_TRUE(trace.ok());
  const auto segments = TraceSegmenter::split(trace.bytes(), 8);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].begin, kTraceHeaderBytes);
  EXPECT_EQ(segments[0].end, bytes.size());
}

TEST(TraceCursor, CleanTraceMatchesStreamedReader) {
  const auto bytes = build_trace(500, 7);
  const auto trace = MappedTrace::adopt(bytes);
  ASSERT_TRUE(trace.ok());
  const Walk streamed = streamed_walk(bytes);
  EXPECT_EQ(streamed.samples.size(), 500u);
  for (const std::size_t want : {1u, 2u, 8u, 16u}) {
    SCOPED_TRACE("want " + std::to_string(want));
    expect_walks_equal(streamed, mapped_walk(trace, want));
  }
}

TEST(TraceCursor, StreamKeysStrictlyIncreaseAcrossSegments) {
  const auto bytes = build_trace(300, 6);
  const auto trace = MappedTrace::adopt(bytes);
  ASSERT_TRUE(trace.ok());
  const Walk walk = mapped_walk(trace, 8);
  ASSERT_FALSE(walk.keys.empty());
  for (std::size_t i = 1; i < walk.keys.size(); ++i)
    EXPECT_LT(walk.keys[i - 1], walk.keys[i]) << "record " << i;
}

TEST(TraceCursor, StrictBudgetClearsOkOnCorruptRecord) {
  auto bytes = build_trace(40, 4);
  // Break the version word of a mid-trace record: its length prefix stays
  // valid so the cursor commits to decoding it, and the decode fails.
  Datagram probe;
  const std::size_t victim =
      scan_for_record(std::span<const std::byte>{bytes}, bytes.size() / 2,
                      probe);
  ASSERT_LT(victim, bytes.size());
  bytes[victim + 4] ^= std::byte{0xff};
  const auto trace = MappedTrace::adopt(std::move(bytes));
  ASSERT_TRUE(trace.ok());
  TraceCursor cursor{trace.bytes(),
                     {kTraceHeaderBytes, trace.size()},
                     ReadPolicy::strict()};
  std::uint64_t key = 0;
  while (!cursor.read_record(key).empty()) {
  }
  EXPECT_FALSE(cursor.ok());
  EXPECT_GT(cursor.stats().errors(), 0u);
}

// The corruption matrix parity: every FaultInjector scenario, several
// seeds, streamed-vs-mapped equality of deliveries, keys, and summed
// taxonomy, plus the exact byte-accounting invariant on the sum.
TEST(TraceCursor, CorruptionMatrixParityWithStreamedReader) {
  const std::vector<std::byte> intact = build_trace(/*samples=*/140,
                                                    /*batch=*/7);
  struct Named {
    const char* name;
    FaultMix mix;
  };
  FaultMix bit_flip, truncate, bogus, duplicate, reorder, eof, everything;
  bit_flip.bit_flip = 0.3;
  truncate.truncate = 0.3;
  bogus.bogus_length = 0.3;
  duplicate.duplicate = 0.3;
  reorder.reorder = 0.3;
  eof.mid_file_eof = 0.1;
  everything = FaultMix{0.2, 0.2, 0.2, 0.2, 0.2, 0.05};
  const Named matrix[] = {
      {"bit_flip", bit_flip},   {"truncate", truncate},
      {"bogus_length", bogus},  {"duplicate", duplicate},
      {"reorder", reorder},     {"mid_file_eof", eof},
      {"default_mix", FaultMix::default_mix()},
      {"everything", everything},
  };

  for (const auto& [name, mix] : matrix) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1337ULL}) {
      SCOPED_TRACE(std::string{name} + " seed " + std::to_string(seed));
      const FaultInjector injector{seed, mix};
      std::vector<std::byte> corrupted;
      const auto report = injector.corrupt(intact, corrupted);
      ASSERT_TRUE(report);

      const Walk streamed = streamed_walk(corrupted);
      const auto trace = MappedTrace::adopt(corrupted);
      ASSERT_TRUE(trace.ok());
      for (const std::size_t want : {1u, 8u}) {
        SCOPED_TRACE("want " + std::to_string(want));
        const Walk mapped = mapped_walk(trace, want);
        expect_walks_equal(streamed, mapped);
        EXPECT_EQ(kTraceHeaderBytes + mapped.stats.bytes_delivered +
                      mapped.stats.bytes_skipped,
                  corrupted.size());
      }
    }
  }
}

}  // namespace
}  // namespace ixp::sflow
