// The collector service contract (DESIGN.md §12):
//   * determinism — a trace replayed datagram-by-datagram through the
//     service, framed with its original offsets, yields a final
//     cumulative snapshot byte-identical to `ixpscope analyze` of the
//     same file, for any worker count and any agent count, clean or
//     fault-injected;
//   * graceful degradation — under overload the service sheds the
//     flooding agent's datagrams without stalling, and every datagram is
//     accounted exactly: received == taken + dropped per agent and in
//     total, taken == collector.datagrams + decode_errors;
//   * the sliding window — a snapshot with window_epochs=K covers only
//     the last K sealed epochs.
// Runs under both sanitizer presets (tsan label): the interesting bugs
// are races between the pump workers, snapshot's shard swaps, and drain.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "core/parallel_analyzer.hpp"
#include "core/serve_service.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "ingest/ingest_source.hpp"
#include "sflow/fault_injector.hpp"
#include "sflow/socket_intake.hpp"
#include "sflow/trace.hpp"
#include "sflow/trace_segment.hpp"

namespace ixp::core {
namespace {

constexpr int kWeek = 45;

class ServeTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    model_ = new gen::InternetModel{gen::ScaleConfig::test()};
    std::vector<net::Asn> members;
    for (const auto* m : model_->ixp().members_at(kWeek))
      members.push_back(m->asn);
    locality_ = new std::unordered_map<net::Asn, net::Locality>(
        model_->as_graph().classify(members));
    samples_ = new std::vector<sflow::FlowSample>;
    const gen::Workload workload{*model_};
    workload.generate_week(
        kWeek, [](const sflow::FlowSample& s) { samples_->push_back(s); });
  }

  static void TearDownTestSuite() {
    delete samples_;
    delete locality_;
    delete model_;
  }

  static VantagePoint make_vantage() {
    return VantagePoint{model_->ixp(),   model_->routing(),
                        model_->geo_db(), *locality_,
                        model_->dns_db(), dns::PublicSuffixList::builtin(),
                        model_->root_store()};
  }

  static classify::ChainFetcher fetcher() {
    return [](net::Ipv4Addr addr, int times) {
      return model_->fetch_chains(addr, times, kWeek);
    };
  }

  static gen::InternetModel* model_;
  static std::unordered_map<net::Asn, net::Locality>* locality_;
  static std::vector<sflow::FlowSample>* samples_;
};

gen::InternetModel* ServeTest::model_ = nullptr;
std::unordered_map<net::Asn, net::Locality>* ServeTest::locality_ = nullptr;
std::vector<sflow::FlowSample>* ServeTest::samples_ = nullptr;

/// The determinism contract, reduced to its load-bearing fields.
void expect_reports_equal(const WeeklyReport& a, const WeeklyReport& b) {
  EXPECT_EQ(a.filters, b.filters);
  EXPECT_EQ(a.dissection, b.dissection);
  EXPECT_EQ(a.https_funnel.candidates, b.https_funnel.candidates);
  EXPECT_EQ(a.https_funnel.responded, b.https_funnel.responded);
  EXPECT_EQ(a.https_funnel.confirmed, b.https_funnel.confirmed);
  EXPECT_EQ(a.by_as, b.by_as);
  EXPECT_EQ(a.by_country, b.by_country);
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t i = 0; i < a.servers.size(); ++i) {
    EXPECT_EQ(a.servers[i].addr, b.servers[i].addr);
    EXPECT_EQ(a.servers[i].bytes, b.servers[i].bytes);
  }
}

std::vector<std::byte> record_trace(const std::vector<sflow::FlowSample>& samples) {
  std::stringstream buffer;
  {
    sflow::TraceWriter writer{buffer, net::Ipv4Addr{172, 16, 0, 1}, 128};
    for (const auto& s : samples) writer.write(s);
  }
  const std::string raw = buffer.str();
  std::vector<std::byte> bytes(raw.size());
  std::memcpy(bytes.data(), raw.data(), raw.size());
  return bytes;
}

/// One replayable record: its original trace offset, its raw payload, and
/// its decoded flow samples (for building sub-stream baselines).
struct ReplayRecord {
  std::uint64_t offset = 0;
  std::vector<std::byte> payload;
  std::vector<sflow::FlowSample> samples;
};

/// Walks a trace image exactly as `ixpscope replay` does: the lenient
/// cursor delivers every cleanly-decodable record with its offset.
std::vector<ReplayRecord> replay_records(std::span<const std::byte> bytes) {
  std::vector<ReplayRecord> records;
  for (const auto& segment : sflow::TraceSegmenter::split(bytes, 1)) {
    sflow::TraceCursor cursor{bytes, segment, sflow::ReadPolicy::lenient()};
    std::uint64_t seq_base = 0;
    for (auto batch = cursor.read_record(seq_base); !batch.empty();
         batch = cursor.read_record(seq_base)) {
      ReplayRecord record;
      record.offset = cursor.record_offset();
      const auto payload = cursor.record_bytes();
      record.payload.assign(payload.begin(), payload.end());
      record.samples.assign(batch.begin(), batch.end());
      records.push_back(std::move(record));
    }
  }
  return records;
}

/// Offers one record as a framed envelope, optionally rewriting the sFlow
/// agent field (payload bytes 4..8) — the analysis ignores the agent, so
/// the report must stay identical while the service sees many senders.
bool offer_record(ServeService& service, const ReplayRecord& record,
                  int agents, std::size_t index) {
  std::vector<std::byte> payload = record.payload;
  if (agents > 1) {
    const auto agent = static_cast<std::uint32_t>(
        net::Ipv4Addr{10, 99, 0, 0}.value() + index % agents);
    payload[4] = static_cast<std::byte>(agent >> 24);
    payload[5] = static_cast<std::byte>(agent >> 16);
    payload[6] = static_cast<std::byte>(agent >> 8);
    payload[7] = static_cast<std::byte>(agent);
  }
  return service.offer(
      sflow::parse_frame(sflow::encode_replay_frame(record.offset, payload)));
}

/// Polls until the workers have observed `n` sample-carrying datagrams —
/// the deterministic epoch boundary (see ServeService::observed_batches).
void wait_observed(const ServeService& service, std::uint64_t n) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.observed_batches() < n) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "workers stuck: observed " << service.observed_batches() << "/" << n;
    std::this_thread::yield();
  }
}

WeeklyReport analyze_baseline(std::span<const std::byte> bytes) {
  auto vp = ServeTest::make_vantage();
  ParallelOptions options;
  options.threads = 1;
  ParallelAnalyzer analyzer{vp, options};
  ingest::MappedSource source{bytes, sflow::ReadPolicy::lenient()};
  auto report = analyzer.analyze(kWeek, source, ServeTest::fetcher());
  EXPECT_TRUE(source.ok());
  return report;
}

WeeklyReport span_baseline(const std::vector<sflow::FlowSample>& samples) {
  auto vp = ServeTest::make_vantage();
  ParallelOptions options;
  options.threads = 1;
  ParallelAnalyzer analyzer{vp, options};
  ingest::SpanSource source{samples, options.batch_size};
  return analyzer.analyze(kWeek, source, ServeTest::fetcher());
}

TEST_F(ServeTest, ReplayedSnapshotMatchesAnalyzeForAnyWorkerAndAgentCount) {
  const auto clean = record_trace(*samples_);
  std::vector<std::byte> corrupted;
  {
    const sflow::FaultInjector injector{42};
    const auto report = injector.corrupt(clean, corrupted);
    ASSERT_TRUE(report);
    ASSERT_GT(report->faults(), 0u);
  }

  struct Case {
    const std::vector<std::byte>* bytes;
    unsigned threads;
    int agents;
  };
  const Case cases[] = {
      {&clean, 1, 1},     {&clean, 4, 1},     {&clean, 1, 5},
      {&clean, 4, 5},     {&corrupted, 1, 1}, {&corrupted, 4, 5},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE((c.bytes == &clean ? std::string{"clean"}
                                    : std::string{"corrupted"}) +
                 " threads=" + std::to_string(c.threads) +
                 " agents=" + std::to_string(c.agents));
    const auto baseline = analyze_baseline(*c.bytes);
    const auto records = replay_records(*c.bytes);
    ASSERT_FALSE(records.empty());

    auto vp = make_vantage();
    ServeOptions options;
    options.week = kWeek;
    options.threads = c.threads;
    ServeService service{vp, fetcher(), options};
    service.start();
    for (std::size_t i = 0; i < records.size(); ++i)
      ASSERT_TRUE(offer_record(service, records[i], c.agents, i));
    const auto snap = service.drain();
    ASSERT_TRUE(snap);
    expect_reports_equal(baseline, snap->report);

    // Exact accounting: nothing dropped, everything decoded, books
    // balanced per agent and in total.
    const auto& acc = snap->accounting;
    const auto totals = acc.intake.totals();
    EXPECT_EQ(totals.received, records.size());
    EXPECT_EQ(totals.dropped, 0u);
    EXPECT_EQ(totals.received, totals.taken + totals.dropped);
    for (const auto& row : acc.intake.rows) {
      EXPECT_EQ(row.counters.received,
                row.counters.taken + row.counters.dropped);
    }
    EXPECT_EQ(acc.intake.rows.size(),
              static_cast<std::size_t>(c.agents > 1 ? c.agents : 1));
    EXPECT_EQ(acc.decode_errors, 0u);  // the replayer sends only clean records
    EXPECT_EQ(totals.taken, acc.collector.datagrams + acc.decode_errors);
  }
}

TEST_F(ServeTest, PeriodicSnapshotsSealEpochsAndDrainStaysCumulative) {
  const auto bytes = record_trace(*samples_);
  const auto baseline = analyze_baseline(bytes);
  const auto records = replay_records(bytes);
  const std::size_t half = records.size() / 2;

  // Split the first half's samples back out for the mid-run parity check.
  std::vector<sflow::FlowSample> first_half;
  for (std::size_t i = 0; i < half; ++i)
    first_half.insert(first_half.end(), records[i].samples.begin(),
                      records[i].samples.end());

  auto vp = make_vantage();
  ServeOptions options;
  options.week = kWeek;
  options.threads = 2;
  ServeService service{vp, fetcher(), options};
  service.start();
  EXPECT_EQ(service.current(), nullptr);

  for (std::size_t i = 0; i < half; ++i)
    ASSERT_TRUE(offer_record(service, records[i], 1, i));
  wait_observed(service, half);
  const auto mid = service.snapshot();
  EXPECT_EQ(mid->epoch, 1u);
  expect_reports_equal(span_baseline(first_half), mid->report);
  EXPECT_EQ(service.current(), mid);

  for (std::size_t i = half; i < records.size(); ++i)
    ASSERT_TRUE(offer_record(service, records[i], 1, i));
  const auto final_snap = service.drain();
  EXPECT_EQ(final_snap->epoch, 2u);
  expect_reports_equal(baseline, final_snap->report);  // cumulative window
  EXPECT_EQ(service.current(), final_snap);
  EXPECT_EQ(service.drain(), final_snap);  // idempotent
}

TEST_F(ServeTest, SlidingWindowCoversOnlyRecentEpochs) {
  const auto bytes = record_trace(*samples_);
  const auto records = replay_records(bytes);
  const std::size_t half = records.size() / 2;

  std::vector<sflow::FlowSample> first_half;
  std::vector<sflow::FlowSample> second_half;
  for (std::size_t i = 0; i < records.size(); ++i) {
    auto& sink = i < half ? first_half : second_half;
    sink.insert(sink.end(), records[i].samples.begin(),
                records[i].samples.end());
  }

  auto vp = make_vantage();
  ServeOptions options;
  options.week = kWeek;
  options.threads = 2;
  options.window_epochs = 1;
  ServeService service{vp, fetcher(), options};
  service.start();

  for (std::size_t i = 0; i < half; ++i)
    ASSERT_TRUE(offer_record(service, records[i], 1, i));
  wait_observed(service, half);
  const auto first = service.snapshot();
  expect_reports_equal(span_baseline(first_half), first->report);

  for (std::size_t i = half; i < records.size(); ++i)
    ASSERT_TRUE(offer_record(service, records[i], 1, i));
  // The drain snapshot seals the second half as epoch 2; with a window of
  // one epoch, the first half must have aged out of the report entirely.
  const auto final_snap = service.drain();
  expect_reports_equal(span_baseline(second_half), final_snap->report);
}

TEST_F(ServeTest, WindowLargerThanSealedEpochsFoldsWhatExists) {
  // Regression: `serve --window K` with K beyond the sealed epoch count
  // must fold the epochs that exist and say so — not misreport coverage.
  const auto bytes = record_trace(*samples_);
  const auto baseline = analyze_baseline(bytes);
  const auto records = replay_records(bytes);
  const std::size_t half = records.size() / 2;

  std::vector<sflow::FlowSample> first_half;
  for (std::size_t i = 0; i < half; ++i)
    first_half.insert(first_half.end(), records[i].samples.begin(),
                      records[i].samples.end());

  auto vp = make_vantage();
  ServeOptions options;
  options.week = kWeek;
  options.threads = 2;
  options.window_epochs = 8;  // far more than will ever be sealed
  ServeService service{vp, fetcher(), options};
  service.start();

  for (std::size_t i = 0; i < half; ++i)
    ASSERT_TRUE(offer_record(service, records[i], 1, i));
  wait_observed(service, half);
  const auto first = service.snapshot();
  EXPECT_EQ(first->window_epochs, 8u);
  EXPECT_EQ(first->epochs_folded, 1u);  // only one epoch exists yet
  expect_reports_equal(span_baseline(first_half), first->report);

  for (std::size_t i = half; i < records.size(); ++i)
    ASSERT_TRUE(offer_record(service, records[i], 1, i));
  const auto final_snap = service.drain();
  EXPECT_EQ(final_snap->window_epochs, 8u);
  EXPECT_EQ(final_snap->epochs_folded, 2u);
  // Both sealed epochs fit inside the window, so the under-filled window
  // equals the cumulative analysis — nothing silently dropped or padded.
  expect_reports_equal(baseline, final_snap->report);
}

TEST_F(ServeTest, CumulativeSnapshotsReportFoldedEpochCoverage) {
  const auto bytes = record_trace(*samples_);
  const auto records = replay_records(bytes);
  ASSERT_GT(records.size(), 4u);

  auto vp = make_vantage();
  ServeOptions options;
  options.week = kWeek;
  options.threads = 1;
  ServeService service{vp, fetcher(), options};  // window 0 = cumulative
  service.start();
  for (std::size_t i = 0; i < records.size(); ++i)
    ASSERT_TRUE(offer_record(service, records[i], 1, i));
  wait_observed(service, records.size());
  const auto first = service.snapshot();
  EXPECT_EQ(first->window_epochs, 0u);
  EXPECT_EQ(first->epochs_folded, 1u);
  const auto final_snap = service.drain();
  EXPECT_EQ(final_snap->epochs_folded, 2u);  // every sealed interval
}

/// The SIGTERM race: drain() closing the queues and joining the workers
/// while another thread is mid-snapshot(). Serialized by publish_mutex_;
/// the tsan preset is the actual assertion here — plus the invariant that
/// the drained result is still the full cumulative report.
TEST_F(ServeTest, DrainRacingInFlightSnapshotsStaysCumulative) {
  const auto bytes = record_trace(*samples_);
  const auto baseline = analyze_baseline(bytes);
  const auto records = replay_records(bytes);

  auto vp = make_vantage();
  ServeOptions options;
  options.week = kWeek;
  options.threads = 2;
  ServeService service{vp, fetcher(), options};
  service.start();
  for (std::size_t i = 0; i < records.size(); ++i)
    ASSERT_TRUE(offer_record(service, records[i], 1, i));

  std::thread snapshotter{[&] {
    for (int i = 0; i < 4; ++i) (void)service.snapshot();
  }};
  const auto final_snap = service.drain();  // races the snapshot loop
  snapshotter.join();

  ASSERT_TRUE(final_snap);
  // However the epochs interleaved, cumulative mode folds all of them.
  const auto settled = service.current();
  expect_reports_equal(baseline, settled->report);
  EXPECT_EQ(settled->accounting.intake.totals().received, records.size());
}

TEST_F(ServeTest, OverloadShedsFloodingAgentWithExactCounts) {
  const auto bytes = record_trace(*samples_);
  const auto records = replay_records(bytes);
  ASSERT_GT(records.size(), 8u);

  auto vp = make_vantage();
  ServeOptions options;
  options.week = kWeek;
  options.threads = 2;
  options.queue_capacity = 4;  // tiny bound; the flood must shed, not stall
  ServeService service{vp, fetcher(), options};

  // Flood before the workers start: with nobody draining, offer() must
  // keep returning (never block) and count each overflow against the one
  // flooding agent.
  std::uint64_t accepted = 0;
  for (std::size_t i = 0; i < records.size(); ++i)
    accepted += offer_record(service, records[i], 1, i) ? 1 : 0;
  EXPECT_EQ(accepted, 4u);

  service.start();
  const auto snap = service.drain();
  const auto& acc = snap->accounting;
  const auto totals = acc.intake.totals();
  EXPECT_EQ(totals.received, records.size());
  EXPECT_EQ(totals.taken, 4u);
  EXPECT_EQ(totals.dropped, records.size() - 4u);
  EXPECT_EQ(totals.received, totals.taken + totals.dropped);
  for (const auto& row : acc.intake.rows) {
    EXPECT_EQ(row.counters.received,
              row.counters.taken + row.counters.dropped);
  }
  EXPECT_EQ(totals.taken, acc.collector.datagrams + acc.decode_errors);
}

TEST_F(ServeTest, UndecodableDatagramsAreCountedNotFatal) {
  const auto bytes = record_trace(*samples_);
  const auto records = replay_records(bytes);
  const auto baseline = analyze_baseline(bytes);

  auto vp = make_vantage();
  ServeOptions options;
  options.week = kWeek;
  options.threads = 2;
  ServeService service{vp, fetcher(), options};
  service.start();
  for (std::size_t i = 0; i < records.size(); ++i) {
    ASSERT_TRUE(offer_record(service, records[i], 1, i));
    if (i % 50 == 0) {
      // Interleave junk a live socket could deliver: it must be counted
      // as a decode error and change nothing else.
      ASSERT_TRUE(service.offer(
          sflow::parse_frame(std::vector<std::byte>(31))));
    }
  }
  const auto snap = service.drain();
  expect_reports_equal(baseline, snap->report);
  const auto& acc = snap->accounting;
  const std::uint64_t junk = (records.size() + 49) / 50;
  EXPECT_EQ(acc.decode_errors, junk);
  const auto totals = acc.intake.totals();
  EXPECT_EQ(totals.taken, acc.collector.datagrams + acc.decode_errors);
  EXPECT_EQ(acc.collector.datagrams, records.size());
}

TEST_F(ServeTest, SequenceEvictionHookFiresUnderForgedAgentFlood) {
  const auto bytes = record_trace(*samples_);
  const auto records = replay_records(bytes);
  ASSERT_GT(records.size(), 8u);

  auto vp = make_vantage();
  ServeOptions options;
  options.week = kWeek;
  options.threads = 1;
  options.max_agents = 2;  // far fewer rows than forged agents
  std::atomic<std::uint64_t> logged{0};
  options.eviction_log = [&logged](net::Ipv4Addr, std::uint32_t) {
    logged.fetch_add(1, std::memory_order_relaxed);
  };
  ServeService service{vp, fetcher(), options};
  service.start();
  for (std::size_t i = 0; i < records.size(); ++i)
    ASSERT_TRUE(offer_record(service, records[i], /*agents=*/8, i));
  const auto snap = service.drain();

  const auto& acc = snap->accounting;
  EXPECT_GT(acc.sequence_evictions, 0u);
  EXPECT_EQ(acc.sequence_evictions, logged.load());
  EXPECT_EQ(acc.sequence_evictions, acc.collector.evicted_agents);
  // Intake rows were capped too, but the folded totals stay exact.
  EXPECT_GT(acc.intake.evicted_agents, 0u);
  const auto totals = acc.intake.totals();
  EXPECT_EQ(totals.received, records.size());
  EXPECT_EQ(totals.taken, acc.collector.datagrams + acc.decode_errors);
}

TEST_F(ServeTest, UnixSocketReplayMatchesAnalyze) {
  const auto bytes = record_trace(*samples_);
  const auto baseline = analyze_baseline(bytes);
  const auto records = replay_records(bytes);

  sflow::SocketIntake intake;
  std::string error;
  const std::string path = testing::TempDir() + "ixpscope_serve_" +
                           std::to_string(::getpid()) + ".sock";
  if (!intake.listen_unix(path, &error))
    GTEST_SKIP() << "cannot bind unix socket: " << error;

  auto vp = make_vantage();
  ServeOptions options;
  options.week = kWeek;
  options.threads = 4;
  ServeService service{vp, fetcher(), options};
  service.start();

  // A unix datagram send blocks when the receiver's buffer is full, so
  // the sender runs on its own thread while this thread polls — the same
  // shape as `ixpscope replay` against `ixpscope serve`.
  std::thread sender_thread{[&] {
    std::string send_error;
    auto sender = sflow::DatagramSender::connect_unix(path, &send_error);
    ASSERT_TRUE(sender.ok()) << send_error;
    for (const auto& record : records)
      ASSERT_TRUE(sender.send_framed(record.offset, record.payload));
  }};

  std::uint64_t received = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (received < records.size() &&
         std::chrono::steady_clock::now() < deadline) {
    received += intake.poll_once(200, [&](sflow::DatagramEnvelope&& e) {
      (void)service.offer(std::move(e));
    });
  }
  sender_thread.join();
  intake.shutdown();
  ASSERT_EQ(received, records.size());

  const auto snap = service.drain();
  expect_reports_equal(baseline, snap->report);
  EXPECT_EQ(snap->accounting.intake.totals().received, records.size());
  EXPECT_EQ(snap->accounting.intake.totals().dropped, 0u);
}

}  // namespace
}  // namespace ixp::core
