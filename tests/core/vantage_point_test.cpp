// VantagePoint unit tests on a hand-built two-member world — no synthetic
// Internet involved, every expectation computed by hand.
#include "core/vantage_point.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace ixp::core {
namespace {

using net::Asn;
using net::Ipv4Addr;
using net::Ipv4Prefix;

class VantagePointTest : public ::testing::Test {
 protected:
  VantagePointTest() {
    fabric::Member a;
    a.asn = Asn{100};
    ixp_.add_member(a);
    fabric::Member b;
    b.asn = Asn{200};
    ixp_.add_member(b);

    routing_.announce(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, Asn{100});
    routing_.announce(Ipv4Prefix{Ipv4Addr{20, 0, 0, 0}, 8}, Asn{200});
    geo_.assign(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, geo::CountryCode{'D', 'E'});
    geo_.assign(Ipv4Prefix{Ipv4Addr{20, 0, 0, 0}, 8}, geo::CountryCode{'U', 'S'});
    locality_[Asn{100}] = net::Locality::kMember;
    locality_[Asn{200}] = net::Locality::kNear;

    dns_.add_ptr(Ipv4Addr{10, 0, 0, 1}, *dns::DnsName::parse("s1.example.com"));
    dns_.add_soa(*dns::DnsName::parse("example.com"),
                 *dns::DnsName::parse("example.com"));
    roots_.trust("root");
  }

  VantagePoint make() {
    return VantagePoint{ixp_,  routing_, geo_,
                        locality_, dns_,  dns::PublicSuffixList::builtin(),
                        roots_};
  }

  sflow::FlowSample sample(Ipv4Addr src, Ipv4Addr dst, std::uint16_t sport,
                           std::uint16_t dport, const char* payload,
                           std::uint16_t wire_len) const {
    sflow::FrameSpec spec;
    spec.src_mac = fabric::Ixp::port_mac_for(Asn{100});
    spec.dst_mac = fabric::Ixp::port_mac_for(Asn{200});
    spec.src_ip = src;
    spec.dst_ip = dst;
    spec.src_port = sport;
    spec.dst_port = dport;
    spec.frame_length = wire_len;
    const std::size_t len = std::strlen(payload);
    std::vector<std::byte> data(len);
    std::memcpy(data.data(), payload, len);
    sflow::FlowSample s;
    s.sampling_rate = 1000;  // expanded = wire_len * 1000
    s.frame = sflow::build_tcp_frame(spec, data, std::max<std::size_t>(len, 1));
    s.frame.frame_length = wire_len;
    return s;
  }

  static std::vector<x509::CertificateChain> no_fetch(Ipv4Addr, int) {
    return {};
  }

  fabric::Ixp ixp_;
  net::RoutingTable routing_;
  geo::GeoDatabase geo_;
  std::unordered_map<Asn, net::Locality> locality_;
  dns::ZoneDatabase dns_;
  x509::RootStore roots_;
};

TEST_F(VantagePointTest, AggregatesOneServerFlow) {
  auto vp = make();
  WeekSession session = vp.open_week(45);
  // Server 10.0.0.1 (DE, AS100) answers client 20.0.0.9 (US, AS200).
  session.observe(sample(Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{20, 0, 0, 9}, 80,
                         40000, "HTTP/1.1 200 OK\r\nServer: t\r\n", 1000));
  const auto report = session.finish(no_fetch);

  EXPECT_EQ(report.week, 45);
  EXPECT_EQ(report.peering_ips, 2u);
  EXPECT_EQ(report.peering_ases, 2u);
  EXPECT_EQ(report.peering_prefixes, 2u);
  EXPECT_EQ(report.peering_countries, 2u);
  ASSERT_EQ(report.server_ips, 1u);
  EXPECT_EQ(report.server_ases, 1u);
  EXPECT_EQ(report.server_countries, 1u);

  const auto& server = report.servers.front();
  EXPECT_EQ(server.addr, Ipv4Addr(10, 0, 0, 1));
  EXPECT_TRUE(server.http);
  EXPECT_FALSE(server.https);
  EXPECT_EQ(server.asn, Asn{100});
  EXPECT_EQ(server.country, (geo::CountryCode{'D', 'E'}));
  // Metadata harvested through the zone database.
  ASSERT_TRUE(server.metadata.hostname);
  EXPECT_EQ(server.metadata.hostname->text(), "s1.example.com");
  ASSERT_TRUE(server.metadata.soa_authority);
  EXPECT_EQ(server.metadata.soa_authority->text(), "example.com");

  // Byte accounting: 1000 bytes x rate 1000 on each endpoint.
  EXPECT_DOUBLE_EQ(report.by_country.at(geo::CountryCode{'D', 'E'}).bytes,
                   1'000'000.0);
  EXPECT_DOUBLE_EQ(report.by_country.at(geo::CountryCode{'D', 'E'}).server_bytes,
                   1'000'000.0);
  EXPECT_EQ(report.by_as.at(Asn{100}).server_ips, 1u);
  EXPECT_EQ(report.by_as.at(Asn{200}).server_ips, 0u);

  // Locality: DE/AS100 is A(L) index 0, US/AS200 is A(M) index 1.
  EXPECT_EQ(report.peering_locality[0].ips, 1u);
  EXPECT_EQ(report.peering_locality[1].ips, 1u);
  EXPECT_EQ(report.server_locality[0].ips, 1u);
  EXPECT_EQ(report.server_locality[1].ips, 0u);
}

TEST_F(VantagePointTest, HttpsFunnelThroughFetcher) {
  auto vp = make();
  WeekSession session = vp.open_week(45);
  session.observe(sample(Ipv4Addr{10, 0, 0, 2}, Ipv4Addr{20, 0, 0, 9}, 443,
                         40000, "", 1200));
  const auto report = session.finish([](Ipv4Addr addr, int times) {
    std::vector<x509::CertificateChain> fetches;
    if (addr != Ipv4Addr{10, 0, 0, 2}) return fetches;
    x509::Certificate leaf;
    leaf.subject = *dns::DnsName::parse("www.example.com");
    leaf.key_usages = {x509::KeyUsage::kServerAuth};
    leaf.subject_key = "k";
    leaf.issuer_key = "root";
    leaf.not_after = 100000;
    for (int i = 0; i < times; ++i)
      fetches.push_back(x509::CertificateChain{{leaf}});
    return fetches;
  });
  EXPECT_EQ(report.https_funnel.candidates, 1u);
  EXPECT_EQ(report.https_funnel.responded, 1u);
  EXPECT_EQ(report.https_funnel.confirmed, 1u);
  ASSERT_EQ(report.server_ips, 1u);
  EXPECT_TRUE(report.servers.front().https);
  // Certificate names flow into the metadata.
  EXPECT_EQ(report.servers.front().metadata.cert_names.size(), 1u);
}

TEST_F(VantagePointTest, EachSessionStartsFresh) {
  auto vp = make();
  {
    WeekSession session = vp.open_week(45);
    session.observe(sample(Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{20, 0, 0, 9}, 80,
                           40000, "HTTP/1.1 200 OK\r\n", 800));
    (void)session.finish(no_fetch);
  }
  WeekSession session = vp.open_week(46);
  const auto report = session.finish(no_fetch);
  EXPECT_EQ(report.week, 46);
  EXPECT_EQ(report.peering_ips, 0u);
  EXPECT_EQ(report.server_ips, 0u);
  EXPECT_EQ(report.filters.total_samples(), 0u);
}

TEST_F(VantagePointTest, ObserveBatchMatchesPerSampleObserve) {
  const std::vector<sflow::FlowSample> flows{
      sample(Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{20, 0, 0, 9}, 80, 40000,
             "HTTP/1.1 200 OK\r\n", 900),
      sample(Ipv4Addr{20, 0, 0, 9}, Ipv4Addr{10, 0, 0, 1}, 40000, 80,
             "GET / HTTP/1.1\r\nHost: s1.example.com\r\n", 400)};

  auto vp = make();
  WeekSession one_by_one = vp.open_week(45);
  for (const auto& flow : flows) one_by_one.observe(flow);
  const auto expected = one_by_one.finish(no_fetch);

  WeekSession batched = vp.open_week(45);
  batched.observe_batch(flows);
  const auto actual = batched.finish(no_fetch);

  EXPECT_EQ(actual.filters, expected.filters);
  EXPECT_EQ(actual.peering_ips, expected.peering_ips);
  EXPECT_EQ(actual.server_ips, expected.server_ips);
  EXPECT_EQ(actual.servers.size(), expected.servers.size());
}

// The minimal one-sample week through the session API.
TEST_F(VantagePointTest, SingleSampleWeekProducesReport) {
  auto vp = make();
  WeekSession session = vp.open_week(45);
  session.observe(sample(Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{20, 0, 0, 9}, 80,
                         40000, "HTTP/1.1 200 OK\r\n", 1000));
  const auto report = session.finish(no_fetch);
  EXPECT_EQ(report.week, 45);
  EXPECT_EQ(report.peering_ips, 2u);
  EXPECT_EQ(report.server_ips, 1u);
}

TEST_F(VantagePointTest, UnroutedIpStillCountsAsPeeringIp) {
  auto vp = make();
  WeekSession session = vp.open_week(45);
  // 30.0.0.0/8 is not in the routing table or geo database.
  session.observe(sample(Ipv4Addr{30, 0, 0, 1}, Ipv4Addr{20, 0, 0, 9}, 12345,
                         22, "", 500));
  const auto report = session.finish(no_fetch);
  EXPECT_EQ(report.peering_ips, 2u);
  EXPECT_EQ(report.peering_ases, 1u);       // only the routed side
  EXPECT_EQ(report.peering_countries, 1u);  // only the located side
}

}  // namespace
}  // namespace ixp::core
