// The parallel engine's determinism contract: any shard split of a
// week's sample stream — any shard count, any merge order, any thread
// count — must reproduce the single-shard WeeklyReport field for field,
// bit for bit. These tests run against the synthetic Internet at test
// scale so the streams exercise the full filter/dissect/probe pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/parallel_analyzer.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "ingest/ingest_source.hpp"
#include "sflow/trace.hpp"

namespace ixp::core {
namespace {

constexpr int kWeek = 45;

class ParallelEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new gen::InternetModel{gen::ScaleConfig::test()};
    std::vector<net::Asn> members;
    for (const auto* m : model_->ixp().members_at(kWeek))
      members.push_back(m->asn);
    locality_ = new std::unordered_map<net::Asn, net::Locality>(
        model_->as_graph().classify(members));

    samples_ = new std::vector<sflow::FlowSample>;
    const gen::Workload workload{*model_};
    workload.generate_week(
        kWeek, [](const sflow::FlowSample& s) { samples_->push_back(s); });

    // The reference: one session, one shard, stream order.
    auto vp = make_vantage();
    WeekSession session = vp.open_week(kWeek);
    session.observe_batch(*samples_);
    baseline_ = new WeeklyReport{session.finish(fetcher())};
  }

  static void TearDownTestSuite() {
    delete baseline_;
    delete samples_;
    delete locality_;
    delete model_;
  }

  static VantagePoint make_vantage() {
    return VantagePoint{model_->ixp(),   model_->routing(),
                        model_->geo_db(), *locality_,
                        model_->dns_db(), dns::PublicSuffixList::builtin(),
                        model_->root_store()};
  }

  static classify::ChainFetcher fetcher() {
    return [](net::Ipv4Addr addr, int times) {
      return model_->fetch_chains(addr, times, kWeek);
    };
  }

  /// Field-for-field equality against the baseline report. EXPECT_EQ on
  /// the double fields deliberately demands bit-identity — that is the
  /// contract, not approximate agreement.
  static void expect_matches_baseline(const WeeklyReport& r) {
    const WeeklyReport& b = *baseline_;
    EXPECT_EQ(r.week, b.week);
    EXPECT_EQ(r.filters, b.filters);
    EXPECT_EQ(r.dissection, b.dissection);
    EXPECT_EQ(r.https_funnel.candidates, b.https_funnel.candidates);
    EXPECT_EQ(r.https_funnel.responded, b.https_funnel.responded);
    EXPECT_EQ(r.https_funnel.confirmed, b.https_funnel.confirmed);
    EXPECT_EQ(r.metadata_coverage.servers, b.metadata_coverage.servers);
    EXPECT_EQ(r.metadata_coverage.with_dns, b.metadata_coverage.with_dns);
    EXPECT_EQ(r.metadata_coverage.with_uri, b.metadata_coverage.with_uri);
    EXPECT_EQ(r.metadata_coverage.with_cert, b.metadata_coverage.with_cert);
    EXPECT_EQ(r.metadata_coverage.with_any, b.metadata_coverage.with_any);
    EXPECT_EQ(r.metadata_cleaned_out, b.metadata_cleaned_out);

    EXPECT_EQ(r.peering_ips, b.peering_ips);
    EXPECT_EQ(r.peering_prefixes, b.peering_prefixes);
    EXPECT_EQ(r.peering_ases, b.peering_ases);
    EXPECT_EQ(r.peering_countries, b.peering_countries);
    EXPECT_EQ(r.server_ips, b.server_ips);
    EXPECT_EQ(r.server_prefixes, b.server_prefixes);
    EXPECT_EQ(r.server_ases, b.server_ases);
    EXPECT_EQ(r.server_countries, b.server_countries);

    EXPECT_EQ(r.by_country, b.by_country);
    EXPECT_EQ(r.by_as, b.by_as);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(r.peering_locality[i], b.peering_locality[i]) << "locality " << i;
      EXPECT_EQ(r.server_locality[i], b.server_locality[i]) << "locality " << i;
    }

    ASSERT_EQ(r.servers.size(), b.servers.size());
    for (std::size_t i = 0; i < r.servers.size(); ++i) {
      const ServerObservation& got = r.servers[i];
      const ServerObservation& want = b.servers[i];
      ASSERT_EQ(got.addr, want.addr) << "server " << i;
      EXPECT_EQ(got.bytes, want.bytes) << got.addr.to_string();
      EXPECT_EQ(got.http, want.http) << got.addr.to_string();
      EXPECT_EQ(got.https, want.https) << got.addr.to_string();
      EXPECT_EQ(got.rtmp, want.rtmp) << got.addr.to_string();
      EXPECT_EQ(got.also_client, want.also_client) << got.addr.to_string();
      EXPECT_EQ(got.asn, want.asn) << got.addr.to_string();
      EXPECT_EQ(got.country, want.country) << got.addr.to_string();

      const classify::ServerMetadata& gm = got.metadata;
      const classify::ServerMetadata& wm = want.metadata;
      EXPECT_EQ(gm.addr, wm.addr);
      ASSERT_EQ(gm.hostname.has_value(), wm.hostname.has_value())
          << got.addr.to_string();
      if (gm.hostname) {
        EXPECT_EQ(gm.hostname->text(), wm.hostname->text());
      }
      ASSERT_EQ(gm.soa_authority.has_value(), wm.soa_authority.has_value())
          << got.addr.to_string();
      if (gm.soa_authority) {
        EXPECT_EQ(gm.soa_authority->text(), wm.soa_authority->text());
      }
      EXPECT_EQ(gm.uris, wm.uris) << got.addr.to_string();
      ASSERT_EQ(gm.cert_names.size(), wm.cert_names.size())
          << got.addr.to_string();
      for (std::size_t n = 0; n < gm.cert_names.size(); ++n)
        EXPECT_EQ(gm.cert_names[n].text(), wm.cert_names[n].text());
    }
  }

  static gen::InternetModel* model_;
  static std::unordered_map<net::Asn, net::Locality>* locality_;
  static std::vector<sflow::FlowSample>* samples_;
  static WeeklyReport* baseline_;
};

gen::InternetModel* ParallelEngineTest::model_ = nullptr;
std::unordered_map<net::Asn, net::Locality>* ParallelEngineTest::locality_ =
    nullptr;
std::vector<sflow::FlowSample>* ParallelEngineTest::samples_ = nullptr;
WeeklyReport* ParallelEngineTest::baseline_ = nullptr;

/// Round-robin the stream over K shards, then absorb the shards in a
/// rotated order. Any K and any absorb order must reproduce the baseline.
WeeklyReport run_shard_split(VantagePoint& vp,
                             const std::vector<sflow::FlowSample>& samples,
                             const classify::ChainFetcher& fetch,
                             std::size_t shard_count, std::size_t rotate) {
  WeekSession session = vp.open_week(kWeek);
  std::vector<WeekShard> shards;
  shards.reserve(shard_count);
  for (std::size_t k = 0; k < shard_count; ++k)
    shards.push_back(session.make_shard());
  for (std::size_t i = 0; i < samples.size(); ++i)
    shards[i % shard_count].observe(samples[i], i);
  std::rotate(shards.begin(),
              shards.begin() + static_cast<std::ptrdiff_t>(rotate % shard_count),
              shards.end());
  for (WeekShard& shard : shards) session.absorb(std::move(shard));
  return session.finish(fetch);
}

TEST_F(ParallelEngineTest, TwoShardsReproduceBaseline) {
  auto vp = make_vantage();
  expect_matches_baseline(run_shard_split(vp, *samples_, fetcher(), 2, 1));
}

TEST_F(ParallelEngineTest, ThreeShardsMergedOutOfOrder) {
  auto vp = make_vantage();
  expect_matches_baseline(run_shard_split(vp, *samples_, fetcher(), 3, 2));
}

TEST_F(ParallelEngineTest, SevenShardsMergedOutOfOrder) {
  auto vp = make_vantage();
  expect_matches_baseline(run_shard_split(vp, *samples_, fetcher(), 7, 4));
}

TEST_F(ParallelEngineTest, PairwiseShardMergeIsAssociative) {
  // (a . b) . c  versus  a . (b . c) over a 3-way split of the stream.
  auto vp = make_vantage();
  const auto split3 = [&](WeekSession& session) {
    std::vector<WeekShard> shards;
    for (int k = 0; k < 3; ++k) shards.push_back(session.make_shard());
    for (std::size_t i = 0; i < samples_->size(); ++i)
      shards[i % 3].observe((*samples_)[i], i);
    return shards;
  };

  WeekSession left = vp.open_week(kWeek);
  {
    auto shards = split3(left);
    shards[0].merge(std::move(shards[1]));  // (a . b)
    shards[0].merge(std::move(shards[2]));  // . c
    left.absorb(std::move(shards[0]));
  }
  const auto left_report = left.finish(fetcher());

  WeekSession right = vp.open_week(kWeek);
  {
    auto shards = split3(right);
    shards[1].merge(std::move(shards[2]));  // (b . c)
    shards[0].merge(std::move(shards[1]));  // a .
    right.absorb(std::move(shards[0]));
  }
  const auto right_report = right.finish(fetcher());

  expect_matches_baseline(left_report);
  expect_matches_baseline(right_report);
}

TEST_F(ParallelEngineTest, SpanAnalyzerTwoThreadsMatchesBaseline) {
  auto vp = make_vantage();
  ParallelOptions options;
  options.threads = 2;
  options.batch_size = 64;  // many batches -> real interleaving
  ParallelAnalyzer analyzer{vp, options};
  ingest::SpanSource source{*samples_, options.batch_size};
  expect_matches_baseline(analyzer.analyze(kWeek, source, fetcher()));
}

TEST_F(ParallelEngineTest, SpanAnalyzerFourThreadsMatchesBaseline) {
  auto vp = make_vantage();
  ParallelOptions options;
  options.threads = 4;
  options.batch_size = 37;  // deliberately odd: ragged final batch
  ParallelAnalyzer analyzer{vp, options};
  ingest::SpanSource source{*samples_, options.batch_size};
  expect_matches_baseline(analyzer.analyze(kWeek, source, fetcher()));
}

TEST_F(ParallelEngineTest, SpanAnalyzerEightThreadsMatchesBaseline) {
  auto vp = make_vantage();
  ParallelOptions options;
  options.threads = 8;  // more workers than a shard's worth of batches
  options.batch_size = 51;
  ParallelAnalyzer analyzer{vp, options};
  ingest::SpanSource source{*samples_, options.batch_size};
  expect_matches_baseline(analyzer.analyze(kWeek, source, fetcher()));
}

TEST_F(ParallelEngineTest, TraceReplayThreadedMatchesBaseline) {
  // Full loop: record the stream, replay it through the queue-fed engine.
  std::stringstream buffer;
  {
    sflow::TraceWriter writer{buffer, net::Ipv4Addr{172, 16, 0, 1}, 128};
    for (const auto& sample : *samples_) writer.write(sample);
    writer.flush();
  }
  sflow::TraceReader reader{buffer};
  ASSERT_TRUE(reader.ok());

  auto vp = make_vantage();
  ParallelOptions options;
  options.threads = 3;
  options.batch_size = 128;
  ParallelAnalyzer analyzer{vp, options};
  ingest::ReaderSource source{reader};
  const auto report = analyzer.analyze(kWeek, source, fetcher());
  EXPECT_TRUE(source.ok());
  expect_matches_baseline(report);
}

TEST_F(ParallelEngineTest, SingleThreadAnalyzerMatchesBaseline) {
  auto vp = make_vantage();
  ParallelOptions options;
  options.threads = 1;
  ParallelAnalyzer analyzer{vp, options};
  ingest::SpanSource source{*samples_, options.batch_size};
  expect_matches_baseline(analyzer.analyze(kWeek, source, fetcher()));
}

}  // namespace
}  // namespace ixp::core
