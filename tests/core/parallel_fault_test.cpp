// Failure containment in the parallel engine (DESIGN.md §8):
//   - a worker-thread exception must never deadlock the bounded batch
//     queue or take the process down — strict mode joins every thread and
//     rethrows on the calling thread, lenient mode completes the week
//     with a degraded report;
//   - a trace damaged by the FaultInjector, read leniently, must produce
//     a byte-identical report for any thread count (the reader is the
//     serial resync point, so corruption cannot break determinism).
// Runs under the tsan preset: the interesting bugs here are lock-order
// and lost-wakeup races on the failure path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/parallel_analyzer.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "ingest/ingest_source.hpp"
#include "sflow/fault_injector.hpp"
#include "sflow/mapped_trace.hpp"
#include "sflow/trace.hpp"

namespace ixp::core {
namespace {

constexpr int kWeek = 45;

class ParallelFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new gen::InternetModel{gen::ScaleConfig::test()};
    std::vector<net::Asn> members;
    for (const auto* m : model_->ixp().members_at(kWeek))
      members.push_back(m->asn);
    locality_ = new std::unordered_map<net::Asn, net::Locality>(
        model_->as_graph().classify(members));
    samples_ = new std::vector<sflow::FlowSample>;
    const gen::Workload workload{*model_};
    workload.generate_week(
        kWeek, [](const sflow::FlowSample& s) { samples_->push_back(s); });
  }

  static void TearDownTestSuite() {
    delete samples_;
    delete locality_;
    delete model_;
  }

  static VantagePoint make_vantage() {
    return VantagePoint{model_->ixp(),   model_->routing(),
                        model_->geo_db(), *locality_,
                        model_->dns_db(), dns::PublicSuffixList::builtin(),
                        model_->root_store()};
  }

  static classify::ChainFetcher fetcher() {
    return [](net::Ipv4Addr addr, int times) {
      return model_->fetch_chains(addr, times, kWeek);
    };
  }

  static sflow::FlowSample sample(std::size_t i) { return (*samples_)[i]; }

  static gen::InternetModel* model_;
  static std::unordered_map<net::Asn, net::Locality>* locality_;
  static std::vector<sflow::FlowSample>* samples_;
};

gen::InternetModel* ParallelFaultTest::model_ = nullptr;
std::unordered_map<net::Asn, net::Locality>* ParallelFaultTest::locality_ =
    nullptr;
std::vector<sflow::FlowSample>* ParallelFaultTest::samples_ = nullptr;

/// The determinism contract, reduced to its load-bearing fields.
void expect_reports_equal(const WeeklyReport& a, const WeeklyReport& b) {
  EXPECT_EQ(a.filters, b.filters);
  EXPECT_EQ(a.dissection, b.dissection);
  EXPECT_EQ(a.https_funnel.candidates, b.https_funnel.candidates);
  EXPECT_EQ(a.https_funnel.responded, b.https_funnel.responded);
  EXPECT_EQ(a.https_funnel.confirmed, b.https_funnel.confirmed);
  EXPECT_EQ(a.by_as, b.by_as);
  EXPECT_EQ(a.by_country, b.by_country);
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t i = 0; i < a.servers.size(); ++i) {
    EXPECT_EQ(a.servers[i].addr, b.servers[i].addr);
    EXPECT_EQ(a.servers[i].bytes, b.servers[i].bytes);
  }
}

ParallelOptions throwing_options(unsigned threads, std::uint64_t bad_seq) {
  ParallelOptions options;
  options.threads = threads;
  options.batch_size = 64;
  options.max_queued_batches = 2;  // small: force reader/worker blocking
  options.worker_hook = [bad_seq](std::span<const sflow::FlowSample>,
                                  std::uint64_t first_seq) {
    if (first_seq == bad_seq) throw std::runtime_error{"classifier blew up"};
  };
  return options;
}

TEST_F(ParallelFaultTest, StrictWorkerExceptionRethrownNoDeadlock) {
  auto vp = make_vantage();
  // The poisoned batch sits mid-stream: the reader will still be pushing
  // against the tiny queue when the worker dies, which is exactly the
  // blocked-push scenario abort() must unwedge.
  ParallelAnalyzer analyzer{vp, throwing_options(4, 512)};
  ingest::FunctionSource source{[at = std::size_t{0}](
                                    std::vector<sflow::FlowSample>& out) mutable {
    out.clear();
    while (out.size() < 64 && at < samples_->size()) out.push_back(sample(at++));
    return out.size();
  }};
  EXPECT_THROW((void)analyzer.analyze(kWeek, source, fetcher()),
               std::runtime_error);
}

TEST_F(ParallelFaultTest, StrictSpanWorkerExceptionRethrown) {
  auto vp = make_vantage();
  ParallelAnalyzer analyzer{vp, throwing_options(4, 512)};
  ingest::SpanSource source{*samples_, 64};
  EXPECT_THROW((void)analyzer.analyze(kWeek, source, fetcher()),
               std::runtime_error);
}

TEST_F(ParallelFaultTest, LenientWorkerCompletesDegraded) {
  auto options = throwing_options(4, 512);
  options.lenient_workers = true;
  auto vp = make_vantage();
  ParallelAnalyzer analyzer{vp, options};
  ingest::SpanSource source{*samples_, options.batch_size};
  const auto report = analyzer.analyze(kWeek, source, fetcher());
  EXPECT_TRUE(report.degraded);
  ASSERT_EQ(report.worker_errors.size(), 4u);
  std::uint64_t dropped = 0;
  for (const auto count : report.worker_errors) dropped += count;
  EXPECT_EQ(dropped, 1u);  // exactly the poisoned batch
}

TEST_F(ParallelFaultTest, CleanRunIsNotDegraded) {
  auto vp = make_vantage();
  ParallelOptions options;
  options.threads = 2;
  options.batch_size = 64;
  ParallelAnalyzer analyzer{vp, options};
  ingest::SpanSource source{*samples_, options.batch_size};
  const auto report = analyzer.analyze(kWeek, source, fetcher());
  EXPECT_FALSE(report.degraded);
  EXPECT_TRUE(report.worker_errors.empty());
}

TEST_F(ParallelFaultTest, CorruptTraceLenientReportIdenticalAcrossThreads) {
  // Record the week, damage it with the default mix, then demand the
  // 1-, 2-, and 8-thread lenient analyses agree bit for bit.
  std::stringstream intact;
  {
    sflow::TraceWriter writer{intact, net::Ipv4Addr{172, 16, 0, 1}, 128};
    for (const auto& s : *samples_) writer.write(s);
  }
  std::stringstream corrupted;
  const sflow::FaultInjector injector{42};
  const auto fault_report = injector.corrupt(intact, corrupted);
  ASSERT_TRUE(fault_report);
  ASSERT_GT(fault_report->faults(), 0u);
  const std::string damaged = corrupted.str();

  std::vector<WeeklyReport> reports;
  std::vector<sflow::ReaderStats> stats;
  for (const unsigned threads : {1u, 2u, 8u}) {
    std::stringstream in{damaged};
    sflow::TraceReader reader{in, sflow::ReadPolicy::lenient()};
    ASSERT_TRUE(reader.ok());
    auto vp = make_vantage();
    ParallelOptions options;
    options.threads = threads;
    options.batch_size = 256;
    ParallelAnalyzer analyzer{vp, options};
    ingest::ReaderSource source{reader};
    reports.push_back(analyzer.analyze(kWeek, source, fetcher()));
    EXPECT_TRUE(source.ok()) << threads << " threads";
    EXPECT_TRUE(source.stats().degraded()) << threads << " threads";
    stats.push_back(source.stats());
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    SCOPED_TRACE("thread variant " + std::to_string(i));
    expect_reports_equal(reports[0], reports[i]);
    EXPECT_EQ(stats[0].samples, stats[i].samples);
    EXPECT_EQ(stats[0].bytes_skipped, stats[i].bytes_skipped);
    EXPECT_EQ(stats[0].errors(), stats[i].errors());
  }
}

/// Records a sample stream to trace bytes (TraceWriter framing).
std::vector<std::byte> record_trace(const std::vector<sflow::FlowSample>& samples) {
  std::stringstream buffer;
  {
    sflow::TraceWriter writer{buffer, net::Ipv4Addr{172, 16, 0, 1}, 128};
    for (const auto& s : samples) writer.write(s);
  }
  const std::string raw = buffer.str();
  std::vector<std::byte> bytes(raw.size());
  std::memcpy(bytes.data(), raw.data(), raw.size());
  return bytes;
}

/// The mapped-path contract, now through IngestSource: the mapped
/// N-thread report is byte-identical to the streamed 1-thread report
/// over the same trace bytes, and the MappedSource's per-segment
/// ReaderStats sum to the streamed reader's exact whole-file taxonomy —
/// on a clean trace and on a damaged one.
TEST_F(ParallelFaultTest, MappedReportMatchesStreamedOnCleanAndCorrupt) {
  const std::vector<std::byte> clean = record_trace(*samples_);
  std::vector<std::byte> corrupted;
  {
    const sflow::FaultInjector injector{42};
    const auto fault_report = injector.corrupt(clean, corrupted);
    ASSERT_TRUE(fault_report);
    ASSERT_GT(fault_report->faults(), 0u);
  }

  const std::vector<std::byte>* variants[] = {&clean, &corrupted};
  for (const auto* bytes : variants) {
    SCOPED_TRACE(bytes == &clean ? "clean trace" : "corrupted trace");

    // Streamed baseline: one thread, lenient.
    std::stringstream in{std::string{
        reinterpret_cast<const char*>(bytes->data()), bytes->size()}};
    sflow::TraceReader reader{in, sflow::ReadPolicy::lenient()};
    ASSERT_TRUE(reader.ok());
    auto vp = make_vantage();
    ParallelAnalyzer baseline{vp, ParallelOptions{.threads = 1}};
    ingest::ReaderSource reader_source{reader};
    const auto streamed = baseline.analyze(kWeek, reader_source, fetcher());
    ASSERT_TRUE(reader_source.ok());

    auto copy = *bytes;
    const auto trace = sflow::MappedTrace::adopt(std::move(copy));
    ASSERT_TRUE(trace.ok());
    for (const unsigned threads : {1u, 8u}) {
      SCOPED_TRACE(std::to_string(threads) + " mapped threads");
      auto vp2 = make_vantage();
      ParallelAnalyzer analyzer{vp2, ParallelOptions{.threads = threads}};
      ingest::MappedSource source{trace, sflow::ReadPolicy::lenient()};
      const auto mapped = analyzer.analyze(kWeek, source, fetcher());
      expect_reports_equal(streamed, mapped);

      // Exact accounting: the summed per-segment taxonomy equals the
      // streamed whole-file one, field for field, and covers every byte.
      const sflow::ReaderStats total = source.stats();
      EXPECT_EQ(total, reader.stats());
      EXPECT_TRUE(source.within_budget());
      EXPECT_TRUE(source.ok());
      ASSERT_EQ(source.per_segment().size(), source.segments().size());
      sflow::ReaderStats resummed;
      for (const auto& stats : source.per_segment()) resummed += stats;
      EXPECT_EQ(resummed, total);
      EXPECT_EQ(sflow::kTraceHeaderBytes + total.bytes_delivered +
                    total.bytes_skipped,
                bytes->size());
    }
  }
}

TEST_F(ParallelFaultTest, MappedStrictPolicyReportsBudgetExceeded) {
  const std::vector<std::byte> clean = record_trace(*samples_);
  std::vector<std::byte> corrupted;
  const sflow::FaultInjector injector{42};
  ASSERT_TRUE(injector.corrupt(clean, corrupted));

  const auto trace = sflow::MappedTrace::adopt(std::move(corrupted));
  ASSERT_TRUE(trace.ok());
  auto vp = make_vantage();
  ParallelAnalyzer analyzer{vp, ParallelOptions{.threads = 4}};
  ingest::MappedSource source{trace, sflow::ReadPolicy::strict()};
  (void)analyzer.analyze(kWeek, source, fetcher());
  EXPECT_GT(source.stats().errors(), 0u);
  EXPECT_FALSE(source.within_budget());
  EXPECT_FALSE(source.ok());
}

TEST_F(ParallelFaultTest, MappedStrictWorkerExceptionRethrownNoDeadlock) {
  const auto trace = sflow::MappedTrace::adopt(record_trace(*samples_));
  ASSERT_TRUE(trace.ok());
  ParallelOptions options;
  options.threads = 4;
  // Poison one mid-stream record: segment claiming must still join every
  // worker and rethrow on the calling thread.
  auto hits = std::make_shared<std::atomic<std::uint64_t>>(0);
  options.worker_hook = [hits](std::span<const sflow::FlowSample>,
                               std::uint64_t) {
    if (hits->fetch_add(1) == 40) throw std::runtime_error{"classifier blew up"};
  };
  auto vp = make_vantage();
  ParallelAnalyzer analyzer{vp, options};
  ingest::MappedSource source{trace, sflow::ReadPolicy::lenient()};
  EXPECT_THROW((void)analyzer.analyze(kWeek, source, fetcher()),
               std::runtime_error);
}

TEST_F(ParallelFaultTest, MappedLenientWorkerCompletesDegraded) {
  const auto trace = sflow::MappedTrace::adopt(record_trace(*samples_));
  ASSERT_TRUE(trace.ok());
  ParallelOptions options;
  options.threads = 4;
  options.lenient_workers = true;
  auto hits = std::make_shared<std::atomic<std::uint64_t>>(0);
  options.worker_hook = [hits](std::span<const sflow::FlowSample>,
                               std::uint64_t) {
    if (hits->fetch_add(1) == 40) throw std::runtime_error{"classifier blew up"};
  };
  auto vp = make_vantage();
  ParallelAnalyzer analyzer{vp, options};
  ingest::MappedSource source{trace, sflow::ReadPolicy::lenient()};
  const auto report = analyzer.analyze(kWeek, source, fetcher());
  EXPECT_TRUE(report.degraded);
  ASSERT_EQ(report.worker_errors.size(), 4u);
  std::uint64_t dropped = 0;
  for (const auto count : report.worker_errors) dropped += count;
  EXPECT_EQ(dropped, 1u);  // exactly the poisoned record
}

}  // namespace
}  // namespace ixp::core
