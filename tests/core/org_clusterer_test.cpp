#include "core/org_clusterer.hpp"

#include <gtest/gtest.h>

namespace ixp::core {
namespace {

using net::Ipv4Addr;

dns::DnsName name(const char* text) { return *dns::DnsName::parse(text); }

dns::Uri uri(const char* text) { return *dns::Uri::parse(text); }

classify::ServerMetadata md(Ipv4Addr addr) {
  classify::ServerMetadata m;
  m.addr = addr;
  return m;
}

class ClustererTest : public ::testing::Test {
 protected:
  ClustererTest() {
    db_.add_soa(name("akamai.net"), name("akamai.com"));
    db_.add_soa(name("akamai.com"), name("akamai.com"));
    db_.add_soa(name("google.com"), name("google.com"));
    db_.add_soa(name("youtube.com"), name("google.com"));
    db_.add_soa(name("hostica.com"), name("hostica.com"));
    // Tenant domains whose DNS is run by the meta-hoster.
    db_.add_soa(name("shop-a.com"), name("hostica.com"));
    db_.add_soa(name("shop-b.de"), name("hostica.com"));
  }

  OrgClusterer make(ClusterOptions options = {}) {
    return OrgClusterer{db_, dns::PublicSuffixList::builtin(), options};
  }

  dns::ZoneDatabase db_;
};

TEST_F(ClustererTest, Step1GroupsConsistentIpAndContent) {
  // Hostname SOA -> akamai.com; URI authority's SOA -> akamai.com too.
  auto server = md(Ipv4Addr{1, 0, 0, 1});
  server.hostname = name("e1.akamai.net");
  server.soa_authority = name("akamai.com");
  server.uris = {uri("img.akamai.com/x")};

  const auto result = make().cluster(std::vector{server});
  EXPECT_EQ(result.step_counts[1], 1u);
  const auto& assignment = result.by_server.at(server.addr);
  EXPECT_EQ(assignment.authority.text(), "akamai.com");
  EXPECT_EQ(assignment.step, 1);
}

TEST_F(ClustererTest, Step1WorksWithoutContentSignals) {
  auto server = md(Ipv4Addr{1, 0, 0, 2});
  server.hostname = name("e2.akamai.net");
  server.soa_authority = name("akamai.com");
  const auto result = make().cluster(std::vector{server});
  EXPECT_EQ(result.by_server.at(server.addr).step, 1);
}

TEST_F(ClustererTest, YoutubeUriLeadsToGoogle) {
  // §2.4's worked example: URI youtube.com -> SOA google.com.
  auto server = md(Ipv4Addr{2, 0, 0, 1});
  server.hostname = name("cache3.google.com");
  server.soa_authority = name("google.com");
  server.uris = {uri("youtube.com/watch")};
  const auto result = make().cluster(std::vector{server});
  const auto& assignment = result.by_server.at(server.addr);
  EXPECT_EQ(assignment.step, 1);
  EXPECT_EQ(assignment.authority.text(), "google.com");
}

TEST_F(ClustererTest, Step2MajorityVoteFollowsEstablishedCluster) {
  // Three step-1 servers establish the hostica cluster; a fourth without
  // a hostname must join it via the vote among its URI authorities.
  std::vector<classify::ServerMetadata> servers;
  for (std::uint32_t i = 1; i <= 3; ++i) {
    auto s = md(Ipv4Addr{3, 0, 0, static_cast<std::uint8_t>(i)});
    s.hostname = name(("h" + std::to_string(i) + ".hostica.com").c_str());
    s.soa_authority = name("hostica.com");
    s.uris = {uri("shop-a.com")};
    servers.push_back(s);
  }
  auto voter = md(Ipv4Addr{3, 0, 0, 100});
  voter.uris = {uri("shop-a.com"), uri("shop-b.de")};  // both -> hostica
  servers.push_back(voter);

  const auto result = make().cluster(servers);
  EXPECT_EQ(result.step_counts[1], 3u);
  EXPECT_EQ(result.step_counts[2], 1u);
  EXPECT_EQ(result.by_server.at(voter.addr).authority.text(), "hostica.com");
  EXPECT_EQ(result.clusters.at(name("hostica.com")).size(), 4u);
}

TEST_F(ClustererTest, Step2ConflictingSignalsResolvedByVote) {
  // IP under one authority but content dominated by another: local
  // multiplicity (2 content signals vs 1 IP signal) decides.
  auto server = md(Ipv4Addr{4, 0, 0, 1});
  server.hostname = name("vm9.hostica.com");
  server.soa_authority = name("hostica.com");
  server.uris = {uri("youtube.com"), uri("www.google.com")};
  const auto result = make().cluster(std::vector{server});
  const auto& assignment = result.by_server.at(server.addr);
  EXPECT_EQ(assignment.step, 2);
  EXPECT_EQ(assignment.authority.text(), "google.com");
}

TEST_F(ClustererTest, Step3PartialSoaOnly) {
  // Reverse-zone SOA only (Akamai-deep-inside-ISP style).
  auto server = md(Ipv4Addr{5, 0, 0, 1});
  server.soa_authority = name("akamai.com");  // no hostname!
  const auto result = make().cluster(std::vector{server});
  const auto& assignment = result.by_server.at(server.addr);
  EXPECT_EQ(assignment.step, 3);
  EXPECT_EQ(assignment.authority.text(), "akamai.com");
}

TEST_F(ClustererTest, NoSignalsStaysUnclustered) {
  const auto server = md(Ipv4Addr{6, 0, 0, 1});
  const auto result = make().cluster(std::vector{server});
  EXPECT_EQ(result.step_counts[0], 1u);
  EXPECT_EQ(result.by_server.at(server.addr).step, 0);
  EXPECT_TRUE(result.by_server.at(server.addr).authority.empty());
}

TEST_F(ClustererTest, MaxStepOneDropsEverythingElse) {
  auto voter = md(Ipv4Addr{7, 0, 0, 1});
  voter.uris = {uri("shop-a.com")};
  const auto result =
      make(ClusterOptions{VoteKey::kIpsAndFootprint, 1}).cluster(std::vector{voter});
  EXPECT_EQ(result.clustered(), 0u);
  EXPECT_EQ(result.step_counts[0], 1u);
}

TEST_F(ClustererTest, MaxStepTwoSkipsPartialOnly) {
  auto partial = md(Ipv4Addr{8, 0, 0, 1});
  partial.soa_authority = name("akamai.com");
  const auto result =
      make(ClusterOptions{VoteKey::kIpsAndFootprint, 2}).cluster(std::vector{partial});
  EXPECT_EQ(result.clustered(), 0u);
}

TEST_F(ClustererTest, StepSharesSumToOne) {
  std::vector<classify::ServerMetadata> servers;
  for (std::uint32_t i = 0; i < 20; ++i) {
    auto s = md(Ipv4Addr{9, 0, 1, static_cast<std::uint8_t>(i)});
    s.hostname = name("x.akamai.net");
    s.soa_authority = name("akamai.com");
    servers.push_back(s);
  }
  const auto result = make().cluster(servers);
  EXPECT_NEAR(result.step_share(1) + result.step_share(2) + result.step_share(3),
              1.0, 1e-9);
}

TEST_F(ClustererTest, CertNamesActAsContentSignals) {
  auto server = md(Ipv4Addr{10, 0, 0, 1});
  server.cert_names = {name("www.youtube.com"), name("youtube.com")};
  const auto result = make().cluster(std::vector{server});
  const auto& assignment = result.by_server.at(server.addr);
  EXPECT_EQ(assignment.step, 2);
  EXPECT_EQ(assignment.authority.text(), "google.com");
}

TEST_F(ClustererTest, DeterministicAcrossRuns) {
  std::vector<classify::ServerMetadata> servers;
  for (std::uint32_t i = 0; i < 10; ++i) {
    auto s = md(Ipv4Addr{11, 0, 0, static_cast<std::uint8_t>(i)});
    s.uris = {uri(i % 2 == 0 ? "shop-a.com" : "youtube.com")};
    servers.push_back(s);
  }
  const auto a = make().cluster(servers);
  const auto b = make().cluster(servers);
  for (const auto& [addr, assignment] : a.by_server) {
    EXPECT_EQ(assignment.authority, b.by_server.at(addr).authority);
    EXPECT_EQ(assignment.step, b.by_server.at(addr).step);
  }
}

}  // namespace
}  // namespace ixp::core
