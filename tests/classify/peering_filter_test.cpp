#include "classify/peering_filter.hpp"

#include <gtest/gtest.h>

namespace ixp::classify {
namespace {

using net::Ipv4Addr;
using sflow::MacAddr;

class PeeringFilterTest : public ::testing::Test {
 protected:
  PeeringFilterTest() {
    fabric::Member a;
    a.asn = net::Asn{100};
    ixp_.add_member(a);
    fabric::Member b;
    b.asn = net::Asn{200};
    ixp_.add_member(b);
    fabric::Member late;
    late.asn = net::Asn{300};
    late.join_week = 50;
    ixp_.add_member(late);
  }

  sflow::FlowSample tcp_sample(MacAddr src_mac, MacAddr dst_mac) const {
    sflow::FrameSpec spec;
    spec.src_mac = src_mac;
    spec.dst_mac = dst_mac;
    spec.src_ip = Ipv4Addr{10, 0, 0, 1};
    spec.dst_ip = Ipv4Addr{10, 0, 0, 2};
    spec.src_port = 12345;
    spec.dst_port = 80;
    sflow::FlowSample sample;
    sample.sampling_rate = 16384;
    sample.frame = sflow::build_tcp_frame(spec, {}, 100);
    return sample;
  }

  MacAddr mac(std::uint32_t asn) const {
    return fabric::Ixp::port_mac_for(net::Asn{asn});
  }

  fabric::Ixp ixp_;
  FilterCounters counters_;
};

TEST_F(PeeringFilterTest, MemberToMemberTcpIsPeering) {
  PeeringFilter filter{ixp_, 45};
  const auto result = filter.filter(tcp_sample(mac(100), mac(200)), counters_);
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->frame.is_tcp());
  EXPECT_EQ(counters_.of(TrafficClass::kPeering), 1u);
  EXPECT_GT(result->expanded_bytes, 0.0);
  EXPECT_GT(counters_.tcp_bytes, 0.0);
  EXPECT_EQ(counters_.udp_bytes, 0.0);
}

TEST_F(PeeringFilterTest, NonIpv4Filtered) {
  PeeringFilter filter{ixp_, 45};
  sflow::FlowSample sample;
  sample.sampling_rate = 16384;
  sample.frame = sflow::build_other_frame(mac(100), mac(200),
                                          sflow::EtherType::kIpv6, 100);
  EXPECT_FALSE(filter.filter(sample, counters_));
  EXPECT_EQ(counters_.of(TrafficClass::kNonIpv4), 1u);
}

TEST_F(PeeringFilterTest, NonMemberMacFiltered) {
  PeeringFilter filter{ixp_, 45};
  const auto offsite = MacAddr::from_id(0xBAD);
  EXPECT_FALSE(filter.filter(tcp_sample(offsite, mac(200)), counters_));
  EXPECT_FALSE(filter.filter(tcp_sample(mac(100), offsite), counters_));
  EXPECT_EQ(counters_.of(TrafficClass::kNonMemberOrLocal), 2u);
}

TEST_F(PeeringFilterTest, ManagementTrafficIsLocal) {
  PeeringFilter filter{ixp_, 45};
  EXPECT_FALSE(
      filter.filter(tcp_sample(ixp_.management_mac(), mac(200)), counters_));
  EXPECT_EQ(counters_.of(TrafficClass::kNonMemberOrLocal), 1u);
}

TEST_F(PeeringFilterTest, NotYetJoinedMemberIsNonMember) {
  PeeringFilter early{ixp_, 45};
  EXPECT_FALSE(early.filter(tcp_sample(mac(300), mac(200)), counters_));
  EXPECT_EQ(counters_.of(TrafficClass::kNonMemberOrLocal), 1u);

  PeeringFilter late{ixp_, 50};
  EXPECT_TRUE(late.filter(tcp_sample(mac(300), mac(200)), counters_));
}

TEST_F(PeeringFilterTest, IcmpFilteredAsNonTcpUdp) {
  PeeringFilter filter{ixp_, 45};
  sflow::FrameSpec spec;
  spec.src_mac = mac(100);
  spec.dst_mac = mac(200);
  spec.src_ip = Ipv4Addr{10, 0, 0, 1};
  spec.dst_ip = Ipv4Addr{10, 0, 0, 2};
  sflow::FlowSample sample;
  sample.sampling_rate = 16384;
  sample.frame = sflow::build_ipv4_frame(spec, sflow::IpProto::kIcmp, 64);
  EXPECT_FALSE(filter.filter(sample, counters_));
  EXPECT_EQ(counters_.of(TrafficClass::kNonTcpUdp), 1u);
}

TEST_F(PeeringFilterTest, ExpandedBytesUseSamplingRate) {
  PeeringFilter filter{ixp_, 45};
  auto sample = tcp_sample(mac(100), mac(200));
  const auto result = filter.filter(sample, counters_);
  ASSERT_TRUE(result);
  EXPECT_DOUBLE_EQ(result->expanded_bytes,
                   static_cast<double>(sample.frame.frame_length) * 16384.0);
}

TEST_F(PeeringFilterTest, UdpCountsTowardsUdpBytes) {
  PeeringFilter filter{ixp_, 45};
  sflow::FrameSpec spec;
  spec.src_mac = mac(100);
  spec.dst_mac = mac(200);
  spec.src_ip = Ipv4Addr{10, 0, 0, 1};
  spec.dst_ip = Ipv4Addr{10, 0, 0, 2};
  spec.src_port = 53;
  spec.dst_port = 33000;
  sflow::FlowSample sample;
  sample.sampling_rate = 16384;
  sample.frame = sflow::build_udp_frame(spec, {}, 200);
  EXPECT_TRUE(filter.filter(sample, counters_));
  EXPECT_GT(counters_.udp_bytes, 0.0);
  EXPECT_EQ(counters_.tcp_bytes, 0.0);
}

TEST_F(PeeringFilterTest, TotalsAddUp) {
  PeeringFilter filter{ixp_, 45};
  (void)filter.filter(tcp_sample(mac(100), mac(200)), counters_);
  (void)filter.filter(tcp_sample(MacAddr::from_id(1), mac(200)), counters_);
  EXPECT_EQ(counters_.total_samples(), 2u);
  EXPECT_GT(counters_.total_bytes(), 0.0);
}

}  // namespace
}  // namespace ixp::classify
