#include "classify/http_matcher.hpp"

#include <gtest/gtest.h>

#include <array>
#include <span>
#include <string>

namespace ixp::classify {
namespace {

TEST(HttpMatcher, MatchesRequestLineWithHost) {
  const auto match = HttpMatcher::match(
      "GET /index.html HTTP/1.1\r\nHost: www.example.com\r\nAccept: */*\r\n");
  EXPECT_EQ(match.indication, HttpIndication::kRequest);
  EXPECT_EQ(match.host, "www.example.com");
  EXPECT_EQ(match.path, "/index.html");
}

TEST(HttpMatcher, MatchesAllMethodWords) {
  for (const char* method :
       {"GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "TRACE", "CONNECT"}) {
    const std::string payload = std::string{method} + " / HTTP/1.0\r\n";
    EXPECT_EQ(HttpMatcher::match(payload).indication, HttpIndication::kRequest)
        << method;
  }
}

TEST(HttpMatcher, RequestNeedsVersionToken) {
  // RTSP and truncated request lines must not match as HTTP requests.
  EXPECT_NE(HttpMatcher::match("GET / RTSP/1.0\r\n").indication,
            HttpIndication::kRequest);
  EXPECT_NE(HttpMatcher::match("GET /something-without-version").indication,
            HttpIndication::kRequest);
  EXPECT_NE(HttpMatcher::match("GET / HTTP/2.0\r\n").indication,
            HttpIndication::kRequest);
}

TEST(HttpMatcher, MatchesResponseStatusLine) {
  const auto ok = HttpMatcher::match(
      "HTTP/1.1 200 OK\r\nServer: nginx\r\nContent-Length: 1234\r\n");
  EXPECT_EQ(ok.indication, HttpIndication::kResponse);
  EXPECT_EQ(HttpMatcher::match("HTTP/1.0 404 Not Found\r\n").indication,
            HttpIndication::kResponse);
}

TEST(HttpMatcher, RejectsMalformedStatusLines) {
  EXPECT_EQ(HttpMatcher::match("HTTP/1.1 2x0 OK\r\n").indication,
            HttpIndication::kNone);
  EXPECT_EQ(HttpMatcher::match("HTTP/1.").indication, HttpIndication::kNone);
  EXPECT_EQ(HttpMatcher::match("HTTP/1.1").indication, HttpIndication::kNone);
}

TEST(HttpMatcher, HeaderFieldWordsMidConnection) {
  const auto match =
      HttpMatcher::match("binary-ish\nContent-Type: text/html\r\nmore");
  EXPECT_EQ(match.indication, HttpIndication::kHeaderOnly);
}

TEST(HttpMatcher, HeaderWordRequiresLineStart) {
  // "Server:" buried mid-line is random payload, not a header.
  EXPECT_EQ(HttpMatcher::match("xxServer: apache").indication,
            HttpIndication::kNone);
  EXPECT_EQ(HttpMatcher::match("Server: apache").indication,
            HttpIndication::kHeaderOnly);
}

TEST(HttpMatcher, EmptyAndBinaryPayloads) {
  EXPECT_EQ(HttpMatcher::match("").indication, HttpIndication::kNone);
  const std::array<std::byte, 8> binary{
      std::byte{0x16}, std::byte{0x03}, std::byte{0x01}, std::byte{0x00},
      std::byte{0xff}, std::byte{0x00}, std::byte{0x01}, std::byte{0x02}};
  EXPECT_EQ(HttpMatcher::match(std::span<const std::byte>{binary}).indication,
            HttpIndication::kNone);
}

TEST(HttpMatcher, HostExtractionTrimsAndStopsAtCrlf) {
  const auto match =
      HttpMatcher::match("GET / HTTP/1.1\r\nHost:   example.com\r\nX: 1\r\n");
  EXPECT_EQ(match.host, "example.com");
}

TEST(HttpMatcher, TruncatedHostAtCaptureBoundaryStillUsable) {
  // sFlow cuts the snippet mid-value; a non-empty prefix is returned.
  const auto match = HttpMatcher::match("GET / HTTP/1.1\r\nHost: www.exa");
  EXPECT_EQ(match.host, "www.exa");
}

TEST(HttpMatcher, EmptyTruncatedHostIgnored) {
  const auto match = HttpMatcher::match("GET / HTTP/1.1\r\nHost: ");
  EXPECT_EQ(match.indication, HttpIndication::kRequest);
  EXPECT_TRUE(match.host.empty());
}

TEST(HttpMatcher, RequestWithoutHostHeader) {
  const auto match = HttpMatcher::match("GET /c123 HTTP/1.1\r\nAccept: */*\r\n");
  EXPECT_EQ(match.indication, HttpIndication::kRequest);
  EXPECT_TRUE(match.host.empty());
}

}  // namespace
}  // namespace ixp::classify
