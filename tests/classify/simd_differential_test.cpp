// Differential fuzz suites for the SIMD hot-path kernels (DESIGN.md §14):
// every vector tier must be byte-identical to its scalar oracle on
// clean, truncated, unaligned, and non-ASCII inputs.
//
//   - HttpMatcher::match (runtime-dispatched) and the SSE2/AVX2 policies
//     directly vs match_scalar;
//   - LaneFlags::compute (dispatched) plus the pinned SSE2/AVX2 lane
//     kernels vs LaneFlags::compute_scalar.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "classify/http_match_impl.hpp"
#include "classify/http_matcher.hpp"
#include "classify/lane_flags.hpp"
#include "util/cpu_features.hpp"
#include "util/rng.hpp"

namespace ixp::classify {
namespace {

// ---- HttpMatcher ---------------------------------------------------------

/// Compares two matches on the same payload: equal indication, and host/
/// path views that are the same bytes at the same payload offsets (view
/// identity, not just content).
void expect_match_eq(std::string_view payload, const HttpMatch& got,
                     const HttpMatch& want, const char* tier) {
  ASSERT_EQ(static_cast<int>(got.indication), static_cast<int>(want.indication))
      << tier << " payload: " << std::string(payload.substr(0, 60));
  EXPECT_EQ(got.host.data(), want.host.data()) << tier;
  EXPECT_EQ(got.host.size(), want.host.size()) << tier;
  EXPECT_EQ(got.path.data(), want.path.data()) << tier;
  EXPECT_EQ(got.path.size(), want.path.size()) << tier;
}

void expect_all_tiers_agree(std::string_view payload) {
  const HttpMatch want = HttpMatcher::match_scalar(payload);
  expect_match_eq(payload, HttpMatcher::match(payload), want, "dispatched");
#ifdef IXPSCOPE_HTTP_X86
  expect_match_eq(payload, detail::match_impl<detail::Sse2Policy>(payload),
                  want, "sse2");
  expect_match_eq(payload, detail::match_avx2(payload), want, "avx2");
#endif
}

/// HTTP-shaped corpus fragments the fuzzer splices and mutates.
const char* const kFragments[] = {
    "GET / HTTP/1.1\r\n",
    "GET /index.html?q=Host:fake.example HTTP/1.1\r\n",
    "POST /submit HTTP/1.0\r\n",
    "CONNECT proxy.example:443 HTTP/1.1\r\n",
    "HTTP/1.1 200 OK\r\n",
    "HTTP/1.0 404 Not Found\r\n",
    "Host: www.example.com\r\n",
    "Host:no-space.example\r\n",
    "X-Forwarded-Host: hidden.example\r\n",
    "Server: nginx/1.2.1\r\n",
    "Content-Type: text/html; charset=utf-8\r\n",
    "Access-Control-Allow-Methods: GET, POST\r\n",
    "Set-Cookie: id=Host:cookie.example; path=/\r\n",
    "Accept: */*\r\n",
    "\r\n",
    "\n",
    "\r",
    "binary\x00\x01\x02\x7f\x80\xff junk",
    "GET GET HEAD POST HTTP/1.",
    "HTTP/1.1200",
};

TEST(SimdHttpDifferential, SplicedCorpus) {
  util::Rng rng{21};
  for (int trial = 0; trial < 30000; ++trial) {
    std::string payload;
    const std::size_t parts = 1 + rng.next_below(5);
    for (std::size_t i = 0; i < parts; ++i)
      payload += kFragments[rng.next_below(std::size(kFragments))];
    // Mutations: truncate anywhere, flip random bytes (non-ASCII
    // included), occasionally drop a byte to shift alignment.
    if (payload.size() > 1) payload.resize(1 + rng.next_below(payload.size()));
    for (int flips = static_cast<int>(rng.next_below(4)); flips > 0; --flips)
      payload[rng.next_below(payload.size())] =
          static_cast<char>(rng.next_below(256));
    if (rng.next_below(4) == 0 && payload.size() > 1)
      payload.erase(rng.next_below(payload.size()), 1);
    expect_all_tiers_agree(payload);
  }
}

TEST(SimdHttpDifferential, PureRandomBytes) {
  util::Rng rng{22};
  for (int trial = 0; trial < 20000; ++trial) {
    std::string payload(1 + rng.next_below(128), '\0');
    for (auto& c : payload) c = static_cast<char>(rng.next_below(256));
    expect_all_tiers_agree(payload);
  }
}

TEST(SimdHttpDifferential, UnalignedViews) {
  // The same bytes probed at every start offset within an oversized
  // buffer: vector loads must not care where the payload begins.
  const std::string base =
      "GET /path/to/resource HTTP/1.1\r\nHost: www.unaligned.example\r\n"
      "User-Agent: test\r\nAccept: */*\r\n\r\n";
  std::string buffer(64 + base.size(), 'x');
  for (std::size_t offset = 0; offset < 64; ++offset) {
    std::memcpy(buffer.data() + offset, base.data(), base.size());
    expect_all_tiers_agree(
        std::string_view{buffer.data() + offset, base.size()});
  }
}

TEST(SimdHttpDifferential, EveryTruncationOfARealExchange) {
  const std::string exchange =
      "HTTP/1.1 301 Moved Permanently\r\nLocation: http://e.example/\r\n"
      "Server: Apache/2.2\r\nContent-Length: 231\r\nSet-Cookie: a=b\r\n"
      "Cache-Control: max-age=3600\r\n\r\n<html>\xc3\xa9\xf0\x9f\x8c\x8d";
  for (std::size_t cut = 0; cut <= exchange.size(); ++cut)
    expect_all_tiers_agree(std::string_view{exchange}.substr(0, cut));
}

// ---- anchored Host extraction (the extract_header fix) -------------------

TEST(HostAnchoring, MidLineHostIsNeverLifted) {
  // Pre-§14 extract_header ran text.find(field): "Host:" inside a URL or
  // a cookie was lifted as the Host header. The anchored walk must not.
  const auto in_url = HttpMatcher::match(
      "GET /r?to=Host:evil.example HTTP/1.1\r\nHost: good.example\r\n");
  EXPECT_EQ(in_url.indication, HttpIndication::kRequest);
  EXPECT_EQ(in_url.host, "good.example");

  const auto only_mid_line = HttpMatcher::match(
      "GET /r?to=Host:evil.example HTTP/1.1\r\nAccept: */*\r\n");
  EXPECT_EQ(only_mid_line.indication, HttpIndication::kRequest);
  EXPECT_TRUE(only_mid_line.host.empty()) << only_mid_line.host;

  const auto in_cookie = HttpMatcher::match(
      "HTTP/1.1 200 OK\r\nSet-Cookie: return=Host:evil.example\r\n");
  EXPECT_EQ(in_cookie.indication, HttpIndication::kResponse);
  EXPECT_TRUE(in_cookie.host.empty()) << in_cookie.host;
}

TEST(HostAnchoring, ForwardedHostIsNotHost) {
  // "X-Forwarded-Host:" contains "Host:" mid-token; anchoring rejects it.
  const auto match = HttpMatcher::match(
      "GET / HTTP/1.1\r\nX-Forwarded-Host: hidden.example\r\n");
  EXPECT_EQ(match.indication, HttpIndication::kRequest);
  EXPECT_TRUE(match.host.empty()) << match.host;
}

TEST(HostAnchoring, LineStartPositionsStillMatch) {
  // Anchoring must keep the legitimate positions: payload start and
  // immediately after a line break (bare LF included — sFlow snippets
  // can start mid-header).
  const auto at_start = HttpMatcher::match("Host: first.example\r\n");
  EXPECT_EQ(at_start.indication, HttpIndication::kHeaderOnly);
  EXPECT_EQ(at_start.host, "first.example");

  const auto after_crlf = HttpMatcher::match(
      "GET / HTTP/1.1\r\nHost: after-crlf.example\r\n");
  EXPECT_EQ(after_crlf.host, "after-crlf.example");

  const auto after_lf =
      HttpMatcher::match("Accept: */*\nHost: after-lf.example\r\n");
  EXPECT_EQ(after_lf.indication, HttpIndication::kHeaderOnly);
  EXPECT_EQ(after_lf.host, "after-lf.example");
}

// ---- LaneFlags -----------------------------------------------------------

/// Checks every lane tier — the dispatched form, the pinned SSE2 form,
/// and (when the hardware can execute it) the pinned AVX2 form —
/// against compute_scalar on the same arrays.
void expect_lane_tiers_agree(const std::uint16_t* src_port,
                             const std::uint16_t* dst_port,
                             const std::uint8_t* tcp, const std::uint8_t* ind,
                             std::size_t n, int trial) {
  std::vector<std::uint8_t> ref_src(n), ref_dst(n);
  LaneFlags::compute_scalar(src_port, dst_port, tcp, ind, n, ref_src.data(),
                            ref_dst.data());
  const auto check = [&](auto&& tier_fn, const char* tier) {
    std::vector<std::uint8_t> got_src(n), got_dst(n);
    tier_fn(src_port, dst_port, tcp, ind, n, got_src.data(), got_dst.data());
    ASSERT_EQ(got_src, ref_src) << tier << " trial " << trial << " n=" << n;
    ASSERT_EQ(got_dst, ref_dst) << tier << " trial " << trial << " n=" << n;
  };
  check(LaneFlags::compute, "dispatched");
  check(detail::lane_flags_sse2, "sse2");
  if (util::CpuFeatures::detect().avx2)
    check(detail::lane_flags_avx2, "avx2");
}

TEST(LaneFlagsDifferential, RandomizedLanes) {
  util::Rng rng{23};
  // Interesting ports dominate so the lane masks actually fire.
  const std::uint16_t pool[] = {80, 443, 1935, 8080, 8081, 0, 53, 65535};
  for (int trial = 0; trial < 3000; ++trial) {
    const std::size_t n = rng.next_below(600);
    std::vector<std::uint16_t> src_port(n), dst_port(n);
    std::vector<std::uint8_t> tcp(n), indication(n);
    for (std::size_t i = 0; i < n; ++i) {
      src_port[i] = rng.next_below(2) ? pool[rng.next_below(std::size(pool))]
                                      : static_cast<std::uint16_t>(rng());
      dst_port[i] = rng.next_below(2) ? pool[rng.next_below(std::size(pool))]
                                      : static_cast<std::uint16_t>(rng());
      tcp[i] = static_cast<std::uint8_t>(rng.next_below(2));
      indication[i] = static_cast<std::uint8_t>(rng.next_below(4));
    }
    expect_lane_tiers_agree(src_port.data(), dst_port.data(), tcp.data(),
                            indication.data(), n, trial);
  }
}

TEST(LaneFlagsDifferential, TailLengthsBelowOneVector) {
  // Every length 0..95 crosses both the 16-lane and the 32-lane step
  // boundaries at least once, including the AVX2 32-wide step followed
  // by an SSE2 16-wide step followed by a scalar tail.
  util::Rng rng{24};
  for (std::size_t n = 0; n < 96; ++n) {
    std::vector<std::uint16_t> src_port(n), dst_port(n);
    std::vector<std::uint8_t> tcp(n), indication(n);
    for (std::size_t i = 0; i < n; ++i) {
      src_port[i] = static_cast<std::uint16_t>(rng());
      dst_port[i] = static_cast<std::uint16_t>(rng());
      tcp[i] = static_cast<std::uint8_t>(rng.next_below(2));
      indication[i] = static_cast<std::uint8_t>(rng.next_below(4));
    }
    expect_lane_tiers_agree(src_port.data(), dst_port.data(), tcp.data(),
                            indication.data(), n, -1);
  }
}

}  // namespace
}  // namespace ixp::classify
