#include "classify/dissector.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace ixp::classify {
namespace {

using net::Ipv4Addr;

/// Builds, parses, and ingests a sample in one scope: ParsedFrame's
/// payload span is only valid while the capture buffer lives.
void ingest(TrafficDissector& d, Ipv4Addr src, Ipv4Addr dst,
            std::uint16_t src_port, std::uint16_t dst_port,
            const std::string& payload, std::uint64_t bytes = 1000,
            std::uint64_t seq = 0) {
  sflow::FrameSpec spec;
  spec.src_mac = sflow::MacAddr::from_id(1);
  spec.dst_mac = sflow::MacAddr::from_id(2);
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.src_port = src_port;
  spec.dst_port = dst_port;
  std::vector<std::byte> data(payload.size());
  std::memcpy(data.data(), payload.data(), payload.size());
  const sflow::SampledFrame frame =
      sflow::build_tcp_frame(spec, data, payload.size());
  PeeringSample sample;
  sample.frame = *sflow::parse_frame(frame);
  sample.expanded_bytes = bytes;
  sample.seq = seq;
  d.ingest(sample);
}

const Ipv4Addr kServer{10, 0, 0, 1};
const Ipv4Addr kClient{172, 20, 0, 9};

TEST(TrafficDissector, RequestIdentifiesServerAndClient) {
  TrafficDissector d;
  ingest(d, kClient, kServer, 40000, 80,
         "GET / HTTP/1.1\r\nHost: example.com\r\n");
  const auto& activity = d.activity();
  EXPECT_TRUE(activity.at(kServer).http_server());
  EXPECT_FALSE(activity.at(kServer).client());
  EXPECT_TRUE(activity.at(kClient).client());
  EXPECT_FALSE(activity.at(kClient).http_server());
  ASSERT_EQ(d.hosts_of(kServer).size(), 1u);
  EXPECT_EQ(d.hosts_of(kServer)[0], "example.com");
  EXPECT_TRUE(d.hosts_of(kClient).empty());
}

TEST(TrafficDissector, ResponseIdentifiesServerOnSrcSide) {
  TrafficDissector d;
  ingest(d, kServer, kClient, 80, 40000,
                       "HTTP/1.1 200 OK\r\nServer: x\r\n");
  EXPECT_TRUE(d.activity().at(kServer).http_server());
  EXPECT_TRUE(d.activity().at(kClient).client());
}

TEST(TrafficDissector, OpaquePayloadIdentifiesNothing) {
  TrafficDissector d;
  ingest(d, kClient, kServer, 40000, 80, "\x01\x02\x03\x04");
  EXPECT_FALSE(d.activity().at(kServer).http_server());
  EXPECT_FALSE(d.activity().at(kClient).client());
}

TEST(TrafficDissector, Port443MarksCandidates) {
  TrafficDissector d;
  ingest(d, kClient, kServer, 40000, 443, "\x16\x03\x01");
  const auto candidates = d.https_candidates();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], kServer);
  EXPECT_FALSE(d.activity().at(kServer).web_server());  // not yet confirmed
}

TEST(TrafficDissector, ConfirmHttpsPromotesToWebServer) {
  TrafficDissector d;
  ingest(d, kClient, kServer, 40000, 443, "");
  d.confirm_https(kServer);
  EXPECT_TRUE(d.activity().at(kServer).https_server());
  EXPECT_TRUE(d.activity().at(kServer).web_server());
  const auto servers = d.web_servers();
  ASSERT_EQ(servers.size(), 1u);
  EXPECT_EQ(servers[0], kServer);
}

TEST(TrafficDissector, MultiPurposeNeedsTwoPorts) {
  TrafficDissector d;
  ingest(d, kClient, kServer, 40000, 80,
                       "GET / HTTP/1.1\r\nHost: a.com\r\n");
  EXPECT_FALSE(d.activity().at(kServer).multi_purpose());
  ingest(d, kClient, kServer, 40001, 1935, "rtmp-handshake");
  EXPECT_TRUE(d.activity().at(kServer).multi_purpose());
}

TEST(TrafficDissector, HttpsPlusHttpIsMultiPurpose) {
  TrafficDissector d;
  ingest(d, kClient, kServer, 40000, 80,
                       "GET / HTTP/1.1\r\nHost: a.com\r\n");
  ingest(d, kClient, kServer, 40001, 443, "");
  d.confirm_https(kServer);
  EXPECT_TRUE(d.activity().at(kServer).multi_purpose());
}

TEST(TrafficDissector, DualRoleServerAndClient) {
  TrafficDissector d;
  // kServer serves...
  ingest(d, kClient, kServer, 40000, 80,
                       "GET / HTTP/1.1\r\nHost: a.com\r\n");
  // ...and also fetches from another server (machine-to-machine).
  const Ipv4Addr other{10, 0, 0, 2};
  ingest(d, kServer, other, 41000, 80,
                       "GET / HTTP/1.1\r\nHost: b.com\r\n");
  const auto summary = d.summarize();
  EXPECT_EQ(summary.dual_role_ips, 1u);
}

TEST(TrafficDissector, HostsDeduplicatedAndCapped) {
  TrafficDissector d;
  for (int i = 0; i < 20; ++i) {
    ingest(d, kClient, kServer, 40000, 80,
                         "GET / HTTP/1.1\r\nHost: host" + std::to_string(i % 12) +
                             ".com\r\n");
  }
  EXPECT_LE(d.hosts_of(kServer).size(), 8u);
  // Duplicates collapsed.
  ingest(d, kClient, kServer, 40000, 80,
                       "GET / HTTP/1.1\r\nHost: host0.com\r\n");
  EXPECT_LE(d.hosts_of(kServer).size(), 8u);
}

TEST(TrafficDissector, BytesAccumulateOnBothEndpoints) {
  TrafficDissector d;
  ingest(d, kClient, kServer, 40000, 80, "", 500);
  ingest(d, kServer, kClient, 80, 40000, "", 700);
  EXPECT_EQ(d.activity().at(kServer).bytes, 1200u);
  EXPECT_EQ(d.activity().at(kClient).bytes, 1200u);
  EXPECT_DOUBLE_EQ(d.summarize().total_bytes, 1200.0);
}

TEST(TrafficDissector, MergeReproducesSequentialHostOrder) {
  // 12 distinct hosts (cap is 8) split across two dissectors; the merged
  // host set must equal the one a single dissector accumulates, because
  // the cap keeps the 8 smallest (first_seq, name) keys — an exact order
  // statistic of the union.
  const auto host_request = [](int i) {
    return "GET / HTTP/1.1\r\nHost: host" + std::to_string(i) + ".com\r\n";
  };
  TrafficDissector whole;
  TrafficDissector left;
  TrafficDissector right;
  for (int i = 0; i < 12; ++i) {
    const auto seq = static_cast<std::uint64_t>(i);
    ingest(whole, kClient, kServer, 40000, 80, host_request(i), 1000, seq);
    ingest(i % 2 == 0 ? left : right, kClient, kServer, 40000, 80,
           host_request(i), 1000, seq);
  }
  left.merge(std::move(right));
  EXPECT_EQ(left.hosts_of(kServer), whole.hosts_of(kServer));
  EXPECT_EQ(left.activity().at(kServer).samples,
            whole.activity().at(kServer).samples);
  EXPECT_EQ(left.activity().at(kServer).bytes,
            whole.activity().at(kServer).bytes);
  EXPECT_EQ(left.summarize(), whole.summarize());
}

TEST(TrafficDissector, SummaryCounts) {
  TrafficDissector d;
  ingest(d, kClient, kServer, 40000, 80,
                       "GET / HTTP/1.1\r\nHost: a.com\r\n");
  const auto summary = d.summarize();
  EXPECT_EQ(summary.unique_ips, 2u);
  EXPECT_EQ(summary.http_server_ips, 1u);
  EXPECT_EQ(summary.web_server_ips, 1u);
  EXPECT_EQ(summary.client_ips, 1u);
  EXPECT_EQ(summary.https_server_ips, 0u);
}

// Regression: ingest takes references into the activity table for BOTH
// endpoints; if inserting the second endpoint rehashed the table, the
// first reference dangled into the freed slot array and the update was
// lost (or crashed). Growing the map one fresh address per sample walks
// every rehash boundary up to 1024 slots, so the fixed-src counter must
// come out exact — any boundary miss shows up as a short count.
TEST(TrafficDissector, CounterSurvivesEveryRehashBoundary) {
  TrafficDissector d;
  constexpr int kSamples = 600;
  for (int i = 0; i < kSamples; ++i) {
    const Ipv4Addr fresh{10, 1, static_cast<std::uint8_t>(i >> 8),
                         static_cast<std::uint8_t>(i & 0xFF)};
    ingest(d, kClient, fresh, 40000, 9999, "x", 10);
  }
  ASSERT_TRUE(d.activity().contains(kClient));
  EXPECT_EQ(d.activity().at(kClient).samples, static_cast<std::uint64_t>(kSamples));
  EXPECT_EQ(d.activity().at(kClient).bytes, 10u * kSamples);
  for (int i = 0; i < kSamples; ++i) {
    const Ipv4Addr fresh{10, 1, static_cast<std::uint8_t>(i >> 8),
                         static_cast<std::uint8_t>(i & 0xFF)};
    EXPECT_EQ(d.activity().at(fresh).samples, 1u) << i;
  }
}

}  // namespace
}  // namespace ixp::classify
