// Property tests for the HTTP matcher: robustness against arbitrary
// bytes (the sampled payloads are mostly binary), truncation stability,
// and zero false positives on structured non-HTTP protocols.
#include <gtest/gtest.h>

#include <string>

#include "classify/http_matcher.hpp"
#include "util/rng.hpp"

namespace ixp::classify {
namespace {

class RandomPayloadTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPayloadTest, NeverMisreadsRandomBytesAsRequestOrResponse) {
  util::Rng rng{GetParam()};
  int structured = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string payload(1 + rng.next_below(74), '\0');
    for (auto& c : payload) c = static_cast<char>(rng.next_below(256));
    const auto match = HttpMatcher::match(payload);
    // Random bytes must essentially never look like an HTTP initial line
    // (the probability of "GET ..." + "HTTP/1.x" arising by chance in 74
    // bytes is astronomically small).
    if (match.indication == HttpIndication::kRequest ||
        match.indication == HttpIndication::kResponse)
      ++structured;
  }
  EXPECT_EQ(structured, 0);
}

TEST_P(RandomPayloadTest, TruncationNeverFlipsMissToHit) {
  // If the full snippet does not match, neither may any prefix... the
  // reverse can happen (a prefix may lack the header), so we assert the
  // safe direction: a matching prefix implies structure was present.
  util::Rng rng{GetParam() ^ 0xabcdef};
  const std::string request =
      "GET /x HTTP/1.1\r\nHost: www.example.com\r\nAccept: */*\r\n";
  for (std::size_t cut = 0; cut <= request.size(); ++cut) {
    const auto match = HttpMatcher::match(std::string_view{request}.substr(0, cut));
    if (cut >= 17) {
      // Once the full request line fits, the match must hold.
      EXPECT_EQ(match.indication, HttpIndication::kRequest) << "cut=" << cut;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPayloadTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(HttpMatcherProtocols, NoFalsePositivesOnOtherProtocols) {
  // Structured non-HTTP payloads that share superficial features.
  const char* payloads[] = {
      "SSH-2.0-OpenSSH_6.0p1 Debian-4\r\n",
      "220 mail.example.com ESMTP Postfix\r\n",
      "RTSP/1.0 200 OK\r\nCSeq: 1\r\n",          // RTSP response
      "SETUP rtsp://x/track1 RTSP/1.0\r\n",
      "\x16\x03\x01\x02\x00\x01\x00\x01\xfc",    // TLS ClientHello
      "*1\r\n$4\r\nPING\r\n",                    // RESP
      "GIF89a.............",
      "%PDF-1.4 ...",
  };
  for (const char* payload : payloads) {
    const auto match = HttpMatcher::match(std::string_view{payload});
    EXPECT_NE(match.indication, HttpIndication::kRequest) << payload;
    EXPECT_NE(match.indication, HttpIndication::kResponse) << payload;
  }
}

TEST(HttpMatcherProtocols, SipIsKeptOut) {
  // SIP reuses HTTP-style framing but a different version token.
  EXPECT_NE(HttpMatcher::match("INVITE sip:bob@example.com SIP/2.0\r\n").indication,
            HttpIndication::kRequest);
  EXPECT_NE(HttpMatcher::match("SIP/2.0 200 OK\r\n").indication,
            HttpIndication::kResponse);
}

}  // namespace
}  // namespace ixp::classify
