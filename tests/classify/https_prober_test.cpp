#include "classify/https_prober.hpp"

#include <gtest/gtest.h>

#include "dns/public_suffix.hpp"

namespace ixp::classify {
namespace {

using net::Ipv4Addr;

x509::CertificateChain valid_chain() {
  x509::Certificate leaf;
  leaf.subject = *dns::DnsName::parse("www.example.com");
  leaf.key_usages = {x509::KeyUsage::kServerAuth};
  leaf.subject_key = "leaf";
  leaf.issuer_key = "root";
  leaf.not_before = 0;
  leaf.not_after = 100000;
  return x509::CertificateChain{{leaf}};
}

class HttpsProberTest : public ::testing::Test {
 protected:
  HttpsProberTest() { roots_.trust("root"); }

  x509::RootStore roots_;
};

TEST_F(HttpsProberTest, ConfirmsValidStableServers) {
  HttpsProber prober{roots_, dns::PublicSuffixList::builtin(), 3};
  const Ipv4Addr good{1, 1, 1, 1};
  const Ipv4Addr silent{2, 2, 2, 2};
  const std::vector<Ipv4Addr> candidates{good, silent};
  ProbeFunnel funnel;
  const auto confirmed = prober.probe(
      candidates,
      [&](Ipv4Addr addr, int times) -> std::vector<x509::CertificateChain> {
        if (addr != good) return {};
        return std::vector<x509::CertificateChain>(
            static_cast<std::size_t>(times), valid_chain());
      },
      funnel);
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0], good);
  EXPECT_EQ(funnel.candidates, 2u);
  EXPECT_EQ(funnel.responded, 1u);
  EXPECT_EQ(funnel.confirmed, 1u);
}

TEST_F(HttpsProberTest, RejectsUnstableRole) {
  HttpsProber prober{roots_, dns::PublicSuffixList::builtin(), 2};
  const bool ok = prober.probe_one(Ipv4Addr{3, 3, 3, 3}, [](Ipv4Addr, int times) {
    std::vector<x509::CertificateChain> fetches;
    for (int i = 0; i < times; ++i) {
      auto chain = valid_chain();
      chain.certs[0].subject_key = "key-" + std::to_string(i);  // churn
      fetches.push_back(chain);
    }
    return fetches;
  });
  EXPECT_FALSE(ok);
}

TEST_F(HttpsProberTest, RejectsSquattersWithEmptyChains) {
  HttpsProber prober{roots_, dns::PublicSuffixList::builtin(), 3};
  ProbeFunnel funnel;
  const std::vector<Ipv4Addr> candidates{Ipv4Addr{4, 4, 4, 4}};
  const auto confirmed = prober.probe(
      candidates,
      [](Ipv4Addr, int times) {
        return std::vector<x509::CertificateChain>(
            static_cast<std::size_t>(times));  // responds, no X.509
      },
      funnel);
  EXPECT_TRUE(confirmed.empty());
  EXPECT_EQ(funnel.responded, 1u);  // counted as responding
  EXPECT_EQ(funnel.confirmed, 0u);
}

TEST_F(HttpsProberTest, RejectsExpiredCertificates) {
  HttpsProber prober{roots_, dns::PublicSuffixList::builtin(), 2};
  const bool ok = prober.probe_one(Ipv4Addr{5, 5, 5, 5}, [](Ipv4Addr, int times) {
    auto chain = valid_chain();
    chain.certs[0].not_after = 1;  // expired long before fetch time
    return std::vector<x509::CertificateChain>(
        static_cast<std::size_t>(times), chain);
  });
  EXPECT_FALSE(ok);
}

TEST_F(HttpsProberTest, NoResponseIsNotConfirmed) {
  HttpsProber prober{roots_, dns::PublicSuffixList::builtin(), 3};
  EXPECT_FALSE(prober.probe_one(Ipv4Addr{6, 6, 6, 6},
                                [](Ipv4Addr, int) { return std::vector<x509::CertificateChain>{}; }));
}

}  // namespace
}  // namespace ixp::classify
