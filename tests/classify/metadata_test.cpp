#include "classify/metadata.hpp"

#include <gtest/gtest.h>

namespace ixp::classify {
namespace {

using net::Ipv4Addr;

dns::DnsName name(const char* text) { return *dns::DnsName::parse(text); }

class MetadataTest : public ::testing::Test {
 protected:
  MetadataTest() : harvester_(db_, dns::PublicSuffixList::builtin()) {
    db_.add_ptr(Ipv4Addr{1, 1, 1, 1}, name("edge1.cdn.akamai.net"));
    db_.add_soa(name("akamai.net"), name("akamai.com"));
    db_.add_reverse_soa(Ipv4Addr{2, 2, 2, 2}, name("hoster.net"));
    db_.add_ptr(Ipv4Addr{4, 4, 4, 4}, name("srv.rir-managed.org"));
    db_.add_soa(name("rir-managed.org"), name("ripe.net"));
  }

  dns::ZoneDatabase db_;
  MetadataHarvester harvester_;
};

TEST_F(MetadataTest, HarvestsHostnameAndSoa) {
  const auto md = harvester_.harvest(Ipv4Addr{1, 1, 1, 1}, {}, nullptr);
  ASSERT_TRUE(md.hostname);
  EXPECT_EQ(md.hostname->text(), "edge1.cdn.akamai.net");
  ASSERT_TRUE(md.soa_authority);
  EXPECT_EQ(md.soa_authority->text(), "akamai.com");
  EXPECT_TRUE(md.has_dns());
  EXPECT_TRUE(md.has_any());
}

TEST_F(MetadataTest, ReverseSoaWithoutHostname) {
  const auto md = harvester_.harvest(Ipv4Addr{2, 2, 2, 2}, {}, nullptr);
  EXPECT_FALSE(md.hostname);
  ASSERT_TRUE(md.soa_authority);
  EXPECT_EQ(md.soa_authority->text(), "hoster.net");
}

TEST_F(MetadataTest, NothingKnown) {
  const auto md = harvester_.harvest(Ipv4Addr{3, 3, 3, 3}, {}, nullptr);
  EXPECT_FALSE(md.has_dns());
  EXPECT_FALSE(md.has_any());
}

TEST_F(MetadataTest, RirAuthoritiesCleaned) {
  const auto md = harvester_.harvest(Ipv4Addr{4, 4, 4, 4}, {}, nullptr);
  ASSERT_TRUE(md.hostname);          // hostname survives
  EXPECT_FALSE(md.soa_authority);    // ripe.net authority removed
}

TEST_F(MetadataTest, UriCleaningDropsInvalidHosts) {
  const std::vector<std::string> hosts{
      "www.example.com",   // valid
      "203.0.113.9",       // IP literal -> dropped
      "intranet",          // single label -> dropped
      "server.unknowntld", // no registrable domain -> dropped
      "www.example.com",   // duplicate -> collapsed
  };
  const auto md = harvester_.harvest(Ipv4Addr{9, 9, 9, 9}, hosts, nullptr);
  ASSERT_EQ(md.uris.size(), 1u);
  EXPECT_EQ(md.uris[0].host().text(), "www.example.com");
  EXPECT_TRUE(md.has_uri());
}

TEST_F(MetadataTest, CertificateNamesExtracted) {
  x509::Certificate leaf;
  leaf.subject = name("www.shop.de");
  leaf.alt_names = {name("shop.de"), name("cdn.shop.de")};
  leaf.key_usages = {x509::KeyUsage::kServerAuth};
  const x509::CertificateChain chain{{leaf}};
  const auto md = harvester_.harvest(Ipv4Addr{8, 8, 8, 8}, {}, &chain);
  EXPECT_EQ(md.cert_names.size(), 3u);
  EXPECT_TRUE(md.has_cert());
}

TEST_F(MetadataTest, CoverageAccumulates) {
  MetadataCoverage coverage;
  coverage.add(harvester_.harvest(Ipv4Addr{1, 1, 1, 1}, {}, nullptr));
  coverage.add(harvester_.harvest(Ipv4Addr{3, 3, 3, 3}, {}, nullptr));
  EXPECT_EQ(coverage.servers, 2u);
  EXPECT_EQ(coverage.with_dns, 1u);
  EXPECT_EQ(coverage.with_any, 1u);
}

TEST(MetadataHarvesterStatics, RirDetection) {
  EXPECT_TRUE(MetadataHarvester::is_rir_authority(*dns::DnsName::parse("ripe.net")));
  EXPECT_TRUE(MetadataHarvester::is_rir_authority(*dns::DnsName::parse("arin.net")));
  EXPECT_FALSE(MetadataHarvester::is_rir_authority(*dns::DnsName::parse("akamai.com")));
  EXPECT_FALSE(
      MetadataHarvester::is_rir_authority(*dns::DnsName::parse("sub.ripe.net")));
}

}  // namespace
}  // namespace ixp::classify
