#include "geo/country.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ixp::geo {
namespace {

TEST(CountryCode, DefaultIsInvalid) {
  const CountryCode code;
  EXPECT_FALSE(code.valid());
  EXPECT_EQ(code.to_string(), "--");
}

TEST(CountryCode, RoundTripsThroughString) {
  const auto code = CountryCode::parse("DE");
  ASSERT_TRUE(code);
  EXPECT_TRUE(code->valid());
  EXPECT_EQ(code->to_string(), "DE");
}

TEST(CountryCode, ParseRejectsMalformed) {
  EXPECT_FALSE(CountryCode::parse(""));
  EXPECT_FALSE(CountryCode::parse("D"));
  EXPECT_FALSE(CountryCode::parse("DEU"));
  EXPECT_FALSE(CountryCode::parse("de"));
  EXPECT_FALSE(CountryCode::parse("D1"));
}

TEST(CountryCode, Comparable) {
  EXPECT_EQ(CountryCode('D', 'E'), CountryCode('D', 'E'));
  EXPECT_NE(CountryCode('D', 'E'), CountryCode('U', 'S'));
}

TEST(RegionOf, PaperRegions) {
  EXPECT_EQ(region_of(CountryCode('D', 'E')), Region::kDE);
  EXPECT_EQ(region_of(CountryCode('U', 'S')), Region::kUS);
  EXPECT_EQ(region_of(CountryCode('R', 'U')), Region::kRU);
  EXPECT_EQ(region_of(CountryCode('C', 'N')), Region::kCN);
  EXPECT_EQ(region_of(CountryCode('F', 'R')), Region::kRoW);
  EXPECT_EQ(region_of(CountryCode{}), Region::kRoW);
}

TEST(RegionToString, Names) {
  EXPECT_STREQ(to_string(Region::kDE), "DE");
  EXPECT_STREQ(to_string(Region::kRoW), "RoW");
}

TEST(CountryRegistry, HasPaperCountryCount) {
  const auto& registry = CountryRegistry::instance();
  // The paper's IXP sees traffic from 242 countries (Table 1, week 45).
  EXPECT_EQ(registry.size(), 242u);
}

TEST(CountryRegistry, EntriesAreUniqueAndValid) {
  const auto& registry = CountryRegistry::instance();
  std::set<std::uint16_t> seen;
  for (const auto& entry : registry.entries()) {
    EXPECT_TRUE(entry.code.valid());
    EXPECT_GT(entry.weight, 0.0);
    EXPECT_TRUE(seen.insert(entry.code.packed()).second)
        << "duplicate country " << entry.code.to_string();
  }
}

TEST(CountryRegistry, IndexOfFindsKnownCountries) {
  const auto& registry = CountryRegistry::instance();
  const auto us = registry.index_of(CountryCode('U', 'S'));
  ASSERT_TRUE(us);
  EXPECT_EQ(registry.entries()[*us].code, CountryCode('U', 'S'));
  EXPECT_FALSE(registry.index_of(CountryCode{}).has_value());
}

TEST(CountryRegistry, HeavyHeadMatchesPaperRanking) {
  // The paper's Table 2 has US and DE as the top countries by IPs; the
  // registry weights must reproduce that head.
  const auto& registry = CountryRegistry::instance();
  const auto us = registry.index_of(CountryCode('U', 'S'));
  const auto de = registry.index_of(CountryCode('D', 'E'));
  ASSERT_TRUE(us && de);
  const double us_weight = registry.entries()[*us].weight;
  const double de_weight = registry.entries()[*de].weight;
  for (const auto& entry : registry.entries()) {
    if (entry.code != CountryCode('U', 'S'))
      EXPECT_LT(entry.weight, us_weight + 1e-9);
  }
  EXPECT_GT(de_weight, 0.3 * us_weight);
}

}  // namespace
}  // namespace ixp::geo
