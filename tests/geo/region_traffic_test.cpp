// Region bucketing edge coverage: every registry country maps to exactly
// one region, and the paper's four named regions map to themselves.
#include <gtest/gtest.h>

#include "geo/country.hpp"

namespace ixp::geo {
namespace {

TEST(Regions, EveryRegistryCountryHasARegion) {
  std::size_t named = 0;
  for (const auto& entry : CountryRegistry::instance().entries()) {
    const Region region = region_of(entry.code);
    if (region != Region::kRoW) ++named;
    // to_string never returns null for any bucket.
    EXPECT_NE(to_string(region), nullptr);
  }
  EXPECT_EQ(named, 4u);  // exactly DE, US, RU, CN
}

TEST(Regions, AllRegionsEnumerationIsComplete) {
  static_assert(kAllRegions.size() == 5);
  bool seen[5] = {};
  for (const Region region : kAllRegions)
    seen[static_cast<std::size_t>(region)] = true;
  for (const bool b : seen) EXPECT_TRUE(b);
}

TEST(Regions, RegionIndexingIsStable) {
  // Analysis code indexes arrays by static_cast<size_t>(Region); the
  // enumerators must stay dense and start at zero.
  EXPECT_EQ(static_cast<std::size_t>(Region::kDE), 0u);
  EXPECT_EQ(static_cast<std::size_t>(Region::kUS), 1u);
  EXPECT_EQ(static_cast<std::size_t>(Region::kRU), 2u);
  EXPECT_EQ(static_cast<std::size_t>(Region::kCN), 3u);
  EXPECT_EQ(static_cast<std::size_t>(Region::kRoW), 4u);
}

}  // namespace
}  // namespace ixp::geo
