#include "geo/geo_database.hpp"

#include <gtest/gtest.h>

namespace ixp::geo {
namespace {

using net::Ipv4Addr;
using net::Ipv4Prefix;

TEST(GeoDatabase, EmptyLookupsMiss) {
  GeoDatabase db;
  EXPECT_FALSE(db.country_of(Ipv4Addr{8, 8, 8, 8}).has_value());
  EXPECT_EQ(db.region_of(Ipv4Addr{8, 8, 8, 8}), Region::kRoW);
  EXPECT_EQ(db.prefix_count(), 0u);
}

TEST(GeoDatabase, AssignsAndLooksUp) {
  GeoDatabase db;
  db.assign(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, CountryCode{'D', 'E'});
  db.assign(Ipv4Prefix{Ipv4Addr{20, 0, 0, 0}, 8}, CountryCode{'U', 'S'});

  EXPECT_EQ(db.country_of(Ipv4Addr(10, 1, 2, 3)), (CountryCode{'D', 'E'}));
  EXPECT_EQ(db.country_of(Ipv4Addr(20, 1, 2, 3)), (CountryCode{'U', 'S'}));
  EXPECT_FALSE(db.country_of(Ipv4Addr(30, 1, 2, 3)).has_value());
  EXPECT_EQ(db.prefix_count(), 2u);
}

TEST(GeoDatabase, MoreSpecificPrefixWins) {
  GeoDatabase db;
  db.assign(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, CountryCode{'D', 'E'});
  db.assign(Ipv4Prefix{Ipv4Addr{10, 5, 0, 0}, 16}, CountryCode{'C', 'N'});
  EXPECT_EQ(db.country_of(Ipv4Addr(10, 5, 9, 9)), (CountryCode{'C', 'N'}));
  EXPECT_EQ(db.country_of(Ipv4Addr(10, 6, 9, 9)), (CountryCode{'D', 'E'}));
}

TEST(GeoDatabase, RegionBuckets) {
  GeoDatabase db;
  db.assign(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, CountryCode{'R', 'U'});
  db.assign(Ipv4Prefix{Ipv4Addr{20, 0, 0, 0}, 8}, CountryCode{'F', 'R'});
  EXPECT_EQ(db.region_of(Ipv4Addr(10, 0, 0, 1)), Region::kRU);
  EXPECT_EQ(db.region_of(Ipv4Addr(20, 0, 0, 1)), Region::kRoW);
}

}  // namespace
}  // namespace ixp::geo
