#include "x509/validator.hpp"

#include <gtest/gtest.h>

namespace ixp::x509 {
namespace {

dns::DnsName name(const char* text) { return *dns::DnsName::parse(text); }

/// Builds a well-formed chain leaf -> intermediate -> (root-signed).
CertificateChain good_chain() {
  Certificate leaf;
  leaf.subject = name("www.example.com");
  leaf.alt_names = {name("example.com"), name("shop.example.co.uk")};
  leaf.key_usages = {KeyUsage::kServerAuth};
  leaf.subject_key = "leaf-key";
  leaf.issuer_key = "intermediate-key";
  leaf.not_before = 0;
  leaf.not_after = 1000;

  Certificate intermediate;
  intermediate.subject = name("ca.example-ca.com");
  intermediate.key_usages = {KeyUsage::kServerAuth};
  intermediate.subject_key = "intermediate-key";
  intermediate.issuer_key = "root-key";
  intermediate.not_before = 0;
  intermediate.not_after = 2000;

  return CertificateChain{{leaf, intermediate}};
}

class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest() : validator_(roots_, dns::PublicSuffixList::builtin()) {
    roots_.trust("root-key");
  }

  RootStore roots_;
  ChainValidator validator_{roots_, dns::PublicSuffixList::builtin()};
};

TEST_F(ValidatorTest, GoodChainPassesAllChecks) {
  const auto result = validator_.validate(good_chain(), 500);
  EXPECT_TRUE(result.ok) << "failed checks: " << result.failed.size();
}

TEST_F(ValidatorTest, EmptyChainFails) {
  const auto result = validator_.validate(CertificateChain{}, 500);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.failed_check(Check::kChain));
}

TEST_F(ValidatorTest, CheckA_SubjectWithoutValidDomainFails) {
  auto chain = good_chain();
  chain.certs[0].subject = name("server.internalzone");  // unknown TLD
  const auto result = validator_.validate(chain, 500);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.failed_check(Check::kSubject));
}

TEST_F(ValidatorTest, CheckA_EmptySubjectFails) {
  auto chain = good_chain();
  chain.certs[0].subject = dns::DnsName{};
  EXPECT_TRUE(validator_.validate(chain, 500).failed_check(Check::kSubject));
}

TEST_F(ValidatorTest, CheckB_InvalidAltNameFails) {
  auto chain = good_chain();
  chain.certs[0].alt_names.push_back(name("bogus.invalidtld"));
  const auto result = validator_.validate(chain, 500);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.failed_check(Check::kAltNames));
}

TEST_F(ValidatorTest, CheckB_PublicSuffixAltNameFails) {
  // "co.uk" itself is a public suffix, not a registrable domain.
  auto chain = good_chain();
  chain.certs[0].alt_names.push_back(name("co.uk"));
  EXPECT_TRUE(validator_.validate(chain, 500).failed_check(Check::kAltNames));
}

TEST_F(ValidatorTest, CheckC_MissingServerAuthFails) {
  auto chain = good_chain();
  chain.certs[0].key_usages = {KeyUsage::kClientAuth, KeyUsage::kCodeSigning};
  const auto result = validator_.validate(chain, 500);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.failed_check(Check::kKeyUsage));
}

TEST_F(ValidatorTest, CheckD_BrokenLinkFails) {
  auto chain = good_chain();
  chain.certs[0].issuer_key = "some-other-ca";
  const auto result = validator_.validate(chain, 500);
  EXPECT_TRUE(result.failed_check(Check::kChain));
}

TEST_F(ValidatorTest, CheckD_WrongOrderFails) {
  auto chain = good_chain();
  std::swap(chain.certs[0], chain.certs[1]);
  // "check if the delivered certificates do really refer to each other in
  // the right order they are listed" — reversed order must fail (the new
  // tail "leaf" is not root-signed and the link is broken).
  const auto result = validator_.validate(chain, 500);
  EXPECT_TRUE(result.failed_check(Check::kChain));
}

TEST_F(ValidatorTest, CheckD_UntrustedRootFails) {
  auto chain = good_chain();
  chain.certs[1].issuer_key = "evil-root";
  EXPECT_TRUE(validator_.validate(chain, 500).failed_check(Check::kChain));
}

TEST_F(ValidatorTest, CheckD_SelfSignedTrustedRootInChainPasses) {
  auto chain = good_chain();
  Certificate root;
  root.subject = name("root.example-ca.com");
  root.key_usages = {KeyUsage::kServerAuth};
  root.subject_key = "root-key";
  root.issuer_key = "root-key";
  root.self_signed = true;
  root.not_before = 0;
  root.not_after = 5000;
  chain.certs.push_back(root);
  EXPECT_TRUE(validator_.validate(chain, 500).ok);
}

TEST_F(ValidatorTest, CheckE_ExpiredLeafFails) {
  const auto result = validator_.validate(good_chain(), 1500);  // leaf expires at 1000
  EXPECT_TRUE(result.failed_check(Check::kValidity));
}

TEST_F(ValidatorTest, CheckE_NotYetValidFails) {
  auto chain = good_chain();
  chain.certs[0].not_before = 400;
  EXPECT_TRUE(validator_.validate(chain, 300).failed_check(Check::kValidity));
}

TEST_F(ValidatorTest, CheckE_ExpiredIntermediateFails) {
  auto chain = good_chain();
  chain.certs[1].not_after = 100;
  EXPECT_TRUE(validator_.validate(chain, 500).failed_check(Check::kValidity));
}

TEST_F(ValidatorTest, CheckF_StableFetchesPass) {
  // Second fetch has a renewed validity window, which check (f) ignores.
  auto fetch1 = good_chain();
  auto fetch2 = good_chain();
  fetch2.certs[0].not_before = 100;
  fetch2.certs[0].not_after = 1500;
  const CertificateChain fetches[]{fetch1, fetch2};
  const Timestamp times[]{200, 700};
  EXPECT_TRUE(validator_.validate_stable(fetches, times).ok);
}

TEST_F(ValidatorTest, CheckF_RoleChurnFails) {
  // Cloud churn: the IP serves a different site on the second fetch.
  auto fetch1 = good_chain();
  auto fetch2 = good_chain();
  fetch2.certs[0].subject = name("other-tenant.example.org");
  const CertificateChain fetches[]{fetch1, fetch2};
  const Timestamp times[]{200, 700};
  const auto result = validator_.validate_stable(fetches, times);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.failed_check(Check::kStability));
}

TEST_F(ValidatorTest, CheckF_AnyBadFetchFails) {
  auto fetch1 = good_chain();
  auto fetch2 = good_chain();
  const CertificateChain fetches[]{fetch1, fetch2};
  const Timestamp times[]{200, 1700};  // second fetch after expiry
  const auto result = validator_.validate_stable(fetches, times);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.failed_check(Check::kValidity));
}

TEST_F(ValidatorTest, CheckF_NoFetchesFails) {
  const auto result = validator_.validate_stable(
      std::span<const CertificateChain>{}, std::span<const Timestamp>{});
  EXPECT_TRUE(result.failed_check(Check::kStability));
}

TEST(Certificate, CoveredNamesDeduplicates) {
  Certificate cert;
  cert.subject = name("a.example.com");
  cert.alt_names = {name("a.example.com"), name("b.example.com")};
  const auto names = cert.covered_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], name("a.example.com"));
  EXPECT_EQ(names[1], name("b.example.com"));
}

TEST(RootStore, TrustLookup) {
  RootStore store;
  EXPECT_FALSE(store.is_trusted("x"));
  store.trust("x");
  EXPECT_TRUE(store.is_trusted("x"));
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace ixp::x509
