// Parameterized sweep: every single-field corruption of an otherwise
// valid chain must fail exactly the corresponding check — and nothing
// may crash on odd chain shapes.
#include <gtest/gtest.h>

#include "dns/public_suffix.hpp"
#include "x509/validator.hpp"

namespace ixp::x509 {
namespace {

dns::DnsName name(const char* text) { return *dns::DnsName::parse(text); }

CertificateChain baseline() {
  Certificate leaf;
  leaf.subject = name("www.example.com");
  leaf.alt_names = {name("example.com")};
  leaf.key_usages = {KeyUsage::kServerAuth};
  leaf.subject_key = "leaf";
  leaf.issuer_key = "inter";
  leaf.not_before = 0;
  leaf.not_after = 1000;
  Certificate inter;
  inter.subject = name("ca.example-ca.com");
  inter.key_usages = {KeyUsage::kServerAuth};
  inter.subject_key = "inter";
  inter.issuer_key = "root";
  inter.not_before = 0;
  inter.not_after = 2000;
  return CertificateChain{{leaf, inter}};
}

struct Corruption {
  const char* label;
  void (*apply)(CertificateChain&);
  Check expected;
};

const Corruption kCorruptions[] = {
    {"empty-subject",
     [](CertificateChain& c) { c.certs[0].subject = dns::DnsName{}; },
     Check::kSubject},
    {"unknown-tld-subject",
     [](CertificateChain& c) { c.certs[0].subject = name("srv.bogustld"); },
     Check::kSubject},
    {"bad-san",
     [](CertificateChain& c) { c.certs[0].alt_names.push_back(name("co.uk")); },
     Check::kAltNames},
    {"client-auth-only",
     [](CertificateChain& c) {
       c.certs[0].key_usages = {KeyUsage::kClientAuth};
     },
     Check::kKeyUsage},
    {"broken-link",
     [](CertificateChain& c) { c.certs[0].issuer_key = "other"; },
     Check::kChain},
    {"untrusted-root",
     [](CertificateChain& c) { c.certs[1].issuer_key = "rogue"; },
     Check::kChain},
    {"expired-leaf",
     [](CertificateChain& c) { c.certs[0].not_after = 100; },
     Check::kValidity},
    {"future-intermediate",
     [](CertificateChain& c) { c.certs[1].not_before = 900; },
     Check::kValidity},
};

class CorruptionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CorruptionTest, FailsTheMatchingCheckOnly) {
  RootStore roots;
  roots.trust("root");
  const ChainValidator validator{roots, dns::PublicSuffixList::builtin()};

  // Sanity: the baseline passes at fetch time 500.
  ASSERT_TRUE(validator.validate(baseline(), 500).ok);

  const Corruption& corruption = kCorruptions[GetParam()];
  auto chain = baseline();
  corruption.apply(chain);
  const auto result = validator.validate(chain, 500);
  EXPECT_FALSE(result.ok) << corruption.label;
  EXPECT_TRUE(result.failed_check(corruption.expected)) << corruption.label;
}

INSTANTIATE_TEST_SUITE_P(AllCorruptions, CorruptionTest,
                         ::testing::Range<std::size_t>(0, std::size(kCorruptions)),
                         [](const auto& info) {
                           std::string label = kCorruptions[info.param].label;
                           for (auto& c : label)
                             if (c == '-') c = '_';
                           return label;
                         });

TEST(ValidatorShapes, SingleSelfSignedTrustedRoot) {
  RootStore roots;
  roots.trust("solo");
  const ChainValidator validator{roots, dns::PublicSuffixList::builtin()};
  Certificate cert;
  cert.subject = name("www.example.com");
  cert.key_usages = {KeyUsage::kServerAuth};
  cert.subject_key = "solo";
  cert.issuer_key = "solo";
  cert.self_signed = true;
  cert.not_after = 1000;
  EXPECT_TRUE(validator.validate(CertificateChain{{cert}}, 10).ok);
}

TEST(ValidatorShapes, LongChain) {
  RootStore roots;
  roots.trust("root");
  const ChainValidator validator{roots, dns::PublicSuffixList::builtin()};
  CertificateChain chain;
  for (int depth = 0; depth < 5; ++depth) {
    Certificate cert;
    cert.subject = name(depth == 0 ? "www.example.com" : "ca.example-ca.com");
    cert.key_usages = {KeyUsage::kServerAuth};
    cert.subject_key = "k" + std::to_string(depth);
    cert.issuer_key = depth == 4 ? "root" : "k" + std::to_string(depth + 1);
    cert.not_after = 1000;
    chain.certs.push_back(cert);
  }
  EXPECT_TRUE(validator.validate(chain, 10).ok);
  // Shuffle two intermediates: order violation must fail.
  std::swap(chain.certs[2], chain.certs[3]);
  EXPECT_TRUE(validator.validate(chain, 10).failed_check(Check::kChain));
}

}  // namespace
}  // namespace ixp::x509
