#include "dns/public_suffix.hpp"

#include <gtest/gtest.h>

namespace ixp::dns {
namespace {

DnsName name(const char* text) { return *DnsName::parse(text); }

TEST(PublicSuffixList, BuiltinKnowsCommonSuffixes) {
  const auto& psl = PublicSuffixList::builtin();
  EXPECT_TRUE(psl.is_public_suffix(name("com")));
  EXPECT_TRUE(psl.is_public_suffix(name("de")));
  EXPECT_TRUE(psl.is_public_suffix(name("co.uk")));
  EXPECT_FALSE(psl.is_public_suffix(name("example.com")));
  EXPECT_GT(psl.size(), 100u);
}

TEST(PublicSuffixList, LongestSuffixWins) {
  const auto& psl = PublicSuffixList::builtin();
  const auto suffix = psl.public_suffix_of(name("shop.example.co.uk"));
  ASSERT_TRUE(suffix);
  EXPECT_EQ(suffix->text(), "co.uk");
}

TEST(PublicSuffixList, RegistrableDomainSimpleTld) {
  const auto& psl = PublicSuffixList::builtin();
  const auto domain = psl.registrable_domain(name("www.example.com"));
  ASSERT_TRUE(domain);
  EXPECT_EQ(domain->text(), "example.com");
}

TEST(PublicSuffixList, RegistrableDomainCcSld) {
  const auto& psl = PublicSuffixList::builtin();
  const auto domain = psl.registrable_domain(name("a.b.example.co.jp"));
  ASSERT_TRUE(domain);
  EXPECT_EQ(domain->text(), "example.co.jp");
}

TEST(PublicSuffixList, SuffixItselfHasNoRegistrableDomain) {
  const auto& psl = PublicSuffixList::builtin();
  EXPECT_FALSE(psl.registrable_domain(name("co.uk")).has_value());
  EXPECT_FALSE(psl.registrable_domain(name("com")).has_value());
}

TEST(PublicSuffixList, UnknownTldHasNoRegistrableDomain) {
  const auto& psl = PublicSuffixList::builtin();
  // "local" is not in the list -> the name fails the paper's validity check.
  EXPECT_FALSE(psl.registrable_domain(name("server.local")).has_value());
  EXPECT_FALSE(psl.public_suffix_of(name("server.local")).has_value());
}

TEST(PublicSuffixList, CustomListAndDomainAlreadyRegistrable) {
  PublicSuffixList psl;
  psl.add("test");
  psl.add("not a name");  // ignored
  EXPECT_EQ(psl.size(), 1u);
  const auto domain = psl.registrable_domain(name("example.test"));
  ASSERT_TRUE(domain);
  EXPECT_EQ(domain->text(), "example.test");
}

}  // namespace
}  // namespace ixp::dns
