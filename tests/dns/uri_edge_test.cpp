// Additional URI and name edge cases seen in real Host headers.
#include <gtest/gtest.h>

#include "dns/uri.hpp"

namespace ixp::dns {
namespace {

TEST(UriEdge, HostHeaderWithExplicitDefaultPort) {
  const auto uri = Uri::parse("example.com:80");
  ASSERT_TRUE(uri);
  EXPECT_EQ(uri->port(), 80);
  EXPECT_EQ(uri->host().text(), "example.com");
}

TEST(UriEdge, SchemeCaseInsensitive) {
  const auto uri = Uri::parse("HTTPS://Example.COM/a");
  ASSERT_TRUE(uri);
  EXPECT_EQ(uri->scheme(), "https");
  EXPECT_EQ(uri->host().text(), "example.com");
}

TEST(UriEdge, DeepPathsAndQueries) {
  const auto uri = Uri::parse("cdn.example.net/a/b/c.d?x=1&y=2:3");
  ASSERT_TRUE(uri);
  EXPECT_EQ(uri->path(), "/a/b/c.d?x=1&y=2:3");
  // The colon inside the query must not be parsed as a port separator.
  EXPECT_EQ(uri->port(), 0);
}

TEST(UriEdge, TrailingDotHostNormalized) {
  const auto uri = Uri::parse("example.com./x");
  ASSERT_TRUE(uri);
  EXPECT_EQ(uri->host().text(), "example.com");
}

TEST(UriEdge, MaximumLengthLabels) {
  const std::string label63(63, 'a');
  EXPECT_TRUE(Uri::parse(label63 + ".com"));
  const std::string label64(64, 'a');
  EXPECT_FALSE(Uri::parse(label64 + ".com"));
}

TEST(UriEdge, UnderscoreServiceLabels) {
  // SRV-style names occur in Host headers from misbehaving clients.
  const auto uri = Uri::parse("_http._tcp.example.com");
  ASSERT_TRUE(uri);
  EXPECT_EQ(uri->host().label_count(), 4u);
}

TEST(UriEdge, PortOnSchemelessHostWithPath) {
  const auto uri = Uri::parse("example.com:8080/admin");
  ASSERT_TRUE(uri);
  EXPECT_EQ(uri->port(), 8080);
  EXPECT_EQ(uri->path(), "/admin");
}

}  // namespace
}  // namespace ixp::dns
