#include "dns/zone_db.hpp"

#include <gtest/gtest.h>

namespace ixp::dns {
namespace {

using net::Ipv4Addr;

DnsName name(const char* text) { return *DnsName::parse(text); }

TEST(ZoneDatabase, ForwardResolution) {
  ZoneDatabase db;
  db.add_a(name("www.example.com"), Ipv4Addr{1, 2, 3, 4});
  db.add_a(name("www.example.com"), Ipv4Addr{1, 2, 3, 5});
  const auto addrs = db.resolve(name("www.example.com"));
  ASSERT_EQ(addrs.size(), 2u);
  EXPECT_EQ(addrs[0], Ipv4Addr(1, 2, 3, 4));
  EXPECT_TRUE(db.resolve(name("other.example.com")).empty());
  EXPECT_EQ(db.a_record_count(), 2u);
}

TEST(ZoneDatabase, ReverseLookup) {
  ZoneDatabase db;
  db.add_ptr(Ipv4Addr{1, 2, 3, 4}, name("server1.hoster.net"));
  EXPECT_EQ(db.reverse(Ipv4Addr(1, 2, 3, 4)), name("server1.hoster.net"));
  EXPECT_FALSE(db.reverse(Ipv4Addr(9, 9, 9, 9)).has_value());
}

TEST(ZoneDatabase, IterativeSoaResolution) {
  ZoneDatabase db;
  db.add_soa(name("example.com"), name("example.com"));
  // youtube.com-style outsourcing: zone's SOA points at google.com.
  db.add_soa(name("youtube.com"), name("google.com"));

  const auto soa = db.soa_of(name("a.b.c.example.com"));
  ASSERT_TRUE(soa);
  EXPECT_EQ(soa->zone, name("example.com"));
  EXPECT_EQ(soa->authority, name("example.com"));

  const auto yt = db.soa_of(name("video.youtube.com"));
  ASSERT_TRUE(yt);
  EXPECT_EQ(yt->authority, name("google.com"));
}

TEST(ZoneDatabase, SoaPrefersMostSpecificZone) {
  ZoneDatabase db;
  db.add_soa(name("example.com"), name("example.com"));
  db.add_soa(name("cdn.example.com"), name("bigcdn.com"));
  const auto soa = db.soa_of(name("edge7.cdn.example.com"));
  ASSERT_TRUE(soa);
  EXPECT_EQ(soa->authority, name("bigcdn.com"));
}

TEST(ZoneDatabase, SoaMissWhenNoZoneMatches) {
  ZoneDatabase db;
  db.add_soa(name("example.com"), name("example.com"));
  EXPECT_FALSE(db.soa_of(name("other.net")).has_value());
}

TEST(ZoneDatabase, ReverseSoaDirectEntry) {
  ZoneDatabase db;
  db.add_reverse_soa(Ipv4Addr{5, 5, 5, 5}, name("hoster.net"));
  EXPECT_EQ(db.reverse_soa(Ipv4Addr(5, 5, 5, 5)), name("hoster.net"));
}

TEST(ZoneDatabase, ReverseSoaFallsBackThroughPtr) {
  // No direct reverse SOA, but the PTR hostname's zone has one — the
  // paper's "SOA record is often present even when no hostname record is
  // available or an ARPA address is returned" scenario, inverted.
  ZoneDatabase db;
  db.add_ptr(Ipv4Addr{6, 6, 6, 6}, name("edge1.cdn.akamai.net"));
  db.add_soa(name("akamai.net"), name("akamai.com"));
  EXPECT_EQ(db.reverse_soa(Ipv4Addr(6, 6, 6, 6)), name("akamai.com"));
}

TEST(ZoneDatabase, ReverseSoaMissesWithoutAnyRecord) {
  ZoneDatabase db;
  EXPECT_FALSE(db.reverse_soa(Ipv4Addr(7, 7, 7, 7)).has_value());
  db.add_ptr(Ipv4Addr{7, 7, 7, 7}, name("unzoned.example.org"));
  EXPECT_FALSE(db.reverse_soa(Ipv4Addr(7, 7, 7, 7)).has_value());
}


TEST(ZoneDatabase, CnameResolution) {
  ZoneDatabase db;
  db.add_cname(name("www.shop.com"), name("shop-com.edge.akamai.net"));
  db.add_a(name("shop-com.edge.akamai.net"), Ipv4Addr{9, 9, 9, 9});
  const auto addrs = db.resolve(name("www.shop.com"));
  ASSERT_EQ(addrs.size(), 1u);
  EXPECT_EQ(addrs[0], Ipv4Addr(9, 9, 9, 9));
  EXPECT_EQ(db.cname(name("www.shop.com")), name("shop-com.edge.akamai.net"));
  EXPECT_FALSE(db.cname(name("other.com")).has_value());
  EXPECT_EQ(db.cname_record_count(), 1u);
}

TEST(ZoneDatabase, CnameChainsFollowed) {
  ZoneDatabase db;
  db.add_cname(name("a.example.com"), name("b.example.com"));
  db.add_cname(name("b.example.com"), name("c.example.com"));
  db.add_a(name("c.example.com"), Ipv4Addr{1, 1, 1, 1});
  EXPECT_EQ(db.canonicalize(name("a.example.com")), name("c.example.com"));
  EXPECT_EQ(db.resolve(name("a.example.com")).size(), 1u);
}

TEST(ZoneDatabase, CnameLoopDetected) {
  ZoneDatabase db;
  db.add_cname(name("x.example.com"), name("y.example.com"));
  db.add_cname(name("y.example.com"), name("x.example.com"));
  EXPECT_FALSE(db.canonicalize(name("x.example.com")).has_value());
  EXPECT_TRUE(db.resolve(name("x.example.com")).empty());
}

TEST(ZoneDatabase, CanonicalizeWithoutCnameIsIdentity) {
  ZoneDatabase db;
  EXPECT_EQ(db.canonicalize(name("plain.example.com")),
            name("plain.example.com"));
}

}  // namespace
}  // namespace ixp::dns
