#include "dns/name.hpp"

#include <gtest/gtest.h>

namespace ixp::dns {
namespace {

TEST(DnsName, ParsesAndNormalizes) {
  const auto name = DnsName::parse("WWW.Example.COM.");
  ASSERT_TRUE(name);
  EXPECT_EQ(name->text(), "www.example.com");
  EXPECT_EQ(name->label_count(), 3u);
}

TEST(DnsName, ParseRejectsMalformed) {
  EXPECT_FALSE(DnsName::parse(""));
  EXPECT_FALSE(DnsName::parse("."));
  EXPECT_FALSE(DnsName::parse("a..b"));
  EXPECT_FALSE(DnsName::parse(".a"));
  EXPECT_FALSE(DnsName::parse("exa mple.com"));
  EXPECT_FALSE(DnsName::parse("exa/mple.com"));
  EXPECT_FALSE(DnsName::parse(std::string(64, 'a') + ".com"));  // long label
  EXPECT_FALSE(DnsName::parse(std::string(254, 'a')));          // long name
}

TEST(DnsName, AcceptsHyphensDigitsUnderscores) {
  EXPECT_TRUE(DnsName::parse("a-1._tcp.example.com"));
  EXPECT_TRUE(DnsName::parse("1e100.net"));
}

TEST(DnsName, Labels) {
  const auto name = *DnsName::parse("a.b.example.com");
  EXPECT_EQ(name.label(0), "a");
  EXPECT_EQ(name.label(1), "b");
  EXPECT_EQ(name.label(2), "example");
  EXPECT_EQ(name.label(3), "com");
}

TEST(DnsName, ParentWalk) {
  auto name = DnsName::parse("a.b.example.com");
  ASSERT_TRUE(name);
  auto parent = name->parent();
  ASSERT_TRUE(parent);
  EXPECT_EQ(parent->text(), "b.example.com");
  parent = parent->parent();
  ASSERT_TRUE(parent);
  EXPECT_EQ(parent->text(), "example.com");
  parent = parent->parent();
  ASSERT_TRUE(parent);
  EXPECT_EQ(parent->text(), "com");
  EXPECT_FALSE(parent->parent().has_value());
}

TEST(DnsName, Suffix) {
  const auto name = *DnsName::parse("a.b.example.com");
  EXPECT_EQ(name.suffix(1).text(), "com");
  EXPECT_EQ(name.suffix(2).text(), "example.com");
  EXPECT_EQ(name.suffix(4).text(), "a.b.example.com");
  EXPECT_EQ(name.suffix(9).text(), "a.b.example.com");  // clamped
}

TEST(DnsName, SubdomainRelation) {
  const auto child = *DnsName::parse("cache.fra.akamai.net");
  const auto parent = *DnsName::parse("akamai.net");
  EXPECT_TRUE(child.is_subdomain_of(parent));
  EXPECT_TRUE(parent.is_subdomain_of(parent));
  EXPECT_FALSE(parent.is_subdomain_of(child));
  // Label boundaries matter: notakamai.net is not under akamai.net.
  const auto notparent = *DnsName::parse("notakamai.net");
  EXPECT_FALSE(notparent.is_subdomain_of(parent));
  EXPECT_FALSE(child.is_subdomain_of(DnsName{}));
}

TEST(DnsName, EqualityAndHash) {
  const auto a = *DnsName::parse("Example.COM");
  const auto b = *DnsName::parse("example.com");
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::hash<DnsName>{}(a), std::hash<DnsName>{}(b));
}

}  // namespace
}  // namespace ixp::dns
