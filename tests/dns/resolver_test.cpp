#include "dns/resolver.hpp"

#include <gtest/gtest.h>

namespace ixp::dns {
namespace {

using net::Asn;
using net::Ipv4Addr;

DnsName name(const char* text) { return *DnsName::parse(text); }

class ResolverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.add_a(name("probe.example.com"), Ipv4Addr{9, 9, 9, 9});
    db_.add_a(name("www.target.com"), Ipv4Addr{10, 0, 0, 1});
    population_.add({Ipv4Addr{1, 0, 0, 1}, Asn{100}, ResolverBehavior::kOpen});
    population_.add({Ipv4Addr{1, 0, 0, 2}, Asn{100}, ResolverBehavior::kClosed});
    population_.add(
        {Ipv4Addr{1, 0, 0, 3}, Asn{200}, ResolverBehavior::kDelegating});
    population_.add({Ipv4Addr{1, 0, 0, 4}, Asn{300}, ResolverBehavior::kLying});
    population_.add({Ipv4Addr{1, 0, 0, 5}, Asn{400}, ResolverBehavior::kOpen});
  }

  ZoneDatabase db_;
  ResolverPopulation population_;
};

TEST_F(ResolverTest, ProbeBehaviours) {
  const auto probe_name = name("probe.example.com");
  const auto open =
      ResolverPopulation::probe(population_.all()[0], db_, probe_name);
  EXPECT_TRUE(open.answered);
  EXPECT_TRUE(open.answer_correct);
  EXPECT_FALSE(open.delegated);

  const auto closed =
      ResolverPopulation::probe(population_.all()[1], db_, probe_name);
  EXPECT_FALSE(closed.answered);

  const auto delegating =
      ResolverPopulation::probe(population_.all()[2], db_, probe_name);
  EXPECT_TRUE(delegating.answered);
  EXPECT_TRUE(delegating.delegated);

  const auto lying =
      ResolverPopulation::probe(population_.all()[3], db_, probe_name);
  EXPECT_TRUE(lying.answered);
  EXPECT_FALSE(lying.answer_correct);
}

TEST_F(ResolverTest, UsableFilteringKeepsOnlyOpenCorrect) {
  const auto usable = population_.usable_resolvers(db_, name("probe.example.com"));
  ASSERT_EQ(usable.size(), 2u);
  EXPECT_EQ(usable[0].address, Ipv4Addr(1, 0, 0, 1));
  EXPECT_EQ(usable[1].address, Ipv4Addr(1, 0, 0, 5));
}

TEST_F(ResolverTest, QueryThroughOpenResolver) {
  const auto addrs = ResolverPopulation::query(population_.all()[0], db_,
                                               name("www.target.com"));
  ASSERT_EQ(addrs.size(), 1u);
  EXPECT_EQ(addrs[0], Ipv4Addr(10, 0, 0, 1));
  // Non-open resolvers return nothing usable.
  EXPECT_TRUE(ResolverPopulation::query(population_.all()[3], db_,
                                        name("www.target.com"))
                  .empty());
}

TEST_F(ResolverTest, DistinctAses) {
  EXPECT_EQ(ResolverPopulation::distinct_ases(population_.all()), 4u);
  EXPECT_EQ(ResolverPopulation::distinct_ases({}), 0u);
}

}  // namespace
}  // namespace ixp::dns
