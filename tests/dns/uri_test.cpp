#include "dns/uri.hpp"

#include <gtest/gtest.h>

namespace ixp::dns {
namespace {

TEST(Uri, ParsesFullForm) {
  const auto uri = Uri::parse("http://www.Example.com:8080/path/to?q=1");
  ASSERT_TRUE(uri);
  EXPECT_EQ(uri->scheme(), "http");
  EXPECT_EQ(uri->host().text(), "www.example.com");
  EXPECT_EQ(uri->port(), 8080);
  EXPECT_EQ(uri->path(), "/path/to?q=1");
}

TEST(Uri, ParsesBareHost) {
  const auto uri = Uri::parse("youtube.com");
  ASSERT_TRUE(uri);
  EXPECT_EQ(uri->scheme(), "");
  EXPECT_EQ(uri->host().text(), "youtube.com");
  EXPECT_EQ(uri->port(), 0);
  EXPECT_EQ(uri->path(), "/");
}

TEST(Uri, ParsesHostWithPath) {
  const auto uri = Uri::parse("cdn.example.net/obj/123");
  ASSERT_TRUE(uri);
  EXPECT_EQ(uri->host().text(), "cdn.example.net");
  EXPECT_EQ(uri->path(), "/obj/123");
}

TEST(Uri, RejectsMalformed) {
  EXPECT_FALSE(Uri::parse(""));
  EXPECT_FALSE(Uri::parse("://host"));
  EXPECT_FALSE(Uri::parse("http://"));
  EXPECT_FALSE(Uri::parse("http://host:0/"));
  EXPECT_FALSE(Uri::parse("http://host:99999/"));
  EXPECT_FALSE(Uri::parse("http://host:abc/"));
  EXPECT_FALSE(Uri::parse("ht tp://example.com/"));
  EXPECT_FALSE(Uri::parse("localhost"));       // single label: no authority
  EXPECT_FALSE(Uri::parse("http://1.2.3.4/")); // IP literal rejected
}

TEST(Uri, AuthorityUsesPublicSuffixList) {
  const auto& psl = PublicSuffixList::builtin();
  const auto uri = Uri::parse("https://video.cdn.example.co.uk/x");
  ASSERT_TRUE(uri);
  const auto authority = uri->authority(psl);
  ASSERT_TRUE(authority);
  EXPECT_EQ(authority->text(), "example.co.uk");
}

TEST(Uri, AuthorityMissingForUnknownTld) {
  const auto& psl = PublicSuffixList::builtin();
  const auto uri = Uri::parse("http://server.internalzone/x");
  ASSERT_TRUE(uri);
  EXPECT_FALSE(uri->authority(psl).has_value());
}

TEST(Uri, RoundTripsToString) {
  const auto uri = Uri::parse("https://www.example.com:4443/a/b");
  ASSERT_TRUE(uri);
  EXPECT_EQ(uri->to_string(), "https://www.example.com:4443/a/b");
  const auto bare = Uri::parse("example.com");
  ASSERT_TRUE(bare);
  EXPECT_EQ(bare->to_string(), "example.com/");
}

}  // namespace
}  // namespace ixp::dns
