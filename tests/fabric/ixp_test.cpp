#include "fabric/ixp.hpp"

#include <gtest/gtest.h>

namespace ixp::fabric {
namespace {

Member make_member(std::uint32_t asn, int join_week = 0) {
  Member m;
  m.asn = net::Asn{asn};
  m.name = "m" + std::to_string(asn);
  m.join_week = join_week;
  return m;
}

TEST(Ixp, AddAndLookupByAsn) {
  Ixp ixp;
  EXPECT_TRUE(ixp.add_member(make_member(100)));
  const Member* member = ixp.member_by_asn(net::Asn{100});
  ASSERT_NE(member, nullptr);
  EXPECT_EQ(member->asn, net::Asn{100});
  EXPECT_EQ(ixp.member_by_asn(net::Asn{999}), nullptr);
}

TEST(Ixp, DuplicateAsnRejected) {
  Ixp ixp;
  EXPECT_TRUE(ixp.add_member(make_member(100)));
  EXPECT_FALSE(ixp.add_member(make_member(100)));
  EXPECT_EQ(ixp.all_members().size(), 1u);
}

TEST(Ixp, PortMacIsDerivedAndStable) {
  Ixp ixp;
  ixp.add_member(make_member(100));
  const Member* member = ixp.member_by_asn(net::Asn{100});
  EXPECT_EQ(member->port_mac, Ixp::port_mac_for(net::Asn{100}));
  EXPECT_EQ(ixp.member_by_mac(member->port_mac), member);
}

TEST(Ixp, ExplicitPortMacPreserved) {
  Ixp ixp;
  Member m = make_member(7);
  m.port_mac = sflow::MacAddr::from_id(12345);
  ixp.add_member(m);
  EXPECT_EQ(ixp.member_by_asn(net::Asn{7})->port_mac,
            sflow::MacAddr::from_id(12345));
}

TEST(Ixp, MembershipRespectsJoinWeek) {
  Ixp ixp;
  ixp.add_member(make_member(1, 0));
  ixp.add_member(make_member(2, 40));

  EXPECT_TRUE(ixp.is_member_port(Ixp::port_mac_for(net::Asn{1}), 35));
  EXPECT_FALSE(ixp.is_member_port(Ixp::port_mac_for(net::Asn{2}), 35));
  EXPECT_TRUE(ixp.is_member_port(Ixp::port_mac_for(net::Asn{2}), 40));
  EXPECT_TRUE(ixp.is_member_port(Ixp::port_mac_for(net::Asn{2}), 51));
  EXPECT_FALSE(ixp.is_member_port(sflow::MacAddr::from_id(0xBAD), 40));
}

TEST(Ixp, MemberCountGrowsWithJoins) {
  Ixp ixp;
  ixp.add_member(make_member(1, 0));
  ixp.add_member(make_member(2, 36));
  ixp.add_member(make_member(3, 50));
  EXPECT_EQ(ixp.member_count_at(35), 1u);
  EXPECT_EQ(ixp.member_count_at(36), 2u);
  EXPECT_EQ(ixp.member_count_at(51), 3u);
}

TEST(Ixp, MembersAtSortedByAsn) {
  Ixp ixp;
  ixp.add_member(make_member(30));
  ixp.add_member(make_member(10));
  ixp.add_member(make_member(20, 45));
  const auto members = ixp.members_at(51);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0]->asn, net::Asn{10});
  EXPECT_EQ(members[1]->asn, net::Asn{20});
  EXPECT_EQ(members[2]->asn, net::Asn{30});
}

TEST(Ixp, ManagementMacIsNotAMemberPort) {
  Ixp ixp;
  ixp.add_member(make_member(1));
  EXPECT_FALSE(ixp.is_member_port(ixp.management_mac(), 40));
}

}  // namespace
}  // namespace ixp::fabric
