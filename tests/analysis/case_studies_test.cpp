#include "analysis/case_studies.hpp"

#include <gtest/gtest.h>

namespace ixp::analysis {
namespace {

const gen::InternetModel& model() {
  static const gen::InternetModel instance{gen::ScaleConfig::test()};
  return instance;
}

TEST(HttpsTrendRow, ComputesShares) {
  core::WeeklyReport report;
  report.week = 40;
  report.dissection.https_server_ips = 25;
  report.dissection.web_server_ips = 100;
  core::ServerObservation https_server;
  https_server.https = true;
  https_server.bytes = 500.0;
  report.servers.push_back(https_server);
  report.filters.bytes[static_cast<int>(classify::TrafficClass::kPeering)] =
      5000.0;

  const auto row = https_trend_row(report);
  EXPECT_EQ(row.week, 40);
  EXPECT_DOUBLE_EQ(row.https_server_share, 0.25);
  EXPECT_DOUBLE_EQ(row.https_traffic_share, 500.0 / 10000.0);
}

TEST(HttpsTrendRow, EmptyReportIsZero) {
  const core::WeeklyReport report;
  const auto row = https_trend_row(report);
  EXPECT_DOUBLE_EQ(row.https_server_share, 0.0);
  EXPECT_DOUBLE_EQ(row.https_traffic_share, 0.0);
}

TEST(MatchPublishedRanges, CountsOnlyObservedServers) {
  const auto nimbus = *model().org_by_name("nimbus");
  const auto published = model().published_servers(nimbus);
  ASSERT_FALSE(published.empty());

  // Observe exactly the first three published IPs.
  std::unordered_set<net::Ipv4Addr> observed;
  for (std::size_t i = 0; i < 3 && i < published.size(); ++i)
    observed.insert(published[i].addr);

  const auto counts = match_published_ranges(model(), nimbus, observed);
  std::size_t total = 0;
  for (const auto& dc : counts) total += dc.observed_servers;
  EXPECT_EQ(total, observed.size());
  // One bucket per data center plus the unmapped bucket.
  EXPECT_EQ(counts.size(), model().orgs()[nimbus].data_centers.size() + 1);
}

TEST(MatchPublishedRanges, EmptyObservationIsAllZero) {
  const auto nimbus = *model().org_by_name("nimbus");
  const auto counts = match_published_ranges(model(), nimbus, {});
  for (const auto& dc : counts) EXPECT_EQ(dc.observed_servers, 0u);
}

TEST(MatchPublishedRanges, SandyDipVisibleInUsEast) {
  const auto nimbus = *model().org_by_name("nimbus");
  // "Observe" all active published servers in weeks 43 and 44.
  const auto observe_week = [&](int week) {
    std::unordered_set<net::Ipv4Addr> observed;
    for (const auto& p : model().published_servers(nimbus)) {
      const auto index = model().server_by_addr(p.addr);
      if (index && model().server_active(*index, week)) observed.insert(p.addr);
    }
    return match_published_ranges(model(), nimbus, observed);
  };
  const auto w43 = observe_week(43);
  const auto w44 = observe_week(44);
  std::size_t us_east_43 = 0;
  std::size_t us_east_44 = 0;
  for (std::size_t i = 0; i < w43.size(); ++i) {
    if (w43[i].name == "us-east") {
      us_east_43 = w43[i].observed_servers;
      us_east_44 = w44[i].observed_servers;
    }
  }
  EXPECT_GT(us_east_43, 0u);
  EXPECT_LT(us_east_44, us_east_43 / 2);
}

}  // namespace
}  // namespace ixp::analysis
