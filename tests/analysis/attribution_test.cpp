#include "analysis/attribution.hpp"

#include <gtest/gtest.h>

namespace ixp::analysis {
namespace {

using net::Asn;
using net::Ipv4Addr;
using sflow::MacAddr;

constexpr std::uint32_t kOrgAkamai = 1;

class AttributionTest : public ::testing::Test {
 protected:
  AttributionTest() {
    for (const std::uint32_t asn : {100u, 200u, 300u}) {
      fabric::Member m;
      m.asn = Asn{asn};
      ixp_.add_member(m);
    }
  }

  sflow::FlowSample sample(Ipv4Addr src, Ipv4Addr dst, MacAddr src_mac,
                           MacAddr dst_mac, std::uint16_t len = 1000) const {
    sflow::FrameSpec spec;
    spec.src_mac = src_mac;
    spec.dst_mac = dst_mac;
    spec.src_ip = src;
    spec.dst_ip = dst;
    spec.src_port = 80;
    spec.dst_port = 45000;
    spec.frame_length = len;
    sflow::FlowSample s;
    s.sampling_rate = 1;  // expanded bytes == frame length, easier math
    s.frame = sflow::build_tcp_frame(spec, {}, 100);
    s.frame.frame_length = len;
    return s;
  }

  MacAddr mac(std::uint32_t asn) const {
    return fabric::Ixp::port_mac_for(Asn{asn});
  }

  AttributionPass make() {
    // One Akamai server inside its own AS100 and one deployed in AS300.
    std::unordered_map<Ipv4Addr, std::uint32_t> server_org{
        {Ipv4Addr{1, 1, 1, 1}, kOrgAkamai},
        {Ipv4Addr{3, 3, 3, 3}, kOrgAkamai},
    };
    std::unordered_map<std::uint32_t, Asn> org_home{{kOrgAkamai, Asn{100}}};
    return AttributionPass{ixp_, 45, std::move(server_org), std::move(org_home)};
  }

  fabric::Ixp ixp_;
};

TEST_F(AttributionTest, ServerShareCountsOnlyServerFlows) {
  auto pass = make();
  // Server flow: 1000 bytes; background flow: 500 bytes.
  pass.observe(sample(Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{9, 9, 9, 9}, mac(100),
                      mac(200), 1000));
  pass.observe(sample(Ipv4Addr{8, 8, 8, 8}, Ipv4Addr{9, 9, 9, 9}, mac(100),
                      mac(200), 500));
  EXPECT_DOUBLE_EQ(pass.peering_bytes(), 1500.0);
  EXPECT_DOUBLE_EQ(pass.server_bytes(), 1000.0);
  EXPECT_DOUBLE_EQ(pass.server_share(), 1000.0 / 1500.0);
  EXPECT_DOUBLE_EQ(pass.org_bytes().at(kOrgAkamai), 1000.0);
}

TEST_F(AttributionTest, DirectLinkAttribution) {
  auto pass = make();
  // Akamai server in AS100 (home) -> member 200: direct.
  pass.observe(sample(Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{9, 9, 9, 9}, mac(100),
                      mac(200), 1000));
  const auto* links = pass.links_of(kOrgAkamai);
  ASSERT_NE(links, nullptr);
  const auto& usage = links->at(Asn{200});
  EXPECT_DOUBLE_EQ(usage.direct_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(usage.indirect_bytes, 0.0);
  EXPECT_DOUBLE_EQ(usage.direct_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(pass.indirect_share(kOrgAkamai), 0.0);
}

TEST_F(AttributionTest, IndirectLinkAttribution) {
  auto pass = make();
  // Akamai server hosted in AS300 -> member 200: indirect (server-side
  // port is 300, not Akamai's own 100).
  pass.observe(sample(Ipv4Addr{3, 3, 3, 3}, Ipv4Addr{9, 9, 9, 9}, mac(300),
                      mac(200), 800));
  const auto& usage = pass.links_of(kOrgAkamai)->at(Asn{200});
  EXPECT_DOUBLE_EQ(usage.indirect_bytes, 800.0);
  EXPECT_DOUBLE_EQ(pass.indirect_share(kOrgAkamai), 1.0);
}

TEST_F(AttributionTest, MixedUsageComputesShares) {
  auto pass = make();
  pass.observe(sample(Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{9, 9, 9, 9}, mac(100),
                      mac(200), 900));
  pass.observe(sample(Ipv4Addr{3, 3, 3, 3}, Ipv4Addr{9, 9, 9, 9}, mac(300),
                      mac(200), 100));
  EXPECT_NEAR(pass.indirect_share(kOrgAkamai), 0.1, 1e-12);
  const auto& usage = pass.links_of(kOrgAkamai)->at(Asn{200});
  EXPECT_NEAR(usage.direct_fraction(), 0.9, 1e-12);
}

TEST_F(AttributionTest, RequestDirectionAlsoAttributed) {
  auto pass = make();
  // Client -> server direction: server on the dst side.
  pass.observe(sample(Ipv4Addr{9, 9, 9, 9}, Ipv4Addr{1, 1, 1, 1}, mac(200),
                      mac(100), 400));
  EXPECT_DOUBLE_EQ(pass.server_bytes(), 400.0);
  const auto& usage = pass.links_of(kOrgAkamai)->at(Asn{200});
  EXPECT_DOUBLE_EQ(usage.direct_bytes, 400.0);
}

TEST_F(AttributionTest, IngressAccounting) {
  auto pass = make();
  pass.observe(sample(Ipv4Addr{3, 3, 3, 3}, Ipv4Addr{9, 9, 9, 9}, mac(300),
                      mac(200), 700));
  EXPECT_DOUBLE_EQ(pass.ingress_server_bytes().at(Asn{300}), 700.0);
  EXPECT_EQ(pass.ingress_server_ips(Asn{300}), 1u);
  EXPECT_EQ(pass.ingress_server_ips(Asn{100}), 0u);
}

TEST_F(AttributionTest, NonMemberSamplesIgnored) {
  auto pass = make();
  pass.observe(sample(Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{9, 9, 9, 9},
                      MacAddr::from_id(0xBAD), mac(200), 1000));
  EXPECT_DOUBLE_EQ(pass.peering_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(pass.server_bytes(), 0.0);
}

TEST_F(AttributionTest, UnknownOrgHasNoLinks) {
  auto pass = make();
  EXPECT_EQ(pass.links_of(77), nullptr);
  EXPECT_DOUBLE_EQ(pass.indirect_share(77), 0.0);
}

}  // namespace
}  // namespace ixp::analysis
