#include "analysis/weekly_delta.hpp"

#include <gtest/gtest.h>

namespace ixp::analysis {
namespace {

using net::Asn;
using net::Ipv4Addr;

core::WeeklyReport report_with(int week,
                               std::initializer_list<std::uint32_t> servers,
                               std::size_t peering_ips, double peering_bytes) {
  core::WeeklyReport report;
  report.week = week;
  report.peering_ips = peering_ips;
  report.filters.samples[static_cast<int>(classify::TrafficClass::kPeering)] = 1;
  report.filters.bytes[static_cast<int>(classify::TrafficClass::kPeering)] =
      peering_bytes;
  for (const std::uint32_t ip : servers) {
    core::ServerObservation obs;
    obs.addr = Ipv4Addr{ip};
    obs.asn = Asn{ip >> 8};  // a simple, deterministic AS assignment
    report.servers.push_back(obs);
    report.by_as[Asn{ip >> 8}].server_ips += 1;
  }
  return report;
}

TEST(WeeklyDelta, GainsLossesAndCommon) {
  const auto earlier = report_with(40, {0x0100, 0x0101, 0x0200}, 1000, 5000.0);
  const auto later = report_with(41, {0x0101, 0x0200, 0x0300, 0x0301}, 1100, 5500.0);
  const auto delta = compare_weeks(earlier, later);
  EXPECT_EQ(delta.earlier_week, 40);
  EXPECT_EQ(delta.later_week, 41);
  EXPECT_EQ(delta.servers_common, 2u);  // 0x0101, 0x0200
  EXPECT_EQ(delta.servers_gained, 2u);  // 0x0300, 0x0301
  EXPECT_EQ(delta.servers_lost, 1u);    // 0x0100
  EXPECT_NEAR(delta.ip_growth, 0.10, 1e-9);
  EXPECT_NEAR(delta.traffic_growth, 0.10, 1e-9);
}

TEST(WeeklyDelta, TopMoversSortedByMagnitude) {
  const auto earlier = report_with(40, {0x0100, 0x0101, 0x0102, 0x0200}, 1, 1.0);
  const auto later = report_with(41, {0x0200, 0x0201, 0x0300}, 1, 1.0);
  const auto delta = compare_weeks(earlier, later, 10);
  // AS1 lost 3, AS2 gained 1, AS3 gained 1.
  ASSERT_GE(delta.top_movers.size(), 3u);
  EXPECT_EQ(delta.top_movers[0].asn, Asn{1});
  EXPECT_EQ(delta.top_movers[0].server_delta, -3);
  EXPECT_EQ(delta.top_movers[1].server_delta, 1);
  // Tie between AS2 and AS3 resolves by ASN.
  EXPECT_EQ(delta.top_movers[1].asn, Asn{2});
  EXPECT_EQ(delta.top_movers[2].asn, Asn{3});
}

TEST(WeeklyDelta, TopNBoundsTheList) {
  const auto earlier = report_with(40, {0x0100, 0x0200, 0x0300, 0x0400}, 1, 1.0);
  const auto later = report_with(41, {}, 1, 1.0);
  const auto delta = compare_weeks(earlier, later, 2);
  EXPECT_EQ(delta.top_movers.size(), 2u);
  EXPECT_EQ(delta.servers_lost, 4u);
}

TEST(WeeklyDelta, IdenticalWeeksAreQuiet) {
  const auto report = report_with(40, {0x0100, 0x0200}, 500, 100.0);
  const auto delta = compare_weeks(report, report);
  EXPECT_EQ(delta.servers_gained, 0u);
  EXPECT_EQ(delta.servers_lost, 0u);
  EXPECT_EQ(delta.servers_common, 2u);
  EXPECT_DOUBLE_EQ(delta.ip_growth, 0.0);
  EXPECT_TRUE(delta.top_movers.empty());
}

TEST(WeeklyDelta, EmptyEarlierWeekHandled) {
  const auto earlier = report_with(40, {}, 0, 0.0);
  const auto later = report_with(41, {0x0100}, 10, 10.0);
  const auto delta = compare_weeks(earlier, later);
  EXPECT_EQ(delta.servers_gained, 1u);
  EXPECT_DOUBLE_EQ(delta.ip_growth, 0.0);  // undefined -> reported as 0
}

}  // namespace
}  // namespace ixp::analysis
