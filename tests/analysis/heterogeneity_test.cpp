#include "analysis/heterogeneity.hpp"

#include <gtest/gtest.h>

namespace ixp::analysis {
namespace {

using net::Asn;
using net::Ipv4Addr;

dns::DnsName name(const char* text) { return *dns::DnsName::parse(text); }

TEST(Heterogeneity, BuildsBothViews) {
  net::RoutingTable routing;
  routing.announce(net::Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, Asn{100});
  routing.announce(net::Ipv4Prefix{Ipv4Addr{20, 0, 0, 0}, 8}, Asn{200});

  core::ClusteringResult clustering;
  // Org A: 3 servers across both ASes. Org B: 1 server in AS100.
  clustering.clusters[name("a.com")] = {Ipv4Addr{10, 0, 0, 1},
                                        Ipv4Addr{10, 0, 0, 2},
                                        Ipv4Addr{20, 0, 0, 1}};
  clustering.clusters[name("b.com")] = {Ipv4Addr{10, 0, 0, 3}};

  const auto view = build_heterogeneity(clustering, routing);
  ASSERT_EQ(view.orgs.size(), 2u);
  EXPECT_EQ(view.orgs[0].authority, name("a.com"));  // sorted by size
  EXPECT_EQ(view.orgs[0].server_ips, 3u);
  EXPECT_EQ(view.orgs[0].ases, 2u);
  EXPECT_EQ(view.orgs[1].ases, 1u);

  ASSERT_EQ(view.ases.size(), 2u);
  EXPECT_EQ(view.ases[0].asn, Asn{100});  // 3 servers
  EXPECT_EQ(view.ases[0].server_ips, 3u);
  EXPECT_EQ(view.ases[0].orgs, 2u);  // hosts both orgs
  EXPECT_EQ(view.ases[1].orgs, 1u);
}

TEST(Heterogeneity, ThresholdCounters) {
  HeterogeneityView view;
  view.orgs = {{name("x.com"), 100, 5}, {name("y.com"), 11, 2}, {name("z.com"), 3, 1}};
  view.ases = {{Asn{1}, 50, 12}, {Asn{2}, 10, 6}, {Asn{3}, 5, 1}};
  EXPECT_EQ(view.orgs_with_more_than(10), 2u);
  EXPECT_EQ(view.orgs_with_more_than(1000), 0u);
  EXPECT_EQ(view.ases_hosting_more_than(5), 2u);
  EXPECT_EQ(view.ases_hosting_more_than(10), 1u);
}

TEST(Heterogeneity, UnroutedServersSkippedFromAsView) {
  net::RoutingTable routing;  // empty: nothing routes
  core::ClusteringResult clustering;
  clustering.clusters[name("a.com")] = {Ipv4Addr{10, 0, 0, 1}};
  const auto view = build_heterogeneity(clustering, routing);
  ASSERT_EQ(view.orgs.size(), 1u);
  EXPECT_EQ(view.orgs[0].ases, 0u);
  EXPECT_TRUE(view.ases.empty());
}

}  // namespace
}  // namespace ixp::analysis
