#include "analysis/blind_spots.hpp"

#include "dns/public_suffix.hpp"

#include <gtest/gtest.h>

namespace ixp::analysis {
namespace {

const gen::InternetModel& model() {
  static const gen::InternetModel instance{gen::ScaleConfig::test()};
  return instance;
}

std::vector<dns::Resolver> usable() {
  dns::ZoneDatabase probe_db;
  const auto probe = *dns::DnsName::parse("probe.test.net");
  probe_db.add_a(probe, net::Ipv4Addr{192, 0, 2, 1});
  return model().resolvers().usable_resolvers(probe_db, probe);
}

TEST(AlexaRecovery, FullKnowledgeRecoversEverything) {
  std::unordered_set<dns::DnsName> recovered;
  const auto& psl = dns::PublicSuffixList::builtin();
  for (const auto& site : model().sites()) {
    const auto domain = psl.registrable_domain(site.domain);
    recovered.insert(domain ? *domain : site.domain);
  }
  const auto recovery = alexa_recovery(model(), model().sites().size(), recovered);
  EXPECT_DOUBLE_EQ(recovery.share(), 1.0);
}

TEST(AlexaRecovery, EmptyKnowledgeRecoversNothing) {
  const auto recovery = alexa_recovery(model(), 100, {});
  EXPECT_EQ(recovery.recovered, 0u);
  EXPECT_EQ(recovery.considered, 100u);
  EXPECT_DOUBLE_EQ(recovery.share(), 0.0);
}

TEST(AlexaRecovery, TopNClampsToListSize) {
  const auto recovery = alexa_recovery(model(), 1u << 30, {});
  EXPECT_EQ(recovery.considered, model().sites().size());
}

TEST(ResolverSweep, DiscoversOnlyRealServers) {
  util::Rng rng{5};
  const auto resolvers = usable();
  ASSERT_FALSE(resolvers.empty());
  const auto sweep =
      resolver_sweep(model(), resolvers, {}, {}, 3, 45, rng);
  EXPECT_GT(sweep.discovered_ips, 0u);
  EXPECT_EQ(sweep.already_seen_at_ixp, 0u);  // empty IXP set
  EXPECT_EQ(sweep.unseen_at_ixp, sweep.discovered_ips);
  std::size_t classified = 0;
  for (const std::size_t c : sweep.unseen_by_reason) classified += c;
  // Every discovered IP is a model server with a known blind reason.
  EXPECT_EQ(classified, sweep.discovered_ips);
}

TEST(ResolverSweep, RecoveredSitesAreSkipped) {
  util::Rng rng{5};
  const auto resolvers = usable();
  std::unordered_set<dns::DnsName> recovered;
  const auto& psl = dns::PublicSuffixList::builtin();
  for (const auto& site : model().sites()) {
    const auto domain = psl.registrable_domain(site.domain);
    recovered.insert(domain ? *domain : site.domain);
  }
  const auto sweep =
      resolver_sweep(model(), resolvers, recovered, {}, 3, 45, rng);
  EXPECT_EQ(sweep.queried_sites, 0u);
  EXPECT_EQ(sweep.discovered_ips, 0u);
}

TEST(ResolverSweep, NoResolversNoResults) {
  util::Rng rng{5};
  const auto sweep = resolver_sweep(model(), {}, {}, {}, 3, 45, rng);
  EXPECT_EQ(sweep.discovered_ips, 0u);
}

TEST(FootprintDiscovery, FindsMoreThanIxpButNotMoreThanTruth) {
  util::Rng rng{6};
  const auto akamai = *model().org_by_name("akamai");
  const auto resolvers = usable();
  const auto discovery =
      discover_org_footprint(model(), akamai, resolvers, rng);
  EXPECT_GT(discovery.servers, 0u);
  EXPECT_LE(discovery.servers, model().org_servers(akamai).size());
  EXPECT_GT(discovery.ases, 1u);
}

TEST(FootprintDiscovery, EmptyResolverSetStillFindsVisibleServers) {
  util::Rng rng{7};
  const auto akamai = *model().org_by_name("akamai");
  const auto discovery = discover_org_footprint(model(), akamai, {}, rng);
  // Visible servers are reachable without inside resolvers; private
  // clusters are not.
  EXPECT_GT(discovery.servers, 0u);
  std::size_t visible = 0;
  for (const std::uint32_t s : model().org_servers(akamai))
    if (model().servers()[s].visible()) ++visible;
  EXPECT_GE(discovery.servers, visible);
}

}  // namespace
}  // namespace ixp::analysis
