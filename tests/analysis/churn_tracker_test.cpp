#include "analysis/churn_tracker.hpp"

#include <gtest/gtest.h>

namespace ixp::analysis {
namespace {

constexpr auto kDE = geo::Region::kDE;
constexpr auto kUS = geo::Region::kUS;

TEST(ChurnTracker, RejectsBadRanges) {
  EXPECT_THROW(ChurnTracker(40, 39), std::invalid_argument);
  EXPECT_THROW(ChurnTracker(0, 40), std::invalid_argument);
  EXPECT_NO_THROW(ChurnTracker(35, 51));
}

TEST(ChurnTracker, FirstWeekEveryoneIsStable) {
  ChurnTracker tracker{35, 37};
  tracker.observe(1, 35, kDE, 10.0);
  tracker.observe(2, 35, kDE, 20.0);
  const auto weeks = tracker.breakdown();
  EXPECT_EQ(weeks[0].active, 2u);
  EXPECT_EQ(weeks[0].stable, 2u);
  EXPECT_EQ(weeks[0].fresh, 0u);
  EXPECT_DOUBLE_EQ(weeks[0].stable_bytes, 30.0);
}

TEST(ChurnTracker, ClassifiesStableRecurrentFresh) {
  ChurnTracker tracker{35, 38};
  // key 1: every week -> stable throughout.
  for (int w = 35; w <= 38; ++w) tracker.observe(1, w, kDE, 1.0);
  // key 2: weeks 35 and 37 (gap in 36) -> recurrent in 37 and 38? (not
  // active in 38). In 37: seen earlier but not all -> recurrent.
  tracker.observe(2, 35, kUS, 1.0);
  tracker.observe(2, 37, kUS, 1.0);
  // key 3: first appears in 38 -> fresh there.
  tracker.observe(3, 38, kDE, 5.0);

  const auto weeks = tracker.breakdown();
  const auto& w37 = weeks[2];
  EXPECT_EQ(w37.stable, 1u);     // key 1
  EXPECT_EQ(w37.recurrent, 1u);  // key 2
  EXPECT_EQ(w37.fresh, 0u);

  const auto& w38 = weeks[3];
  EXPECT_EQ(w38.stable, 1u);  // key 1
  EXPECT_EQ(w38.fresh, 1u);   // key 3
  EXPECT_EQ(w38.recurrent, 0u);
  EXPECT_DOUBLE_EQ(w38.fresh_bytes, 5.0);
}

TEST(ChurnTracker, StableRequiresEveryEarlierWeek) {
  ChurnTracker tracker{35, 38};
  tracker.observe(7, 36, kDE, 1.0);  // missed 35
  tracker.observe(7, 37, kDE, 1.0);
  tracker.observe(7, 38, kDE, 1.0);
  const auto weeks = tracker.breakdown();
  EXPECT_EQ(weeks[1].fresh, 1u);      // first seen in 36
  EXPECT_EQ(weeks[2].recurrent, 1u);  // seen before, but not in all weeks
  EXPECT_EQ(weeks[3].recurrent, 1u);
  EXPECT_EQ(weeks[3].stable, 0u);
}

TEST(ChurnTracker, RegionBreakdownsSumToTotals) {
  ChurnTracker tracker{35, 36};
  tracker.observe(1, 35, kDE, 3.0);
  tracker.observe(1, 36, kDE, 3.0);
  tracker.observe(2, 35, kUS, 2.0);
  tracker.observe(2, 36, kUS, 2.0);
  tracker.observe(3, 36, geo::Region::kCN, 1.0);
  const auto weeks = tracker.breakdown();
  const auto& w36 = weeks[1];
  std::size_t stable_sum = 0;
  for (const std::size_t v : w36.stable_by_region) stable_sum += v;
  EXPECT_EQ(stable_sum, w36.stable);
  std::size_t fresh_sum = 0;
  for (const std::size_t v : w36.fresh_by_region) fresh_sum += v;
  EXPECT_EQ(fresh_sum, w36.fresh);
  double bytes_sum = 0;
  for (const double v : w36.active_bytes_by_region) bytes_sum += v;
  EXPECT_DOUBLE_EQ(bytes_sum, w36.active_bytes);
}

TEST(ChurnTracker, OutOfRangeWeeksIgnored) {
  ChurnTracker tracker{35, 40};
  tracker.observe(1, 34, kDE, 1.0);
  tracker.observe(1, 41, kDE, 1.0);
  EXPECT_EQ(tracker.universe(), 0u);
}

TEST(ChurnTracker, BytesAccumulatePerWeek) {
  ChurnTracker tracker{35, 35};
  tracker.observe(1, 35, kDE, 2.0);
  tracker.observe(1, 35, kDE, 3.0);  // same key twice: bytes add up
  const auto weeks = tracker.breakdown();
  EXPECT_EQ(weeks[0].active, 1u);
  EXPECT_DOUBLE_EQ(weeks[0].active_bytes, 5.0);
}

TEST(ChurnTracker, UniverseCountsDistinctKeys) {
  ChurnTracker tracker{35, 36};
  tracker.observe(1, 35, kDE, 1.0);
  tracker.observe(1, 36, kDE, 1.0);
  tracker.observe(2, 36, kDE, 1.0);
  EXPECT_EQ(tracker.universe(), 2u);
}

}  // namespace
}  // namespace ixp::analysis
