// summarize_longitudinal: the §4 fold over a run of weekly reports —
// always-on core, mean weekly churn, per-week breakdowns — checked
// against a hand-computed three-week scenario. Pure function: equal
// inputs give equal summaries (what resume-parity rests on).
#include "analysis/longitudinal.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ixp::analysis {
namespace {

core::ServerObservation server(std::uint32_t last_octet, double bytes,
                               char c0, char c1) {
  core::ServerObservation s;
  s.addr = net::Ipv4Addr{10, 0, 0, static_cast<std::uint8_t>(last_octet)};
  s.bytes = bytes;
  s.country = geo::CountryCode{c0, c1};
  return s;
}

core::WeeklyReport week_of(int week,
                           std::vector<core::ServerObservation> servers) {
  core::WeeklyReport report;
  report.week = week;
  report.servers = std::move(servers);
  return report;
}

TEST(Longitudinal, EmptyRunYieldsDefaultSummary) {
  const auto summary = summarize_longitudinal({});
  EXPECT_EQ(summary, LongitudinalSummary{});
  EXPECT_EQ(summary.weeks, 0u);
}

TEST(Longitudinal, HandComputedThreeWeekScenario) {
  // A: every week (the always-on core). B: weeks 1 and 3 (recurrent on
  // return). C: first appears week 2 (fresh there, recurrent after...
  // no — present in 2 and 3 of 3, so recurrent in week 3).
  const std::vector<core::WeeklyReport> reports = {
      week_of(1, {server(1, 100.0, 'D', 'E'), server(2, 50.0, 'U', 'S')}),
      week_of(2, {server(1, 100.0, 'D', 'E'), server(3, 30.0, 'B', 'R')}),
      week_of(3, {server(1, 100.0, 'D', 'E'), server(2, 50.0, 'U', 'S'),
                  server(3, 30.0, 'B', 'R')}),
  };
  const auto summary = summarize_longitudinal(reports);

  EXPECT_EQ(summary.first_week, 1);
  EXPECT_EQ(summary.last_week, 3);
  EXPECT_EQ(summary.weeks, 3u);
  EXPECT_EQ(summary.server_universe, 3u);

  // Only A was present in all three weeks.
  EXPECT_EQ(summary.always_on_servers, 1u);
  EXPECT_DOUBLE_EQ(summary.always_on_traffic_share, 100.0 / 180.0);

  // Churn skips the first week: week 2 has 1 fresh of 2 active (C),
  // week 3 has 0 fresh of 3 — mean (0.5 + 0) / 2.
  EXPECT_DOUBLE_EQ(summary.mean_weekly_churn, 0.25);

  ASSERT_EQ(summary.servers.size(), 3u);
  const auto& w1 = summary.servers[0];
  EXPECT_EQ(w1.week, 1);
  EXPECT_EQ(w1.active, 2u);
  EXPECT_EQ(w1.fresh, 0u);  // first week: everyone counts as stable
  EXPECT_EQ(w1.stable, 2u);
  const auto& w2 = summary.servers[1];
  EXPECT_EQ(w2.active, 2u);
  EXPECT_EQ(w2.stable, 1u);     // A
  EXPECT_EQ(w2.fresh, 1u);      // C
  EXPECT_EQ(w2.recurrent, 0u);
  const auto& w3 = summary.servers[2];
  EXPECT_EQ(w3.active, 3u);
  EXPECT_EQ(w3.stable, 1u);      // A
  EXPECT_EQ(w3.recurrent, 2u);   // B (skipped week 2), C (absent week 1)
  EXPECT_EQ(w3.fresh, 0u);
  EXPECT_DOUBLE_EQ(w3.active_bytes, 180.0);
  EXPECT_DOUBLE_EQ(w3.stable_bytes, 100.0);

  // Regions follow geo::region_of of each server's country.
  EXPECT_EQ(w3.stable_by_region[static_cast<std::size_t>(geo::Region::kDE)],
            1u);
  EXPECT_EQ(
      w3.recurrent_by_region[static_cast<std::size_t>(geo::Region::kUS)], 1u);
  EXPECT_EQ(
      w3.recurrent_by_region[static_cast<std::size_t>(geo::Region::kRoW)], 1u);
}

TEST(Longitudinal, PureFunctionEqualInputsEqualSummaries) {
  const std::vector<core::WeeklyReport> reports = {
      week_of(7, {server(1, 10.0, 'D', 'E')}),
      week_of(8, {server(1, 10.0, 'D', 'E'), server(2, 5.0, 'C', 'N')}),
  };
  EXPECT_EQ(summarize_longitudinal(reports), summarize_longitudinal(reports));
}

TEST(Longitudinal, FinalWeekWithNoTrafficYieldsZeroShare) {
  const std::vector<core::WeeklyReport> reports = {
      week_of(1, {server(1, 10.0, 'D', 'E')}),
      week_of(2, {}),
  };
  const auto summary = summarize_longitudinal(reports);
  EXPECT_EQ(summary.always_on_servers, 0u);
  EXPECT_DOUBLE_EQ(summary.always_on_traffic_share, 0.0);
  // Week 2 had nothing active, so it contributes no churn sample.
  EXPECT_DOUBLE_EQ(summary.mean_weekly_churn, 0.0);
}

}  // namespace
}  // namespace ixp::analysis
