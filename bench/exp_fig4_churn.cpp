// Figure 4 — weekly churn of server IPs (a), per region (b), and of the
// ASes hosting servers (c), weeks 35-51.
//
// Paper: by week 51 the stable pool (seen week-in, week-out) is ~30% of
// the weekly server IPs, the recurrent pool ~60%, first-seen ~10% and
// shrinking; DE contributes about half of the stable pool while CN's is
// vanishingly small; for ASes the stable pool is ~70%.
#include <iostream>

#include "analysis/churn_tracker.hpp"
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx = expcommon::Context::create("Figure 4: churn of server IPs and server-hosting ASes (weeks 35-51)", argc, argv);
  const auto& cfg = ctx.cfg;

  analysis::ChurnTracker servers{cfg.first_week, cfg.last_week};
  analysis::ChurnTracker ases{cfg.first_week, cfg.last_week};

  for (int week = cfg.first_week; week <= cfg.last_week; ++week) {
    const auto report = ctx.run_week(week);
    for (const auto& obs : report.servers) {
      const geo::Region region = geo::region_of(obs.country);
      servers.observe(obs.addr.value(), week, region, obs.bytes);
      if (obs.asn)
        ases.observe(obs.asn->value(), week, region, obs.bytes);
    }
    std::cout << "week " << week << ": " << report.server_ips
              << " server IPs, " << report.server_ases << " ASes\n";
  }

  const auto server_weeks = servers.breakdown();
  util::Table fig4a{"\nFig 4(a): weekly server-IP pools"};
  fig4a.header({"week", "active", "stable", "recurrent", "fresh"});
  for (const auto& w : server_weeks) {
    const double active = static_cast<double>(w.active);
    fig4a.row({std::to_string(w.week), util::with_thousands(w.active),
               util::percent(w.stable / active, 1),
               util::percent(w.recurrent / active, 1),
               util::percent(w.fresh / active, 1)});
  }
  fig4a.print(std::cout);
  const auto& last = server_weeks.back();
  std::cout << "paper, week 51: stable ~30%, recurrent ~60%, fresh ~10%\n";

  util::Table fig4b{"\nFig 4(b): week-51 stable/recurrent pools by region"};
  fig4b.header({"region", "stable share", "recurrent share", "paper note"});
  static const char* notes[] = {
      "DE ~ half of the stable pool", "US sizable", "RU slightly above US",
      "CN vanishingly small", "rest of world"};
  for (std::size_t r = 0; r < geo::kAllRegions.size(); ++r) {
    fig4b.row({geo::to_string(geo::kAllRegions[r]),
               util::percent(static_cast<double>(last.stable_by_region[r]) /
                                 static_cast<double>(last.stable), 1),
               util::percent(static_cast<double>(last.recurrent_by_region[r]) /
                                 std::max<double>(1.0, static_cast<double>(
                                                           last.recurrent)),
                             1),
               notes[r]});
  }
  fig4b.print(std::cout);

  const auto as_weeks = ases.breakdown();
  util::Table fig4c{"\nFig 4(c): weekly pools of ASes hosting servers"};
  fig4c.header({"week", "active", "stable", "recurrent", "fresh"});
  for (const auto& w : as_weeks) {
    if ((w.week - cfg.first_week) % 4 != 0 && w.week != cfg.last_week) continue;
    const double active = static_cast<double>(w.active);
    fig4c.row({std::to_string(w.week), util::with_thousands(w.active),
               util::percent(w.stable / active, 1),
               util::percent(w.recurrent / active, 1),
               util::percent(w.fresh / active, 1)});
  }
  fig4c.print(std::cout);
  std::cout << "paper, week 51 (ASes): stable ~70%, fresh miniscule\n";
  return 0;
}
