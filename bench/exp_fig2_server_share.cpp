// Figure 2 — traffic per server IP, ranked by traffic share.
//
// Paper: individual server IPs carry more than 0.5% of all server-related
// traffic; the top 34 server IPs carry more than 6% of it (front-end
// gateways of CDNs, content providers, streamers, virtual backbones,
// resellers).
#include <algorithm>
#include <iostream>
#include <vector>

#include "exp_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx = expcommon::Context::create("Figure 2: per-server-IP traffic shares (week 45)", argc, argv);
  const auto report = ctx.run_week(45);

  std::vector<double> bytes;
  bytes.reserve(report.servers.size());
  for (const auto& server : report.servers) bytes.push_back(server.bytes);
  std::sort(bytes.begin(), bytes.end(), std::greater<>());
  double total = 0.0;
  for (const double b : bytes) total += b;

  util::Table table{"Rank/share series (log-spaced ranks)"};
  table.header({"rank", "share of server traffic", "cumulative"});
  double cumulative = 0.0;
  std::size_t next_print = 1;
  for (std::size_t r = 0; r < bytes.size(); ++r) {
    cumulative += bytes[r];
    if (r + 1 == next_print) {
      table.row({std::to_string(r + 1), util::percent(bytes[r] / total, 4),
                 util::percent(cumulative / total)});
      next_print *= 4;
    }
  }
  table.print(std::cout);

  std::cout << "\ntop server IP share:   "
            << util::percent(bytes.empty() ? 0.0 : bytes[0] / total, 3)
            << "  (paper: individual IPs exceed 0.5%)\n";
  std::cout << "top-34 server IPs:     "
            << util::percent(util::top_k_share(bytes, 34))
            << " of server traffic  (paper: >6%)\n";
  std::cout << "Gini coefficient:      "
            << util::fixed(util::gini(bytes), 3)
            << " (heavy concentration expected)\n";
  return 0;
}
