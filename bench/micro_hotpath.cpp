// The zero-allocation hot-path benchmark: filter + dissect throughput on
// the production (flat-table, string_view) path, A/B'd against a replica
// of the pre-optimization path (node-based hash maps, allocating header
// extraction) kept here as the fixed baseline. Both numbers land in the
// JSON trajectory (--json BENCH_hotpath.json), so the speedup claim is
// reproducible from one binary:
//
//   build/bench/micro_hotpath --json BENCH_hotpath.json
//
// The flat case must also show 0 allocs/item once tables reach steady
// state (the suite's warmup pass gets them there); the harness measures
// that via the interposed allocation counter rather than trusting the
// code to be allocation-free by inspection.
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "classify/dissector.hpp"
#include "classify/http_matcher.hpp"
#include "classify/lane_flags.hpp"
#include "util/cpu_features.hpp"
#include "classify/peering_filter.hpp"
#include "fabric/ixp.hpp"
#include "sflow/frame.hpp"
#include "sflow/trace.hpp"
#include "util/rng.hpp"

namespace {

using namespace ixp;

constexpr int kWeek = 45;
constexpr std::size_t kPoolSamples = 4096;
constexpr std::size_t kServerIps = 8192;
constexpr std::size_t kClientIps = 8192;
constexpr std::size_t kHosts = 64;

struct Fixture {
  fabric::Ixp ixp;
  std::vector<sflow::FlowSample> pool;

  Fixture() {
    fabric::Member a;
    a.asn = net::Asn{100};
    ixp.add_member(a);
    fabric::Member b;
    b.asn = net::Asn{200};
    ixp.add_member(b);

    std::vector<std::string> hosts;
    hosts.reserve(kHosts);
    for (std::size_t h = 0; h < kHosts; ++h)
      hosts.push_back("cdn" + std::to_string(h) + ".bench.example");

    util::Rng rng{0x10c4f00d};
    pool.reserve(kPoolSamples);
    for (std::size_t i = 0; i < kPoolSamples; ++i) {
      const auto server = net::Ipv4Addr{static_cast<std::uint32_t>(
          0x0a000000u + rng.next_below(kServerIps))};
      const auto client = net::Ipv4Addr{static_cast<std::uint32_t>(
          0x0a010000u + rng.next_below(kClientIps))};

      sflow::FrameSpec spec;
      spec.src_mac = fabric::Ixp::port_mac_for(net::Asn{100});
      spec.dst_mac = fabric::Ixp::port_mac_for(net::Asn{200});

      std::string payload;
      const double kind = rng.next_double();
      if (kind < 0.45) {  // HTTP request with a Host header
        spec.src_ip = client;
        spec.dst_ip = server;
        spec.src_port = static_cast<std::uint16_t>(40000 + rng.next_below(8000));
        spec.dst_port = 80;
        payload = "GET /content/" + std::to_string(rng.next_below(100000)) +
                  " HTTP/1.1\r\nHost: " + hosts[rng.next_below(kHosts)] +
                  "\r\nAccept: */*\r\n";
      } else if (kind < 0.70) {  // HTTP response
        spec.src_ip = server;
        spec.dst_ip = client;
        spec.src_port = 80;
        spec.dst_port = static_cast<std::uint16_t>(40000 + rng.next_below(8000));
        payload = "HTTP/1.1 200 OK\r\nServer: bench\r\nContent-Type: "
                  "text/html\r\n";
      } else if (kind < 0.85) {  // HTTPS candidate (opaque payload)
        spec.src_ip = client;
        spec.dst_ip = server;
        spec.src_port = static_cast<std::uint16_t>(40000 + rng.next_below(8000));
        spec.dst_port = 443;
        payload.assign(48, '\0');
        for (auto& c : payload) c = static_cast<char>(rng.next_below(256));
      } else {  // non-HTTP noise
        spec.src_ip = client;
        spec.dst_ip = server;
        spec.src_port = static_cast<std::uint16_t>(40000 + rng.next_below(8000));
        spec.dst_port = static_cast<std::uint16_t>(1024 + rng.next_below(30000));
        payload.assign(64, '\0');
        for (auto& c : payload) c = static_cast<char>(rng.next_below(256));
      }

      std::vector<std::byte> data(payload.size());
      std::memcpy(data.data(), payload.data(), data.size());
      sflow::FlowSample sample;
      sample.sampling_rate = 16384;
      sample.frame = sflow::build_tcp_frame(spec, data, 600);
      pool.push_back(std::move(sample));
    }
  }
};

// ---------------------------------------------------------------------
// Pre-optimization replica: exactly the containers and copies the hot
// path used before the flat rework — std::optional<std::string> header
// extraction, node-based unordered_maps, std::string host evidence.
// Kept verbatim-in-spirit so the A/B measures the data-structure change,
// not a strawman.
// ---------------------------------------------------------------------

struct LegacyMatch {
  classify::HttpIndication indication = classify::HttpIndication::kNone;
  std::optional<std::string> host;
  std::optional<std::string> path;
};

constexpr std::array<std::string_view, 8> kLegacyMethods{
    "GET ", "HEAD ", "POST ", "PUT ", "DELETE ", "OPTIONS ", "TRACE ",
    "CONNECT "};

constexpr std::array<std::string_view, 10> kLegacyHeaderFields{
    "Host:", "Server:", "Content-Type:", "Content-Length:", "User-Agent:",
    "Accept:", "Set-Cookie:", "Cache-Control:", "Location:",
    "Access-Control-Allow-Methods:"};

bool legacy_starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool legacy_request_line_has_version(std::string_view line) {
  const std::size_t at = line.rfind("HTTP/1.");
  if (at == std::string_view::npos) return false;
  if (at + 8 > line.size()) return false;
  const char minor = line[at + 7];
  return minor == '0' || minor == '1';
}

std::string_view legacy_first_line(std::string_view text) {
  const std::size_t eol = text.find("\r\n");
  return eol == std::string_view::npos ? text : text.substr(0, eol);
}

std::optional<std::string> legacy_extract_header(std::string_view text,
                                                 std::string_view field) {
  const std::size_t at = text.find(field);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t begin = at + field.size();
  while (begin < text.size() && text[begin] == ' ') ++begin;
  std::size_t end = begin;
  while (end < text.size() && text[end] != '\r' && text[end] != '\n') ++end;
  if (end == begin) return std::nullopt;
  return std::string{text.substr(begin, end - begin)};
}

// The pre-PR HttpMatcher::match, verbatim: allocating header extraction
// and a substring search per header-field word on the miss path.
LegacyMatch legacy_match_impl(std::string_view payload) {
  LegacyMatch result;
  if (payload.empty()) return result;

  const std::string_view line = legacy_first_line(payload);

  for (const std::string_view method : kLegacyMethods) {
    if (!legacy_starts_with(line, method)) continue;
    if (!legacy_request_line_has_version(line)) break;
    result.indication = classify::HttpIndication::kRequest;
    const std::size_t path_begin = method.size();
    const std::size_t path_end = line.find(' ', path_begin);
    if (path_end != std::string_view::npos && path_end > path_begin)
      result.path = std::string{line.substr(path_begin, path_end - path_begin)};
    result.host = legacy_extract_header(payload, "Host:");
    return result;
  }

  if (legacy_starts_with(line, "HTTP/1.") && line.size() >= 12 &&
      (line[7] == '0' || line[7] == '1') && line[8] == ' ' &&
      std::isdigit(static_cast<unsigned char>(line[9])) &&
      std::isdigit(static_cast<unsigned char>(line[10])) &&
      std::isdigit(static_cast<unsigned char>(line[11]))) {
    result.indication = classify::HttpIndication::kResponse;
    result.host = legacy_extract_header(payload, "Host:");
    return result;
  }

  for (const std::string_view field : kLegacyHeaderFields) {
    const std::size_t at = payload.find(field);
    if (at == std::string_view::npos) continue;
    if (at != 0 && payload[at - 1] != '\n') continue;
    result.indication = classify::HttpIndication::kHeaderOnly;
    result.host = legacy_extract_header(payload, "Host:");
    return result;
  }
  return result;
}

LegacyMatch legacy_match(std::span<const std::byte> payload) {
  return legacy_match_impl(std::string_view{
      reinterpret_cast<const char*>(payload.data()), payload.size()});
}

class LegacyDissector {
 public:
  LegacyDissector() { activity_.reserve(1 << 16); }

  void ingest(const classify::PeeringSample& sample) {
    const sflow::ParsedFrame& frame = sample.frame;
    const net::Ipv4Addr src = frame.ip->src;
    const net::Ipv4Addr dst = frame.ip->dst;

    classify::IpActivity& src_info = activity_[src];
    classify::IpActivity& dst_info = activity_[dst];
    src_info.samples += 1;
    dst_info.samples += 1;
    src_info.bytes += sample.expanded_bytes;
    dst_info.bytes += sample.expanded_bytes;
    total_bytes_ += sample.expanded_bytes;

    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    bool tcp = false;
    if (frame.is_tcp()) {
      src_port = frame.tcp->src_port;
      dst_port = frame.tcp->dst_port;
      tcp = true;
    } else if (frame.is_udp()) {
      src_port = frame.udp->src_port;
      dst_port = frame.udp->dst_port;
    }
    if (tcp) {
      if (src_port == 443) src_info.flags |= classify::kCandidate443;
      if (dst_port == 443) dst_info.flags |= classify::kCandidate443;
      if (src_port == 1935) src_info.flags |= classify::kSeenRtmp1935;
      if (dst_port == 1935) dst_info.flags |= classify::kSeenRtmp1935;
    }
    if (!tcp || frame.payload.empty()) return;

    const LegacyMatch match = legacy_match(frame.payload);
    switch (match.indication) {
      case classify::HttpIndication::kNone:
        return;
      case classify::HttpIndication::kRequest:
        dst_info.flags |= classify::kSeenHttpServer |
                          (dst_port == 8080 ? classify::kSeenPort8080
                                            : classify::kSeenPort80);
        src_info.flags |= classify::kSeenHttpClient;
        if (match.host) note_host(dst, *match.host, sample.seq);
        return;
      case classify::HttpIndication::kResponse:
        src_info.flags |= classify::kSeenHttpServer |
                          (src_port == 8080 ? classify::kSeenPort8080
                                            : classify::kSeenPort80);
        dst_info.flags |= classify::kSeenHttpClient;
        if (match.host) note_host(src, *match.host, sample.seq);
        return;
      case classify::HttpIndication::kHeaderOnly:
        return;
    }
  }

  [[nodiscard]] std::size_t unique_ips() const { return activity_.size(); }

 private:
  static constexpr std::size_t kMaxHostsPerServer = 8;

  void note_host(net::Ipv4Addr server, const std::string& host,
                 std::uint64_t seq) {
    auto& hosts = hosts_[server];
    for (auto& seen : hosts) {
      if (seen.first == host) {
        seen.second = std::min(seen.second, seq);
        return;
      }
    }
    if (hosts.size() < kMaxHostsPerServer) hosts.emplace_back(host, seq);
  }

  std::unordered_map<net::Ipv4Addr, classify::IpActivity> activity_;
  std::unordered_map<net::Ipv4Addr,
                     std::vector<std::pair<std::string, std::uint64_t>>>
      hosts_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::Suite suite{"hotpath", args};
  const Fixture fixture;

  // The A/B isolates the dissect+observe loop — the part this PR moved
  // onto flat tables and string_view extraction. Filtering and frame
  // parsing are identical on both sides, so they run once up front; the
  // pool outlives the PeeringSamples whose spans point into it.
  std::vector<classify::PeeringSample> peering;
  {
    const classify::PeeringFilter filter{fixture.ixp, kWeek};
    classify::FilterCounters counters;
    peering.reserve(fixture.pool.size());
    std::uint64_t seq = 0;
    for (const sflow::FlowSample& sample : fixture.pool) {
      auto p = filter.filter(sample, counters);
      if (p) {
        p->seq = seq++;
        peering.push_back(*p);
      }
    }
  }

  // Production path: flat tables, string_view dissection, batch ingest
  // with lookahead prefetch (the shard path). Steady-state expectation
  // after the warmup pass: 0 allocs/item.
  {
    classify::TrafficDissector dissector;
    suite.run_case(
        "dissect_observe_flat", 2000,
        [&](std::uint64_t iters, int) {
          for (std::uint64_t it = 0; it < iters; ++it)
            dissector.ingest(std::span<const classify::PeeringSample>{peering});
          return iters * peering.size();
        });
    bench::keep(dissector.summarize());
  }

  // Structure-of-arrays path: the same survivors staged through a
  // FrameBatch (fields derived once, at staging time — exactly what
  // WeekShard::observe_batch does per batch), ingested via the SoA pass.
  // Steady-state expectation after the warmup pass: 0 allocs/item.
  {
    classify::FrameBatch batch;
    batch.reserve(peering.size());
    for (const classify::PeeringSample& sample : peering) batch.push(sample);
    classify::TrafficDissector dissector;
    suite.run_case(
        "dissect_observe_batched", 2000,
        [&](std::uint64_t iters, int) {
          for (std::uint64_t it = 0; it < iters; ++it) dissector.ingest(batch);
          return iters * batch.size();
        });
    bench::keep(dissector.summarize());
  }

  // LaneFlags tier A/B: the evidence-bit kernel swept over the staged
  // batch arrays with each implementation pinned directly — scalar
  // branch form, the shipped SSE2 16-wide form, and the 32-wide AVX2
  // form — so the dispatch decision in DESIGN.md §14.3 stays tied to
  // measured numbers from this machine. The AVX2 case only runs (and
  // only lands in the JSON) where the hardware can execute it; the
  // stamped cpu_flags keep bench_diff from gating unlike machines
  // against each other.
  {
    classify::FrameBatch batch;
    batch.reserve(peering.size());
    for (const classify::PeeringSample& sample : peering) batch.push(sample);
    std::vector<std::uint8_t> src_flags(batch.size());
    std::vector<std::uint8_t> dst_flags(batch.size());
    const auto sweep = [&](auto kernel) {
      return [&, kernel](std::uint64_t iters, int) {
        for (std::uint64_t it = 0; it < iters; ++it)
          kernel(batch.src_port(), batch.dst_port(), batch.tcp(),
                 batch.indication(), batch.size(), src_flags.data(),
                 dst_flags.data());
        bench::keep(src_flags.empty() ? 0 : src_flags[0] ^ dst_flags[0]);
        return iters * batch.size();
      };
    };
    suite.run_case("lane_flags_scalar", 4000,
                   sweep(classify::LaneFlags::compute_scalar));
    suite.run_case("lane_flags_sse2", 20000,
                   sweep(classify::detail::lane_flags_sse2));
    if (util::CpuFeatures::detect().avx2)
      suite.run_case("lane_flags_avx2", 20000,
                     sweep(classify::detail::lane_flags_avx2));
  }

  // Pre-optimization baseline replica (see above).
  {
    LegacyDissector dissector;
    suite.run_case(
        "dissect_observe_legacy", 2000,
        [&](std::uint64_t iters, int) {
          for (std::uint64_t it = 0; it < iters; ++it)
            for (const classify::PeeringSample& sample : peering)
              dissector.ingest(sample);
          return iters * peering.size();
        });
    bench::keep(dissector.unique_ips());
  }

  // End-to-end context: filter + dissect together, as production runs it.
  {
    const classify::PeeringFilter filter{fixture.ixp, kWeek};
    classify::FilterCounters counters;
    classify::TrafficDissector dissector;
    std::uint64_t seq = 0;
    suite.run_case(
        "filter_dissect_flat", 600,
        [&](std::uint64_t iters, int) {
          for (std::uint64_t it = 0; it < iters; ++it) {
            for (const sflow::FlowSample& sample : fixture.pool) {
              auto p = filter.filter(sample, counters);
              if (p) {
                p->seq = seq++;
                dissector.ingest(*p);
              }
            }
          }
          return iters * fixture.pool.size();
        });
    bench::keep(dissector.summarize());
  }

  // Trace replay through the reused-batch cursor (next() path).
  {
    std::string trace;
    {
      std::ostringstream raw;
      sflow::TraceWriter writer{raw, net::Ipv4Addr{172, 16, 0, 1}, 128};
      for (const auto& sample : fixture.pool) writer.write(sample);
      writer.flush();
      trace = raw.str();
    }
    // One stream and one reader, rewound and reset() between passes: the
    // reader's scratch buffers keep their capacity, so steady state is
    // 0 allocs/sample (the warmup pass gets it there).
    std::istringstream in{trace};
    sflow::TraceReader reader{in};
    suite.run_case(
        "trace_replay_next", 150,
        [&](std::uint64_t iters, int) {
          std::uint64_t delivered = 0;
          for (std::uint64_t it = 0; it < iters; ++it) {
            in.clear();
            in.seekg(0);
            reader.reset(in);
            while (auto sample = reader.next()) {
              bench::keep(sample->sampling_rate);
              ++delivered;
            }
          }
          return delivered;
        });
  }

  const auto& results = suite.results();
  double flat = 0.0;
  double batched = 0.0;
  double legacy = 0.0;
  double flat_allocs = 0.0;
  double batched_allocs = 0.0;
  for (const auto& result : results) {
    if (result.name == "dissect_observe_flat") {
      flat = result.items_per_sec();
      flat_allocs = result.allocs_per_item();
    } else if (result.name == "dissect_observe_batched") {
      batched = result.items_per_sec();
      batched_allocs = result.allocs_per_item();
    } else if (result.name == "dissect_observe_legacy") {
      legacy = result.items_per_sec();
    }
  }
  if (legacy > 0.0 && flat > 0.0)
    std::printf(
        "dissect+observe speedup flat vs legacy: %.2fx, batched vs flat: "
        "%.2fx  (allocs/item flat: %.4f, batched: %.4f)\n",
        flat / legacy, batched / flat, flat_allocs, batched_allocs);
  return 0;
}
