// Figure 1 / §2.2.1 — the traffic filtering cascade.
//
// Paper (week 45): non-IPv4 ~0.4%, non-member-or-local ~0.6%,
// non-TCP/UDP <0.5%, peering >98.5% of all traffic; of the peering
// traffic, 82% TCP and 18% UDP by bytes.
#include <iostream>

#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx = expcommon::Context::create("Figure 1: traffic filtering steps (week 45)", argc, argv);
  const auto report = ctx.run_week(45);
  const auto& f = report.filters;
  const double total_bytes = f.total_bytes();

  util::Table table{"Filtering cascade (share of total bytes)"};
  table.header({"step", "measured", "paper"});
  const auto share = [&](classify::TrafficClass c) {
    return util::percent(f.bytes_of(c) / total_bytes);
  };
  table.row({"non-IPv4 (IPv6, ARP, ...)",
             share(classify::TrafficClass::kNonIpv4), "~0.4%"});
  table.row({"non-member-to-member or local",
             share(classify::TrafficClass::kNonMemberOrLocal), "~0.6%"});
  table.row({"member IPv4 but not TCP/UDP",
             share(classify::TrafficClass::kNonTcpUdp), "<0.5%"});
  table.row({"peering traffic", share(classify::TrafficClass::kPeering),
             ">98.5%"});
  table.print(std::cout);

  util::Table split{"\nPeering traffic transport split (bytes)"};
  split.header({"proto", "measured", "paper"});
  const double peering = f.tcp_bytes + f.udp_bytes;
  split.row({"TCP", util::percent(f.tcp_bytes / peering), "82%"});
  split.row({"UDP", util::percent(f.udp_bytes / peering), "18%"});
  split.print(std::cout);

  std::cout << "\nsamples processed: " << util::with_thousands(f.total_samples())
            << ", estimated weekly volume: " << util::bytes(total_bytes)
            << " (paper: ~98 PB/week at full scale)\n";
  return 0;
}
