// §3.1 — cross-validation against the orthogonal ISP vantage point.
//
// Paper: using HTTP/DNS logs from a large European Tier-1 ISP, only ~45K
// of the server IPs seen by the ISP are not seen at the IXP (~3% of the
// IXP's 1.5M), and every overlapping IP identified as a server at the IXP
// is confirmed to be a server in the more detailed ISP data.
#include <iostream>
#include <unordered_set>

#include "exp_common.hpp"
#include "gen/isp_observer.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx = expcommon::Context::create("Section 3.1: cross-validation with a Tier-1 ISP's logs (week 45)", argc, argv);
  const auto report = ctx.run_week(45);

  std::unordered_set<net::Ipv4Addr> ixp_servers;
  for (const auto& obs : report.servers) ixp_servers.insert(obs.addr);

  const gen::IspObserver isp{*ctx.model};
  const auto isp_servers = isp.observed_servers(45);

  std::size_t overlap = 0;
  std::size_t isp_only = 0;
  for (const net::Ipv4Addr addr : isp_servers) {
    if (ixp_servers.count(addr) > 0)
      ++overlap;
    else
      ++isp_only;
  }

  // Confirmation: every IXP-identified server in the overlap must be a
  // real server in the (ground-truth-backed) ISP view.
  std::size_t confirmed = 0;
  for (const net::Ipv4Addr addr : ixp_servers) {
    if (isp_servers.count(addr) == 0) continue;
    if (ctx.model->server_by_addr(addr)) ++confirmed;
  }

  util::Table table{"ISP vs IXP server visibility"};
  table.header({"quantity", "measured", "paper"});
  table.row({"server IPs at the IXP", util::with_thousands(ixp_servers.size()),
             "~1.5M"});
  table.row({"server IPs in the ISP logs", util::with_thousands(isp_servers.size()),
             "(proprietary)"});
  table.row({"seen by both", util::with_thousands(overlap), "-"});
  table.row({"ISP-only (unseen at IXP)", util::with_thousands(isp_only),
             "~45K (~3% of IXP count)"});
  table.print(std::cout);

  std::cout << "\nISP-only share relative to IXP server count: "
            << util::percent(static_cast<double>(isp_only) /
                             static_cast<double>(ixp_servers.size()), 1)
            << "  (paper: ~3%)\n";
  std::cout << "overlapping IXP-identified servers confirmed by ISP data: "
            << confirmed << "/" << overlap
            << " (paper: all confirmed)\n";
  return 0;
}
