// Calibration: how accurate are 1:16384-sampled estimates?
//
// The paper's visibility claims rest on sFlow's statistical guarantees
// ("absence of sampling bias", §2.1): a sampled count times the sampling
// rate is an unbiased estimate of the true count, with relative error
// ~1/sqrt(samples). This experiment generates synthetic flow aggregates
// with known ground truth, thins them through the Sampler at several
// rates, and reports the estimation error — including at the paper's
// production rate. DESIGN.md ablation #1's two thinning paths are
// cross-checked here as well.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_json.hpp"
#include "sflow/sampler.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  // Validate the uniform bench command line; this experiment is
  // single-threaded analytic code, so only --json/--iters would matter
  // and neither changes the deterministic outputs below.
  (void)bench::BenchArgs::parse(argc, argv);
  util::print_banner(std::cout, "Calibration: sampling estimation accuracy");

  util::Rng rng{0x5a3b17};
  // A member-port-like aggregate: heavy-tailed flow sizes.
  constexpr std::size_t kFlows = 20000;
  std::vector<std::uint64_t> flow_packets(kFlows);
  std::uint64_t true_packets = 0;
  for (auto& packets : flow_packets) {
    packets = static_cast<std::uint64_t>(rng.next_pareto(40.0, 1.2));
    if (packets > 50'000'000) packets = 50'000'000;
    true_packets += packets;
  }

  util::Table table{"Relative error of packet-count estimates (20 trials)"};
  table.header({"sampling rate", "mean samples", "mean |error|", "max |error|",
                "theory ~1/sqrt(n)"});
  for (const std::uint32_t rate : {256u, 1024u, 4096u, 16384u, 65536u}) {
    const sflow::Sampler sampler{rate};
    double error_sum = 0.0;
    double error_max = 0.0;
    double samples_sum = 0.0;
    constexpr int kTrials = 20;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::uint64_t sampled = 0;
      for (const std::uint64_t packets : flow_packets)
        sampled += sampler.sample_flow(rng, packets);
      const double estimate = static_cast<double>(sampled) * rate;
      const double error =
          std::fabs(estimate - static_cast<double>(true_packets)) /
          static_cast<double>(true_packets);
      error_sum += error;
      error_max = std::max(error_max, error);
      samples_sum += static_cast<double>(sampled);
    }
    const double mean_samples = samples_sum / kTrials;
    table.row({"1:" + std::to_string(rate), util::compact(mean_samples),
               util::percent(error_sum / kTrials, 3),
               util::percent(error_max, 3),
               util::percent(1.0 / std::sqrt(mean_samples), 3)});
  }
  table.print(std::cout);

  // Ablation #1: binomial thinning vs per-packet Bernoulli at 1:16384.
  const sflow::Sampler paper_rate;
  constexpr std::uint64_t kPackets = 3'000'000;
  constexpr int kTrials = 40;
  double binomial_mean = 0.0;
  double bernoulli_mean = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    binomial_mean +=
        static_cast<double>(paper_rate.sample_flow(rng, kPackets));
    std::uint64_t count = 0;
    for (std::uint64_t p = 0; p < kPackets; ++p)
      count += paper_rate.sample_packet(rng) ? 1 : 0;
    bernoulli_mean += static_cast<double>(count);
  }
  binomial_mean /= kTrials;
  bernoulli_mean /= kTrials;
  const double expectation =
      static_cast<double>(kPackets) / paper_rate.rate();
  std::cout << "\nAblation (1:16384, 3M-packet flow, " << kTrials
            << " trials):\n";
  std::cout << "  expectation:           " << util::fixed(expectation, 1)
            << " samples\n";
  std::cout << "  binomial thinning:     " << util::fixed(binomial_mean, 1)
            << "\n";
  std::cout << "  per-packet Bernoulli:  " << util::fixed(bernoulli_mean, 1)
            << "\n";
  std::cout << "Both paths are unbiased; the binomial path is the one the\n"
               "workload generator uses (it is ~4 orders of magnitude\n"
               "cheaper at production packet volumes — see micro_sflow).\n";
  return 0;
}
