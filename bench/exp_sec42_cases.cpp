// §4.2 — change detection from weekly snapshots (weeks 35-51).
//
// Four case studies:
//   HTTPS growth      — small, steady increase of HTTPS server share and
//                       traffic share across the period.
//   EC2 / Netflix     — pronounced jump of server IPs in EC2's Ireland
//                       DC in weeks 49-51 (the Netflix Nordics launch).
//   Hurricane Sandy   — week-44 collapse of the cloud provider's us-east
//                       server IPs.
//   Reseller growth   — a reseller's customer server IPs double over the
//                       period (paper: 50K -> 100K in four months).
#include <iostream>
#include <unordered_set>

#include "analysis/attribution.hpp"
#include "analysis/case_studies.hpp"
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx = expcommon::Context::create("Section 4.2: changes in the face of significant stability", argc, argv);
  const auto& cfg = ctx.cfg;

  const auto ec2 = ctx.model->org_by_name("ec2");
  const auto nimbus = ctx.model->org_by_name("nimbus");
  const auto reseller_asn = ctx.model->ases()[ctx.model->reseller_as()].asn;

  struct WeekRow {
    analysis::HttpsTrendRow https;
    std::vector<analysis::DataCenterCount> ec2_dcs;
    std::vector<analysis::DataCenterCount> nimbus_dcs;
    std::size_t reseller_server_ips = 0;
  };
  std::vector<WeekRow> rows;

  for (int week = cfg.first_week; week <= cfg.last_week; ++week) {
    const auto report = ctx.run_week(week);
    WeekRow row;
    row.https = analysis::https_trend_row(report);

    std::unordered_set<net::Ipv4Addr> servers;
    for (const auto& obs : report.servers) servers.insert(obs.addr);
    if (ec2) row.ec2_dcs = analysis::match_published_ranges(*ctx.model, *ec2, servers);
    if (nimbus)
      row.nimbus_dcs = analysis::match_published_ranges(*ctx.model, *nimbus, servers);

    // Reseller: server IPs whose traffic entered over the reseller port.
    analysis::AttributionPass pass{ctx.model->ixp(), week,
                                   [&] {
                                     std::unordered_map<net::Ipv4Addr, std::uint32_t> m;
                                     for (const auto& obs : report.servers)
                                       m.emplace(obs.addr, 0u);
                                     return m;
                                   }(),
                                   {}};
    (void)ctx.workload->generate_week(
        week, [&pass](const sflow::FlowSample& s) { pass.observe(s); });
    row.reseller_server_ips = pass.ingress_server_ips(reseller_asn);

    std::cout << "week " << week << " done\n";
    rows.push_back(std::move(row));
  }

  util::Table https{"\nHTTPS adoption trend"};
  https.header({"week", "HTTPS servers", "share of servers", "share of traffic"});
  for (const auto& row : rows) {
    https.row({std::to_string(row.https.week),
               util::with_thousands(row.https.https_servers),
               util::percent(row.https.https_server_share, 1),
               util::percent(row.https.https_traffic_share, 2)});
  }
  https.print(std::cout);
  std::cout << "paper: a small yet steady increase across the period\n";

  if (ec2 && !rows.front().ec2_dcs.empty()) {
    util::Table table{"\nEC2 server IPs by data center (published ranges)"};
    std::vector<std::string> header{"week"};
    for (const auto& dc : rows.front().ec2_dcs) header.push_back(dc.name);
    table.header(header);
    for (const auto& row : rows) {
      std::vector<std::string> cells{std::to_string(row.https.week)};
      for (const auto& dc : row.ec2_dcs)
        cells.push_back(util::with_thousands(dc.observed_servers));
      table.row(cells);
    }
    table.print(std::cout);
    std::cout << "paper: pronounced eu-ireland increase in weeks 49-51 "
                 "(Netflix launching in the Nordics)\n";
  }

  if (nimbus && !rows.front().nimbus_dcs.empty()) {
    util::Table table{"\nCloud provider server IPs by DC (Hurricane Sandy)"};
    std::vector<std::string> header{"week"};
    for (const auto& dc : rows.front().nimbus_dcs) header.push_back(dc.name);
    table.header(header);
    for (const auto& row : rows) {
      if (row.https.week < 42 || row.https.week > 46) continue;
      std::vector<std::string> cells{std::to_string(row.https.week)};
      for (const auto& dc : row.nimbus_dcs)
        cells.push_back(util::with_thousands(dc.observed_servers));
      table.row(cells);
    }
    table.print(std::cout);
    std::cout << "paper: us-east drops to near zero in week 44\n";
  }

  util::Table reseller{"\nServer IPs entering via the reseller port"};
  reseller.header({"week", "server IPs"});
  for (const auto& row : rows) {
    reseller.row({std::to_string(row.https.week),
                  util::with_thousands(row.reseller_server_ips)});
  }
  reseller.print(std::cout);
  const double growth =
      rows.front().reseller_server_ips == 0
          ? 0.0
          : static_cast<double>(rows.back().reseller_server_ips) /
                static_cast<double>(rows.front().reseller_server_ips);
  std::cout << "reseller growth factor across the period: x"
            << util::fixed(growth, 2) << "  (paper: 50K -> 100K, x2)\n";
  return 0;
}
