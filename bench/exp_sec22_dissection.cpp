// §2.2.2 — Web-server identification numbers (week 45).
//
// Paper: ~1.3M HTTP server IPs and ~40M client IPs via string matching;
// HTTPS funnel 1.5M candidates -> 500K respond -> 250K confirmed; ~1.5M
// Web server IPs combined; 350K multi-purpose; 200K act as server and
// client, responsible for ~10% of server traffic; server IPs see >70% of
// the peering traffic.
#include <iostream>

#include "analysis/attribution.hpp"
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx = expcommon::Context::create("Section 2.2.2: dissecting the Web-server-related traffic (week 45)", argc, argv);
  const auto report = ctx.run_week(45);
  const auto& d = report.dissection;
  const double server_scale = ctx.quick ? 0.0 : ctx.server_scale();
  const double client_scale = ctx.quick ? 0.0 : ctx.ip_scale();

  util::Table table{"Identification counts"};
  table.header({"quantity", "measured", "paper", "paper x scale"});
  const auto row = [&](const char* label, double v, double paper, double scale) {
    table.row({label, util::compact(v), util::compact(paper),
               scale > 0 ? util::compact(paper * scale) : std::string{"-"}});
  };
  row("HTTP server IPs (string match)", static_cast<double>(d.http_server_ips),
      1'300'000, server_scale);
  row("HTTP client IPs", static_cast<double>(d.client_ips), 40'000'000,
      client_scale);
  row("HTTPS candidates (port 443)", static_cast<double>(report.https_funnel.candidates),
      1'500'000, server_scale);
  row("HTTPS responding to crawls", static_cast<double>(report.https_funnel.responded),
      500'000, server_scale);
  row("HTTPS confirmed (all checks)", static_cast<double>(report.https_funnel.confirmed),
      250'000, server_scale);
  row("Web server IPs (HTTP u HTTPS)", static_cast<double>(d.web_server_ips),
      1'500'000, server_scale);
  row("multi-purpose server IPs", static_cast<double>(d.multi_purpose_ips),
      350'000, server_scale);
  row("server+client (dual-role) IPs", static_cast<double>(d.dual_role_ips),
      200'000, server_scale);
  table.print(std::cout);

  // Sample-level attribution for the server byte share (pass B).
  std::unordered_map<net::Ipv4Addr, std::uint32_t> server_org;
  for (const auto& obs : report.servers) server_org.emplace(obs.addr, 0u);
  analysis::AttributionPass pass{ctx.model->ixp(), 45, std::move(server_org), {}};
  (void)ctx.workload->generate_week(
      45, [&pass](const sflow::FlowSample& s) { pass.observe(s); });

  std::cout << "\nserver-related share of peering bytes: "
            << util::percent(pass.server_share(), 1) << "  (paper: >70%)\n";

  double dual_bytes = 0.0;
  double server_bytes_sum = 0.0;
  for (const auto& obs : report.servers) {
    server_bytes_sum += obs.bytes;
    if (obs.also_client) dual_bytes += obs.bytes;
  }
  std::cout << "dual-role IPs' share of server traffic: "
            << util::percent(dual_bytes / server_bytes_sum, 1)
            << "  (paper: ~10%)\n";
  return 0;
}
