#include "exp_common.hpp"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <span>
#include <vector>

#include "core/parallel_analyzer.hpp"
#include "ingest/ingest_source.hpp"

namespace ixp::expcommon {

Context Context::create(const std::string& experiment, int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  Context ctx = create(experiment);
  ctx.args = std::move(args);
  if (!ctx.args.json_path.empty())
    ctx.timeline = std::make_shared<bench::Suite>(experiment, ctx.args);
  return ctx;
}

Context Context::create(const std::string& experiment) {
  Context ctx;
  ctx.volume = 1.0 / 256.0;
  if (const char* env = std::getenv("IXPSCOPE_VOLUME")) {
    const double v = std::atof(env);
    if (v > 0.0 && v <= 1.0) ctx.volume = v;
  }
  ctx.quick = std::getenv("IXPSCOPE_QUICK") != nullptr;
  ctx.cfg = ctx.quick ? gen::ScaleConfig::test()
                      : gen::ScaleConfig::bench(ctx.volume);

  util::print_banner(std::cout, experiment);
  std::cout << "scale: " << (ctx.quick ? "QUICK (test preset)" : "bench")
            << "  volume=" << (ctx.quick ? 0.0 : ctx.volume)
            << "  weekly-server-target=" << util::compact(static_cast<double>(
                   ctx.cfg.weekly_server_ips))
            << " (paper: 1.5M)"
            << "  ases=" << util::compact(static_cast<double>(ctx.cfg.as_count))
            << "  prefixes=" << util::compact(static_cast<double>(ctx.cfg.prefix_count))
            << "\n";

  const auto t0 = std::chrono::steady_clock::now();
  ctx.model = std::make_unique<gen::InternetModel>(ctx.cfg);
  ctx.workload = std::make_unique<gen::Workload>(*ctx.model);
  std::vector<net::Asn> members;
  for (const auto* m : ctx.model->ixp().members_at(ctx.cfg.last_week))
    members.push_back(m->asn);
  ctx.locality = ctx.model->as_graph().classify(members);
  const auto t1 = std::chrono::steady_clock::now();
  std::cout << "model: " << ctx.model->servers().size() << " servers, "
            << ctx.model->orgs().size() << " orgs, built in "
            << std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0).count()
            << " ms\n";
  return ctx;
}

core::WeeklyReport Context::run_week(int week) const {
  core::VantagePoint vp{model->ixp(),   model->routing(), model->geo_db(),
                        locality,       model->dns_db(),
                        dns::PublicSuffixList::builtin(), model->root_store()};
  const auto fetch = [this, week](net::Ipv4Addr addr, int times) {
    return model->fetch_chains(addr, times, week);
  };

  // The report is identical at every thread count (merge is a monoid),
  // so repeats and threading only change wall-clock, never the output.
  const std::uint64_t repeats = args.iters > 0 ? args.iters : 1;
  core::WeeklyReport report;
  std::uint64_t samples = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < repeats; ++r) {
    if (args.threads > 1) {
      std::vector<sflow::FlowSample> stream;
      (void)workload->generate_week(
          week,
          [&stream](const sflow::FlowSample& sample) { stream.push_back(sample); });
      core::ParallelOptions options;
      options.threads = static_cast<unsigned>(args.threads);
      core::ParallelAnalyzer analyzer{vp, options};
      ingest::SpanSource source{stream, options.batch_size};
      report = analyzer.analyze(week, source, fetch);
      samples += stream.size();
    } else {
      core::WeekSession session = vp.open_week(week);
      (void)workload->generate_week(
          week, [&session](const sflow::FlowSample& sample) {
            session.observe(sample);
          });
      samples += session.samples_observed();
      report = session.finish(fetch);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  if (timeline) {
    bench::BenchResult timing;
    timing.name = "week" + std::to_string(week);
    timing.iters = repeats;
    timing.threads = args.threads;
    timing.items = samples;
    timing.seconds = std::chrono::duration<double>(t1 - t0).count();
    timeline->add(std::move(timing));
  }
  return report;
}

std::string Context::scaled_row(double measured, double paper, double scale) {
  return util::compact(measured) + "  (paper " + util::compact(paper) +
         ", at this scale ~" + util::compact(paper * scale) + ")";
}

}  // namespace ixp::expcommon
