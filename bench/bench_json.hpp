// Reproducible benchmark harness shared by every bench/ binary.
//
// Three pieces:
//
//   - BenchArgs: the uniform command line every bench binary honors —
//     `--json PATH --iters N --threads N`. One parser, one contract, so
//     a CI script can drive any binary the same way.
//   - alloc_count(): a process-wide heap-allocation counter fed by
//     interposed global operator new/delete (bench_json.cpp). The
//     zero-allocation claim on the hot path is measured, not asserted.
//   - Suite: runs named cases (warmup pass, then one timed pass wrapped
//     in wall-clock + allocation-delta measurement), prints a human
//     line per case, and — when --json was given — writes the whole run
//     as one JSON document (schema "ixpscope-bench-v1") carrying the
//     git revision, so successive runs form a comparable trajectory.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ixp::bench {

/// Heap allocations made by this process so far (every global operator
/// new since startup). Sample before/after a region; the difference is
/// the region's allocation count. Thread-safe.
[[nodiscard]] std::uint64_t alloc_count() noexcept;

/// Optimization barrier: forces `value` to be materialized (the
/// hand-rolled equivalent of benchmark::DoNotOptimize).
template <class T>
inline void keep(T&& value) noexcept {
  asm volatile("" : : "g"(&value) : "memory");
}

/// The revision baked in at configure time ("unknown" outside git).
[[nodiscard]] std::string_view git_rev() noexcept;

/// Uniform bench command line: `--json PATH --iters N --threads N`.
struct BenchArgs {
  std::string json_path;   ///< empty = no JSON output
  std::uint64_t iters = 0; ///< 0 = use each case's default
  int threads = 1;

  /// Parses argv; exits with a usage message on malformed input.
  [[nodiscard]] static BenchArgs parse(int argc, char** argv);
};

/// One timed case.
struct BenchResult {
  std::string name;
  std::uint64_t iters = 0;
  int threads = 1;
  std::uint64_t items = 0;  ///< work units processed across all iters
  double seconds = 0.0;     ///< wall time of the timed pass
  std::uint64_t allocs = 0; ///< heap allocations during the timed pass

  [[nodiscard]] double items_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
  }
  [[nodiscard]] double ns_per_item() const noexcept {
    return items > 0 ? seconds * 1e9 / static_cast<double>(items) : 0.0;
  }
  [[nodiscard]] double allocs_per_item() const noexcept {
    return items > 0 ? static_cast<double>(allocs) / static_cast<double>(items)
                     : 0.0;
  }
};

class Suite {
 public:
  Suite(std::string name, BenchArgs args);
  ~Suite();  // flush()es

  Suite(const Suite&) = delete;
  Suite& operator=(const Suite&) = delete;

  /// Runs one case: `fn(iters, threads)` must perform `iters` repetitions
  /// and return the number of items processed. `--iters` overrides
  /// `default_iters`. A 1/8-length warmup pass runs first (untimed) so
  /// tables, caches, and buffers reach steady state; the timed pass is
  /// wrapped in wall-clock and allocation-delta measurement.
  void run_case(const std::string& name, std::uint64_t default_iters,
                const std::function<std::uint64_t(std::uint64_t iters,
                                                  int threads)>& fn);

  /// Records an externally measured case (A/B loops that time themselves).
  void add(BenchResult result);

  [[nodiscard]] const std::vector<BenchResult>& results() const noexcept {
    return results_;
  }
  [[nodiscard]] const BenchArgs& args() const noexcept { return args_; }

  /// Writes the JSON document when --json was given. Idempotent; the
  /// destructor calls it.
  void flush();

 private:
  std::string name_;
  BenchArgs args_;
  std::vector<BenchResult> results_;
  bool flushed_ = false;
};

}  // namespace ixp::bench
