// Micro-benchmarks: sFlow wire codecs and sampling (DESIGN.md ablation
// #1 — binomial flow thinning vs. exact per-packet Bernoulli sampling).
#include <benchmark/benchmark.h>

#include <cstring>

#include "sflow/datagram.hpp"
#include "sflow/frame.hpp"
#include "sflow/sampler.hpp"

namespace {

using namespace ixp;

sflow::FrameSpec spec() {
  sflow::FrameSpec s;
  s.src_mac = sflow::MacAddr::from_id(1);
  s.dst_mac = sflow::MacAddr::from_id(2);
  s.src_ip = net::Ipv4Addr{10, 0, 0, 1};
  s.dst_ip = net::Ipv4Addr{192, 0, 2, 7};
  s.src_port = 80;
  s.dst_port = 45678;
  return s;
}

void BM_BuildTcpFrame(benchmark::State& state) {
  const char payload[] = "HTTP/1.1 200 OK\r\nServer: bench\r\n";
  std::vector<std::byte> data(sizeof payload - 1);
  std::memcpy(data.data(), payload, data.size());
  const auto s = spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sflow::build_tcp_frame(s, data, 1400));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildTcpFrame);

void BM_ParseFrame(benchmark::State& state) {
  const auto frame = sflow::build_tcp_frame(spec(), {}, 1400);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sflow::parse_frame(frame));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseFrame);

void BM_Ipv4Checksum(benchmark::State& state) {
  std::array<std::byte, 20> header{};
  sflow::Ipv4Header h;
  h.total_length = 1500;
  h.src = net::Ipv4Addr{10, 1, 2, 3};
  h.dst = net::Ipv4Addr{10, 4, 5, 6};
  h.serialize(header);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sflow::Ipv4Header::checksum(header));
  }
}
BENCHMARK(BM_Ipv4Checksum);

void BM_DatagramRoundTrip(benchmark::State& state) {
  sflow::Datagram d;
  d.agent = net::Ipv4Addr{172, 16, 0, 1};
  for (int i = 0; i < 32; ++i) {
    sflow::FlowSample sample;
    sample.sampling_rate = 16384;
    sample.frame = sflow::build_tcp_frame(spec(), {}, 1400);
    d.samples.push_back(sample);
  }
  for (auto _ : state) {
    const auto bytes = sflow::encode(d);
    benchmark::DoNotOptimize(sflow::decode(bytes));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DatagramRoundTrip);

// Ablation #1: the two sampling paths at the paper's 1:16384 rate.
void BM_SampleFlowBinomial(benchmark::State& state) {
  const sflow::Sampler sampler;
  util::Rng rng{7};
  const auto packets = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_flow(rng, packets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SampleFlowBinomial)->Arg(1000)->Arg(100000)->Arg(10000000);

void BM_SamplePerPacketBernoulli(benchmark::State& state) {
  const sflow::Sampler sampler;
  util::Rng rng{7};
  const auto packets = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    std::uint64_t count = 0;
    for (std::uint64_t p = 0; p < packets; ++p)
      count += sampler.sample_packet(rng) ? 1 : 0;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SamplePerPacketBernoulli)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
