// Micro-benchmarks: sFlow wire codecs and sampling (DESIGN.md ablation
// #1 — binomial flow thinning vs. exact per-packet Bernoulli sampling).
#include <array>
#include <cstring>
#include <vector>

#include "bench_json.hpp"
#include "sflow/datagram.hpp"
#include "sflow/frame.hpp"
#include "sflow/sampler.hpp"
#include "util/rng.hpp"

namespace {

using namespace ixp;

sflow::FrameSpec spec() {
  sflow::FrameSpec s;
  s.src_mac = sflow::MacAddr::from_id(1);
  s.dst_mac = sflow::MacAddr::from_id(2);
  s.src_ip = net::Ipv4Addr{10, 0, 0, 1};
  s.dst_ip = net::Ipv4Addr{192, 0, 2, 7};
  s.src_port = 80;
  s.dst_port = 45678;
  return s;
}

void bench_sample_flow(bench::Suite& suite, std::uint64_t packets,
                       std::uint64_t default_iters) {
  const sflow::Sampler sampler;
  util::Rng rng{7};
  suite.run_case("sample_flow_binomial/" + std::to_string(packets),
                 default_iters, [&](std::uint64_t iters, int) {
                   for (std::uint64_t it = 0; it < iters; ++it)
                     bench::keep(sampler.sample_flow(rng, packets));
                   return iters * packets;
                 });
}

void bench_sample_bernoulli(bench::Suite& suite, std::uint64_t packets,
                            std::uint64_t default_iters) {
  const sflow::Sampler sampler;
  util::Rng rng{7};
  suite.run_case("sample_per_packet_bernoulli/" + std::to_string(packets),
                 default_iters, [&](std::uint64_t iters, int) {
                   for (std::uint64_t it = 0; it < iters; ++it) {
                     std::uint64_t count = 0;
                     for (std::uint64_t p = 0; p < packets; ++p)
                       count += sampler.sample_packet(rng) ? 1 : 0;
                     bench::keep(count);
                   }
                   return iters * packets;
                 });
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::Suite suite{"sflow", args};

  {
    const char payload[] = "HTTP/1.1 200 OK\r\nServer: bench\r\n";
    std::vector<std::byte> data(sizeof payload - 1);
    std::memcpy(data.data(), payload, data.size());
    const auto s = spec();
    suite.run_case("build_tcp_frame", 1'000'000,
                   [&](std::uint64_t iters, int) {
                     for (std::uint64_t it = 0; it < iters; ++it)
                       bench::keep(sflow::build_tcp_frame(s, data, 1400));
                     return iters;
                   });
  }

  {
    const auto frame = sflow::build_tcp_frame(spec(), {}, 1400);
    suite.run_case("parse_frame", 5'000'000, [&](std::uint64_t iters, int) {
      for (std::uint64_t it = 0; it < iters; ++it)
        bench::keep(sflow::parse_frame(frame));
      return iters;
    });
  }

  {
    std::array<std::byte, 20> header{};
    sflow::Ipv4Header h;
    h.total_length = 1500;
    h.src = net::Ipv4Addr{10, 1, 2, 3};
    h.dst = net::Ipv4Addr{10, 4, 5, 6};
    h.serialize(header);
    suite.run_case("ipv4_checksum", 10'000'000, [&](std::uint64_t iters, int) {
      for (std::uint64_t it = 0; it < iters; ++it)
        bench::keep(sflow::Ipv4Header::checksum(header));
      return iters;
    });
  }

  {
    sflow::Datagram d;
    d.agent = net::Ipv4Addr{172, 16, 0, 1};
    for (int i = 0; i < 32; ++i) {
      sflow::FlowSample sample;
      sample.sampling_rate = 16384;
      sample.frame = sflow::build_tcp_frame(spec(), {}, 1400);
      d.samples.push_back(sample);
    }
    suite.run_case("datagram_round_trip", 20'000,
                   [&](std::uint64_t iters, int) {
                     for (std::uint64_t it = 0; it < iters; ++it) {
                       const auto bytes = sflow::encode(d);
                       bench::keep(sflow::decode(bytes));
                     }
                     return iters * 32;
                   });
  }

  // Ablation #1: the two sampling paths at the paper's 1:16384 rate.
  bench_sample_flow(suite, 1000, 1'000'000);
  bench_sample_flow(suite, 100000, 1'000'000);
  bench_sample_flow(suite, 10000000, 1'000'000);
  bench_sample_bernoulli(suite, 1000, 10'000);
  bench_sample_bernoulli(suite, 100000, 100);
  return 0;
}
