// Longitudinal-driver benchmarks: what the distributed map-reduce and the
// provenance-gated incremental re-analysis cost (DESIGN.md §16). One
// binary emits the ixpscope-bench-v1 JSON trajectory:
//
//   build/bench/micro_weeks --json BENCH_weeks.json
//
// Cases (items are observation weeks):
//   weeks_cold             compute every week of the range into a fresh
//                          store — the baseline everything below beats
//   weeks_resume_noop      re-run over a warm store with matching
//                          provenance: the incremental no-op, pure
//                          decode, no analysis
//   weeks_stale_recompute  re-run after the model fingerprint changed:
//                          quarantine every snapshot and recompute —
//                          the invalidation worst case
//   weeks_jobs2_cold       the same cold range through the forked
//                          map-reduce driver with --jobs 2 (on 1-core CI
//                          this measures fork/flock/fold overhead, not
//                          speedup — the contract is correctness)
//   merge_two_stores       fold a two-store partition of the range into
//                          a fresh output store (complete-copy path)
//
// The binary exits nonzero when the incremental contract regresses: a
// no-op re-run must cost < 5% of the cold run per week.
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_json.hpp"
#include "core/parallel_analyzer.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "ingest/ingest_source.hpp"
#include "store/store_merge.hpp"
#include "store/weeks_mapreduce.hpp"
#include "store/weeks_runner.hpp"

namespace {

using namespace ixp;

constexpr int kFromWeek = 44;
constexpr int kToWeek = 47;
constexpr int kWeekCount = kToWeek - kFromWeek + 1;

class OwnedWeekSource final : public ingest::IngestSource {
 public:
  explicit OwnedWeekSource(std::vector<sflow::FlowSample> samples)
      : samples_(std::move(samples)), span_(samples_, 512) {}

  ingest::SourceStatus next_batch(ingest::SampleBatch& out) override {
    return span_.next_batch(out);
  }
  std::vector<std::unique_ptr<ingest::IngestSource>> split(
      std::size_t want) override {
    return span_.split(want);
  }

 private:
  std::vector<sflow::FlowSample> samples_;
  ingest::SpanSource span_;
};

/// The test-preset structure with 6x its weekly traffic. The test preset
/// keeps sample counts tiny so the *unit* suites stay fast, but at that
/// volume decoding a snapshot is a visible fraction of computing one and
/// the cold/no-op ratio under-reports what real runs see. Scaling only
/// the traffic restores a representative compute-to-metadata ratio while
/// the world build stays cheap.
gen::ScaleConfig bench_scale() {
  gen::ScaleConfig cfg = gen::ScaleConfig::test();
  cfg.weekly_background_samples *= 6;
  cfg.weekly_server_flows *= 6;
  return cfg;
}

struct Fixture {
  std::unique_ptr<gen::InternetModel> model;
  std::unordered_map<net::Asn, net::Locality> locality;
  std::map<int, std::vector<sflow::FlowSample>> week_samples;

  Fixture() : model(std::make_unique<gen::InternetModel>(bench_scale())) {
    std::vector<net::Asn> members;
    for (const auto* m : model->ixp().members_at(kToWeek))
      members.push_back(m->asn);
    locality = model->as_graph().classify(members);
    const gen::Workload workload{*model};
    for (int week = kFromWeek; week <= kToWeek; ++week) {
      auto& samples = week_samples[week];
      workload.generate_week(
          week, [&](const sflow::FlowSample& s) { samples.push_back(s); });
    }
  }

  [[nodiscard]] core::VantagePoint make_vantage() const {
    return core::VantagePoint{model->ixp(),   model->routing(),
                              model->geo_db(), locality,
                              model->dns_db(),
                              dns::PublicSuffixList::builtin(),
                              model->root_store()};
  }

  [[nodiscard]] store::WeeksRunner::SourceFactory source_factory() const {
    return [this](int week) -> std::unique_ptr<ingest::IngestSource> {
      return std::make_unique<OwnedWeekSource>(week_samples.at(week));
    };
  }

  [[nodiscard]] store::WeeksRunner::FetcherFactory fetcher_factory() const {
    return [this](int week) -> classify::ChainFetcher {
      return [this, week](net::Ipv4Addr addr, int times) {
        return model->fetch_chains(addr, times, week);
      };
    };
  }

  /// One driver pass over [from, to] into `dir`.
  [[nodiscard]] store::WeeksResult run(const std::string& dir, int from,
                                       int to,
                                       std::uint64_t model_fingerprint = 0,
                                       int jobs = 1) const {
    auto vp = make_vantage();
    core::ParallelOptions popt;
    popt.threads = 1;
    core::ParallelAnalyzer analyzer{vp, popt};
    store::WeeksRunner runner{vp, analyzer, store::SnapshotStore{dir}};
    store::MapReduceOptions options;
    options.weeks.from_week = from;
    options.weeks.to_week = to;
    options.weeks.model_fingerprint = model_fingerprint;
    options.jobs = jobs;
    const auto result = store::run_weeks_mapreduce(
        runner, options, source_factory(), fetcher_factory());
    return result.fold;
  }
};

/// A fresh scratch directory per use, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_((std::filesystem::temp_directory_path() /
               ("ixpscope_micro_weeks_" + tag))
                  .string()) {
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::Suite suite{"weeks", args};
  const Fixture fx;

  suite.run_case("weeks_cold", 3, [&](std::uint64_t iters, int) {
    std::uint64_t weeks = 0;
    for (std::uint64_t it = 0; it < iters; ++it) {
      const ScratchDir dir{"cold_" + std::to_string(it)};
      const auto result = fx.run(dir.path(), kFromWeek, kToWeek);
      if (!result.ok) {
        std::fprintf(stderr, "cold run failed: %s\n", result.error.c_str());
        break;
      }
      weeks += result.weeks_computed;
    }
    return weeks;
  });

  {
    // One warm store, resumed over and over: the incremental no-op.
    const ScratchDir dir{"noop"};
    if (!fx.run(dir.path(), kFromWeek, kToWeek).ok) return 1;
    suite.run_case("weeks_resume_noop", 16, [&](std::uint64_t iters, int) {
      std::uint64_t weeks = 0;
      for (std::uint64_t it = 0; it < iters; ++it) {
        const auto result = fx.run(dir.path(), kFromWeek, kToWeek);
        if (!result.ok || result.weeks_computed != 0) {
          std::fprintf(stderr, "no-op run recomputed: %s\n",
                       result.error.c_str());
          break;
        }
        weeks += result.weeks_resumed;
      }
      return weeks;
    });
  }

  {
    // Alternate the model fingerprint every pass: each run finds every
    // snapshot stale, quarantines it, and recomputes the whole range.
    const ScratchDir dir{"stale"};
    if (!fx.run(dir.path(), kFromWeek, kToWeek, /*fingerprint=*/0).ok)
      return 1;
    std::uint64_t pass = 0;
    suite.run_case("weeks_stale_recompute", 2, [&](std::uint64_t iters, int) {
      std::uint64_t weeks = 0;
      for (std::uint64_t it = 0; it < iters; ++it) {
        const auto result =
            fx.run(dir.path(), kFromWeek, kToWeek, /*fingerprint=*/++pass);
        if (!result.ok ||
            result.weeks_stale != static_cast<std::size_t>(kWeekCount)) {
          std::fprintf(stderr, "stale run did not invalidate\n");
          break;
        }
        weeks += result.weeks_computed;
        // Quarantined snapshots pile up; sweep them so the directory walk
        // stays representative.
        for (const auto& entry :
             std::filesystem::directory_iterator(dir.path())) {
          const auto name = entry.path().filename().string();
          if (name.find("quarantined") != std::string::npos ||
              name.find("stale-provenance") != std::string::npos) {
            std::error_code ec;
            std::filesystem::remove(entry.path(), ec);
          }
        }
      }
      return weeks;
    });
  }

  suite.run_case("weeks_jobs2_cold", 2, [&](std::uint64_t iters, int) {
    std::uint64_t weeks = 0;
    for (std::uint64_t it = 0; it < iters; ++it) {
      const ScratchDir dir{"jobs2_" + std::to_string(it)};
      const auto result =
          fx.run(dir.path(), kFromWeek, kToWeek, /*fingerprint=*/0,
                 /*jobs=*/2);
      if (!result.ok) {
        std::fprintf(stderr, "jobs=2 run failed: %s\n", result.error.c_str());
        break;
      }
      weeks += result.weeks.size();
    }
    return weeks;
  });

  {
    // A two-store partition of the range, merged into a fresh output.
    const ScratchDir a{"merge_a"};
    const ScratchDir b{"merge_b"};
    const int mid = kFromWeek + kWeekCount / 2 - 1;
    if (!fx.run(a.path(), kFromWeek, mid).ok) return 1;
    if (!fx.run(b.path(), mid + 1, kToWeek).ok) return 1;
    suite.run_case("merge_two_stores", 8, [&](std::uint64_t iters, int) {
      std::uint64_t weeks = 0;
      auto vp = fx.make_vantage();
      for (std::uint64_t it = 0; it < iters; ++it) {
        const ScratchDir out{"merge_out"};
        store::MergeOptions options;
        options.inputs = {a.path(), b.path()};
        options.out = out.path();
        const auto result =
            store::merge_stores(vp, options, fx.fetcher_factory());
        if (!result.ok) {
          std::fprintf(stderr, "merge failed: %s\n", result.error.c_str());
          break;
        }
        weeks += result.weeks.size();
      }
      return weeks;
    });
  }

  suite.flush();

  // The incremental contract (ISSUE 10 acceptance): resuming a warm,
  // provenance-matching store must cost < 5% of computing it cold.
  double cold_ns = 0.0;
  double noop_ns = 0.0;
  for (const auto& result : suite.results()) {
    if (result.name == "weeks_cold") cold_ns = result.ns_per_item();
    if (result.name == "weeks_resume_noop") noop_ns = result.ns_per_item();
  }
  if (cold_ns <= 0.0 || noop_ns <= 0.0) {
    std::fprintf(stderr, "FAIL: missing cold/no-op measurements\n");
    return 1;
  }
  const double ratio = noop_ns / cold_ns;
  std::printf("incremental no-op re-run: %.2f%% of cold per week\n",
              ratio * 100.0);
  if (ratio > 0.05) {
    std::fprintf(stderr,
                 "FAIL: no-op resume at %.1f%% of cold (expected < 5%%) — "
                 "is the provenance gate decoding or recomputing?\n",
                 ratio * 100.0);
    return 1;
  }
  return 0;
}
