// Figure 3 — percentage of observed IPs per country (week 45).
//
// The paper's world map shades countries by their share of the IPs seen
// at the IXP; traffic arrives from every country except a handful of
// uninhabited territories. We print the bucketed histogram the map
// encodes plus the head of the distribution.
#include <algorithm>
#include <iostream>
#include <vector>

#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx = expcommon::Context::create("Figure 3: share of observed IPs per country (week 45)", argc, argv);
  const auto report = ctx.run_week(45);

  std::vector<std::pair<geo::CountryCode, std::size_t>> countries(
      report.by_country.size());
  std::size_t total_ips = 0;
  std::size_t i = 0;
  for (const auto& [code, tally] : report.by_country) {
    countries[i++] = {code, tally.ips};
    total_ips += tally.ips;
  }
  std::sort(countries.begin(), countries.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  // The map's legend buckets.
  struct Bucket {
    const char* label;
    double lo, hi;
    std::size_t count = 0;
  };
  Bucket buckets[] = {{"> 0 to 0.1%", 0.0, 0.001},
                      {"0.1 to 1%", 0.001, 0.01},
                      {"1 to 2%", 0.01, 0.02},
                      {"2 to 5%", 0.02, 0.05},
                      {"more than 5%", 0.05, 1.01}};
  for (const auto& [code, ips] : countries) {
    const double share = static_cast<double>(ips) / static_cast<double>(total_ips);
    for (auto& bucket : buckets) {
      if (share > bucket.lo && share <= bucket.hi) {
        ++bucket.count;
        break;
      }
    }
  }

  util::Table legend{"Countries per map bucket"};
  legend.header({"IP share bucket", "countries"});
  for (const auto& bucket : buckets)
    legend.row({bucket.label, std::to_string(bucket.count)});
  legend.print(std::cout);

  util::Table head{"\nTop-15 countries by observed IPs"};
  head.header({"country", "IPs", "share"});
  for (std::size_t k = 0; k < std::min<std::size_t>(15, countries.size()); ++k) {
    head.row({countries[k].first.to_string(),
              util::with_thousands(countries[k].second),
              util::percent(static_cast<double>(countries[k].second) /
                            static_cast<double>(total_ips))});
  }
  head.print(std::cout);

  std::cout << "\ncountries observed: " << report.peering_countries
            << " (paper: 242 of ~250 — all but places like Western Sahara"
               " or the Cocos Islands)\n";
  return 0;
}
