// Ingest A/B: streamed-serial trace replay vs mapped-parallel segment
// decode, the bottleneck ISSUE 4 kills. One binary emits the whole
// comparison as an ixpscope-bench-v1 JSON trajectory:
//
//   build/bench/micro_ingest --json BENCH_ingest.json
//
// Cases:
//   streamed_legacy_alloc  pre-optimization replica: fresh payload vector
//                          + allocating decode() per datagram (the shape
//                          of the reader before the scratch-buffer rework)
//   streamed_serial        the production TraceReader (reused scratch,
//                          read_batch) over an istream — serial by nature
//   mapped_serial          one TraceCursor walking the whole mapped body;
//                          steady-state expectation: 0 allocs/sample
//   mapped_parallel_N      TraceSegmenter splits the span 2N ways and N
//                          threads claim and decode segments concurrently
//
// The parallel cases report wall-clock samples/sec, so on a single-core
// machine they collapse to mapped_serial plus thread overhead — the
// scaling claim needs real cores, the per-core decode advantage and the
// zero-allocation claim do not.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "sflow/datagram.hpp"
#include "sflow/mapped_trace.hpp"
#include "sflow/trace.hpp"
#include "sflow/trace_segment.hpp"
#include "util/rng.hpp"

namespace {

using namespace ixp;

constexpr std::size_t kPoolSamples = 65536;

/// One week's worth of shape without the generator: random capture sizes
/// across the real 60..128 range so decode cost matches production.
std::string build_trace() {
  util::Rng rng{0x16e5700d};
  std::ostringstream raw;
  sflow::TraceWriter writer{raw, net::Ipv4Addr{172, 16, 0, 1}, 128};
  sflow::FlowSample sample;
  for (std::size_t i = 0; i < kPoolSamples; ++i) {
    sample.sequence = static_cast<std::uint32_t>(i);
    sample.source_port = static_cast<std::uint32_t>(rng.next_below(512));
    sample.sampling_rate = 16384;
    sample.frame.frame_length = static_cast<std::uint16_t>(600);
    sample.frame.captured =
        static_cast<std::uint16_t>(60 + rng.next_below(69));  // 60..128
    for (std::size_t b = 0; b < sample.frame.captured; ++b)
      sample.frame.data[b] = static_cast<std::byte>(rng.next_below(256));
    writer.write(sample);
  }
  writer.flush();
  return raw.str();
}

/// Pre-optimization streamed reader replica: the byte-for-byte record
/// walk TraceReader used before the scratch-buffer rework — a fresh
/// payload vector and an allocating decode() per datagram, samples
/// handed out one optional at a time. Kept as the fixed A/B baseline so
/// the numbers measure the ingest rework, not a strawman.
std::uint64_t legacy_replay(const std::string& trace) {
  std::istringstream in{trace, std::ios::binary};
  char header[12];
  in.read(header, sizeof header);
  std::uint64_t delivered = 0;
  while (true) {
    char len_bytes[4];
    if (!in.read(len_bytes, sizeof len_bytes)) break;
    const std::uint32_t length =
        (static_cast<std::uint32_t>(static_cast<unsigned char>(len_bytes[0]))
         << 24) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(len_bytes[1]))
         << 16) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(len_bytes[2]))
         << 8) |
        static_cast<std::uint32_t>(static_cast<unsigned char>(len_bytes[3]));
    std::vector<std::byte> payload(length);
    if (!in.read(reinterpret_cast<char*>(payload.data()),
                 static_cast<std::streamsize>(length)))
      break;
    const auto datagram = sflow::decode(payload);
    if (!datagram) break;
    for (const auto& sample : datagram->samples) {
      bench::keep(sample.sampling_rate);
      ++delivered;
    }
  }
  return delivered;
}

std::uint64_t mapped_parallel_pass(const sflow::MappedTrace& trace,
                                   unsigned threads) {
  const auto segments =
      sflow::TraceSegmenter::split(trace.bytes(), std::size_t{threads} * 2);
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      std::uint64_t delivered = 0;
      sflow::TraceCursor cursor{trace.bytes(), {}};
      for (std::size_t s = next.fetch_add(1); s < segments.size();
           s = next.fetch_add(1)) {
        cursor.reset(trace.bytes(), segments[s]);
        std::uint64_t seq_base = 0;
        for (auto batch = cursor.read_record(seq_base); !batch.empty();
             batch = cursor.read_record(seq_base)) {
          for (const auto& sample : batch) bench::keep(sample.sampling_rate);
          delivered += batch.size();
        }
      }
      total.fetch_add(delivered);
    });
  }
  for (auto& worker : workers) worker.join();
  return total.load();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::Suite suite{"ingest", args};

  const std::string trace = build_trace();

  // The mapped cases run against a real mmap when the filesystem allows
  // it (a temp file round-trip), falling back to the adopted in-memory
  // image — the decode path is identical either way.
  sflow::MappedTrace mapped;
  const auto tmp =
      std::filesystem::temp_directory_path() / "ixpscope_micro_ingest.trace";
  {
    std::ofstream out{tmp, std::ios::binary};
    if (out) {
      out.write(trace.data(), static_cast<std::streamsize>(trace.size()));
    }
  }
  mapped = sflow::MappedTrace::open(tmp.string());
  if (!mapped.ok()) {
    std::vector<std::byte> bytes(trace.size());
    std::memcpy(bytes.data(), trace.data(), bytes.size());
    mapped = sflow::MappedTrace::adopt(std::move(bytes));
  }

  suite.run_case("streamed_legacy_alloc", 30, [&](std::uint64_t iters, int) {
    std::uint64_t delivered = 0;
    for (std::uint64_t it = 0; it < iters; ++it)
      delivered += legacy_replay(trace);
    return delivered;
  });

  {
    std::istringstream in{trace, std::ios::binary};
    sflow::TraceReader reader{in};
    std::vector<sflow::FlowSample> batch;
    suite.run_case("streamed_serial", 30, [&](std::uint64_t iters, int) {
      std::uint64_t delivered = 0;
      for (std::uint64_t it = 0; it < iters; ++it) {
        in.clear();
        in.seekg(0);
        reader.reset(in);
        std::size_t n;
        while ((n = reader.read_batch(batch, 512)) > 0) {
          for (const auto& sample : batch) bench::keep(sample.sampling_rate);
          delivered += n;
        }
      }
      return delivered;
    });
  }

  {
    sflow::TraceCursor cursor{mapped.bytes(), {}};
    const sflow::TraceSegment whole{sflow::kTraceHeaderBytes, mapped.size()};
    suite.run_case("mapped_serial", 30, [&](std::uint64_t iters, int) {
      std::uint64_t delivered = 0;
      for (std::uint64_t it = 0; it < iters; ++it) {
        cursor.reset(mapped.bytes(), whole);
        std::uint64_t seq_base = 0;
        for (auto batch = cursor.read_record(seq_base); !batch.empty();
             batch = cursor.read_record(seq_base)) {
          for (const auto& sample : batch) bench::keep(sample.sampling_rate);
          delivered += batch.size();
        }
      }
      return delivered;
    });
  }

  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    suite.run_case("mapped_parallel_" + std::to_string(threads), 30,
                   [&](std::uint64_t iters, int) {
                     std::uint64_t delivered = 0;
                     for (std::uint64_t it = 0; it < iters; ++it)
                       delivered += mapped_parallel_pass(mapped, threads);
                     return delivered;
                   });
  }

  std::error_code ec;
  std::filesystem::remove(tmp, ec);

  const auto& results = suite.results();
  const double streamed = results[1].items_per_sec();
  const double mapped_serial = results[2].items_per_sec();
  const double mapped_par8 = results.back().items_per_sec();
  if (streamed > 0.0) {
    std::printf(
        "mapped_serial vs streamed_serial: %.2fx  "
        "(mapped allocs/item: %.4f)\n",
        mapped_serial / streamed, results[2].allocs_per_item());
    std::printf(
        "mapped_parallel_8 vs streamed_serial: %.2fx  "
        "(hardware threads available: %u)\n",
        mapped_par8 / streamed, std::thread::hardware_concurrency());
  }
  return 0;
}
