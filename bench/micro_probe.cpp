// Probe-engine benchmark: the §2.2.2/§2.3/§2.4 measurement sweeps at the
// paper's population scale (445K /24 prefixes, ~1.5M HTTPS candidates,
// 280K resolver candidates), A/B'd against the synchronous per-candidate
// oracles they replaced (HttpsProber::probe, usable_resolvers, a
// MetadataHarvester loop). Both sides run over the same fixture and the
// binary *aborts* unless the outputs are byte-identical — confirmed set,
// funnel, usable resolver list, and every harvested metadata field — so
// the speedup numbers in the JSON trajectory are only ever recorded for
// equivalent work:
//
//   build/bench/micro_probe --json BENCH_probe.json
//
// The synthetic TLS mix matches the funnel shape the paper reports: ~1M
// dead addresses, 100K valid-stable servers, 150K invalid chains, 125K
// certificate-less squatters, 125K unstable responders. Chains are shared
// per organization (2K orgs), which is exactly what makes the engine's
// zero-copy ChainSource and the validator's aliased fast path pay off.
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "classify/https_prober.hpp"
#include "classify/metadata.hpp"
#include "dns/name.hpp"
#include "dns/public_suffix.hpp"
#include "dns/resolver.hpp"
#include "dns/zone_db.hpp"
#include "net/ipv4.hpp"
#include "probe/metadata_pass.hpp"
#include "probe/sweeps.hpp"
#include "x509/certificate.hpp"

namespace {

using namespace ixp;

constexpr std::uint32_t kPrefixes = 445'000;    // /24s with candidates
constexpr std::uint32_t kCandidates = 1'500'000;
constexpr std::uint32_t kResolvers = 280'000;
constexpr std::uint32_t kOrgs = 2'000;          // distinct cert chains
constexpr std::uint32_t kHostPool = 512;        // distinct Host headers
constexpr std::uint32_t kBase = 0x10000000u;    // candidate address base
constexpr int kFetches = 3;

// Candidate i lives at host (1 + i / kPrefixes) of prefix (i % kPrefixes),
// so the population really spans 445K /24s and the index — hence the TLS
// role — is recoverable from the address arithmetic both fetchers share.
net::Ipv4Addr addr_of_index(std::uint32_t i) {
  const std::uint32_t prefix = i % kPrefixes;
  const std::uint32_t host = 1 + i / kPrefixes;
  return net::Ipv4Addr{kBase + prefix * 256 + host};
}

std::uint32_t index_of_addr(net::Ipv4Addr addr) {
  const std::uint32_t off = addr.value() - kBase;
  return ((off & 0xffu) - 1) * kPrefixes + (off >> 8);
}

enum class Role : std::uint8_t { kDead, kValid, kInvalid, kSquatter, kUnstable };

Role role_of_index(std::uint32_t i) {
  const std::uint32_t r = i % 60;
  if (r < 4) return Role::kValid;      // 100K valid + stable
  if (r < 10) return Role::kInvalid;   // 150K untrusted chains
  if (r < 15) return Role::kSquatter;  // 125K listeners without X.509
  if (r < 20) return Role::kUnstable;  // 125K flip their chain mid-sweep
  return Role::kDead;                  // 1M nothing listens
}

x509::Certificate make_leaf(std::uint32_t org, bool trusted) {
  x509::Certificate leaf;
  const std::string domain = "org" + std::to_string(org) + ".probe-bench.com";
  leaf.subject = *dns::DnsName::parse("www." + domain);
  leaf.alt_names.push_back(*dns::DnsName::parse(domain));
  // Real server certs carry several SANs; the synchronous path pays for
  // each of them on every copy and every per-fetch validation.
  for (int s = 0; s < 4; ++s)
    leaf.alt_names.push_back(
        *dns::DnsName::parse("alt" + std::to_string(s) + "." + domain));
  leaf.key_usages = {x509::KeyUsage::kServerAuth};
  leaf.subject_key = (trusted ? "leaf-" : "rogue-") + std::to_string(org);
  leaf.issuer_key = trusted ? "root" : "nobody";
  leaf.not_before = 0;
  leaf.not_after = 1'000'000;
  return leaf;
}

struct Fixture {
  x509::RootStore roots;
  dns::PublicSuffixList psl = dns::PublicSuffixList::builtin();
  dns::ZoneDatabase db;
  dns::DnsName probe_name = *dns::DnsName::parse("probe.bench-zone.com");
  dns::ResolverPopulation resolvers;

  std::vector<net::Ipv4Addr> candidates;              // index order
  std::vector<x509::CertificateChain> valid_chains;   // one per org
  std::vector<x509::CertificateChain> rogue_chains;   // one per org
  x509::CertificateChain squat_chain;                 // listens, no X.509
  std::vector<std::string> host_pool;

  Fixture() {
    roots.trust("root");
    db.add_a(probe_name, net::Ipv4Addr{192, 0, 2, 1});

    valid_chains.reserve(kOrgs);
    rogue_chains.reserve(kOrgs);
    for (std::uint32_t k = 0; k < kOrgs; ++k) {
      valid_chains.push_back(x509::CertificateChain{{make_leaf(k, true)}});
      rogue_chains.push_back(x509::CertificateChain{{make_leaf(k, false)}});
      // One SOA per hoster zone: the authority §2.4 walks up to.
      const dns::DnsName zone =
          *dns::DnsName::parse("org" + std::to_string(k) + ".probe-bench.com");
      db.add_soa(zone, zone);
    }

    host_pool.reserve(kHostPool);
    for (std::uint32_t h = 0; h < kHostPool; ++h)
      host_pool.push_back("site" + std::to_string(h) + ".probe-bench.com");

    candidates.reserve(kCandidates);
    for (std::uint32_t i = 0; i < kCandidates; ++i) {
      const net::Ipv4Addr addr = addr_of_index(i);
      candidates.push_back(addr);
      if (role_of_index(i) != Role::kValid) continue;
      // §2.4 DNS fixture, confirmed servers only: half carry a PTR whose
      // SOA walk lands on the org zone; a quarter only get the
      // per-address reverse SOA ("present even when there is no
      // hostname record").
      const std::uint32_t org = i % kOrgs;
      if (i % 2 == 0) {
        db.add_ptr(addr, *dns::DnsName::parse(
                             "v" + std::to_string(i) + ".dc" +
                             std::to_string(i % 3) + ".org" +
                             std::to_string(org) + ".probe-bench.com"));
      } else if (i % 4 == 1) {
        db.add_reverse_soa(addr, *dns::DnsName::parse(
                                     "org" + std::to_string(org) +
                                     ".probe-bench.com"));
      }
    }

    // §2.3 candidate resolvers: ~9% open (the paper keeps ~25K of 280K),
    // the rest closed, delegating, or lying.
    for (std::uint32_t i = 0; i < kResolvers; ++i) {
      dns::Resolver r;
      r.address = net::Ipv4Addr{0x30000000u + i};
      r.asn = net::Asn{1 + i % 12'000};
      const std::uint32_t b = i % 100;
      r.behavior = b < 9    ? dns::ResolverBehavior::kOpen
                   : b < 75 ? dns::ResolverBehavior::kClosed
                   : b < 90 ? dns::ResolverBehavior::kDelegating
                            : dns::ResolverBehavior::kLying;
      resolvers.add(r);
    }
  }

  // What `addr` serves on fetch `f`; nullptr when dead. Both sides of the
  // A/B answer from this one function, so they see the same network.
  [[nodiscard]] const x509::CertificateChain* chain_for(net::Ipv4Addr addr,
                                                        int f) const {
    const std::uint32_t i = index_of_addr(addr);
    const std::uint32_t org = i % kOrgs;
    switch (role_of_index(i)) {
      case Role::kDead: return nullptr;
      case Role::kValid: return &valid_chains[org];
      case Role::kInvalid: return &rogue_chains[org];
      case Role::kSquatter: return &squat_chain;
      case Role::kUnstable:
        return f == 0 ? &valid_chains[org] : &rogue_chains[org];
    }
    return nullptr;
  }
};

[[noreturn]] void mismatch(const char* what) {
  std::fprintf(stderr, "micro_probe: engine/sync divergence: %s\n", what);
  std::exit(1);
}

void check(bool ok, const char* what) {
  if (!ok) mismatch(what);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::Suite suite{"probe", args};
  const Fixture fx;

  // ---- §2.3 resolver filtering ----------------------------------------
  std::vector<dns::Resolver> sync_usable;
  suite.run_case("resolver_sync", 2, [&](std::uint64_t iters, int) {
    for (std::uint64_t it = 0; it < iters; ++it)
      sync_usable = fx.resolvers.usable_resolvers(fx.db, fx.probe_name);
    return iters * kResolvers;
  });

  probe::ResolverSweepResult rsweep;
  suite.run_case("resolver_engine", 2, [&](std::uint64_t iters, int) {
    const probe::ResolverSweep sweep;
    for (std::uint64_t it = 0; it < iters; ++it)
      rsweep = sweep.run(fx.resolvers.all(), fx.db, fx.probe_name);
    return iters * kResolvers;
  });

  check(rsweep.engine.balanced(), "resolver engine accounting imbalanced");
  check(rsweep.usable.size() == sync_usable.size(), "usable resolver count");
  for (std::size_t i = 0; i < sync_usable.size(); ++i)
    check(rsweep.usable[i].address == sync_usable[i].address &&
              rsweep.usable[i].asn == sync_usable[i].asn &&
              rsweep.usable[i].behavior == sync_usable[i].behavior,
          "usable resolver entry");

  // ---- §2.2.2 certificate crawl ---------------------------------------
  // Sync oracle: the per-candidate loop with a copying ChainFetcher —
  // exactly the shape the engine path replaced.
  std::vector<net::Ipv4Addr> sync_confirmed;
  classify::ProbeFunnel sync_funnel;
  suite.run_case("https_sync", 2, [&](std::uint64_t iters, int) {
    const classify::HttpsProber prober{fx.roots, fx.psl, kFetches};
    const auto fetcher = [&](net::Ipv4Addr addr, int times) {
      std::vector<x509::CertificateChain> out;
      if (fx.chain_for(addr, 0) == nullptr) return out;
      out.reserve(static_cast<std::size_t>(times));
      for (int f = 0; f < times; ++f) out.push_back(*fx.chain_for(addr, f));
      return out;
    };
    for (std::uint64_t it = 0; it < iters; ++it) {
      sync_funnel = {};
      sync_confirmed = prober.probe(fx.candidates, fetcher, sync_funnel);
    }
    return iters * kCandidates;
  });

  probe::HttpsSweepResult hsweep;
  suite.run_case("https_engine", 2, [&](std::uint64_t iters, int) {
    probe::HttpsSweep sweep{fx.roots, fx.psl, kFetches};
    const auto source = [&](net::Ipv4Addr addr, int f,
                            x509::CertificateChain&) {
      return fx.chain_for(addr, f);
    };
    for (std::uint64_t it = 0; it < iters; ++it)
      hsweep = sweep.run(fx.candidates, source);
    return iters * kCandidates;
  });

  check(hsweep.engine.balanced(), "https engine accounting imbalanced");
  check(hsweep.confirmed == sync_confirmed, "confirmed set");
  check(hsweep.funnel.candidates == sync_funnel.candidates &&
            hsweep.funnel.responded == sync_funnel.responded &&
            hsweep.funnel.confirmed == sync_funnel.confirmed &&
            hsweep.funnel.early_exits == sync_funnel.early_exits,
        "probe funnel");

  // ---- §2.4 metadata harvest ------------------------------------------
  // Items borrow spans/pointers, so the host storage is laid out first
  // (two sampled Host headers per confirmed server, from a shared pool).
  // A dozen sampled Host headers per server, two distinct values: payload
  // samples repeat the popular headers heavily, which is exactly what the
  // pass's parse memo exploits and the sync harvester re-parses.
  constexpr std::size_t kHostsPerServer = 12;
  std::vector<std::string> host_storage;
  host_storage.reserve(sync_confirmed.size() * kHostsPerServer);
  std::vector<probe::MetadataItem> items;
  items.reserve(sync_confirmed.size());
  for (const net::Ipv4Addr addr : sync_confirmed) {
    const std::uint32_t i = index_of_addr(addr);
    for (std::size_t h = 0; h < kHostsPerServer; ++h)
      host_storage.push_back(fx.host_pool[(i * 7 + h % 2) % kHostPool]);
    items.push_back(probe::MetadataItem{
        addr,
        std::span<const std::string>{
            &host_storage[host_storage.size() - kHostsPerServer],
            kHostsPerServer},
        &fx.valid_chains[i % kOrgs]});
  }

  std::vector<classify::ServerMetadata> sync_md;
  suite.run_case("metadata_sync", 2, [&](std::uint64_t iters, int) {
    const classify::MetadataHarvester harvester{fx.db, fx.psl};
    for (std::uint64_t it = 0; it < iters; ++it) {
      sync_md.clear();
      sync_md.reserve(items.size());
      for (const probe::MetadataItem& item : items)
        sync_md.push_back(harvester.harvest(item.addr, item.hosts, item.chain));
    }
    return iters * items.size();
  });

  probe::MetadataPassResult mpass;
  suite.run_case("metadata_engine", 2, [&](std::uint64_t iters, int threads) {
    probe::MetadataPass::Options options;
    options.threads = threads < 1 ? 1u : static_cast<unsigned>(threads);
    const probe::MetadataPass pass{fx.db, fx.psl, options};
    for (std::uint64_t it = 0; it < iters; ++it) mpass = pass.run(items);
    return iters * items.size();
  });

  check(mpass.shard.engine.balanced(), "metadata engine accounting imbalanced");
  check(mpass.metadata.size() == sync_md.size(), "metadata count");
  for (std::size_t i = 0; i < sync_md.size(); ++i) {
    const classify::ServerMetadata& a = mpass.metadata[i];
    const classify::ServerMetadata& b = sync_md[i];
    check(a.addr == b.addr && a.hostname == b.hostname &&
              a.soa_authority == b.soa_authority && a.uris == b.uris &&
              a.cert_names == b.cert_names,
          "metadata entry");
  }

  // ---- end-to-end aggregate -------------------------------------------
  // The pipeline runs the three stages back to back, so end-to-end cost
  // is their sum; recording both sums in the trajectory is what the
  // >= 5x claim and the bench_diff gate are checked against.
  const auto stage = [&](const std::string& name) -> const bench::BenchResult& {
    for (const bench::BenchResult& r : suite.results())
      if (r.name == name) return r;
    std::fprintf(stderr, "micro_probe: missing case %s\n", name.c_str());
    std::exit(1);
  };
  const auto total = [&](const char* a, const char* b, const char* c,
                         std::string name) {
    bench::BenchResult sum;
    sum.name = std::move(name);
    sum.iters = stage(a).iters;
    sum.threads = args.threads;
    sum.items = stage(a).items + stage(b).items + stage(c).items;
    sum.seconds = stage(a).seconds + stage(b).seconds + stage(c).seconds;
    sum.allocs = stage(a).allocs + stage(b).allocs + stage(c).allocs;
    suite.add(sum);
    return sum;
  };
  const bench::BenchResult sync_total = total(
      "resolver_sync", "https_sync", "metadata_sync", "end_to_end_sync");
  const bench::BenchResult engine_total = total(
      "resolver_engine", "https_engine", "metadata_engine", "end_to_end_engine");
  if (engine_total.seconds > 0.0)
    std::printf("end_to_end speedup: %.2fx (sync %.3fs / engine %.3fs)\n",
                sync_total.seconds / engine_total.seconds, sync_total.seconds,
                engine_total.seconds);

  std::printf(
      "outputs byte-identical: %zu usable resolvers, %zu confirmed, "
      "%zu harvested (resolver cache %.1f%%, metadata cache %.1f%%)\n",
      sync_usable.size(), sync_confirmed.size(), sync_md.size(),
      100.0 * rsweep.cache.hit_rate(), 100.0 * mpass.shard.cache.hit_rate());
  return 0;
}
