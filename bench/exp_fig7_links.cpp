// Figure 7 + §5.3 — AS-link heterogeneity (week 45).
//
// For each member peering with Akamai: the share of its Akamai traffic
// arriving over the *direct* Akamai link (x axis) vs. the member's share
// of the total Akamai server traffic (y axis). Paper: dots scatter across
// the whole x range — some members receive all their Akamai bytes over
// other members' links; overall 11.1% of Akamai's traffic bypasses its
// own links. CloudFlare (own data centers, different business model)
// shows the same scattered usage; Amazon CloudFront is almost entirely
// direct while EC2 is not.
#include <algorithm>
#include <iostream>

#include "analysis/attribution.hpp"
#include "exp_common.hpp"

namespace {

using namespace ixp;

void analyze_org(const expcommon::Context& ctx, const char* name,
                 const char* paper_note) {
  const auto org = ctx.model->org_by_name(name);
  if (!org) return;
  const auto& record = ctx.model->orgs()[*org];
  if (!record.home_as) return;

  std::unordered_map<net::Ipv4Addr, std::uint32_t> server_org;
  for (const std::uint32_t s : ctx.model->org_servers(*org))
    server_org.emplace(ctx.model->servers()[s].addr, *org);
  std::unordered_map<std::uint32_t, net::Asn> org_home{
      {*org, ctx.model->ases()[*record.home_as].asn}};

  analysis::AttributionPass pass{ctx.model->ixp(), 45, std::move(server_org),
                                 std::move(org_home)};
  (void)ctx.workload->generate_week(
      45, [&pass](const sflow::FlowSample& s) { pass.observe(s); });

  const auto* links = pass.links_of(*org);
  if (links == nullptr) {
    std::cout << name << ": no attributable traffic at this scale\n";
    return;
  }
  double org_total = 0.0;
  for (const auto& [member, usage] : *links) org_total += usage.total();

  // Histogram of members by direct-link share (the x axis of Fig. 7).
  std::size_t histogram[5] = {0, 0, 0, 0, 0};  // 0-20,...,80-100%
  std::vector<std::pair<double, double>> dots;  // (direct share, member share)
  for (const auto& [member, usage] : *links) {
    const double x = usage.direct_fraction();
    histogram[std::min<std::size_t>(4, static_cast<std::size_t>(x * 5.0))] += 1;
    dots.push_back({x, usage.total() / org_total});
  }

  util::Table table{std::string{"Members by share of their "} + name +
                    " traffic on the direct link"};
  table.header({"direct-link share", "members"});
  static const char* kBuckets[] = {"0-20%", "20-40%", "40-60%", "60-80%",
                                   "80-100%"};
  for (std::size_t b = 0; b < 5; ++b)
    table.row({kBuckets[b], std::to_string(histogram[b])});
  table.print(std::cout);

  std::cout << name << " traffic NOT via its own links: "
            << util::percent(pass.indirect_share(*org), 1) << "   " << paper_note
            << "\n";

  // A few high-traffic dots for the scatter's flavour.
  std::sort(dots.begin(), dots.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::cout << "top members (direct share | share of " << name << " traffic): ";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, dots.size()); ++i) {
    std::cout << "(" << util::percent(dots[i].first, 0) << " | "
              << util::percent(dots[i].second, 2) << ") ";
  }
  std::cout << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = expcommon::Context::create(
      "Figure 7: AS-link heterogeneity — direct vs indirect org traffic "
      "(week 45)",
      argc, argv);
  analyze_org(ctx, "akamai", "(paper: 11.1%)");
  analyze_org(ctx, "cloudflare",
              "(paper: scattered like Akamai despite own-DC model)");
  analyze_org(ctx, "cloudfront", "(paper: almost all traffic on Amazon links)");
  analyze_org(ctx, "ec2", "(paper: a sizable fraction via other links)");
  return 0;
}
