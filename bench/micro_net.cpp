// Micro-benchmarks: longest-prefix-match structures (DESIGN.md ablation
// #4 — pooled binary trie vs. the length-indexed hash-table LPM).
#include <benchmark/benchmark.h>

#include "net/prefix_trie.hpp"
#include "net/routing_table.hpp"
#include "util/rng.hpp"

namespace {

using namespace ixp;

std::vector<net::Ipv4Prefix> make_prefixes(std::size_t n, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<net::Ipv4Prefix> prefixes;
  prefixes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto length = static_cast<std::uint8_t>(rng.next_in(12, 24));
    prefixes.emplace_back(net::Ipv4Addr{static_cast<std::uint32_t>(rng())},
                          length);
  }
  return prefixes;
}

void BM_TrieInsert(benchmark::State& state) {
  const auto prefixes = make_prefixes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    net::PrefixTrie<std::uint32_t> trie;
    for (std::size_t i = 0; i < prefixes.size(); ++i)
      trie.insert(prefixes[i], static_cast<std::uint32_t>(i));
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TrieLookup(benchmark::State& state) {
  const auto prefixes = make_prefixes(static_cast<std::size_t>(state.range(0)), 1);
  net::PrefixTrie<std::uint32_t> trie;
  for (std::size_t i = 0; i < prefixes.size(); ++i)
    trie.insert(prefixes[i], static_cast<std::uint32_t>(i));
  util::Rng rng{2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.lookup_ptr(net::Ipv4Addr{static_cast<std::uint32_t>(rng())}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLookup)->Arg(1000)->Arg(100000)->Arg(400000);

void BM_LengthIndexedLookup(benchmark::State& state) {
  const auto prefixes = make_prefixes(static_cast<std::size_t>(state.range(0)), 1);
  net::LengthIndexedLpm<std::uint32_t> lpm;
  for (std::size_t i = 0; i < prefixes.size(); ++i)
    lpm.insert(prefixes[i], static_cast<std::uint32_t>(i));
  util::Rng rng{2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lpm.lookup(net::Ipv4Addr{static_cast<std::uint32_t>(rng())}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LengthIndexedLookup)->Arg(1000)->Arg(100000)->Arg(400000);

void BM_RoutingTableRouteOf(benchmark::State& state) {
  const auto prefixes = make_prefixes(400000, 3);
  net::RoutingTable table;
  for (std::size_t i = 0; i < prefixes.size(); ++i)
    table.announce(prefixes[i], net::Asn{static_cast<std::uint32_t>(i)});
  util::Rng rng{4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.route_of(net::Ipv4Addr{static_cast<std::uint32_t>(rng())}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingTableRouteOf);

}  // namespace

BENCHMARK_MAIN();
