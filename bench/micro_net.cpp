// Micro-benchmarks: longest-prefix-match structures (DESIGN.md ablation
// #4 — DIR-24-8 flat table vs. pooled binary trie vs. the
// length-indexed hash-table LPM).
//
// The headline A/B runs on a synthetic table of 445K prefixes — the
// paper-era RouteViews table size — with a realistic length mix
// including a /25–/32 tail that exercises the flat table's spill
// blocks. Results land in BENCH_net.json:
//
//   build/bench/micro_net --json BENCH_net.json
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "net/flat_lpm.hpp"
#include "net/prefix_trie.hpp"
#include "net/routing_table.hpp"
#include "util/rng.hpp"

namespace {

using namespace ixp;

/// The paper-era RouteViews table size (§2: "445K prefixes").
constexpr std::size_t kFullTable = 445'000;

std::vector<net::Ipv4Prefix> make_prefixes(std::size_t n, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<net::Ipv4Prefix> prefixes;
  prefixes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto length = static_cast<std::uint8_t>(rng.next_in(12, 24));
    prefixes.emplace_back(net::Ipv4Addr{static_cast<std::uint32_t>(rng())},
                          length);
  }
  return prefixes;
}

/// Routing-table-shaped length mix: dominated by /16–/24, a thin head of
/// short prefixes, and a /25–/32 tail that lands in spill blocks.
std::vector<net::Ipv4Prefix> make_routing_prefixes(std::size_t n,
                                                   std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<net::Ipv4Prefix> prefixes;
  prefixes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double bucket = rng.next_double();
    std::uint8_t length;
    if (bucket < 0.02)
      length = static_cast<std::uint8_t>(rng.next_in(8, 11));
    else if (bucket < 0.95)
      length = static_cast<std::uint8_t>(rng.next_in(12, 24));
    else
      length = static_cast<std::uint8_t>(rng.next_in(25, 32));
    prefixes.emplace_back(net::Ipv4Addr{static_cast<std::uint32_t>(rng())},
                          length);
  }
  return prefixes;
}

void bench_trie_insert(bench::Suite& suite, std::size_t n,
                       std::uint64_t default_iters) {
  const auto prefixes = make_prefixes(n, 1);
  suite.run_case("trie_insert/" + std::to_string(n), default_iters,
                 [&](std::uint64_t iters, int) {
                   for (std::uint64_t it = 0; it < iters; ++it) {
                     net::PrefixTrie<std::uint32_t> trie;
                     for (std::size_t i = 0; i < prefixes.size(); ++i)
                       trie.insert(prefixes[i], static_cast<std::uint32_t>(i));
                     bench::keep(trie.size());
                   }
                   return iters * prefixes.size();
                 });
}

void bench_trie_lookup(bench::Suite& suite, std::size_t n,
                       std::uint64_t default_iters) {
  const auto prefixes = make_prefixes(n, 1);
  net::PrefixTrie<std::uint32_t> trie;
  for (std::size_t i = 0; i < prefixes.size(); ++i)
    trie.insert(prefixes[i], static_cast<std::uint32_t>(i));
  util::Rng rng{2};
  suite.run_case("trie_lookup/" + std::to_string(n), default_iters,
                 [&](std::uint64_t iters, int) {
                   for (std::uint64_t it = 0; it < iters; ++it)
                     bench::keep(trie.lookup_ptr(
                         net::Ipv4Addr{static_cast<std::uint32_t>(rng())}));
                   return iters;
                 });
}

void bench_lpm_lookup(bench::Suite& suite, std::size_t n,
                      std::uint64_t default_iters) {
  const auto prefixes = make_prefixes(n, 1);
  net::LengthIndexedLpm<std::uint32_t> lpm;
  for (std::size_t i = 0; i < prefixes.size(); ++i)
    lpm.insert(prefixes[i], static_cast<std::uint32_t>(i));
  util::Rng rng{2};
  suite.run_case("length_indexed_lookup/" + std::to_string(n), default_iters,
                 [&](std::uint64_t iters, int) {
                   for (std::uint64_t it = 0; it < iters; ++it)
                     bench::keep(lpm.lookup(
                         net::Ipv4Addr{static_cast<std::uint32_t>(rng())}));
                   return iters;
                 });
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::Suite suite{"net", args};

  bench_trie_insert(suite, 1000, 500);
  bench_trie_insert(suite, 10000, 50);
  bench_trie_insert(suite, 100000, 5);
  bench_trie_lookup(suite, 1000, 2'000'000);
  bench_trie_lookup(suite, 100000, 2'000'000);
  bench_trie_lookup(suite, 400000, 2'000'000);
  bench_lpm_lookup(suite, 1000, 2'000'000);
  bench_lpm_lookup(suite, 100000, 2'000'000);
  bench_lpm_lookup(suite, 400000, 2'000'000);

  // ---- the flat-vs-trie A/B on the full-size table ----------------------
  const auto full = make_routing_prefixes(kFullTable, 5);

  suite.run_case("flat_lpm_build/445000", 3, [&](std::uint64_t iters, int) {
    for (std::uint64_t it = 0; it < iters; ++it) {
      net::FlatLpm<std::uint32_t> flat;
      flat.reserve(full.size());
      for (std::size_t i = 0; i < full.size(); ++i)
        flat.insert(full[i], static_cast<std::uint32_t>(i));
      bench::keep(flat.size());
    }
    return iters * full.size();
  });

  net::PrefixTrie<std::uint32_t> trie;
  net::FlatLpm<std::uint32_t> flat;
  for (std::size_t i = 0; i < full.size(); ++i) {
    trie.insert(full[i], static_cast<std::uint32_t>(i));
    flat.insert(full[i], static_cast<std::uint32_t>(i));
  }

  {
    util::Rng rng{6};
    suite.run_case("trie_lookup/445000", 2'000'000,
                   [&](std::uint64_t iters, int) {
                     for (std::uint64_t it = 0; it < iters; ++it)
                       bench::keep(trie.lookup_ptr(
                           net::Ipv4Addr{static_cast<std::uint32_t>(rng())}));
                     return iters;
                   });
  }
  {
    util::Rng rng{6};
    suite.run_case("flat_lpm_lookup/445000", 2'000'000,
                   [&](std::uint64_t iters, int) {
                     for (std::uint64_t it = 0; it < iters; ++it)
                       bench::keep(flat.lookup_ptr(
                           net::Ipv4Addr{static_cast<std::uint32_t>(rng())}));
                     return iters;
                   });
  }

  // Batched form: the attribution loop's shape — one array of addresses
  // in, one array of payload pointers out, spill blocks prefetched.
  {
    constexpr std::size_t kBatch = 4096;
    util::Rng rng{7};
    std::vector<net::Ipv4Addr> addrs;
    addrs.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i)
      addrs.emplace_back(static_cast<std::uint32_t>(rng()));
    std::vector<const std::uint32_t*> out(kBatch);
    suite.run_case("flat_lpm_lookup_batch/445000", 2000,
                   [&](std::uint64_t iters, int) {
                     for (std::uint64_t it = 0; it < iters; ++it) {
                       flat.lookup_batch(addrs, out);
                       bench::keep(out[kBatch - 1]);
                     }
                     return iters * kBatch;
                   });
  }

  // Cold batched form: 64 distinct 4096-address batches cycled in turn —
  // 262K uniform addresses against 32K cache slots, so nearly every probe
  // misses and the chunked table walk (prefetched top loads + spill
  // pipeline) plus the per-miss cache refill carry the cost. This is the
  // adversarial upper bound; sampled traffic is zipf-skewed and tracks
  // the hot case above.
  {
    constexpr std::size_t kBatch = 4096;
    constexpr std::size_t kBatchSets = 64;
    util::Rng rng{9};
    std::vector<std::vector<net::Ipv4Addr>> sets(kBatchSets);
    for (auto& set : sets) {
      set.reserve(kBatch);
      for (std::size_t i = 0; i < kBatch; ++i)
        set.emplace_back(static_cast<std::uint32_t>(rng()));
    }
    std::vector<const std::uint32_t*> out(kBatch);
    suite.run_case("flat_lpm_lookup_batch_cold/445000", 2000,
                   [&](std::uint64_t iters, int) {
                     for (std::uint64_t it = 0; it < iters; ++it) {
                       flat.lookup_batch(sets[it % kBatchSets], out);
                       bench::keep(out[kBatch - 1]);
                     }
                     return iters * kBatch;
                   });
  }

  // The production wrapper (FlatLpm<Route> behind the lookup API).
  {
    net::RoutingTable table;
    for (std::size_t i = 0; i < full.size(); ++i)
      table.announce(full[i], net::Asn{static_cast<std::uint32_t>(i)});
    util::Rng rng{8};
    suite.run_case("routing_table_route_ptr", 2'000'000,
                   [&](std::uint64_t iters, int) {
                     for (std::uint64_t it = 0; it < iters; ++it)
                       bench::keep(table.route_ptr(
                           net::Ipv4Addr{static_cast<std::uint32_t>(rng())}));
                     return iters;
                   });
  }

  const auto& results = suite.results();
  double trie_ns = 0.0;
  double flat_ns = 0.0;
  double batch_ns = 0.0;
  double build_allocs = 0.0;
  for (const auto& result : results) {
    if (result.name == "trie_lookup/445000") trie_ns = result.ns_per_item();
    if (result.name == "flat_lpm_lookup/445000") flat_ns = result.ns_per_item();
    if (result.name == "flat_lpm_lookup_batch/445000")
      batch_ns = result.ns_per_item();
    if (result.name == "flat_lpm_build/445000")
      build_allocs = result.allocs_per_item();
  }
  if (flat_ns > 0.0 && batch_ns > 0.0)
    std::printf(
        "445K-prefix lookup: flat vs trie %.2fx, batched vs trie %.2fx\n",
        trie_ns / flat_ns, trie_ns / batch_ns);
  // Guard the build-allocation fix: with reserve() and the flat exact-
  // match index, a 445K-prefix build performs a few dozen allocations
  // total (~0.0001/item). The node-per-insert regression this replaced
  // sat at ~0.77/item, so any drift past 0.01 is a structural relapse.
  if (build_allocs > 0.01) {
    std::fprintf(stderr,
                 "FAIL: flat_lpm_build/445000 at %.4f allocs/item "
                 "(expected < 0.01; node-per-insert regression?)\n",
                 build_allocs);
    return 1;
  }
  return 0;
}
