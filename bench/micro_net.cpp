// Micro-benchmarks: longest-prefix-match structures (DESIGN.md ablation
// #4 — pooled binary trie vs. the length-indexed hash-table LPM).
#include <vector>

#include "bench_json.hpp"
#include "net/prefix_trie.hpp"
#include "net/routing_table.hpp"
#include "util/rng.hpp"

namespace {

using namespace ixp;

std::vector<net::Ipv4Prefix> make_prefixes(std::size_t n, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<net::Ipv4Prefix> prefixes;
  prefixes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto length = static_cast<std::uint8_t>(rng.next_in(12, 24));
    prefixes.emplace_back(net::Ipv4Addr{static_cast<std::uint32_t>(rng())},
                          length);
  }
  return prefixes;
}

void bench_trie_insert(bench::Suite& suite, std::size_t n,
                       std::uint64_t default_iters) {
  const auto prefixes = make_prefixes(n, 1);
  suite.run_case("trie_insert/" + std::to_string(n), default_iters,
                 [&](std::uint64_t iters, int) {
                   for (std::uint64_t it = 0; it < iters; ++it) {
                     net::PrefixTrie<std::uint32_t> trie;
                     for (std::size_t i = 0; i < prefixes.size(); ++i)
                       trie.insert(prefixes[i], static_cast<std::uint32_t>(i));
                     bench::keep(trie.size());
                   }
                   return iters * prefixes.size();
                 });
}

void bench_trie_lookup(bench::Suite& suite, std::size_t n,
                       std::uint64_t default_iters) {
  const auto prefixes = make_prefixes(n, 1);
  net::PrefixTrie<std::uint32_t> trie;
  for (std::size_t i = 0; i < prefixes.size(); ++i)
    trie.insert(prefixes[i], static_cast<std::uint32_t>(i));
  util::Rng rng{2};
  suite.run_case("trie_lookup/" + std::to_string(n), default_iters,
                 [&](std::uint64_t iters, int) {
                   for (std::uint64_t it = 0; it < iters; ++it)
                     bench::keep(trie.lookup_ptr(
                         net::Ipv4Addr{static_cast<std::uint32_t>(rng())}));
                   return iters;
                 });
}

void bench_lpm_lookup(bench::Suite& suite, std::size_t n,
                      std::uint64_t default_iters) {
  const auto prefixes = make_prefixes(n, 1);
  net::LengthIndexedLpm<std::uint32_t> lpm;
  for (std::size_t i = 0; i < prefixes.size(); ++i)
    lpm.insert(prefixes[i], static_cast<std::uint32_t>(i));
  util::Rng rng{2};
  suite.run_case("length_indexed_lookup/" + std::to_string(n), default_iters,
                 [&](std::uint64_t iters, int) {
                   for (std::uint64_t it = 0; it < iters; ++it)
                     bench::keep(lpm.lookup(
                         net::Ipv4Addr{static_cast<std::uint32_t>(rng())}));
                   return iters;
                 });
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::Suite suite{"net", args};

  bench_trie_insert(suite, 1000, 500);
  bench_trie_insert(suite, 10000, 50);
  bench_trie_insert(suite, 100000, 5);
  bench_trie_lookup(suite, 1000, 2'000'000);
  bench_trie_lookup(suite, 100000, 2'000'000);
  bench_trie_lookup(suite, 400000, 2'000'000);
  bench_lpm_lookup(suite, 1000, 2'000'000);
  bench_lpm_lookup(suite, 100000, 2'000'000);
  bench_lpm_lookup(suite, 400000, 2'000'000);

  {
    const auto prefixes = make_prefixes(400000, 3);
    net::RoutingTable table;
    for (std::size_t i = 0; i < prefixes.size(); ++i)
      table.announce(prefixes[i], net::Asn{static_cast<std::uint32_t>(i)});
    util::Rng rng{4};
    suite.run_case("routing_table_route_of", 2'000'000,
                   [&](std::uint64_t iters, int) {
                     for (std::uint64_t it = 0; it < iters; ++it)
                       bench::keep(table.route_of(
                           net::Ipv4Addr{static_cast<std::uint32_t>(rng())}));
                     return iters;
                   });
  }
  return 0;
}
