// Table 2 — top-10 contributors, week 45.
//
// Four country rankings (all IPs / server IPs, by count and by traffic)
// and four network rankings. Paper heads: countries US/DE/CN/RU... by
// IPs, DE/US/RU... by traffic; networks Chinanet/Vodafone-DE/... by IPs
// and Akamai/Google/Hetzner... by traffic; server-IP networks led by
// Akamai and the big hosters, server traffic by Akamai/Google/Hetzner/
// VKontakte.
#include <algorithm>
#include <iostream>
#include <vector>

#include "exp_common.hpp"

namespace {

using ixp::core::WeeklyReport;

template <typename Map, typename Value, typename Label>
void print_top10(const std::string& title, const Map& map, Value value,
                 Label label, const char* paper_head) {
  using Entry = std::pair<std::string, double>;
  std::vector<Entry> entries;
  entries.reserve(map.size());
  double total = 0.0;
  for (const auto& [key, tally] : map) {
    const double v = value(tally);
    if (v <= 0.0) continue;
    entries.push_back({label(key), v});
    total += v;
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.second > b.second; });
  ixp::util::Table table{title};
  table.header({"rank", "entity", "share"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, entries.size()); ++i) {
    table.row({std::to_string(i + 1), entries[i].first,
               ixp::util::percent(entries[i].second / total)});
  }
  table.print(std::cout);
  std::cout << "paper head: " << paper_head << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx = expcommon::Context::create("Table 2: top-10 contributors (week 45)", argc, argv);
  const auto report = ctx.run_week(45);

  const auto country_label = [](geo::CountryCode code) { return code.to_string(); };
  const auto as_label = [&](net::Asn asn) {
    // Annotate named-head ASNs with the org/eyeball name for readability.
    for (const auto& org : ctx.model->orgs()) {
      if (org.named_head && org.home_as &&
          ctx.model->ases()[*org.home_as].asn == asn)
        return asn.to_string() + " (" + org.name + ")";
    }
    for (const auto& spec : gen::named_eyeball_specs()) {
      if (spec.asn == asn) return asn.to_string() + " (" + spec.name + ")";
    }
    return asn.to_string();
  };

  print_top10("Countries by all observed IPs", report.by_country,
              [](const core::CountryTally& t) { return static_cast<double>(t.ips); },
              country_label, "US, DE, CN, RU, IT, FR, GB, TR, UA, JP");
  print_top10("Countries by server IPs", report.by_country,
              [](const core::CountryTally& t) { return static_cast<double>(t.server_ips); },
              country_label, "DE, US, RU, FR, GB, CN, NL, CZ, IT, UA");
  print_top10("Countries by traffic", report.by_country,
              [](const core::CountryTally& t) { return t.bytes; }, country_label,
              "DE, US, RU, FR, GB, CN, NL, CZ, IT, UA");
  print_top10("Countries by server traffic", report.by_country,
              [](const core::CountryTally& t) { return t.server_bytes; },
              country_label, "US, DE, NL, RU, GB, EU, FR, RO, UA, CZ");

  print_top10("Networks by all observed IPs", report.by_as,
              [](const core::AsTally& t) { return static_cast<double>(t.ips); },
              as_label,
              "Chinanet, Vodafone/DE, Free SAS, Turk Telekom, Telecom Italia, ...");
  print_top10("Networks by server IPs", report.by_as,
              [](const core::AsTally& t) { return static_cast<double>(t.server_ips); },
              as_label, "Akamai, 1&1, OVH, Softlayer, ThePlanet, Chinanet, ...");
  print_top10("Networks by traffic", report.by_as,
              [](const core::AsTally& t) { return t.bytes; }, as_label,
              "Akamai, Google, Hetzner, OVH, VKontakte, Kabel Deu., ...");
  print_top10("Networks by server traffic", report.by_as,
              [](const core::AsTally& t) { return t.server_bytes; }, as_label,
              "Akamai, Google, Hetzner, VKontakte, Leaseweb, Limelight, ...");
  return 0;
}
