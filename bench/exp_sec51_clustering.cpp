// §5.1 — the server-clustering methodology and its validation (week 45),
// with the DESIGN.md ablations.
//
// Paper: step 1 clusters 78.7% of server IPs, step 2 17.4%, step 3 3.9%;
// ~21K organizations result; manual validation finds a false-positive
// rate below 3%, decreasing with the organization's footprint size.
#include <iostream>

#include "exp_common.hpp"

namespace {

using namespace ixp;

struct Validation {
  std::size_t clustered = 0;
  std::size_t correct = 0;
  double fp_small = 0.0;  // FP rate among clusters with <10 servers
  double fp_large = 0.0;  // FP rate among clusters with >=10 servers

  [[nodiscard]] double fp_rate() const {
    return clustered == 0
               ? 0.0
               : 1.0 - static_cast<double>(correct) / static_cast<double>(clustered);
  }
};

Validation validate(const expcommon::Context& ctx,
                    const core::ClusteringResult& clustering) {
  Validation v;
  std::size_t small_total = 0;
  std::size_t small_wrong = 0;
  std::size_t large_total = 0;
  std::size_t large_wrong = 0;
  for (const auto& [authority, members] : clustering.clusters) {
    const bool large = members.size() >= 10;
    for (const net::Ipv4Addr addr : members) {
      const auto index = ctx.model->server_by_addr(addr);
      if (!index) continue;
      ++v.clustered;
      const auto& truth = ctx.model->orgs()[ctx.model->servers()[*index].org];
      const bool ok = truth.domain == authority;
      if (ok) ++v.correct;
      (large ? large_total : small_total) += 1;
      if (!ok) (large ? large_wrong : small_wrong) += 1;
    }
  }
  v.fp_small = small_total ? static_cast<double>(small_wrong) / small_total : 0.0;
  v.fp_large = large_total ? static_cast<double>(large_wrong) / large_total : 0.0;
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = expcommon::Context::create("Section 5.1: clustering server IPs by organization (week 45)", argc, argv);
  const auto report = ctx.run_week(45);

  std::vector<classify::ServerMetadata> metadata;
  metadata.reserve(report.servers.size());
  for (const auto& obs : report.servers) metadata.push_back(obs.metadata);

  // --- the full three-step pipeline ----------------------------------------
  const core::OrgClusterer full{ctx.model->dns_db(),
                                dns::PublicSuffixList::builtin()};
  const auto clustering = full.cluster(metadata);

  util::Table steps{"Clustering steps (share of clustered server IPs)"};
  steps.header({"step", "measured", "paper"});
  steps.row({"1: IP+content same authority",
             util::percent(clustering.step_share(1), 1), "78.7%"});
  steps.row({"2: majority vote", util::percent(clustering.step_share(2), 1),
             "17.4%"});
  steps.row({"3: partial SOA only", util::percent(clustering.step_share(3), 1),
             "3.9%"});
  steps.print(std::cout);
  std::cout << "organizations (clusters): " << clustering.cluster_count()
            << "  (paper: ~21K at full scale)\n"
            << "unclustered (no usable signal): " << clustering.step_counts[0]
            << "\n";

  const auto validation = validate(ctx, clustering);
  std::cout << "\nvalidation against ground truth:\n";
  std::cout << "  false-positive rate: " << util::percent(validation.fp_rate(), 2)
            << "  (paper: <3%)\n";
  std::cout << "  FP, clusters <10 servers:  " << util::percent(validation.fp_small, 2)
            << "\n";
  std::cout << "  FP, clusters >=10 servers: " << util::percent(validation.fp_large, 2)
            << "  (paper: FP rate decreases with footprint)\n";

  // --- ablation: step depth (DESIGN.md #2) -----------------------------------
  util::Table ablation{"\nAblation: clustering depth and vote key"};
  ablation.header({"variant", "clustered", "coverage", "FP rate"});
  const auto run_variant = [&](const char* label, core::ClusterOptions options) {
    const core::OrgClusterer clusterer{ctx.model->dns_db(),
                                       dns::PublicSuffixList::builtin(), options};
    const auto result = clusterer.cluster(metadata);
    const auto v = validate(ctx, result);
    ablation.row({label, util::with_thousands(result.clustered()),
                  util::percent(static_cast<double>(result.clustered()) /
                                static_cast<double>(metadata.size()), 1),
                  util::percent(v.fp_rate(), 2)});
  };
  run_variant("step 1 only", {core::VoteKey::kIpsAndFootprint, 1});
  run_variant("steps 1-2", {core::VoteKey::kIpsAndFootprint, 2});
  run_variant("steps 1-3 (full)", {core::VoteKey::kIpsAndFootprint, 3});
  run_variant("full, vote by IPs only", {core::VoteKey::kIpsOnly, 3});
  ablation.print(std::cout);
  return 0;
}
