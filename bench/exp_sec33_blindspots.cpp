// §3.3 — the IXP's blind spots (week 45).
//
// Paper: URIs recovered at the IXP cover ~20% of the Alexa top-1M second-
// level domains, 63% of the top-10K, 80% of the top-1K. Active DNS
// queries for the uncovered domains (through ~25K usable resolvers in
// ~12K ASes, filtered from 280K candidates) yield ~600K server IPs, of
// which >360K were already seen at the IXP; the 240K unseen ones fall
// into four categories, with private clusters + far-region deployments
// making up >40%. For Akamai: 28K servers in 278 ASes at the IXP vs
// ~100K in ~700 ASes via targeted active measurement.
#include <iostream>
#include <unordered_set>

#include "analysis/blind_spots.hpp"
#include "dns/public_suffix.hpp"
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx =
      expcommon::Context::create("Section 3.3: blind spots (week 45)", argc, argv);
  const auto report = ctx.run_week(45);

  // --- resolver filtering (§2.3) -------------------------------------------
  // Probe every candidate with a name whose answer we control.
  dns::ZoneDatabase probe_db;
  const auto probe_name = *dns::DnsName::parse("probe.ixpscope.net");
  probe_db.add_a(probe_name, net::Ipv4Addr{192, 0, 2, 1});
  const auto usable =
      ctx.model->resolvers().usable_resolvers(probe_db, probe_name);
  std::cout << "resolver filtering: " << ctx.model->resolvers().size()
            << " candidates -> " << usable.size() << " usable in "
            << dns::ResolverPopulation::distinct_ases(usable)
            << " ASes  (paper: 280K -> ~25K in ~12K ASes)\n\n";

  // --- Alexa recovery --------------------------------------------------------
  const auto& psl = dns::PublicSuffixList::builtin();
  std::unordered_set<dns::DnsName> recovered;
  for (const auto& obs : report.servers) {
    for (const auto& uri : obs.metadata.uris) {
      if (const auto domain = uri.authority(psl)) recovered.insert(*domain);
    }
  }
  util::Table alexa{"Alexa-style site-list recovery from IXP URIs"};
  alexa.header({"list", "measured", "paper"});
  const std::size_t sites = ctx.model->sites().size();
  const auto row = [&](std::size_t top, const char* label, const char* paper) {
    const auto recovery = analysis::alexa_recovery(*ctx.model, top, recovered);
    alexa.row({label, util::percent(recovery.share(), 1), paper});
  };
  row(sites / 1000 ? sites / 1000 : 1, "top-1K (scaled)", "80%");
  row(sites / 100 ? sites / 100 : 1, "top-10K (scaled)", "63%");
  row(sites, "full list (top-1M)", "~20%");
  alexa.print(std::cout);

  // --- resolver sweep over uncovered domains ---------------------------------
  std::unordered_set<net::Ipv4Addr> ixp_servers;
  for (const auto& obs : report.servers) ixp_servers.insert(obs.addr);
  util::Rng rng{ctx.cfg.seed ^ 0x5eeb};
  const std::size_t per_site = ctx.quick ? 4 : 12;
  const auto sweep = analysis::resolver_sweep(*ctx.model, usable, recovered,
                                              ixp_servers, per_site, 45, rng);
  std::cout << "\nresolver sweep: queried " << sweep.queried_sites
            << " uncovered sites via " << per_site
            << " resolvers each (paper: 100 each)\n";
  std::cout << "  discovered server IPs: " << sweep.discovered_ips
            << "  (paper: ~600K)\n";
  std::cout << "  already seen at IXP:   " << sweep.already_seen_at_ixp
            << "  (paper: >360K)\n";
  std::cout << "  unseen at IXP:         " << sweep.unseen_at_ixp
            << "  (paper: ~240K)\n";

  util::Table reasons{"\nUnseen-at-IXP breakdown (ground truth)"};
  reasons.header({"category", "IPs", "share of blind unseen"});
  static const char* kReason[] = {
      "visible but unidentified (reduced-volume artifact)",
      "private clusters (cat 1)", "far-region deployments (cat 2)",
      "invalid-URI handlers (cat 3)", "small far orgs (cat 4)"};
  double blind_unseen = 0;
  for (std::size_t r = 1; r < 5; ++r)
    blind_unseen += static_cast<double>(sweep.unseen_by_reason[r]);
  if (blind_unseen <= 0) blind_unseen = 1;
  for (std::size_t r = 0; r < 5; ++r) {
    reasons.row({kReason[r], util::with_thousands(sweep.unseen_by_reason[r]),
                 r == 0 ? std::string{"-"}
                        : util::percent(sweep.unseen_by_reason[r] / blind_unseen, 1)});
  }
  reasons.print(std::cout);
  const double cat12 =
      (sweep.unseen_by_reason[1] + sweep.unseen_by_reason[2]) / blind_unseen;
  std::cout << "categories 1+2 share of blind unseen: " << util::percent(cat12, 1)
            << "  (paper: >40% of the 240K)\n";

  // --- Akamai footprint deep-dive --------------------------------------------
  if (const auto akamai = ctx.model->org_by_name("akamai")) {
    std::size_t at_ixp = 0;
    std::unordered_set<net::Asn> ixp_ases;
    for (const std::uint32_t s : ctx.model->org_servers(*akamai)) {
      const auto addr = ctx.model->servers()[s].addr;
      if (ixp_servers.count(addr) == 0) continue;
      ++at_ixp;
      if (const auto asn = ctx.model->routing().origin_of(addr))
        ixp_ases.insert(*asn);
    }
    const auto active =
        analysis::discover_org_footprint(*ctx.model, *akamai, usable, rng);
    const auto truth = ctx.model->org_servers(*akamai).size();
    std::cout << "\nAkamai footprint:\n";
    std::cout << "  at the IXP:          " << at_ixp << " servers in "
              << ixp_ases.size() << " ASes  (paper: 28K in 278)\n";
    std::cout << "  active measurement:  " << active.servers << " servers in "
              << active.ases << " ASes  (paper: ~100K in ~700)\n";
    std::cout << "  ground truth:        " << truth
              << " servers  (paper: Akamai claims 100K+ in 1K+ ASes)\n";
  }
  return 0;
}
