// §2.4 — server meta-data coverage (week 45).
//
// Paper: DNS information for 71.7% of the 1.5M server IPs, at least one
// URI for 23.8%, X.509 certificate information for 17.7%; at least one of
// the three for 81.9%. Cleaning (invalid URIs, RIR SOAs) costs <3%.
#include <iostream>

#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx =
      expcommon::Context::create("Section 2.4: server meta-data coverage (week 45)", argc, argv);
  const auto report = ctx.run_week(45);
  const auto& mc = report.metadata_coverage;
  const double n = static_cast<double>(mc.servers);

  util::Table table{"Meta-data coverage over identified server IPs"};
  table.header({"source", "measured", "paper"});
  table.row({"DNS (hostname and/or SOA)", util::percent(mc.with_dns / n, 1),
             "71.7%"});
  table.row({"URIs (from payloads)", util::percent(mc.with_uri / n, 1),
             "23.8%"});
  table.row({"X.509 certificates", util::percent(mc.with_cert / n, 1),
             "17.7%"});
  table.row({"at least one of the three", util::percent(mc.with_any / n, 1),
             "81.9%"});
  table.print(std::cout);

  std::cout << "\nservers whose metadata vanished in cleaning: "
            << report.metadata_cleaned_out << " ("
            << util::percent(static_cast<double>(report.metadata_cleaned_out) / n, 2)
            << ")  (paper: cleaning reduces the pool by <3%)\n";

  // Coverage detail: how many metadata pieces per server.
  std::size_t pieces[4] = {0, 0, 0, 0};
  for (const auto& obs : report.servers) {
    const int count = (obs.metadata.has_dns() ? 1 : 0) +
                      (obs.metadata.has_uri() ? 1 : 0) +
                      (obs.metadata.has_cert() ? 1 : 0);
    pieces[count] += 1;
  }
  util::Table detail{"\nMeta-data pieces per server"};
  detail.header({"pieces", "servers", "share"});
  for (int p = 0; p < 4; ++p) {
    detail.row({std::to_string(p), util::with_thousands(pieces[p]),
                util::percent(pieces[p] / n, 1)});
  }
  detail.print(std::cout);
  return 0;
}
