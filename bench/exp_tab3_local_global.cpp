// Table 3 — the IXP as local yet global player (week 45).
//
// Breakdown of IPs, prefixes, ASes and traffic over the paper's three
// AS-distance classes: A(L) = members, A(M) = distance 1, A(G) = the
// rest. Paper values:
//   peering: IPs 42.3/45.0/12.7, prefixes 10.1/34.1/55.8,
//            ASes 1.0/48.9/50.1, traffic 67.3/28.4/4.3
//   server:  IPs 52.9/41.2/5.9,  prefixes 17.2/61.9/20.9,
//            ASes 2.2/61.5/36.3, traffic 82.6/17.35/0.05
#include <iostream>

#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx =
      expcommon::Context::create("Table 3: A(L)/A(M)/A(G) breakdown (week 45)", argc, argv);
  const auto report = ctx.run_week(45);

  const auto print_block = [&](const char* title,
                               const core::LocalityTally (&tally)[3],
                               const char* paper_ips, const char* paper_prefixes,
                               const char* paper_ases, const char* paper_traffic) {
    double ips = 0;
    double prefixes = 0;
    double ases = 0;
    double bytes = 0;
    for (const auto& t : tally) {
      ips += static_cast<double>(t.ips);
      prefixes += static_cast<double>(t.prefixes.size());
      ases += static_cast<double>(t.ases.size());
      bytes += t.bytes;
    }
    util::Table table{title};
    table.header({"row", "A(L)", "A(M)", "A(G)", "paper (L/M/G)"});
    const auto row = [&](const char* label, auto get, double total,
                         const char* paper) {
      table.row({label, util::percent(get(tally[0]) / total, 1),
                 util::percent(get(tally[1]) / total, 1),
                 util::percent(get(tally[2]) / total, 1), paper});
    };
    row("IPs", [](const core::LocalityTally& t) { return static_cast<double>(t.ips); },
        ips, paper_ips);
    row("prefixes",
        [](const core::LocalityTally& t) { return static_cast<double>(t.prefixes.size()); },
        prefixes, paper_prefixes);
    row("ASes",
        [](const core::LocalityTally& t) { return static_cast<double>(t.ases.size()); },
        ases, paper_ases);
    row("traffic", [](const core::LocalityTally& t) { return t.bytes; }, bytes,
        paper_traffic);
    table.print(std::cout);
    std::cout << "\n";
  };

  print_block("Peering traffic", report.peering_locality,
              "42.3 / 45.0 / 12.7", "10.1 / 34.1 / 55.8", "1.0 / 48.9 / 50.1",
              "67.3 / 28.4 / 4.3");
  print_block("Server traffic", report.server_locality,
              "52.9 / 41.2 / 5.9", "17.2 / 61.9 / 20.9", "2.2 / 61.5 / 36.3",
              "82.6 / 17.35 / 0.05");
  return 0;
}
