// Figure 5 — make-up of the server-related traffic attributed to the
// stable and recurrent server pools, per region, weeks 35-51.
//
// Paper: the stable pool (only ~30% of the weekly server IPs) carries
// more than 60% of each week's server traffic; the recurrent pool's share
// grows but stays under 30%; the CN pools are traffic-invisible, while
// for US and RU the stable pool carries nearly all of the region's
// server traffic.
#include <iostream>

#include "analysis/churn_tracker.hpp"
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx = expcommon::Context::create("Figure 5: server-traffic churn by region (weeks 35-51)", argc, argv);
  const auto& cfg = ctx.cfg;

  analysis::ChurnTracker tracker{cfg.first_week, cfg.last_week};
  for (int week = cfg.first_week; week <= cfg.last_week; ++week) {
    const auto report = ctx.run_week(week);
    for (const auto& obs : report.servers) {
      tracker.observe(obs.addr.value(), week, geo::region_of(obs.country),
                      obs.bytes);
    }
    std::cout << "week " << week << " ingested\n";
  }

  const auto weeks = tracker.breakdown();
  util::Table table{"\nWeekly server-traffic shares by pool"};
  table.header({"week", "stable pool", "recurrent pool", "fresh"});
  for (const auto& w : weeks) {
    const double total = w.active_bytes > 0 ? w.active_bytes : 1.0;
    table.row({std::to_string(w.week), util::percent(w.stable_bytes / total, 1),
               util::percent(w.recurrent_bytes / total, 1),
               util::percent(w.fresh_bytes / total, 1)});
  }
  table.print(std::cout);
  std::cout << "paper: stable pool >60% of server traffic every week;"
               " recurrent <30%\n";

  const auto& last = weeks.back();
  util::Table regions{"\nWeek-51 regional make-up"};
  regions.header({"region", "share of server traffic",
                  "stable share within region", "paper note"});
  static const char* notes[] = {
      "DE large", "stable pool carries ~all US traffic",
      "stable pool carries ~all RU traffic", "traffic-invisible",
      "rest of world"};
  for (std::size_t r = 0; r < geo::kAllRegions.size(); ++r) {
    const double region_total = last.active_bytes_by_region[r];
    regions.row(
        {geo::to_string(geo::kAllRegions[r]),
         util::percent(region_total / std::max(1.0, last.active_bytes), 1),
         util::percent(last.stable_bytes_by_region[r] /
                           std::max(1.0, region_total),
                       1),
         notes[r]});
  }
  regions.print(std::cout);
  return 0;
}
