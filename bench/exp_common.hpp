// Shared scaffolding for the exp_* experiment binaries.
//
// Each binary reproduces one table or figure of the paper. The synthetic
// Internet runs at a configurable fraction of the paper's measured
// volumes:
//   IXPSCOPE_VOLUME=<double>   population/traffic scale (default 1/256)
//   IXPSCOPE_QUICK=1           tiny test-scale run (smoke mode)
// Every binary prints the scale header so the "measured" columns can be
// compared against the paper's absolute numbers.
//
// All bench binaries share the uniform command line of
// bench::BenchArgs (`--json PATH --iters N --threads N`): --threads
// runs the week analysis through the parallel engine, --iters repeats
// each week that many times, --json records per-week timing as a
// bench-v1 trajectory document.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "bench_json.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace ixp::expcommon {

struct Context {
  gen::ScaleConfig cfg;
  std::unique_ptr<gen::InternetModel> model;
  std::unique_ptr<gen::Workload> workload;
  std::unordered_map<net::Asn, net::Locality> locality;
  double volume = 1.0;   // population scale vs. paper
  bool quick = false;
  bench::BenchArgs args;
  /// Per-week timing trajectory; non-null when --json was given.
  std::shared_ptr<bench::Suite> timeline;

  /// Builds the model per environment configuration and prints the
  /// scale banner for `experiment`.
  static Context create(const std::string& experiment);

  /// As above, but parses the uniform bench command line first.
  static Context create(const std::string& experiment, int argc, char** argv);

  /// Runs the full measurement pipeline for one week.
  [[nodiscard]] core::WeeklyReport run_week(int week) const;

  /// Server-population scale vs. the paper's 1.5M weekly server IPs.
  [[nodiscard]] double server_scale() const {
    return static_cast<double>(cfg.weekly_server_ips) / 1'500'000.0;
  }
  /// Traffic/IP scale vs. the paper's volumes.
  [[nodiscard]] double ip_scale() const {
    return static_cast<double>(cfg.background_ip_pool) / 200'000'000.0;
  }

  /// Formats "<measured>  (paper: <paper>, scaled: <paper x scale>)".
  [[nodiscard]] static std::string scaled_row(double measured, double paper,
                                              double scale);
};

}  // namespace ixp::expcommon
