// Snapshot-store microbenchmarks: what durability costs on the weekly
// path. One binary emits the ixpscope-bench-v1 JSON trajectory:
//
//   build/bench/micro_store --json BENCH_store.json
//
// Cases:
//   crc32c_1mib            raw checksum throughput (the per-byte floor
//                          every save and open pays twice)
//   encode_snapshot        build a sealed two-section image from payloads
//                          shaped like a real week (shard + report)
//   validate_image         full open-time validation of that image —
//                          framing walk + every section CRC
//   commit_open_roundtrip  the whole durable cycle against a real
//                          filesystem: temp write + fsync + rename, then
//                          mmap + validate via a reused SnapshotFile
//                          handle (fsync-bound, so iters are low)
//
// Items/sec means bytes for the first three cases and completed
// round-trip cycles for the last.
//
// The binary exits nonzero when the store's allocation budget regresses:
// encode_snapshot must build the sealed image in a single reserve (the
// pre-fix encoder reallocated its way to ~1800 allocations per image),
// validate_image must be allocation-free once its scratch is warm, and
// the roundtrip must stay under the pre-fix 3 allocations per cycle.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "store/crc32c.hpp"
#include "store/snapshot_store.hpp"
#include "util/rng.hpp"

namespace {

using namespace ixp;

std::vector<std::byte> random_payload(std::size_t size, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<std::byte> bytes(size);
  for (auto& b : bytes) b = static_cast<std::byte>(rng.next_below(256));
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::Suite suite{"store", args};

  // Payload sizes shaped like a real completed week: the shard section
  // dominates, the report section trails (observed ~700 KB files).
  const auto shard_payload = random_payload(512 * 1024, 0x5704a6e1);
  const auto report_payload = random_payload(128 * 1024, 0x2e90c57b);
  const std::vector<store::Section> sections = {
      {store::kShardSection, shard_payload},
      {store::kReportSection, report_payload},
  };
  const auto image = store::encode_snapshot(sections);

  const auto crc_input = random_payload(1024 * 1024, 0xc4c32c00);
  suite.run_case("crc32c_1mib", 400, [&](std::uint64_t iters, int) {
    std::uint64_t bytes = 0;
    for (std::uint64_t it = 0; it < iters; ++it) {
      bench::keep(store::crc32c(crc_input));
      bytes += crc_input.size();
    }
    return bytes;
  });

  suite.run_case("encode_snapshot", 200, [&](std::uint64_t iters, int) {
    std::uint64_t bytes = 0;
    for (std::uint64_t it = 0; it < iters; ++it) {
      const auto encoded = store::encode_snapshot(sections);
      bench::keep(encoded.size());
      bytes += encoded.size();
    }
    return bytes;
  });

  // The scratch lives outside the case and is warmed by one untimed call,
  // so the allocation gate holds even at --iters 1 (the smoke run), where
  // the harness's proportional warmup pass rounds down to zero.
  std::vector<store::SectionView> views;
  bench::keep(static_cast<int>(store::validate_image(image, &views)));
  suite.run_case("validate_image", 200, [&](std::uint64_t iters, int) {
    std::uint64_t bytes = 0;
    for (std::uint64_t it = 0; it < iters; ++it) {
      const auto error = store::validate_image(image, &views);
      bench::keep(static_cast<int>(error));
      bytes += image.size();
    }
    return bytes;
  });

  {
    const auto path = (std::filesystem::temp_directory_path() /
                       "ixpscope_micro_store.snap")
                          .string();
    store::SnapshotFile file;  // reused across cycles: scratch stays warm
    suite.run_case("commit_open_roundtrip", 8, [&](std::uint64_t iters, int) {
      std::uint64_t cycles = 0;
      std::string error;
      for (std::uint64_t it = 0; it < iters; ++it) {
        if (!store::commit_snapshot(path, image, &error)) {
          std::fprintf(stderr, "commit failed: %s\n", error.c_str());
          break;
        }
        bench::keep(file.reopen(path));
        if (!file.ok()) break;
        ++cycles;
      }
      return cycles;
    });
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }

  suite.flush();

  // Allocation-budget gates (items are bytes for encode/validate, so the
  // per-run counts come from allocs/iters rather than allocs/item).
  double encode_allocs_per_run = -1.0;
  double validate_allocs_per_run = -1.0;
  double roundtrip_allocs = -1.0;
  for (const auto& result : suite.results()) {
    const double per_run =
        result.iters > 0 ? static_cast<double>(result.allocs) /
                               static_cast<double>(result.iters)
                         : 0.0;
    if (result.name == "encode_snapshot") encode_allocs_per_run = per_run;
    if (result.name == "validate_image") validate_allocs_per_run = per_run;
    if (result.name == "commit_open_roundtrip")
      roundtrip_allocs = result.allocs_per_item();
  }
  int failures = 0;
  // One reserve for the whole image; anything past 1.5 means the encoder
  // is growing the buffer again.
  if (encode_allocs_per_run > 1.5) {
    std::fprintf(stderr,
                 "FAIL: encode_snapshot at %.2f allocs/run "
                 "(expected 1: single pre-sized reserve)\n",
                 encode_allocs_per_run);
    ++failures;
  }
  // The section-table scratch is reused across runs after warmup.
  if (validate_allocs_per_run > 0.5) {
    std::fprintf(stderr,
                 "FAIL: validate_image at %.2f allocs/run "
                 "(expected 0: reused scratch)\n",
                 validate_allocs_per_run);
    ++failures;
  }
  // Pre-fix budget was 3/cycle (fresh SnapshotFile per open); the reused
  // handle leaves only the commit's temp-path string.
  if (roundtrip_allocs < 0.0 || roundtrip_allocs > 2.5) {
    std::fprintf(stderr,
                 "FAIL: commit_open_roundtrip at %.2f allocs/cycle "
                 "(expected < 2.5 with a reused SnapshotFile)\n",
                 roundtrip_allocs);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
