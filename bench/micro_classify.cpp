// Micro-benchmarks: the per-sample measurement hot path — HTTP string
// matching and the filter+dissect pipeline. (micro_hotpath carries the
// flat-vs-legacy A/B; this binary tracks the production path alone.)
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "classify/dissector.hpp"
#include "classify/http_matcher.hpp"
#include "classify/peering_filter.hpp"
#include "util/rng.hpp"

namespace {

using namespace ixp;

void bench_match(bench::Suite& suite, const std::string& name,
                 const std::string& payload) {
  suite.run_case(name, 5'000'000, [&](std::uint64_t iters, int) {
    for (std::uint64_t it = 0; it < iters; ++it)
      bench::keep(classify::HttpMatcher::match(payload));
    return iters;
  });
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::Suite suite{"classify", args};

  bench_match(suite, "http_match_request",
              "GET /content/12345 HTTP/1.1\r\nHost: www.example.com\r\n"
              "Accept: */*\r\n");
  bench_match(suite, "http_match_response",
              "HTTP/1.1 200 OK\r\nServer: nginx\r\nContent-Type: text/html\r\n");
  {
    std::string payload(74, '\0');
    util::Rng rng{1};
    for (auto& c : payload) c = static_cast<char>(rng.next_below(256));
    bench_match(suite, "http_match_miss", payload);
  }

  {
    fabric::Ixp ixp;
    fabric::Member a;
    a.asn = net::Asn{100};
    ixp.add_member(a);
    fabric::Member b;
    b.asn = net::Asn{200};
    ixp.add_member(b);

    const char payload[] = "GET / HTTP/1.1\r\nHost: bench.example.com\r\n";
    std::vector<std::byte> data(sizeof payload - 1);
    std::memcpy(data.data(), payload, data.size());
    sflow::FrameSpec spec;
    spec.src_mac = fabric::Ixp::port_mac_for(net::Asn{100});
    spec.dst_mac = fabric::Ixp::port_mac_for(net::Asn{200});
    spec.src_ip = net::Ipv4Addr{10, 0, 0, 1};
    spec.dst_ip = net::Ipv4Addr{10, 0, 0, 2};
    spec.src_port = 43210;
    spec.dst_port = 80;
    sflow::FlowSample sample;
    sample.sampling_rate = 16384;
    sample.frame = sflow::build_tcp_frame(spec, data, 600);

    const classify::PeeringFilter filter{ixp, 45};
    classify::FilterCounters counters;
    classify::TrafficDissector dissector;
    suite.run_case("filter_and_dissect", 5'000'000,
                   [&](std::uint64_t iters, int) {
                     for (std::uint64_t it = 0; it < iters; ++it) {
                       const auto peering = filter.filter(sample, counters);
                       if (peering) dissector.ingest(*peering);
                     }
                     return iters;
                   });
    bench::keep(dissector.summarize());
  }
  return 0;
}
