// Micro-benchmarks: the per-sample measurement hot path — HTTP string
// matching and the filter+dissect pipeline.
#include <benchmark/benchmark.h>

#include <cstring>

#include "classify/dissector.hpp"
#include "classify/http_matcher.hpp"
#include "classify/peering_filter.hpp"
#include "util/rng.hpp"

namespace {

using namespace ixp;

void BM_HttpMatchRequest(benchmark::State& state) {
  const std::string payload =
      "GET /content/12345 HTTP/1.1\r\nHost: www.example.com\r\nAccept: */*\r\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify::HttpMatcher::match(payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HttpMatchRequest);

void BM_HttpMatchResponse(benchmark::State& state) {
  const std::string payload =
      "HTTP/1.1 200 OK\r\nServer: nginx\r\nContent-Type: text/html\r\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify::HttpMatcher::match(payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HttpMatchResponse);

void BM_HttpMatchMiss(benchmark::State& state) {
  std::string payload(74, '\0');
  util::Rng rng{1};
  for (auto& c : payload) c = static_cast<char>(rng.next_below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify::HttpMatcher::match(payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HttpMatchMiss);

void BM_FilterAndDissect(benchmark::State& state) {
  fabric::Ixp ixp;
  fabric::Member a;
  a.asn = net::Asn{100};
  ixp.add_member(a);
  fabric::Member b;
  b.asn = net::Asn{200};
  ixp.add_member(b);

  const char payload[] = "GET / HTTP/1.1\r\nHost: bench.example.com\r\n";
  std::vector<std::byte> data(sizeof payload - 1);
  std::memcpy(data.data(), payload, data.size());
  sflow::FrameSpec spec;
  spec.src_mac = fabric::Ixp::port_mac_for(net::Asn{100});
  spec.dst_mac = fabric::Ixp::port_mac_for(net::Asn{200});
  spec.src_ip = net::Ipv4Addr{10, 0, 0, 1};
  spec.dst_ip = net::Ipv4Addr{10, 0, 0, 2};
  spec.src_port = 43210;
  spec.dst_port = 80;
  sflow::FlowSample sample;
  sample.sampling_rate = 16384;
  sample.frame = sflow::build_tcp_frame(spec, data, 600);

  const classify::PeeringFilter filter{ixp, 45};
  classify::FilterCounters counters;
  classify::TrafficDissector dissector;
  for (auto _ : state) {
    const auto peering = filter.filter(sample, counters);
    if (peering) dissector.ingest(*peering);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterAndDissect);

}  // namespace

BENCHMARK_MAIN();
