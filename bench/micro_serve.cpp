// Collector-service benchmarks: the cost of the pieces `ixpscope serve`
// adds on top of the offline engine, one ixpscope-bench-v1 JSON document:
//
//   build/bench/micro_serve --json BENCH_serve.json
//
// Cases:
//   frame_codec        encode_replay_frame + parse_frame round trip per
//                      datagram (the replay path's framing overhead)
//   queue_offer_take   AgentQueues hand-off throughput, no drops: offer
//                      one datagram, take it back, books balanced
//   overload_shed      offers against a full slice — the drop path must
//                      stay cheap, because a flooding agent pays it on
//                      every datagram and the service must never stall
//   decode_pump        the pump-worker hot path minus the shard: take,
//                      decode_into the reused scratch, collector ingest
//   serve_drain_N      the whole service end to end at the test scale:
//                      offer every framed record, drain, publish — the
//                      N-worker figure includes snapshot()'s fold and the
//                      probe/aggregate phase, so it moves with the same
//                      phases `ixpscope analyze` exercises
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_json.hpp"
#include "core/serve_service.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "sflow/collector.hpp"
#include "sflow/datagram.hpp"
#include "sflow/socket_intake.hpp"
#include "util/rng.hpp"

namespace {

using namespace ixp;

constexpr std::size_t kPoolDatagrams = 2048;
constexpr std::size_t kSamplesPerDatagram = 16;

/// Realistic payload pool: encoded sFlow datagrams with the production
/// capture-size spread, each from one of 32 synthetic agents.
std::vector<std::vector<std::byte>> build_payloads() {
  util::Rng rng{0x5e57e1ce};
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(kPoolDatagrams);
  for (std::size_t d = 0; d < kPoolDatagrams; ++d) {
    sflow::Datagram datagram;
    datagram.agent = net::Ipv4Addr{10, 99, 0, static_cast<std::uint8_t>(d % 32)};
    datagram.sequence = static_cast<std::uint32_t>(d / 32);
    for (std::size_t i = 0; i < kSamplesPerDatagram; ++i) {
      sflow::FlowSample sample;
      sample.sequence = static_cast<std::uint32_t>(d * kSamplesPerDatagram + i);
      sample.source_port = static_cast<std::uint32_t>(rng.next_below(512));
      sample.sampling_rate = 16384;
      sample.frame.frame_length = 600;
      sample.frame.captured =
          static_cast<std::uint16_t>(60 + rng.next_below(69));  // 60..128
      for (std::size_t b = 0; b < sample.frame.captured; ++b)
        sample.frame.data[b] = static_cast<std::byte>(rng.next_below(256));
      datagram.samples.push_back(sample);
    }
    payloads.push_back(sflow::encode(datagram));
  }
  return payloads;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::Suite suite{"serve", args};

  const auto payloads = build_payloads();

  suite.run_case("frame_codec", 200, [&](std::uint64_t iters, int) {
    std::uint64_t items = 0;
    for (std::uint64_t it = 0; it < iters; ++it) {
      for (std::size_t d = 0; d < payloads.size(); ++d) {
        const auto frame =
            sflow::encode_replay_frame(d * 4096, payloads[d]);
        const auto envelope = sflow::parse_frame(frame);
        bench::keep(envelope.offset);
        bench::keep(envelope.agent);
        ++items;
      }
    }
    return items;
  });

  suite.run_case("queue_offer_take", 200, [&](std::uint64_t iters, int) {
    sflow::AgentQueues queues;
    sflow::DatagramEnvelope envelope;
    std::uint64_t items = 0;
    for (std::uint64_t it = 0; it < iters; ++it) {
      for (const auto& payload : payloads) {
        (void)queues.offer(sflow::parse_frame(payload));
        (void)queues.try_take(envelope);
        bench::keep(envelope.agent);
        ++items;
      }
    }
    return items;
  });

  suite.run_case("overload_shed", 200, [&](std::uint64_t iters, int) {
    // One-slot slices, never drained: after the first datagram per agent
    // everything takes the drop path, which is the cost a flood imposes.
    sflow::AgentQueues queues{/*per_agent_capacity=*/1};
    std::uint64_t items = 0;
    for (std::uint64_t it = 0; it < iters; ++it) {
      for (const auto& payload : payloads) {
        (void)queues.offer(sflow::parse_frame(payload));
        ++items;
      }
    }
    return items;
  });

  suite.run_case("decode_pump", 100, [&](std::uint64_t iters, int) {
    // The pump-worker inner loop without the shard: steady-state decode
    // into a reused scratch datagram plus collector accounting.
    sflow::Collector collector{sflow::Collector::FlowSink{}};
    sflow::Datagram scratch;
    sflow::AgentQueues queues{/*per_agent_capacity=*/kPoolDatagrams};
    sflow::DatagramEnvelope envelope;
    std::uint64_t items = 0;
    for (std::uint64_t it = 0; it < iters; ++it) {
      for (const auto& payload : payloads)
        (void)queues.offer(sflow::parse_frame(payload));
      while (queues.try_take(envelope)) {
        if (sflow::decode_into(envelope.payload, scratch)) {
          collector.ingest(scratch);
          items += scratch.samples.size();
        }
      }
    }
    bench::keep(collector.stats().datagrams);
    return items;
  });

  // End to end at the test scale: the model build is amortized across
  // iterations, each iteration is one service lifetime (offer everything,
  // drain, publish the final snapshot).
  const gen::InternetModel model{gen::ScaleConfig::test()};
  std::vector<net::Asn> members;
  for (const auto* m : model.ixp().members_at(45)) members.push_back(m->asn);
  const auto locality = model.as_graph().classify(members);
  core::VantagePoint vantage{model.ixp(),   model.routing(),  model.geo_db(),
                             locality,      model.dns_db(),
                             dns::PublicSuffixList::builtin(),
                             model.root_store()};
  const auto fetch = [&model](net::Ipv4Addr addr, int times) {
    return model.fetch_chains(addr, times, 45);
  };

  for (const unsigned threads : {1u, 2u}) {
    suite.run_case(
        "serve_drain_" + std::to_string(threads), 3,
        [&](std::uint64_t iters, int) {
          std::uint64_t items = 0;
          for (std::uint64_t it = 0; it < iters; ++it) {
            core::ServeOptions options;
            options.week = 45;
            options.threads = threads;
            core::ServeService service{vantage, fetch, options};
            service.start();
            for (std::size_t d = 0; d < payloads.size(); ++d) {
              (void)service.offer(sflow::parse_frame(
                  sflow::encode_replay_frame(d * 4096, payloads[d])));
            }
            const auto snap = service.drain();
            items += snap->accounting.collector.flow_samples;
            bench::keep(snap->report.peering_ips);
          }
          return items;
        });
  }

  const auto& results = suite.results();
  if (!results.empty()) {
    std::printf("decode_pump: %.0f samples/sec  (allocs/item: %.4f)\n",
                results[3].items_per_sec(), results[3].allocs_per_item());
  }
  return 0;
}
