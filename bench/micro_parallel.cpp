// Micro-benchmark: the sharded parallel week-analysis engine.
//
// Builds the test-scale world once, records week 45's sample stream into
// memory, replicates it a few times so worker ingest dominates the serial
// finish phase, and runs ParallelAnalyzer's span overload across thread
// counts. Per the determinism contract every thread count produces the
// same report, so the only thing that varies is wall-clock.
//
// With --threads N the benchmark measures that single thread count;
// without it, it sweeps 1/2/4/8. Expect near-linear scaling up to the
// physical core count; on a 1-core machine all thread counts collapse
// onto the serial time (plus a little queueing overhead), which is the
// honest result there.
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/parallel_analyzer.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "ingest/ingest_source.hpp"

namespace {

using namespace ixp;

constexpr int kWeek = 45;
constexpr std::size_t kReplicas = 6;  // amplify ingest vs. finish

struct World {
  std::unique_ptr<gen::InternetModel> model;
  std::unordered_map<net::Asn, net::Locality> locality;
  std::vector<sflow::FlowSample> samples;
};

World build_world() {
  World built;
  built.model = std::make_unique<gen::InternetModel>(gen::ScaleConfig::test());
  const gen::Workload workload{*built.model};
  std::vector<net::Asn> members;
  for (const auto* m : built.model->ixp().members_at(kWeek))
    members.push_back(m->asn);
  built.locality = built.model->as_graph().classify(members);

  std::vector<sflow::FlowSample> week;
  workload.generate_week(
      kWeek, [&](const sflow::FlowSample& s) { week.push_back(s); });
  built.samples.reserve(week.size() * kReplicas);
  for (std::size_t r = 0; r < kReplicas; ++r)
    built.samples.insert(built.samples.end(), week.begin(), week.end());
  return built;
}

void bench_week(bench::Suite& suite, const World& w, unsigned threads) {
  core::VantagePoint vantage{
      w.model->ixp(),   w.model->routing(),  w.model->geo_db(), w.locality,
      w.model->dns_db(), dns::PublicSuffixList::builtin(), w.model->root_store()};
  core::ParallelOptions options;
  options.threads = threads;
  core::ParallelAnalyzer analyzer{vantage, options};
  // No active measurement: the benchmark isolates the ingest fan-out.
  const classify::ChainFetcher no_probe =
      [](net::Ipv4Addr, int) { return std::vector<x509::CertificateChain>{}; };

  suite.run_case("parallel_week/t" + std::to_string(threads), 3,
                 [&](std::uint64_t iters, int) {
                   for (std::uint64_t it = 0; it < iters; ++it) {
                     ingest::SpanSource source{w.samples, options.batch_size};
                     const auto report =
                         analyzer.analyze(kWeek, source, no_probe);
                     bench::keep(report.peering_ips);
                   }
                   return iters * w.samples.size();
                 });
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::Suite suite{"parallel", args};
  const World w = build_world();

  if (args.threads > 1) {
    bench_week(suite, w, 1);
    bench_week(suite, w, static_cast<unsigned>(args.threads));
  } else {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) bench_week(suite, w, threads);
  }
  return 0;
}
