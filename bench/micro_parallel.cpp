// Micro-benchmark: the sharded parallel week-analysis engine.
//
// Builds the test-scale world once, records week 45's sample stream into
// memory, replicates it a few times so worker ingest dominates the serial
// finish phase, and runs ParallelAnalyzer's span overload at 1/2/4/8
// threads. Per the determinism contract every thread count produces the
// same report, so the only thing that varies is wall-clock.
//
// Expect near-linear scaling up to the physical core count; on a 1-core
// machine all thread counts collapse onto the serial time (plus a little
// queueing overhead), which is the honest result there.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/parallel_analyzer.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"

namespace {

using namespace ixp;

constexpr int kWeek = 45;
constexpr std::size_t kReplicas = 6;  // amplify ingest vs. finish

struct World {
  std::unique_ptr<gen::InternetModel> model;
  std::unordered_map<net::Asn, net::Locality> locality;
  std::vector<sflow::FlowSample> samples;
};

const World& world() {
  static const World w = [] {
    World built;
    built.model = std::make_unique<gen::InternetModel>(gen::ScaleConfig::test());
    const gen::Workload workload{*built.model};
    std::vector<net::Asn> members;
    for (const auto* m : built.model->ixp().members_at(kWeek))
      members.push_back(m->asn);
    built.locality = built.model->as_graph().classify(members);

    std::vector<sflow::FlowSample> week;
    workload.generate_week(
        kWeek, [&](const sflow::FlowSample& s) { week.push_back(s); });
    built.samples.reserve(week.size() * kReplicas);
    for (std::size_t r = 0; r < kReplicas; ++r)
      built.samples.insert(built.samples.end(), week.begin(), week.end());
    return built;
  }();
  return w;
}

void BM_ParallelWeek(benchmark::State& state) {
  const World& w = world();
  core::VantagePoint vantage{
      w.model->ixp(),   w.model->routing(),  w.model->geo_db(), w.locality,
      w.model->dns_db(), dns::PublicSuffixList::builtin(), w.model->root_store()};
  core::ParallelOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  core::ParallelAnalyzer analyzer{vantage, options};
  // No active measurement: the benchmark isolates the ingest fan-out.
  const classify::ChainFetcher no_probe =
      [](net::Ipv4Addr, int) { return std::vector<x509::CertificateChain>{}; };

  for (auto _ : state) {
    const auto report = analyzer.analyze(
        kWeek, std::span<const sflow::FlowSample>{w.samples}, no_probe);
    benchmark::DoNotOptimize(report.peering_ips);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.samples.size()));
}
BENCHMARK(BM_ParallelWeek)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
