// Table 1 — IXP summary statistics, week 45.
//
// Paper: peering traffic from 232,460,635 IPs, 42,825 ASes, 445,051
// subnets, 242 countries; server traffic from 1,488,286 IPs, 19,824 ASes,
// 75,841 subnets, 200 countries.
#include <iostream>

#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx = expcommon::Context::create("Table 1: IXP summary statistics (week 45)", argc, argv);
  const auto report = ctx.run_week(45);

  const double ip_scale = ctx.quick ? 0.0 : ctx.ip_scale();
  const double server_scale = ctx.quick ? 0.0 : ctx.server_scale();

  util::Table table{"Week-45 visibility (measured vs. paper, scale-adjusted)"};
  table.header({"row", "measured", "paper", "paper x scale"});
  const auto row = [&](const char* label, double measured, double paper,
                       double scale) {
    table.row({label, util::compact(measured), util::compact(paper),
               scale > 0 ? util::compact(paper * scale) : std::string{"-"}});
  };
  row("peering: IPs", static_cast<double>(report.peering_ips), 232'460'635.0,
      ip_scale);
  row("peering: ASes", static_cast<double>(report.peering_ases), 42'825.0, 1.0);
  row("peering: subnets", static_cast<double>(report.peering_prefixes),
      445'051.0, 1.0);
  row("peering: countries", static_cast<double>(report.peering_countries),
      242.0, 1.0);
  row("server: IPs", static_cast<double>(report.server_ips), 1'488'286.0,
      server_scale);
  row("server: ASes", static_cast<double>(report.server_ases), 19'824.0, 1.0);
  row("server: subnets", static_cast<double>(report.server_prefixes), 75'841.0,
      1.0);
  row("server: countries", static_cast<double>(report.server_countries), 200.0,
      1.0);
  table.print(std::cout);

  std::cout << "\nNote: AS/subnet/country rows are structural (kept at paper"
               " scale);\nIP rows scale with the configured volume.\n"
            << "members at week 45: " << ctx.model->ixp().member_count_at(45)
            << " (paper: 452)\n";
  return 0;
}
