// Micro-benchmarks: §5.1 clustering throughput over synthetic metadata
// pools of increasing size.
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/org_clusterer.hpp"
#include "util/rng.hpp"

namespace {

using namespace ixp;

struct Fixture {
  dns::ZoneDatabase db;
  std::vector<classify::ServerMetadata> metadata;

  explicit Fixture(std::size_t servers) {
    util::Rng rng{11};
    constexpr std::size_t kOrgs = 64;
    for (std::size_t o = 0; o < kOrgs; ++o) {
      const auto domain = *dns::DnsName::parse("org" + std::to_string(o) + ".com");
      db.add_soa(domain, domain);
    }
    metadata.reserve(servers);
    for (std::size_t s = 0; s < servers; ++s) {
      classify::ServerMetadata md;
      md.addr = net::Ipv4Addr{static_cast<std::uint32_t>(0x0a000000 + s)};
      const std::size_t org = rng.next_below(kOrgs);
      const std::string domain = "org" + std::to_string(org) + ".com";
      const double kind = rng.next_double();
      if (kind < 0.75) {
        md.hostname = *dns::DnsName::parse("s" + std::to_string(s) + "." + domain);
        md.soa_authority = *dns::DnsName::parse(domain);
        if (rng.next_bool(0.3))
          md.uris = {*dns::Uri::parse("www." + domain)};
      } else if (kind < 0.95) {
        md.uris = {*dns::Uri::parse("www." + domain)};
      } else {
        md.soa_authority = *dns::DnsName::parse(domain);  // partial only
      }
      metadata.push_back(std::move(md));
    }
  }
};

void bench_cluster(bench::Suite& suite, std::size_t servers,
                   std::uint64_t default_iters) {
  const Fixture fixture{servers};
  const core::OrgClusterer clusterer{fixture.db,
                                     dns::PublicSuffixList::builtin()};
  suite.run_case("cluster_servers/" + std::to_string(servers), default_iters,
                 [&](std::uint64_t iters, int) {
                   for (std::uint64_t it = 0; it < iters; ++it)
                     bench::keep(clusterer.cluster(fixture.metadata));
                   return iters * fixture.metadata.size();
                 });
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::Suite suite{"cluster", args};

  bench_cluster(suite, 1000, 100);
  bench_cluster(suite, 10000, 10);
  bench_cluster(suite, 50000, 2);

  {
    const Fixture fixture{10000};
    const core::OrgClusterer clusterer{
        fixture.db, dns::PublicSuffixList::builtin(),
        core::ClusterOptions{core::VoteKey::kIpsOnly, 3}};
    suite.run_case("cluster_ips_only_vote/10000", 10,
                   [&](std::uint64_t iters, int) {
                     for (std::uint64_t it = 0; it < iters; ++it)
                       bench::keep(clusterer.cluster(fixture.metadata));
                     return iters * fixture.metadata.size();
                   });
  }
  return 0;
}
