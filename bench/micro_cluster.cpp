// Micro-benchmarks: §5.1 clustering throughput over synthetic metadata
// pools of increasing size.
#include <benchmark/benchmark.h>

#include "core/org_clusterer.hpp"
#include "util/rng.hpp"

namespace {

using namespace ixp;

struct Fixture {
  dns::ZoneDatabase db;
  std::vector<classify::ServerMetadata> metadata;

  explicit Fixture(std::size_t servers) {
    util::Rng rng{11};
    constexpr std::size_t kOrgs = 64;
    for (std::size_t o = 0; o < kOrgs; ++o) {
      const auto domain = *dns::DnsName::parse("org" + std::to_string(o) + ".com");
      db.add_soa(domain, domain);
    }
    metadata.reserve(servers);
    for (std::size_t s = 0; s < servers; ++s) {
      classify::ServerMetadata md;
      md.addr = net::Ipv4Addr{static_cast<std::uint32_t>(0x0a000000 + s)};
      const std::size_t org = rng.next_below(kOrgs);
      const std::string domain = "org" + std::to_string(org) + ".com";
      const double kind = rng.next_double();
      if (kind < 0.75) {
        md.hostname = *dns::DnsName::parse("s" + std::to_string(s) + "." + domain);
        md.soa_authority = *dns::DnsName::parse(domain);
        if (rng.next_bool(0.3))
          md.uris = {*dns::Uri::parse("www." + domain)};
      } else if (kind < 0.95) {
        md.uris = {*dns::Uri::parse("www." + domain)};
      } else {
        md.soa_authority = *dns::DnsName::parse(domain);  // partial only
      }
      metadata.push_back(std::move(md));
    }
  }
};

void BM_ClusterServers(benchmark::State& state) {
  const Fixture fixture{static_cast<std::size_t>(state.range(0))};
  const core::OrgClusterer clusterer{fixture.db,
                                     dns::PublicSuffixList::builtin()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(clusterer.cluster(fixture.metadata));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ClusterServers)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_ClusterIpsOnlyVote(benchmark::State& state) {
  const Fixture fixture{static_cast<std::size_t>(state.range(0))};
  const core::OrgClusterer clusterer{
      fixture.db, dns::PublicSuffixList::builtin(),
      core::ClusterOptions{core::VoteKey::kIpsOnly, 3}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(clusterer.cluster(fixture.metadata));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ClusterIpsOnlyVote)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
