#include "bench_json.hpp"

#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>

#include "util/cpu_features.hpp"

// ---------------------------------------------------------------------
// Allocation counting: interpose the global allocation functions. Every
// bench binary links this translation unit (via the bench harness), so
// its operator new replaces the default one program-wide and the counter
// sees every heap allocation, including those inside the standard
// library. Deallocation stays stock apart from the free() forwarding.
// ---------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t padded =
      size == 0 ? alignment : (size + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, padded)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ixp::bench {

std::uint64_t alloc_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

std::string_view git_rev() noexcept {
#ifdef IXPSCOPE_GIT_REV
  return IXPSCOPE_GIT_REV;
#else
  return "unknown";
#endif
}

namespace {

[[noreturn]] void usage_error(const char* argv0, const std::string& detail) {
  std::cerr << argv0 << ": " << detail << "\n"
            << "usage: " << argv0 << " [--json PATH] [--iters N] [--threads N]\n";
  std::exit(2);
}

std::uint64_t parse_u64(const char* argv0, std::string_view flag,
                        std::string_view text) {
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size())
    usage_error(argv0, std::string{flag} + " expects an unsigned integer, got '" +
                           std::string{text} + "'");
  return value;
}

/// Minimal JSON string escaping (names and paths are ASCII here, but a
/// malformed name must not produce a malformed document).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> std::string_view {
      if (i + 1 >= argc)
        usage_error(argv[0], std::string{arg} + " expects a value");
      return argv[++i];
    };
    if (arg == "--json") {
      args.json_path = value();
    } else if (arg == "--iters") {
      args.iters = parse_u64(argv[0], arg, value());
    } else if (arg == "--threads") {
      const std::uint64_t t = parse_u64(argv[0], arg, value());
      if (t == 0 || t > 1024)
        usage_error(argv[0], "--threads must be in [1, 1024]");
      args.threads = static_cast<int>(t);
    } else {
      usage_error(argv[0], "unknown argument '" + std::string{arg} + "'");
    }
  }
  return args;
}

Suite::Suite(std::string name, BenchArgs args)
    : name_(std::move(name)), args_(std::move(args)) {
  std::cout << "suite " << name_ << " (rev " << git_rev() << ", threads "
            << args_.threads << ", simd "
            << util::CpuFeatures::name(util::CpuFeatures::active()) << ")\n";
}

Suite::~Suite() { flush(); }

void Suite::run_case(const std::string& name, std::uint64_t default_iters,
                     const std::function<std::uint64_t(std::uint64_t iters,
                                                       int threads)>& fn) {
  const std::uint64_t iters = args_.iters > 0 ? args_.iters : default_iters;
  const std::uint64_t warmup = iters / 8 > 0 ? iters / 8 : 1;
  (void)fn(warmup, args_.threads);

  // Best of three timed passes. On shared machines a single pass can be
  // slowed arbitrarily by neighbours; the minimum is the standard robust
  // estimator of the code's cost. Allocation counts come from the best
  // pass so allocs/item and ns/item describe the same execution. A single
  // pass is kept for --iters 1 (the bench-smoke tier) to stay cheap.
  const int passes = iters > 1 ? 3 : 1;
  BenchResult result;
  result.name = name;
  result.iters = iters;
  result.threads = args_.threads;
  for (int pass = 0; pass < passes; ++pass) {
    const std::uint64_t allocs_before = alloc_count();
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t items = fn(iters, args_.threads);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (pass == 0 || seconds < result.seconds) {
      result.items = items;
      result.seconds = seconds;
      result.allocs = alloc_count() - allocs_before;
    }
  }
  add(std::move(result));
}

void Suite::add(BenchResult result) {
  std::printf("  %-40s %12.0f items/s  %9.1f ns/item  %8.3f allocs/item\n",
              result.name.c_str(), result.items_per_sec(),
              result.ns_per_item(), result.allocs_per_item());
  std::fflush(stdout);
  results_.push_back(std::move(result));
}

void Suite::flush() {
  if (flushed_ || args_.json_path.empty()) return;
  flushed_ = true;
  std::ofstream out{args_.json_path};
  if (!out) {
    std::cerr << "bench: cannot write " << args_.json_path << "\n";
    return;
  }
  out << "{\n"
      << "  \"schema\": \"ixpscope-bench-v1\",\n"
      << "  \"suite\": \"" << json_escape(name_) << "\",\n"
      << "  \"git_rev\": \"" << json_escape(git_rev()) << "\",\n"
      // CPU identity of the run: bench_diff refuses to gate ns/item
      // across machines (or SIMD tiers) whose stamps differ.
      << "  \"cpu_flags\": \""
      << json_escape(util::CpuFeatures::flags_string()) << "\",\n"
      << "  \"simd_level\": \""
      << json_escape(util::CpuFeatures::name(util::CpuFeatures::active()))
      << "\",\n"
      << "  \"threads\": " << args_.threads << ",\n"
      << "  \"results\": [";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    const BenchResult& r = results_[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"name\": \"" << json_escape(r.name) << "\", "
        << "\"iters\": " << r.iters << ", "
        << "\"threads\": " << r.threads << ", "
        << "\"items\": " << r.items << ", "
        << "\"seconds\": " << r.seconds << ", "
        << "\"samples_per_sec\": " << r.items_per_sec() << ", "
        << "\"ns_per_item\": " << r.ns_per_item() << ", "
        << "\"allocs\": " << r.allocs << ", "
        << "\"allocs_per_item\": " << r.allocs_per_item() << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "wrote " << args_.json_path << " (" << results_.size()
            << " results)\n";
}

}  // namespace ixp::bench
