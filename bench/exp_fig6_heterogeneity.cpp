// Figure 6 + §5.2 — network heterogenization (week 45).
//
// (b) per organization: number of server IPs vs. number of ASes hosting
//     them. Paper: Akamai has 28K server IPs in 278 ASes; 143 orgs have
//     >1000 server IPs, >6K orgs have >10; multi-AS footprints are
//     commonplace, not an oddity of the giants.
// (c) per AS: number of server IPs hosted vs. number of organizations
//     they belong to. Paper: >500 ASes host servers of >5 orgs, >200 of
//     >10; one Web hoster (AS36351) holds 40K+ server IPs of 350+ orgs.
#include <algorithm>
#include <iostream>

#include "analysis/heterogeneity.hpp"
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx = expcommon::Context::create("Figure 6: heterogeneity of organizations and ASes (week 45)", argc, argv);
  const auto report = ctx.run_week(45);

  // Cluster the harvested metadata (§5.1) to obtain organizations.
  std::vector<classify::ServerMetadata> metadata;
  metadata.reserve(report.servers.size());
  for (const auto& obs : report.servers) metadata.push_back(obs.metadata);
  const core::OrgClusterer clusterer{ctx.model->dns_db(),
                                     dns::PublicSuffixList::builtin()};
  const auto clustering = clusterer.cluster(metadata);
  const auto view = analysis::build_heterogeneity(clustering, ctx.model->routing());

  const double server_scale = ctx.quick ? 1.0 : ctx.server_scale();

  std::cout << "organizations identified: " << view.orgs.size()
            << "  (paper: ~21K; scaled ~"
            << util::compact(21'000 * 2.0 * server_scale) << ")\n\n";

  util::Table fig6b{"Fig 6(b): top organizations (server IPs vs AS spread)"};
  fig6b.header({"organization", "server IPs", "ASes"});
  for (std::size_t i = 0; i < std::min<std::size_t>(12, view.orgs.size()); ++i) {
    fig6b.row({view.orgs[i].authority.text(),
               util::with_thousands(view.orgs[i].server_ips),
               std::to_string(view.orgs[i].ases)});
  }
  fig6b.print(std::cout);

  const std::size_t multi_as = static_cast<std::size_t>(std::count_if(
      view.orgs.begin(), view.orgs.end(),
      [](const analysis::OrgFootprint& o) { return o.ases > 1; }));
  std::cout << "\norgs with >10 server IPs:   " << view.orgs_with_more_than(10)
            << " of " << view.orgs.size()
            << "  (paper: >6K of 21K, i.e. ~29%)\n";
  std::cout << "orgs with >"
            << static_cast<std::size_t>(std::max(2.0, 1000 * server_scale))
            << " server IPs (scaled 1000): "
            << view.orgs_with_more_than(
                   static_cast<std::size_t>(std::max(2.0, 1000 * server_scale)))
            << "  (paper: 143 orgs >1000)\n";
  std::cout << "orgs spanning multiple ASes: " << multi_as << " ("
            << util::percent(static_cast<double>(multi_as) /
                             static_cast<double>(view.orgs.size()))
            << ")  — heterogenization is not confined to the big players\n";

  util::Table fig6c{"\nFig 6(c): top ASes by hosted server IPs"};
  fig6c.header({"AS", "server IPs", "orgs hosted"});
  for (std::size_t i = 0; i < std::min<std::size_t>(12, view.ases.size()); ++i) {
    fig6c.row({view.ases[i].asn.to_string(),
               util::with_thousands(view.ases[i].server_ips),
               std::to_string(view.ases[i].orgs)});
  }
  fig6c.print(std::cout);

  std::cout << "\nASes hosting >5 orgs:  " << view.ases_hosting_more_than(5)
            << "  (paper: >500)\n";
  std::cout << "ASes hosting >10 orgs: " << view.ases_hosting_more_than(10)
            << "  (paper: >200)\n";

  // The §5.2 example hoster: AS92572 at paper scale (90K+ server IPs).
  for (const auto& as : view.ases) {
    if (as.asn == net::Asn{92572} || as.asn == net::Asn{36351}) {
      std::cout << as.asn.to_string() << ": "
                << util::with_thousands(as.server_ips) << " server IPs of "
                << as.orgs << " orgs  (paper: AS92572 90K+ IPs; AS36351 40K+"
                << " IPs of 350+ orgs)\n";
    }
  }
  return 0;
}
