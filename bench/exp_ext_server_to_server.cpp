// Extension — the paper's closing prediction, §7:
//
//   "As an interesting consequence of more servers being deployed close
//    to the end users, we also expect that IXPs in the future will 'see'
//    less end user-to-server traffic but an increasing amount of
//    server-to-server traffic."
//
// This experiment measures exactly that quantity on the synthetic
// substrate, week by week: of the server-related peering bytes, how much
// runs between two identified server IPs (machine-to-machine: CDN fill,
// origin fetch, backend sync) vs. server-to-client. §2.2.2 already pegs
// the dual-role slice at ~10% of server traffic in 2012; the trend line
// is what a future-facing operator would watch.
#include <iostream>
#include <unordered_set>

#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const auto ctx = expcommon::Context::create("Extension (§7): server-to-server vs user-to-server traffic trend", argc, argv);
  const auto& cfg = ctx.cfg;

  util::Table table{"Weekly composition of server-related peering bytes"};
  table.header({"week", "server-to-server", "user-to-server",
                "s2s share of peering"});
  for (int week = cfg.first_week; week <= cfg.last_week; ++week) {
    // Pass A: identify the week's servers.
    const auto report = ctx.run_week(week);
    std::unordered_set<net::Ipv4Addr> servers;
    servers.reserve(report.servers.size());
    for (const auto& obs : report.servers) servers.insert(obs.addr);

    // Pass B: attribute each peering sample.
    classify::PeeringFilter filter{ctx.model->ixp(), week};
    classify::FilterCounters counters;
    double s2s_bytes = 0.0;
    double u2s_bytes = 0.0;
    (void)ctx.workload->generate_week(week, [&](const sflow::FlowSample& s) {
      const auto peering = filter.filter(s, counters);
      if (!peering) return;
      const bool src_server = servers.count(peering->frame.ip->src) > 0;
      const bool dst_server = servers.count(peering->frame.ip->dst) > 0;
      if (src_server && dst_server)
        s2s_bytes += peering->expanded_bytes;
      else if (src_server || dst_server)
        u2s_bytes += peering->expanded_bytes;
    });

    const double peering_bytes =
        counters.bytes_of(classify::TrafficClass::kPeering);
    const double server_total = s2s_bytes + u2s_bytes;
    table.row({std::to_string(week),
               util::percent(server_total > 0 ? s2s_bytes / server_total : 0, 2),
               util::percent(server_total > 0 ? u2s_bytes / server_total : 0, 2),
               util::percent(peering_bytes > 0 ? s2s_bytes / peering_bytes : 0, 2)});
    std::cout << "week " << week << " done\n";
  }
  table.print(std::cout);
  std::cout << "\npaper, §2.2.2 (2012 baseline): machine-to-machine traffic of"
               " dual-role IPs is ~10% of server traffic.\n"
               "paper, §7 (prediction): the server-to-server share will grow"
               " as server deployments move closer to users.\n";
  return 0;
}
