// record_replay: persist a week of sFlow to a trace file, then run the
// measurement pipeline from the recording — the generate-once /
// analyze-many workflow (and the ingestion path for converted real
// collector dumps).
//
//   ./record_replay [trace_path=/tmp/ixpscope_week45.trace]
#include <fstream>
#include <iostream>

#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "sflow/trace.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/ixpscope_week45.trace";

  const gen::InternetModel model{gen::ScaleConfig::test()};
  const gen::Workload workload{model};

  // --- record ---------------------------------------------------------------
  {
    std::ofstream out{path, std::ios::binary};
    if (!out) {
      std::cerr << "cannot open " << path << " for writing\n";
      return 1;
    }
    sflow::TraceWriter writer{out, net::Ipv4Addr{172, 16, 0, 1}, 128};
    workload.generate_week(
        45, [&](const sflow::FlowSample& s) { writer.write(s); });
    writer.flush();
    std::cout << "recorded " << util::with_thousands(writer.samples_written())
              << " samples in " << writer.datagrams_written()
              << " datagrams -> " << path << "\n";
  }

  // --- replay ---------------------------------------------------------------
  std::ifstream in{path, std::ios::binary};
  sflow::TraceReader reader{in};
  if (!reader.ok()) {
    std::cerr << "bad trace header\n";
    return 1;
  }

  std::vector<net::Asn> members;
  for (const auto* m : model.ixp().members_at(45)) members.push_back(m->asn);
  const auto locality = model.as_graph().classify(members);
  core::VantagePoint vantage{
      model.ixp(),   model.routing(),  model.geo_db(), locality,
      model.dns_db(), dns::PublicSuffixList::builtin(), model.root_store()};
  core::WeekSession session = vantage.open_week(45);
  std::uint64_t replayed = 0;
  std::vector<sflow::FlowSample> batch;
  while (reader.read_batch(batch, sflow::TraceReader::kDefaultBatch) > 0) {
    session.observe_batch(batch);
    replayed += batch.size();
  }
  const auto report = session.finish([&](net::Ipv4Addr addr, int times) {
    return model.fetch_chains(addr, times, 45);
  });

  std::cout << "replayed " << util::with_thousands(replayed) << " samples ("
            << (reader.ok() ? "clean" : "TRUNCATED") << ")\n";
  std::cout << "pipeline on the recording: "
            << util::with_thousands(report.peering_ips) << " IPs, "
            << util::with_thousands(report.server_ips) << " server IPs, "
            << util::bytes(report.peering_bytes()) << " estimated\n";
  return 0;
}
