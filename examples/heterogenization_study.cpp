// heterogenization_study: reproduce the paper's §5 workflow for one
// organization — identify servers at the IXP, cluster them by
// administrative authority, and quantify how the org's infrastructure
// spreads across networks and how its traffic uses the IXP's links.
//
//   ./heterogenization_study [org=akamai]
//
// Known head orgs: akamai, google, cloudflare, ec2, cloudfront, hetzner,
// ovh, softlayer, limelight, edgecast, cdn77, ...
#include <iostream>
#include <string>

#include "analysis/attribution.hpp"
#include "analysis/heterogeneity.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const std::string org_name = argc > 1 ? argv[1] : "akamai";

  const gen::InternetModel model{gen::ScaleConfig::test()};
  const gen::Workload workload{model};
  const auto org = model.org_by_name(org_name);
  if (!org) {
    std::cerr << "unknown organization: " << org_name << "\n";
    return 1;
  }

  // Measurement pass for week 45.
  std::vector<net::Asn> members;
  for (const auto* m : model.ixp().members_at(45)) members.push_back(m->asn);
  const auto locality = model.as_graph().classify(members);
  core::VantagePoint vantage{
      model.ixp(),   model.routing(),  model.geo_db(), locality,
      model.dns_db(), dns::PublicSuffixList::builtin(), model.root_store()};
  core::WeekSession session = vantage.open_week(45);
  workload.generate_week(45,
                         [&](const sflow::FlowSample& s) { session.observe(s); });
  const auto report = session.finish([&](net::Ipv4Addr addr, int times) {
    return model.fetch_chains(addr, times, 45);
  });

  // Cluster all identified servers by organization (§5.1).
  std::vector<classify::ServerMetadata> metadata;
  for (const auto& obs : report.servers) metadata.push_back(obs.metadata);
  const core::OrgClusterer clusterer{model.dns_db(),
                                     dns::PublicSuffixList::builtin()};
  const auto clustering = clusterer.cluster(metadata);
  const auto view = analysis::build_heterogeneity(clustering, model.routing());

  const auto& domain = model.orgs()[*org].domain;
  std::cout << "organization " << org_name << " (" << domain.text() << "):\n";
  for (const auto& footprint : view.orgs) {
    if (footprint.authority != domain) continue;
    std::cout << "  clustered servers at the IXP: " << footprint.server_ips
              << " across " << footprint.ases << " ASes\n";
  }
  std::cout << "  ground-truth servers:         "
            << model.org_servers(*org).size() << " (incl. IXP-invisible)\n";

  // Link usage (§5.3): direct vs indirect member links.
  if (model.orgs()[*org].home_as) {
    std::unordered_map<net::Ipv4Addr, std::uint32_t> server_org;
    for (const std::uint32_t s : model.org_servers(*org))
      server_org.emplace(model.servers()[s].addr, *org);
    std::unordered_map<std::uint32_t, net::Asn> home{
        {*org, model.ases()[*model.orgs()[*org].home_as].asn}};
    analysis::AttributionPass pass{model.ixp(), 45, std::move(server_org),
                                   std::move(home)};
    workload.generate_week(45,
                           [&](const sflow::FlowSample& s) { pass.observe(s); });
    std::cout << "  traffic not via own member link: "
              << util::percent(pass.indirect_share(*org), 1)
              << " (Akamai in the paper: 11.1%)\n";
    if (const auto* links = pass.links_of(*org)) {
      std::size_t all_indirect = 0;
      for (const auto& [member, usage] : *links)
        if (usage.direct_bytes == 0.0 && usage.indirect_bytes > 0.0)
          ++all_indirect;
      std::cout << "  members served exclusively via other links: "
                << all_indirect << " of " << links->size() << "\n";
    }
  } else {
    std::cout << "  (no own ASN — invisible to the AS-level view, like CDN77)\n";
  }
  return 0;
}
