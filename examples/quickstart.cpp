// Quickstart: build a small synthetic Internet, observe one week of
// sFlow samples at the IXP, and print what the vantage point saw.
//
//   ./quickstart
//
// This is the minimal end-to-end use of the library: InternetModel is the
// world, Workload streams one week of sampled frames, VantagePoint is the
// measurement pipeline (filtering -> dissection -> HTTPS probing ->
// metadata). Everything is deterministic: run it twice, get the same
// numbers.
#include <iostream>

#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "util/format.hpp"

int main() {
  using namespace ixp;

  // 1. A small synthetic Internet (the test preset: ~800 ASes).
  const gen::InternetModel model{gen::ScaleConfig::test()};
  const gen::Workload workload{model};
  std::cout << "world: " << model.ases().size() << " ASes, "
            << model.prefixes().size() << " prefixes, "
            << model.servers().size() << " servers of "
            << model.orgs().size() << " organizations, "
            << model.ixp().member_count_at(45) << " IXP members\n";

  // 2. The measurement side only gets public databases + the fabric.
  std::vector<net::Asn> members;
  for (const auto* m : model.ixp().members_at(45)) members.push_back(m->asn);
  const auto locality = model.as_graph().classify(members);
  core::VantagePoint vantage{
      model.ixp(),   model.routing(),  model.geo_db(), locality,
      model.dns_db(), dns::PublicSuffixList::builtin(), model.root_store()};

  // 3. Stream week 45 through it.
  core::WeekSession session = vantage.open_week(45);
  workload.generate_week(
      45, [&](const sflow::FlowSample& sample) { session.observe(sample); });
  const core::WeeklyReport report = session.finish(
      [&](net::Ipv4Addr addr, int times) {
        return model.fetch_chains(addr, times, 45);  // active measurement
      });

  // 4. What did the IXP see?
  std::cout << "\nweek 45 at the vantage point:\n";
  std::cout << "  unique IPs:      " << util::with_thousands(report.peering_ips)
            << " across " << report.peering_ases << " ASes, "
            << report.peering_prefixes << " prefixes, "
            << report.peering_countries << " countries\n";
  std::cout << "  web server IPs:  " << util::with_thousands(report.server_ips)
            << " (" << report.dissection.https_server_ips << " HTTPS-confirmed)\n";
  std::cout << "  client IPs:      "
            << util::with_thousands(report.dissection.client_ips) << "\n";
  std::cout << "  weekly volume:   " << util::bytes(report.peering_bytes())
            << " (estimated from 1:16384 samples)\n";
  return 0;
}
