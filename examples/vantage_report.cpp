// vantage_report: a paper-style weekly report for any week.
//
//   ./vantage_report [week=45] [volume=0.002]
//
// Prints Table-1-style visibility, the top countries and networks, the
// filter cascade, and the HTTPS funnel for the requested week, at the
// requested fraction of the paper's measured volumes.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const int week = argc > 1 ? std::atoi(argv[1]) : 45;
  const double volume = argc > 2 ? std::atof(argv[2]) : 1.0 / 512.0;
  if (week < 35 || week > 51) {
    std::cerr << "week must be within the measurement period 35..51\n";
    return 1;
  }

  const gen::InternetModel model{gen::ScaleConfig::bench(volume)};
  const gen::Workload workload{model};
  std::vector<net::Asn> members;
  for (const auto* m : model.ixp().members_at(week)) members.push_back(m->asn);
  const auto locality = model.as_graph().classify(members);

  core::VantagePoint vantage{
      model.ixp(),   model.routing(),  model.geo_db(), locality,
      model.dns_db(), dns::PublicSuffixList::builtin(), model.root_store()};
  core::WeekSession session = vantage.open_week(week);
  workload.generate_week(
      week, [&](const sflow::FlowSample& s) { session.observe(s); });
  const auto report = session.finish([&](net::Ipv4Addr addr, int times) {
    return model.fetch_chains(addr, times, week);
  });

  std::cout << "=== week " << week << " @ volume " << volume << " ===\n\n";

  util::Table visibility{"Visibility"};
  visibility.header({"", "IPs", "ASes", "prefixes", "countries"});
  visibility.row({"peering", util::with_thousands(report.peering_ips),
                  util::with_thousands(report.peering_ases),
                  util::with_thousands(report.peering_prefixes),
                  std::to_string(report.peering_countries)});
  visibility.row({"server", util::with_thousands(report.server_ips),
                  util::with_thousands(report.server_ases),
                  util::with_thousands(report.server_prefixes),
                  std::to_string(report.server_countries)});
  visibility.print(std::cout);

  const auto& funnel = report.https_funnel;
  std::cout << "\nHTTPS funnel: " << funnel.candidates << " candidates -> "
            << funnel.responded << " responded -> " << funnel.confirmed
            << " confirmed\n";

  std::vector<std::pair<std::string, double>> countries;
  for (const auto& [code, tally] : report.by_country)
    countries.push_back({code.to_string(), tally.bytes});
  std::sort(countries.begin(), countries.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::cout << "\ntop countries by traffic: ";
  for (std::size_t i = 0; i < std::min<std::size_t>(8, countries.size()); ++i)
    std::cout << countries[i].first << " ";
  std::cout << "\n";

  double total_bytes = 0;
  double server_bytes = 0;
  for (const auto& obs : report.servers) server_bytes += obs.bytes;
  total_bytes = 2.0 * report.peering_bytes();
  std::cout << "server-related byte share (per-IP accounting): "
            << util::percent(server_bytes / total_bytes, 1) << "\n";
  return 0;
}
