// churn_monitor: §4's longitudinal view — track server IPs across a range
// of weeks and report the stable / recurrent / fresh pools week by week.
//
//   ./churn_monitor [first=35] [last=43]
#include <cstdlib>
#include <iostream>

#include "analysis/churn_tracker.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const int first = argc > 1 ? std::atoi(argv[1]) : 35;
  const int last = argc > 2 ? std::atoi(argv[2]) : 43;
  if (first < 35 || last > 51 || last < first) {
    std::cerr << "usage: churn_monitor [first>=35] [last<=51]\n";
    return 1;
  }

  const gen::InternetModel model{gen::ScaleConfig::test()};
  const gen::Workload workload{model};
  std::vector<net::Asn> members;
  for (const auto* m : model.ixp().members_at(last)) members.push_back(m->asn);
  const auto locality = model.as_graph().classify(members);

  analysis::ChurnTracker tracker{first, last};
  for (int week = first; week <= last; ++week) {
    core::VantagePoint vantage{
        model.ixp(),   model.routing(),  model.geo_db(), locality,
        model.dns_db(), dns::PublicSuffixList::builtin(), model.root_store()};
    core::WeekSession session = vantage.open_week(week);
    workload.generate_week(
        week, [&](const sflow::FlowSample& s) { session.observe(s); });
    const auto report = session.finish([&](net::Ipv4Addr addr, int times) {
      return model.fetch_chains(addr, times, week);
    });
    for (const auto& obs : report.servers) {
      tracker.observe(obs.addr.value(), week, geo::region_of(obs.country),
                      obs.bytes);
    }
  }

  util::Table table{"Weekly server-IP pools (counts | traffic shares)"};
  table.header({"week", "active", "stable", "recurrent", "fresh",
                "stable traffic"});
  for (const auto& w : tracker.breakdown()) {
    const double active = static_cast<double>(w.active);
    const double bytes = w.active_bytes > 0 ? w.active_bytes : 1.0;
    table.row({std::to_string(w.week), util::with_thousands(w.active),
               util::percent(w.stable / active, 1),
               util::percent(w.recurrent / active, 1),
               util::percent(w.fresh / active, 1),
               util::percent(w.stable_bytes / bytes, 1)});
  }
  table.print(std::cout);
  std::cout << "\n(paper, 17 weeks: stable ~30% of the pool carrying >60% of"
               " the traffic)\n";
  return 0;
}
