// blindspot_audit: §3.3's "know what you don't know" workflow — measure
// the site-list recovery from IXP URIs, then sweep the uncovered sites
// through the usable open resolvers and classify what the IXP missed.
//
//   ./blindspot_audit [per_site_resolvers=8]
#include <cstdlib>
#include <iostream>
#include <unordered_set>

#include "analysis/blind_spots.hpp"
#include "core/vantage_point.hpp"
#include "dns/public_suffix.hpp"
#include "gen/workload.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace ixp;
  const std::size_t per_site = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;

  const gen::InternetModel model{gen::ScaleConfig::test()};
  const gen::Workload workload{model};
  std::vector<net::Asn> members;
  for (const auto* m : model.ixp().members_at(45)) members.push_back(m->asn);
  const auto locality = model.as_graph().classify(members);

  core::VantagePoint vantage{
      model.ixp(),   model.routing(),  model.geo_db(), locality,
      model.dns_db(), dns::PublicSuffixList::builtin(), model.root_store()};
  core::WeekSession session = vantage.open_week(45);
  workload.generate_week(45,
                         [&](const sflow::FlowSample& s) { session.observe(s); });
  const auto report = session.finish([&](net::Ipv4Addr addr, int times) {
    return model.fetch_chains(addr, times, 45);
  });

  // Domains recovered from the payload URIs.
  const auto& psl = dns::PublicSuffixList::builtin();
  std::unordered_set<dns::DnsName> recovered;
  std::unordered_set<net::Ipv4Addr> ixp_servers;
  for (const auto& obs : report.servers) {
    ixp_servers.insert(obs.addr);
    for (const auto& uri : obs.metadata.uris) {
      if (const auto domain = uri.authority(psl)) recovered.insert(*domain);
    }
  }

  const std::size_t sites = model.sites().size();
  for (const auto [top, label] :
       {std::pair<std::size_t, const char*>{sites / 100, "top 1%"},
        {sites / 10, "top 10%"},
        {sites, "all sites"}}) {
    const auto recovery = analysis::alexa_recovery(model, top, recovered);
    std::cout << "site recovery, " << label << ": "
              << util::percent(recovery.share(), 1) << " (" << recovery.recovered
              << "/" << recovery.considered << ")\n";
  }

  // Resolver filtering + sweep.
  dns::ZoneDatabase probe_db;
  const auto probe = *dns::DnsName::parse("probe.audit.net");
  probe_db.add_a(probe, net::Ipv4Addr{192, 0, 2, 1});
  const auto usable = model.resolvers().usable_resolvers(probe_db, probe);
  std::cout << "\nusable resolvers: " << usable.size() << " of "
            << model.resolvers().size() << " candidates, in "
            << dns::ResolverPopulation::distinct_ases(usable) << " ASes\n";

  util::Rng rng{2026};
  const auto sweep = analysis::resolver_sweep(model, usable, recovered,
                                              ixp_servers, per_site, 45, rng);
  std::cout << "sweep: " << sweep.queried_sites << " uncovered sites -> "
            << sweep.discovered_ips << " server IPs ("
            << sweep.already_seen_at_ixp << " already at IXP, "
            << sweep.unseen_at_ixp << " unseen)\n";
  static const char* kReason[] = {"visible-but-unidentified", "private cluster",
                                  "far region", "error handler", "small far org"};
  for (std::size_t r = 0; r < 5; ++r) {
    if (sweep.unseen_by_reason[r] > 0)
      std::cout << "  " << kReason[r] << ": " << sweep.unseen_by_reason[r] << "\n";
  }
  return 0;
}
