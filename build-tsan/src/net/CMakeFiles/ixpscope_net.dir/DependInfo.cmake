
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/as_graph.cpp" "src/net/CMakeFiles/ixpscope_net.dir/as_graph.cpp.o" "gcc" "src/net/CMakeFiles/ixpscope_net.dir/as_graph.cpp.o.d"
  "/root/repo/src/net/bgp_dump.cpp" "src/net/CMakeFiles/ixpscope_net.dir/bgp_dump.cpp.o" "gcc" "src/net/CMakeFiles/ixpscope_net.dir/bgp_dump.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/ixpscope_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/ixpscope_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/routing_table.cpp" "src/net/CMakeFiles/ixpscope_net.dir/routing_table.cpp.o" "gcc" "src/net/CMakeFiles/ixpscope_net.dir/routing_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/ixpscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
