file(REMOVE_RECURSE
  "CMakeFiles/ixpscope_net.dir/as_graph.cpp.o"
  "CMakeFiles/ixpscope_net.dir/as_graph.cpp.o.d"
  "CMakeFiles/ixpscope_net.dir/bgp_dump.cpp.o"
  "CMakeFiles/ixpscope_net.dir/bgp_dump.cpp.o.d"
  "CMakeFiles/ixpscope_net.dir/ipv4.cpp.o"
  "CMakeFiles/ixpscope_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/ixpscope_net.dir/routing_table.cpp.o"
  "CMakeFiles/ixpscope_net.dir/routing_table.cpp.o.d"
  "libixpscope_net.a"
  "libixpscope_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixpscope_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
