# Empty dependencies file for ixpscope_net.
# This may be replaced when dependencies are built.
