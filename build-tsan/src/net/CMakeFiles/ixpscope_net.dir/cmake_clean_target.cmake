file(REMOVE_RECURSE
  "libixpscope_net.a"
)
