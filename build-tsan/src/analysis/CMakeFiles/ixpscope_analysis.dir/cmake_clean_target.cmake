file(REMOVE_RECURSE
  "libixpscope_analysis.a"
)
