file(REMOVE_RECURSE
  "CMakeFiles/ixpscope_analysis.dir/attribution.cpp.o"
  "CMakeFiles/ixpscope_analysis.dir/attribution.cpp.o.d"
  "CMakeFiles/ixpscope_analysis.dir/blind_spots.cpp.o"
  "CMakeFiles/ixpscope_analysis.dir/blind_spots.cpp.o.d"
  "CMakeFiles/ixpscope_analysis.dir/case_studies.cpp.o"
  "CMakeFiles/ixpscope_analysis.dir/case_studies.cpp.o.d"
  "CMakeFiles/ixpscope_analysis.dir/churn_tracker.cpp.o"
  "CMakeFiles/ixpscope_analysis.dir/churn_tracker.cpp.o.d"
  "CMakeFiles/ixpscope_analysis.dir/heterogeneity.cpp.o"
  "CMakeFiles/ixpscope_analysis.dir/heterogeneity.cpp.o.d"
  "CMakeFiles/ixpscope_analysis.dir/weekly_delta.cpp.o"
  "CMakeFiles/ixpscope_analysis.dir/weekly_delta.cpp.o.d"
  "libixpscope_analysis.a"
  "libixpscope_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixpscope_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
