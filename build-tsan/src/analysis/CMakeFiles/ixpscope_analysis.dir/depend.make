# Empty dependencies file for ixpscope_analysis.
# This may be replaced when dependencies are built.
