
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/attribution.cpp" "src/analysis/CMakeFiles/ixpscope_analysis.dir/attribution.cpp.o" "gcc" "src/analysis/CMakeFiles/ixpscope_analysis.dir/attribution.cpp.o.d"
  "/root/repo/src/analysis/blind_spots.cpp" "src/analysis/CMakeFiles/ixpscope_analysis.dir/blind_spots.cpp.o" "gcc" "src/analysis/CMakeFiles/ixpscope_analysis.dir/blind_spots.cpp.o.d"
  "/root/repo/src/analysis/case_studies.cpp" "src/analysis/CMakeFiles/ixpscope_analysis.dir/case_studies.cpp.o" "gcc" "src/analysis/CMakeFiles/ixpscope_analysis.dir/case_studies.cpp.o.d"
  "/root/repo/src/analysis/churn_tracker.cpp" "src/analysis/CMakeFiles/ixpscope_analysis.dir/churn_tracker.cpp.o" "gcc" "src/analysis/CMakeFiles/ixpscope_analysis.dir/churn_tracker.cpp.o.d"
  "/root/repo/src/analysis/heterogeneity.cpp" "src/analysis/CMakeFiles/ixpscope_analysis.dir/heterogeneity.cpp.o" "gcc" "src/analysis/CMakeFiles/ixpscope_analysis.dir/heterogeneity.cpp.o.d"
  "/root/repo/src/analysis/weekly_delta.cpp" "src/analysis/CMakeFiles/ixpscope_analysis.dir/weekly_delta.cpp.o" "gcc" "src/analysis/CMakeFiles/ixpscope_analysis.dir/weekly_delta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/ixpscope_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/classify/CMakeFiles/ixpscope_classify.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gen/CMakeFiles/ixpscope_gen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/ixpscope_geo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/ixpscope_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/x509/CMakeFiles/ixpscope_x509.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dns/CMakeFiles/ixpscope_dns.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fabric/CMakeFiles/ixpscope_fabric.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sflow/CMakeFiles/ixpscope_sflow.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ixpscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
