file(REMOVE_RECURSE
  "CMakeFiles/ixpscope_x509.dir/validator.cpp.o"
  "CMakeFiles/ixpscope_x509.dir/validator.cpp.o.d"
  "libixpscope_x509.a"
  "libixpscope_x509.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixpscope_x509.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
