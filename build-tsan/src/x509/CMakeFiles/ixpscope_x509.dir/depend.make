# Empty dependencies file for ixpscope_x509.
# This may be replaced when dependencies are built.
