file(REMOVE_RECURSE
  "libixpscope_x509.a"
)
