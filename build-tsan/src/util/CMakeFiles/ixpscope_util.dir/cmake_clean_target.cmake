file(REMOVE_RECURSE
  "libixpscope_util.a"
)
