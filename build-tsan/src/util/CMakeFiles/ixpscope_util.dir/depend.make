# Empty dependencies file for ixpscope_util.
# This may be replaced when dependencies are built.
