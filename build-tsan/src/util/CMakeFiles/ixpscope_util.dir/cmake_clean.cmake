file(REMOVE_RECURSE
  "CMakeFiles/ixpscope_util.dir/format.cpp.o"
  "CMakeFiles/ixpscope_util.dir/format.cpp.o.d"
  "CMakeFiles/ixpscope_util.dir/rng.cpp.o"
  "CMakeFiles/ixpscope_util.dir/rng.cpp.o.d"
  "CMakeFiles/ixpscope_util.dir/stats.cpp.o"
  "CMakeFiles/ixpscope_util.dir/stats.cpp.o.d"
  "CMakeFiles/ixpscope_util.dir/table.cpp.o"
  "CMakeFiles/ixpscope_util.dir/table.cpp.o.d"
  "CMakeFiles/ixpscope_util.dir/zipf.cpp.o"
  "CMakeFiles/ixpscope_util.dir/zipf.cpp.o.d"
  "libixpscope_util.a"
  "libixpscope_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixpscope_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
