file(REMOVE_RECURSE
  "CMakeFiles/ixpscope_gen.dir/internet.cpp.o"
  "CMakeFiles/ixpscope_gen.dir/internet.cpp.o.d"
  "CMakeFiles/ixpscope_gen.dir/internet_build.cpp.o"
  "CMakeFiles/ixpscope_gen.dir/internet_build.cpp.o.d"
  "CMakeFiles/ixpscope_gen.dir/isp_observer.cpp.o"
  "CMakeFiles/ixpscope_gen.dir/isp_observer.cpp.o.d"
  "CMakeFiles/ixpscope_gen.dir/org_catalog.cpp.o"
  "CMakeFiles/ixpscope_gen.dir/org_catalog.cpp.o.d"
  "CMakeFiles/ixpscope_gen.dir/scale.cpp.o"
  "CMakeFiles/ixpscope_gen.dir/scale.cpp.o.d"
  "CMakeFiles/ixpscope_gen.dir/workload.cpp.o"
  "CMakeFiles/ixpscope_gen.dir/workload.cpp.o.d"
  "libixpscope_gen.a"
  "libixpscope_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixpscope_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
