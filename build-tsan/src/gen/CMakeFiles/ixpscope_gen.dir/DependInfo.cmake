
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/internet.cpp" "src/gen/CMakeFiles/ixpscope_gen.dir/internet.cpp.o" "gcc" "src/gen/CMakeFiles/ixpscope_gen.dir/internet.cpp.o.d"
  "/root/repo/src/gen/internet_build.cpp" "src/gen/CMakeFiles/ixpscope_gen.dir/internet_build.cpp.o" "gcc" "src/gen/CMakeFiles/ixpscope_gen.dir/internet_build.cpp.o.d"
  "/root/repo/src/gen/isp_observer.cpp" "src/gen/CMakeFiles/ixpscope_gen.dir/isp_observer.cpp.o" "gcc" "src/gen/CMakeFiles/ixpscope_gen.dir/isp_observer.cpp.o.d"
  "/root/repo/src/gen/org_catalog.cpp" "src/gen/CMakeFiles/ixpscope_gen.dir/org_catalog.cpp.o" "gcc" "src/gen/CMakeFiles/ixpscope_gen.dir/org_catalog.cpp.o.d"
  "/root/repo/src/gen/scale.cpp" "src/gen/CMakeFiles/ixpscope_gen.dir/scale.cpp.o" "gcc" "src/gen/CMakeFiles/ixpscope_gen.dir/scale.cpp.o.d"
  "/root/repo/src/gen/workload.cpp" "src/gen/CMakeFiles/ixpscope_gen.dir/workload.cpp.o" "gcc" "src/gen/CMakeFiles/ixpscope_gen.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/ixpscope_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/ixpscope_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/ixpscope_geo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dns/CMakeFiles/ixpscope_dns.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/x509/CMakeFiles/ixpscope_x509.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sflow/CMakeFiles/ixpscope_sflow.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fabric/CMakeFiles/ixpscope_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
