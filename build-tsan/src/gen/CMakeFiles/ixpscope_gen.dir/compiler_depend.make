# Empty compiler generated dependencies file for ixpscope_gen.
# This may be replaced when dependencies are built.
