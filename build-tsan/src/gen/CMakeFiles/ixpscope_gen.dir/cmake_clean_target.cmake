file(REMOVE_RECURSE
  "libixpscope_gen.a"
)
