# Empty dependencies file for ixpscope_fabric.
# This may be replaced when dependencies are built.
