file(REMOVE_RECURSE
  "CMakeFiles/ixpscope_fabric.dir/ixp.cpp.o"
  "CMakeFiles/ixpscope_fabric.dir/ixp.cpp.o.d"
  "libixpscope_fabric.a"
  "libixpscope_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixpscope_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
