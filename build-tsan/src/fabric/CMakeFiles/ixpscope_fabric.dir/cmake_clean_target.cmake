file(REMOVE_RECURSE
  "libixpscope_fabric.a"
)
