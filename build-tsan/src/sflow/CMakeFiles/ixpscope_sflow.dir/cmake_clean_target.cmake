file(REMOVE_RECURSE
  "libixpscope_sflow.a"
)
