
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sflow/collector.cpp" "src/sflow/CMakeFiles/ixpscope_sflow.dir/collector.cpp.o" "gcc" "src/sflow/CMakeFiles/ixpscope_sflow.dir/collector.cpp.o.d"
  "/root/repo/src/sflow/datagram.cpp" "src/sflow/CMakeFiles/ixpscope_sflow.dir/datagram.cpp.o" "gcc" "src/sflow/CMakeFiles/ixpscope_sflow.dir/datagram.cpp.o.d"
  "/root/repo/src/sflow/frame.cpp" "src/sflow/CMakeFiles/ixpscope_sflow.dir/frame.cpp.o" "gcc" "src/sflow/CMakeFiles/ixpscope_sflow.dir/frame.cpp.o.d"
  "/root/repo/src/sflow/headers.cpp" "src/sflow/CMakeFiles/ixpscope_sflow.dir/headers.cpp.o" "gcc" "src/sflow/CMakeFiles/ixpscope_sflow.dir/headers.cpp.o.d"
  "/root/repo/src/sflow/ipv6.cpp" "src/sflow/CMakeFiles/ixpscope_sflow.dir/ipv6.cpp.o" "gcc" "src/sflow/CMakeFiles/ixpscope_sflow.dir/ipv6.cpp.o.d"
  "/root/repo/src/sflow/trace.cpp" "src/sflow/CMakeFiles/ixpscope_sflow.dir/trace.cpp.o" "gcc" "src/sflow/CMakeFiles/ixpscope_sflow.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/net/CMakeFiles/ixpscope_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ixpscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
