# Empty dependencies file for ixpscope_sflow.
# This may be replaced when dependencies are built.
