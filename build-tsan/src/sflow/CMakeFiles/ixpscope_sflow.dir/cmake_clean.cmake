file(REMOVE_RECURSE
  "CMakeFiles/ixpscope_sflow.dir/collector.cpp.o"
  "CMakeFiles/ixpscope_sflow.dir/collector.cpp.o.d"
  "CMakeFiles/ixpscope_sflow.dir/datagram.cpp.o"
  "CMakeFiles/ixpscope_sflow.dir/datagram.cpp.o.d"
  "CMakeFiles/ixpscope_sflow.dir/frame.cpp.o"
  "CMakeFiles/ixpscope_sflow.dir/frame.cpp.o.d"
  "CMakeFiles/ixpscope_sflow.dir/headers.cpp.o"
  "CMakeFiles/ixpscope_sflow.dir/headers.cpp.o.d"
  "CMakeFiles/ixpscope_sflow.dir/ipv6.cpp.o"
  "CMakeFiles/ixpscope_sflow.dir/ipv6.cpp.o.d"
  "CMakeFiles/ixpscope_sflow.dir/trace.cpp.o"
  "CMakeFiles/ixpscope_sflow.dir/trace.cpp.o.d"
  "libixpscope_sflow.a"
  "libixpscope_sflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixpscope_sflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
