file(REMOVE_RECURSE
  "CMakeFiles/ixpscope_dns.dir/name.cpp.o"
  "CMakeFiles/ixpscope_dns.dir/name.cpp.o.d"
  "CMakeFiles/ixpscope_dns.dir/public_suffix.cpp.o"
  "CMakeFiles/ixpscope_dns.dir/public_suffix.cpp.o.d"
  "CMakeFiles/ixpscope_dns.dir/resolver.cpp.o"
  "CMakeFiles/ixpscope_dns.dir/resolver.cpp.o.d"
  "CMakeFiles/ixpscope_dns.dir/uri.cpp.o"
  "CMakeFiles/ixpscope_dns.dir/uri.cpp.o.d"
  "CMakeFiles/ixpscope_dns.dir/zone_db.cpp.o"
  "CMakeFiles/ixpscope_dns.dir/zone_db.cpp.o.d"
  "libixpscope_dns.a"
  "libixpscope_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixpscope_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
