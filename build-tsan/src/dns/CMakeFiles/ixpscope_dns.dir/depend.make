# Empty dependencies file for ixpscope_dns.
# This may be replaced when dependencies are built.
