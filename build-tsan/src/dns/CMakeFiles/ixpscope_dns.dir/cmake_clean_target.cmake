file(REMOVE_RECURSE
  "libixpscope_dns.a"
)
