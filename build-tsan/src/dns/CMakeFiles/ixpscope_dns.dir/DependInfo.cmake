
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/name.cpp" "src/dns/CMakeFiles/ixpscope_dns.dir/name.cpp.o" "gcc" "src/dns/CMakeFiles/ixpscope_dns.dir/name.cpp.o.d"
  "/root/repo/src/dns/public_suffix.cpp" "src/dns/CMakeFiles/ixpscope_dns.dir/public_suffix.cpp.o" "gcc" "src/dns/CMakeFiles/ixpscope_dns.dir/public_suffix.cpp.o.d"
  "/root/repo/src/dns/resolver.cpp" "src/dns/CMakeFiles/ixpscope_dns.dir/resolver.cpp.o" "gcc" "src/dns/CMakeFiles/ixpscope_dns.dir/resolver.cpp.o.d"
  "/root/repo/src/dns/uri.cpp" "src/dns/CMakeFiles/ixpscope_dns.dir/uri.cpp.o" "gcc" "src/dns/CMakeFiles/ixpscope_dns.dir/uri.cpp.o.d"
  "/root/repo/src/dns/zone_db.cpp" "src/dns/CMakeFiles/ixpscope_dns.dir/zone_db.cpp.o" "gcc" "src/dns/CMakeFiles/ixpscope_dns.dir/zone_db.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/net/CMakeFiles/ixpscope_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ixpscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
