
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/dissector.cpp" "src/classify/CMakeFiles/ixpscope_classify.dir/dissector.cpp.o" "gcc" "src/classify/CMakeFiles/ixpscope_classify.dir/dissector.cpp.o.d"
  "/root/repo/src/classify/http_matcher.cpp" "src/classify/CMakeFiles/ixpscope_classify.dir/http_matcher.cpp.o" "gcc" "src/classify/CMakeFiles/ixpscope_classify.dir/http_matcher.cpp.o.d"
  "/root/repo/src/classify/https_prober.cpp" "src/classify/CMakeFiles/ixpscope_classify.dir/https_prober.cpp.o" "gcc" "src/classify/CMakeFiles/ixpscope_classify.dir/https_prober.cpp.o.d"
  "/root/repo/src/classify/metadata.cpp" "src/classify/CMakeFiles/ixpscope_classify.dir/metadata.cpp.o" "gcc" "src/classify/CMakeFiles/ixpscope_classify.dir/metadata.cpp.o.d"
  "/root/repo/src/classify/peering_filter.cpp" "src/classify/CMakeFiles/ixpscope_classify.dir/peering_filter.cpp.o" "gcc" "src/classify/CMakeFiles/ixpscope_classify.dir/peering_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/net/CMakeFiles/ixpscope_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sflow/CMakeFiles/ixpscope_sflow.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fabric/CMakeFiles/ixpscope_fabric.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dns/CMakeFiles/ixpscope_dns.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/x509/CMakeFiles/ixpscope_x509.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ixpscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
