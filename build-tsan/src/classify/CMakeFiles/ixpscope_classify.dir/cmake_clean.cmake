file(REMOVE_RECURSE
  "CMakeFiles/ixpscope_classify.dir/dissector.cpp.o"
  "CMakeFiles/ixpscope_classify.dir/dissector.cpp.o.d"
  "CMakeFiles/ixpscope_classify.dir/http_matcher.cpp.o"
  "CMakeFiles/ixpscope_classify.dir/http_matcher.cpp.o.d"
  "CMakeFiles/ixpscope_classify.dir/https_prober.cpp.o"
  "CMakeFiles/ixpscope_classify.dir/https_prober.cpp.o.d"
  "CMakeFiles/ixpscope_classify.dir/metadata.cpp.o"
  "CMakeFiles/ixpscope_classify.dir/metadata.cpp.o.d"
  "CMakeFiles/ixpscope_classify.dir/peering_filter.cpp.o"
  "CMakeFiles/ixpscope_classify.dir/peering_filter.cpp.o.d"
  "libixpscope_classify.a"
  "libixpscope_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixpscope_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
