file(REMOVE_RECURSE
  "libixpscope_classify.a"
)
