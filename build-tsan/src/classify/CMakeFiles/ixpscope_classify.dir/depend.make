# Empty dependencies file for ixpscope_classify.
# This may be replaced when dependencies are built.
