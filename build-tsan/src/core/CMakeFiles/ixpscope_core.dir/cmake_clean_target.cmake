file(REMOVE_RECURSE
  "libixpscope_core.a"
)
