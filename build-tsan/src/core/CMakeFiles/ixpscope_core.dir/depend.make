# Empty dependencies file for ixpscope_core.
# This may be replaced when dependencies are built.
