file(REMOVE_RECURSE
  "CMakeFiles/ixpscope_core.dir/org_clusterer.cpp.o"
  "CMakeFiles/ixpscope_core.dir/org_clusterer.cpp.o.d"
  "CMakeFiles/ixpscope_core.dir/parallel_analyzer.cpp.o"
  "CMakeFiles/ixpscope_core.dir/parallel_analyzer.cpp.o.d"
  "CMakeFiles/ixpscope_core.dir/vantage_point.cpp.o"
  "CMakeFiles/ixpscope_core.dir/vantage_point.cpp.o.d"
  "libixpscope_core.a"
  "libixpscope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixpscope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
