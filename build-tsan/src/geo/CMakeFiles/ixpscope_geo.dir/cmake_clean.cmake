file(REMOVE_RECURSE
  "CMakeFiles/ixpscope_geo.dir/country.cpp.o"
  "CMakeFiles/ixpscope_geo.dir/country.cpp.o.d"
  "CMakeFiles/ixpscope_geo.dir/geo_database.cpp.o"
  "CMakeFiles/ixpscope_geo.dir/geo_database.cpp.o.d"
  "libixpscope_geo.a"
  "libixpscope_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixpscope_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
