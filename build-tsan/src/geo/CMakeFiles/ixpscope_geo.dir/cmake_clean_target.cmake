file(REMOVE_RECURSE
  "libixpscope_geo.a"
)
