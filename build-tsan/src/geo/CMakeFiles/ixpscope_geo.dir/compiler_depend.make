# Empty compiler generated dependencies file for ixpscope_geo.
# This may be replaced when dependencies are built.
