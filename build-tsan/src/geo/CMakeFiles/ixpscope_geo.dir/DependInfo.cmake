
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/country.cpp" "src/geo/CMakeFiles/ixpscope_geo.dir/country.cpp.o" "gcc" "src/geo/CMakeFiles/ixpscope_geo.dir/country.cpp.o.d"
  "/root/repo/src/geo/geo_database.cpp" "src/geo/CMakeFiles/ixpscope_geo.dir/geo_database.cpp.o" "gcc" "src/geo/CMakeFiles/ixpscope_geo.dir/geo_database.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/net/CMakeFiles/ixpscope_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ixpscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
