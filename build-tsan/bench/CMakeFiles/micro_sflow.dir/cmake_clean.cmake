file(REMOVE_RECURSE
  "CMakeFiles/micro_sflow.dir/micro_sflow.cpp.o"
  "CMakeFiles/micro_sflow.dir/micro_sflow.cpp.o.d"
  "micro_sflow"
  "micro_sflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
