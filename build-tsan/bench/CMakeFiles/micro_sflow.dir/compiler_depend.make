# Empty compiler generated dependencies file for micro_sflow.
# This may be replaced when dependencies are built.
