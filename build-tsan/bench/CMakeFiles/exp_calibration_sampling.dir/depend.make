# Empty dependencies file for exp_calibration_sampling.
# This may be replaced when dependencies are built.
