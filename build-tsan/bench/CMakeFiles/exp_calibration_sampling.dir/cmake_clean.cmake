file(REMOVE_RECURSE
  "CMakeFiles/exp_calibration_sampling.dir/exp_calibration_sampling.cpp.o"
  "CMakeFiles/exp_calibration_sampling.dir/exp_calibration_sampling.cpp.o.d"
  "exp_calibration_sampling"
  "exp_calibration_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_calibration_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
