# Empty dependencies file for exp_sec42_cases.
# This may be replaced when dependencies are built.
