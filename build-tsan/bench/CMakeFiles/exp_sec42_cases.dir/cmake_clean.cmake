file(REMOVE_RECURSE
  "CMakeFiles/exp_sec42_cases.dir/exp_sec42_cases.cpp.o"
  "CMakeFiles/exp_sec42_cases.dir/exp_sec42_cases.cpp.o.d"
  "exp_sec42_cases"
  "exp_sec42_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec42_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
