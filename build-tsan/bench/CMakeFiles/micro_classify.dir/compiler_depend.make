# Empty compiler generated dependencies file for micro_classify.
# This may be replaced when dependencies are built.
