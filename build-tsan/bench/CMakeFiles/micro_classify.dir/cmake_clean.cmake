file(REMOVE_RECURSE
  "CMakeFiles/micro_classify.dir/micro_classify.cpp.o"
  "CMakeFiles/micro_classify.dir/micro_classify.cpp.o.d"
  "micro_classify"
  "micro_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
