file(REMOVE_RECURSE
  "CMakeFiles/exp_common.dir/exp_common.cpp.o"
  "CMakeFiles/exp_common.dir/exp_common.cpp.o.d"
  "libexp_common.a"
  "libexp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
