# Empty dependencies file for exp_common.
# This may be replaced when dependencies are built.
