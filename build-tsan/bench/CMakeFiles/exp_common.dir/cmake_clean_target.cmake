file(REMOVE_RECURSE
  "libexp_common.a"
)
