# Empty dependencies file for exp_fig1_filtering.
# This may be replaced when dependencies are built.
