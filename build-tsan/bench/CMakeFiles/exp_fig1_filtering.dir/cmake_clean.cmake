file(REMOVE_RECURSE
  "CMakeFiles/exp_fig1_filtering.dir/exp_fig1_filtering.cpp.o"
  "CMakeFiles/exp_fig1_filtering.dir/exp_fig1_filtering.cpp.o.d"
  "exp_fig1_filtering"
  "exp_fig1_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig1_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
