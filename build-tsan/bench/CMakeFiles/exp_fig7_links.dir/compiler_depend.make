# Empty compiler generated dependencies file for exp_fig7_links.
# This may be replaced when dependencies are built.
