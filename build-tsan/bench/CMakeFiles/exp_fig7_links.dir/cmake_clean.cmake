file(REMOVE_RECURSE
  "CMakeFiles/exp_fig7_links.dir/exp_fig7_links.cpp.o"
  "CMakeFiles/exp_fig7_links.dir/exp_fig7_links.cpp.o.d"
  "exp_fig7_links"
  "exp_fig7_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig7_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
