# Empty dependencies file for exp_tab2_top10.
# This may be replaced when dependencies are built.
