file(REMOVE_RECURSE
  "CMakeFiles/exp_tab2_top10.dir/exp_tab2_top10.cpp.o"
  "CMakeFiles/exp_tab2_top10.dir/exp_tab2_top10.cpp.o.d"
  "exp_tab2_top10"
  "exp_tab2_top10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_tab2_top10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
