# Empty dependencies file for exp_tab1_summary.
# This may be replaced when dependencies are built.
