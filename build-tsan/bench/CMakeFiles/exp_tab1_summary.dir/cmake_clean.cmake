file(REMOVE_RECURSE
  "CMakeFiles/exp_tab1_summary.dir/exp_tab1_summary.cpp.o"
  "CMakeFiles/exp_tab1_summary.dir/exp_tab1_summary.cpp.o.d"
  "exp_tab1_summary"
  "exp_tab1_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_tab1_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
