# Empty compiler generated dependencies file for exp_tab3_local_global.
# This may be replaced when dependencies are built.
