file(REMOVE_RECURSE
  "CMakeFiles/exp_tab3_local_global.dir/exp_tab3_local_global.cpp.o"
  "CMakeFiles/exp_tab3_local_global.dir/exp_tab3_local_global.cpp.o.d"
  "exp_tab3_local_global"
  "exp_tab3_local_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_tab3_local_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
