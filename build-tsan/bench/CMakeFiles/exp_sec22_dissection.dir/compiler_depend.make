# Empty compiler generated dependencies file for exp_sec22_dissection.
# This may be replaced when dependencies are built.
