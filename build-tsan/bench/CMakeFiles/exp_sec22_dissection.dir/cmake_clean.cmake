file(REMOVE_RECURSE
  "CMakeFiles/exp_sec22_dissection.dir/exp_sec22_dissection.cpp.o"
  "CMakeFiles/exp_sec22_dissection.dir/exp_sec22_dissection.cpp.o.d"
  "exp_sec22_dissection"
  "exp_sec22_dissection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec22_dissection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
