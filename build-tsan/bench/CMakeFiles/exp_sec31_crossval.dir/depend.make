# Empty dependencies file for exp_sec31_crossval.
# This may be replaced when dependencies are built.
