file(REMOVE_RECURSE
  "CMakeFiles/exp_sec31_crossval.dir/exp_sec31_crossval.cpp.o"
  "CMakeFiles/exp_sec31_crossval.dir/exp_sec31_crossval.cpp.o.d"
  "exp_sec31_crossval"
  "exp_sec31_crossval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec31_crossval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
