# Empty dependencies file for exp_fig4_churn.
# This may be replaced when dependencies are built.
