# Empty compiler generated dependencies file for exp_sec24_metadata.
# This may be replaced when dependencies are built.
