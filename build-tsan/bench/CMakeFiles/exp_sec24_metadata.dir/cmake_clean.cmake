file(REMOVE_RECURSE
  "CMakeFiles/exp_sec24_metadata.dir/exp_sec24_metadata.cpp.o"
  "CMakeFiles/exp_sec24_metadata.dir/exp_sec24_metadata.cpp.o.d"
  "exp_sec24_metadata"
  "exp_sec24_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec24_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
