# Empty dependencies file for exp_ext_server_to_server.
# This may be replaced when dependencies are built.
