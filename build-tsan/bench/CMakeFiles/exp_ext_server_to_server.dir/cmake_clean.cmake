file(REMOVE_RECURSE
  "CMakeFiles/exp_ext_server_to_server.dir/exp_ext_server_to_server.cpp.o"
  "CMakeFiles/exp_ext_server_to_server.dir/exp_ext_server_to_server.cpp.o.d"
  "exp_ext_server_to_server"
  "exp_ext_server_to_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ext_server_to_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
