# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_ext_server_to_server.
