file(REMOVE_RECURSE
  "CMakeFiles/exp_fig6_heterogeneity.dir/exp_fig6_heterogeneity.cpp.o"
  "CMakeFiles/exp_fig6_heterogeneity.dir/exp_fig6_heterogeneity.cpp.o.d"
  "exp_fig6_heterogeneity"
  "exp_fig6_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig6_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
