# Empty compiler generated dependencies file for exp_fig6_heterogeneity.
# This may be replaced when dependencies are built.
