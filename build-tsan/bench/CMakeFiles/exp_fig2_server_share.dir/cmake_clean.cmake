file(REMOVE_RECURSE
  "CMakeFiles/exp_fig2_server_share.dir/exp_fig2_server_share.cpp.o"
  "CMakeFiles/exp_fig2_server_share.dir/exp_fig2_server_share.cpp.o.d"
  "exp_fig2_server_share"
  "exp_fig2_server_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig2_server_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
