# Empty dependencies file for exp_fig2_server_share.
# This may be replaced when dependencies are built.
