# Empty dependencies file for exp_fig5_traffic_churn.
# This may be replaced when dependencies are built.
