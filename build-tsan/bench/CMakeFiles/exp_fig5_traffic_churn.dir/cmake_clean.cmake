file(REMOVE_RECURSE
  "CMakeFiles/exp_fig5_traffic_churn.dir/exp_fig5_traffic_churn.cpp.o"
  "CMakeFiles/exp_fig5_traffic_churn.dir/exp_fig5_traffic_churn.cpp.o.d"
  "exp_fig5_traffic_churn"
  "exp_fig5_traffic_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig5_traffic_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
