file(REMOVE_RECURSE
  "CMakeFiles/exp_fig3_geography.dir/exp_fig3_geography.cpp.o"
  "CMakeFiles/exp_fig3_geography.dir/exp_fig3_geography.cpp.o.d"
  "exp_fig3_geography"
  "exp_fig3_geography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig3_geography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
