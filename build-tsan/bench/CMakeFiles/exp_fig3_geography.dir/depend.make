# Empty dependencies file for exp_fig3_geography.
# This may be replaced when dependencies are built.
