# Empty compiler generated dependencies file for exp_sec33_blindspots.
# This may be replaced when dependencies are built.
