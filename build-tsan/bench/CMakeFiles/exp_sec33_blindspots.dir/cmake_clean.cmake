file(REMOVE_RECURSE
  "CMakeFiles/exp_sec33_blindspots.dir/exp_sec33_blindspots.cpp.o"
  "CMakeFiles/exp_sec33_blindspots.dir/exp_sec33_blindspots.cpp.o.d"
  "exp_sec33_blindspots"
  "exp_sec33_blindspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec33_blindspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
