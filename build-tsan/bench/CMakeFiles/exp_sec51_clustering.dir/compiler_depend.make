# Empty compiler generated dependencies file for exp_sec51_clustering.
# This may be replaced when dependencies are built.
