file(REMOVE_RECURSE
  "CMakeFiles/exp_sec51_clustering.dir/exp_sec51_clustering.cpp.o"
  "CMakeFiles/exp_sec51_clustering.dir/exp_sec51_clustering.cpp.o.d"
  "exp_sec51_clustering"
  "exp_sec51_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec51_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
