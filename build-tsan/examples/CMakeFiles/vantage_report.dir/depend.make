# Empty dependencies file for vantage_report.
# This may be replaced when dependencies are built.
