file(REMOVE_RECURSE
  "CMakeFiles/vantage_report.dir/vantage_report.cpp.o"
  "CMakeFiles/vantage_report.dir/vantage_report.cpp.o.d"
  "vantage_report"
  "vantage_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vantage_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
