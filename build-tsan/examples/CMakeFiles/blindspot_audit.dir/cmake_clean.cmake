file(REMOVE_RECURSE
  "CMakeFiles/blindspot_audit.dir/blindspot_audit.cpp.o"
  "CMakeFiles/blindspot_audit.dir/blindspot_audit.cpp.o.d"
  "blindspot_audit"
  "blindspot_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blindspot_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
