# Empty compiler generated dependencies file for blindspot_audit.
# This may be replaced when dependencies are built.
