# Empty dependencies file for heterogenization_study.
# This may be replaced when dependencies are built.
