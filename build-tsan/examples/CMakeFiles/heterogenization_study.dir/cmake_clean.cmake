file(REMOVE_RECURSE
  "CMakeFiles/heterogenization_study.dir/heterogenization_study.cpp.o"
  "CMakeFiles/heterogenization_study.dir/heterogenization_study.cpp.o.d"
  "heterogenization_study"
  "heterogenization_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogenization_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
