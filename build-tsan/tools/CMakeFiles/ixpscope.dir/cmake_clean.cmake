file(REMOVE_RECURSE
  "CMakeFiles/ixpscope.dir/ixpscope_cli.cpp.o"
  "CMakeFiles/ixpscope.dir/ixpscope_cli.cpp.o.d"
  "ixpscope"
  "ixpscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixpscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
