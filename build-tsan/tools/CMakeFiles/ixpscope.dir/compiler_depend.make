# Empty compiler generated dependencies file for ixpscope.
# This may be replaced when dependencies are built.
