# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/util_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/net_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/geo_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/dns_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/x509_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sflow_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/fabric_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/classify_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/gen_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/analysis_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/parallel_engine_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/pipeline_test[1]_include.cmake")
