
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/classify/dissector_test.cpp" "tests/CMakeFiles/classify_test.dir/classify/dissector_test.cpp.o" "gcc" "tests/CMakeFiles/classify_test.dir/classify/dissector_test.cpp.o.d"
  "/root/repo/tests/classify/http_matcher_test.cpp" "tests/CMakeFiles/classify_test.dir/classify/http_matcher_test.cpp.o" "gcc" "tests/CMakeFiles/classify_test.dir/classify/http_matcher_test.cpp.o.d"
  "/root/repo/tests/classify/https_prober_test.cpp" "tests/CMakeFiles/classify_test.dir/classify/https_prober_test.cpp.o" "gcc" "tests/CMakeFiles/classify_test.dir/classify/https_prober_test.cpp.o.d"
  "/root/repo/tests/classify/matcher_property_test.cpp" "tests/CMakeFiles/classify_test.dir/classify/matcher_property_test.cpp.o" "gcc" "tests/CMakeFiles/classify_test.dir/classify/matcher_property_test.cpp.o.d"
  "/root/repo/tests/classify/metadata_test.cpp" "tests/CMakeFiles/classify_test.dir/classify/metadata_test.cpp.o" "gcc" "tests/CMakeFiles/classify_test.dir/classify/metadata_test.cpp.o.d"
  "/root/repo/tests/classify/peering_filter_test.cpp" "tests/CMakeFiles/classify_test.dir/classify/peering_filter_test.cpp.o" "gcc" "tests/CMakeFiles/classify_test.dir/classify/peering_filter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/classify/CMakeFiles/ixpscope_classify.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fabric/CMakeFiles/ixpscope_fabric.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sflow/CMakeFiles/ixpscope_sflow.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/x509/CMakeFiles/ixpscope_x509.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dns/CMakeFiles/ixpscope_dns.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/ixpscope_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ixpscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
