file(REMOVE_RECURSE
  "CMakeFiles/classify_test.dir/classify/dissector_test.cpp.o"
  "CMakeFiles/classify_test.dir/classify/dissector_test.cpp.o.d"
  "CMakeFiles/classify_test.dir/classify/http_matcher_test.cpp.o"
  "CMakeFiles/classify_test.dir/classify/http_matcher_test.cpp.o.d"
  "CMakeFiles/classify_test.dir/classify/https_prober_test.cpp.o"
  "CMakeFiles/classify_test.dir/classify/https_prober_test.cpp.o.d"
  "CMakeFiles/classify_test.dir/classify/matcher_property_test.cpp.o"
  "CMakeFiles/classify_test.dir/classify/matcher_property_test.cpp.o.d"
  "CMakeFiles/classify_test.dir/classify/metadata_test.cpp.o"
  "CMakeFiles/classify_test.dir/classify/metadata_test.cpp.o.d"
  "CMakeFiles/classify_test.dir/classify/peering_filter_test.cpp.o"
  "CMakeFiles/classify_test.dir/classify/peering_filter_test.cpp.o.d"
  "classify_test"
  "classify_test.pdb"
  "classify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
