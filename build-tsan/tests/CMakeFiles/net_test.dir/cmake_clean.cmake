file(REMOVE_RECURSE
  "CMakeFiles/net_test.dir/net/as_graph_test.cpp.o"
  "CMakeFiles/net_test.dir/net/as_graph_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/bgp_dump_test.cpp.o"
  "CMakeFiles/net_test.dir/net/bgp_dump_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/ipv4_test.cpp.o"
  "CMakeFiles/net_test.dir/net/ipv4_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/prefix_trie_test.cpp.o"
  "CMakeFiles/net_test.dir/net/prefix_trie_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/routing_table_test.cpp.o"
  "CMakeFiles/net_test.dir/net/routing_table_test.cpp.o.d"
  "net_test"
  "net_test.pdb"
  "net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
