
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/as_graph_test.cpp" "tests/CMakeFiles/net_test.dir/net/as_graph_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/as_graph_test.cpp.o.d"
  "/root/repo/tests/net/bgp_dump_test.cpp" "tests/CMakeFiles/net_test.dir/net/bgp_dump_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/bgp_dump_test.cpp.o.d"
  "/root/repo/tests/net/ipv4_test.cpp" "tests/CMakeFiles/net_test.dir/net/ipv4_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/ipv4_test.cpp.o.d"
  "/root/repo/tests/net/prefix_trie_test.cpp" "tests/CMakeFiles/net_test.dir/net/prefix_trie_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/prefix_trie_test.cpp.o.d"
  "/root/repo/tests/net/routing_table_test.cpp" "tests/CMakeFiles/net_test.dir/net/routing_table_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/routing_table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/net/CMakeFiles/ixpscope_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ixpscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
