
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/parallel_engine_test.cpp" "tests/CMakeFiles/parallel_engine_test.dir/core/parallel_engine_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_engine_test.dir/core/parallel_engine_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/ixpscope_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gen/CMakeFiles/ixpscope_gen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sflow/CMakeFiles/ixpscope_sflow.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/classify/CMakeFiles/ixpscope_classify.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/ixpscope_geo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/x509/CMakeFiles/ixpscope_x509.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dns/CMakeFiles/ixpscope_dns.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fabric/CMakeFiles/ixpscope_fabric.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/ixpscope_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ixpscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
