
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sflow/codec_fuzz_test.cpp" "tests/CMakeFiles/sflow_test.dir/sflow/codec_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/sflow_test.dir/sflow/codec_fuzz_test.cpp.o.d"
  "/root/repo/tests/sflow/collector_test.cpp" "tests/CMakeFiles/sflow_test.dir/sflow/collector_test.cpp.o" "gcc" "tests/CMakeFiles/sflow_test.dir/sflow/collector_test.cpp.o.d"
  "/root/repo/tests/sflow/datagram_test.cpp" "tests/CMakeFiles/sflow_test.dir/sflow/datagram_test.cpp.o" "gcc" "tests/CMakeFiles/sflow_test.dir/sflow/datagram_test.cpp.o.d"
  "/root/repo/tests/sflow/frame_test.cpp" "tests/CMakeFiles/sflow_test.dir/sflow/frame_test.cpp.o" "gcc" "tests/CMakeFiles/sflow_test.dir/sflow/frame_test.cpp.o.d"
  "/root/repo/tests/sflow/headers_test.cpp" "tests/CMakeFiles/sflow_test.dir/sflow/headers_test.cpp.o" "gcc" "tests/CMakeFiles/sflow_test.dir/sflow/headers_test.cpp.o.d"
  "/root/repo/tests/sflow/ipv6_test.cpp" "tests/CMakeFiles/sflow_test.dir/sflow/ipv6_test.cpp.o" "gcc" "tests/CMakeFiles/sflow_test.dir/sflow/ipv6_test.cpp.o.d"
  "/root/repo/tests/sflow/sampler_test.cpp" "tests/CMakeFiles/sflow_test.dir/sflow/sampler_test.cpp.o" "gcc" "tests/CMakeFiles/sflow_test.dir/sflow/sampler_test.cpp.o.d"
  "/root/repo/tests/sflow/trace_test.cpp" "tests/CMakeFiles/sflow_test.dir/sflow/trace_test.cpp.o" "gcc" "tests/CMakeFiles/sflow_test.dir/sflow/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sflow/CMakeFiles/ixpscope_sflow.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/ixpscope_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ixpscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
