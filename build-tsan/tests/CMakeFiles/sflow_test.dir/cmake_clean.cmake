file(REMOVE_RECURSE
  "CMakeFiles/sflow_test.dir/sflow/codec_fuzz_test.cpp.o"
  "CMakeFiles/sflow_test.dir/sflow/codec_fuzz_test.cpp.o.d"
  "CMakeFiles/sflow_test.dir/sflow/collector_test.cpp.o"
  "CMakeFiles/sflow_test.dir/sflow/collector_test.cpp.o.d"
  "CMakeFiles/sflow_test.dir/sflow/datagram_test.cpp.o"
  "CMakeFiles/sflow_test.dir/sflow/datagram_test.cpp.o.d"
  "CMakeFiles/sflow_test.dir/sflow/frame_test.cpp.o"
  "CMakeFiles/sflow_test.dir/sflow/frame_test.cpp.o.d"
  "CMakeFiles/sflow_test.dir/sflow/headers_test.cpp.o"
  "CMakeFiles/sflow_test.dir/sflow/headers_test.cpp.o.d"
  "CMakeFiles/sflow_test.dir/sflow/ipv6_test.cpp.o"
  "CMakeFiles/sflow_test.dir/sflow/ipv6_test.cpp.o.d"
  "CMakeFiles/sflow_test.dir/sflow/sampler_test.cpp.o"
  "CMakeFiles/sflow_test.dir/sflow/sampler_test.cpp.o.d"
  "CMakeFiles/sflow_test.dir/sflow/trace_test.cpp.o"
  "CMakeFiles/sflow_test.dir/sflow/trace_test.cpp.o.d"
  "sflow_test"
  "sflow_test.pdb"
  "sflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
