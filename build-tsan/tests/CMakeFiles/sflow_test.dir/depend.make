# Empty dependencies file for sflow_test.
# This may be replaced when dependencies are built.
