
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dns/name_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/name_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/name_test.cpp.o.d"
  "/root/repo/tests/dns/public_suffix_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/public_suffix_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/public_suffix_test.cpp.o.d"
  "/root/repo/tests/dns/resolver_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/resolver_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/resolver_test.cpp.o.d"
  "/root/repo/tests/dns/uri_edge_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/uri_edge_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/uri_edge_test.cpp.o.d"
  "/root/repo/tests/dns/uri_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/uri_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/uri_test.cpp.o.d"
  "/root/repo/tests/dns/zone_db_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/zone_db_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/zone_db_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/dns/CMakeFiles/ixpscope_dns.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/ixpscope_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ixpscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
