file(REMOVE_RECURSE
  "CMakeFiles/dns_test.dir/dns/name_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/name_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns/public_suffix_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/public_suffix_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns/resolver_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/resolver_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns/uri_edge_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/uri_edge_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns/uri_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/uri_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns/zone_db_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/zone_db_test.cpp.o.d"
  "dns_test"
  "dns_test.pdb"
  "dns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
