file(REMOVE_RECURSE
  "CMakeFiles/analysis_test.dir/analysis/attribution_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/attribution_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/blind_spots_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/blind_spots_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/case_studies_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/case_studies_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/churn_tracker_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/churn_tracker_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/heterogeneity_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/heterogeneity_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/weekly_delta_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/weekly_delta_test.cpp.o.d"
  "analysis_test"
  "analysis_test.pdb"
  "analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
