# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/dns_test[1]_include.cmake")
include("/root/repo/build/tests/x509_test[1]_include.cmake")
include("/root/repo/build/tests/sflow_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/classify_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_engine_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
