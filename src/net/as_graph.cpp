#include "net/as_graph.hpp"

#include <algorithm>
#include <deque>

namespace ixp::net {

void AsGraph::add_as(Asn asn) { adjacency_.try_emplace(asn); }

void AsGraph::add_link(Asn a, Asn b) {
  if (a == b) return;
  auto& la = adjacency_[a];
  auto& lb = adjacency_[b];
  if (std::find(la.begin(), la.end(), b) != la.end()) return;
  la.push_back(b);
  lb.push_back(a);
  ++link_count_;
}

bool AsGraph::contains(Asn asn) const { return adjacency_.count(asn) > 0; }

const std::vector<Asn>& AsGraph::neighbors(Asn asn) const {
  static const std::vector<Asn> kEmpty;
  const auto it = adjacency_.find(asn);
  return it == adjacency_.end() ? kEmpty : it->second;
}

std::vector<Asn> AsGraph::all_ases() const {
  std::vector<Asn> out;
  out.reserve(adjacency_.size());
  for (const auto& [asn, links] : adjacency_) out.push_back(asn);
  return out;
}

std::unordered_map<Asn, std::uint32_t> AsGraph::distances_from(
    const std::vector<Asn>& seeds) const {
  std::unordered_map<Asn, std::uint32_t> dist;
  dist.reserve(adjacency_.size());
  std::deque<Asn> queue;
  for (const Asn seed : seeds) {
    if (!contains(seed)) continue;
    if (dist.emplace(seed, 0).second) queue.push_back(seed);
  }
  while (!queue.empty()) {
    const Asn current = queue.front();
    queue.pop_front();
    const std::uint32_t d = dist[current];
    for (const Asn next : neighbors(current)) {
      if (dist.emplace(next, d + 1).second) queue.push_back(next);
    }
  }
  return dist;
}

std::unordered_map<Asn, Locality> AsGraph::classify(
    const std::vector<Asn>& members) const {
  const auto dist = distances_from(members);
  std::unordered_map<Asn, Locality> out;
  out.reserve(adjacency_.size());
  for (const auto& [asn, links] : adjacency_) {
    const auto it = dist.find(asn);
    if (it == dist.end()) {
      out.emplace(asn, Locality::kGlobal);
    } else if (it->second == 0) {
      out.emplace(asn, Locality::kMember);
    } else if (it->second == 1) {
      out.emplace(asn, Locality::kNear);
    } else {
      out.emplace(asn, Locality::kGlobal);
    }
  }
  return out;
}

const char* to_string(Locality locality) noexcept {
  switch (locality) {
    case Locality::kMember: return "A(L)";
    case Locality::kNear: return "A(M)";
    case Locality::kGlobal: return "A(G)";
    case Locality::kUnknown: return "unknown";
  }
  return "unknown";
}

}  // namespace ixp::net
