#include "net/routing_table.hpp"

namespace ixp::net {

void RoutingTable::announce(Ipv4Prefix prefix, Asn origin) {
  trie_.insert(prefix, origin);
}

std::optional<Asn> RoutingTable::origin_of(Ipv4Addr addr) const {
  return trie_.lookup(addr);
}

std::optional<Ipv4Prefix> RoutingTable::prefix_of(Ipv4Addr addr) const {
  const auto hit = trie_.lookup_prefix(addr);
  if (!hit) return std::nullopt;
  return hit->first;
}

std::optional<Route> RoutingTable::route_of(Ipv4Addr addr) const {
  const auto hit = trie_.lookup_prefix(addr);
  if (!hit) return std::nullopt;
  return Route{hit->first, hit->second};
}

std::vector<Route> RoutingTable::routes() const {
  std::vector<Route> out;
  out.reserve(trie_.size());
  trie_.for_each([&out](Ipv4Prefix prefix, Asn origin) {
    out.push_back(Route{prefix, origin});
  });
  return out;
}

}  // namespace ixp::net
