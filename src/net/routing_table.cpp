#include "net/routing_table.hpp"

namespace ixp::net {

void RoutingTable::announce(Ipv4Prefix prefix, Asn origin) {
  lpm_.insert(prefix, Route{prefix, origin});
}

std::optional<Asn> RoutingTable::origin_of(Ipv4Addr addr) const {
  const Route* route = lpm_.lookup_ptr(addr);
  if (!route) return std::nullopt;
  return route->origin;
}

std::optional<Ipv4Prefix> RoutingTable::prefix_of(Ipv4Addr addr) const {
  const Route* route = lpm_.lookup_ptr(addr);
  if (!route) return std::nullopt;
  return route->prefix;
}

std::optional<Route> RoutingTable::route_of(Ipv4Addr addr) const {
  const Route* route = lpm_.lookup_ptr(addr);
  if (!route) return std::nullopt;
  return *route;
}

std::vector<Route> RoutingTable::routes() const {
  std::vector<Route> out;
  out.reserve(lpm_.size());
  lpm_.for_each(
      [&out](Ipv4Prefix, const Route& route) { out.push_back(route); });
  return out;
}

}  // namespace ixp::net
