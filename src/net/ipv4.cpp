#include "net/ipv4.hpp"

#include <array>
#include <charconv>

namespace ixp::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size()) return std::nullopt;
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    std::uint32_t value = 0;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
    // Reject leading zeros like "01" (ambiguous octal notation).
    if (ptr - begin > 1 && *begin == '0') return std::nullopt;
    octets[static_cast<std::size_t>(i)] = value;
    pos = static_cast<std::size_t>(ptr - text.data());
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Addr{static_cast<std::uint8_t>(octets[0]),
                  static_cast<std::uint8_t>(octets[1]),
                  static_cast<std::uint8_t>(octets[2]),
                  static_cast<std::uint8_t>(octets[3])};
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  std::uint32_t length = 0;
  const auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() || length > 32)
    return std::nullopt;
  const Ipv4Prefix prefix{*addr, static_cast<std::uint8_t>(length)};
  // Reject non-canonical input ("10.0.0.1/8"): host bits must be zero.
  if (prefix.network() != *addr) return std::nullopt;
  return prefix;
}

std::string Ipv4Prefix::to_string() const {
  return network().to_string() + "/" + std::to_string(length_);
}

}  // namespace ixp::net
