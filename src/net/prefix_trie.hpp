// Longest-prefix-match containers.
//
// PrefixTrie<T> is a pooled binary trie keyed by Ipv4Prefix: O(length)
// insert/lookup, cache-friendly node storage, no per-node allocation.
// LengthIndexedLpm<T> is the classic alternative (one hash table per prefix
// length, probed longest-first); it exists both as a correctness oracle in
// tests and as the comparison point in the micro-benchmarks (DESIGN.md
// ablation #4).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"

namespace ixp::net {

/// Binary trie over IPv4 prefixes with payloads of type T.
/// Left child = 0 bit, right child = 1 bit, walking from the MSB.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.emplace_back(); }

  /// Inserts or overwrites the payload at `prefix`.
  void insert(Ipv4Prefix prefix, T value) {
    std::uint32_t node = 0;
    const std::uint32_t bits = prefix.network().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      std::uint32_t& child = nodes_[node].child[bit];
      if (child == kNone) {
        child = static_cast<std::uint32_t>(nodes_.size());
        nodes_.emplace_back();
      }
      node = nodes_[node].child[bit];
    }
    if (!nodes_[node].value.has_value()) ++size_;
    nodes_[node].value = std::move(value);
  }

  /// Longest-prefix match: the payload of the most specific prefix
  /// containing `addr`, or nullopt when nothing matches.
  [[nodiscard]] std::optional<T> lookup(Ipv4Addr addr) const {
    const T* found = lookup_ptr(addr);
    return found ? std::optional<T>{*found} : std::nullopt;
  }

  /// Pointer-returning variant for hot paths (no copy). Stable until the
  /// next insert.
  [[nodiscard]] const T* lookup_ptr(Ipv4Addr addr) const {
    std::uint32_t node = 0;
    const T* best = nodes_[0].value ? &*nodes_[0].value : nullptr;
    const std::uint32_t bits = addr.value();
    for (int depth = 0; depth < 32; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = nodes_[node].child[bit];
      if (child == kNone) break;
      node = child;
      if (nodes_[node].value) best = &*nodes_[node].value;
    }
    return best;
  }

  /// Exact-match lookup of a stored prefix.
  [[nodiscard]] const T* find_exact(Ipv4Prefix prefix) const {
    std::uint32_t node = 0;
    const std::uint32_t bits = prefix.network().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = nodes_[node].child[bit];
      if (child == kNone) return nullptr;
      node = child;
    }
    return nodes_[node].value ? &*nodes_[node].value : nullptr;
  }

  /// The most specific stored prefix containing `addr`, with its payload.
  [[nodiscard]] std::optional<std::pair<Ipv4Prefix, T>> lookup_prefix(
      Ipv4Addr addr) const {
    std::uint32_t node = 0;
    std::optional<std::pair<Ipv4Prefix, T>> best;
    if (nodes_[0].value) best = {Ipv4Prefix{Ipv4Addr{0}, 0}, *nodes_[0].value};
    const std::uint32_t bits = addr.value();
    for (int depth = 0; depth < 32; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = nodes_[node].child[bit];
      if (child == kNone) break;
      node = child;
      if (nodes_[node].value) {
        const auto len = static_cast<std::uint8_t>(depth + 1);
        best = {Ipv4Prefix{addr, len}, *nodes_[node].value};
      }
    }
    return best;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Visits every stored (prefix, payload) pair in lexicographic order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(0, 0u, 0, fn);
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Node {
    std::uint32_t child[2] = {kNone, kNone};
    std::optional<T> value;
  };

  template <typename Fn>
  void walk(std::uint32_t node, std::uint32_t bits, std::uint8_t depth,
            Fn& fn) const {
    if (nodes_[node].value)
      fn(Ipv4Prefix{Ipv4Addr{bits}, depth}, *nodes_[node].value);
    for (int bit = 0; bit < 2; ++bit) {
      const std::uint32_t child = nodes_[node].child[bit];
      if (child == kNone) continue;
      const std::uint32_t child_bits =
          bits | (static_cast<std::uint32_t>(bit) << (31 - depth));
      walk(child, child_bits, static_cast<std::uint8_t>(depth + 1), fn);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

/// Reference LPM: one hash table per prefix length, probed from /32 down.
/// Simple and obviously correct; slower on sparse tables.
template <typename T>
class LengthIndexedLpm {
 public:
  void insert(Ipv4Prefix prefix, T value) {
    auto [it, inserted] =
        tables_[prefix.length()].insert_or_assign(prefix.network().value(),
                                                  std::move(value));
    (void)it;
    if (inserted) ++size_;
    if (prefix.length() > max_length_) max_length_ = prefix.length();
  }

  [[nodiscard]] std::optional<T> lookup(Ipv4Addr addr) const {
    for (int length = max_length_; length >= 0; --length) {
      const auto& table = tables_[static_cast<std::size_t>(length)];
      if (table.empty()) continue;
      const std::uint32_t mask =
          length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
      const auto it = table.find(addr.value() & mask);
      if (it != table.end()) return it->second;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  std::unordered_map<std::uint32_t, T> tables_[33];
  std::size_t size_ = 0;
  int max_length_ = 0;
};

}  // namespace ixp::net
