// FlatLpm<T> — a DIR-24-8-style flattened longest-prefix-match table.
//
// The pooled binary trie (PrefixTrie) answers a lookup by walking up to
// 32 dependent child pointers; on a RouteViews-sized table that is a
// dozen-plus dependent cache misses per address. FlatLpm trades memory
// for memory-level parallelism: a direct-indexed 2^24 top array answers
// every prefix of length <= 24 with ONE array load, and a /24 slot that
// contains any more-specific route points at a 256-entry spill block
// resolved by the low address byte — so a lookup is one or two array
// loads, never a pointer chase. This is the layout of DIR-24-8 (Gupta,
// Lin, McKeown, INFOCOM '98), which real routers used for exactly the
// workload the paper's pipeline has: build rarely, look up per sample.
//
// Inserts are incremental (no rebuild): an insert of /L overwrites a
// covered entry only when the entry's current match is no longer than L,
// which the table decides by consulting the matched prefix's stored
// length — the classic DIR-24-8 update rule. Re-inserting an existing
// prefix overwrites its payload in place and touches no table entries.
//
// Thread model: identical to PrefixTrie — concurrent lookups are safe,
// inserts require exclusive access.
//
// PrefixTrie and LengthIndexedLpm remain in the tree as correctness
// oracles (DESIGN.md ablation #4); the randomized differential test in
// tests/net/flat_lpm_test.cpp holds all three to identical answers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"

namespace ixp::net {

template <typename T>
class FlatLpm {
 public:
  FlatLpm() = default;

  /// Inserts or overwrites the payload at `prefix`. First insert
  /// allocates the 64 MiB top array; an empty table costs nothing.
  void insert(Ipv4Prefix prefix, T value) {
    if (top_.empty()) top_.assign(kTopSlots, kNoMatch);

    const auto exact = exact_.find(prefix);
    if (exact != exact_.end()) {
      // Same prefix re-announced: every table entry already points at
      // this payload slot, so overwriting the slot updates them all.
      values_[exact->second] = std::move(value);
      return;
    }
    const auto index = static_cast<std::uint32_t>(values_.size());
    values_.push_back(std::move(value));
    prefixes_.push_back(prefix);
    exact_.emplace(prefix, index);

    const std::uint32_t net = prefix.network().value();
    const std::uint8_t len = prefix.length();
    if (len <= 24) {
      const std::uint32_t first = net >> 8;
      const std::uint32_t count = 1u << (24 - len);
      for (std::uint32_t slot = first; slot < first + count; ++slot) {
        std::uint32_t& entry = top_[slot];
        if (entry & kSpillBit) {
          // The slot fans out: apply the overwrite rule per spill entry.
          const std::size_t base =
              static_cast<std::size_t>(entry & ~kSpillBit) << 8;
          for (std::size_t i = 0; i < kSpillEntries; ++i) {
            std::uint32_t& spilled = spill_[base + i];
            if (covers(spilled, len)) spilled = index;
          }
        } else if (covers(entry, len)) {
          entry = index;
        }
      }
    } else {
      const std::uint32_t slot = net >> 8;
      std::uint32_t& entry = top_[slot];
      if (!(entry & kSpillBit)) {
        // Fan the slot out, seeding every spill entry with the current
        // best <= /24 match (possibly "none").
        const auto block = static_cast<std::uint32_t>(spill_.size() >> 8);
        spill_.insert(spill_.end(), kSpillEntries, entry);
        entry = kSpillBit | block;
      }
      const std::size_t base = static_cast<std::size_t>(entry & ~kSpillBit)
                               << 8;
      const std::uint32_t first = net & 0xFFu;
      const std::uint32_t count = 1u << (32 - len);
      for (std::uint32_t i = first; i < first + count; ++i) {
        std::uint32_t& spilled = spill_[base + i];
        if (covers(spilled, len)) spilled = index;
      }
    }
  }

  /// Longest-prefix match, pointer form: one top-array load, plus one
  /// spill load when the /24 slot holds any more-specific route. Stable
  /// until the next insert.
  [[nodiscard]] const T* lookup_ptr(Ipv4Addr addr) const noexcept {
    const std::uint32_t entry = slot_of(addr);
    return entry == kNoMatch ? nullptr : &values_[entry];
  }

  [[nodiscard]] std::optional<T> lookup(Ipv4Addr addr) const {
    const T* found = lookup_ptr(addr);
    return found ? std::optional<T>{*found} : std::nullopt;
  }

  /// The most specific stored prefix containing `addr`, with its payload.
  [[nodiscard]] std::optional<std::pair<Ipv4Prefix, T>> lookup_prefix(
      Ipv4Addr addr) const {
    const std::uint32_t entry = slot_of(addr);
    if (entry == kNoMatch) return std::nullopt;
    return std::pair<Ipv4Prefix, T>{prefixes_[entry], values_[entry]};
  }

  /// Exact-match lookup of a stored prefix.
  [[nodiscard]] const T* find_exact(Ipv4Prefix prefix) const {
    const auto it = exact_.find(prefix);
    return it == exact_.end() ? nullptr : &values_[it->second];
  }

  /// Batched lookup: out[i] = lookup_ptr(addrs[i]), with the top-array
  /// lines prefetched a window ahead and spill blocks prefetched as soon
  /// as a staged top entry reveals one — the loads of consecutive
  /// addresses overlap instead of serializing. Requires
  /// out.size() >= addrs.size().
  void lookup_batch(std::span<const Ipv4Addr> addrs,
                    std::span<const T*> out) const noexcept {
    const std::size_t n = addrs.size();
    if (top_.empty()) {
      std::fill_n(out.begin(), n, nullptr);
      return;
    }
    // Stage distance: top entries are loaded kStage iterations early so
    // a spill block's line is already in flight when its turn comes.
    constexpr std::size_t kStage = 8;
    constexpr std::size_t kTopAhead = 16;  // prefetch distance, top array
    std::uint32_t staged[kStage];

    const auto stage = [&](std::size_t j) noexcept {
      const std::uint32_t entry = top_[addrs[j].value() >> 8];
      staged[j % kStage] = entry;
      if (entry & kSpillBit)
        __builtin_prefetch(
            &spill_[(static_cast<std::size_t>(entry & ~kSpillBit) << 8) |
                    (addrs[j].value() & 0xFFu)]);
    };

    const std::size_t lead = std::min(kStage, n);
    for (std::size_t j = 0; j < lead; ++j) {
      if (j + kTopAhead < n)
        __builtin_prefetch(&top_[addrs[j + kTopAhead].value() >> 8]);
      stage(j);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kTopAhead < n)
        __builtin_prefetch(&top_[addrs[i + kTopAhead].value() >> 8]);
      std::uint32_t entry = staged[i % kStage];
      if (i + kStage < n) stage(i + kStage);  // reuses the slot just read
      if (entry & kSpillBit)
        entry = spill_[(static_cast<std::size_t>(entry & ~kSpillBit) << 8) |
                       (addrs[i].value() & 0xFFu)];
      out[i] = entry == kNoMatch ? nullptr : &values_[entry];
    }
  }

  /// Distinct stored prefixes.
  [[nodiscard]] std::size_t size() const noexcept { return exact_.size(); }

  /// Spill blocks allocated (each 256 entries = 1 KiB).
  [[nodiscard]] std::size_t spill_blocks() const noexcept {
    return spill_.size() >> 8;
  }

  /// Bytes held by the table arrays (top + spill + payload pool).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return top_.size() * sizeof(std::uint32_t) +
           spill_.size() * sizeof(std::uint32_t) +
           values_.size() * sizeof(T) + prefixes_.size() * sizeof(Ipv4Prefix);
  }

  /// Visits every stored (prefix, payload) pair ordered by
  /// (network, length) — the same order PrefixTrie::for_each yields.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::vector<std::uint32_t> order(values_.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                const Ipv4Prefix& pa = prefixes_[a];
                const Ipv4Prefix& pb = prefixes_[b];
                if (pa.network() != pb.network())
                  return pa.network() < pb.network();
                return pa.length() < pb.length();
              });
    for (const std::uint32_t i : order) fn(prefixes_[i], values_[i]);
  }

 private:
  static constexpr std::size_t kTopSlots = 1u << 24;
  static constexpr std::size_t kSpillEntries = 256;
  /// Entry encoding: kNoMatch = no covering prefix; high bit set = spill
  /// block index (top array only); otherwise a payload index.
  static constexpr std::uint32_t kNoMatch = 0x7FFFFFFFu;
  static constexpr std::uint32_t kSpillBit = 0x80000000u;

  /// May a /`len` insert overwrite `entry`? Yes when the entry is empty
  /// or its current match is no more specific. (Equal length implies the
  /// same prefix over any shared range, and distinct prefixes reach here
  /// — exact re-inserts short-circuit in insert().)
  [[nodiscard]] bool covers(std::uint32_t entry,
                            std::uint8_t len) const noexcept {
    return entry == kNoMatch || prefixes_[entry].length() <= len;
  }

  /// Resolves an address to a payload index, or kNoMatch.
  [[nodiscard]] std::uint32_t slot_of(Ipv4Addr addr) const noexcept {
    if (top_.empty()) return kNoMatch;
    std::uint32_t entry = top_[addr.value() >> 8];
    if (entry & kSpillBit)
      entry = spill_[(static_cast<std::size_t>(entry & ~kSpillBit) << 8) |
                     (addr.value() & 0xFFu)];
    return entry;
  }

  std::vector<std::uint32_t> top_;    // 2^24 entries, lazily allocated
  std::vector<std::uint32_t> spill_;  // 256-entry blocks for /25–/32
  std::vector<T> values_;             // payload pool, indexed by entries
  std::vector<Ipv4Prefix> prefixes_;  // parallel: matched prefix + length
  std::unordered_map<Ipv4Prefix, std::uint32_t> exact_;  // prefix -> index
};

}  // namespace ixp::net
