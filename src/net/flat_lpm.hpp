// FlatLpm<T> — a DIR-24-8-style flattened longest-prefix-match table.
//
// The pooled binary trie (PrefixTrie) answers a lookup by walking up to
// 32 dependent child pointers; on a RouteViews-sized table that is a
// dozen-plus dependent cache misses per address. FlatLpm trades memory
// for memory-level parallelism: a direct-indexed 2^24 top array answers
// every prefix of length <= 24 with ONE array load, and a /24 slot that
// contains any more-specific route points at a 256-entry spill block
// resolved by the low address byte — so a lookup is one or two array
// loads, never a pointer chase. This is the layout of DIR-24-8 (Gupta,
// Lin, McKeown, INFOCOM '98), which real routers used for exactly the
// workload the paper's pipeline has: build rarely, look up per sample.
//
// Memory layout (DESIGN.md §14): the 64 MiB top array is backed by
// util::HugeArray — explicit or transparent huge pages when the host
// grants them, 4 KiB pages otherwise. On hosts where huge pages never
// materialize (most VMs), random top-array loads miss the TLB almost
// every time, so a small direct-mapped RESULT CACHE sits in front of the
// table: 2^15 slots x 8 bytes = 256 KiB, resident in L2 and a handful of
// TLB entries. Each slot packs (addr:32 | epoch:8 | entry:24) into one
// relaxed std::atomic<uint64_t>, making concurrent lookups race-free: a
// reader either sees a whole valid word or misses. Inserts invalidate by
// bumping the epoch byte (full clear on wrap), so stale hits are
// impossible; the cache disables itself in the (absurd) case of 2^24-1
// payloads, where an index no longer fits its 24 bits. Sampled traffic
// concentrates on popular prefixes, so attribution batches hit the cache
// for a fraction of the cost of a page-walking table load.
//
// Inserts are incremental (no rebuild): an insert of /L overwrites a
// covered entry only when the entry's current match is no longer than L,
// which the table decides by consulting the matched prefix's stored
// length — the classic DIR-24-8 update rule. Re-inserting an existing
// prefix overwrites its payload in place and touches no table entries.
// reserve() pre-sizes the payload pools from a prefix-count hint so a
// RouteViews-sized build does not grow vectors hundreds of times.
//
// Thread model: identical to PrefixTrie — concurrent lookups are safe
// (the result cache is atomic), inserts require exclusive access.
//
// PrefixTrie and LengthIndexedLpm remain in the tree as correctness
// oracles (DESIGN.md ablation #4); the randomized differential test in
// tests/net/flat_lpm_test.cpp holds all three to identical answers.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"
#include "util/flat_hash_map.hpp"
#include "util/huge_array.hpp"

namespace ixp::net {

template <typename T>
class FlatLpm {
 public:
  FlatLpm() = default;

  /// Pre-sizes the pools for `expected` prefixes: payloads, prefixes,
  /// the exact-match index, and the spill pool (routing-table mixes put
  /// ~5% of prefixes at /25–/32; each can fan a fresh /24 slot into a
  /// 256-entry block, and nearly all land in distinct slots).
  void reserve(std::size_t expected) {
    values_.reserve(expected);
    prefixes_.reserve(expected);
    exact_.reserve(expected);
    spill_.reserve(expected / 16 * kSpillEntries);
  }

  /// Inserts or overwrites the payload at `prefix`. First insert
  /// allocates the 64 MiB top array; an empty table costs nothing.
  void insert(Ipv4Prefix prefix, T value) {
    if (top_.empty()) {
      top_ = util::HugeArray<std::uint32_t>(kTopSlots, kNoMatch);
      cache_.reset(new std::atomic<std::uint64_t>[kCacheSlots]());
    }
    invalidate_cache();

    const auto exact = exact_.find(prefix);
    if (exact != exact_.end()) {
      // Same prefix re-announced: every table entry already points at
      // this payload slot, so overwriting the slot updates them all.
      values_[exact->second] = std::move(value);
      return;
    }
    const auto index = static_cast<std::uint32_t>(values_.size());
    values_.push_back(std::move(value));
    prefixes_.push_back(prefix);
    exact_.try_emplace(prefix, index);
    // A payload index must fit the cache's 24 entry bits; past that the
    // cache turns itself off rather than alias indices.
    if (values_.size() >= kCacheNoMatch) cache_.reset();

    const std::uint32_t net = prefix.network().value();
    const std::uint8_t len = prefix.length();
    if (len <= 24) {
      const std::uint32_t first = net >> 8;
      const std::uint32_t count = 1u << (24 - len);
      for (std::uint32_t slot = first; slot < first + count; ++slot) {
        std::uint32_t& entry = top_[slot];
        if (entry & kSpillBit) {
          // The slot fans out: apply the overwrite rule per spill entry.
          const std::size_t base =
              static_cast<std::size_t>(entry & ~kSpillBit) << 8;
          for (std::size_t i = 0; i < kSpillEntries; ++i) {
            std::uint32_t& spilled = spill_[base + i];
            if (covers(spilled, len)) spilled = index;
          }
        } else if (covers(entry, len)) {
          entry = index;
        }
      }
    } else {
      const std::uint32_t slot = net >> 8;
      std::uint32_t& entry = top_[slot];
      if (!(entry & kSpillBit)) {
        // Fan the slot out, seeding every spill entry with the current
        // best <= /24 match (possibly "none").
        const auto block = static_cast<std::uint32_t>(spill_.size() >> 8);
        spill_.insert(spill_.end(), kSpillEntries, entry);
        entry = kSpillBit | block;
      }
      const std::size_t base = static_cast<std::size_t>(entry & ~kSpillBit)
                               << 8;
      const std::uint32_t first = net & 0xFFu;
      const std::uint32_t count = 1u << (32 - len);
      for (std::uint32_t i = first; i < first + count; ++i) {
        std::uint32_t& spilled = spill_[base + i];
        if (covers(spilled, len)) spilled = index;
      }
    }
  }

  /// Longest-prefix match, pointer form: one result-cache probe, falling
  /// back to one top-array load plus one spill load when the /24 slot
  /// holds any more-specific route. Stable until the next insert.
  [[nodiscard]] const T* lookup_ptr(Ipv4Addr addr) const noexcept {
    const std::uint32_t entry = cached_slot_of(addr);
    return entry == kNoMatch ? nullptr : &values_[entry];
  }

  [[nodiscard]] std::optional<T> lookup(Ipv4Addr addr) const {
    const T* found = lookup_ptr(addr);
    return found ? std::optional<T>{*found} : std::nullopt;
  }

  /// The most specific stored prefix containing `addr`, with its payload.
  [[nodiscard]] std::optional<std::pair<Ipv4Prefix, T>> lookup_prefix(
      Ipv4Addr addr) const {
    const std::uint32_t entry = cached_slot_of(addr);
    if (entry == kNoMatch) return std::nullopt;
    return std::pair<Ipv4Prefix, T>{prefixes_[entry], values_[entry]};
  }

  /// Exact-match lookup of a stored prefix.
  [[nodiscard]] const T* find_exact(Ipv4Prefix prefix) const {
    const auto it = exact_.find(prefix);
    return it == exact_.end() ? nullptr : &values_[it->second];
  }

  /// Batched lookup: out[i] = lookup_ptr(addrs[i]). Runs in chunks of
  /// two passes: a result-cache sweep that resolves hits and prefetches
  /// the top-array lines of the misses, then a software-pipelined table
  /// walk over the misses alone (spill blocks prefetched a stage ahead),
  /// which also refills the cache. Requires out.size() >= addrs.size().
  void lookup_batch(std::span<const Ipv4Addr> addrs,
                    std::span<const T*> out) const noexcept {
    const std::size_t n = addrs.size();
    if (top_.empty()) {
      std::fill_n(out.begin(), n, nullptr);
      return;
    }
    if (!cache_) {
      walk_range(addrs, out);
      return;
    }
    const std::uint8_t epoch = cache_epoch_;
    std::uint16_t miss[kChunk];
    for (std::size_t base = 0; base < n; base += kChunk) {
      const std::size_t m = std::min(kChunk, n - base);
      std::size_t misses = 0;
      for (std::size_t i = 0; i < m; ++i) {
        const std::uint32_t addr = addrs[base + i].value();
        const std::uint64_t word =
            cache_[cache_slot(addr)].load(std::memory_order_relaxed);
        if ((word >> 32) == addr &&
            static_cast<std::uint8_t>(word >> 24) == epoch) {
          const std::uint32_t entry =
              static_cast<std::uint32_t>(word) & kCacheNoMatch;
          out[base + i] = entry == kCacheNoMatch ? nullptr : &values_[entry];
        } else {
          miss[misses++] = static_cast<std::uint16_t>(i);
        }
      }
      walk_misses(addrs, out, base, miss, misses);
    }
  }

  /// Distinct stored prefixes.
  [[nodiscard]] std::size_t size() const noexcept { return exact_.size(); }

  /// Spill blocks allocated (each 256 entries = 1 KiB).
  [[nodiscard]] std::size_t spill_blocks() const noexcept {
    return spill_.size() >> 8;
  }

  /// Bytes held by the table arrays (top + spill + payload pool + cache).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return top_.size() * sizeof(std::uint32_t) +
           spill_.size() * sizeof(std::uint32_t) +
           values_.size() * sizeof(T) + prefixes_.size() * sizeof(Ipv4Prefix) +
           (cache_ ? kCacheSlots * sizeof(std::uint64_t) : 0);
  }

  /// What backs the top array (huge pages or the 4 KiB fallback).
  [[nodiscard]] util::PageBacking top_backing() const noexcept {
    return top_.backing();
  }

  /// Visits every stored (prefix, payload) pair ordered by
  /// (network, length) — the same order PrefixTrie::for_each yields.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::vector<std::uint32_t> order(values_.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                const Ipv4Prefix& pa = prefixes_[a];
                const Ipv4Prefix& pb = prefixes_[b];
                if (pa.network() != pb.network())
                  return pa.network() < pb.network();
                return pa.length() < pb.length();
              });
    for (const std::uint32_t i : order) fn(prefixes_[i], values_[i]);
  }

 private:
  static constexpr std::size_t kTopSlots = 1u << 24;
  static constexpr std::size_t kSpillEntries = 256;
  /// Entry encoding: kNoMatch = no covering prefix; high bit set = spill
  /// block index (top array only); otherwise a payload index.
  static constexpr std::uint32_t kNoMatch = 0x7FFFFFFFu;
  static constexpr std::uint32_t kSpillBit = 0x80000000u;

  // Result cache: direct-mapped, 2^15 slots, one 64-bit word each —
  // (addr:32 | epoch:8 | entry:24). Epoch 0 never becomes current, so
  // zero-initialized slots can never fake a hit.
  static constexpr std::size_t kCacheBits = 15;
  static constexpr std::size_t kCacheSlots = std::size_t{1} << kCacheBits;
  static constexpr std::uint32_t kCacheNoMatch = 0x00FFFFFFu;
  /// lookup_batch chunk: bounds the on-stack miss list and keeps the
  /// cache-probe pass and the walk pass within one L1 working set.
  static constexpr std::size_t kChunk = 1024;

  /// May a /`len` insert overwrite `entry`? Yes when the entry is empty
  /// or its current match is no more specific. (Equal length implies the
  /// same prefix over any shared range, and distinct prefixes reach here
  /// — exact re-inserts short-circuit in insert().)
  [[nodiscard]] bool covers(std::uint32_t entry,
                            std::uint8_t len) const noexcept {
    return entry == kNoMatch || prefixes_[entry].length() <= len;
  }

  [[nodiscard]] static std::size_t cache_slot(std::uint32_t addr) noexcept {
    return static_cast<std::size_t>(
        (addr * 0x9e3779b97f4a7c15ULL) >> (64 - kCacheBits));
  }

  /// Writes one cache word. Callers that fill in bulk mark the cache
  /// touched once via mark_touched() instead of per word.
  void cache_fill(std::uint32_t addr, std::uint32_t entry) const noexcept {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(addr) << 32) |
        (static_cast<std::uint64_t>(cache_epoch_) << 24) |
        (entry == kNoMatch ? kCacheNoMatch : entry);
    cache_[cache_slot(addr)].store(packed, std::memory_order_relaxed);
  }

  void mark_touched() const noexcept {
    if (!cache_touched_.load(std::memory_order_relaxed))
      cache_touched_.store(true, std::memory_order_relaxed);
  }

  /// Insert-side invalidation: bump the epoch byte (all cached words go
  /// stale at once), hard-clearing only on wrap so the amortized cost is
  /// one 256 KiB sweep per 255 insert bursts. Skipped entirely while no
  /// lookup has touched the cache — a bulk build pays nothing.
  void invalidate_cache() noexcept {
    if (!cache_ || !cache_touched_.load(std::memory_order_relaxed)) return;
    if (++cache_epoch_ == 0) {
      for (std::size_t i = 0; i < kCacheSlots; ++i)
        cache_[i].store(0, std::memory_order_relaxed);
      cache_epoch_ = 1;
    }
    cache_touched_.store(false, std::memory_order_relaxed);
  }

  /// Uncached resolve: one top load, one spill load when fanned out.
  [[nodiscard]] std::uint32_t slot_of(Ipv4Addr addr) const noexcept {
    if (top_.empty()) return kNoMatch;
    std::uint32_t entry = top_[addr.value() >> 8];
    if (entry & kSpillBit)
      entry = spill_[(static_cast<std::size_t>(entry & ~kSpillBit) << 8) |
                     (addr.value() & 0xFFu)];
    return entry;
  }

  /// Cache-probing resolve used by the scalar lookup forms. Read-only:
  /// a hit rides whatever lookup_batch last filled, but a miss walks the
  /// table without refilling — the scalar forms are the cold minority,
  /// and skipping the fill keeps them from dirtying cache lines (and
  /// paying the store) on workloads that never repeat an address.
  [[nodiscard]] std::uint32_t cached_slot_of(Ipv4Addr a) const noexcept {
    if (!cache_) return slot_of(a);
    const std::uint32_t addr = a.value();
    const std::uint64_t word =
        cache_[cache_slot(addr)].load(std::memory_order_relaxed);
    if ((word >> 32) == addr &&
        static_cast<std::uint8_t>(word >> 24) == cache_epoch_) {
      const std::uint32_t entry =
          static_cast<std::uint32_t>(word) & kCacheNoMatch;
      return entry == kCacheNoMatch ? kNoMatch : entry;
    }
    return slot_of(a);
  }

  /// The software-pipelined whole-range walk (cache disabled): top
  /// entries are staged kStage iterations early so a spill block's line
  /// is already in flight when its turn comes, and top lines prefetched
  /// kTopAhead ahead of the stage.
  void walk_range(std::span<const Ipv4Addr> addrs,
                  std::span<const T*> out) const noexcept {
    const std::size_t n = addrs.size();
    constexpr std::size_t kStage = 8;
    constexpr std::size_t kTopAhead = 16;
    std::uint32_t staged[kStage];

    const auto stage = [&](std::size_t j) noexcept {
      const std::uint32_t entry = top_[addrs[j].value() >> 8];
      staged[j % kStage] = entry;
      if (entry & kSpillBit)
        __builtin_prefetch(
            &spill_[(static_cast<std::size_t>(entry & ~kSpillBit) << 8) |
                    (addrs[j].value() & 0xFFu)]);
    };

    const std::size_t lead = std::min(kStage, n);
    for (std::size_t j = 0; j < lead; ++j) {
      if (j + kTopAhead < n)
        __builtin_prefetch(&top_[addrs[j + kTopAhead].value() >> 8]);
      stage(j);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kTopAhead < n)
        __builtin_prefetch(&top_[addrs[i + kTopAhead].value() >> 8]);
      std::uint32_t entry = staged[i % kStage];
      if (i + kStage < n) stage(i + kStage);  // reuses the slot just read
      if (entry & kSpillBit)
        entry = spill_[(static_cast<std::size_t>(entry & ~kSpillBit) << 8) |
                       (addrs[i].value() & 0xFFu)];
      out[i] = entry == kNoMatch ? nullptr : &values_[entry];
    }
  }

  /// The same pipeline over one chunk's cache misses (indices `miss[0..k)`
  /// relative to `base`): top lines prefetched kTopAhead entries before
  /// the stage reads them, spill lines a stage before resolution. The
  /// probe pass must NOT prefetch — a near-all-miss chunk would issue a
  /// thousand prefetches at once, overflow the prefetch queue, and have
  /// them silently dropped; bounded lookahead here keeps them in flight.
  void walk_misses(std::span<const Ipv4Addr> addrs, std::span<const T*> out,
                   std::size_t base, const std::uint16_t* miss,
                   std::size_t k) const noexcept {
    constexpr std::size_t kStage = 8;
    constexpr std::size_t kTopAhead = 16;
    std::uint32_t staged[kStage];
    if (k > 0) mark_touched();

    const auto top_prefetch = [&](std::size_t j) noexcept {
      if (j + kTopAhead < k)
        __builtin_prefetch(&top_[addrs[base + miss[j + kTopAhead]].value() >> 8]);
    };

    const auto stage = [&](std::size_t j) noexcept {
      const std::uint32_t addr = addrs[base + miss[j]].value();
      const std::uint32_t entry = top_[addr >> 8];
      staged[j % kStage] = entry;
      if (entry & kSpillBit)
        __builtin_prefetch(
            &spill_[(static_cast<std::size_t>(entry & ~kSpillBit) << 8) |
                    (addr & 0xFFu)]);
    };

    const std::size_t lead = std::min(kStage, k);
    for (std::size_t j = 0; j < lead; ++j) {
      top_prefetch(j);
      stage(j);
    }
    for (std::size_t i = 0; i < k; ++i) {
      top_prefetch(i + kStage);
      std::uint32_t entry = staged[i % kStage];
      if (i + kStage < k) stage(i + kStage);
      const std::size_t at = base + miss[i];
      const std::uint32_t addr = addrs[at].value();
      if (entry & kSpillBit)
        entry = spill_[(static_cast<std::size_t>(entry & ~kSpillBit) << 8) |
                       (addr & 0xFFu)];
      out[at] = entry == kNoMatch ? nullptr : &values_[entry];
      cache_fill(addr, entry);
    }
  }

  util::HugeArray<std::uint32_t> top_;  // 2^24 entries, lazily allocated
  std::vector<std::uint32_t> spill_;    // 256-entry blocks for /25–/32
  std::vector<T> values_;               // payload pool, indexed by entries
  std::vector<Ipv4Prefix> prefixes_;    // parallel: matched prefix + length
  util::FlatHashMap<Ipv4Prefix, std::uint32_t> exact_;  // prefix -> index
  // Result cache (mutable: lookups fill it; atomic: lookups race safely).
  mutable std::unique_ptr<std::atomic<std::uint64_t>[]> cache_;
  mutable std::atomic<bool> cache_touched_{false};
  std::uint8_t cache_epoch_ = 1;
};

}  // namespace ixp::net
