// BGP table dump import/export.
//
// The paper leans on "publicly available BGP-based data ... collected on
// an ongoing basis by RouteViews, RIPE RIS, Team Cymru" to define the set
// of actively routed prefixes and ASes. This module provides a plain-text
// table-dump format so routing tables can be shipped between runs or
// sourced from converted real dumps:
//
//   # ixpscope-bgp v1
//   <prefix> <origin-asn>
//   10.4.0.0/16 64500
//
// Lines starting with '#' are comments; malformed lines are counted and
// skipped (real dump pipelines are never pristine).
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "net/routing_table.hpp"

namespace ixp::net {

/// Writes every route in lexicographic prefix order. Returns the number
/// of routes written.
std::size_t write_bgp_dump(std::ostream& out, const RoutingTable& table);

struct BgpDumpStats {
  std::size_t routes = 0;    // accepted announcements
  std::size_t skipped = 0;   // malformed lines
  std::size_t comments = 0;  // comment/blank lines
};

/// Parses a dump into `table` (announcing on top of existing routes).
/// Never throws on malformed content; see the returned stats.
BgpDumpStats read_bgp_dump(std::istream& in, RoutingTable& table);

/// Parses one dump line ("<prefix> <asn>") into a Route.
[[nodiscard]] std::optional<Route> parse_bgp_line(std::string_view line);

}  // namespace ixp::net
