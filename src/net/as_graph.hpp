// AS-level topology graph.
//
// Section 3.2 of the paper partitions all actively routed ASes by AS-hop
// distance from the IXP's member set: A(L) = members, A(M) = distance 1,
// A(G) = distance >= 2. AsGraph stores the undirected AS adjacency
// (BGP-visible links) and computes these locality classes via BFS.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"

namespace ixp::net {

/// Locality of an AS relative to the IXP member set (paper §3.2).
enum class Locality : std::uint8_t {
  kMember,  // A(L): an IXP member AS
  kNear,    // A(M): distance 1 from some member
  kGlobal,  // A(G): distance >= 2
  kUnknown, // not present in the graph
};

/// Undirected AS-level graph with BFS distance queries.
class AsGraph {
 public:
  /// Adds an AS with no links (idempotent).
  void add_as(Asn asn);

  /// Adds an undirected link; both endpoints are added if missing.
  void add_link(Asn a, Asn b);

  [[nodiscard]] bool contains(Asn asn) const;
  [[nodiscard]] std::size_t as_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return link_count_; }
  [[nodiscard]] const std::vector<Asn>& neighbors(Asn asn) const;

  /// All ASes in insertion order.
  [[nodiscard]] std::vector<Asn> all_ases() const;

  /// BFS hop distances from a seed set. Result maps every reachable AS to
  /// its distance (seeds -> 0). Unreachable ASes are absent.
  [[nodiscard]] std::unordered_map<Asn, std::uint32_t> distances_from(
      const std::vector<Asn>& seeds) const;

  /// Partition by locality relative to `members` (paper's A(L)/A(M)/A(G)).
  /// ASes not reachable from the member set are classified kGlobal: from
  /// the vantage point they are "distance >= 2 or unknown", which is
  /// exactly the paper's complement definition.
  [[nodiscard]] std::unordered_map<Asn, Locality> classify(
      const std::vector<Asn>& members) const;

 private:
  std::unordered_map<Asn, std::vector<Asn>> adjacency_;
  std::size_t link_count_ = 0;
};

[[nodiscard]] const char* to_string(Locality locality) noexcept;

}  // namespace ixp::net
