#include "net/bgp_dump.hpp"

#include <charconv>

namespace ixp::net {

std::size_t write_bgp_dump(std::ostream& out, const RoutingTable& table) {
  out << "# ixpscope-bgp v1\n";
  std::size_t written = 0;
  for (const Route& route : table.routes()) {
    out << route.prefix.to_string() << ' ' << route.origin.value() << '\n';
    ++written;
  }
  return written;
}

std::optional<Route> parse_bgp_line(std::string_view line) {
  // Trim trailing CR (dumps often travel through Windows tooling).
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::size_t space = line.find(' ');
  if (space == std::string_view::npos) return std::nullopt;
  const auto prefix = Ipv4Prefix::parse(line.substr(0, space));
  if (!prefix) return std::nullopt;
  std::string_view asn_text = line.substr(space + 1);
  // Tolerate the "AS64500" spelling.
  if (asn_text.size() > 2 && (asn_text[0] == 'A' || asn_text[0] == 'a') &&
      (asn_text[1] == 'S' || asn_text[1] == 's'))
    asn_text.remove_prefix(2);
  std::uint32_t asn = 0;
  const auto [ptr, ec] =
      std::from_chars(asn_text.data(), asn_text.data() + asn_text.size(), asn);
  if (ec != std::errc{} || ptr != asn_text.data() + asn_text.size())
    return std::nullopt;
  return Route{*prefix, Asn{asn}};
}

BgpDumpStats read_bgp_dump(std::istream& in, RoutingTable& table) {
  BgpDumpStats stats;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      ++stats.comments;
      continue;
    }
    if (const auto route = parse_bgp_line(line)) {
      table.announce(route->prefix, route->origin);
      ++stats.routes;
    } else {
      ++stats.skipped;
    }
  }
  return stats;
}

}  // namespace ixp::net
