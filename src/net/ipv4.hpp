// IPv4 value types: addresses and CIDR prefixes.
//
// These are the vocabulary types of the whole library: the generator
// allocates prefixes, the sFlow layer serializes addresses into headers,
// and every analysis keys its maps on Ipv4Addr. Both types are trivially
// copyable 32/64-bit values with total ordering and hashing.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace ixp::net {

/// An IPv4 address as a host-order 32-bit value. "a.b.c.d" has `a` in the
/// most significant byte.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  explicit constexpr Ipv4Addr(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Parses dotted-quad notation; rejects anything malformed.
  [[nodiscard]] static std::optional<Ipv4Addr> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix: network address + length. The network address is always
/// stored canonically (host bits zeroed); the constructor enforces this
/// invariant, so two equal prefixes always compare equal bitwise.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;

  /// Canonicalizes `addr` by masking host bits. Requires length <= 32.
  constexpr Ipv4Prefix(Ipv4Addr addr, std::uint8_t length) noexcept
      : network_(addr.value() & mask_for(length)), length_(length > 32 ? 32 : length) {}

  [[nodiscard]] constexpr Ipv4Addr network() const noexcept {
    return Ipv4Addr{network_};
  }
  [[nodiscard]] constexpr std::uint8_t length() const noexcept { return length_; }
  [[nodiscard]] constexpr std::uint32_t netmask() const noexcept {
    return mask_for(length_);
  }

  /// Number of addresses covered: 2^(32-length).
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return 1ULL << (32 - length_);
  }

  [[nodiscard]] constexpr bool contains(Ipv4Addr addr) const noexcept {
    return (addr.value() & netmask()) == network_;
  }
  [[nodiscard]] constexpr bool contains(Ipv4Prefix other) const noexcept {
    return other.length_ >= length_ && contains(other.network());
  }

  /// The i-th address inside the prefix; requires i < size().
  [[nodiscard]] constexpr Ipv4Addr address_at(std::uint64_t i) const noexcept {
    return Ipv4Addr{network_ + static_cast<std::uint32_t>(i)};
  }

  /// Parses "a.b.c.d/len".
  [[nodiscard]] static std::optional<Ipv4Prefix> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Prefix, Ipv4Prefix) noexcept = default;

 private:
  static constexpr std::uint32_t mask_for(std::uint8_t length) noexcept {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - (length > 32 ? 32 : length));
  }

  std::uint32_t network_ = 0;
  std::uint8_t length_ = 0;
};

/// An Autonomous System Number (32-bit, per RFC 6793).
class Asn {
 public:
  constexpr Asn() = default;
  explicit constexpr Asn(std::uint32_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] std::string to_string() const { return "AS" + std::to_string(value_); }

  friend constexpr auto operator<=>(Asn, Asn) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace ixp::net

template <>
struct std::hash<ixp::net::Ipv4Addr> {
  std::size_t operator()(ixp::net::Ipv4Addr a) const noexcept {
    // Multiplicative mix: addresses are often sequential within prefixes.
    return static_cast<std::size_t>(a.value() * 0x9e3779b97f4a7c15ULL >> 16);
  }
};

template <>
struct std::hash<ixp::net::Ipv4Prefix> {
  std::size_t operator()(ixp::net::Ipv4Prefix p) const noexcept {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(p.network().value()) << 8) | p.length();
    return static_cast<std::size_t>(packed * 0x9e3779b97f4a7c15ULL >> 16);
  }
};

template <>
struct std::hash<ixp::net::Asn> {
  std::size_t operator()(ixp::net::Asn a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
