// Global routing table: the set of actively routed prefixes and their
// origin ASes, as one would assemble from RouteViews/RIPE RIS dumps.
// The vantage-point analyses use it to map observed IPs to prefixes and
// ASes (Table 1, Table 3, Figure 4(c)).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"

namespace ixp::net {

/// One routed prefix with its origin AS.
struct Route {
  Ipv4Prefix prefix;
  Asn origin;
};

/// Longest-prefix-match table of routed prefixes -> origin ASN.
class RoutingTable {
 public:
  /// Announces a prefix. A re-announcement overwrites the origin
  /// (the synthetic Internet has no MOAS conflicts).
  void announce(Ipv4Prefix prefix, Asn origin);

  /// Origin AS of the most specific prefix covering `addr`.
  [[nodiscard]] std::optional<Asn> origin_of(Ipv4Addr addr) const;

  /// The most specific routed prefix covering `addr`.
  [[nodiscard]] std::optional<Ipv4Prefix> prefix_of(Ipv4Addr addr) const;

  /// Both at once (single trie walk) for hot analysis loops.
  [[nodiscard]] std::optional<Route> route_of(Ipv4Addr addr) const;

  [[nodiscard]] std::size_t prefix_count() const noexcept {
    return trie_.size();
  }

  /// All routes in lexicographic prefix order.
  [[nodiscard]] std::vector<Route> routes() const;

 private:
  PrefixTrie<Asn> trie_;
};

}  // namespace ixp::net
