// Global routing table: the set of actively routed prefixes and their
// origin ASes, as one would assemble from RouteViews/RIPE RIS dumps.
// The vantage-point analyses use it to map observed IPs to prefixes and
// ASes (Table 1, Table 3, Figure 4(c)).
//
// Lookups ride on net::FlatLpm (DIR-24-8): one or two array loads per
// address instead of a trie walk. Hot callers should use the pointer
// and batch forms; the optional-returning forms remain for convenience.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/flat_lpm.hpp"
#include "net/ipv4.hpp"

namespace ixp::net {

/// One routed prefix with its origin AS.
struct Route {
  Ipv4Prefix prefix;
  Asn origin;
};

/// Longest-prefix-match table of routed prefixes -> origin ASN.
class RoutingTable {
 public:
  /// Announces a prefix. A re-announcement overwrites the origin
  /// (the synthetic Internet has no MOAS conflicts).
  void announce(Ipv4Prefix prefix, Asn origin);

  /// Origin AS of the most specific prefix covering `addr`.
  [[nodiscard]] std::optional<Asn> origin_of(Ipv4Addr addr) const;

  /// The most specific routed prefix covering `addr`.
  [[nodiscard]] std::optional<Ipv4Prefix> prefix_of(Ipv4Addr addr) const;

  /// Both at once (single table probe) for hot analysis loops.
  [[nodiscard]] std::optional<Route> route_of(Ipv4Addr addr) const;

  /// Pointer forms for per-sample paths: no optional, no copy. Stable
  /// until the next announce.
  [[nodiscard]] const Route* route_ptr(Ipv4Addr addr) const noexcept {
    return lpm_.lookup_ptr(addr);
  }
  [[nodiscard]] const Asn* origin_ptr(Ipv4Addr addr) const noexcept {
    const Route* route = lpm_.lookup_ptr(addr);
    return route ? &route->origin : nullptr;
  }

  /// Batched attribution: out[i] = route_ptr(addrs[i]), with the LPM
  /// arrays software-prefetched ahead. Requires out.size() >= addrs.size().
  void routes_of(std::span<const Ipv4Addr> addrs,
                 std::span<const Route*> out) const noexcept {
    lpm_.lookup_batch(addrs, out);
  }

  [[nodiscard]] std::size_t prefix_count() const noexcept {
    return lpm_.size();
  }

  /// All routes in lexicographic prefix order.
  [[nodiscard]] std::vector<Route> routes() const;

 private:
  FlatLpm<Route> lpm_;
};

}  // namespace ixp::net
