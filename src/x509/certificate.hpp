// Simplified X.509 certificate model.
//
// The paper's HTTPS identification (§2.2.2) crawls each port-443 candidate
// IP for a certificate chain and applies six checks: (a) certificate
// subject, (b) alternative names, (c) key usage/purpose, (d) chain order
// up to a white-listed root, (e) validity time against the fetch
// timestamp, and (f) stability over repeated fetches. This model keeps
// exactly the fields those checks read; cryptographic signatures are
// abstracted into issuer/subject key identifiers (the validator checks
// linkage, which is what signature verification establishes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.hpp"

namespace ixp::x509 {

/// Purposes from the extended-key-usage extension that matter here.
enum class KeyUsage : std::uint8_t {
  kServerAuth,   // TLS Web server authentication
  kClientAuth,   // TLS Web client authentication
  kCodeSigning,
  kEmailProtection,
};

/// Seconds since an arbitrary epoch; the workload uses week-granular
/// synthetic time, so a plain signed count suffices.
using Timestamp = std::int64_t;

struct Certificate {
  dns::DnsName subject;                 // subject common name
  std::vector<dns::DnsName> alt_names;  // subjectAltName DNS entries
  std::vector<KeyUsage> key_usages;
  std::string subject_key;  // subject key identifier
  std::string issuer_key;   // authority key identifier (who signed this)
  Timestamp not_before = 0;
  Timestamp not_after = 0;
  bool self_signed = false;

  /// All names the certificate is valid for (subject + SANs).
  [[nodiscard]] std::vector<dns::DnsName> covered_names() const;

  [[nodiscard]] bool valid_at(Timestamp t) const noexcept {
    return t >= not_before && t <= not_after;
  }

  [[nodiscard]] bool allows_server_auth() const noexcept;

  friend bool operator==(const Certificate&, const Certificate&) = default;
};

/// A chain as delivered by a TLS server: leaf first, then intermediates
/// in signing order, optionally ending with the root itself.
struct CertificateChain {
  std::vector<Certificate> certs;

  [[nodiscard]] bool empty() const noexcept { return certs.empty(); }
  [[nodiscard]] const Certificate& leaf() const { return certs.front(); }

  friend bool operator==(const CertificateChain&, const CertificateChain&) =
      default;
};

/// The trusted-root white-list ("the current Linux/Ubuntu white-list" in
/// the paper): a set of trusted root key identifiers.
class RootStore {
 public:
  void trust(std::string root_key) { roots_.push_back(std::move(root_key)); }
  [[nodiscard]] bool is_trusted(const std::string& key) const;
  [[nodiscard]] std::size_t size() const noexcept { return roots_.size(); }

 private:
  std::vector<std::string> roots_;
};

}  // namespace ixp::x509
