// Certificate chain validation — the six checks of §2.2.2.
//
// "We check the following properties in each retrieved X.509 certificate:
//  (a) certificate subject, (b) alternative names, (c) key usage
//  (purpose), (d) certificate chain, (e) validity time, and (f) stability
//  over time. If a certificate does not pass any of the tests, we do not
//  consider it in the analysis."
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dns/public_suffix.hpp"
#include "util/flat_hash_map.hpp"
#include "x509/certificate.hpp"

namespace ixp::x509 {

enum class Check : std::uint8_t {
  kSubject,    // (a) subject has a valid registrable domain / ccSLD
  kAltNames,   // (b) every alternative name has one too
  kKeyUsage,   // (c) key usage explicitly indicates a Web server role
  kChain,      // (d) chain links in order up to a white-listed root
  kValidity,   // (e) every certificate valid at fetch time
  kStability,  // (f) repeated fetches agree (ignoring validity time)
};

struct ValidationResult {
  bool ok = true;
  std::vector<Check> failed;

  void fail(Check check) {
    ok = false;
    failed.push_back(check);
  }
  [[nodiscard]] bool failed_check(Check check) const;
};

/// Memoized registrable-domain verdicts, shared across one probe run.
/// Checks (a)/(b) consult the public-suffix list once per SAN per fetch;
/// hosting farms repeat a handful of names across millions of fetches, so
/// a memo turns the PSL suffix search into a single hash probe.
class DomainCache {
 public:
  [[nodiscard]] bool has_valid_domain(const dns::DnsName& name,
                                      const dns::PublicSuffixList& psl) {
    const auto it = verdicts_.find(name);
    if (it != verdicts_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    const bool ok = psl.registrable_domain(name).has_value();
    verdicts_.try_emplace(name, ok);
    return ok;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t size() const noexcept { return verdicts_.size(); }

 private:
  util::FlatHashMap<dns::DnsName, bool, dns::NameHash, dns::NameEq> verdicts_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class ChainValidator {
 public:
  ChainValidator(const RootStore& roots, const dns::PublicSuffixList& psl)
      : roots_(&roots), psl_(&psl) {}

  /// Attaches a memo for registrable-domain lookups. Non-owning; the cache
  /// is thread-confined and must outlive the validator's use of it.
  void set_domain_cache(DomainCache* cache) noexcept { domain_cache_ = cache; }

  /// Runs checks (a)-(e) on one fetched chain.
  [[nodiscard]] ValidationResult validate(const CertificateChain& chain,
                                          Timestamp fetch_time) const;

  /// Runs the full pipeline including (f): every fetch must pass (a)-(e)
  /// and all leaves must agree on subject/SANs/usage/keys (validity time
  /// excluded, as the paper specifies). `fetch_times` pairs with `fetches`.
  [[nodiscard]] ValidationResult validate_stable(
      std::span<const CertificateChain> fetches,
      std::span<const Timestamp> fetch_times) const;

  /// Pointer form for the probe engine: entries may alias one chain object
  /// when the server is stable. An aliased chain that already passed
  /// (a)-(d) re-checks only time-dependent validity (e), and identical
  /// pointers trivially satisfy stability (f). Verdicts match the value
  /// form exactly (the differential suite holds it to that).
  [[nodiscard]] ValidationResult validate_stable(
      std::span<const CertificateChain* const> fetches,
      std::span<const Timestamp> fetch_times) const;

 private:
  [[nodiscard]] bool name_has_valid_domain(const dns::DnsName& name) const;

  const RootStore* roots_;
  const dns::PublicSuffixList* psl_;
  DomainCache* domain_cache_ = nullptr;
};

}  // namespace ixp::x509
