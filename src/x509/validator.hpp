// Certificate chain validation — the six checks of §2.2.2.
//
// "We check the following properties in each retrieved X.509 certificate:
//  (a) certificate subject, (b) alternative names, (c) key usage
//  (purpose), (d) certificate chain, (e) validity time, and (f) stability
//  over time. If a certificate does not pass any of the tests, we do not
//  consider it in the analysis."
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dns/public_suffix.hpp"
#include "x509/certificate.hpp"

namespace ixp::x509 {

enum class Check : std::uint8_t {
  kSubject,    // (a) subject has a valid registrable domain / ccSLD
  kAltNames,   // (b) every alternative name has one too
  kKeyUsage,   // (c) key usage explicitly indicates a Web server role
  kChain,      // (d) chain links in order up to a white-listed root
  kValidity,   // (e) every certificate valid at fetch time
  kStability,  // (f) repeated fetches agree (ignoring validity time)
};

struct ValidationResult {
  bool ok = true;
  std::vector<Check> failed;

  void fail(Check check) {
    ok = false;
    failed.push_back(check);
  }
  [[nodiscard]] bool failed_check(Check check) const;
};

class ChainValidator {
 public:
  ChainValidator(const RootStore& roots, const dns::PublicSuffixList& psl)
      : roots_(&roots), psl_(&psl) {}

  /// Runs checks (a)-(e) on one fetched chain.
  [[nodiscard]] ValidationResult validate(const CertificateChain& chain,
                                          Timestamp fetch_time) const;

  /// Runs the full pipeline including (f): every fetch must pass (a)-(e)
  /// and all leaves must agree on subject/SANs/usage/keys (validity time
  /// excluded, as the paper specifies). `fetch_times` pairs with `fetches`.
  [[nodiscard]] ValidationResult validate_stable(
      std::span<const CertificateChain> fetches,
      std::span<const Timestamp> fetch_times) const;

 private:
  [[nodiscard]] bool name_has_valid_domain(const dns::DnsName& name) const;

  const RootStore* roots_;
  const dns::PublicSuffixList* psl_;
};

}  // namespace ixp::x509
