#include "x509/validator.hpp"

#include <algorithm>
#include <array>

namespace ixp::x509 {

std::vector<dns::DnsName> Certificate::covered_names() const {
  std::vector<dns::DnsName> names;
  names.reserve(alt_names.size() + 1);
  if (!subject.empty()) names.push_back(subject);
  for (const auto& name : alt_names) {
    if (std::find(names.begin(), names.end(), name) == names.end())
      names.push_back(name);
  }
  return names;
}

bool Certificate::allows_server_auth() const noexcept {
  return std::find(key_usages.begin(), key_usages.end(),
                   KeyUsage::kServerAuth) != key_usages.end();
}

bool RootStore::is_trusted(const std::string& key) const {
  return std::find(roots_.begin(), roots_.end(), key) != roots_.end();
}

bool ValidationResult::failed_check(Check check) const {
  return std::find(failed.begin(), failed.end(), check) != failed.end();
}

bool ChainValidator::name_has_valid_domain(const dns::DnsName& name) const {
  // A usable name must have a registrable domain under the public-suffix
  // list — this is the paper's "valid domains and also valid ccSLDs".
  if (domain_cache_ != nullptr)
    return domain_cache_->has_valid_domain(name, *psl_);
  return psl_->registrable_domain(name).has_value();
}

ValidationResult ChainValidator::validate(const CertificateChain& chain,
                                          Timestamp fetch_time) const {
  ValidationResult result;
  if (chain.empty()) {
    result.fail(Check::kChain);
    return result;
  }
  const Certificate& leaf = chain.leaf();

  // (a) Subject must carry a valid registrable domain.
  if (leaf.subject.empty() || !name_has_valid_domain(leaf.subject))
    result.fail(Check::kSubject);

  // (b) Every alternative name must as well.
  for (const auto& name : leaf.alt_names) {
    if (!name_has_valid_domain(name)) {
      result.fail(Check::kAltNames);
      break;
    }
  }

  // (c) Key usage must explicitly indicate a Web-server role.
  if (!leaf.allows_server_auth()) result.fail(Check::kKeyUsage);

  // (d) Certificates must refer to each other in the order listed, and
  // the chain must terminate at a white-listed root.
  bool chain_ok = true;
  for (std::size_t i = 0; i + 1 < chain.certs.size(); ++i) {
    if (chain.certs[i].issuer_key != chain.certs[i + 1].subject_key) {
      chain_ok = false;
      break;
    }
  }
  if (chain_ok) {
    const Certificate& last = chain.certs.back();
    // Either the delivered tail is itself a trusted (self-signed) root, or
    // its issuer is in the white-list.
    const bool tail_is_root =
        last.self_signed && roots_->is_trusted(last.subject_key);
    const bool tail_signed_by_root = roots_->is_trusted(last.issuer_key);
    chain_ok = tail_is_root || tail_signed_by_root;
  }
  if (!chain_ok) result.fail(Check::kChain);

  // (e) Every certificate in the chain must be valid at fetch time.
  for (const Certificate& cert : chain.certs) {
    if (!cert.valid_at(fetch_time)) {
      result.fail(Check::kValidity);
      break;
    }
  }
  return result;
}

namespace {

/// Equality of the properties check (f) compares: everything on the leaf
/// except validity time.
bool same_stable_properties(const Certificate& a, const Certificate& b) {
  return a.subject == b.subject && a.alt_names == b.alt_names &&
         a.key_usages == b.key_usages && a.subject_key == b.subject_key &&
         a.issuer_key == b.issuer_key;
}

}  // namespace

ValidationResult ChainValidator::validate_stable(
    std::span<const CertificateChain> fetches,
    std::span<const Timestamp> fetch_times) const {
  ValidationResult result;
  if (fetches.empty() || fetches.size() != fetch_times.size()) {
    result.fail(Check::kStability);
    return result;
  }
  for (std::size_t i = 0; i < fetches.size(); ++i) {
    const ValidationResult single = validate(fetches[i], fetch_times[i]);
    if (!single.ok) return single;
  }
  // (f) All fetches must agree on the stable leaf properties. IPs in
  // cloud deployments "can change their role very quickly and frequently";
  // any flip disqualifies the IP.
  for (std::size_t i = 1; i < fetches.size(); ++i) {
    if (!same_stable_properties(fetches[0].leaf(), fetches[i].leaf())) {
      result.fail(Check::kStability);
      return result;
    }
  }
  return result;
}

ValidationResult ChainValidator::validate_stable(
    std::span<const CertificateChain* const> fetches,
    std::span<const Timestamp> fetch_times) const {
  ValidationResult result;
  if (fetches.empty() || fetches.size() != fetch_times.size()) {
    result.fail(Check::kStability);
    return result;
  }
  // Chains that already passed (a)-(d) at an earlier fetch; validity (e)
  // is the only time-dependent check, so an aliased pointer re-checks just
  // that and yields the exact verdict the value form would.
  std::array<const CertificateChain*, 16> passed{};
  std::size_t passed_n = 0;
  for (std::size_t i = 0; i < fetches.size(); ++i) {
    const CertificateChain* chain = fetches[i];
    if (chain == nullptr) {
      result.fail(Check::kStability);
      return result;
    }
    bool seen = false;
    for (std::size_t k = 0; k < passed_n; ++k) seen |= passed[k] == chain;
    if (seen) {
      for (const Certificate& cert : chain->certs) {
        if (!cert.valid_at(fetch_times[i])) {
          ValidationResult single;
          single.fail(Check::kValidity);
          return single;
        }
      }
      continue;
    }
    const ValidationResult single = validate(*chain, fetch_times[i]);
    if (!single.ok) return single;
    if (passed_n < passed.size()) passed[passed_n++] = chain;
  }
  // (f) stability: identical pointers agree by construction.
  for (std::size_t i = 1; i < fetches.size(); ++i) {
    if (fetches[i] == fetches[0]) continue;
    if (!same_stable_properties(fetches[0]->leaf(), fetches[i]->leaf())) {
      result.fail(Check::kStability);
      return result;
    }
  }
  return result;
}

}  // namespace ixp::x509
