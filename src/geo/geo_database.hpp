// Prefix -> country geolocation database (the GeoLite-Country stand-in).
//
// The paper geo-locates all 230M+ observed IPs with MaxMind's GeoLite
// Country database. Our database is generated alongside the synthetic
// Internet: each allocated prefix records the country it was assigned to,
// so lookups are a longest-prefix match.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "geo/country.hpp"
#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"

namespace ixp::geo {

class GeoDatabase {
 public:
  /// Registers a prefix's country (overwrites on re-registration).
  void assign(net::Ipv4Prefix prefix, CountryCode country);

  /// Country of the most specific covering prefix, or nullopt.
  [[nodiscard]] std::optional<CountryCode> country_of(net::Ipv4Addr addr) const;

  /// Region bucket of an address (unknown locations land in RoW).
  [[nodiscard]] Region region_of(net::Ipv4Addr addr) const;

  [[nodiscard]] std::size_t prefix_count() const noexcept {
    return trie_.size();
  }

 private:
  net::PrefixTrie<CountryCode> trie_;
};

}  // namespace ixp::geo
