// Prefix -> country geolocation database (the GeoLite-Country stand-in).
//
// The paper geo-locates all 230M+ observed IPs with MaxMind's GeoLite
// Country database. Our database is generated alongside the synthetic
// Internet: each allocated prefix records the country it was assigned to,
// so lookups are a longest-prefix match.
//
// Backed by the same net::FlatLpm (DIR-24-8) as the routing table, so
// country attribution costs one or two array loads per address rather
// than a second trie walk per sample.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "geo/country.hpp"
#include "net/flat_lpm.hpp"
#include "net/ipv4.hpp"

namespace ixp::geo {

class GeoDatabase {
 public:
  /// Registers a prefix's country (overwrites on re-registration).
  void assign(net::Ipv4Prefix prefix, CountryCode country);

  /// Country of the most specific covering prefix, or nullopt.
  [[nodiscard]] std::optional<CountryCode> country_of(net::Ipv4Addr addr) const;

  /// Pointer form for per-sample paths: no optional, no copy. Stable
  /// until the next assign.
  [[nodiscard]] const CountryCode* country_ptr(net::Ipv4Addr addr) const noexcept {
    return lpm_.lookup_ptr(addr);
  }

  /// Batched attribution: out[i] = country_ptr(addrs[i]), with the LPM
  /// arrays software-prefetched ahead. Requires out.size() >= addrs.size().
  void countries_of(std::span<const net::Ipv4Addr> addrs,
                    std::span<const CountryCode*> out) const noexcept {
    lpm_.lookup_batch(addrs, out);
  }

  /// Region bucket of an address (unknown locations land in RoW).
  [[nodiscard]] Region region_of(net::Ipv4Addr addr) const;

  [[nodiscard]] std::size_t prefix_count() const noexcept {
    return lpm_.size();
  }

 private:
  net::FlatLpm<CountryCode> lpm_;
};

}  // namespace ixp::geo
