#include "geo/geo_database.hpp"

namespace ixp::geo {

void GeoDatabase::assign(net::Ipv4Prefix prefix, CountryCode country) {
  lpm_.insert(prefix, country);
}

std::optional<CountryCode> GeoDatabase::country_of(net::Ipv4Addr addr) const {
  const CountryCode* country = lpm_.lookup_ptr(addr);
  if (!country) return std::nullopt;
  return *country;
}

Region GeoDatabase::region_of(net::Ipv4Addr addr) const {
  const CountryCode* country = lpm_.lookup_ptr(addr);
  return country ? ixp::geo::region_of(*country) : Region::kRoW;
}

}  // namespace ixp::geo
