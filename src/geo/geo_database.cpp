#include "geo/geo_database.hpp"

namespace ixp::geo {

void GeoDatabase::assign(net::Ipv4Prefix prefix, CountryCode country) {
  trie_.insert(prefix, country);
}

std::optional<CountryCode> GeoDatabase::country_of(net::Ipv4Addr addr) const {
  return trie_.lookup(addr);
}

Region GeoDatabase::region_of(net::Ipv4Addr addr) const {
  const auto country = trie_.lookup(addr);
  return country ? ixp::geo::region_of(*country) : Region::kRoW;
}

}  // namespace ixp::geo
