// Country codes and the paper's region buckets.
//
// The paper geo-locates every observed IP at country granularity
// (Figure 3, Table 2) and groups countries into five regions for the
// longitudinal churn analysis: DE, US, RU, CN, and RoW (Figures 4(b), 5).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ixp::geo {

/// ISO-3166 alpha-2 country code packed into 16 bits. The default value is
/// the invalid code "--" (unknown location).
class CountryCode {
 public:
  constexpr CountryCode() = default;
  constexpr CountryCode(char a, char b) noexcept
      : packed_(static_cast<std::uint16_t>((a << 8) | (b & 0xff))) {}

  /// Parses a two-letter uppercase code; anything else -> nullopt.
  [[nodiscard]] static std::optional<CountryCode> parse(std::string_view text);

  [[nodiscard]] constexpr bool valid() const noexcept { return packed_ != 0; }
  [[nodiscard]] std::string to_string() const {
    if (!valid()) return "--";
    return {static_cast<char>(packed_ >> 8), static_cast<char>(packed_ & 0xff)};
  }
  [[nodiscard]] constexpr std::uint16_t packed() const noexcept { return packed_; }

  friend constexpr auto operator<=>(CountryCode, CountryCode) noexcept = default;

 private:
  std::uint16_t packed_ = 0;
};

/// The five region buckets used in Figures 4(b) and 5.
enum class Region : std::uint8_t { kDE, kUS, kRU, kCN, kRoW };

inline constexpr std::array<Region, 5> kAllRegions{
    Region::kDE, Region::kUS, Region::kRU, Region::kCN, Region::kRoW};

[[nodiscard]] Region region_of(CountryCode country) noexcept;
[[nodiscard]] const char* to_string(Region region) noexcept;

/// Static registry of the world's countries with rough Internet-population
/// weights. The paper sees traffic from 242 countries; the registry
/// enumerates 242 ISO codes so the synthetic Internet can reproduce the
/// same geographic footprint.
class CountryRegistry {
 public:
  struct Entry {
    CountryCode code;
    /// Relative weight for allocating address space & traffic (unitless;
    /// large Internet populations get large weights).
    double weight;
  };

  /// The process-wide registry (immutable after construction).
  [[nodiscard]] static const CountryRegistry& instance();

  [[nodiscard]] std::span<const Entry> entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Index of a country within the registry, if present.
  [[nodiscard]] std::optional<std::size_t> index_of(CountryCode code) const;

 private:
  CountryRegistry();
  std::vector<Entry> entries_;
  std::unordered_map<std::uint16_t, std::size_t> index_;
};

}  // namespace ixp::geo

template <>
struct std::hash<ixp::geo::CountryCode> {
  std::size_t operator()(ixp::geo::CountryCode c) const noexcept {
    return std::hash<std::uint16_t>{}(c.packed());
  }
};
