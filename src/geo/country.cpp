#include "geo/country.hpp"

namespace ixp::geo {

std::optional<CountryCode> CountryCode::parse(std::string_view text) {
  if (text.size() != 2) return std::nullopt;
  const char a = text[0];
  const char b = text[1];
  if (a < 'A' || a > 'Z' || b < 'A' || b > 'Z') return std::nullopt;
  return CountryCode{a, b};
}

Region region_of(CountryCode country) noexcept {
  if (country == CountryCode{'D', 'E'}) return Region::kDE;
  if (country == CountryCode{'U', 'S'}) return Region::kUS;
  if (country == CountryCode{'R', 'U'}) return Region::kRU;
  if (country == CountryCode{'C', 'N'}) return Region::kCN;
  return Region::kRoW;
}

const char* to_string(Region region) noexcept {
  switch (region) {
    case Region::kDE: return "DE";
    case Region::kUS: return "US";
    case Region::kRU: return "RU";
    case Region::kCN: return "CN";
    case Region::kRoW: return "RoW";
  }
  return "RoW";
}

namespace {

struct RawEntry {
  const char* code;
  double weight;
};

// 242 ISO-3166 alpha-2 codes with rough Internet-footprint weights.
// Weights steer how much address space, how many clients, and how many
// servers the synthetic Internet places in each country; the heavy head
// (US/DE/CN/RU/...) matches the ranking the paper reports in Table 2.
constexpr RawEntry kCountries[] = {
    {"US", 2600}, {"DE", 1300}, {"CN", 1200}, {"RU", 760},  {"IT", 560},
    {"FR", 660},  {"GB", 720},  {"TR", 420},  {"UA", 360},  {"JP", 680},
    {"NL", 500},  {"CZ", 260},  {"EU", 180},  {"RO", 220},  {"BR", 540},
    {"IN", 500},  {"KR", 420},  {"CA", 420},  {"ES", 400},  {"PL", 340},
    {"SE", 260},  {"AU", 300},  {"MX", 260},  {"AR", 200},  {"AT", 180},
    {"CH", 200},  {"BE", 180},  {"DK", 150},  {"FI", 140},  {"NO", 150},
    {"PT", 130},  {"GR", 130},  {"HU", 140},  {"IE", 120},  {"IL", 140},
    {"ZA", 130},  {"SA", 130},  {"AE", 120},  {"TH", 160},  {"VN", 170},
    {"ID", 220},  {"MY", 140},  {"SG", 140},  {"PH", 150},  {"TW", 200},
    {"HK", 170},  {"EG", 130},  {"NG", 110},  {"KE", 70},   {"MA", 80},
    {"DZ", 70},   {"TN", 55},   {"CO", 130},  {"CL", 110},  {"PE", 90},
    {"VE", 80},   {"EC", 60},   {"UY", 45},   {"PY", 35},   {"BO", 30},
    {"CR", 35},   {"PA", 35},   {"GT", 35},   {"SV", 25},   {"HN", 25},
    {"NI", 20},   {"DO", 35},   {"CU", 15},   {"JM", 20},   {"TT", 20},
    {"BG", 110},  {"RS", 90},   {"HR", 70},   {"SI", 55},   {"SK", 90},
    {"LT", 60},   {"LV", 55},   {"EE", 50},   {"BY", 80},   {"MD", 40},
    {"AL", 30},   {"MK", 30},   {"BA", 35},   {"ME", 15},   {"XK", 12},
    {"IS", 25},   {"LU", 35},   {"MT", 18},   {"CY", 25},   {"GE", 35},
    {"AM", 30},   {"AZ", 40},   {"KZ", 80},   {"UZ", 40},   {"TM", 10},
    {"KG", 18},   {"TJ", 12},   {"MN", 15},   {"PK", 110},  {"BD", 90},
    {"LK", 40},   {"NP", 30},   {"MM", 25},   {"KH", 20},   {"LA", 12},
    {"BN", 10},   {"MV", 8},    {"BT", 5},    {"AF", 12},   {"IQ", 45},
    {"IR", 140},  {"SY", 25},   {"JO", 35},   {"LB", 30},   {"KW", 35},
    {"QA", 30},   {"BH", 20},   {"OM", 25},   {"YE", 12},   {"PS", 15},
    {"ET", 25},   {"TZ", 30},   {"UG", 25},   {"GH", 30},   {"CI", 25},
    {"SN", 20},   {"CM", 20},   {"ZM", 15},   {"ZW", 15},   {"MZ", 12},
    {"AO", 18},   {"NA", 10},   {"BW", 10},   {"MW", 8},    {"RW", 10},
    {"BI", 5},    {"SO", 6},    {"SD", 20},   {"SS", 4},    {"LY", 15},
    {"MR", 6},    {"ML", 8},    {"BF", 8},    {"NE", 6},    {"TD", 5},
    {"TG", 7},    {"BJ", 8},    {"GN", 7},    {"SL", 5},    {"LR", 5},
    {"GM", 5},    {"GW", 3},    {"CV", 5},    {"ST", 2},    {"GQ", 4},
    {"GA", 8},    {"CG", 6},    {"CD", 12},   {"CF", 3},    {"ER", 3},
    {"DJ", 4},    {"KM", 2},    {"MG", 10},   {"MU", 12},   {"SC", 5},
    {"RE", 8},    {"YT", 3},    {"NZ", 70},   {"FJ", 8},    {"PG", 6},
    {"SB", 2},    {"VU", 2},    {"NC", 5},    {"PF", 5},    {"WS", 2},
    {"TO", 2},    {"FM", 2},    {"PW", 2},    {"MH", 2},    {"KI", 1},
    {"TV", 1},    {"NR", 1},    {"GU", 5},    {"MP", 2},    {"AS", 2},
    {"CK", 2},    {"NU", 1},    {"TK", 1},    {"WF", 1},    {"PN", 1},
    {"HT", 10},   {"BS", 8},    {"BB", 8},    {"LC", 4},    {"VC", 3},
    {"GD", 3},    {"AG", 4},    {"DM", 3},    {"KN", 3},    {"AI", 2},
    {"VG", 4},    {"VI", 5},    {"KY", 6},    {"TC", 3},    {"BM", 6},
    {"AW", 5},    {"CW", 6},    {"SX", 3},    {"BQ", 2},    {"MS", 1},
    {"GP", 6},    {"MQ", 6},    {"GF", 4},    {"SR", 6},    {"GY", 5},
    {"BZ", 5},    {"FK", 1},    {"GL", 4},    {"FO", 5},    {"GI", 5},
    {"AD", 6},    {"MC", 6},    {"SM", 4},    {"VA", 2},    {"LI", 5},
    {"JE", 5},    {"GG", 4},    {"IM", 5},    {"AX", 2},    {"SJ", 1},
    {"MO", 12},   {"KP", 2},    {"TL", 3},    {"IO", 1},    {"SH", 1},
    {"TF", 1},    {"AQ", 1},    {"BV", 1},    {"GS", 1},    {"HM", 1},
    {"UM", 1},    {"NF", 1},
};
static_assert(sizeof(kCountries) / sizeof(kCountries[0]) == 242,
              "paper: IXP sees traffic from 242 countries in week 45");

}  // namespace

CountryRegistry::CountryRegistry() {
  entries_.reserve(std::size(kCountries));
  for (const RawEntry& raw : kCountries) {
    const auto code = CountryCode::parse(raw.code);
    // All entries are valid two-letter codes by construction.
    entries_.push_back(Entry{*code, raw.weight});
    index_.emplace(code->packed(), entries_.size() - 1);
  }
}

const CountryRegistry& CountryRegistry::instance() {
  static const CountryRegistry registry;
  return registry;
}

std::optional<std::size_t> CountryRegistry::index_of(CountryCode code) const {
  const auto it = index_.find(code.packed());
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace ixp::geo
