#include "store/snapshot_store.hpp"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "store/crc32c.hpp"
#include "store/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define IXPSCOPE_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define IXPSCOPE_HAVE_POSIX_IO 0
#endif

namespace ixp::store {

namespace {

std::uint32_t load_le32(const std::byte* p) noexcept {
  return static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[0])) |
         (static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[1])) << 8) |
         (static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[2])) << 16) |
         (static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[3])) << 24);
}

std::uint64_t load_le64(const std::byte* p) noexcept {
  return static_cast<std::uint64_t>(load_le32(p)) |
         (static_cast<std::uint64_t>(load_le32(p + 4)) << 32);
}

void store_le32(std::byte* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i)
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
}

void store_le64(std::byte* p, std::uint64_t v) noexcept {
  store_le32(p, static_cast<std::uint32_t>(v));
  store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

/// Per-section checksum. Covers the section's own id and length fields
/// as well as the payload — a flipped bit anywhere in the 16-byte section
/// record (outside the CRC word itself) must fail verification, not just
/// flips inside the payload.
std::uint32_t section_crc(std::uint32_t id, std::uint64_t length,
                          std::span<const std::byte> payload) noexcept {
  std::byte prefix[12];
  for (int i = 0; i < 4; ++i)
    prefix[i] = static_cast<std::byte>((id >> (8 * i)) & 0xFF);
  for (int i = 0; i < 8; ++i)
    prefix[4 + i] = static_cast<std::byte>((length >> (8 * i)) & 0xFF);
  return crc32c(payload, crc32c(std::span<const std::byte>{prefix, 12}));
}

}  // namespace

const char* error_name(SnapshotError error) noexcept {
  switch (error) {
    case SnapshotError::kNone: return "ok";
    case SnapshotError::kOpenFailed: return "cannot open snapshot file";
    case SnapshotError::kTooShort:
      return "snapshot shorter than header + footer";
    case SnapshotError::kBadMagic: return "not an ixpscope snapshot (bad magic)";
    case SnapshotError::kBadVersion: return "unsupported snapshot format version";
    case SnapshotError::kBadCrc: return "snapshot checksum mismatch";
    case SnapshotError::kTruncatedSection:
      return "snapshot framing torn (truncated or trailing bytes)";
    case SnapshotError::kStaleProvenance:
      return "snapshot provenance does not match this run's inputs";
  }
  return "unknown error";
}

const char* error_tag(SnapshotError error) noexcept {
  switch (error) {
    case SnapshotError::kNone: return "ok";
    case SnapshotError::kOpenFailed: return "open-failed";
    case SnapshotError::kTooShort: return "short";
    case SnapshotError::kBadMagic: return "bad-magic";
    case SnapshotError::kBadVersion: return "bad-version";
    case SnapshotError::kBadCrc: return "bad-crc";
    case SnapshotError::kTruncatedSection: return "truncated-section";
    case SnapshotError::kStaleProvenance: return "stale-provenance";
  }
  return "unknown";
}

std::vector<std::byte> encode_snapshot(std::span<const Section> sections) {
  std::uint64_t payload_bytes = 0;
  for (const Section& s : sections)
    payload_bytes += kSectionHeaderBytes + s.payload.size();
  const std::size_t total =
      kSnapshotHeaderBytes + payload_bytes + kSnapshotFooterBytes;

  // Every header field is known before a byte is written, so the header
  // CRC the footer seals can be computed up front from a stack copy and
  // the whole image laid down in one exactly-sized buffer — encoding a
  // snapshot is a single allocation regardless of section count or size.
  std::byte head[kSnapshotHeaderBytes];
  std::memcpy(head, kSnapshotMagic, sizeof kSnapshotMagic);
  store_le32(head + 8, kFormatVersion);
  store_le32(head + 12, static_cast<std::uint32_t>(sections.size()));
  store_le64(head + 16, payload_bytes);
  const std::uint32_t header_crc =
      crc32c(std::span<const std::byte>{head, kSnapshotHeaderBytes});

  wire::Writer out;
  out.reserve(total);
  out.bytes(std::span<const std::byte>{head, kSnapshotHeaderBytes});

  for (const Section& s : sections) {
    out.u32(s.id);
    out.u32(section_crc(s.id, s.payload.size(), s.payload));
    out.u64(s.payload.size());
    out.bytes(s.payload);
  }

  out.bytes(std::as_bytes(std::span<const char>{kFooterMagic}));
  out.u32(kFormatVersion);
  out.u32(header_crc);
  out.u64(total);
  return out.take();
}

SnapshotError validate_image(std::span<const std::byte> image,
                             std::vector<SectionView>* sections_out) {
  if (image.size() < kSnapshotHeaderBytes + kSnapshotFooterBytes)
    return SnapshotError::kTooShort;
  if (std::memcmp(image.data(), kSnapshotMagic, sizeof kSnapshotMagic) != 0)
    return SnapshotError::kBadMagic;
  if (load_le32(image.data() + 8) != kFormatVersion)
    return SnapshotError::kBadVersion;

  // The seal first: a file that does not end in a footer naming its own
  // exact size is torn (or grew a duplicated tail) — nothing before the
  // seal can be trusted to frame correctly.
  const std::byte* footer = image.data() + (image.size() - kSnapshotFooterBytes);
  if (std::memcmp(footer, kFooterMagic, sizeof kFooterMagic) != 0 ||
      load_le32(footer + 8) != kFormatVersion ||
      load_le64(footer + 16) != image.size())
    return SnapshotError::kTruncatedSection;
  if (load_le32(footer + 12) !=
      crc32c(image.subspan(0, kSnapshotHeaderBytes)))
    return SnapshotError::kBadCrc;

  const std::uint32_t section_count = load_le32(image.data() + 12);
  const std::uint64_t payload_bytes = load_le64(image.data() + 16);
  if (payload_bytes !=
      image.size() - kSnapshotHeaderBytes - kSnapshotFooterBytes)
    return SnapshotError::kTruncatedSection;

  // The section table is written straight into the caller's vector:
  // clear() keeps capacity, so a reused handle (SnapshotFile::reopen, the
  // store scan loop) validates without allocating, and a caller that only
  // wants the verdict pays for no table at all. On failure the partially
  // filled table is meaningless — callers must ignore it, as SnapshotFile
  // does by releasing on any error.
  if (sections_out != nullptr) {
    sections_out->clear();
    // Clamp the hint: a corrupt count field must not drive a huge reserve
    // before the walk below rejects it (each section costs ≥ 16 bytes of
    // payload area, so the quotient bounds any count a valid file can hold).
    sections_out->reserve(std::min<std::uint64_t>(
        section_count, payload_bytes / kSectionHeaderBytes));
  }
  std::size_t at = kSnapshotHeaderBytes;
  const std::size_t payload_end = kSnapshotHeaderBytes + payload_bytes;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    if (payload_end - at < kSectionHeaderBytes)
      return SnapshotError::kTruncatedSection;
    const std::uint32_t id = load_le32(image.data() + at);
    const std::uint32_t crc = load_le32(image.data() + at + 4);
    const std::uint64_t length = load_le64(image.data() + at + 8);
    at += kSectionHeaderBytes;
    if (payload_end - at < length) return SnapshotError::kTruncatedSection;
    if (section_crc(id, length, image.subspan(at, length)) != crc)
      return SnapshotError::kBadCrc;
    if (sections_out != nullptr)
      sections_out->push_back({id, at, static_cast<std::size_t>(length)});
    at += length;
  }
  if (at != payload_end) return SnapshotError::kTruncatedSection;
  return SnapshotError::kNone;
}

bool commit_snapshot(const std::string& path,
                     std::span<const std::byte> image, std::string* error,
                     const CommitHooks* hooks) {
#if IXPSCOPE_HAVE_POSIX_IO
  // The temp name carries the writer's pid so concurrent processes
  // committing the same week never collide on the temp itself; both
  // renames then install byte-identical images (the pipeline is
  // deterministic), so a double-commit converges instead of tearing.
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
#else
  const std::string temp = path + ".tmp";
#endif
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };

#if IXPSCOPE_HAVE_POSIX_IO
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("cannot create " + temp);

  // Ownership mark for concurrent scanners: while this lock is held, the
  // temp belongs to a live commit and scan() leaves it alone. The lock
  // dies with the descriptor — on any exit, including a crash mid-write
  // (a real kill drops the whole process; the simulated InjectedCrash
  // path closes the fd below) — at which point the orphan becomes
  // sweepable. Advisory is enough: every accessor is this codebase.
  (void)::flock(fd, LOCK_EX | LOCK_NB);

  const auto write_all = [&](std::span<const std::byte> bytes) {
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ::ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      done += static_cast<std::size_t>(n);
    }
    return true;
  };

  // The write happens in two halves so a crash hook can leave a torn temp
  // on disk — exactly the state a real mid-write kill produces.
  const std::size_t half = image.size() / 2;
  try {
    if (!write_all(image.subspan(0, half))) {
      ::close(fd);
      return fail("write " + temp);
    }
    if (hooks != nullptr && hooks->mid_temp_write) hooks->mid_temp_write(temp);
    if (!write_all(image.subspan(half))) {
      ::close(fd);
      return fail("write " + temp);
    }
    if (hooks != nullptr && hooks->after_temp_write)
      hooks->after_temp_write(temp);
    if (::fsync(fd) != 0) {
      ::close(fd);
      return fail("fsync " + temp);
    }
    if (hooks != nullptr && hooks->after_temp_sync) hooks->after_temp_sync(temp);
  } catch (...) {
    ::close(fd);
    throw;  // the simulated crash: temp left exactly as it was, lock dropped
  }

  // The descriptor (and with it the ownership lock) stays open across the
  // rename: a concurrent scanner must never sweep the temp in the gap
  // between "fully written" and "renamed away".
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    ::close(fd);
    return fail("rename " + temp + " -> " + path);
  }
  ::close(fd);
  if (hooks != nullptr && hooks->after_rename) hooks->after_rename(path);

  // Seal the rename itself: the directory entry must be durable before
  // the caller treats the week as finished. The directory name is carved
  // on the stack — the commit hot path allocates for the temp name only.
  char dirbuf[4096];
  const auto slash = path.find_last_of('/');
  const char* dirpath = ".";
  if (slash != std::string::npos && slash > 0 && slash < sizeof dirbuf) {
    std::memcpy(dirbuf, path.data(), slash);
    dirbuf[slash] = '\0';
    dirpath = dirbuf;
  }
  const int dir_fd = ::open(dirpath, O_RDONLY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);  // best effort: some filesystems refuse dir fsync
    ::close(dir_fd);
  }
  return true;
#else
  // Portable fallback: no fsync available, but the temp+rename atomicity
  // still holds.
  {
    std::ofstream out{temp, std::ios::binary | std::ios::trunc};
    if (!out) return fail("cannot create " + temp);
    const std::size_t half = image.size() / 2;
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(half));
    out.flush();
    if (hooks != nullptr && hooks->mid_temp_write) hooks->mid_temp_write(temp);
    out.write(reinterpret_cast<const char*>(image.data() + half),
              static_cast<std::streamsize>(image.size() - half));
    if (!out) return fail("write " + temp);
    out.flush();
    if (hooks != nullptr && hooks->after_temp_write)
      hooks->after_temp_write(temp);
    if (hooks != nullptr && hooks->after_temp_sync) hooks->after_temp_sync(temp);
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    if (error != nullptr) *error = "rename " + temp + ": " + ec.message();
    return false;
  }
  if (hooks != nullptr && hooks->after_rename) hooks->after_rename(path);
  return true;
#endif
}

SnapshotFile::~SnapshotFile() { release(); }

SnapshotFile::SnapshotFile(SnapshotFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      owned_(std::move(other.owned_)),
      sections_(std::move(other.sections_)),
      error_(other.error_) {
  if (!mapped_ && !owned_.empty()) data_ = owned_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  other.error_ = SnapshotError::kOpenFailed;
}

SnapshotFile& SnapshotFile::operator=(SnapshotFile&& other) noexcept {
  if (this != &other) {
    release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    owned_ = std::move(other.owned_);
    sections_ = std::move(other.sections_);
    error_ = other.error_;
    if (!mapped_ && !owned_.empty()) data_ = owned_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    other.error_ = SnapshotError::kOpenFailed;
  }
  return *this;
}

void SnapshotFile::release() noexcept {
#if IXPSCOPE_HAVE_POSIX_IO
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  owned_.clear();
  owned_.shrink_to_fit();
  sections_.clear();
}

void SnapshotFile::validate() noexcept {
  error_ = validate_image({data_, size_}, &sections_);
  if (!ok()) {
    const SnapshotError error = error_;
    release();
    error_ = error;
  }
}

SnapshotFile SnapshotFile::open(const std::string& path) {
  SnapshotFile file;
  (void)file.reopen(path);
  return file;
}

bool SnapshotFile::reopen(const std::string& path) {
  // Let go of the previous image but keep the scratch: the section table
  // (and the read buffer on the non-mmap path) retain their capacity, so
  // a loop reopening snapshots — the store scan, the merge walk, the
  // roundtrip bench — validates without per-file allocation.
#if IXPSCOPE_HAVE_POSIX_IO
  if (mapped_ && data_ != nullptr)
    ::munmap(const_cast<std::byte*>(data_), size_);
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  error_ = SnapshotError::kOpenFailed;

#if IXPSCOPE_HAVE_POSIX_IO
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return false;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kSnapshotHeaderBytes + kSnapshotFooterBytes) {
    ::close(fd);
    error_ = SnapshotError::kTooShort;
    return false;
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map != MAP_FAILED) {
    data_ = static_cast<const std::byte*>(map);
    size_ = size;
    mapped_ = true;
    validate();
    return ok();
  }
  // mmap refused: fall through to the portable read path.
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0) return false;
  in.seekg(0);
  owned_.resize(static_cast<std::size_t>(end));
  if (!owned_.empty() &&
      !in.read(reinterpret_cast<char*>(owned_.data()),
               static_cast<std::streamsize>(owned_.size()))) {
    owned_.clear();
    return false;
  }
  data_ = owned_.data();
  size_ = owned_.size();
  mapped_ = false;
  validate();
  return ok();
}

SnapshotFile SnapshotFile::adopt(std::vector<std::byte> bytes) {
  SnapshotFile file;
  file.owned_ = std::move(bytes);
  file.data_ = file.owned_.data();
  file.size_ = file.owned_.size();
  file.mapped_ = false;
  file.validate();
  return file;
}

std::span<const std::byte> SnapshotFile::section(std::uint32_t id) const noexcept {
  for (const SectionView& s : sections_) {
    if (s.id == id) return {data_ + s.offset, s.length};
  }
  return {};
}

bool SnapshotStore::ensure_dir(std::string* error) const {
  std::error_code ec;
  if (std::filesystem::is_directory(dir_, ec)) return true;
  if (std::filesystem::exists(dir_, ec)) {
    if (error != nullptr) *error = dir_ + " exists and is not a directory";
    return false;
  }
  if (!std::filesystem::create_directories(dir_, ec)) {
    if (error != nullptr) *error = "cannot create " + dir_ + ": " + ec.message();
    return false;
  }
  return true;
}

std::string SnapshotStore::path_for(int week) const {
  std::string digits = std::to_string(week);
  while (digits.size() < 4) digits.insert(digits.begin(), '0');
  return dir_ + "/week_" + digits + ".snap";
}

bool SnapshotStore::save(int week, std::span<const Section> sections,
                         std::string* error, const CommitHooks* hooks) const {
  const std::vector<std::byte> image = encode_snapshot(sections);
  return commit_snapshot(path_for(week), image, error, hooks);
}

QuarantineEvent SnapshotStore::quarantine(const std::string& path,
                                          SnapshotError error) const {
  QuarantineEvent event;
  event.file = path;
  event.error = error;
  const std::string target = path + ".quarantined-" + error_tag(error);
  std::error_code ec;
  std::filesystem::rename(path, target, ec);
  if (!ec) event.quarantined_as = target;
  return event;
}

SnapshotFile SnapshotStore::load(
    int week, std::optional<QuarantineEvent>* quarantined) const {
  if (quarantined != nullptr) quarantined->reset();
  const std::string path = path_for(week);
  SnapshotFile file = SnapshotFile::open(path);
  if (!file.ok() && file.error() != SnapshotError::kOpenFailed) {
    const QuarantineEvent event = quarantine(path, file.error());
    if (quarantined != nullptr) *quarantined = event;
  }
  return file;
}

SnapshotStore::ScanResult SnapshotStore::scan() const {
  ScanResult result;
  std::error_code ec;
  std::filesystem::directory_iterator it{dir_, ec};
  if (ec) {
    result.readable = false;
    result.error = dir_ + ": " + ec.message();
    return result;
  }
  SnapshotFile file;  // one handle, revalidated per entry (scratch reuse)
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("week_") &&
        name.find(".snap.tmp") != std::string::npos) {
      // A temp is either a live commit's work-in-progress (its writer
      // holds the ownership flock) or the residue of a crash between
      // write and rename. Only the orphan may be dropped: probe the lock
      // non-blocking, and sweep while holding it so two scanners never
      // race each other either. Matches both the portable `.snap.tmp`
      // and the pid-suffixed `.snap.tmp.<pid>` spelling.
      const std::string temp_path = entry.path().string();
#if IXPSCOPE_HAVE_POSIX_IO
      const int fd = ::open(temp_path.c_str(), O_RDONLY);
      if (fd >= 0) {
        if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
          ::close(fd);  // a live commit owns it — not ours to sweep
          continue;
        }
        if (::unlink(temp_path.c_str()) == 0) ++result.stale_temps_removed;
        ::close(fd);
      }
#else
      std::error_code rm_ec;
      if (std::filesystem::remove(entry.path(), rm_ec))
        ++result.stale_temps_removed;
#endif
      continue;
    }
    if (!name.starts_with("week_") || !name.ends_with(".snap")) continue;
    const std::string digits = name.substr(5, name.size() - 5 - 5);
    int week = 0;
    const auto [ptr, parse_ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), week);
    if (parse_ec != std::errc{} || ptr != digits.data() + digits.size())
      continue;
    const std::string path = entry.path().string();
    if (file.reopen(path)) {
      result.weeks.push_back(week);
    } else {
      result.quarantined.push_back(quarantine(path, file.error()));
    }
  }
  std::sort(result.weeks.begin(), result.weeks.end());
  return result;
}

}  // namespace ixp::store
