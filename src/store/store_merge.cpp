#include "store/store_merge.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "store/snapshot_codec.hpp"

namespace ixp::store {

namespace {

/// One usable input snapshot of the week being merged.
struct Copy {
  SnapshotFile file;
  Provenance provenance;
};

}  // namespace

MergeResult merge_stores(core::VantagePoint& vantage,
                         const MergeOptions& options,
                         const WeeksRunner::FetcherFactory& make_fetcher) {
  MergeResult result;
  if (options.inputs.empty()) {
    result.error = "merge needs at least one input store";
    return result;
  }

  const SnapshotStore out{options.out};
  if (std::string error; !out.ensure_dir(&error)) {
    result.store_unreadable = true;
    result.error = error;
    return result;
  }

  // Scan every input up front: quarantine rot where it lies, learn the
  // union of weeks. An unreadable input directory is fatal — silently
  // merging a subset would masquerade as the union.
  std::vector<SnapshotStore> stores;
  std::vector<std::vector<int>> store_weeks;
  stores.reserve(options.inputs.size());
  std::set<int> weeks_union;
  for (const std::string& dir : options.inputs) {
    SnapshotStore store{dir};
    SnapshotStore::ScanResult scan = store.scan();
    if (!scan.readable) {
      result.store_unreadable = true;
      result.error = scan.error;
      return result;
    }
    for (QuarantineEvent& event : scan.quarantined)
      result.quarantined.push_back(std::move(event));
    weeks_union.insert(scan.weeks.begin(), scan.weeks.end());
    store_weeks.push_back(std::move(scan.weeks));
    stores.push_back(std::move(store));
  }

  std::optional<analysis::LongitudinalFolder> folder;
  if (!weeks_union.empty())
    folder.emplace(*weeks_union.begin(), *weeks_union.rbegin());

  for (const int week : weeks_union) {
    // Gather every usable copy of this week across the inputs: validated,
    // provenance decoded and matching this merge's expected inputs.
    std::vector<Copy> copies;
    for (std::size_t i = 0; i < stores.size(); ++i) {
      if (!std::binary_search(store_weeks[i].begin(), store_weeks[i].end(),
                              week))
        continue;
      std::optional<QuarantineEvent> quarantined;
      SnapshotFile file = stores[i].load(week, &quarantined);
      if (quarantined) result.quarantined.push_back(*quarantined);
      if (!file.ok()) continue;  // rotted between scan and load
      const auto provenance =
          SnapshotCodec::decode_provenance(file.section(kProvenanceSection));
      if (!provenance || provenance->format_version != kFormatVersion ||
          provenance->week != week ||
          provenance->model_fingerprint != options.model_fingerprint ||
          provenance->ingest_fingerprint != options.ingest_fingerprint) {
        // A different model, policy, or format produced this file: it is
        // not an observation of the same synthetic week. Skip, count,
        // leave it untouched in its input store.
        ++result.snapshots_skipped_stale;
        continue;
      }
      copies.push_back(Copy{std::move(file), *provenance});
    }
    if (copies.empty()) continue;

    MergedWeek merged_week;
    merged_week.week = week;
    merged_week.copies = copies.size();

    // A complete snapshot supersedes partial shards of the same week —
    // the partials are its subsets, and the pipeline's determinism makes
    // any two complete copies byte-identical, so the first one stands in
    // for all of them.
    const auto complete =
        std::find_if(copies.begin(), copies.end(),
                     [](const Copy& c) { return !c.provenance.partial; });

    if (complete != copies.end()) {
      auto report =
          SnapshotCodec::decode_report(complete->file.section(kReportSection));
      if (!report) {
        result.error = "week " + std::to_string(week) +
                       ": snapshot validated but report section does not "
                       "decode (format bug)";
        return result;
      }
      if (std::string error; !commit_snapshot(
              out.path_for(week), complete->file.bytes(), &error)) {
        result.error = error;
        return result;
      }
      merged_week.report = std::move(*report);
      ++result.weeks_copied;
    } else {
      // All copies are partial shards: fold them through the monoid and
      // re-derive the report — the same reduce the parallel engine runs
      // over its in-memory worker shards, applied to persisted ones.
      std::optional<core::WeekShard> shard;
      for (Copy& copy : copies) {
        auto decoded = SnapshotCodec::decode_shard(
            copy.file.section(kShardSection), vantage.ixp());
        if (!decoded) {
          result.error = "week " + std::to_string(week) +
                         ": partial shard does not decode (format bug)";
          return result;
        }
        if (!shard) {
          shard = std::move(*decoded);
        } else {
          shard->merge(std::move(*decoded));
        }
      }

      const std::vector<std::byte> shard_bytes =
          SnapshotCodec::encode_shard(*shard);
      core::WeekSession session = vantage.open_week(week);
      session.absorb(std::move(*shard));
      core::WeeklyReport report = session.finish(make_fetcher(week));
      const std::vector<std::byte> report_bytes =
          SnapshotCodec::encode_report(report);

      Provenance provenance;
      provenance.format_version = kFormatVersion;
      provenance.week = week;
      provenance.partial = false;  // the union is the whole week now
      provenance.model_fingerprint = options.model_fingerprint;
      provenance.ingest_fingerprint = options.ingest_fingerprint;
      const std::vector<std::byte> provenance_bytes =
          SnapshotCodec::encode_provenance(provenance);

      const Section sections[] = {
          {kShardSection, shard_bytes},
          {kReportSection, report_bytes},
          {kProvenanceSection, provenance_bytes},
      };
      if (std::string error; !out.save(week, sections, &error)) {
        result.error = error;
        return result;
      }
      merged_week.report = std::move(report);
      merged_week.rederived = true;
      ++result.weeks_rederived;
    }

    folder->observe(merged_week.report);
    result.weeks.push_back(std::move(merged_week));
  }

  if (folder) result.longitudinal = folder->finish();
  result.ok = true;
  return result;
}

}  // namespace ixp::store
