#include "store/snapshot_codec.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

#include "classify/dissector.hpp"
#include "classify/peering_filter.hpp"
#include "dns/name.hpp"
#include "dns/uri.hpp"
#include "store/wire.hpp"

namespace ixp::store {

namespace {

using classify::FilterCounters;
using classify::TrafficDissector;

void put_counters(wire::Writer& out, const FilterCounters& counters) {
  for (const std::uint64_t v : counters.samples) out.u64(v);
  for (const std::uint64_t v : counters.bytes) out.u64(v);
  out.u64(counters.tcp_bytes);
  out.u64(counters.udp_bytes);
}

FilterCounters get_counters(wire::Reader& in) {
  FilterCounters counters;
  for (std::uint64_t& v : counters.samples) v = in.u64();
  for (std::uint64_t& v : counters.bytes) v = in.u64();
  counters.tcp_bytes = in.u64();
  counters.udp_bytes = in.u64();
  return counters;
}

void put_locality(wire::Writer& out, const core::LocalityTally& tally) {
  out.u64(tally.ips);
  out.f64(tally.bytes);

  std::vector<net::Ipv4Prefix> prefixes(tally.prefixes.begin(),
                                        tally.prefixes.end());
  std::sort(prefixes.begin(), prefixes.end(),
            [](const net::Ipv4Prefix& a, const net::Ipv4Prefix& b) {
              if (a.network().value() != b.network().value())
                return a.network().value() < b.network().value();
              return a.length() < b.length();
            });
  out.u32(static_cast<std::uint32_t>(prefixes.size()));
  for (const net::Ipv4Prefix& p : prefixes) {
    out.u32(p.network().value());
    out.u8(p.length());
  }

  std::vector<net::Asn> ases(tally.ases.begin(), tally.ases.end());
  std::sort(ases.begin(), ases.end(), [](net::Asn a, net::Asn b) {
    return a.value() < b.value();
  });
  out.u32(static_cast<std::uint32_t>(ases.size()));
  for (const net::Asn asn : ases) out.u32(asn.value());
}

core::LocalityTally get_locality(wire::Reader& in) {
  core::LocalityTally tally;
  tally.ips = in.u64();
  tally.bytes = in.f64();
  const std::uint32_t prefix_count = in.u32();
  for (std::uint32_t i = 0; in.ok() && i < prefix_count; ++i) {
    const std::uint32_t network = in.u32();
    const std::uint8_t length = in.u8();
    tally.prefixes.insert(net::Ipv4Prefix{net::Ipv4Addr{network}, length});
  }
  const std::uint32_t as_count = in.u32();
  for (std::uint32_t i = 0; in.ok() && i < as_count; ++i)
    tally.ases.insert(net::Asn{in.u32()});
  return tally;
}

void put_name_list(wire::Writer& out, const std::vector<dns::DnsName>& names) {
  out.u32(static_cast<std::uint32_t>(names.size()));
  for (const dns::DnsName& name : names) out.str(name.text());
}

bool get_name_list(wire::Reader& in, std::vector<dns::DnsName>& names) {
  const std::uint32_t count = in.u32();
  names.reserve(count);
  for (std::uint32_t i = 0; in.ok() && i < count; ++i) {
    auto name = dns::DnsName::parse(in.str());
    if (!name) return false;
    names.push_back(std::move(*name));
  }
  return in.ok();
}

constexpr std::uint8_t kServerHttp = 0x01;
constexpr std::uint8_t kServerHttps = 0x02;
constexpr std::uint8_t kServerRtmp = 0x04;
constexpr std::uint8_t kServerAlsoClient = 0x08;

}  // namespace

std::vector<std::byte> SnapshotCodec::encode_shard(
    const core::WeekShard& shard) {
  wire::Writer out;
  out.u32(static_cast<std::uint32_t>(shard.week()));
  put_counters(out, shard.counters_);
  out.u64(shard.samples_observed_);

  const TrafficDissector& d = shard.dissector_;
  out.u64(d.total_bytes_);

  // Activity table, sorted by address: FlatHashMap iteration order depends
  // on insertion history, canonical bytes must not.
  std::vector<std::pair<net::Ipv4Addr, classify::IpActivity>> activity;
  activity.reserve(d.activity_.size());
  for (const auto& [addr, entry] : d.activity_) activity.emplace_back(addr, entry);
  std::sort(activity.begin(), activity.end(),
            [](const auto& a, const auto& b) {
              return a.first.value() < b.first.value();
            });
  out.u32(static_cast<std::uint32_t>(activity.size()));
  for (const auto& [addr, entry] : activity) {
    out.u32(addr.value());
    out.u32(entry.samples);
    out.u64(entry.bytes);
    out.u8(entry.flags);
  }

  // Host-header evidence, servers by address, observations by their
  // (first_seq, name) order statistic — the same key the bounded set
  // keeps, so the layout is stable under any shard split.
  std::vector<net::Ipv4Addr> servers;
  servers.reserve(d.hosts_.size());
  for (const auto& [addr, hosts] : d.hosts_) servers.push_back(addr);
  std::sort(servers.begin(), servers.end(),
            [](net::Ipv4Addr a, net::Ipv4Addr b) {
              return a.value() < b.value();
            });
  out.u32(static_cast<std::uint32_t>(servers.size()));
  for (const net::Ipv4Addr addr : servers) {
    auto observations = d.hosts_.find(addr)->second;
    std::sort(observations.begin(), observations.end(),
              [](const auto& a, const auto& b) {
                if (a.first_seq != b.first_seq) return a.first_seq < b.first_seq;
                return a.name < b.name;
              });
    out.u32(addr.value());
    out.u32(static_cast<std::uint32_t>(observations.size()));
    for (const auto& obs : observations) {
      out.u64(obs.first_seq);
      out.str(obs.name.view());
    }
  }
  return out.take();
}

std::optional<core::WeekShard> SnapshotCodec::decode_shard(
    std::span<const std::byte> bytes, const fabric::Ixp& ixp) {
  wire::Reader in{bytes};
  const int week = static_cast<int>(in.u32());
  core::WeekShard shard{ixp, week};
  shard.counters_ = get_counters(in);
  shard.samples_observed_ = in.u64();

  TrafficDissector& d = shard.dissector_;
  d.total_bytes_ = in.u64();

  const std::uint32_t activity_count = in.u32();
  for (std::uint32_t i = 0; in.ok() && i < activity_count; ++i) {
    const net::Ipv4Addr addr{in.u32()};
    classify::IpActivity entry;
    entry.samples = in.u32();
    entry.bytes = in.u64();
    entry.flags = in.u8();
    d.activity_.try_emplace(addr, entry);
  }

  const std::uint32_t server_count = in.u32();
  for (std::uint32_t i = 0; in.ok() && i < server_count; ++i) {
    const net::Ipv4Addr addr{in.u32()};
    const std::uint32_t host_count = in.u32();
    if (host_count > TrafficDissector::kMaxHostsPerServer) return std::nullopt;
    auto& observations = d.hosts_[addr];
    observations.reserve(host_count);
    for (std::uint32_t j = 0; in.ok() && j < host_count; ++j) {
      TrafficDissector::HostObservation obs;
      obs.first_seq = in.u64();
      obs.name.assign(in.str());
      observations.push_back(obs);
    }
  }

  if (!in.ok() || !in.at_end()) return std::nullopt;
  return shard;
}

std::vector<std::byte> SnapshotCodec::encode_report(
    const core::WeeklyReport& report) {
  wire::Writer out;
  out.u32(static_cast<std::uint32_t>(report.week));
  put_counters(out, report.filters);

  const classify::DissectionSummary& ds = report.dissection;
  out.u64(ds.unique_ips);
  out.u64(ds.http_server_ips);
  out.u64(ds.https_candidate_ips);
  out.u64(ds.https_server_ips);
  out.u64(ds.web_server_ips);
  out.u64(ds.client_ips);
  out.u64(ds.dual_role_ips);
  out.u64(ds.multi_purpose_ips);
  out.f64(ds.dual_role_server_bytes);
  out.f64(ds.total_bytes);

  out.u64(report.https_funnel.candidates);
  out.u64(report.https_funnel.responded);
  out.u64(report.https_funnel.confirmed);
  out.u64(report.https_funnel.early_exits);

  const classify::MetadataCoverage& mc = report.metadata_coverage;
  out.u64(mc.servers);
  out.u64(mc.with_dns);
  out.u64(mc.with_uri);
  out.u64(mc.with_cert);
  out.u64(mc.with_any);
  out.u64(mc.cleaned_out);
  out.u64(report.metadata_cleaned_out);

  out.u64(report.peering_ips);
  out.u64(report.peering_prefixes);
  out.u64(report.peering_ases);
  out.u64(report.peering_countries);
  out.u64(report.server_ips);
  out.u64(report.server_prefixes);
  out.u64(report.server_ases);
  out.u64(report.server_countries);

  std::vector<std::pair<geo::CountryCode, core::CountryTally>> by_country;
  by_country.reserve(report.by_country.size());
  for (const auto& [code, tally] : report.by_country)
    by_country.emplace_back(code, tally);
  std::sort(by_country.begin(), by_country.end(),
            [](const auto& a, const auto& b) {
              return a.first.packed() < b.first.packed();
            });
  out.u32(static_cast<std::uint32_t>(by_country.size()));
  for (const auto& [code, tally] : by_country) {
    out.u16(code.packed());
    out.u64(tally.ips);
    out.f64(tally.bytes);
    out.u64(tally.server_ips);
    out.f64(tally.server_bytes);
  }

  std::vector<std::pair<net::Asn, core::AsTally>> by_as;
  by_as.reserve(report.by_as.size());
  for (const auto& [asn, tally] : report.by_as) by_as.emplace_back(asn, tally);
  std::sort(by_as.begin(), by_as.end(), [](const auto& a, const auto& b) {
    return a.first.value() < b.first.value();
  });
  out.u32(static_cast<std::uint32_t>(by_as.size()));
  for (const auto& [asn, tally] : by_as) {
    out.u32(asn.value());
    out.u64(tally.ips);
    out.f64(tally.bytes);
    out.u64(tally.server_ips);
    out.f64(tally.server_bytes);
  }

  for (const auto& tally : report.peering_locality) put_locality(out, tally);
  for (const auto& tally : report.server_locality) put_locality(out, tally);

  // Already canonically sorted by address (WeeklyReport contract).
  out.u32(static_cast<std::uint32_t>(report.servers.size()));
  for (const core::ServerObservation& server : report.servers) {
    out.u32(server.addr.value());
    out.f64(server.bytes);
    std::uint8_t flags = 0;
    if (server.http) flags |= kServerHttp;
    if (server.https) flags |= kServerHttps;
    if (server.rtmp) flags |= kServerRtmp;
    if (server.also_client) flags |= kServerAlsoClient;
    out.u8(flags);
    out.u8(server.asn.has_value() ? 1 : 0);
    out.u32(server.asn.has_value() ? server.asn->value() : 0);
    out.u16(server.country.packed());

    const classify::ServerMetadata& md = server.metadata;
    out.u8(md.hostname.has_value() ? 1 : 0);
    if (md.hostname) out.str(md.hostname->text());
    out.u8(md.soa_authority.has_value() ? 1 : 0);
    if (md.soa_authority) out.str(md.soa_authority->text());
    out.u32(static_cast<std::uint32_t>(md.uris.size()));
    for (const dns::Uri& uri : md.uris) out.str(uri.to_string());
    put_name_list(out, md.cert_names);
  }

  out.u8(report.degraded ? 1 : 0);
  out.u32(static_cast<std::uint32_t>(report.worker_errors.size()));
  for (const std::uint64_t v : report.worker_errors) out.u64(v);
  return out.take();
}

std::optional<core::WeeklyReport> SnapshotCodec::decode_report(
    std::span<const std::byte> bytes) {
  wire::Reader in{bytes};
  core::WeeklyReport report;
  report.week = static_cast<int>(in.u32());
  report.filters = get_counters(in);

  classify::DissectionSummary& ds = report.dissection;
  ds.unique_ips = in.u64();
  ds.http_server_ips = in.u64();
  ds.https_candidate_ips = in.u64();
  ds.https_server_ips = in.u64();
  ds.web_server_ips = in.u64();
  ds.client_ips = in.u64();
  ds.dual_role_ips = in.u64();
  ds.multi_purpose_ips = in.u64();
  ds.dual_role_server_bytes = in.f64();
  ds.total_bytes = in.f64();

  report.https_funnel.candidates = in.u64();
  report.https_funnel.responded = in.u64();
  report.https_funnel.confirmed = in.u64();
  report.https_funnel.early_exits = in.u64();

  classify::MetadataCoverage& mc = report.metadata_coverage;
  mc.servers = in.u64();
  mc.with_dns = in.u64();
  mc.with_uri = in.u64();
  mc.with_cert = in.u64();
  mc.with_any = in.u64();
  mc.cleaned_out = in.u64();
  report.metadata_cleaned_out = in.u64();

  report.peering_ips = in.u64();
  report.peering_prefixes = in.u64();
  report.peering_ases = in.u64();
  report.peering_countries = in.u64();
  report.server_ips = in.u64();
  report.server_prefixes = in.u64();
  report.server_ases = in.u64();
  report.server_countries = in.u64();

  const std::uint32_t country_count = in.u32();
  for (std::uint32_t i = 0; in.ok() && i < country_count; ++i) {
    const std::uint16_t packed = in.u16();
    const geo::CountryCode code{static_cast<char>(packed >> 8),
                                static_cast<char>(packed & 0xff)};
    core::CountryTally tally;
    tally.ips = in.u64();
    tally.bytes = in.f64();
    tally.server_ips = in.u64();
    tally.server_bytes = in.f64();
    report.by_country.try_emplace(code, tally);
  }

  const std::uint32_t as_count = in.u32();
  for (std::uint32_t i = 0; in.ok() && i < as_count; ++i) {
    const net::Asn asn{in.u32()};
    core::AsTally tally;
    tally.ips = in.u64();
    tally.bytes = in.f64();
    tally.server_ips = in.u64();
    tally.server_bytes = in.f64();
    report.by_as.try_emplace(asn, tally);
  }

  for (auto& tally : report.peering_locality) tally = get_locality(in);
  for (auto& tally : report.server_locality) tally = get_locality(in);

  const std::uint32_t server_count = in.u32();
  report.servers.reserve(server_count);
  for (std::uint32_t i = 0; in.ok() && i < server_count; ++i) {
    core::ServerObservation server;
    server.addr = net::Ipv4Addr{in.u32()};
    server.bytes = in.f64();
    const std::uint8_t flags = in.u8();
    server.http = (flags & kServerHttp) != 0;
    server.https = (flags & kServerHttps) != 0;
    server.rtmp = (flags & kServerRtmp) != 0;
    server.also_client = (flags & kServerAlsoClient) != 0;
    const bool has_asn = in.u8() != 0;
    const std::uint32_t asn = in.u32();
    if (has_asn) server.asn = net::Asn{asn};
    const std::uint16_t packed = in.u16();
    server.country = geo::CountryCode{static_cast<char>(packed >> 8),
                                      static_cast<char>(packed & 0xff)};

    classify::ServerMetadata& md = server.metadata;
    md.addr = server.addr;
    if (in.u8() != 0) {
      auto name = dns::DnsName::parse(in.str());
      if (!name) return std::nullopt;
      md.hostname = std::move(*name);
    }
    if (in.u8() != 0) {
      auto name = dns::DnsName::parse(in.str());
      if (!name) return std::nullopt;
      md.soa_authority = std::move(*name);
    }
    const std::uint32_t uri_count = in.u32();
    md.uris.reserve(uri_count);
    for (std::uint32_t j = 0; in.ok() && j < uri_count; ++j) {
      auto uri = dns::Uri::parse(in.str());
      if (!uri) return std::nullopt;
      md.uris.push_back(std::move(*uri));
    }
    if (!get_name_list(in, md.cert_names)) return std::nullopt;
    report.servers.push_back(std::move(server));
  }

  report.degraded = in.u8() != 0;
  const std::uint32_t error_count = in.u32();
  report.worker_errors.reserve(error_count);
  for (std::uint32_t i = 0; in.ok() && i < error_count; ++i)
    report.worker_errors.push_back(in.u64());

  if (!in.ok() || !in.at_end()) return std::nullopt;
  return report;
}

std::vector<std::byte> SnapshotCodec::encode_provenance(
    const Provenance& provenance) {
  wire::Writer out;
  out.reserve(4 + 4 + 1 + 8 + 8);
  out.u32(provenance.format_version);
  out.u32(static_cast<std::uint32_t>(provenance.week));
  out.u8(provenance.partial ? 1 : 0);
  out.u64(provenance.model_fingerprint);
  out.u64(provenance.ingest_fingerprint);
  return out.take();
}

std::optional<Provenance> SnapshotCodec::decode_provenance(
    std::span<const std::byte> bytes) {
  wire::Reader in{bytes};
  Provenance provenance;
  provenance.format_version = in.u32();
  provenance.week = static_cast<std::int32_t>(in.u32());
  const std::uint8_t partial = in.u8();
  if (partial > 1) return std::nullopt;
  provenance.partial = partial != 0;
  provenance.model_fingerprint = in.u64();
  provenance.ingest_fingerprint = in.u64();
  if (!in.ok() || !in.at_end()) return std::nullopt;
  return provenance;
}

}  // namespace ixp::store
