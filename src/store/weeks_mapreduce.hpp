// Weeks map-reduce — the longitudinal run scaled out over processes.
//
// `run_weeks_mapreduce` is `WeeksRunner::run` with a fork stage in front
// (DESIGN.md §16). Weeks are dealt to N workers round-robin (worker i
// takes from+i, from+i+N, …); each worker is a forked child sharing the
// already-built world copy-on-write and running its weeks through its
// own WeeksRunner into the *shared* snapshot store. Durability is the
// only coordination channel: the store's atomic commit means a worker's
// week is either fully on disk or cleanly absent, never torn, and the
// pid-suffixed flock-owned temp names make concurrent commits and scans
// safe against each other.
//
// After every child is reaped, the parent runs one ordinary full-range
// WeeksRunner pass over the store. That pass *is* the reduce and the
// crash recovery in one move: durable weeks are resumed (decode, not
// recompute), and any week a crashed/killed worker failed to commit is
// simply computed — so the final reports and §4 summary are byte-
// identical to a single-process run for any job count and any crash
// pattern. Worker failures are contained, not fatal: they are reported
// per worker in the result (the CLI maps them to its own exit code) while
// the fold still completes.
//
// jobs <= 1 never forks — it is exactly a plain WeeksRunner::run.
#pragma once

#include <functional>
#include <vector>

#include "core/process_pool.hpp"
#include "store/weeks_runner.hpp"

namespace ixp::store {

struct MapReduceOptions {
  WeeksOptions weeks;
  int jobs = 1;  ///< worker process count; clamped to the week count

  /// Test hook, invoked in the *child* before each assigned week is run:
  /// (worker index, week). The crash harness raises SIGKILL here to
  /// simulate a worker dying at a chosen point; production passes
  /// nothing.
  std::function<void(int worker, int week)> before_week;
};

/// One worker's slice and how its process ended.
struct WorkerOutcome {
  core::ProcessStatus status;
  std::vector<int> weeks;  ///< the weeks this worker was dealt

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
};

struct MapReduceResult {
  /// False only when the parent's fold pass failed (same contract as
  /// WeeksResult::ok); worker deaths do NOT clear it — they are contained
  /// and reported in `workers`.
  bool ok = false;
  bool store_unreadable = false;
  std::string error;

  /// Per-worker status, index order. Empty when jobs <= 1 (no forking).
  std::vector<WorkerOutcome> workers;
  /// True when any worker exited nonzero, died on a signal, or failed to
  /// spawn. The fold below still covers that worker's weeks.
  bool worker_failed = false;

  /// The parent's full-range pass: resumed + computed weeks, quarantine
  /// log, and the §4 longitudinal summary.
  WeeksResult fold;
};

/// Runs the week range of `options.weeks` across `options.jobs` forked
/// workers sharing `runner`'s store, then folds. See file comment.
[[nodiscard]] MapReduceResult run_weeks_mapreduce(
    WeeksRunner& runner, const MapReduceOptions& options,
    const WeeksRunner::SourceFactory& make_source,
    const WeeksRunner::FetcherFactory& make_fetcher);

}  // namespace ixp::store
