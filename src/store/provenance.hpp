// Provenance — what a week's snapshot is a pure function of.
//
// A snapshot is only reusable if nothing it depends on has changed. The
// provenance section records exactly that dependency set as two 64-bit
// fingerprints plus the frame they live in:
//
//   - model_fingerprint: the synthetic-Internet configuration (every
//     ScaleConfig knob including the seed — gen::ScaleConfig::fingerprint()).
//     A model tweak invalidates every week computed under the old model.
//   - ingest_fingerprint: the ingest policy the samples flowed through
//     (error budget, batch framing). Thread count is deliberately NOT
//     part of it — reports are byte-identical for any thread or job
//     count, so parallelism never invalidates a snapshot.
//   - format_version / week: the frame. The format version is also in
//     the file header (a mismatch quarantines before provenance is ever
//     read); repeating it here makes the provenance payload
//     self-describing when inspected in quarantine.
//   - partial: true when the shard section holds a *partial* week (one
//     worker's share of a partitioned week) rather than a complete one.
//     Complete snapshots of the same week are interchangeable duplicates
//     (deterministic pipeline ⇒ byte-identical); partial snapshots of the
//     same week must be folded through the WeekShard monoid and the
//     report re-derived. `ixpscope merge` branches on exactly this bit.
//
// On re-run, a durable week whose stored provenance equals the expected
// provenance is skipped (resume); a mismatch is stale — quarantined with
// the `stale-provenance` tag and recomputed, the same never-delete path
// storage rot takes.
#pragma once

#include <cstdint>

namespace ixp::store {

struct Provenance {
  std::uint32_t format_version = 0;
  std::int32_t week = 0;
  bool partial = false;
  std::uint64_t model_fingerprint = 0;
  std::uint64_t ingest_fingerprint = 0;

  /// The resume test: same inputs, same frame, same completeness class.
  friend bool operator==(const Provenance&, const Provenance&) = default;

  /// One digest of the whole record, for log lines and bench labels.
  [[nodiscard]] std::uint64_t combined() const noexcept;
};

}  // namespace ixp::store
