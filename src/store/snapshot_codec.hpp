// SnapshotCodec — canonical byte layout for WeekShard and WeeklyReport.
//
// The codec turns the in-memory state of a finished week into the section
// payloads the SnapshotStore seals, and back. Two properties carry the
// whole durability story:
//
//   1. Canonical form. Hash-map iteration order is not deterministic, so
//      the encoder sorts every table (activity by address, hosts by
//      (first_seq, name), country/AS tallies by key, locality sets by
//      value) before writing. Encoding the same logical state always
//      yields the same bytes — which is what lets tests assert
//      "resumed run == uninterrupted run" at the byte level.
//
//   2. Lossless round trip. decode(encode(x)) reproduces state that is
//      logically identical to x: a decoded shard merges with live shards
//      exactly as the original would have (the monoid contract survives
//      persistence), and a decoded report re-encodes to the same bytes.
//
// Decoders are strict: any underrun, trailing bytes, or unparsable
// embedded value (DNS name, URI) fails the decode — by the time bytes
// reach the codec they have already passed the store's CRCs, so a decode
// failure means a format bug, not disk damage.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/vantage_point.hpp"
#include "core/week_shard.hpp"
#include "store/provenance.hpp"

namespace ixp::store {

class SnapshotCodec {
 public:
  /// Serializes a shard's merged observation state (filter counters,
  /// dissector evidence, sample count) in canonical order.
  [[nodiscard]] static std::vector<std::byte> encode_shard(
      const core::WeekShard& shard);

  /// Reconstructs a shard against `ixp` (the filter needs the fabric to
  /// keep observing or merging). Returns nullopt on malformed bytes.
  [[nodiscard]] static std::optional<core::WeekShard> decode_shard(
      std::span<const std::byte> bytes, const fabric::Ixp& ixp);

  /// Serializes a finished week's report in canonical order.
  [[nodiscard]] static std::vector<std::byte> encode_report(
      const core::WeeklyReport& report);

  /// Returns nullopt on malformed bytes.
  [[nodiscard]] static std::optional<core::WeeklyReport> decode_report(
      std::span<const std::byte> bytes);

  /// Serializes the provenance record (DESIGN.md §16) — the fingerprint
  /// of everything the week's output is a pure function of.
  [[nodiscard]] static std::vector<std::byte> encode_provenance(
      const Provenance& provenance);

  /// Returns nullopt on malformed bytes.
  [[nodiscard]] static std::optional<Provenance> decode_provenance(
      std::span<const std::byte> bytes);
};

}  // namespace ixp::store
