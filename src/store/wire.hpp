// Little-endian wire primitives for the snapshot codec.
//
// Every multi-byte value in a snapshot file is little-endian regardless
// of host byte order, doubles travel as their IEEE-754 bit patterns, and
// strings are u32-length-prefixed — a fixed, portable byte layout is what
// makes "byte-identical round trip" a testable property rather than an
// accident of the compiler. The Reader never reads past its span: any
// underrun latches ok() false and every subsequent read returns zero, so
// codec decoders can run a straight-line field list and check ok() once
// at the end (truncated or trailing bytes both fail).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ixp::store::wire {

class Writer {
 public:
  /// Pre-sizes the buffer. Encoders that can total their output up front
  /// (the snapshot image can, exactly) write with zero reallocation.
  void reserve(std::size_t n) { out_.reserve(n); }

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    bytes(std::as_bytes(std::span<const char>{v.data(), v.size()}));
  }
  void bytes(std::span<const std::byte> v) {
    out_.insert(out_.end(), v.begin(), v.end());
  }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(out_); }

 private:
  std::vector<std::byte> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    if (!need(1)) return 0;
    return std::to_integer<std::uint8_t>(bytes_[at_++]);
  }
  [[nodiscard]] std::uint16_t u16() {
    const auto lo = u8();
    return static_cast<std::uint16_t>(lo | (std::uint16_t{u8()} << 8));
  }
  [[nodiscard]] std::uint32_t u32() {
    const auto lo = u16();
    return lo | (std::uint32_t{u16()} << 16);
  }
  [[nodiscard]] std::uint64_t u64() {
    const auto lo = u32();
    return lo | (std::uint64_t{u32()} << 32);
  }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string out(reinterpret_cast<const char*>(bytes_.data() + at_), n);
    at_ += n;
    return out;
  }

  /// True while every read so far stayed inside the span.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// True when the whole span was consumed (trailing garbage is damage).
  [[nodiscard]] bool at_end() const noexcept {
    return ok_ && at_ == bytes_.size();
  }

 private:
  [[nodiscard]] bool need(std::size_t n) {
    if (!ok_ || bytes_.size() - at_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::byte> bytes_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

}  // namespace ixp::store::wire
