// SnapshotStore — the crash-consistent on-disk home of a finished week.
//
// One snapshot file holds everything a completed week produced: the
// merged WeekShard (so a later process can keep merging) and the final
// WeeklyReport (so resume never re-runs the probe/aggregate phase). The
// format is versioned, checksummed, and sealed:
//
//   header  (24 B)  magic "IXPSNAP\0" + u32 format version
//                   + u32 section count + u64 payload bytes
//   section (16 B + payload) x N
//                   u32 section id + u32 CRC-32C(id, length, payload)
//                   + u64 length
//   footer  (24 B)  magic "IXPSEAL\0" + u32 format version
//                   + u32 CRC-32C(header) + u64 total file bytes
//
// All integers little-endian. The footer is what makes torn writes
// detectable without trusting anything that came before it: a file that
// does not end in a seal naming its own exact size is not a snapshot.
// Each section CRC covers the section's own id and length fields as well
// as every payload byte, and the header CRC covers the file header, so a
// single flipped bit anywhere outside a CRC word fails validation (and a
// flip inside a CRC word fails it too, by mismatching an intact input).
//
// Commit is the classic crash-consistent dance (DESIGN.md §13): write
// `<path>.tmp.<pid>`, fsync it, rename() over the destination, fsync the
// directory. A crash at any point leaves either the old file, no file,
// or a temp that open() never considers — never a half-written snapshot
// under the committed name. The writer holds an flock on the temp for
// the duration of the write, which is what makes the store safe to share
// between concurrent `weeks` processes (DESIGN.md §16): a scanner sweeps
// only temps whose lock it can take (the owner died), never a live
// commit's, and double-commits of the same week converge because the
// pipeline is deterministic — both renames install byte-identical
// images. Files that fail validation are quarantined (renamed aside with
// the error class in the name) rather than deleted, so an operator can
// inspect what the fault matrix chewed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ixp::store {

inline constexpr char kSnapshotMagic[8] = {'I', 'X', 'P', 'S', 'N', 'A', 'P', '\0'};
inline constexpr char kFooterMagic[8] = {'I', 'X', 'P', 'S', 'E', 'A', 'L', '\0'};
// v2: ProbeFunnel gained early_exits (PR 9). v3: snapshots carry a
// provenance section (model/ingest fingerprints, partial-shard flag —
// DESIGN.md §16). Old files decode as kBadVersion and take the
// quarantine-and-recompute path by design.
inline constexpr std::uint32_t kFormatVersion = 3;
inline constexpr std::size_t kSnapshotHeaderBytes = 24;
inline constexpr std::size_t kSnapshotFooterBytes = 24;
inline constexpr std::size_t kSectionHeaderBytes = 16;

/// Section ids (u32, format-stable).
inline constexpr std::uint32_t kShardSection = 1;
inline constexpr std::uint32_t kReportSection = 2;
inline constexpr std::uint32_t kProvenanceSection = 3;

/// Why a snapshot failed to open — the distinct taxonomy the quarantine
/// path and the CLI report (mirrors sflow::MappedTrace::Error in spirit).
enum class SnapshotError : std::uint8_t {
  kNone,              ///< opened and fully validated
  kOpenFailed,        ///< the file could not be opened or stat'ed
  kTooShort,          ///< smaller than header + footer
  kBadMagic,          ///< header magic mismatch
  kBadVersion,        ///< header format version mismatch
  kBadCrc,            ///< a section payload or the header failed its CRC
  kTruncatedSection,  ///< framing does not tile the file (torn/duplicated
                      ///< tail, section running past the seal, missing seal)
  kStaleProvenance,   ///< intact file, but its provenance no longer matches
                      ///< what the run would compute (model/policy changed);
                      ///< never produced by validate_image — the runner
                      ///< classifies it after decoding the provenance section
};

/// Human-readable name for CLI diagnostics and quarantine suffixes.
[[nodiscard]] const char* error_name(SnapshotError error) noexcept;
/// Short kebab-case tag used in quarantine file names ("bad-crc").
[[nodiscard]] const char* error_tag(SnapshotError error) noexcept;

/// One section to be written.
struct Section {
  std::uint32_t id = 0;
  std::span<const std::byte> payload;
};

/// One validated section inside an open snapshot image.
struct SectionView {
  std::uint32_t id = 0;
  std::size_t offset = 0;  ///< payload offset within the file image
  std::size_t length = 0;
};

/// Builds a complete sealed snapshot image (header + sections + footer).
[[nodiscard]] std::vector<std::byte> encode_snapshot(
    std::span<const Section> sections);

/// Validates a snapshot image; fills `sections_out` (when non-null) with
/// the section table on success. Returns kNone when the image is intact.
[[nodiscard]] SnapshotError validate_image(
    std::span<const std::byte> image,
    std::vector<SectionView>* sections_out = nullptr);

/// Crash-point instrumentation for commit(): each hook runs at the named
/// point of the commit protocol and may throw (StoreFaultInjector throws
/// InjectedCrash) to simulate the process dying right there. Production
/// callers pass nullptr.
struct CommitHooks {
  /// After roughly half the temp file's bytes are written (torn temp).
  std::function<void(const std::string& temp_path)> mid_temp_write;
  /// Temp file fully written, not yet fsync'ed.
  std::function<void(const std::string& temp_path)> after_temp_write;
  /// Temp file fsync'ed, not yet renamed.
  std::function<void(const std::string& temp_path)> after_temp_sync;
  /// rename() done, directory not yet fsync'ed.
  std::function<void(const std::string& path)> after_rename;
};

/// Crash-consistently writes `image` to `path` (temp + fsync + rename +
/// directory fsync). On failure returns false with a diagnostic in
/// `*error`; the destination is never left half-written. Hook exceptions
/// propagate (the simulated crash) after closing the temp descriptor.
[[nodiscard]] bool commit_snapshot(const std::string& path,
                                   std::span<const std::byte> image,
                                   std::string* error,
                                   const CommitHooks* hooks = nullptr);

/// A read-only validated snapshot file: mmap'ed on POSIX hosts, read into
/// an owned buffer elsewhere (the MappedTrace pattern). Move-only.
class SnapshotFile {
 public:
  SnapshotFile() = default;
  ~SnapshotFile();

  SnapshotFile(SnapshotFile&& other) noexcept;
  SnapshotFile& operator=(SnapshotFile&& other) noexcept;
  SnapshotFile(const SnapshotFile&) = delete;
  SnapshotFile& operator=(const SnapshotFile&) = delete;

  /// Maps (or reads) and fully validates the snapshot at `path`.
  [[nodiscard]] static SnapshotFile open(const std::string& path);

  /// Re-points this handle at `path`, releasing the previous image and
  /// revalidating in place. Equivalent to `*this = open(path)` but reuses
  /// the section-table (and, on the non-mmap path, the read-buffer)
  /// capacity across opens — the decode-side half of the store bench's
  /// allocation budget. Returns ok().
  bool reopen(const std::string& path);

  /// Wraps an in-memory image (tests, benchmarks); validates identically.
  [[nodiscard]] static SnapshotFile adopt(std::vector<std::byte> bytes);

  [[nodiscard]] bool ok() const noexcept {
    return error_ == SnapshotError::kNone;
  }
  [[nodiscard]] SnapshotError error() const noexcept { return error_; }

  /// Payload of the first section with `id`; empty when absent.
  [[nodiscard]] std::span<const std::byte> section(std::uint32_t id) const noexcept;

  [[nodiscard]] const std::vector<SectionView>& sections() const noexcept {
    return sections_;
  }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {data_, size_};
  }
  [[nodiscard]] bool is_mapped() const noexcept { return mapped_; }

 private:
  void release() noexcept;
  void validate() noexcept;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> owned_;
  std::vector<SectionView> sections_;
  SnapshotError error_ = SnapshotError::kOpenFailed;
};

/// One corrupt file moved aside during load()/scan().
struct QuarantineEvent {
  std::string file;            ///< original path
  std::string quarantined_as;  ///< where it was moved (empty if move failed)
  SnapshotError error = SnapshotError::kNone;
};

/// A directory of per-week snapshots (`week_<NNNN>.snap`). The store owns
/// naming, atomic commit, validation-with-quarantine on load, and the
/// resume scan. It never deletes data: corrupt files are renamed aside,
/// stale temp files (a crash between write and rename) are removed on
/// scan — they were never committed, so nothing durable is lost.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Creates the directory if needed. False (with diagnostic) when the
  /// path exists but is not a directory, or creation fails.
  [[nodiscard]] bool ensure_dir(std::string* error) const;

  [[nodiscard]] std::string path_for(int week) const;

  /// Atomically commits one week's sections.
  [[nodiscard]] bool save(int week, std::span<const Section> sections,
                          std::string* error,
                          const CommitHooks* hooks = nullptr) const;

  /// Opens and validates week's snapshot. On any validation failure the
  /// file is quarantined and the event reported through `quarantined`;
  /// the returned file then carries the error. A missing file is plain
  /// kOpenFailed with no quarantine.
  [[nodiscard]] SnapshotFile load(
      int week, std::optional<QuarantineEvent>* quarantined = nullptr) const;

  struct ScanResult {
    bool readable = true;    ///< false: the directory itself is unreadable
    std::string error;       ///< diagnostic when !readable
    std::vector<int> weeks;  ///< weeks with a valid snapshot, ascending
    std::vector<QuarantineEvent> quarantined;
    std::size_t stale_temps_removed = 0;
  };

  /// Walks the directory: validates every `week_*.snap` (quarantining the
  /// corrupt ones), removes stale `.tmp` leftovers that no live commit
  /// still owns (ownership = an flock held for the duration of the
  /// write — a racing process's in-flight temp is left alone), and
  /// returns the weeks that are durably on disk.
  [[nodiscard]] ScanResult scan() const;

  /// Moves a snapshot aside with the error class in the name; returns the
  /// event (quarantined_as empty when the rename itself failed). The
  /// runner calls this directly for kStaleProvenance — a file validate()
  /// accepts but whose recorded inputs no longer match the run's.
  [[nodiscard]] QuarantineEvent quarantine(const std::string& path,
                                           SnapshotError error) const;

 private:
  std::string dir_;
};

}  // namespace ixp::store
