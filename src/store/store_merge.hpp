// Store merge — fold snapshot stores from separate machines or processes
// into one (DESIGN.md §16).
//
// `ixpscope weeks` runs on machine A for weeks 35..43 and on machine B
// for 44..51; each leaves a directory of sealed snapshots. merge_stores
// walks every input store and produces one output store covering the
// union, equal to what a single machine running the whole range would
// have written:
//
//   - A week present in exactly one input as a *complete* snapshot is
//     copied through byte-for-byte (revalidated, then re-committed
//     atomically into the output).
//   - A week present in several inputs as complete snapshots is a
//     duplicate: the pipeline is deterministic, so the copies are
//     byte-identical and the first valid one is copied. Copies are
//     counted, not errors — overlapping ranges are a legitimate way to
//     run redundant machines.
//   - A week present as *partial* shards (provenance.partial — each
//     holds one worker's share of the week's samples) is folded through
//     the WeekShard monoid: decode every shard, merge, absorb into a
//     fresh session, and re-derive the report with the week's fetcher.
//     The monoid contract makes the result byte-identical to analyzing
//     the whole week in one process — provided the partial shards
//     together partition the week, which is the caller's contract.
//     A complete copy of the same week supersedes any partial shards
//     (they are its subsets; folding them in would double-count).
//   - A snapshot whose provenance does not match the expected
//     fingerprints (a different model or ingest policy) is skipped and
//     counted — merging across models would manufacture a week nobody
//     measured. Corrupt inputs are quarantined in place, as ever.
//
// The output store is written with the same atomic commit as the weeks
// driver, so a merge interrupted at any point leaves a valid (possibly
// incomplete) output that a re-run completes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/longitudinal.hpp"
#include "store/snapshot_store.hpp"
#include "store/weeks_runner.hpp"

namespace ixp::store {

struct MergeOptions {
  std::vector<std::string> inputs;  ///< input store directories
  std::string out;                  ///< output store directory

  /// Expected provenance inputs — snapshots recording anything else are
  /// skipped as stale rather than merged (see file comment).
  std::uint64_t model_fingerprint = 0;
  std::uint64_t ingest_fingerprint = 0;
};

/// How one output week was produced.
struct MergedWeek {
  int week = 0;
  std::size_t copies = 0;   ///< valid input snapshots consulted
  bool rederived = false;   ///< folded from partial shards (vs copied)
  core::WeeklyReport report;
};

struct MergeResult {
  bool ok = false;
  /// An input directory was unreadable or the output directory unusable.
  bool store_unreadable = false;
  std::string error;

  std::vector<MergedWeek> weeks;  ///< ascending week order
  std::size_t weeks_copied = 0;
  std::size_t weeks_rederived = 0;
  std::size_t snapshots_skipped_stale = 0;
  std::vector<QuarantineEvent> quarantined;  ///< rot found in the inputs

  /// §4 over the merged union.
  analysis::LongitudinalSummary longitudinal;
};

/// Folds every input store into `options.out`. `vantage` and
/// `make_fetcher` are needed only when partial shards must be re-derived;
/// complete-copy merges never invoke them.
[[nodiscard]] MergeResult merge_stores(
    core::VantagePoint& vantage, const MergeOptions& options,
    const WeeksRunner::FetcherFactory& make_fetcher);

}  // namespace ixp::store
