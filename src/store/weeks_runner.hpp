// WeeksRunner — the resumable longitudinal driver (§4 over N weeks).
//
// One call runs a contiguous range of observation weeks through the
// parallel engine and leaves one durable snapshot per completed week in
// a SnapshotStore. The driver is crash-consistent end to end:
//
//   - Before any work it scans the store: valid snapshots become resume
//     points, corrupt ones are quarantined (and their weeks re-run),
//     stale temp files from a previous crash are swept.
//   - A week with a durable snapshot is NOT re-run: its report is decoded
//     straight from disk. A week without one is computed — reduce() hands
//     back the merged shard, which is encoded *before* the session
//     absorbs it, so the persisted artifact is exactly the state that
//     produced the report.
//   - The snapshot commit is atomic (SnapshotStore::save); a crash at any
//     point of any week leaves either that week durable or cleanly
//     absent, never half-written. Re-running after a crash therefore
//     recomputes at most the one interrupted week.
//
// Because every phase is deterministic (the workload is seeded, the
// engine is byte-identical across thread counts, the codec is canonical),
// a resumed run's reports — and the §4 longitudinal summary folded from
// them — are byte-identical to an uninterrupted run's. The crash-matrix
// tests drive every CrashPoint and StorageFault through this property.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/longitudinal.hpp"
#include "core/parallel_analyzer.hpp"
#include "core/vantage_point.hpp"
#include "ingest/ingest_source.hpp"
#include "store/snapshot_store.hpp"

namespace ixp::store {

struct WeeksOptions {
  int from_week = 0;
  int to_week = 0;  ///< inclusive

  /// The inputs half of each snapshot's provenance record (DESIGN.md
  /// §16): the model fingerprint (gen::ScaleConfig::fingerprint()) and
  /// the ingest-policy fingerprint. Stamped into every snapshot written
  /// and checked on every snapshot resumed — a durable week whose stored
  /// provenance differs is stale (the model or policy changed since it
  /// was computed) and is quarantined-and-recomputed, exactly like
  /// storage rot. Thread/job counts are deliberately absent: reports are
  /// byte-identical across parallelism, so it never invalidates.
  std::uint64_t model_fingerprint = 0;
  std::uint64_t ingest_fingerprint = 0;
};

/// How one week of the range was satisfied.
struct WeekOutcome {
  int week = 0;
  bool resumed = false;  ///< decoded from a durable snapshot, not re-run
  core::WeeklyReport report;
};

struct WeeksResult {
  /// False only for environment failures (unreadable/uncreatable store
  /// directory, commit failure, undecodable snapshot); the CLI maps the
  /// store-directory case to its own exit code.
  bool ok = false;
  bool store_unreadable = false;  ///< the failure was the store directory
  std::string error;

  std::vector<WeekOutcome> weeks;  ///< ascending week order
  std::size_t weeks_resumed = 0;
  std::size_t weeks_computed = 0;
  /// Durable snapshots whose provenance no longer matched this run's
  /// inputs: quarantined (`stale-provenance`) and recomputed. Always
  /// counted inside weeks_computed as well.
  std::size_t weeks_stale = 0;

  /// What the pre-run scan found and did.
  std::vector<QuarantineEvent> quarantined;
  std::size_t stale_temps_removed = 0;

  /// §4 churn/persistence over the full range (resumed + computed).
  analysis::LongitudinalSummary longitudinal;
};

class WeeksRunner {
 public:
  /// Mints the sample source for one week; invoked only for weeks that
  /// have no durable snapshot.
  using SourceFactory =
      std::function<std::unique_ptr<ingest::IngestSource>(int week)>;
  /// Mints the certificate fetcher for one week's probe phase.
  using FetcherFactory = std::function<classify::ChainFetcher(int week)>;

  WeeksRunner(core::VantagePoint& vantage, core::ParallelAnalyzer& analyzer,
              SnapshotStore store)
      : vantage_(&vantage), analyzer_(&analyzer), store_(std::move(store)) {}

  [[nodiscard]] const SnapshotStore& store() const noexcept { return store_; }

  /// Runs weeks [from_week, to_week], resuming past durable snapshots.
  /// `hooks` (when set) instruments every snapshot commit — the crash
  /// harness; an InjectedCrash thrown by a hook propagates with the
  /// filesystem exactly as the simulated kill left it.
  [[nodiscard]] WeeksResult run(const WeeksOptions& options,
                                const SourceFactory& make_source,
                                const FetcherFactory& make_fetcher,
                                const CommitHooks* hooks = nullptr);

 private:
  core::VantagePoint* vantage_;
  core::ParallelAnalyzer* analyzer_;
  SnapshotStore store_;
};

}  // namespace ixp::store
