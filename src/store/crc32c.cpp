#include "store/crc32c.hpp"

#include <array>

namespace ixp::store {

namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected

/// Four slicing tables: table[0] is the classic byte-at-a-time table,
/// table[k][b] extends a CRC whose low byte is b across k+1 zero bytes.
constexpr std::array<std::array<std::uint32_t, 256>, 4> build_tables() {
  std::array<std::array<std::uint32_t, 256>, 4> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    tables[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables[0][i];
    for (std::size_t t = 1; t < 4; ++t) {
      crc = tables[0][crc & 0xffu] ^ (crc >> 8);
      tables[t][i] = crc;
    }
  }
  return tables;
}

constexpr auto kTables = build_tables();

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data,
                     std::uint32_t crc) noexcept {
  crc = ~crc;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 4) {
    crc ^= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[0])) |
           (static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[1]))
            << 8) |
           (static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[2]))
            << 16) |
           (static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[3]))
            << 24);
    crc = kTables[3][crc & 0xffu] ^ kTables[2][(crc >> 8) & 0xffu] ^
          kTables[1][(crc >> 16) & 0xffu] ^ kTables[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = kTables[0][(crc ^ std::to_integer<std::uint8_t>(*p++)) & 0xffu] ^
          (crc >> 8);
  }
  return ~crc;
}

}  // namespace ixp::store
