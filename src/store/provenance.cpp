#include "store/provenance.hpp"

#include "util/fnv.hpp"

namespace ixp::store {

std::uint64_t Provenance::combined() const noexcept {
  util::Fnv1a h;
  h.mix(std::uint64_t{format_version});
  h.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(week)));
  h.mix(std::uint64_t{partial ? 1u : 0u});
  h.mix(model_fingerprint);
  h.mix(ingest_fingerprint);
  return h.value();
}

}  // namespace ixp::store
