// StoreFaultInjector — the snapshot store's adversary.
//
// Two families of failure, matching how storage actually fails:
//
//   Crash points. The commit protocol (write temp → fsync → rename →
//   fsync dir) has four interesting places to die. crash_at() arms a
//   CommitHooks that throws InjectedCrash at exactly one of them, leaving
//   the filesystem in the state a real kill would: a torn temp, an
//   unsynced temp, a synced-but-unrenamed temp, or a renamed file whose
//   directory entry may not be durable. The weeks driver must recover
//   from every one of these to a byte-identical final report.
//
//   Storage faults. A committed snapshot can still rot: lost tail on an
//   unclean unmount, mid-file truncation, a flipped bit in the header,
//   a section payload, or a CRC field, a duplicated final sector. apply()
//   deals exactly one such fault class to a sealed image, deterministic
//   under the injector's seed. Every class must be caught at open() and
//   quarantined with the right SnapshotError — never a crash, never a
//   silently wrong report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "store/snapshot_store.hpp"
#include "util/rng.hpp"

namespace ixp::store {

/// Thrown by an armed commit hook: the simulated process death. Carries
/// the crash point's name so tests can assert where they died.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& where)
      : std::runtime_error("injected crash at " + where) {}
};

/// Where in the commit protocol the process dies.
enum class CrashPoint : std::uint8_t {
  kMidTempWrite,    ///< half the temp file's bytes on disk
  kAfterTempWrite,  ///< temp complete but not fsync'ed
  kAfterTempSync,   ///< temp durable, rename not yet issued
  kAfterRename,     ///< renamed, directory entry possibly not durable
};

inline constexpr CrashPoint kAllCrashPoints[] = {
    CrashPoint::kMidTempWrite,
    CrashPoint::kAfterTempWrite,
    CrashPoint::kAfterTempSync,
    CrashPoint::kAfterRename,
};

[[nodiscard]] const char* crash_point_name(CrashPoint point) noexcept;

/// The storage-rot fault classes dealt to committed snapshot images.
enum class StorageFault : std::uint8_t {
  kTornTail,         ///< tail lost inside the footer region
  kMidTruncation,    ///< file cut somewhere in its first half
  kHeaderBitFlip,    ///< one bit in the 24-byte header
  kSectionBitFlip,   ///< one bit in the section region (payload or framing)
  kCrcFieldBitFlip,  ///< one bit in the first section's stored CRC
  kDuplicatedFooter, ///< final footer-sized block appended twice
};

inline constexpr StorageFault kAllStorageFaults[] = {
    StorageFault::kTornTail,        StorageFault::kMidTruncation,
    StorageFault::kHeaderBitFlip,   StorageFault::kSectionBitFlip,
    StorageFault::kCrcFieldBitFlip, StorageFault::kDuplicatedFooter,
};

[[nodiscard]] const char* storage_fault_name(StorageFault fault) noexcept;

class StoreFaultInjector {
 public:
  explicit StoreFaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Deals one fault class to a sealed snapshot image, in place. Draws
  /// from the injector's Rng, so a fixed seed and call sequence corrupts
  /// identically on every run.
  void apply(StorageFault fault, std::vector<std::byte>& image);

  /// CommitHooks that throw InjectedCrash when commit reaches `point`.
  [[nodiscard]] static CommitHooks crash_at(CrashPoint point);

 private:
  util::Rng rng_;
};

}  // namespace ixp::store
