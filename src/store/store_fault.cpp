#include "store/store_fault.hpp"

#include "sflow/fault_injector.hpp"

namespace ixp::store {

const char* crash_point_name(CrashPoint point) noexcept {
  switch (point) {
    case CrashPoint::kMidTempWrite: return "mid-temp-write";
    case CrashPoint::kAfterTempWrite: return "after-temp-write";
    case CrashPoint::kAfterTempSync: return "after-temp-sync";
    case CrashPoint::kAfterRename: return "after-rename";
  }
  return "unknown";
}

const char* storage_fault_name(StorageFault fault) noexcept {
  switch (fault) {
    case StorageFault::kTornTail: return "torn-tail";
    case StorageFault::kMidTruncation: return "mid-truncation";
    case StorageFault::kHeaderBitFlip: return "header-bit-flip";
    case StorageFault::kSectionBitFlip: return "section-bit-flip";
    case StorageFault::kCrcFieldBitFlip: return "crc-field-bit-flip";
    case StorageFault::kDuplicatedFooter: return "duplicated-footer";
  }
  return "unknown";
}

void StoreFaultInjector::apply(StorageFault fault,
                               std::vector<std::byte>& image) {
  using sflow::FaultInjector;
  switch (fault) {
    case StorageFault::kTornTail: {
      // Lose 1..24 final bytes: the seal is gone or partial.
      if (image.size() <= kSnapshotFooterBytes) return;
      const std::size_t lost =
          1 + static_cast<std::size_t>(rng_.next_below(kSnapshotFooterBytes));
      FaultInjector::truncate_blob(image, image.size() - lost);
      return;
    }
    case StorageFault::kMidTruncation:
      FaultInjector::truncate_blob(
          image, static_cast<std::size_t>(rng_.next_below(image.size() / 2)));
      return;
    case StorageFault::kHeaderBitFlip:
      FaultInjector::flip_bit_in(image, 0, kSnapshotHeaderBytes, rng_);
      return;
    case StorageFault::kSectionBitFlip: {
      const std::size_t framing = kSnapshotHeaderBytes + kSnapshotFooterBytes;
      if (image.size() <= framing) return;
      FaultInjector::flip_bit_in(image, kSnapshotHeaderBytes,
                                 image.size() - framing, rng_);
      return;
    }
    case StorageFault::kCrcFieldBitFlip:
      // The first section's stored CRC word (offset 4 in its 16-byte
      // record): the payload is intact but no longer vouched for.
      FaultInjector::flip_bit_in(image, kSnapshotHeaderBytes + 4, 4, rng_);
      return;
    case StorageFault::kDuplicatedFooter:
      FaultInjector::duplicate_tail(image, kSnapshotFooterBytes);
      return;
  }
}

CommitHooks StoreFaultInjector::crash_at(CrashPoint point) {
  CommitHooks hooks;
  const auto die = [point](const std::string&) {
    throw InjectedCrash{crash_point_name(point)};
  };
  switch (point) {
    case CrashPoint::kMidTempWrite: hooks.mid_temp_write = die; break;
    case CrashPoint::kAfterTempWrite: hooks.after_temp_write = die; break;
    case CrashPoint::kAfterTempSync: hooks.after_temp_sync = die; break;
    case CrashPoint::kAfterRename: hooks.after_rename = die; break;
  }
  return hooks;
}

}  // namespace ixp::store
