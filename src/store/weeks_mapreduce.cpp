#include "store/weeks_mapreduce.hpp"

#include <algorithm>

namespace ixp::store {

MapReduceResult run_weeks_mapreduce(
    WeeksRunner& runner, const MapReduceOptions& options,
    const WeeksRunner::SourceFactory& make_source,
    const WeeksRunner::FetcherFactory& make_fetcher) {
  MapReduceResult result;
  const int from = options.weeks.from_week;
  const int to = options.weeks.to_week;
  if (to < from) {
    result.error = "empty week range";
    return result;
  }

  // The directory must be usable before any child is forked: failing in
  // N children produces N copies of the same diagnostic and no insight.
  if (std::string error; !runner.store().ensure_dir(&error)) {
    result.store_unreadable = true;
    result.error = error;
    return result;
  }

  const int week_count = to - from + 1;
  const int jobs = std::clamp(options.jobs, 1, week_count);

  if (jobs > 1) {
    const auto job = [&](int worker) -> int {
      // Round-robin deal: worker w computes weeks from+w, from+w+jobs, …
      // Each week is one single-week runner pass into the shared store —
      // the commit is atomic and flock-owned, so workers never tear each
      // other's files and a concurrent scan never sweeps a live temp.
      for (int week = from + worker; week <= to; week += jobs) {
        if (options.before_week) options.before_week(worker, week);
        WeeksOptions one = options.weeks;
        one.from_week = week;
        one.to_week = week;
        const WeeksResult r = runner.run(one, make_source, make_fetcher);
        if (!r.ok) return r.store_unreadable ? 5 : 1;
      }
      return 0;
    };

    const std::vector<core::ProcessStatus> statuses =
        core::ProcessPool::run(jobs, job);

    result.workers.reserve(statuses.size());
    for (const core::ProcessStatus& status : statuses) {
      WorkerOutcome outcome;
      outcome.status = status;
      for (int week = from + status.worker; week <= to; week += jobs)
        outcome.weeks.push_back(week);
      result.worker_failed = result.worker_failed || !outcome.ok();
      result.workers.push_back(std::move(outcome));
    }
  }

  // The reduce: one ordinary full-range pass over the store. Durable
  // weeks (everything healthy workers committed) resume; anything a dead
  // worker left undone is computed right here — recovery is not a special
  // case, it is the resume path.
  result.fold = runner.run(options.weeks, make_source, make_fetcher);
  result.ok = result.fold.ok;
  result.store_unreadable = result.fold.store_unreadable;
  result.error = result.fold.error;
  return result;
}

}  // namespace ixp::store
