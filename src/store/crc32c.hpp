// CRC-32C (Castagnoli) — the per-section checksum of the snapshot store.
//
// The snapshot format (snapshot_store.hpp) seals every section payload
// with a CRC so a single flipped bit anywhere in the file is caught at
// open time, before any decoding runs. CRC-32C is the iSCSI/ext4
// polynomial (0x1EDC6F41, reflected 0x82F63B78): better error-detection
// spectrum than CRC-32/zlib at the same cost, and the value every
// storage-layer tool agrees on. The implementation is a software
// slicing-by-four table walk — no intrinsics, no dependencies, identical
// output on every platform (determinism is part of the format contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ixp::store {

/// CRC-32C over `data`, continuing from `crc` (pass the previous return
/// value to checksum a buffer in pieces; 0 starts a fresh checksum).
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> data,
                                   std::uint32_t crc = 0) noexcept;

}  // namespace ixp::store
