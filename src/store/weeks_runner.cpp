#include "store/weeks_runner.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "store/snapshot_codec.hpp"

namespace ixp::store {

WeeksResult WeeksRunner::run(const WeeksOptions& options,
                             const SourceFactory& make_source,
                             const FetcherFactory& make_fetcher,
                             const CommitHooks* hooks) {
  WeeksResult result;
  if (options.to_week < options.from_week) {
    result.error = "empty week range";
    return result;
  }

  if (std::string error; !store_.ensure_dir(&error)) {
    result.store_unreadable = true;
    result.error = error;
    return result;
  }

  // One scan up front: quarantine rot, sweep crash leftovers, and learn
  // which weeks are already durable.
  SnapshotStore::ScanResult scan = store_.scan();
  if (!scan.readable) {
    result.store_unreadable = true;
    result.error = scan.error;
    return result;
  }
  result.quarantined = std::move(scan.quarantined);
  result.stale_temps_removed = scan.stale_temps_removed;

  for (int week = options.from_week; week <= options.to_week; ++week) {
    const bool durable = std::binary_search(scan.weeks.begin(),
                                            scan.weeks.end(), week);
    WeekOutcome outcome;
    outcome.week = week;

    // What this run would stamp into the week's snapshot — and therefore
    // what a durable snapshot must carry to be reusable.
    Provenance expected;
    expected.format_version = kFormatVersion;
    expected.week = week;
    expected.partial = false;
    expected.model_fingerprint = options.model_fingerprint;
    expected.ingest_fingerprint = options.ingest_fingerprint;

    if (durable) {
      std::optional<QuarantineEvent> quarantined;
      const SnapshotFile file = store_.load(week, &quarantined);
      if (quarantined) result.quarantined.push_back(*quarantined);
      if (file.ok()) {
        const auto provenance =
            SnapshotCodec::decode_provenance(file.section(kProvenanceSection));
        if (!provenance || !(*provenance == expected)) {
          // Intact file, wrong inputs: the model or ingest policy changed
          // since this week was computed (or the snapshot is a partial
          // shard that never represented the whole week). Same never-
          // delete path as storage rot — move it aside, recompute.
          result.quarantined.push_back(store_.quarantine(
              store_.path_for(week), SnapshotError::kStaleProvenance));
          ++result.weeks_stale;
        } else {
          auto report =
              SnapshotCodec::decode_report(file.section(kReportSection));
          if (!report) {
            result.error = store_.path_for(week) +
                           ": snapshot validated but report section does not "
                           "decode (format bug)";
            return result;
          }
          outcome.resumed = true;
          outcome.report = std::move(*report);
          ++result.weeks_resumed;
          result.weeks.push_back(std::move(outcome));
          continue;
        }
      }
      // The file rotted between scan and load (or scan raced another
      // process), or carried stale provenance: recompute the week.
    }

    std::unique_ptr<ingest::IngestSource> source = make_source(week);
    core::WeekSession session = vantage_->open_week(week);
    std::vector<std::uint64_t> errors;
    core::WeekShard shard = analyzer_->reduce(session, *source, &errors);

    // Encode the mergeable artifact before the session consumes it: the
    // persisted shard is byte-for-byte the state the report came from.
    const std::vector<std::byte> shard_bytes = SnapshotCodec::encode_shard(shard);
    session.absorb(std::move(shard));
    core::WeeklyReport report = session.finish(make_fetcher(week));
    const std::uint64_t dropped =
        std::accumulate(errors.begin(), errors.end(), std::uint64_t{0});
    if (dropped > 0) {
      report.degraded = true;
      report.worker_errors = std::move(errors);
    }
    const std::vector<std::byte> report_bytes =
        SnapshotCodec::encode_report(report);
    const std::vector<std::byte> provenance_bytes =
        SnapshotCodec::encode_provenance(expected);

    const Section sections[] = {
        {kShardSection, shard_bytes},
        {kReportSection, report_bytes},
        {kProvenanceSection, provenance_bytes},
    };
    if (std::string error; !store_.save(week, sections, &error, hooks)) {
      result.error = error;
      return result;
    }

    outcome.resumed = false;
    outcome.report = std::move(report);
    ++result.weeks_computed;
    result.weeks.push_back(std::move(outcome));
  }

  std::vector<core::WeeklyReport> reports;
  reports.reserve(result.weeks.size());
  for (const WeekOutcome& outcome : result.weeks)
    reports.push_back(outcome.report);
  result.longitudinal = analysis::summarize_longitudinal(reports);

  result.ok = true;
  return result;
}

}  // namespace ixp::store
