// Open DNS resolver population (paper §2.3).
//
// The paper starts from the top ~280K recursive resolvers seen by a large
// CDN, then eliminates those "that cannot be used for active measurements
// (i.e., those that are not open, delegate DNS resolutions to other
// resolvers, or provide incorrect answers)", ending with ~25K usable
// resolvers across ~12K ASes. ResolverPopulation models the candidate set
// with these behaviours; `usable_resolvers` performs the same filtering by
// probing each candidate with a known query.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dns/zone_db.hpp"
#include "net/ipv4.hpp"
#include "util/rng.hpp"

namespace ixp::dns {

/// How a candidate resolver responds to probes.
enum class ResolverBehavior : std::uint8_t {
  kOpen,        // answers correctly from the authoritative data
  kClosed,      // refuses queries from outside its network
  kDelegating,  // forwards to another resolver (answer source unusable)
  kLying,       // returns wrong answers (e.g. NXDOMAIN redirection)
};

struct Resolver {
  net::Ipv4Addr address;
  net::Asn asn;
  ResolverBehavior behavior = ResolverBehavior::kOpen;
};

/// Outcome of probing one resolver with a query whose answer is known.
struct ProbeResult {
  bool answered = false;
  bool answer_correct = false;
  bool delegated = false;
};

class ResolverPopulation {
 public:
  void add(Resolver resolver) { resolvers_.push_back(resolver); }

  [[nodiscard]] const std::vector<Resolver>& all() const noexcept {
    return resolvers_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return resolvers_.size(); }

  /// Simulates one probe of `resolver` for `name` against the ground-truth
  /// `db`. A lying resolver returns an address not in the authoritative
  /// answer set; a delegating resolver answers but flags third-party
  /// sourcing (in reality detected via the answering IP).
  [[nodiscard]] static ProbeResult probe(const Resolver& resolver,
                                         const ZoneDatabase& db,
                                         const DnsName& name);

  /// The paper's filtering: keeps only resolvers that answer, answer
  /// correctly, and do not delegate. `probe_name` must resolve in `db`.
  [[nodiscard]] std::vector<Resolver> usable_resolvers(
      const ZoneDatabase& db, const DnsName& probe_name) const;

  /// Resolves `name` through `resolver` (as an active measurement would):
  /// open resolvers return the authoritative A set, everything else
  /// returns empty/garbage.
  [[nodiscard]] static std::vector<net::Ipv4Addr> query(
      const Resolver& resolver, const ZoneDatabase& db, const DnsName& name);

  /// Number of distinct ASes hosting the given resolvers.
  [[nodiscard]] static std::size_t distinct_ases(
      const std::vector<Resolver>& resolvers);

 private:
  std::vector<Resolver> resolvers_;
};

}  // namespace ixp::dns
