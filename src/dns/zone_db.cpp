#include "dns/zone_db.hpp"

namespace ixp::dns {

void ZoneDatabase::add_a(const DnsName& name, net::Ipv4Addr addr) {
  a_[name].push_back(addr);
  ++a_count_;
}

void ZoneDatabase::add_ptr(net::Ipv4Addr addr, const DnsName& hostname) {
  ptr_.insert_or_assign(addr, hostname);
}

void ZoneDatabase::add_soa(const DnsName& zone, const DnsName& authority) {
  soa_.insert_or_assign(zone, authority);
}

void ZoneDatabase::add_cname(const DnsName& alias, const DnsName& canonical) {
  cname_.insert_or_assign(alias, canonical);
}

std::optional<DnsName> ZoneDatabase::cname(const DnsName& alias) const {
  const auto it = cname_.find(alias);
  if (it == cname_.end()) return std::nullopt;
  return it->second;
}

std::optional<DnsName> ZoneDatabase::canonicalize(const DnsName& name) const {
  DnsName current = name;
  // RFC-ish chain bound; also breaks loops.
  for (int depth = 0; depth < 8; ++depth) {
    const auto it = cname_.find(current);
    if (it == cname_.end()) return current;
    current = it->second;
  }
  return std::nullopt;
}

std::vector<net::Ipv4Addr> ZoneDatabase::resolve(const DnsName& name) const {
  const auto canonical = canonicalize(name);
  if (!canonical) return {};
  const auto it = a_.find(*canonical);
  return it == a_.end() ? std::vector<net::Ipv4Addr>{} : it->second;
}

std::optional<DnsName> ZoneDatabase::reverse(net::Ipv4Addr addr) const {
  const auto it = ptr_.find(addr);
  if (it == ptr_.end()) return std::nullopt;
  return it->second;
}

std::optional<SoaRecord> ZoneDatabase::soa_of(const DnsName& name) const {
  std::optional<DnsName> current = name;
  while (current) {
    const auto it = soa_.find(*current);
    if (it != soa_.end()) return SoaRecord{*current, it->second};
    current = current->parent();
  }
  return std::nullopt;
}

void ZoneDatabase::add_reverse_soa(net::Ipv4Addr addr, const DnsName& authority) {
  reverse_soa_.insert_or_assign(addr, authority);
}

std::optional<DnsName> ZoneDatabase::reverse_soa(net::Ipv4Addr addr) const {
  const auto it = reverse_soa_.find(addr);
  if (it != reverse_soa_.end()) return it->second;
  // Fall back to the SOA of the PTR hostname when one exists.
  const auto hostname = reverse(addr);
  if (!hostname) return std::nullopt;
  const auto soa = soa_of(*hostname);
  if (!soa) return std::nullopt;
  return soa->authority;
}

}  // namespace ixp::dns
