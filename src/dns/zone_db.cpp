#include "dns/zone_db.hpp"

namespace ixp::dns {

void ZoneDatabase::add_a(const DnsName& name, net::Ipv4Addr addr) {
  a_[name].push_back(addr);
  ++a_count_;
}

void ZoneDatabase::add_ptr(net::Ipv4Addr addr, const DnsName& hostname) {
  ptr_.insert_or_assign(addr, hostname);
}

void ZoneDatabase::add_soa(const DnsName& zone, const DnsName& authority) {
  soa_[zone] = authority;
}

void ZoneDatabase::add_cname(const DnsName& alias, const DnsName& canonical) {
  cname_.insert_or_assign(alias, canonical);
}

std::optional<DnsName> ZoneDatabase::cname(const DnsName& alias) const {
  const auto it = cname_.find(alias);
  if (it == cname_.end()) return std::nullopt;
  return it->second;
}

std::optional<DnsName> ZoneDatabase::canonicalize(const DnsName& name) const {
  // Chase the chain by pointer; the single copy happens at the return.
  const DnsName* current = &name;
  // RFC-ish chain bound; also breaks loops.
  for (int depth = 0; depth < 8; ++depth) {
    const auto it = cname_.find(*current);
    if (it == cname_.end()) return *current;
    current = &it->second;
  }
  return std::nullopt;
}

std::vector<net::Ipv4Addr> ZoneDatabase::resolve(const DnsName& name) const {
  const DnsName* current = &name;
  for (int depth = 0; depth < 8; ++depth) {
    const auto cn = cname_.find(*current);
    if (cn == cname_.end()) {
      const auto it = a_.find(*current);
      return it == a_.end() ? std::vector<net::Ipv4Addr>{} : it->second;
    }
    current = &cn->second;
  }
  return {};  // CNAME loop / over-long chain
}

std::optional<DnsName> ZoneDatabase::reverse(net::Ipv4Addr addr) const {
  const auto it = ptr_.find(addr);
  if (it == ptr_.end()) return std::nullopt;
  return it->second;
}

std::optional<SoaRecord> ZoneDatabase::soa_of(const DnsName& name) const {
  if (name.empty() || soa_.empty()) return std::nullopt;
  // One backward pass precomputes every suffix hash; the walk then probes
  // the flat map per ancestor zone without materializing a DnsName.
  const SuffixWalk walk{name.text()};
  for (std::size_t i = 0; i < walk.label_count(); ++i) {
    if (const DnsName* authority = soa_at(walk.suffix(i))) {
      return SoaRecord{name.suffix(walk.label_count() - i), *authority};
    }
  }
  return std::nullopt;
}

const DnsName* ZoneDatabase::soa_at(const HashedName& zone) const {
  const auto it = soa_.find(zone);
  return it == soa_.end() ? nullptr : &it->second;
}

void ZoneDatabase::add_reverse_soa(net::Ipv4Addr addr, const DnsName& authority) {
  reverse_soa_.insert_or_assign(addr, authority);
}

const DnsName* ZoneDatabase::reverse_soa_at(net::Ipv4Addr addr) const {
  const auto it = reverse_soa_.find(addr);
  return it == reverse_soa_.end() ? nullptr : &it->second;
}

std::optional<DnsName> ZoneDatabase::reverse_soa(net::Ipv4Addr addr) const {
  const auto it = reverse_soa_.find(addr);
  if (it != reverse_soa_.end()) return it->second;
  // Fall back to the SOA of the PTR hostname when one exists.
  const auto hostname = reverse(addr);
  if (!hostname) return std::nullopt;
  const auto soa = soa_of(*hostname);
  if (!soa) return std::nullopt;
  return soa->authority;
}

}  // namespace ixp::dns
