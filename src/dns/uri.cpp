#include "dns/uri.hpp"

#include <cctype>
#include <charconv>

#include "net/ipv4.hpp"

namespace ixp::dns {

std::optional<Uri> Uri::parse(std::string_view text) {
  Uri uri;
  const std::size_t scheme_end = text.find("://");
  if (scheme_end != std::string_view::npos) {
    const std::string_view scheme = text.substr(0, scheme_end);
    if (scheme.empty()) return std::nullopt;
    for (const char c : scheme) {
      if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.'))
        return std::nullopt;
    }
    uri.scheme_.assign(scheme);
    for (auto& c : uri.scheme_)
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    text.remove_prefix(scheme_end + 3);
  }

  const std::size_t path_start = text.find('/');
  std::string_view host_port = text;
  if (path_start != std::string_view::npos) {
    host_port = text.substr(0, path_start);
    uri.path_.assign(text.substr(path_start));
  } else {
    uri.path_ = "/";
  }

  const std::size_t colon = host_port.rfind(':');
  std::string_view host_text = host_port;
  if (colon != std::string_view::npos) {
    host_text = host_port.substr(0, colon);
    const std::string_view port_text = host_port.substr(colon + 1);
    std::uint32_t port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
        port == 0 || port > 65535)
      return std::nullopt;
    uri.port_ = static_cast<std::uint16_t>(port);
  }

  const auto host = DnsName::parse(host_text);
  if (!host) return std::nullopt;
  // Reject IP-literal hosts: all-numeric final label (e.g. "1.2.3.4").
  if (net::Ipv4Addr::parse(host->text())) return std::nullopt;
  // Require at least two labels so an authority can exist.
  if (host->label_count() < 2) return std::nullopt;
  uri.host_ = *host;
  return uri;
}

std::string Uri::to_string() const {
  std::string out;
  if (!scheme_.empty()) out += scheme_ + "://";
  out += host_.text();
  if (port_ != 0) out += ":" + std::to_string(port_);
  out += path_;
  return out;
}

}  // namespace ixp::dns
