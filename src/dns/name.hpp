// DNS names.
//
// A DnsName is a normalized (lower-case, no trailing dot) sequence of
// labels. The clustering methodology of §5.1 constantly walks name
// hierarchies (hostname -> SOA zone -> administrative authority), so the
// type exposes label-wise parents and subdomain tests.
#pragma once

#include <compare>
#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ixp::dns {

class DnsName {
 public:
  DnsName() = default;

  /// Parses and normalizes a presentation-format name ("WWW.Example.COM.").
  /// Returns nullopt for empty names, empty labels, names > 253 chars,
  /// labels > 63 chars, or characters outside [a-z0-9-_].
  [[nodiscard]] static std::optional<DnsName> parse(std::string_view text);

  /// The normalized presentation form ("www.example.com"); empty for the
  /// default-constructed (invalid) name.
  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  [[nodiscard]] bool empty() const noexcept { return text_.empty(); }

  [[nodiscard]] std::size_t label_count() const noexcept { return labels_; }

  /// The i-th label counting from the leftmost (0 = host label).
  [[nodiscard]] std::string_view label(std::size_t i) const;

  /// Name with the leftmost label removed ("www.example.com" -> "example.com").
  /// Returns nullopt when only one label remains.
  [[nodiscard]] std::optional<DnsName> parent() const;

  /// The trailing `n` labels ("a.b.example.com".suffix(2) == "example.com").
  /// Requires 1 <= n <= label_count().
  [[nodiscard]] DnsName suffix(std::size_t n) const;

  /// True when this name equals `ancestor` or is underneath it.
  [[nodiscard]] bool is_subdomain_of(const DnsName& ancestor) const;

  friend auto operator<=>(const DnsName&, const DnsName&) = default;

 private:
  explicit DnsName(std::string text, std::size_t labels)
      : text_(std::move(text)), labels_(labels) {}

  std::string text_;
  std::size_t labels_ = 0;
};

}  // namespace ixp::dns

template <>
struct std::hash<ixp::dns::DnsName> {
  std::size_t operator()(const ixp::dns::DnsName& name) const noexcept {
    return std::hash<std::string>{}(name.text());
  }
};
