// DNS names.
//
// A DnsName is a normalized (lower-case, no trailing dot) sequence of
// labels. The clustering methodology of §5.1 constantly walks name
// hierarchies (hostname -> SOA zone -> administrative authority), so the
// type exposes label-wise parents and subdomain tests.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace ixp::dns {

class DnsName {
 public:
  DnsName() = default;

  /// Parses and normalizes a presentation-format name ("WWW.Example.COM.").
  /// Returns nullopt for empty names, empty labels, names > 253 chars,
  /// labels > 63 chars, or characters outside [a-z0-9-_].
  [[nodiscard]] static std::optional<DnsName> parse(std::string_view text);

  /// The normalized presentation form ("www.example.com"); empty for the
  /// default-constructed (invalid) name.
  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  [[nodiscard]] bool empty() const noexcept { return text_.empty(); }

  [[nodiscard]] std::size_t label_count() const noexcept { return labels_; }

  /// The i-th label counting from the leftmost (0 = host label).
  [[nodiscard]] std::string_view label(std::size_t i) const;

  /// Name with the leftmost label removed ("www.example.com" -> "example.com").
  /// Returns nullopt when only one label remains.
  [[nodiscard]] std::optional<DnsName> parent() const;

  /// The trailing `n` labels ("a.b.example.com".suffix(2) == "example.com").
  /// Requires 1 <= n <= label_count().
  [[nodiscard]] DnsName suffix(std::size_t n) const;

  /// True when this name equals `ancestor` or is underneath it.
  [[nodiscard]] bool is_subdomain_of(const DnsName& ancestor) const;

  friend auto operator<=>(const DnsName&, const DnsName&) = default;

 private:
  explicit DnsName(std::string text, std::size_t labels)
      : text_(std::move(text)), labels_(labels) {}

  std::string text_;
  std::size_t labels_ = 0;
};

/// A borrowed name (or name suffix) paired with its precomputed NameHash
/// value. Hierarchy walks probe hash maps once per ancestor zone; passing
/// a HashedName lets the map skip rehashing the text it was handed.
struct HashedName {
  std::string_view text;
  std::size_t hash = 0;
};

/// Transparent hasher for DnsName-keyed maps: a DnsName, its presentation
/// text, and a pre-hashed suffix view all hash to the same value, so
/// lookups during suffix walks need no DnsName materialization.
struct NameHash {
  using is_transparent = void;

  /// Multiplier of the positional polynomial sum(c_j * kMul^(n-1-j)) —
  /// chosen so SuffixWalk can extend hashes right-to-left while plain
  /// lookups fold left-to-right (Horner) to the identical value.
  static constexpr std::uint64_t kMul = 0x100000001b3ULL;

  [[nodiscard]] static std::size_t finalize(std::uint64_t poly,
                                            std::size_t len) noexcept {
    return static_cast<std::size_t>(
        util::mix64(poly ^ (static_cast<std::uint64_t>(len) << 1) ^
                    0x9e3779b97f4a7c15ULL));
  }

  [[nodiscard]] std::size_t operator()(std::string_view text) const noexcept {
    std::uint64_t h = 0;
    for (const char c : text) h = h * kMul + static_cast<unsigned char>(c);
    return finalize(h, text.size());
  }
  [[nodiscard]] std::size_t operator()(const DnsName& name) const noexcept {
    return (*this)(std::string_view{name.text()});
  }
  [[nodiscard]] std::size_t operator()(const HashedName& h) const noexcept {
    return h.hash;
  }
};

/// Transparent equality to pair with NameHash.
struct NameEq {
  using is_transparent = void;
  [[nodiscard]] bool operator()(const DnsName& a,
                                const DnsName& b) const noexcept {
    return a.text() == b.text();
  }
  [[nodiscard]] bool operator()(const DnsName& a,
                                std::string_view b) const noexcept {
    return a.text() == b;
  }
  [[nodiscard]] bool operator()(const DnsName& a,
                                const HashedName& b) const noexcept {
    return a.text() == b.text;
  }
};

/// One backward pass over a presentation-form name that records, at every
/// label start, the hash NameHash would compute for the suffix beginning
/// there. soa_of-style walks then probe a map per ancestor zone without
/// allocating a DnsName per step (the satellite fix for the old
/// parent()-chain walk, which copied the tail of the name at every level).
class SuffixWalk {
 public:
  /// DnsName text is <= 253 chars, so at most 127 labels.
  static constexpr std::size_t kMaxLabels = 128;

  explicit SuffixWalk(std::string_view text) noexcept : text_(text) {
    std::uint64_t poly = 0;
    std::uint64_t pw = 1;
    for (std::size_t j = text.size(); j-- > 0;) {
      poly += static_cast<std::uint64_t>(static_cast<unsigned char>(text[j])) *
              pw;
      pw *= NameHash::kMul;
      if ((j == 0 || text[j - 1] == '.') && count_ < kMaxLabels) {
        starts_[count_] = static_cast<std::uint16_t>(j);
        polys_[count_] = poly;
        ++count_;
      }
    }
  }

  [[nodiscard]] std::size_t label_count() const noexcept { return count_; }

  /// The suffix made of the trailing `label_count() - i` labels (i == 0 is
  /// the whole name), with its hash precomputed.
  [[nodiscard]] HashedName suffix(std::size_t i) const noexcept {
    const std::size_t k = count_ - 1 - i;  // recorded shortest-first
    const std::string_view text = text_.substr(starts_[k]);
    return HashedName{text, NameHash::finalize(polys_[k], text.size())};
  }

 private:
  std::string_view text_;
  std::uint16_t starts_[kMaxLabels];
  std::uint64_t polys_[kMaxLabels];
  std::size_t count_ = 0;
};

}  // namespace ixp::dns

template <>
struct std::hash<ixp::dns::DnsName> {
  std::size_t operator()(const ixp::dns::DnsName& name) const noexcept {
    return std::hash<std::string>{}(name.text());
  }
};
