// Authoritative DNS database for the synthetic Internet.
//
// Section 2.4 of the paper extracts three kinds of DNS meta-data per server
// IP: the hostname (reverse lookup / PTR), and the Start-of-Authority
// record, which "relates to the administrative authority and can be
// resolved iteratively" — walking up the name hierarchy until a zone with
// an SOA is found. ZoneDatabase implements exactly that: A/PTR records on
// names/addresses plus SOA records on zone cuts.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/name.hpp"
#include "net/ipv4.hpp"
#include "util/flat_hash_map.hpp"

namespace ixp::dns {

/// An SOA record: the zone it sits on plus the administrative authority
/// (the RNAME's domain, e.g. hostmaster@google.com -> google.com).
struct SoaRecord {
  DnsName zone;
  DnsName authority;

  friend bool operator==(const SoaRecord&, const SoaRecord&) = default;
};

class ZoneDatabase {
 public:
  /// Adds an address record (multiple A records per name are allowed).
  void add_a(const DnsName& name, net::Ipv4Addr addr);

  /// Adds a CNAME: `alias` resolves via `canonical` (CDN-style delegation,
  /// e.g. www.shop.com -> shop.com.edgekey.net). One CNAME per alias.
  void add_cname(const DnsName& alias, const DnsName& canonical);

  /// The canonical name an alias points at, if any.
  [[nodiscard]] std::optional<DnsName> cname(const DnsName& alias) const;

  /// Follows the CNAME chain from `name` (bounded depth) and returns the
  /// terminal name. Returns `name` itself when it has no CNAME; nullopt
  /// on a loop or an over-long chain.
  [[nodiscard]] std::optional<DnsName> canonicalize(const DnsName& name) const;

  /// Sets the PTR record for an address (one hostname per IP).
  void add_ptr(net::Ipv4Addr addr, const DnsName& hostname);

  /// Installs an SOA at a zone cut.
  void add_soa(const DnsName& zone, const DnsName& authority);

  /// Forward resolution: follows CNAME chains, then returns the terminal
  /// name's A records (empty when unknown or on a CNAME loop).
  [[nodiscard]] std::vector<net::Ipv4Addr> resolve(const DnsName& name) const;

  /// Reverse lookup; nullopt when the IP has no PTR record — the paper
  /// notes many server IPs lack one.
  [[nodiscard]] std::optional<DnsName> reverse(net::Ipv4Addr addr) const;

  /// Iterative SOA resolution: walks from `name` towards the root and
  /// returns the first zone carrying an SOA. This is how §2.4 finds "a
  /// common root for organizations that do not use a unified naming
  /// schema".
  [[nodiscard]] std::optional<SoaRecord> soa_of(const DnsName& name) const;

  /// Exact-zone SOA lookup (no hierarchy walk): the authority installed at
  /// `zone`, or nullptr. Takes a pre-hashed suffix view so CachingResolver
  /// and soa_of can probe once per ancestor without allocating.
  [[nodiscard]] const DnsName* soa_at(const HashedName& zone) const;

  /// SOA of the *reverse* name of an address: the paper notes the SOA is
  /// often present "even when there is no hostname record available".
  /// We model this as a per-address authority installed by the hoster.
  void add_reverse_soa(net::Ipv4Addr addr, const DnsName& authority);
  [[nodiscard]] std::optional<DnsName> reverse_soa(net::Ipv4Addr addr) const;

  /// Exact lookup of the per-address reverse SOA (no PTR-hostname
  /// fallback); nullptr when none is installed. CachingResolver composes
  /// this with its cached reverse()/soa_of() to replicate reverse_soa().
  [[nodiscard]] const DnsName* reverse_soa_at(net::Ipv4Addr addr) const;

  [[nodiscard]] std::size_t a_record_count() const noexcept { return a_count_; }
  [[nodiscard]] std::size_t ptr_record_count() const noexcept {
    return ptr_.size();
  }
  [[nodiscard]] std::size_t soa_record_count() const noexcept {
    return soa_.size();
  }
  [[nodiscard]] std::size_t cname_record_count() const noexcept {
    return cname_.size();
  }

 private:
  std::unordered_map<DnsName, std::vector<net::Ipv4Addr>> a_;
  std::unordered_map<DnsName, DnsName> cname_;
  std::unordered_map<net::Ipv4Addr, DnsName> ptr_;
  // zone -> authority; flat with transparent hashing so suffix walks can
  // probe by view instead of materializing a DnsName per level.
  util::FlatHashMap<DnsName, DnsName, NameHash, NameEq> soa_;
  std::unordered_map<net::Ipv4Addr, DnsName> reverse_soa_;
  std::size_t a_count_ = 0;
};

}  // namespace ixp::dns
