// Public-suffix handling (publicsuffix.org-style).
//
// The paper's HTTPS validation (§2.2.2) keeps only certificates whose
// subjects have "valid domains and also valid country-code second-level
// domains (ccSLD)". That check needs a public suffix list: "example.co.uk"
// is a registrable domain because "co.uk" is a public suffix, while
// "co.uk" itself is not registrable. The default list bundles the generic
// TLDs plus the ccSLD conventions of the big country registries.
#pragma once

#include <optional>
#include <string_view>
#include <unordered_set>

#include "dns/name.hpp"

namespace ixp::dns {

class PublicSuffixList {
 public:
  /// Empty list; add suffixes with `add`.
  PublicSuffixList() = default;

  /// The built-in list (gTLDs + common ccTLDs and their ccSLDs).
  [[nodiscard]] static const PublicSuffixList& builtin();

  /// Registers a suffix ("com", "co.uk"). Invalid names are ignored.
  void add(std::string_view suffix);

  [[nodiscard]] bool is_public_suffix(const DnsName& name) const;

  /// Longest public suffix of `name`, or nullopt when no suffix matches.
  [[nodiscard]] std::optional<DnsName> public_suffix_of(const DnsName& name) const;

  /// The registrable domain (public suffix + one label), the paper's
  /// "second-level domain". nullopt when `name` has no known suffix or
  /// *is* a public suffix itself.
  [[nodiscard]] std::optional<DnsName> registrable_domain(const DnsName& name) const;

  [[nodiscard]] std::size_t size() const noexcept { return suffixes_.size(); }

 private:
  std::unordered_set<DnsName> suffixes_;
};

}  // namespace ixp::dns
