#include "dns/name.hpp"

#include <cctype>

namespace ixp::dns {

namespace {

bool valid_label_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-' || c == '_';
}

}  // namespace

std::optional<DnsName> DnsName::parse(std::string_view text) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  if (text.empty() || text.size() > 253) return std::nullopt;

  std::string normalized;
  normalized.reserve(text.size());
  std::size_t labels = 0;
  std::size_t label_len = 0;
  for (const char raw : text) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(raw)));
    if (c == '.') {
      if (label_len == 0 || label_len > 63) return std::nullopt;
      ++labels;
      label_len = 0;
      normalized.push_back('.');
      continue;
    }
    if (!valid_label_char(c)) return std::nullopt;
    ++label_len;
    normalized.push_back(c);
  }
  if (label_len == 0 || label_len > 63) return std::nullopt;
  ++labels;
  return DnsName{std::move(normalized), labels};
}

std::string_view DnsName::label(std::size_t i) const {
  std::string_view rest = text_;
  for (std::size_t skipped = 0; skipped < i; ++skipped) {
    const std::size_t dot = rest.find('.');
    if (dot == std::string_view::npos) return {};
    rest.remove_prefix(dot + 1);
  }
  const std::size_t dot = rest.find('.');
  return dot == std::string_view::npos ? rest : rest.substr(0, dot);
}

std::optional<DnsName> DnsName::parent() const {
  const std::size_t dot = text_.find('.');
  if (dot == std::string::npos) return std::nullopt;
  return DnsName{text_.substr(dot + 1), labels_ - 1};
}

DnsName DnsName::suffix(std::size_t n) const {
  if (n >= labels_) return *this;
  std::string_view rest = text_;
  for (std::size_t skipped = 0; skipped < labels_ - n; ++skipped) {
    const std::size_t dot = rest.find('.');
    rest.remove_prefix(dot + 1);
  }
  return DnsName{std::string{rest}, n};
}

bool DnsName::is_subdomain_of(const DnsName& ancestor) const {
  if (ancestor.empty() || empty()) return false;
  if (ancestor.labels_ > labels_) return false;
  return suffix(ancestor.labels_) == ancestor;
}

}  // namespace ixp::dns
