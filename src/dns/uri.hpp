// Minimal URI handling.
//
// The classifier recovers URIs from the 128-byte payload snippets (Host
// headers and request lines); the clustering then needs each URI's host
// and its registrable "authority" domain (§2.4: "the URI as well as the
// authority associated with the hostname give us hints regarding the
// organization that is responsible for the content").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dns/name.hpp"
#include "dns/public_suffix.hpp"

namespace ixp::dns {

class Uri {
 public:
  /// Parses "scheme://host[:port][/path]" or a bare "host[/path]".
  /// The host must be a valid DNS name (IP-literal hosts are rejected:
  /// they carry no authority information for clustering).
  [[nodiscard]] static std::optional<Uri> parse(std::string_view text);

  [[nodiscard]] const std::string& scheme() const noexcept { return scheme_; }
  [[nodiscard]] const DnsName& host() const noexcept { return host_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// The registrable domain of the host under `psl` — the paper's
  /// "authority" of the URI.
  [[nodiscard]] std::optional<DnsName> authority(
      const PublicSuffixList& psl) const {
    return psl.registrable_domain(host_);
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Uri&, const Uri&) = default;

 private:
  std::string scheme_;
  DnsName host_;
  std::uint16_t port_ = 0;  // 0 = scheme default
  std::string path_;
};

}  // namespace ixp::dns
