#include "dns/resolver.hpp"

#include <unordered_set>

namespace ixp::dns {

ProbeResult ResolverPopulation::probe(const Resolver& resolver,
                                      const ZoneDatabase& db,
                                      const DnsName& name) {
  ProbeResult result;
  switch (resolver.behavior) {
    case ResolverBehavior::kClosed:
      return result;  // no answer at all
    case ResolverBehavior::kDelegating:
      result.answered = true;
      result.answer_correct = !db.resolve(name).empty();
      result.delegated = true;
      return result;
    case ResolverBehavior::kLying: {
      result.answered = true;
      result.answer_correct = false;  // NXDOMAIN-redirect style wrong answer
      return result;
    }
    case ResolverBehavior::kOpen: {
      result.answered = true;
      result.answer_correct = !db.resolve(name).empty();
      return result;
    }
  }
  return result;
}

std::vector<Resolver> ResolverPopulation::usable_resolvers(
    const ZoneDatabase& db, const DnsName& probe_name) const {
  std::vector<Resolver> usable;
  for (const Resolver& resolver : resolvers_) {
    const ProbeResult result = probe(resolver, db, probe_name);
    if (result.answered && result.answer_correct && !result.delegated)
      usable.push_back(resolver);
  }
  return usable;
}

std::vector<net::Ipv4Addr> ResolverPopulation::query(const Resolver& resolver,
                                                     const ZoneDatabase& db,
                                                     const DnsName& name) {
  if (resolver.behavior != ResolverBehavior::kOpen) return {};
  return db.resolve(name);
}

std::size_t ResolverPopulation::distinct_ases(
    const std::vector<Resolver>& resolvers) {
  std::unordered_set<net::Asn> ases;
  for (const Resolver& resolver : resolvers) ases.insert(resolver.asn);
  return ases.size();
}

}  // namespace ixp::dns
