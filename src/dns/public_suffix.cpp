#include "dns/public_suffix.hpp"

namespace ixp::dns {

namespace {

constexpr const char* kBuiltinSuffixes[] = {
    // Generic TLDs.
    "com", "net", "org", "info", "biz", "edu", "gov", "mil", "int",
    "arpa", "tv", "cc", "io", "me", "co", "tel", "mobi", "name", "pro",
    "aero", "asia", "cat", "coop", "jobs", "museum", "travel", "xxx",
    // Country TLDs (directly registrable).
    "de", "nl", "fr", "it", "es", "pl", "cz", "ch", "at", "be", "dk",
    "fi", "no", "se", "pt", "gr", "hu", "ie", "lu", "li", "sk", "si",
    "ro", "bg", "hr", "rs", "lt", "lv", "ee", "is", "mt", "cy", "eu",
    "us", "ca", "mx", "cl", "pe", "ve", "ec", "su", "kz", "by", "md",
    "ua", "ge", "am", "az", "vn", "hk", "tw", "sg", "my", "ph", "th",
    "id", "in", "pk", "lk", "np", "ir", "iq", "sa", "ae", "jo", "lb",
    "kw", "qa", "bh", "om", "eg", "ma", "dz", "tn", "ng", "ke", "gh",
    "za", "ws", "to", "fm", "la", "ly", "am", "gg", "je", "im",
    // Popular ccSLD conventions.
    "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk", "ltd.uk",
    "plc.uk", "sch.uk",
    "com.au", "net.au", "org.au", "edu.au", "gov.au", "id.au",
    "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp", "ad.jp",
    "com.cn", "net.cn", "org.cn", "edu.cn", "gov.cn", "ac.cn",
    "com.br", "net.br", "org.br", "gov.br", "edu.br",
    "co.kr", "ne.kr", "or.kr", "re.kr", "go.kr", "ac.kr",
    "com.tr", "net.tr", "org.tr", "edu.tr", "gov.tr", "web.tr",
    "com.ru", "net.ru", "org.ru", "msk.ru", "spb.ru",
    "co.in", "net.in", "org.in", "gen.in", "firm.in", "ac.in",
    "com.ar", "net.ar", "org.ar", "edu.ar",
    "com.mx", "net.mx", "org.mx", "edu.mx",
    "co.za", "net.za", "org.za", "web.za", "ac.za",
    "com.sg", "net.sg", "org.sg", "edu.sg",
    "com.hk", "net.hk", "org.hk", "edu.hk",
    "com.tw", "net.tw", "org.tw", "edu.tw",
    "co.il", "net.il", "org.il", "ac.il",
    "com.ua", "net.ua", "org.ua", "kiev.ua",
    "com.pl", "net.pl", "org.pl", "edu.pl",
    "co.nz", "net.nz", "org.nz", "govt.nz", "ac.nz",
    "com.my", "net.my", "org.my",
    "co.id", "net.id", "or.id", "web.id", "ac.id",
    "com.ph", "net.ph", "org.ph",
    "com.vn", "net.vn", "org.vn",
    "co.th", "in.th", "or.th", "ac.th",
    "com.eg", "net.eg", "org.eg",
    "com.sa", "net.sa", "org.sa",
    "com.ng", "net.ng", "org.ng",
    "co.ke", "or.ke", "ne.ke", "ac.ke",
};

}  // namespace

const PublicSuffixList& PublicSuffixList::builtin() {
  static const PublicSuffixList list = [] {
    PublicSuffixList psl;
    for (const char* suffix : kBuiltinSuffixes) psl.add(suffix);
    return psl;
  }();
  return list;
}

void PublicSuffixList::add(std::string_view suffix) {
  if (const auto name = DnsName::parse(suffix)) suffixes_.insert(*name);
}

bool PublicSuffixList::is_public_suffix(const DnsName& name) const {
  return suffixes_.count(name) > 0;
}

std::optional<DnsName> PublicSuffixList::public_suffix_of(
    const DnsName& name) const {
  // Longest match: try trailing label counts from longest to shortest.
  for (std::size_t n = name.label_count(); n >= 1; --n) {
    const DnsName candidate = name.suffix(n);
    if (suffixes_.count(candidate) > 0) return candidate;
  }
  return std::nullopt;
}

std::optional<DnsName> PublicSuffixList::registrable_domain(
    const DnsName& name) const {
  const auto suffix = public_suffix_of(name);
  if (!suffix) return std::nullopt;
  if (suffix->label_count() == name.label_count()) return std::nullopt;
  return name.suffix(suffix->label_count() + 1);
}

}  // namespace ixp::dns
