#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ixp::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double gini(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double cumulative = 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cumulative += sorted[i];
    weighted += sorted[i] * static_cast<double>(i + 1);
  }
  if (cumulative <= 0.0) return 0.0;
  const double n = static_cast<double>(sorted.size());
  return (2.0 * weighted) / (n * cumulative) - (n + 1.0) / n;
}

double top_k_share(std::span<const double> values, std::size_t k) {
  if (values.empty() || k == 0) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double total = 0.0;
  for (const double v : sorted) total += v;
  if (total <= 0.0) return 0.0;
  double top = 0.0;
  for (std::size_t i = 0; i < std::min(k, sorted.size()); ++i) top += sorted[i];
  return top / total;
}

std::vector<double> cumulative_share_by_rank(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double total = 0.0;
  for (const double v : sorted) total += v;
  std::vector<double> shares(sorted.size(), 0.0);
  if (total <= 0.0) return shares;
  double running = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    running += sorted[i];
    shares[i] = running / total;
  }
  return shares;
}

}  // namespace ixp::util
