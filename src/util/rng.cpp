#include "util/rng.hpp"

#include <cmath>
#include <unordered_set>

namespace ixp::util {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's method over 64 bits using 128-bit multiply.
  while (true) {
    const std::uint64_t x = (*this)();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound) return static_cast<std::uint64_t>(m >> 64);
    // Rejection zone: only entered when low < bound.
    const std::uint64_t threshold = (0ULL - bound) % bound;
    if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

double Rng::next_normal() noexcept {
  // Box-Muller; discard the second value to keep the state trajectory simple.
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::uint64_t Rng::next_binomial(std::uint64_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double np = static_cast<double>(n) * p;
  const double nq = static_cast<double>(n) * (1.0 - p);
  if (n <= 64 || np < 16.0 || nq < 16.0) {
    if (np < 16.0 && n > 256) {
      // Rare-event regime: Poisson approximation is cheap and accurate.
      const std::uint64_t v = next_poisson(np);
      return v > n ? n : v;
    }
    std::uint64_t count = 0;
    for (std::uint64_t i = 0; i < n; ++i) count += next_bool(p) ? 1 : 0;
    return count;
  }
  // Normal approximation with continuity correction.
  const double sigma = std::sqrt(np * (1.0 - p));
  const double v = np + sigma * next_normal() + 0.5;
  if (v <= 0.0) return 0;
  if (v >= static_cast<double>(n)) return n;
  return static_cast<std::uint64_t>(v);
}

std::uint64_t Rng::next_poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 32.0) {
    const double limit = std::exp(-lambda);
    double product = next_double();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= next_double();
    }
    return count;
  }
  const double v = lambda + std::sqrt(lambda) * next_normal() + 0.5;
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

double Rng::next_pareto(double xm, double alpha) noexcept {
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return xm / std::pow(u, 1.0 / alpha);
}

std::vector<std::uint64_t> sample_without_replacement(Rng& rng, std::uint64_t n,
                                                      std::uint64_t k) {
  std::vector<std::uint64_t> result;
  if (k == 0 || n == 0) return result;
  if (k > n) k = n;
  result.reserve(k);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(k * 2);
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; if taken, use j.
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = rng.next_below(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

}  // namespace ixp::util
