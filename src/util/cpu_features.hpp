// Runtime CPU-feature detection and the SIMD dispatch policy.
//
// The vectorized hot paths (classify::HttpMatcher token matching, the
// sflow lane decoder) each ship several implementations: a portable
// SWAR/scalar fallback, an SSE2 form, and an AVX2 form. Which one runs
// is decided once per process from CPUID — never per call site — and
// every caller routes through SimdLevel so a bench run, a test run, and
// production all agree on what executed (the bench JSON stamps it).
//
// Two kill switches force the fallback paths:
//   - compile time: -DIXPSCOPE_DISABLE_SIMD=ON (the CI no-SIMD job)
//     pins active() to kScalar, so sanitizer runs cover the SWAR code;
//   - run time: the IXPSCOPE_SIMD environment variable ("scalar",
//     "sse2", "avx2") clamps the detected level downward — differential
//     tests and A/B profiling use it without a rebuild. It can never
//     raise the level above what CPUID reports.
#pragma once

#include <cstdint>
#include <string_view>

namespace ixp::util {

/// Instruction-set tiers the dispatched kernels are written against,
/// ordered: a level implies every level below it.
enum class SimdLevel : std::uint8_t {
  kScalar = 0,  ///< portable SWAR only — no vector instructions
  kSse2 = 1,    ///< 16-byte integer vectors (x86-64 baseline)
  kAvx2 = 2,    ///< 32-byte integer vectors
};

struct CpuFeatures {
  bool sse2 = false;
  bool sse42 = false;
  bool avx2 = false;

  /// What the hardware supports (CPUID; cached after the first call).
  [[nodiscard]] static const CpuFeatures& detect() noexcept;

  /// The level the dispatched kernels actually run at: hardware support,
  /// clamped by IXPSCOPE_DISABLE_SIMD and the IXPSCOPE_SIMD environment
  /// variable. Cached after the first call; safe from any thread.
  [[nodiscard]] static SimdLevel active() noexcept;

  [[nodiscard]] static std::string_view name(SimdLevel level) noexcept;

  /// Comma-joined hardware flag list ("sse2,sse4.2,avx2" or "none") —
  /// the string the bench harness stamps into ixpscope-bench-v1 JSON so
  /// bench_diff can refuse to gate unlike hardware against each other.
  [[nodiscard]] static std::string_view flags_string() noexcept;
};

}  // namespace ixp::util
