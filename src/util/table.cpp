#include "util/table.hpp"

#include <algorithm>

namespace ixp::util {

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  const auto grow = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << "  " << cell << std::string(widths[i] - cell.size(), ' ');
    }
    os << '\n';
  };

  std::size_t total = 2;
  for (const std::size_t w : widths) total += w + 2;

  if (!title_.empty()) os << title_ << '\n';
  if (!header_.empty()) {
    emit(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& os, const std::string& text) {
  os << '\n' << std::string(72, '=') << '\n';
  os << "  " << text << '\n';
  os << std::string(72, '=') << '\n';
}

}  // namespace ixp::util
