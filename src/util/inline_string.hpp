// InlineString<N> — a fixed-capacity string with no heap storage.
//
// The dissector's Host-header evidence used to hold a std::string per
// observation: one heap allocation (plus a copy) for every header that
// survives dedup. Host headers come out of 128-byte sFlow captures, so
// their length is bounded by the capture — a small inline buffer holds
// any of them. InlineString stores up to N bytes plus a length in the
// object itself; construction from a longer view truncates (callers in
// this codebase can never hit that: pick N >= the source bound).
//
// The type is trivially copyable, totally ordered by byte-wise
// lexicographic comparison (identical to std::string ordering over the
// same bytes), and hashes transparently against std::string_view via
// StringHash, so FlatHashMap keyed on InlineString supports
// heterogeneous find(string_view) without constructing a key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ixp::util {

template <std::size_t N>
class InlineString {
  static_assert(N > 0 && N < 256, "length is stored in a single byte");

 public:
  constexpr InlineString() = default;

  /// Copies at most N bytes of `text` (silently truncates beyond).
  constexpr InlineString(std::string_view text) {  // NOLINT(google-explicit-constructor)
    assign(text);
  }

  constexpr void assign(std::string_view text) {
    size_ = static_cast<std::uint8_t>(text.size() > N ? N : text.size());
    for (std::size_t i = 0; i < size_; ++i) data_[i] = text[i];
  }

  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] static constexpr std::size_t capacity() noexcept { return N; }
  [[nodiscard]] constexpr const char* data() const noexcept { return data_; }

  [[nodiscard]] constexpr std::string_view view() const noexcept {
    return std::string_view{data_, size_};
  }
  constexpr operator std::string_view() const noexcept {  // NOLINT(google-explicit-constructor)
    return view();
  }
  [[nodiscard]] std::string str() const { return std::string{view()}; }

  friend constexpr bool operator==(const InlineString& a,
                                   const InlineString& b) noexcept {
    return a.view() == b.view();
  }
  friend constexpr bool operator==(const InlineString& a,
                                   std::string_view b) noexcept {
    return a.view() == b;
  }
  friend constexpr auto operator<=>(const InlineString& a,
                                    const InlineString& b) noexcept {
    return a.view() <=> b.view();
  }
  friend constexpr auto operator<=>(const InlineString& a,
                                    std::string_view b) noexcept {
    return a.view() <=> b;
  }

 private:
  char data_[N] = {};
  std::uint8_t size_ = 0;
};

/// Transparent string hasher (FNV-1a) for heterogeneous lookup across
/// InlineString / std::string / std::string_view keys.
struct StringHash {
  using is_transparent = void;

  [[nodiscard]] std::size_t operator()(std::string_view text) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : text) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
  template <std::size_t N>
  [[nodiscard]] std::size_t operator()(const InlineString<N>& s) const noexcept {
    return (*this)(s.view());
  }
  [[nodiscard]] std::size_t operator()(const std::string& s) const noexcept {
    return (*this)(std::string_view{s});
  }
};

}  // namespace ixp::util
