// Deterministic random number generation for ixpscope.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng instance; there is no global random state. This keeps all synthetic
// workloads and experiments exactly reproducible across runs and platforms
// (the generators are defined purely in terms of uint64 arithmetic).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace ixp::util {

/// splitmix64 step: used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes a 64-bit value into a well-distributed hash (stateless splitmix64).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** generator. Fast, high-quality, 2^256-1 period.
///
/// Satisfies UniformRandomBitGenerator so it can be used with <random>
/// distributions, though the member helpers below are preferred because
/// their results are identical across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64.
  explicit constexpr Rng(std::uint64_t seed = 0x1234abcd5678ef00ULL) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool next_bool(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Binomial(n, p) variate. Exact for small n; uses a normal approximation
  /// with continuity correction when n*p and n*(1-p) are both large, which
  /// is the regime sFlow thinning operates in.
  [[nodiscard]] std::uint64_t next_binomial(std::uint64_t n, double p) noexcept;

  /// Poisson(lambda) variate (Knuth for small lambda, normal approx beyond).
  [[nodiscard]] std::uint64_t next_poisson(double lambda) noexcept;

  /// Standard normal variate (Box-Muller, one value per call).
  [[nodiscard]] double next_normal() noexcept;

  /// Pareto-distributed value with minimum xm > 0 and shape alpha > 0.
  /// Heavy-tailed; used for flow sizes and object popularity tails.
  [[nodiscard]] double next_pareto(double xm, double alpha) noexcept;

  /// Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator; `stream` selects the lane.
  /// Deterministic: same parent state + same stream => same child.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept {
    std::uint64_t s = state_[0] ^ mix64(stream + 0x6a09e667f3bcc909ULL);
    s ^= mix64(state_[3] + stream);
    return Rng{s};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Samples k distinct indices from [0, n) without replacement
/// (Floyd's algorithm). Requires k <= n. Result is unsorted.
[[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(
    Rng& rng, std::uint64_t n, std::uint64_t k);

}  // namespace ixp::util
