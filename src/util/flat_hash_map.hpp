// FlatHashMap — the open-addressing hash table the per-sample hot path
// runs on.
//
// Every observed sample touches several per-key accumulators (per-IP
// activity, per-AS / per-country tallies, per-agent sequence state).
// std::unordered_map pays a pointer chase and usually a heap allocation
// per distinct key; at IXP scale (~14 PB/day behind a 1:16k sampler)
// that dominates the pipeline. FlatHashMap keeps key/value pairs inline
// in one contiguous slot array:
//
//   - power-of-two capacity, linear probing over a Fibonacci-mixed hash;
//   - tombstone-free erase via backward shift-deletion, so probe chains
//     never accumulate dead slots and lookups stay O(chain);
//   - reserve()/max-load-factor control (grows at 7/8 full);
//   - heterogeneous lookup: find/count/contains accept any key type the
//     hasher and equality functor take (e.g. std::string_view against
//     InlineString keys) without constructing a K.
//
// Iteration order is a function of the hash function, the capacity, and
// the insertion history — deterministic for a deterministic program but
// NOT sorted; canonical outputs must sort keys, exactly as they already
// do for std::unordered_map (DESIGN.md §7). operator== compares contents
// order-independently, like the standard unordered containers.
//
// Requirements on K and V: movable and default-constructible (empty
// slots hold default-constructed pairs; this keeps the slot storage a
// plain std::vector with no aligned-union juggling). All hot-path keys
// are 4-byte value types, all values small aggregates, so the "wasted"
// default slots cost only the load-factor headroom.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ixp::util {

template <class K, class V, class Hash = std::hash<K>,
          class Eq = std::equal_to<>>
class FlatHashMap {
 public:
  using key_type = K;
  using mapped_type = V;
  using value_type = std::pair<K, V>;
  using size_type = std::size_t;

  template <bool Const>
  class Iterator {
   public:
    using map_type = std::conditional_t<Const, const FlatHashMap, FlatHashMap>;
    using value_type = std::pair<K, V>;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;
    using iterator_category = std::forward_iterator_tag;
    using difference_type = std::ptrdiff_t;

    Iterator() = default;
    Iterator(map_type* map, size_type index) : map_(map), index_(index) {
      skip_free();
    }
    /// Const iterators construct from mutable ones (begin() vs cbegin()).
    template <bool C = Const, class = std::enable_if_t<C>>
    Iterator(const Iterator<false>& other)  // NOLINT(google-explicit-constructor)
        : map_(other.map_), index_(other.index_) {}

    reference operator*() const { return map_->slots_[index_]; }
    pointer operator->() const { return &map_->slots_[index_]; }

    Iterator& operator++() {
      ++index_;
      skip_free();
      return *this;
    }
    Iterator operator++(int) {
      Iterator out = *this;
      ++*this;
      return out;
    }

    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.index_ == b.index_;
    }

   private:
    friend class FlatHashMap;
    friend class Iterator<true>;
    void skip_free() {
      while (map_ != nullptr && index_ < map_->slots_.size() &&
             map_->used_[index_] == 0)
        ++index_;
    }
    map_type* map_ = nullptr;
    size_type index_ = 0;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;

  FlatHashMap() = default;
  explicit FlatHashMap(size_type expected) { reserve(expected); }

  [[nodiscard]] size_type size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] size_type capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] float load_factor() const noexcept {
    return slots_.empty() ? 0.0f
                          : static_cast<float>(size_) /
                                static_cast<float>(slots_.size());
  }

  iterator begin() { return iterator{this, 0}; }
  iterator end() { return iterator{this, slots_.size()}; }
  const_iterator begin() const {
    return const_iterator{this, 0};
  }
  const_iterator end() const { return const_iterator{this, slots_.size()}; }
  const_iterator cbegin() const { return begin(); }
  const_iterator cend() const { return end(); }

  /// Grows (never shrinks) so `expected` entries fit without rehashing.
  void reserve(size_type expected) {
    size_type cap = kMinCapacity;
    // Grow threshold is 7/8 full: cap must satisfy expected <= cap * 7/8.
    while (cap * 7 / 8 < expected) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  void clear() noexcept {
    for (size_type i = 0; i < slots_.size(); ++i) {
      if (used_[i]) slots_[i] = value_type{};
      used_[i] = 0;
    }
    size_ = 0;
  }

  /// Heterogeneous lookup: any `key` the hasher/equality accept.
  template <class K2>
  [[nodiscard]] iterator find(const K2& key) {
    const size_type i = find_slot(key);
    return i == npos ? end() : iterator{this, i};
  }
  template <class K2>
  [[nodiscard]] const_iterator find(const K2& key) const {
    const size_type i = find_slot(key);
    return i == npos ? end() : const_iterator{this, i};
  }
  template <class K2>
  [[nodiscard]] size_type count(const K2& key) const {
    return find_slot(key) == npos ? 0 : 1;
  }
  template <class K2>
  [[nodiscard]] bool contains(const K2& key) const {
    return find_slot(key) != npos;
  }

  /// Hints the cache that `key`'s home slot is about to be probed. Flat
  /// storage makes the target address computable from the key alone —
  /// issue this early, do independent work, then look up with the miss
  /// latency already (partly) paid. Node-based maps cannot offer this.
  template <class K2>
  void prefetch(const K2& key) const noexcept {
    if (slots_.empty()) return;
    const size_type home = home_of(key);
    __builtin_prefetch(&used_[home]);
    __builtin_prefetch(&slots_[home]);
  }

  template <class K2>
  [[nodiscard]] V& at(const K2& key) {
    const size_type i = find_slot(key);
    if (i == npos) throw std::out_of_range{"FlatHashMap::at"};
    return slots_[i].second;
  }
  template <class K2>
  [[nodiscard]] const V& at(const K2& key) const {
    const size_type i = find_slot(key);
    if (i == npos) throw std::out_of_range{"FlatHashMap::at"};
    return slots_[i].second;
  }

  V& operator[](const K& key) {
    return try_emplace(key).first->second;
  }

  /// Inserts {key, V{args...}} unless `key` is present; returns the slot
  /// and whether an insert happened — std::unordered_map semantics.
  template <class... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    grow_if_needed();
    size_type i = home_of(key);
    while (used_[i]) {
      if (eq_(slots_[i].first, key)) return {iterator{this, i}, false};
      i = (i + 1) & mask_;
    }
    slots_[i].first = key;
    slots_[i].second = V(std::forward<Args>(args)...);
    used_[i] = 1;
    ++size_;
    return {iterator{this, i}, true};
  }

  std::pair<iterator, bool> insert(const value_type& kv) {
    return try_emplace(kv.first, kv.second);
  }
  std::pair<iterator, bool> insert(value_type&& kv) {
    return try_emplace(kv.first, std::move(kv.second));
  }
  template <class... Args>
  std::pair<iterator, bool> emplace(Args&&... args) {
    return insert(value_type(std::forward<Args>(args)...));
  }

  /// Tombstone-free erase: backward shift-deletion. Walks the probe
  /// chain after the hole and moves back every entry whose home bucket
  /// lies at or before the hole, so no chain is ever broken and no
  /// tombstone is left to slow later probes.
  template <class K2>
  size_type erase(const K2& key) {
    size_type hole = find_slot(key);
    if (hole == npos) return 0;
    used_[hole] = 0;
    slots_[hole] = value_type{};
    --size_;
    size_type i = hole;
    while (true) {
      i = (i + 1) & mask_;
      if (!used_[i]) break;
      const size_type home = home_of(slots_[i].first);
      // Move back iff the hole lies within [home, i] cyclically —
      // i.e. the element's probe chain passes through the hole.
      if (((i - home) & mask_) >= ((i - hole) & mask_)) {
        slots_[hole] = std::move(slots_[i]);
        used_[hole] = 1;
        slots_[i] = value_type{};
        used_[i] = 0;
        hole = i;
      }
    }
    return 1;
  }

  /// Order-independent content equality (std::unordered_map semantics).
  friend bool operator==(const FlatHashMap& a, const FlatHashMap& b) {
    if (a.size_ != b.size_) return false;
    for (const auto& [key, value] : a) {
      const size_type i = b.find_slot(key);
      if (i == npos || !(b.slots_[i].second == value)) return false;
    }
    return true;
  }
  friend bool operator!=(const FlatHashMap& a, const FlatHashMap& b) {
    return !(a == b);
  }

 private:
  static constexpr size_type npos = static_cast<size_type>(-1);
  static constexpr size_type kMinCapacity = 16;

  /// Fibonacci finalizer: identity-style hashes (std::hash of integers)
  /// land sequential keys in sequential buckets, which linear probing
  /// turns into one long chain. One multiply + shift spreads them.
  [[nodiscard]] static size_type mix(std::size_t h) noexcept {
    std::uint64_t x = static_cast<std::uint64_t>(h);
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 32;
    return static_cast<size_type>(x);
  }

  template <class K2>
  [[nodiscard]] size_type home_of(const K2& key) const {
    return mix(hash_(key)) & mask_;
  }

  template <class K2>
  [[nodiscard]] size_type find_slot(const K2& key) const {
    if (slots_.empty()) return npos;
    size_type i = home_of(key);
    while (used_[i]) {
      if (eq_(slots_[i].first, key)) return i;
      i = (i + 1) & mask_;
    }
    return npos;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
    } else if ((size_ + 1) * 8 > slots_.size() * 7) {
      rehash(slots_.size() * 2);
    }
  }

  void rehash(size_type new_capacity) {
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.clear();
    slots_.resize(new_capacity);
    used_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    for (size_type i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      // Keys are unique, so probe straight to the first free slot.
      size_type j = home_of(old_slots[i].first);
      while (used_[j]) j = (j + 1) & mask_;
      slots_[j] = std::move(old_slots[i]);
      used_[j] = 1;
      ++size_;
    }
  }

  std::vector<value_type> slots_;
  std::vector<std::uint8_t> used_;
  size_type size_ = 0;
  size_type mask_ = 0;
  [[no_unique_address]] Hash hash_{};
  [[no_unique_address]] Eq eq_{};
};

}  // namespace ixp::util
