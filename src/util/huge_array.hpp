// HugeArray<T> — a fixed-size array backed by huge pages when the
// platform grants them, with graceful 4 KiB fallback.
//
// The motivating tenant is net::FlatLpm's 64 MiB top array: randomly
// indexed by the low 24 address bits, it spans 16384 small pages —
// far beyond any second-level TLB — so on small pages a large fraction
// of lookups pays a page walk on top of the cache miss. Backing the
// array with 2 MiB pages cuts it to 32 TLB entries.
//
// Allocation policy (HugeBuffer, huge_array.cpp):
//   1. mmap MAP_HUGETLB — explicit huge pages, when the pool has them;
//   2. anonymous mmap + madvise(MADV_HUGEPAGE) — transparent huge pages
//      at the kernel's discretion (reported as kHugeTransparent when the
//      madvise call was accepted; whether THP actually materializes is
//      up to khugepaged and is NOT guaranteed — callers that care about
//      measured TLB behavior must not assume it, see DESIGN.md §14);
//   3. plain anonymous mmap — the 4 KiB fallback;
//   4. operator new — non-POSIX builds.
// Every step downgrades silently: a HugeArray always comes back usable,
// and backing() reports what the process actually got. The test hook
// force_small_pages(true) pins step 3 so the fallback path stays
// exercised on machines where huge pages succeed.
//
// T must be trivially copyable and trivially destructible: the storage
// is raw pages, constructed by fill, never destructed element-wise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>
#include <utility>

namespace ixp::util {

/// What actually backs the mapping, in preference order.
enum class PageBacking : std::uint8_t {
  kUnmapped = 0,     ///< empty array
  kHugeExplicit,     ///< MAP_HUGETLB succeeded (guaranteed 2 MiB pages)
  kHugeTransparent,  ///< madvise(MADV_HUGEPAGE) accepted (best effort)
  kSmall,            ///< plain 4 KiB-paged anonymous mapping
  kHeap,             ///< operator new (non-POSIX fallback)
};

[[nodiscard]] std::string_view to_string(PageBacking backing) noexcept;

/// Test hook: when set, new HugeBuffers skip both huge-page attempts and
/// take the plain 4 KiB mapping — the forced-fallback differential tests
/// run the exact code path a huge-page-less host would.
void force_small_pages(bool force) noexcept;
[[nodiscard]] bool small_pages_forced() noexcept;

/// Untyped page-granular buffer; the .cpp owns the mmap/new logic.
class HugeBuffer {
 public:
  HugeBuffer() = default;
  explicit HugeBuffer(std::size_t bytes);
  ~HugeBuffer();

  HugeBuffer(HugeBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        bytes_(std::exchange(other.bytes_, 0)),
        mapped_(std::exchange(other.mapped_, 0)),
        backing_(std::exchange(other.backing_, PageBacking::kUnmapped)) {}
  HugeBuffer& operator=(HugeBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      bytes_ = std::exchange(other.bytes_, 0);
      mapped_ = std::exchange(other.mapped_, 0);
      backing_ = std::exchange(other.backing_, PageBacking::kUnmapped);
    }
    return *this;
  }
  HugeBuffer(const HugeBuffer&) = delete;
  HugeBuffer& operator=(const HugeBuffer&) = delete;

  [[nodiscard]] void* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] PageBacking backing() const noexcept { return backing_; }

 private:
  void release() noexcept;

  void* data_ = nullptr;
  std::size_t bytes_ = 0;   // requested size
  std::size_t mapped_ = 0;  // mapped size (huge-page rounded)
  PageBacking backing_ = PageBacking::kUnmapped;
};

template <typename T>
class HugeArray {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "HugeArray storage is raw pages; T must be trivial");

 public:
  HugeArray() = default;

  /// Allocates `count` elements, every one set to `fill`.
  HugeArray(std::size_t count, const T& fill)
      : buffer_(count * sizeof(T)), count_(count) {
    T* out = data();
    for (std::size_t i = 0; i < count_; ++i) out[i] = fill;
  }

  // Not defaulted: count_ must be zeroed in the source, or a moved-from
  // array would report its old size over an unmapped buffer.
  HugeArray(HugeArray&& other) noexcept
      : buffer_(std::move(other.buffer_)),
        count_(std::exchange(other.count_, 0)) {}
  HugeArray& operator=(HugeArray&& other) noexcept {
    buffer_ = std::move(other.buffer_);
    count_ = std::exchange(other.count_, 0);
    return *this;
  }

  [[nodiscard]] T* data() noexcept { return static_cast<T*>(buffer_.data()); }
  [[nodiscard]] const T* data() const noexcept {
    return static_cast<const T*>(buffer_.data());
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] PageBacking backing() const noexcept {
    return buffer_.backing();
  }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data()[i];
  }

 private:
  HugeBuffer buffer_;
  std::size_t count_ = 0;
};

}  // namespace ixp::util
