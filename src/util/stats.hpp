// Small statistics helpers used by the analysis modules and the
// experiment harnesses (percentiles for rank plots, shares, Gini
// coefficients for concentration, online moments for streaming counters).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ixp::util {

/// Numerically stable online mean/variance/min/max accumulator (Welford).
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) of `values` using linear
/// interpolation between order statistics. Sorts a copy; empty input -> 0.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Gini coefficient of non-negative values in [0,1]; 0 = perfectly even,
/// ->1 = maximally concentrated. Empty or all-zero input -> 0.
[[nodiscard]] double gini(std::span<const double> values);

/// Fraction of the total contributed by the top-k largest values.
/// k >= size() -> 1.0 (when total > 0); empty/zero-total input -> 0.
[[nodiscard]] double top_k_share(std::span<const double> values, std::size_t k);

/// Cumulative shares by descending value: result[i] = share of the i+1
/// largest values. Used for rank/share plots like the paper's Figure 2.
[[nodiscard]] std::vector<double> cumulative_share_by_rank(
    std::span<const double> values);

}  // namespace ixp::util
