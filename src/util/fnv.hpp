// FNV-1a 64-bit — the provenance fingerprint hash.
//
// Snapshot provenance (DESIGN.md §16) needs a stable, order-sensitive
// digest of "everything a week's output is a pure function of": model
// scale knobs, seeds, format version, ingest policy. FNV-1a is enough —
// the fingerprint guards against *configuration drift between runs*, not
// adversarial collisions (the store's CRCs already guard the bytes), and
// its fixed fold order makes the digest identical across hosts and
// compilers, which is what lets two machines agree that a snapshot is
// current.
#pragma once

#include <cstdint>
#include <string_view>

namespace ixp::util {

class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf2'9ce4'8422'2325ull;
  static constexpr std::uint64_t kPrime = 0x0000'0100'0000'01b3ull;

  constexpr void mix_byte(std::uint8_t b) noexcept {
    hash_ ^= b;
    hash_ *= kPrime;
  }

  /// Folds the value little-endian, all 8 bytes — mixing a u64 is always
  /// an 8-byte event regardless of magnitude, so field boundaries cannot
  /// alias (mix(1), mix(2) never collides with mix(0x0201), mix(0)).
  constexpr void mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// Length-prefixed so adjacent strings cannot shift bytes across their
  /// boundary ("ab","c" vs "a","bc").
  constexpr void mix(std::string_view v) noexcept {
    mix(static_cast<std::uint64_t>(v.size()));
    for (const char c : v) mix_byte(static_cast<std::uint8_t>(c));
  }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

}  // namespace ixp::util
