// Human-readable formatting helpers for the experiment harnesses: the
// exp_* binaries print paper-style tables, so counts, byte volumes, and
// percentages need consistent rendering.
#pragma once

#include <cstdint>
#include <string>

namespace ixp::util {

/// 1234567 -> "1,234,567".
[[nodiscard]] std::string with_thousands(std::uint64_t value);

/// 0.1234 -> "12.34%" (two decimals by default).
[[nodiscard]] std::string percent(double fraction, int decimals = 2);

/// Bytes with binary-ish scaling as used in the paper (PB/TB/GB/MB/KB).
[[nodiscard]] std::string bytes(double byte_count);

/// Compact count: 1489286 -> "1.49M", 42825 -> "42.8K".
[[nodiscard]] std::string compact(double value);

/// Fixed-width double with `decimals` digits after the point.
[[nodiscard]] std::string fixed(double value, int decimals = 2);

}  // namespace ixp::util
