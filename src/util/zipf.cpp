#include "util/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ixp::util {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument{"ZipfSampler: n must be >= 1"};
  if (s < 0.0) throw std::invalid_argument{"ZipfSampler: s must be >= 0"};
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const noexcept {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

WeightedSampler::WeightedSampler(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument{"WeightedSampler: empty weights"};
  prob_.assign(n, 1.0);
  alias_.assign(n, 0);

  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"WeightedSampler: negative weight"};
    total += w;
  }
  if (total <= 0.0) {
    // All-zero weights: degenerate to uniform.
    for (std::size_t i = 0; i < n; ++i) alias_[i] = static_cast<std::uint32_t>(i);
    return;
  }

  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (const std::uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

std::size_t WeightedSampler::sample(Rng& rng) const noexcept {
  const std::size_t i = static_cast<std::size_t>(rng.next_below(prob_.size()));
  return rng.next_double() < prob_[i] ? i : alias_[i];
}

std::vector<double> zipf_weights(std::size_t n, double s, bool normalize) {
  std::vector<double> w(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    w[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
    total += w[k];
  }
  if (normalize && total > 0.0) {
    for (auto& v : w) v /= total;
  }
  return w;
}

}  // namespace ixp::util
