#include "util/huge_array.hpp"

#include <atomic>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define IXPSCOPE_HAVE_MMAP 1
#endif

namespace ixp::util {

namespace {

constexpr std::size_t kHugePage = 2u << 20;  // x86-64 2 MiB

std::atomic<bool> g_force_small{false};

}  // namespace

std::string_view to_string(PageBacking backing) noexcept {
  switch (backing) {
    case PageBacking::kUnmapped: return "unmapped";
    case PageBacking::kHugeExplicit: return "huge-explicit";
    case PageBacking::kHugeTransparent: return "huge-transparent";
    case PageBacking::kSmall: return "small-pages";
    case PageBacking::kHeap: return "heap";
  }
  return "unmapped";
}

void force_small_pages(bool force) noexcept {
  g_force_small.store(force, std::memory_order_relaxed);
}

bool small_pages_forced() noexcept {
  return g_force_small.load(std::memory_order_relaxed);
}

HugeBuffer::HugeBuffer(std::size_t bytes) : bytes_(bytes) {
  if (bytes == 0) return;
#ifdef IXPSCOPE_HAVE_MMAP
  const bool forced_small = small_pages_forced();
#if defined(MAP_HUGETLB)
  if (!forced_small) {
    // Explicit huge pages: size must be huge-page aligned; fails cleanly
    // (ENOMEM) when the hugetlb pool is empty or unconfigured.
    const std::size_t rounded = (bytes + kHugePage - 1) & ~(kHugePage - 1);
    void* mapped = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (mapped != MAP_FAILED) {
      data_ = mapped;
      mapped_ = rounded;
      backing_ = PageBacking::kHugeExplicit;
      return;
    }
  }
#endif
  void* mapped = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mapped != MAP_FAILED) {
    data_ = mapped;
    mapped_ = bytes;
    backing_ = PageBacking::kSmall;
#if defined(MADV_HUGEPAGE)
    // Transparent huge pages are advisory: an accepted madvise means the
    // kernel MAY assemble 2 MiB pages here, not that it did (on many VMs
    // it never does). Report kHugeTransparent for "advice accepted" and
    // let callers measure rather than trust.
    if (!forced_small && ::madvise(mapped, bytes, MADV_HUGEPAGE) == 0)
      backing_ = PageBacking::kHugeTransparent;
#endif
    return;
  }
#endif  // IXPSCOPE_HAVE_MMAP
  data_ = ::operator new(bytes);
  mapped_ = bytes;
  backing_ = PageBacking::kHeap;
}

HugeBuffer::~HugeBuffer() { release(); }

void HugeBuffer::release() noexcept {
  if (data_ == nullptr) return;
#ifdef IXPSCOPE_HAVE_MMAP
  if (backing_ != PageBacking::kHeap) {
    ::munmap(data_, mapped_);
    data_ = nullptr;
    backing_ = PageBacking::kUnmapped;
    return;
  }
#endif
  ::operator delete(data_);
  data_ = nullptr;
  backing_ = PageBacking::kUnmapped;
}

}  // namespace ixp::util
