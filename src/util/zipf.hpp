// Heavy-tailed discrete samplers.
//
// The paper's workloads are dominated by rank-popularity effects (top sites,
// top server IPs, top organizations), so Zipf-like sampling is the backbone
// of the synthetic traffic model. ZipfSampler draws ranks from a bounded
// Zipf(s, n) distribution; WeightedSampler draws from arbitrary weights in
// O(1) via the alias method.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace ixp::util {

/// Bounded Zipf distribution over ranks [0, n): P(rank k) ~ 1/(k+1)^s.
/// Sampling is O(log n) via binary search over the precomputed CDF.
class ZipfSampler {
 public:
  /// Requires n >= 1 and s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s);

  /// Draws a rank in [0, size()).
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  /// Probability mass of a given rank.
  [[nodiscard]] double pmf(std::size_t rank) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), cdf_.back() == 1.0
};

/// Alias-method sampler over arbitrary non-negative weights: O(n) build,
/// O(1) sample. Zero-weight entries are never drawn (unless all are zero,
/// in which case sampling is uniform).
class WeightedSampler {
 public:
  explicit WeightedSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Generates n Zipf(s)-shaped weights (1/(k+1)^s), optionally normalized.
[[nodiscard]] std::vector<double> zipf_weights(std::size_t n, double s,
                                               bool normalize = false);

}  // namespace ixp::util
