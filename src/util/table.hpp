// Minimal ASCII table writer. The exp_* experiment binaries regenerate the
// paper's tables and figures as text; this keeps their output aligned and
// uniform without pulling in a formatting dependency.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace ixp::util {

/// Column-aligned ASCII table. Collect rows, then render once.
/// The first added row is treated as the header.
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cells);
  Table& row(std::vector<std::string> cells);

  /// Renders with a title rule, header rule and column padding.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used between experiment blocks.
void print_banner(std::ostream& os, const std::string& text);

}  // namespace ixp::util
