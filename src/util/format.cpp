#include "util/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace ixp::util {

std::string with_thousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fixed(double value, int decimals) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", decimals, value);
  return std::string{buf.data()};
}

std::string percent(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals) + "%";
}

std::string bytes(double byte_count) {
  static constexpr std::array<const char*, 6> kUnits{"B",  "KB", "MB",
                                                     "GB", "TB", "PB"};
  double v = byte_count;
  std::size_t unit = 0;
  while (v >= 1000.0 && unit + 1 < kUnits.size()) {
    v /= 1000.0;
    ++unit;
  }
  const int decimals = unit == 0 ? 0 : (v < 10 ? 2 : 1);
  return fixed(v, decimals) + " " + kUnits[unit];
}

std::string compact(double value) {
  const double abs = std::fabs(value);
  if (abs >= 1e9) return fixed(value / 1e9, 2) + "B";
  if (abs >= 1e6) return fixed(value / 1e6, 2) + "M";
  if (abs >= 1e3) return fixed(value / 1e3, 1) + "K";
  return fixed(value, 0);
}

}  // namespace ixp::util
