#include "util/cpu_features.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define IXPSCOPE_X86 1
#endif

namespace ixp::util {

namespace {

CpuFeatures probe() noexcept {
  CpuFeatures features;
#ifdef IXPSCOPE_X86
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    features.sse2 = (edx & (1u << 26)) != 0;
    features.sse42 = (ecx & (1u << 20)) != 0;
    // AVX2 requires the OS to save YMM state: OSXSAVE + XCR0 bits 1..2,
    // then the AVX2 bit in leaf 7. Checking only leaf 7 would dispatch
    // AVX2 code on kernels that never restore the upper lanes.
    const bool osxsave = (ecx & (1u << 27)) != 0;
    const bool avx = (ecx & (1u << 28)) != 0;
    if (osxsave && avx) {
      // xgetbv via inline asm: the builtin needs -mxsave, which the
      // baseline build deliberately does not pass.
      unsigned xcr0_lo = 0;
      unsigned xcr0_hi = 0;
      asm volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
      const unsigned xcr0 = xcr0_lo;
      if ((xcr0 & 0x6u) == 0x6u &&
          __get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0)
        features.avx2 = (ebx & (1u << 5)) != 0;
    }
  }
#endif
  return features;
}

SimdLevel hardware_level(const CpuFeatures& features) noexcept {
  if (features.avx2) return SimdLevel::kAvx2;
  if (features.sse2) return SimdLevel::kSse2;
  return SimdLevel::kScalar;
}

SimdLevel resolve_active() noexcept {
#ifdef IXPSCOPE_DISABLE_SIMD
  return SimdLevel::kScalar;
#else
  SimdLevel level = hardware_level(CpuFeatures::detect());
  if (const char* env = std::getenv("IXPSCOPE_SIMD")) {
    // The override clamps downward only — requesting a level the CPU
    // lacks silently keeps the detected one.
    if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "swar") == 0)
      level = SimdLevel::kScalar;
    else if (std::strcmp(env, "sse2") == 0 && level > SimdLevel::kSse2)
      level = SimdLevel::kSse2;
  }
  return level;
#endif
}

}  // namespace

const CpuFeatures& CpuFeatures::detect() noexcept {
  static const CpuFeatures cached = probe();
  return cached;
}

SimdLevel CpuFeatures::active() noexcept {
  static const SimdLevel cached = resolve_active();
  return cached;
}

std::string_view CpuFeatures::name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse2: return "sse2";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "scalar";
}

std::string_view CpuFeatures::flags_string() noexcept {
  static const std::string_view cached = [] {
    const CpuFeatures& features = detect();
    static char buffer[32];
    char* at = buffer;
    const auto append = [&](const char* flag) {
      if (at != buffer) *at++ = ',';
      const std::size_t len = std::strlen(flag);
      std::memcpy(at, flag, len);
      at += len;
    };
    if (features.sse2) append("sse2");
    if (features.sse42) append("sse4.2");
    if (features.avx2) append("avx2");
    if (at == buffer) append("none");
    *at = '\0';
    return std::string_view{buffer, static_cast<std::size_t>(at - buffer)};
  }();
  return cached;
}

}  // namespace ixp::util
