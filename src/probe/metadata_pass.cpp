#include "probe/metadata_pass.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>
#include <utility>

#include "dns/uri.hpp"
#include "util/flat_hash_map.hpp"

namespace ixp::probe {

namespace {

/// Host-header parse memo: Uri::parse + authority validation are pure in
/// the host string, and hosting farms repeat a handful of headers across
/// the pool. nullopt = invalid (unparseable or no registrable domain).
using UriMemo = util::FlatHashMap<std::string, std::optional<dns::Uri>>;

const std::optional<dns::Uri>& cleaned_uri(UriMemo& memo,
                                           const std::string& host,
                                           const dns::PublicSuffixList& psl) {
  const auto [it, inserted] = memo.try_emplace(host);
  if (inserted) {
    auto uri = dns::Uri::parse(host);
    if (uri && uri->authority(psl)) it->second = std::move(*uri);
  }
  return it->second;
}

class MetadataHandler final : public ProbeHandler {
 public:
  MetadataHandler(std::span<const MetadataItem> items,
                  CachingResolver& resolver, const dns::PublicSuffixList& psl,
                  classify::ServerMetadata* out)
      : items_(items), resolver_(resolver), psl_(psl), out_(out) {}

  [[nodiscard]] std::uint64_t item_key(std::uint32_t item) const override {
    return items_[item].addr.value();
  }

  bool exchange_answers(std::uint32_t, std::uint32_t) override {
    // The authoritative servers always answer (NXDOMAIN is an answer);
    // only network loss can time a metadata query out.
    return true;
  }

  Step on_response(std::uint32_t item, std::uint32_t exchange,
                   std::uint64_t now_us) override {
    classify::ServerMetadata& md = out_[item];
    const dns::ZoneDatabase& db = resolver_.db();
    if (exchange == 0) {
      // PTR and reverse-SOA queries are keyed by the address, and every
      // address appears once per pass — caching them is write-only churn,
      // so they go straight to the authoritative source. Only the SOA
      // walk repeats (sibling names share zones) and rides the cache.
      md.hostname = db.reverse(items_[item].addr);
      return Step::kNextExchange;
    }
    if (md.hostname) {
      if (const auto soa = resolver_.soa_of(*md.hostname, now_us))
        md.soa_authority = soa->authority;
    }
    if (!md.soa_authority) {
      // ZoneDatabase::reverse_soa = the per-address authority, else the
      // SOA walk of the PTR hostname. The walk half was just computed
      // (and came up empty) whenever a hostname exists, so only the
      // exact record can still contribute.
      if (const dns::DnsName* authority = db.reverse_soa_at(items_[item].addr))
        md.soa_authority = *authority;
    }
    if (md.soa_authority &&
        classify::MetadataHarvester::is_rir_authority(*md.soa_authority))
      md.soa_authority.reset();
    return Step::kDone;
  }

  Step on_timeout(std::uint32_t, std::uint32_t exchange,
                  std::uint64_t) override {
    // Degrade instead of aborting: a lost PTR still leaves the SOA
    // fallback worth trying; a lost authority query leaves the local
    // metadata (URIs, certificate names) intact.
    return exchange == 0 ? Step::kNextExchange : Step::kDone;
  }

  void on_outcome(std::uint32_t item, Outcome, std::uint64_t) override {
    // The local half of the harvest, computed for every outcome.
    const MetadataItem& in = items_[item];
    classify::ServerMetadata& md = out_[item];
    md.addr = in.addr;
    for (const std::string& host : in.hosts) {
      const auto& uri = cleaned_uri(memo_, host, psl_);
      if (!uri) continue;
      if (std::find(md.uris.begin(), md.uris.end(), *uri) == md.uris.end())
        md.uris.push_back(*uri);
    }
    if (in.chain != nullptr && !in.chain->empty())
      md.cert_names = in.chain->leaf().covered_names();
  }

 private:
  std::span<const MetadataItem> items_;
  CachingResolver& resolver_;
  const dns::PublicSuffixList& psl_;
  classify::ServerMetadata* out_;
  UriMemo memo_;
};

}  // namespace

MetadataShard MetadataPass::run_chunk(std::span<const MetadataItem> items,
                                      classify::ServerMetadata* out) const {
  MetadataShard shard;
  CachingResolver resolver(*db_, options_.cache);
  MetadataHandler handler(items, resolver, *psl_, out);
  ProbeEngine engine(options_.engine, options_.net);
  shard.engine = engine.run(static_cast<std::uint32_t>(items.size()), handler);
  shard.cache = resolver.stats();
  for (std::size_t i = 0; i < items.size(); ++i) shard.coverage.add(out[i]);
  return shard;
}

MetadataPassResult MetadataPass::run(
    std::span<const MetadataItem> items) const {
  MetadataPassResult result;
  result.metadata.resize(items.size());
  if (items.empty()) return result;

  const std::size_t chunk = std::max<std::size_t>(1, options_.chunk);
  const std::size_t chunk_count = (items.size() + chunk - 1) / chunk;
  std::vector<MetadataShard> shards(chunk_count);

  const auto run_one = [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t size = std::min(chunk, items.size() - begin);
    shards[c] =
        run_chunk(items.subspan(begin, size), result.metadata.data() + begin);
  };

  const std::size_t threads =
      std::min<std::size_t>(std::max(1u, options_.threads), chunk_count);
  if (threads <= 1) {
    for (std::size_t c = 0; c < chunk_count; ++c) run_one(c);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (std::size_t c = next.fetch_add(1); c < chunk_count;
             c = next.fetch_add(1)) {
          run_one(c);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
  }

  for (const MetadataShard& shard : shards) result.shard.merge(shard);
  return result;
}

}  // namespace ixp::probe
