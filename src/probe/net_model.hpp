// Deterministic network model for the probe engine (DESIGN.md §15).
//
// Every attempt's latency and loss are pure functions of
// (seed, item key, exchange, attempt) via a stateless mixer. Because no
// RNG state is shared between in-flight measurements, an attempt's
// outcome cannot depend on scheduling: the engine produces byte-identical
// results for any concurrency cap, issue order, or thread count. That
// purity is the whole determinism argument of the differential suite —
// the synchronous oracle replays the same draws and must land on the
// same confirmed sets and funnels.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace ixp::probe {

struct NetModel {
  std::uint64_t seed = 0;
  /// Per-attempt loss probability in permille (0 = lossless).
  std::uint32_t loss_permille = 0;
  /// RTT for an answered attempt: base + uniform jitter.
  std::uint32_t rtt_base_us = 200;
  std::uint32_t rtt_jitter_us = 19'800;

  struct Draw {
    bool lost = false;
    std::uint32_t rtt_us = 0;
  };

  [[nodiscard]] bool lossless() const noexcept { return loss_permille == 0; }

  /// The fate of one attempt. Pure: the same (item_key, exchange, attempt)
  /// always draws the same outcome, regardless of when or where it runs.
  [[nodiscard]] Draw draw(std::uint64_t item_key, std::uint32_t exchange,
                          std::uint32_t attempt) const noexcept {
    const std::uint64_t h = util::mix64(
        seed ^ util::mix64(item_key + 0x9e3779b97f4a7c15ULL) ^
        (static_cast<std::uint64_t>(exchange) << 48) ^
        (static_cast<std::uint64_t>(attempt) << 40));
    Draw d;
    d.lost = (h % 1000) < loss_permille;
    d.rtt_us = rtt_base_us +
               static_cast<std::uint32_t>(
                   (h >> 10) % (static_cast<std::uint64_t>(rtt_jitter_us) + 1));
    return d;
  }
};

}  // namespace ixp::probe
